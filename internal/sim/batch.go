package sim

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
)

// BatchKernel is the algorithm side of the replica-batched engine: R
// independent replicas of one algorithm over a shared graph, with the
// value state held in a structure-of-arrays buffer (gossip.BatchState).
// The engine owns event sampling and simulated time; the kernel owns the
// per-event state updates. Methods are replica-addressed because the
// engine round-robins chunks across replicas — replica rep's chunk touches
// only row rep, while the graph's flat arrays are shared by all.
type BatchKernel interface {
	// Replicas returns the batch width R.
	Replicas() int
	// TickChunk applies the algorithm's update for a chunk of ticks of
	// replica rep, values only (moment bookkeeping may be deferred) — the
	// untracked fast path.
	TickChunk(rep int, edges []graph.EdgeID)
	// TickChunkTracked applies the chunk with eager per-event moments and
	// returns the index within edges of the last event whose post-tick
	// variance exceeded exceedLevel (-1 when none did), together with the
	// post-chunk variance.
	TickChunkTracked(rep int, edges []graph.EdgeID, exceedLevel float64) (lastIdx int, endVar float64)
	// ReplicaVariance returns replica rep's current variance.
	ReplicaVariance(rep int) float64
}

// chunkSize is the number of per-replica events per bridge draw. It is a
// fixed constant — never a function of the batch width — because each
// replica's chunk boundaries are part of its deterministic trajectory:
// the same replica stream must see the same chunks whether it runs alone
// or interleaved with 63 others.
const chunkSize = batchSize

// BatchEngine advances R independent replicas of one scenario in
// interleaved lockstep: the graph's flat endpoint arrays and the (single)
// alias table are loaded once and stay hot while the engine round-robins
// fixed-size chunks across the replicas. Each replica consumes only its
// own RNG stream, so its trajectory is byte-identical for any batch width
// and any interleaving (the package tests prove R=1 versus R=64).
//
// Time is Poisson-bridged: the superposed edge process is Poisson at the
// total rate, so the elapsed time of a k-event chunk is Gamma(k) scaled by
// the mean gap — one GammaInt draw replaces k per-event exponential draws,
// leaving one uniform (the edge pick) as the only per-event randomness.
// Event times inside a chunk are not materialised; when the tracked run
// needs one (the last exceedance of the averaging-time statistic, landing
// strictly inside a chunk) it is resolved by the order-statistics identity
// S_j | S_k = D  ~  D·Beta(j, k−j), costing two GammaInt draws for that
// chunk only. The per-event Engine remains the distribution-reference
// oracle; the avgtime package KS-tests the two against each other.
type BatchEngine struct {
	g        *graph.Graph
	kern     BatchKernel
	uniform  bool
	numEdges uint64
	alias    *aliasTable // nil when uniform
	invTotal float64
	reps     []batchReplica
	picks    []graph.EdgeID   // chunk scratch, shared across replicas
	observe  func(BatchStats) // nil unless WithBatchObserver; per-pass, never per-event
	chunks   int64
}

type batchReplica struct {
	r      *rng.RNG
	now    float64
	events int64
}

// BatchStats is a point-in-time view of a running BatchEngine, delivered
// to the observer installed with WithBatchObserver once per round-robin
// pass (every replica gets at most one chunk per pass). It exists for
// telemetry — progress lines, events/sec meters, occupancy gauges — and
// carries only values the engine already maintains, so observation costs
// one closure call per R·chunkSize events and nothing at all per event.
type BatchStats struct {
	// Events is the total tick count across all replicas so far.
	Events int64
	// Chunks is the number of chunk-bridge draws consumed so far (one
	// Gamma draw of simulated time per chunk).
	Chunks int64
	// Active is the number of replicas that advanced in the pass just
	// completed; it decays to 0 as tracked replicas hit their stop rule.
	Active int
	// Now is the minimum simulated time over the replicas that advanced
	// in the pass — the trailing edge of the batch.
	Now float64
}

// BatchOption configures NewBatchEngine.
type BatchOption func(*batchConfig)

type batchConfig struct {
	rates   []float64
	observe func(BatchStats)
}

// WithBatchObserver installs a telemetry callback invoked once per
// round-robin pass of RunEvents and RunTracked. The observer must not
// retain the stats value's address and must be fast — it runs on the
// simulation goroutine. It never touches the per-event path and never
// consumes randomness, so installing one cannot perturb any replica
// trajectory (the package tests pin this byte-for-byte).
func WithBatchObserver(fn func(BatchStats)) BatchOption {
	return func(c *batchConfig) { c.observe = fn }
}

// WithBatchRates sets per-edge clock rates; len must equal g.NumEdges()
// and all rates must be positive. The default is rate 1 on every edge.
// Heterogeneous rates cost nothing extra per event — the superposition is
// still Poisson at the total rate, and the pick goes through the shared
// alias table.
func WithBatchRates(rates []float64) BatchOption {
	return func(c *batchConfig) { c.rates = rates }
}

// NewBatchEngine builds a replica-batched engine for g driving kern, with
// one independent RNG stream per replica (len(streams) must equal
// kern.Replicas(); derive them with rng.Split or per-replica seeds).
func NewBatchEngine(g *graph.Graph, kern BatchKernel, streams []*rng.RNG, opts ...BatchOption) (*BatchEngine, error) {
	if kern == nil {
		return nil, errors.New("sim: nil batch kernel")
	}
	if g.NumEdges() == 0 {
		return nil, fmt.Errorf("sim: %s has no edges to tick", g)
	}
	if len(streams) != kern.Replicas() {
		return nil, fmt.Errorf("sim: %d streams for %d replicas", len(streams), kern.Replicas())
	}
	var cfg batchConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	rates := cfg.rates
	if rates == nil {
		rates = make([]float64, g.NumEdges())
		for i := range rates {
			rates[i] = 1
		}
	}
	if len(rates) != g.NumEdges() {
		return nil, fmt.Errorf("sim: %d rates for %d edges", len(rates), g.NumEdges())
	}
	for i, r := range rates {
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("sim: invalid rate %v for edge %d", r, i)
		}
	}
	be := &BatchEngine{
		g:        g,
		kern:     kern,
		uniform:  true,
		numEdges: uint64(g.NumEdges()),
		reps:     make([]batchReplica, len(streams)),
		picks:    make([]graph.EdgeID, chunkSize),
	}
	for _, r := range rates {
		if r != rates[0] {
			be.uniform = false
			break
		}
	}
	total := 0.0
	if be.uniform {
		total = rates[0] * float64(len(rates))
	} else {
		be.alias = newAliasTable(rates)
		for _, r := range rates {
			total += r
		}
	}
	be.invTotal = 1 / total
	be.observe = cfg.observe
	for rep, r := range streams {
		if r == nil {
			return nil, fmt.Errorf("sim: replica %d stream is nil", rep)
		}
		be.reps[rep].r = r
	}
	return be, nil
}

// Graph returns the simulated graph.
func (be *BatchEngine) Graph() *graph.Graph { return be.g }

// Replicas returns the batch width R.
func (be *BatchEngine) Replicas() int { return len(be.reps) }

// Events returns the total tick count across all replicas.
func (be *BatchEngine) Events() int64 {
	var n int64
	for i := range be.reps {
		n += be.reps[i].events
	}
	return n
}

// ReplicaNow returns replica rep's current simulated time.
func (be *BatchEngine) ReplicaNow(rep int) float64 { return be.reps[rep].now }

// ReplicaEvents returns replica rep's tick count.
func (be *BatchEngine) ReplicaEvents(rep int) int64 { return be.reps[rep].events }

// fillPicks samples one ticking edge per event into dst from the replica
// stream r — the Lemire pick of rng.Intn inlined for the uniform-rate
// case, the shared alias table otherwise. This is the only per-event
// randomness of the bridged path.
func (be *BatchEngine) fillPicks(r *rng.RNG, dst []graph.EdgeID) {
	if be.uniform {
		bound := be.numEdges
		for k := range dst {
			hi, lo := bits.Mul64(r.Uint64(), bound)
			if lo < bound {
				hi = r.IntnSlow(hi, lo, bound)
			}
			dst[k] = graph.EdgeID(hi)
		}
		return
	}
	al := be.alias
	for k := range dst {
		dst[k] = graph.EdgeID(al.pick(r))
	}
}

// RunEvents advances every replica by exactly n further events (untracked:
// lazy moments, bridged clocks). Chunks are interleaved across replicas in
// round-robin order; per-replica trajectories do not depend on the
// interleaving.
func (be *BatchEngine) RunEvents(n int64) {
	target := make([]int64, len(be.reps))
	for rep := range be.reps {
		target[rep] = be.reps[rep].events + n
	}
	for {
		active := 0
		minNow := math.Inf(1)
		for rep := range be.reps {
			r := &be.reps[rep]
			if r.events >= target[rep] {
				continue
			}
			active++
			m := int(min(target[rep]-r.events, chunkSize))
			picks := be.picks[:m]
			be.fillPicks(r.r, picks)
			be.kern.TickChunk(rep, picks)
			r.now += r.r.GammaInt(m) * be.invTotal
			r.events += int64(m)
			be.chunks++
			if r.now < minNow {
				minNow = r.now
			}
		}
		if active == 0 {
			return
		}
		if be.observe != nil {
			be.observe(BatchStats{Events: be.Events(), Chunks: be.chunks, Active: active, Now: minNow})
		}
	}
}

// RunTracked drives every replica under the averaging-time stop rule of
// Engine.RunTracked, evaluated at chunk granularity: a replica stops once
// its simulated time reaches MaxTime, or once its variance is below
// StopLevel and Quiet time has passed since its last exceedance, checked
// before each chunk (so a run may overshoot the legacy stop point by up to
// one chunk; the recorded last-exceedance statistic is unaffected for
// variance-monotone algorithms and distributionally indistinguishable
// otherwise — the avgtime KS tests cover both). It returns one
// TrackedResult per replica.
func (be *BatchEngine) RunTracked(cfg Tracked) []TrackedResult {
	res := make([]TrackedResult, len(be.reps))
	type trackState struct {
		v          float64
		lastExceed float64
		done       bool
	}
	states := make([]trackState, len(be.reps))
	for rep := range states {
		states[rep].v = be.kern.ReplicaVariance(rep)
	}
	for {
		active := 0
		minNow := math.Inf(1)
		for rep := range be.reps {
			st := &states[rep]
			if st.done {
				continue
			}
			r := &be.reps[rep]
			if r.now >= cfg.MaxTime {
				st.done = true
				res[rep] = TrackedResult{
					LastExceed: st.lastExceed,
					Censored:   st.v >= cfg.StopLevel,
				}
				continue
			}
			if st.v < cfg.StopLevel && r.now >= st.lastExceed+cfg.Quiet {
				st.done = true
				res[rep] = TrackedResult{LastExceed: st.lastExceed}
				continue
			}
			active++
			picks := be.picks[:chunkSize]
			be.fillPicks(r.r, picks)
			lastIdx, endVar := be.kern.TickChunkTracked(rep, picks, cfg.ExceedLevel)
			start := r.now
			d := r.r.GammaInt(chunkSize) * be.invTotal
			r.now = start + d
			r.events += chunkSize
			be.chunks++
			if r.now < minNow {
				minNow = r.now
			}
			st.v = endVar
			switch {
			case lastIdx == chunkSize-1:
				// The last event of the chunk exceeded: its time is the
				// chunk end — no extra draw. While the variance is above
				// the threshold this is every chunk, so the steady state
				// costs one Gamma draw per chunk total.
				st.lastExceed = r.now
			case lastIdx >= 0:
				// The last exceedance lies strictly inside the chunk:
				// conditioned on the chunk duration d, the j-th event time
				// is d·Beta(j, k−j) past the chunk start, sampled as
				// G₁/(G₁+G₂) with G₁ ~ Gamma(j), G₂ ~ Gamma(k−j).
				j := lastIdx + 1
				g1 := r.r.GammaInt(j)
				g2 := r.r.GammaInt(chunkSize - j)
				st.lastExceed = start + d*(g1/(g1+g2))
			}
		}
		if active == 0 {
			return res
		}
		if be.observe != nil {
			be.observe(BatchStats{Events: be.Events(), Chunks: be.chunks, Active: active, Now: minNow})
		}
	}
}

// Chunks returns the number of chunk-bridge draws consumed so far.
func (be *BatchEngine) Chunks() int64 { return be.chunks }
