package scenario

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sparsecut/internal/core"
	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestRegistryCoversZoo checks every generator family the repo provides is
// reachable by name, including the legacy CLI spellings.
func TestRegistryCoversZoo(t *testing.T) {
	want := []string{
		"dumbbell", "planted", "sensor", "ringofcliques", "hierdumbbell",
		"complete", "path", "cycle", "star", "grid", "torus", "hypercube",
		"bipartite", "bintree", "lollipop", "gnp", "regular", "rgg",
	}
	if len(FamilyNames()) != len(want) {
		t.Errorf("registry has %d families %v, want %d", len(FamilyNames()), FamilyNames(), len(want))
	}
	for _, name := range want {
		if _, ok := Lookup(name); !ok {
			t.Errorf("family %q not registered", name)
		}
	}
	// Aliases and case-insensitivity.
	for _, alias := range []string{"ring-of-cliques", "SBM", "erdos-renyi", "Clique", "binary-tree"} {
		if _, ok := Lookup(alias); !ok {
			t.Errorf("alias %q not resolvable", alias)
		}
	}
}

// TestResolveEveryFamily resolves a small spec for each family and sanity
// checks the outputs.
func TestResolveEveryFamily(t *testing.T) {
	for _, f := range Families() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			r, err := Spec{Graph: GraphSpec{Family: f.Name, N: 16}, Seed: 7}.Resolve()
			if err != nil {
				t.Fatal(err)
			}
			if r.Graph.NumNodes() < 2 {
				t.Fatalf("graph too small: %d nodes", r.Graph.NumNodes())
			}
			if len(r.X0) != r.Graph.NumNodes() {
				t.Fatalf("x0 length %d for %d nodes", len(r.X0), r.Graph.NumNodes())
			}
			if f.Partitioned && r.Partition == nil {
				t.Error("partitioned family resolved without partition")
			}
			if r.Spec.Graph.N != r.Graph.NumNodes() {
				t.Errorf("normalized N=%d but graph has %d nodes", r.Spec.Graph.N, r.Graph.NumNodes())
			}
			alg, err := r.NewAlgorithm(nil)
			if err != nil {
				t.Fatalf("building default algorithm: %v", err)
			}
			if alg.Variance() < 0 {
				t.Error("negative initial variance")
			}
		})
	}
}

// TestResolveDeterministic: the same spec resolves to the identical graph
// and initial vector, even for random families.
func TestResolveDeterministic(t *testing.T) {
	spec := Spec{
		Graph: GraphSpec{Family: "planted", N: 20},
		Algo:  AlgoSpec{Name: "A"},
		Init:  "random",
		Rates: "random",
		Seed:  42,
	}
	a, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", a.Graph.NumEdges(), b.Graph.NumEdges())
	}
	for i, e := range a.Graph.Edges() {
		if b.Graph.Edge(graph.EdgeID(i)) != e {
			t.Fatalf("edge %d differs", i)
		}
	}
	for i := range a.X0 {
		if a.X0[i] != b.X0[i] {
			t.Fatalf("x0[%d] differs: %v vs %v", i, a.X0[i], b.X0[i])
		}
	}
	for i := range a.Rates {
		if a.Rates[i] != b.Rates[i] {
			t.Fatalf("rates[%d] differs", i)
		}
	}
}

// TestAlgorithmVariants exercises the algorithm spec knobs.
func TestAlgorithmVariants(t *testing.T) {
	base := GraphSpec{Family: "dumbbell", N: 12, Cut: 1}
	cases := []AlgoSpec{
		{Name: "vanilla"},
		{Name: "convex", Alpha: 0.75},
		{Name: "pushsum"},
		{Name: "A"},
		{Name: "A", Weight: "paper"},
		{Name: "A", Weight: "custom", W: 5},
		{Name: "A", EpochC: 2},
		{Name: "A", EpochTicks: 3},
	}
	for _, a := range cases {
		r, err := Spec{Graph: base, Algo: a, Seed: 3}.Resolve()
		if err != nil {
			t.Fatalf("%+v: resolve: %v", a, err)
		}
		alg, err := r.NewAlgorithm(rng.New(1))
		if err != nil {
			t.Fatalf("%+v: build: %v", a, err)
		}
		if alg.Name() == "" {
			t.Errorf("%+v: empty algorithm name", a)
		}
	}
	// Unknown spellings are rejected.
	for _, bad := range []Spec{
		{Graph: base, Algo: AlgoSpec{Name: "magic"}},
		{Graph: base, Algo: AlgoSpec{Name: "A", Weight: "heavy"}},
		{Graph: GraphSpec{Family: "nosuch"}},
		{Graph: base, Init: "nosuch"},
		{Graph: base, Rates: "nosuch"},
	} {
		if _, err := bad.Resolve(); err == nil {
			t.Errorf("%+v: expected resolve error", bad)
		}
	}
}

// TestSpecJSONRoundTrip: marshalling a normalized spec and parsing it back
// yields the same normalized spec, and the serialized form matches the
// checked-in golden file (the schema contract for sweep reports).
func TestSpecJSONRoundTrip(t *testing.T) {
	specs := []Spec{
		{Graph: GraphSpec{Family: "dumbbell", N: 64, Cut: 2}, Algo: AlgoSpec{Name: "A", EpochC: 1.5}, Seed: 9},
		{Graph: GraphSpec{Family: "sensor", N: 40, Cut: 3}, Algo: AlgoSpec{Name: "convex", Alpha: 0.8}, Init: "random", Rates: "nodeclock", Stop: StopSpec{Trials: 3, MaxTime: 500}},
		{Graph: GraphSpec{Family: "ringofcliques", Blocks: 5, N: 20}, Algo: AlgoSpec{Name: "vanilla"}},
		{Graph: GraphSpec{Family: "hierdumbbell", N: 24, Cut: 1, InnerCut: 2}, Algo: AlgoSpec{Name: "A", Weight: "paper"}},
	}
	var normalized []Spec
	for _, s := range specs {
		r, err := s.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		normalized = append(normalized, r.Spec)
	}
	got, err := json.MarshalIndent(normalized, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "specs_golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("golden mismatch (re-run with -update to accept):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	// Parse the golden bytes back and re-normalize: must be a fixed point.
	var back []Spec
	if err := json.Unmarshal(want, &back); err != nil {
		t.Fatal(err)
	}
	for i, s := range back {
		r, err := s.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		if r.Spec != normalized[i] {
			t.Errorf("spec %d not a round-trip fixed point:\n got %+v\nwant %+v", i, r.Spec, normalized[i])
		}
	}
}

// TestParseSpecRejectsUnknownFields guards the schema against typos.
func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec(strings.NewReader(`{"graph": {"family": "dumbbell", "nodes": 64}}`))
	if err == nil {
		t.Fatal("expected error for unknown field")
	}
}

func TestLabel(t *testing.T) {
	s := Spec{Graph: GraphSpec{Family: "dumbbell", N: 64, Cut: 2}, Algo: AlgoSpec{Name: "A", EpochC: 2}}
	if got := s.Label(); got != "dumbbell/n=64/cut=2/A/C=2" {
		t.Errorf("label = %q", got)
	}
}

// TestAllCutEdgesSpec covers the multi-cut-edge extension flag: JSON
// round-trip, label marking, and that the resolved Algorithm A actually
// carries the scaled epoch (K differs from the single-edge default once
// |E12| > 1).
func TestAllCutEdgesSpec(t *testing.T) {
	spec := Spec{
		Graph: GraphSpec{Family: "dumbbell", N: 16, Cut: 4},
		Algo:  AlgoSpec{Name: "A", AllCutEdges: true},
	}
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"all_cut_edges":true`) {
		t.Errorf("JSON missing all_cut_edges: %s", data)
	}
	back, err := ParseSpec(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Algo.AllCutEdges {
		t.Error("round-trip lost AllCutEdges")
	}
	if !strings.Contains(spec.Label(), "/allcut") {
		t.Errorf("label %q missing /allcut marker", spec.Label())
	}

	r, err := spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	allAlg, err := r.NewAlgorithm(rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	single := spec
	single.Algo.AllCutEdges = false
	rs, err := single.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	singleAlg, err := rs.NewAlgorithm(rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	allK := allAlg.(*core.SparseCutAveraging).EpochTicks()
	singleK := singleAlg.(*core.SparseCutAveraging).EpochTicks()
	if allK <= singleK {
		t.Errorf("all-cut-edges K=%d not scaled above single-edge K=%d", allK, singleK)
	}
}
