package flight

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// DumpVersion is the current dump schema version (both encodings).
const DumpVersion = 1

// binaryMagic opens every binary dump; readers auto-detect the format by
// it (JSON dumps start with '{').
var binaryMagic = [4]byte{'S', 'C', 'F', 'R'}

// recordSize is the fixed on-disk size of one binary record.
const recordSize = 48

// Dump is a serialized flight capture: the merged per-node rings in
// recorder-global arrival order. Both encodings are byte-deterministic
// functions of the content — encoding the same dump twice yields identical
// bytes, and decode∘encode is the identity — so dumps from deterministic
// producers (the model checker's replayer) byte-diff clean across runs.
type Dump struct {
	Version int `json:"version"`
	// Nodes and RingCap record the recorder geometry.
	Nodes   int `json:"nodes"`
	RingCap int `json:"ring_cap"`
	// Overwritten counts records lost to ring wrap-around — the flight
	// recorder's explicit "history was truncated" marker.
	Overwritten int64 `json:"overwritten,omitempty"`
	// Events is the merged record stream, in recorder arrival order.
	Events []Record `json:"events"`
}

// sortRecords restores recorder-global arrival order after a multi-ring
// merge. Records decoded from a dump (gseq zero) keep their stream order.
func sortRecords(recs []Record) {
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].gseq < recs[j].gseq })
}

// WriteJSON writes the dump as compact one-record-per-line JSON: stable
// field order (struct order), no map iteration anywhere, trailing newline.
func (d *Dump) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\n  \"version\": %d,\n  \"nodes\": %d,\n  \"ring_cap\": %d,\n", d.Version, d.Nodes, d.RingCap)
	if d.Overwritten != 0 {
		fmt.Fprintf(bw, "  \"overwritten\": %d,\n", d.Overwritten)
	}
	fmt.Fprintf(bw, "  \"events\": [")
	for i := range d.Events {
		line, err := json.Marshal(&d.Events[i])
		if err != nil {
			return fmt.Errorf("flight: encoding record %d: %w", i, err)
		}
		if i > 0 {
			bw.WriteString(",")
		}
		bw.WriteString("\n    ")
		bw.Write(line)
	}
	if len(d.Events) > 0 {
		bw.WriteString("\n  ")
	}
	bw.WriteString("]\n}\n")
	return bw.Flush()
}

// WriteBinary writes the dump in the fixed binary framing: magic, header,
// then one 48-byte little-endian record per event.
func (d *Dump) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.Write(binaryMagic[:])
	var hdr [28]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(d.Version))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(d.Nodes))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(d.RingCap))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(d.Overwritten))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(len(d.Events)))
	bw.Write(hdr[:])
	var buf [recordSize]byte
	for i := range d.Events {
		encodeRecord(&buf, &d.Events[i])
		bw.Write(buf[:])
	}
	return bw.Flush()
}

func encodeRecord(buf *[recordSize]byte, r *Record) {
	binary.LittleEndian.PutUint64(buf[0:], uint64(r.TimeNs))
	binary.LittleEndian.PutUint64(buf[8:], r.Seq)
	binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(r.X))
	binary.LittleEndian.PutUint32(buf[24:], uint32(r.Init))
	binary.LittleEndian.PutUint32(buf[28:], uint32(r.Node))
	binary.LittleEndian.PutUint32(buf[32:], uint32(r.Peer))
	binary.LittleEndian.PutUint32(buf[36:], uint32(r.Edge))
	buf[40] = byte(r.Kind)
	buf[41] = r.Msg
	buf[42] = r.Re
	buf[43] = r.Flags
	buf[44], buf[45], buf[46], buf[47] = 0, 0, 0, 0
}

func decodeRecord(buf *[recordSize]byte) Record {
	return Record{
		TimeNs: int64(binary.LittleEndian.Uint64(buf[0:])),
		Seq:    binary.LittleEndian.Uint64(buf[8:]),
		X:      math.Float64frombits(binary.LittleEndian.Uint64(buf[16:])),
		Init:   int32(binary.LittleEndian.Uint32(buf[24:])),
		Node:   int32(binary.LittleEndian.Uint32(buf[28:])),
		Peer:   int32(binary.LittleEndian.Uint32(buf[32:])),
		Edge:   int32(binary.LittleEndian.Uint32(buf[36:])),
		Kind:   EventKind(buf[40]),
		Msg:    buf[41],
		Re:     buf[42],
		Flags:  buf[43],
	}
}

// ReadDump parses a dump from r, auto-detecting the encoding by its first
// bytes (binary magic vs JSON).
func ReadDump(r io.Reader) (*Dump, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(4)
	if err != nil {
		return nil, fmt.Errorf("flight: reading dump header: %w", err)
	}
	if [4]byte(head) == binaryMagic {
		return readBinary(br)
	}
	d := new(Dump)
	if err := json.NewDecoder(br).Decode(d); err != nil {
		return nil, fmt.Errorf("flight: parsing JSON dump: %w", err)
	}
	return d, d.validate()
}

func readBinary(br *bufio.Reader) (*Dump, error) {
	var hdr [4 + 28]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("flight: reading binary header: %w", err)
	}
	d := &Dump{
		Version:     int(binary.LittleEndian.Uint32(hdr[4:])),
		Nodes:       int(binary.LittleEndian.Uint32(hdr[8:])),
		RingCap:     int(binary.LittleEndian.Uint32(hdr[12:])),
		Overwritten: int64(binary.LittleEndian.Uint64(hdr[16:])),
	}
	count := binary.LittleEndian.Uint64(hdr[24:])
	const maxRecords = 1 << 28 // 12 GiB of records; anything past this is a corrupt count
	if count > maxRecords {
		return nil, fmt.Errorf("flight: binary dump claims %d records", count)
	}
	d.Events = make([]Record, 0, count)
	var buf [recordSize]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("flight: reading record %d of %d: %w", i, count, err)
		}
		d.Events = append(d.Events, decodeRecord(&buf))
	}
	return d, d.validate()
}

func (d *Dump) validate() error {
	if d.Version != DumpVersion {
		return fmt.Errorf("flight: dump version %d, this build reads %d", d.Version, DumpVersion)
	}
	return nil
}

// WriteFile writes the dump to path: JSON when the name ends in ".json",
// the binary framing otherwise.
func (d *Dump) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if len(path) >= 5 && path[len(path)-5:] == ".json" {
		err = d.WriteJSON(f)
	} else {
		err = d.WriteBinary(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReadFile loads a dump written by WriteFile (either encoding).
func ReadFile(path string) (*Dump, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDump(f)
}
