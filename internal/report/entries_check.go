package report

// The check-shaped experiments: claims that are not Tav-vs-bound tables
// (variance trajectories, the Section 3 dominance machinery, the Theorem 3
// walk tail, the swap-weight algebra, the synchronous diffusion baseline,
// and the distributed exchange rule). Each runs deterministically from
// Params.Seed and reports claim-vs-threshold checks.

import (
	"fmt"
	"math"

	"sparsecut/internal/core"
	"sparsecut/internal/dist"
	"sparsecut/internal/gossip"
	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
	"sparsecut/internal/scenario"
	"sparsecut/internal/sim"
	"sparsecut/internal/spectral"
	"sparsecut/internal/stats"
	"sparsecut/internal/sweep"
	"sparsecut/internal/syncsim"
	"sparsecut/internal/walk"
)

func init() {
	register(Entry{
		ID:    "E5",
		Title: "variance trajectories varX(t)/varX(0), vanilla vs Algorithm A",
		Claim: "Section 1/3: A's variance decays in a few epochs (with transient non-convex spikes) while vanilla decays at rate ~1/n across the cut",
		Run:   runE5,
	})
	register(Entry{
		ID:    "E6",
		Title: "stochastic dominance of the epoch log-variance process",
		Claim: "Section 3: per-epoch increments of half-log-variance are dominated by the walk with steps +log n (p=1/2) / -(3/2) log n; weak-contraction epochs occur with frequency <= 1/2 and no increment exceeds log n",
		Run:   runE6,
	})
	register(Entry{
		ID:    "E7",
		Title: "Theorem 3: sub-Gaussian tail of the simple random walk",
		Claim: "Theorem 3: P[S_n >= s sqrt(n)] <= c exp(-beta s^2) for absolute constants c, beta",
		Run:   runE7,
	})
	register(Entry{
		ID:    "E8",
		Title: "ablation: swap-weight coefficient (paper n1 vs exact n1*n2/n)",
		Claim: "Section 1.0.1 writes the coefficient as n1; exact algebra gives w* = n1*n2/n. One mixed-state swap contracts the side-mean mass by |1 - w/w*| — the literal n1 on equal sides gives factor 1 (no contraction)",
		Run:   runE8,
	})
	register(Entry{
		ID:    "E11",
		Title: "non-convex baseline: first/second-order diffusion (ref [5]) vs Algorithm A",
		Claim: "Introduction: second-order (non-convex) diffusion beats first-order, but both remain cut-limited on the dumbbell; A's targeted non-convexity does not",
		Run:   runE11,
	})
	register(Entry{
		ID:    "E12",
		Title: "decentralized execution: the message-passing exchange rule",
		Claim: "Section 1: the algorithm is decentralized — a local lock/propose/commit exchange rule over an explicit transport reproduces the simulator's behaviour",
		Run:   runE12,
	})
}

// dumbbellCase builds the symmetric dumbbell workload with its worst-case
// initial vector.
func dumbbellCase(n, cutEdges int) (*graph.Graph, *graph.Partition, []float64, error) {
	g, p, err := graph.SymmetricDumbbell(n, cutEdges)
	if err != nil {
		return nil, nil, nil, err
	}
	return g, p, gossip.CutIndicator(p), nil
}

func runE5(p Params) (Section, error) {
	var sec Section
	n := pick(p, 32, 128)
	horizon := pick(p, 40.0, 120.0)
	g, part, x0, err := dumbbellCase(n, 1)
	if err != nil {
		return sec, err
	}
	root := rng.New(p.Seed)

	onSide1 := make([]bool, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		onSide1[u] = part.SideOf(graph.NodeID(u)) == graph.Side1
	}
	sideGap := func(vals []float64) float64 {
		var s1, s2 float64
		for u, x := range vals {
			if onSide1[u] {
				s1 += x
			} else {
				s2 += x
			}
		}
		return math.Abs(s1/float64(part.Size1()) - s2/float64(part.Size2()))
	}

	const segments = 4
	tbl := Table{
		Name: fmt.Sprintf("variance ratio varX(t)/varX(0) and cross-cut gap |mu1-mu2|, dumbbell n=%d", n),
		Columns: []string{"algorithm",
			fmt.Sprintf("ratio@t=%g", horizon/4), fmt.Sprintf("ratio@t=%g", horizon/2),
			fmt.Sprintf("ratio@t=%g", 3*horizon/4), fmt.Sprintf("ratio@t=%g", horizon),
			"final |mu1-mu2|"},
	}
	finals := map[string]float64{}
	for _, which := range []string{"vanilla", "algorithm-A"} {
		var alg gossip.Algorithm
		if which == "vanilla" {
			alg, err = gossip.NewVanilla(g, x0)
		} else {
			alg, err = core.New(g, x0, core.WithPartition(part))
		}
		if err != nil {
			return sec, err
		}
		var0 := alg.Variance()
		eng, err := sim.NewEngine(g, alg, sim.WithRNG(root.Split()))
		if err != nil {
			return sec, err
		}
		row := []string{which}
		var final float64
		for i := 1; i <= segments; i++ {
			eng.Run(sim.Until(horizon * float64(i) / segments))
			final = alg.Variance() / var0
			row = append(row, fmt.Sprintf("%.4g", final))
		}
		row = append(row, fmt.Sprintf("%.4g", sideGap(alg.Values())))
		tbl.Rows = append(tbl.Rows, row)
		finals[which] = final
		sec.addMetric("final-ratio-"+which, final)
	}
	sec.Tables = append(sec.Tables, tbl)
	sec.addCheck("final ratio of A relative to vanilla", finals["algorithm-A"]/finals["vanilla"],
		"< 1: A ends far below vanilla", finals["algorithm-A"] < finals["vanilla"])
	sec.addCheck("final ratio of A", finals["algorithm-A"],
		"< 1e-8: a few epochs fully annihilate the cut imbalance", finals["algorithm-A"] < 1e-8)
	sec.Notes = append(sec.Notes,
		"Full trajectories (400-point downsampled CSV) are available via `go run ./cmd/gossipsim -graph dumbbell -algo A -csv`.")
	return sec, nil
}

func runE6(p Params) (Section, error) {
	var sec Section
	n := pick(p, 32, 48)
	// The mean-increment statistic is censoring-biased (strong epochs fall
	// through the float noise floor and end a run's measurable prefix), so
	// quick mode still needs a few dozen runs for its sign to be stable.
	runs := pick(p, 24, 40)
	// Slow-mixing sides (cycles) keep several epochs above the float noise
	// floor, so the per-epoch contraction is actually measurable; clique
	// sides contract by ~n^-6 per epoch and hit the floor immediately.
	m := n / 2
	g, part, err := graph.Join(graph.Cycle(m), graph.Cycle(m),
		[][2]graph.NodeID{{graph.NodeID(m - 1), 0}})
	if err != nil {
		return sec, err
	}
	root := rng.New(p.Seed)

	// Collect per-epoch half-log-variance ratios at swap boundaries.
	// Epochs that fall through the float noise floor are certainly
	// stronger contractions than -(3/2)log n, so they count as strong and
	// end the measurable prefix of the run.
	const floor = 1e-24
	var allIncrements []float64 // finite, measurable increments
	flooredStrong := 0
	epochsToThreshold := make([]float64, 0, runs)
	for run := 0; run < runs; run++ {
		var ratios []float64
		var var0 float64
		crossedAt := -1
		alg, err := core.New(g, gossip.CutIndicator(part),
			core.WithPartition(part), core.WithEpochConstant(1.2),
			core.WithSwapListener(func(ev core.SwapEvent) {
				if var0 == 0 {
					return
				}
				ratio := ev.VarAfter / var0
				ratios = append(ratios, ratio)
				if crossedAt < 0 && ratio < math.Exp(-2) {
					crossedAt = int(ev.Index)
				}
			}))
		if err != nil {
			return sec, err
		}
		var0 = alg.Variance()
		eng, err := sim.NewEngine(g, alg, sim.WithRNG(root.Split()))
		if err != nil {
			return sec, err
		}
		eng.Run(sim.Until(10 * alg.EpochDuration()))
		prev := 1.0
		for _, r := range ratios {
			if r <= floor {
				flooredStrong++
				break // deeper epochs are below measurement precision
			}
			allIncrements = append(allIncrements, 0.5*(math.Log(r)-math.Log(prev)))
			prev = r
		}
		if crossedAt > 0 {
			epochsToThreshold = append(epochsToThreshold, float64(crossedAt))
		}
	}
	if len(allIncrements) == 0 {
		return sec, fmt.Errorf("E6: no epoch increments collected")
	}

	logN := math.Log(float64(n))
	weak, hard := 0, 0
	maxInc := math.Inf(-1)
	for _, inc := range allIncrements {
		if inc > -1.5*logN {
			weak++
		}
		if inc > logN*(1+1e-9) {
			hard++
		}
		if inc > maxInc {
			maxInc = inc
		}
	}
	total := len(allIncrements) + flooredStrong
	fracWeak := float64(weak) / float64(total)
	meanInc := stats.Mean(allIncrements)

	// Compare the empirical epochs-to-e^-2 against the dominating walk's
	// prediction for the same level.
	domQ, err := walk.HittingQuantile(root.Split(), n, -1 /* half-log scale */, 1-1/math.E, 2000, 400)
	if err != nil {
		return sec, err
	}
	empQ := math.NaN()
	if len(epochsToThreshold) > 0 {
		empQ, err = stats.Quantile(epochsToThreshold, 1-1/math.E)
		if err != nil {
			return sec, err
		}
	}

	sec.Notes = append(sec.Notes, fmt.Sprintf(
		"Cycle-dumbbell n=%d: %d measurable + %d floored epochs from %d runs; empirical epochs to e^-2 q=%.3g vs dominating-walk q=%.3g.",
		n, len(allIncrements), flooredStrong, runs, empQ, domQ))
	sec.addCheck("mean measurable increment of (1/2)log var", meanInc,
		fmt.Sprintf("<= drift -(log n)/4 = %.3f is the dominance drift; required < 0", -logN/4), meanInc < 0)
	sec.addCheck("max increment", maxInc,
		fmt.Sprintf("<= log n = %.3f (hard bound, eq. 12)", logN), maxInc <= logN*(1+1e-9))
	sec.addCheck("frac weak epochs (inc > -1.5 log n)", fracWeak, "<= 1/2 (Lemma 1)", fracWeak <= 0.5)
	sec.addCheck("hard violations", float64(hard), "= 0", hard == 0)
	sec.addMetric("frac-weak", fracWeak)
	sec.addMetric("hard-violations", float64(hard))
	sec.addMetric("mean-increment", meanInc)
	sec.addMetric("max-increment", maxInc)
	sec.addMetric("empirical-epochs", empQ)
	sec.addMetric("dominating-epochs", domQ)
	return sec, nil
}

func runE7(p Params) (Section, error) {
	var sec Section
	steps := pick(p, 144, 400)
	trials := pick(p, 4000, 60000)
	ss := []float64{0.5, 1, 1.5, 2, 2.5, 3}
	fit, err := walk.FitTail(rng.New(p.Seed), steps, ss, trials)
	if err != nil {
		return sec, err
	}
	tbl := Table{
		Name:    fmt.Sprintf("P[S_n >= s sqrt(n)], n=%d, %d trials per point", steps, trials),
		Columns: []string{"s", "empirical P", "fitted c*exp(-beta s^2)"},
	}
	for i, s := range fit.S {
		tbl.Rows = append(tbl.Rows, []string{
			fmt.Sprintf("%.4g", s),
			fmt.Sprintf("%.4g", fit.P[i]),
			fmt.Sprintf("%.4g", fit.C*math.Exp(-fit.Beta*s*s)),
		})
	}
	sec.Tables = append(sec.Tables, tbl)
	sec.addCheck("fitted beta", fit.Beta, "within [0.25, 1] around the Gaussian-limit 1/2",
		fit.Beta >= 0.25 && fit.Beta <= 1)
	sec.addCheck("fit R2", fit.R2, ">= 0.9", fit.R2 >= 0.9)
	sec.addMetric("c", fit.C)
	sec.addMetric("beta", fit.Beta)
	sec.addMetric("r2", fit.R2)
	return sec, nil
}

// swapContraction measures the one-swap contraction of the side-mean mass
// |mu1| + |mu2| starting from a perfectly mixed worst-case state.
func swapContraction(g *graph.Graph, part *graph.Partition, weight float64) (float64, error) {
	n := g.NumNodes()
	x0 := make([]float64, n)
	n1 := float64(part.Size1())
	n2 := float64(part.Size2())
	for u := 0; u < n; u++ {
		if part.SideOf(graph.NodeID(u)) == graph.Side1 {
			x0[u] = 1
		} else {
			x0[u] = -n1 / n2
		}
	}
	alg, err := core.New(g, x0, core.WithPartition(part),
		core.WithEpochTicks(1), core.WithWeight(weight))
	if err != nil {
		return 0, err
	}
	mu1a, mu2a := alg.SideMeans()
	before := math.Abs(mu1a) + math.Abs(mu2a)
	alg.HandleTick(alg.CutEdge(), 1)
	mu1b, mu2b := alg.SideMeans()
	after := math.Abs(mu1b) + math.Abs(mu2b)
	return after / before, nil
}

func runE8(p Params) (Section, error) {
	var sec Section
	n := pick(p, 32, 128)
	cases := []struct {
		label  string
		n1, n2 int
	}{
		{"symmetric", n / 2, n / 2},
		{"asymmetric", n / 8, n - n/8},
	}
	tbl := Table{
		Name:    "one-swap contraction of |mu1|+|mu2| from a perfectly mixed state",
		Columns: []string{"sides", "weight", "w/w*", "measured contraction", "predicted |1 - w/w*|"},
	}
	contractions := map[string]float64{}
	for _, c := range cases {
		g, part, err := graph.Dumbbell(c.n1, c.n2, 1)
		if err != nil {
			return sec, err
		}
		wStar := core.ExactWeight(part)
		weights := []struct {
			name string
			w    float64
		}{
			{"0.5*w*", 0.5 * wStar},
			{"w* (exact)", wStar},
			{"1.5*w*", 1.5 * wStar},
			{"n1 (paper)", core.PaperWeight(part)},
		}
		for _, wt := range weights {
			got, err := swapContraction(g, part, wt.w)
			if err != nil {
				return sec, err
			}
			pred := math.Abs(1 - wt.w/wStar)
			tbl.Rows = append(tbl.Rows, []string{
				fmt.Sprintf("%s(%d,%d)", c.label, c.n1, c.n2), wt.name,
				fmt.Sprintf("%.4g", wt.w/wStar), fmt.Sprintf("%.4g", got), fmt.Sprintf("%.4g", pred),
			})
			key := fmt.Sprintf("contraction-%s-%s", c.label, wt.name)
			contractions[c.label+"/"+wt.name] = got
			sec.addMetric(key, got)
		}
	}
	sec.Tables = append(sec.Tables, tbl)
	sec.addCheck("exact weight w* on symmetric sides", contractions["symmetric/w* (exact)"],
		"~0: the swap annihilates the side means", contractions["symmetric/w* (exact)"] < 1e-9)
	sec.addCheck("paper weight n1 on symmetric sides", contractions["symmetric/n1 (paper)"],
		"= 1: the literal n1 equals 2*w* and contracts nothing",
		math.Abs(contractions["symmetric/n1 (paper)"]-1) < 1e-9)
	sec.addCheck("paper weight n1 on asymmetric sides", contractions["asymmetric/n1 (paper)"],
		"< 0.5: on very asymmetric cuts n1 ~ w* and the paper's coefficient is fine",
		contractions["asymmetric/n1 (paper)"] < 0.5)
	return sec, nil
}

func runE11(p Params) (Section, error) {
	var sec Section
	n := pick(p, 32, 64)
	g, _, x0, err := dumbbellCase(n, 1)
	if err != nil {
		return sec, err
	}
	const ratio = 1.353e-1 // e^-2, matching Definition 1's threshold
	maxRounds := 2_000_000

	first, err := syncsim.NewFirstOrder(g, x0)
	if err != nil {
		return sec, err
	}
	r1, ok1 := first.RoundsToRatio(ratio, maxRounds)

	beta, err := syncsim.OptimalBeta(g, spectral.Options{})
	if err != nil {
		return sec, err
	}
	second, err := syncsim.NewSecondOrder(g, x0, beta)
	if err != nil {
		return sec, err
	}
	r2, ok2 := second.RoundsToRatio(ratio, maxRounds)

	// Algorithm A on the same workload through the scenario layer (the
	// same estimator cells E3 uses).
	cell, err := singleCell(p, scenario.Spec{
		Graph: scenario.GraphSpec{Family: "dumbbell", N: n, Cut: 1},
		Algo:  scenario.AlgoSpec{Name: "A"},
		Stop:  scenario.StopSpec{Trials: e1Trials(p)},
	})
	if err != nil {
		return sec, err
	}
	// One asynchronous time unit fires |E| edge clocks = 2|E| node updates;
	// one synchronous round performs n node updates. Equivalent rounds:
	eqRounds := cell.Tav * 2 * float64(g.NumEdges()) / float64(n)

	tbl := Table{
		Name:    fmt.Sprintf("rounds to varX ratio e^-2, dumbbell n=%d", n),
		Columns: []string{"scheme", "rounds (or equivalent)", "converged"},
	}
	tbl.Rows = append(tbl.Rows,
		[]string{"first-order diffusion", fmt.Sprintf("%d", r1), fmt.Sprintf("%v", ok1)},
		[]string{fmt.Sprintf("second-order diffusion (beta=%.3f)", beta), fmt.Sprintf("%d", r2), fmt.Sprintf("%v", ok2)},
		[]string{"algorithm A (async, node-update-normalised)", fmt.Sprintf("%.4g", eqRounds), fmt.Sprintf("%v", cell.Censored == 0)},
	)
	sec.Tables = append(sec.Tables, tbl)
	sec.addCheck("second-order speedup over first-order", float64(r1)/math.Max(1, float64(r2)),
		"> 1 (ref [5] predicts ~sqrt)", r2 < r1)
	sec.addCheck("A equivalent rounds relative to first-order", eqRounds/math.Max(1, float64(r1)),
		"< 1: both diffusions remain cut-limited, A is not", eqRounds < float64(r1))
	sec.addMetric("rounds-first", float64(r1))
	sec.addMetric("rounds-second", float64(r2))
	sec.addMetric("rounds-A-equivalent", eqRounds)
	return sec, nil
}

// E12 verifies decentralization deterministically: the distributed
// exchange rule (internal/dist) and Algorithm A (internal/core) are driven
// in lockstep over the identical tick sequence and must agree to float
// tolerance, and the rule's own trajectory must converge. The wall-clock
// cluster (goroutine-per-node, lossy transports) is inherently
// scheduling-dependent and therefore lives in `go test ./internal/dist`
// rather than in this byte-deterministic document.
func runE12(p Params) (Section, error) {
	var sec Section
	n := pick(p, 12, 16)
	g, part, err := graph.Dumbbell(n/2, n/2, 1)
	if err != nil {
		return sec, err
	}
	x0 := gossip.CutIndicator(part)
	var0 := 1.0 // CutIndicator on a symmetric dumbbell has variance 1

	// K sized per the paper's formula K = C·(Tvan1+Tvan2)·ln n ≈ 5 for
	// this dumbbell: swaps spaced a few ticks apart let the sides mix in
	// between (see the legacy E12 discussion in git history).
	const epochK = 4
	weight := core.ExactWeight(part)

	alg, err := core.New(g, x0, core.WithPartition(part),
		core.WithEpochTicks(epochK), core.WithWeight(weight))
	if err != nil {
		return sec, err
	}
	rule, err := dist.NewSparseCutRule(part, alg.CutEdge(), epochK, weight)
	if err != nil {
		return sec, err
	}

	// Lockstep: the same uniformly-random edge sequence drives both the
	// simulator algorithm and the exchange rule applied to a raw vector.
	vals := append([]float64(nil), x0...)
	r := rng.New(p.Seed)
	events := pick(p, 4000, 20000)
	maxDiv := 0.0
	for i := 0; i < events; i++ {
		e := graph.EdgeID(r.Intn(g.NumEdges()))
		a, b := g.Edge(e).U, g.Edge(e).V
		d := rule.Delta(e, a, vals[a], vals[b])
		vals[a] += d
		vals[b] -= d
		alg.HandleTick(e, float64(i))
		for u, x := range alg.Values() {
			if div := math.Abs(x - vals[u]); div > maxDiv {
				maxDiv = div
			}
		}
	}
	var mean, varX float64
	for _, x := range vals {
		mean += x
	}
	mean /= float64(len(vals))
	for _, x := range vals {
		varX += (x - mean) * (x - mean)
	}
	varX /= float64(len(vals))

	tbl := Table{
		Name:    fmt.Sprintf("lockstep: dist exchange rule vs Algorithm A, dumbbell n=%d, %d ticks", n, events),
		Columns: []string{"quantity", "value"},
	}
	tbl.Rows = append(tbl.Rows,
		[]string{"swaps fired (rule)", fmt.Sprintf("%d", rule.Swaps())},
		[]string{"max value divergence", fmt.Sprintf("%.3g", maxDiv)},
		[]string{"rule-side final var ratio", fmt.Sprintf("%.3g", varX/var0)},
		[]string{"rule-side mean drift", fmt.Sprintf("%.3g", math.Abs(mean-alg.Mean()))},
	)
	sec.Tables = append(sec.Tables, tbl)
	sec.addCheck("max divergence between rule and simulator values", maxDiv,
		"< 1e-9 (identical update algebra, float-rounding apart)", maxDiv < 1e-9)
	sec.addCheck("swaps fired by the rule", float64(rule.Swaps()),
		"> 0 (the non-convex path is exercised)", rule.Swaps() > 0)
	sec.addCheck("rule-side final variance ratio", varX/var0,
		"< 1e-3 (the decentralized rule converges)", varX/var0 < 1e-3)
	sec.addMetric("ratio@sim", varX/var0)
	sec.addMetric("max-divergence", maxDiv)
	sec.Notes = append(sec.Notes,
		"The live goroutine-per-node runtime (Chan/Drop/Delay/TCP transports, message loss, abort accounting) is exercised by `go test ./internal/dist -race` and `go run ./cmd/distrun -compare`; its wall-clock scheduling is nondeterministic by nature and is excluded from this byte-deterministic document.")
	return sec, nil
}

// singleCell evaluates one scenario through the sweep engine (so it
// shares the estimator pathway and seed discipline of the grids).
func singleCell(p Params, spec scenario.Spec) (sweep.Cell, error) {
	rep, err := sweep.Run(sweep.Grid{Base: spec}, sweep.Config{Workers: 1, Seed: p.Seed})
	if err != nil {
		return sweep.Cell{}, err
	}
	c := rep.Cells[0]
	if c.Error != "" {
		return c, fmt.Errorf("cell %s: %s", c.Label, c.Error)
	}
	return c, nil
}
