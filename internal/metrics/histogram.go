package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count of every Histogram: bucket 0 holds
// non-positive values and bucket k (1 ≤ k ≤ 64) holds the log2 range
// [2^(k−1), 2^k − 1]. Together they cover every int64 exactly once, so no
// observation is ever out of range.
const NumBuckets = 65

// Histogram is a fixed-bucket log2 histogram for latencies (nanoseconds)
// and sizes (bytes, events): 65 power-of-two buckets, an exact count and
// an exact sum. Recording is two atomic adds — no allocation, no locking,
// no floating point — so it is safe on hot paths; the zero value is ready
// to use and methods are no-ops on a nil receiver.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// bucketIndex maps a value to its bucket: 0 for v ≤ 0, otherwise
// bits.Len64(v), i.e. 1+floor(log2 v).
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketBounds returns the inclusive [lo, hi] value range of bucket i.
// Bucket 0 is reported as [0, 0] although it also absorbs negative
// observations (clamped — a latency or size below zero is a measurement
// artifact, not a range to track).
func BucketBounds(i int) (lo, hi uint64) {
	if i <= 0 {
		return 0, 0
	}
	lo = uint64(1) << (i - 1)
	if i >= 64 {
		return lo, math.MaxUint64
	}
	return lo, uint64(1)<<i - 1
}

// Observe records v. Negative values count in bucket 0 and contribute 0 to
// the sum.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed values (negatives clamped to 0).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-quantile (q in [0, 1], clamped) of the
// snapshot's observations from its log2 buckets: the bucket holding the
// rank is found exactly, and the value is linearly interpolated inside
// the bucket's [Lo, Hi] range. The error is therefore bounded by the
// bucket width — under 2× at any value, and exact when a bucket holds a
// single distinct value (e.g. bucket 0). Returns NaN on an empty
// snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count <= 0 || len(s.Buckets) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	seen := 0.0
	for i, b := range s.Buckets {
		n := float64(b.Count)
		if seen+n >= rank || i == len(s.Buckets)-1 {
			lo, hi := float64(b.Lo), float64(b.Hi)
			if n <= 0 {
				return lo
			}
			frac := (rank - seen) / n
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		seen += n
	}
	return float64(s.Buckets[len(s.Buckets)-1].Hi) // unreachable
}

// snapshot captures the histogram's current state. Concurrent with writers
// the buckets are each individually exact but may not form a consistent
// cut; quiescent reads are exact.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			lo, hi := BucketBounds(i)
			s.Buckets = append(s.Buckets, Bucket{Lo: lo, Hi: hi, Count: n})
		}
	}
	return s
}
