// Package report is the reproduction pipeline: it re-expresses the paper's
// evaluation suite E1–E15 as declarative scenario grids (internal/scenario)
// run through the deterministic parallel sweep engine (internal/sweep) and
// the replica-batched simulation engine, computes the paper's predicted
// bounds per cell from internal/spectral (the Theorem 1 sparse-cut lower
// bound and the spectral-gap upper bounds), and renders the results as a
// deterministic REPRODUCTION.md with explicit PASS/FAIL margin checks,
// plus a machine-readable JSON twin.
//
// Key types: Entry (one registered experiment), Section (one experiment's
// finished tables, checks and metrics), Document (the full rendered
// suite), Params (quick/full mode, seed, workers). Generate runs the whole
// registry; cmd/repro and cmd/experiments are thin drivers.
//
// Determinism contract: a Document is a pure function of (mode, seed) —
// the sweep engine is bit-identical for any worker count, every
// check-shaped experiment derives all randomness from Params.Seed, and
// rendering iterates slices only (never maps), so the emitted Markdown and
// JSON byte-match across reruns. The package test proves it, and the CI
// job repro-smoke re-proves it on every push. See DESIGN.md §9.
package report

import (
	"fmt"
	"sort"
)

// Params configures a reproduction run.
type Params struct {
	// Quick selects CI-sized budgets (reduced n, trials); full mode
	// regenerates the committed REPRODUCTION.md numbers.
	Quick bool
	// Seed drives all randomness (default 1).
	Seed uint64
	// Workers is the sweep pool size (default GOMAXPROCS). It never
	// affects results, only wall-clock time.
	Workers int
}

func (p Params) withDefaults() Params {
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Mode renders the budget mode name used in document headers.
func (p Params) Mode() string {
	if p.Quick {
		return "quick"
	}
	return "full"
}

// pick returns quick when Params.Quick is set, full otherwise.
func pick[T any](p Params, quick, full T) T {
	if p.Quick {
		return quick
	}
	return full
}

// Verdict classifies one measured-vs-bound comparison.
type Verdict string

const (
	// Pass means the measurement satisfies the bound within the
	// documented margin (DESIGN.md §9).
	Pass Verdict = "PASS"
	// Fail means the measurement definitively violates the bound — even
	// accounting for censoring direction.
	Fail Verdict = "FAIL"
	// Cens means censored trials make the comparison inconclusive: the
	// measured value is only a lower bound on the true Tav, and the
	// check direction cannot be decided from it.
	Cens Verdict = "CENS"
	// None marks informational rows with no claimed bound.
	None Verdict = "-"
)

// Table is one rendered table: deterministic, pre-formatted cells.
type Table struct {
	Name    string     `json:"name,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
}

// Check is one derived claim check (a slope, a speedup, an equivalence
// tolerance) with its PASS/FAIL outcome.
type Check struct {
	Name        string  `json:"name"`
	Value       float64 `json:"value"`
	Requirement string  `json:"requirement"`
	Pass        bool    `json:"pass"`
}

// Metric is one named headline number, kept as an ordered list (not a
// map) so JSON output is deterministic. Benchmarks and tests key on the
// names.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Section is one experiment's finished output.
type Section struct {
	ID     string  `json:"id"`
	Title  string  `json:"title"`
	Claim  string  `json:"claim"`
	Tables []Table `json:"tables,omitempty"`
	// Checks are the derived claim checks; a section PASSes when none
	// fail and no table row is a definitive FAIL.
	Checks []Check  `json:"checks,omitempty"`
	Notes  []string `json:"notes,omitempty"`
	// Verdicts counts table-row verdicts for the summary.
	Verdicts VerdictCount `json:"verdicts"`
	Metrics  []Metric     `json:"metrics,omitempty"`
}

// VerdictCount tallies table-row verdicts.
type VerdictCount struct {
	Pass int `json:"pass"`
	Fail int `json:"fail"`
	Cens int `json:"cens"`
}

// countVerdict tallies one table-row verdict as it is computed (typed,
// never re-parsed from the rendered cells).
func (s *Section) countVerdict(v Verdict) {
	switch v {
	case Pass:
		s.Verdicts.Pass++
	case Fail:
		s.Verdicts.Fail++
	case Cens:
		s.Verdicts.Cens++
	}
}

func (s *Section) addMetric(name string, v float64) {
	s.Metrics = append(s.Metrics, Metric{Name: name, Value: v})
}

// Metric looks a headline number up by name.
func (s *Section) Metric(name string) (float64, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m.Value, true
		}
	}
	return 0, false
}

// MetricMap returns the metrics as a map for programmatic consumers
// (benchmarks, the facade).
func (s *Section) MetricMap() map[string]float64 {
	out := make(map[string]float64, len(s.Metrics))
	for _, m := range s.Metrics {
		out[m.Name] = m.Value
	}
	return out
}

func (s *Section) addCheck(name string, value float64, requirement string, pass bool) {
	s.Checks = append(s.Checks, Check{Name: name, Value: value, Requirement: requirement, Pass: pass})
}

// FailedChecks returns the names of failing checks.
func (s *Section) FailedChecks() []string {
	var out []string
	for _, c := range s.Checks {
		if !c.Pass {
			out = append(out, c.Name)
		}
	}
	return out
}

// Entry is one registered experiment of the reproduction suite.
type Entry struct {
	// ID is the experiment identifier ("E1".."E15").
	ID string
	// Title is a one-line description for listings.
	Title string
	// Claim cites the paper statement the experiment reproduces.
	Claim string
	// Run executes the experiment and returns its finished section.
	Run func(p Params) (Section, error)
}

var registry = map[string]Entry{}

func register(e Entry) {
	if _, dup := registry[e.ID]; dup {
		panic("report: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// Entries returns every registered experiment sorted by numeric ID.
func Entries() []Entry {
	out := make([]Entry, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		var a, b int
		fmt.Sscanf(out[i].ID, "E%d", &a)
		fmt.Sscanf(out[j].ID, "E%d", &b)
		return a < b
	})
	return out
}

// ByID looks an experiment up.
func ByID(id string) (Entry, bool) {
	e, ok := registry[id]
	return e, ok
}

// RunEntry executes one experiment with the section header fields filled.
// Verdict counts are tallied by runGrid as it computes them.
func (e Entry) RunEntry(p Params) (Section, error) {
	p = p.withDefaults()
	sec, err := e.Run(p)
	if err != nil {
		return Section{}, fmt.Errorf("report: %s: %w", e.ID, err)
	}
	sec.ID, sec.Title, sec.Claim = e.ID, e.Title, e.Claim
	return sec, nil
}

// Document is one finished reproduction: every section in suite order.
type Document struct {
	// Paper names the reproduced source.
	Paper string `json:"paper"`
	// Mode is "quick" or "full"; Seed is the root seed. The document is
	// a pure function of these two fields.
	Mode string `json:"mode"`
	Seed uint64 `json:"seed"`
	// Sections holds one entry per experiment, in suite order.
	Sections []Section `json:"sections"`
}

// PaperID is the reproduced paper's identifier.
const PaperID = "conf_podc_Narayanan08 — Hariharan Narayanan, \"Distributed averaging in the presence of a sparse cut\" (PODC 2008)"

// Generate runs the whole registry and assembles the document.
func Generate(p Params) (*Document, error) {
	return GenerateSubset(nil, p)
}

// GenerateSubset runs the named experiments (nil or empty = all), in suite
// order regardless of the requested order.
func GenerateSubset(ids []string, p Params) (*Document, error) {
	p = p.withDefaults()
	want := map[string]bool{}
	for _, id := range ids {
		if _, ok := ByID(id); !ok {
			return nil, fmt.Errorf("report: unknown experiment %q", id)
		}
		want[id] = true
	}
	doc := &Document{Paper: PaperID, Mode: p.Mode(), Seed: p.Seed}
	for _, e := range Entries() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		sec, err := e.RunEntry(p)
		if err != nil {
			return nil, err
		}
		doc.Sections = append(doc.Sections, sec)
	}
	return doc, nil
}

// Failures lists every definitive failure in the document, as
// "Ek: <check or table row>" strings. An empty result means the
// reproduction PASSes (censored rows are inconclusive, not failures).
func (d *Document) Failures() []string {
	var out []string
	for _, s := range d.Sections {
		for _, name := range s.FailedChecks() {
			out = append(out, fmt.Sprintf("%s: check %q failed", s.ID, name))
		}
		if s.Verdicts.Fail > 0 {
			out = append(out, fmt.Sprintf("%s: %d table row(s) FAIL", s.ID, s.Verdicts.Fail))
		}
	}
	return out
}
