package gossip

import (
	"fmt"

	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
)

// BatchState holds R independent replicas of one averaging process in a
// single flat structure-of-arrays buffer: replica-major × node, all rows
// initialised from the same x0 and centered by its mean (the same
// shift-invariance argument as State). It is the value store of the
// replica-batched simulation engine (sim.BatchEngine): the graph's flat
// endpoint arrays are shared across replicas and stay hot in cache while
// the engine round-robins replica chunks over them.
//
// Two families of entry points write the buffer. The lazy batch updates
// (AverageEdgeBatch, ConvexEdgeBatch, Set2Batch) touch only the values and
// defer the moment bookkeeping to the next moment read, exactly like the
// State *Lazy methods — the untracked hot path. The tracked variants
// (AverageEdgeBatchTracked, ConvexEdgeBatchTracked, Set2BatchTracked)
// maintain the per-replica moments eagerly and classify every event
// against an exceedance level using the division-free scaled comparison
//
//	var > level  ⇔  n·Σy² − (Σy)² > n²·level,
//
// so the averaging-time estimator's per-event variance test costs two
// multiplies and a compare instead of two divisions.
type BatchState struct {
	n      int
	fn     float64 // float64(n), hoisted for the scaled compares
	offset float64 // shared initial mean, added back on read
	vals   []float64
	// Per-replica incremental moments of the centered rows.
	sum     []float64
	sumSq   []float64
	updates []int  // point updates since the last exact resync
	dirty   []bool // lazy batch updates pending
}

// NewBatchState builds R replica rows initialised from x0 (copied). It
// panics if replicas < 1 or x0 is empty — the batch engines validate their
// inputs before reaching here.
func NewBatchState(x0 []float64, replicas int) *BatchState {
	if replicas < 1 {
		panic("gossip: NewBatchState needs at least one replica")
	}
	if len(x0) == 0 {
		panic("gossip: NewBatchState needs a non-empty initial vector")
	}
	n := len(x0)
	b := &BatchState{
		n:       n,
		fn:      float64(n),
		vals:    make([]float64, replicas*n),
		sum:     make([]float64, replicas),
		sumSq:   make([]float64, replicas),
		updates: make([]int, replicas),
		dirty:   make([]bool, replicas),
	}
	m := 0.0
	for _, v := range x0 {
		m += v
	}
	b.offset = m / float64(n)
	for rep := 0; rep < replicas; rep++ {
		row := b.row(rep)
		for i, v := range x0 {
			row[i] = v - b.offset
		}
		b.resync(rep)
	}
	return b
}

// Replicas returns the batch width R.
func (b *BatchState) Replicas() int { return len(b.sum) }

// N returns the node count per replica.
func (b *BatchState) N() int { return b.n }

// row returns replica rep's centered value slice.
func (b *BatchState) row(rep int) []float64 {
	return b.vals[rep*b.n : (rep+1)*b.n : (rep+1)*b.n]
}

// CopyInto writes replica rep's value vector (original frame) into dst. It
// panics if len(dst) != N().
func (b *BatchState) CopyInto(rep int, dst []float64) {
	if len(dst) != b.n {
		panic("gossip: CopyInto buffer length mismatch")
	}
	for i, v := range b.row(rep) {
		dst[i] = v + b.offset
	}
}

// Mean returns replica rep's current average value.
func (b *BatchState) Mean(rep int) float64 {
	b.syncIfDirty(rep)
	return b.offset + b.sum[rep]/b.fn
}

// Variance returns replica rep's population variance, recomputed exactly
// on the first read after a lazy batch update.
func (b *BatchState) Variance(rep int) float64 {
	b.syncIfDirty(rep)
	m := b.sum[rep] / b.fn
	v := b.sumSq[rep]/b.fn - m*m
	if v < 0 { // float rounding can push a converged replica slightly negative
		return 0
	}
	return v
}

// AverageEdgeBatch applies the vanilla exchange for every edge of the
// batch to replica rep, values only (lazy moments) — the untracked hot
// path, row-for-row identical to State.AverageEdgesLazy.
func (b *BatchState) AverageEdgeBatch(rep int, edges []graph.EdgeID, eu, ev []int32) {
	row, off := b.row(rep), b.offset
	for _, e := range edges {
		i, j := eu[e], ev[e]
		yi, yj := row[i], row[j]
		c := ((yi + off) + (yj + off)) / 2
		c -= off
		row[i] = c
		row[j] = c
	}
	b.dirty[rep] = true
}

// ConvexEdgeBatch is AverageEdgeBatch for the class-C exchange with mixing
// parameter alpha.
func (b *BatchState) ConvexEdgeBatch(rep int, edges []graph.EdgeID, eu, ev []int32, alpha float64) {
	row, off := b.row(rep), b.offset
	beta := 1 - alpha
	for _, e := range edges {
		i, j := eu[e], ev[e]
		xi, xj := row[i]+off, row[j]+off
		row[i] = alpha*xi + beta*xj - off
		row[j] = alpha*xj + beta*xi - off
	}
	b.dirty[rep] = true
}

// Set2Batch assigns nodes i and j of replica rep the values vi, vj
// (original frame), deferring the moment bookkeeping.
func (b *BatchState) Set2Batch(rep int, i, j int, vi, vj float64) {
	row := b.row(rep)
	row[i] = vi - b.offset
	row[j] = vj - b.offset
	b.dirty[rep] = true
}

// AverageEdgeBatchTracked applies the batch with eager per-event moments
// and returns the index within edges of the last event whose post-tick
// variance exceeded exceedLevel (-1 if none did) together with the
// post-chunk variance. The stored rows and moments are bit-identical to
// the State.AverageEdge sequence; the per-event classification uses the
// scaled division-free comparison, so it can differ from a State.Variance
// read only by one ulp at the threshold.
func (b *BatchState) AverageEdgeBatchTracked(rep int, edges []graph.EdgeID, eu, ev []int32, exceedLevel float64) (lastIdx int, endVar float64) {
	b.syncIfDirty(rep)
	row, off, fn := b.row(rep), b.offset, b.fn
	scaledLevel := exceedLevel * fn * fn
	sum, sumSq := b.sum[rep], b.sumSq[rep]
	lastIdx = -1
	for k, e := range edges {
		i, j := eu[e], ev[e]
		yi, yj := row[i], row[j]
		c := ((yi + off) + (yj + off)) / 2
		c -= off
		row[i] = c
		row[j] = c
		sum += c - yi
		sum += c - yj
		cc := c * c
		sumSq += cc - yi*yi
		sumSq += cc - yj*yj
		if sumSq*fn-sum*sum > scaledLevel {
			lastIdx = k
		}
	}
	return lastIdx, b.endChunk(rep, sum, sumSq, 2*len(edges))
}

// ConvexEdgeBatchTracked is AverageEdgeBatchTracked for the class-C
// exchange, mirroring State.ConvexEdge.
func (b *BatchState) ConvexEdgeBatchTracked(rep int, edges []graph.EdgeID, eu, ev []int32, alpha, exceedLevel float64) (lastIdx int, endVar float64) {
	b.syncIfDirty(rep)
	row, off, fn := b.row(rep), b.offset, b.fn
	scaledLevel := exceedLevel * fn * fn
	sum, sumSq := b.sum[rep], b.sumSq[rep]
	lastIdx = -1
	for k, e := range edges {
		i, j := eu[e], ev[e]
		yi, yj := row[i], row[j]
		xi, xj := yi+off, yj+off
		ci := alpha*xi + (1-alpha)*xj - off
		cj := alpha*xj + (1-alpha)*xi - off
		row[i] = ci
		row[j] = cj
		sum += ci - yi
		sum += cj - yj
		sumSq += ci*ci - yi*yi
		sumSq += cj*cj - yj*yj
		if sumSq*fn-sum*sum > scaledLevel {
			lastIdx = k
		}
	}
	return lastIdx, b.endChunk(rep, sum, sumSq, 2*len(edges))
}

// Set2BatchTracked assigns nodes i and j of replica rep the values vi, vj
// (original frame) with eager moments, mirroring State.Set2, and returns
// the scaled post-update variance n²·var for the caller's own exceedance
// compare (push-sum interleaves its mass arithmetic between events, so its
// tracked chunk loop lives in the ensemble). The caller must finish its
// chunk with EndChunk.
func (b *BatchState) Set2BatchTracked(rep, i, j int, vi, vj float64) float64 {
	row := b.row(rep)
	yi, yj := row[i], row[j]
	ci := vi - b.offset
	cj := vj - b.offset
	row[i] = ci
	row[j] = cj
	sum := b.sum[rep] + (ci - yi)
	sum += cj - yj
	sumSq := b.sumSq[rep] + (ci*ci - yi*yi)
	sumSq += cj*cj - yj*yj
	b.sum[rep], b.sumSq[rep] = sum, sumSq
	return sumSq*b.fn - sum*sum
}

// ScaledLevel converts a variance level to the scaled frame of the
// tracked comparisons (n²·level).
func (b *BatchState) ScaledLevel(level float64) float64 { return level * b.fn * b.fn }

// EndChunk closes a tracked chunk that updated the moments through
// Set2BatchTracked: it accounts the point updates, resyncs when due, and
// returns the exact-frame post-chunk variance.
func (b *BatchState) EndChunk(rep, pointUpdates int) float64 {
	return b.endChunk(rep, b.sum[rep], b.sumSq[rep], pointUpdates)
}

// endChunk stores the chunk's final moments, resyncs on the State cadence
// (at chunk rather than event granularity — the drift bound is the same
// order), and returns the post-chunk variance.
func (b *BatchState) endChunk(rep int, sum, sumSq float64, pointUpdates int) float64 {
	b.sum[rep], b.sumSq[rep] = sum, sumSq
	b.updates[rep] += pointUpdates
	if b.updates[rep] >= resyncInterval {
		b.resync(rep)
	}
	m := b.sum[rep] / b.fn
	v := b.sumSq[rep]/b.fn - m*m
	if v < 0 {
		return 0
	}
	return v
}

// syncIfDirty makes replica rep's moments exact after lazy batch updates.
func (b *BatchState) syncIfDirty(rep int) {
	if b.dirty[rep] {
		b.resync(rep)
	}
}

// resync recomputes replica rep's moments exactly.
func (b *BatchState) resync(rep int) {
	sum, sumSq := 0.0, 0.0
	for _, v := range b.row(rep) {
		sum += v
		sumSq += v * v
	}
	b.sum[rep], b.sumSq[rep] = sum, sumSq
	b.updates[rep] = 0
	b.dirty[rep] = false
}

// VanillaEnsemble is the replica-batched counterpart of Vanilla: R
// independent replicas of vanilla gossip over one shared graph,
// implementing sim.BatchKernel.
type VanillaEnsemble struct {
	bs     *BatchState
	eu, ev []int32
}

// NewVanillaEnsemble builds R replicas of vanilla gossip on g, all
// starting from x0.
func NewVanillaEnsemble(g *graph.Graph, x0 []float64, replicas int) (*VanillaEnsemble, error) {
	if len(x0) != g.NumNodes() {
		return nil, fmt.Errorf("gossip: %d initial values for %d nodes", len(x0), g.NumNodes())
	}
	if replicas < 1 {
		return nil, fmt.Errorf("gossip: ensemble needs at least one replica, got %d", replicas)
	}
	return &VanillaEnsemble{bs: NewBatchState(x0, replicas), eu: g.EdgeU(), ev: g.EdgeV()}, nil
}

// Replicas implements sim.BatchKernel.
func (v *VanillaEnsemble) Replicas() int { return v.bs.Replicas() }

// TickChunk implements sim.BatchKernel (untracked, lazy moments).
func (v *VanillaEnsemble) TickChunk(rep int, edges []graph.EdgeID) {
	v.bs.AverageEdgeBatch(rep, edges, v.eu, v.ev)
}

// TickChunkTracked implements sim.BatchKernel.
func (v *VanillaEnsemble) TickChunkTracked(rep int, edges []graph.EdgeID, exceedLevel float64) (lastIdx int, endVar float64) {
	return v.bs.AverageEdgeBatchTracked(rep, edges, v.eu, v.ev, exceedLevel)
}

// ReplicaVariance implements sim.BatchKernel.
func (v *VanillaEnsemble) ReplicaVariance(rep int) float64 { return v.bs.Variance(rep) }

// CopyInto writes replica rep's value vector (original frame) into dst.
func (v *VanillaEnsemble) CopyInto(rep int, dst []float64) { v.bs.CopyInto(rep, dst) }

// ConvexEnsemble is the replica-batched counterpart of Convex.
type ConvexEnsemble struct {
	bs     *BatchState
	alpha  float64
	eu, ev []int32
}

// NewConvexEnsemble builds R replicas of α-gossip on g.
func NewConvexEnsemble(g *graph.Graph, x0 []float64, alpha float64, replicas int) (*ConvexEnsemble, error) {
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("gossip: alpha %v outside [0,1]", alpha)
	}
	if len(x0) != g.NumNodes() {
		return nil, fmt.Errorf("gossip: %d initial values for %d nodes", len(x0), g.NumNodes())
	}
	if replicas < 1 {
		return nil, fmt.Errorf("gossip: ensemble needs at least one replica, got %d", replicas)
	}
	return &ConvexEnsemble{bs: NewBatchState(x0, replicas), alpha: alpha, eu: g.EdgeU(), ev: g.EdgeV()}, nil
}

// Replicas implements sim.BatchKernel.
func (c *ConvexEnsemble) Replicas() int { return c.bs.Replicas() }

// TickChunk implements sim.BatchKernel (untracked, lazy moments).
func (c *ConvexEnsemble) TickChunk(rep int, edges []graph.EdgeID) {
	c.bs.ConvexEdgeBatch(rep, edges, c.eu, c.ev, c.alpha)
}

// TickChunkTracked implements sim.BatchKernel.
func (c *ConvexEnsemble) TickChunkTracked(rep int, edges []graph.EdgeID, exceedLevel float64) (lastIdx int, endVar float64) {
	return c.bs.ConvexEdgeBatchTracked(rep, edges, c.eu, c.ev, c.alpha, exceedLevel)
}

// ReplicaVariance implements sim.BatchKernel.
func (c *ConvexEnsemble) ReplicaVariance(rep int) float64 { return c.bs.Variance(rep) }

// CopyInto writes replica rep's value vector (original frame) into dst.
func (c *ConvexEnsemble) CopyInto(rep int, dst []float64) { c.bs.CopyInto(rep, dst) }

// PushSumEnsemble is the replica-batched counterpart of PushSum: the mass
// pairs (s, w) are stored replica-major like the estimates, and each
// replica draws its direction coins from its own stream — the same
// per-trial stream separation as the legacy estimator.
type PushSumEnsemble struct {
	bs      *BatchState // estimates s/w
	s, w    []float64   // replica-major mass arrays
	streams []*rng.RNG
	n       int
	eu, ev  []int32
}

// NewPushSumEnsemble builds one push-sum replica per stream, all starting
// from x0. Every stream must be non-nil and distinct streams should be
// independent (e.g. rng.Split children).
func NewPushSumEnsemble(g *graph.Graph, x0 []float64, streams []*rng.RNG) (*PushSumEnsemble, error) {
	if len(x0) != g.NumNodes() {
		return nil, fmt.Errorf("gossip: %d initial values for %d nodes", len(x0), g.NumNodes())
	}
	if len(streams) < 1 {
		return nil, fmt.Errorf("gossip: push-sum ensemble needs at least one stream")
	}
	n := len(x0)
	p := &PushSumEnsemble{
		bs:      NewBatchState(x0, len(streams)),
		s:       make([]float64, len(streams)*n),
		w:       make([]float64, len(streams)*n),
		streams: streams,
		n:       n,
		eu:      g.EdgeU(),
		ev:      g.EdgeV(),
	}
	for rep, r := range streams {
		if r == nil {
			return nil, fmt.Errorf("gossip: push-sum ensemble stream %d is nil", rep)
		}
		copy(p.s[rep*n:(rep+1)*n], x0)
		for i := rep * n; i < (rep+1)*n; i++ {
			p.w[i] = 1
		}
	}
	return p, nil
}

// Replicas implements sim.BatchKernel.
func (p *PushSumEnsemble) Replicas() int { return len(p.streams) }

// tick applies one push-sum exchange on replica rep's mass rows and
// returns the endpoints (post-swap) and their new estimates. The mass
// arithmetic is bit-identical to PushSum.tickPair.
func (p *PushSumEnsemble) tick(rep int, e graph.EdgeID, s, w []float64) (from, to int, estFrom, estTo float64) {
	from, to = int(p.eu[e]), int(p.ev[e])
	if p.streams[rep].Float64() < 0.5 {
		from, to = to, from
	}
	halfS, halfW := s[from]/2, w[from]/2
	s[from] -= halfS
	w[from] -= halfW
	s[to] += halfS
	w[to] += halfW
	return from, to, s[from] / w[from], s[to] / w[to]
}

// TickChunk implements sim.BatchKernel (untracked, lazy estimate moments).
func (p *PushSumEnsemble) TickChunk(rep int, edges []graph.EdgeID) {
	s := p.s[rep*p.n : (rep+1)*p.n : (rep+1)*p.n]
	w := p.w[rep*p.n : (rep+1)*p.n : (rep+1)*p.n]
	for _, e := range edges {
		from, to, ef, et := p.tick(rep, e, s, w)
		p.bs.Set2Batch(rep, from, to, ef, et)
	}
}

// TickChunkTracked implements sim.BatchKernel.
func (p *PushSumEnsemble) TickChunkTracked(rep int, edges []graph.EdgeID, exceedLevel float64) (lastIdx int, endVar float64) {
	p.bs.syncIfDirty(rep)
	s := p.s[rep*p.n : (rep+1)*p.n : (rep+1)*p.n]
	w := p.w[rep*p.n : (rep+1)*p.n : (rep+1)*p.n]
	scaledLevel := p.bs.ScaledLevel(exceedLevel)
	lastIdx = -1
	for k, e := range edges {
		from, to, ef, et := p.tick(rep, e, s, w)
		if p.bs.Set2BatchTracked(rep, from, to, ef, et) > scaledLevel {
			lastIdx = k
		}
	}
	return lastIdx, p.bs.EndChunk(rep, 2*len(edges))
}

// ReplicaVariance implements sim.BatchKernel (variance of the estimates).
func (p *PushSumEnsemble) ReplicaVariance(rep int) float64 { return p.bs.Variance(rep) }

// CopyInto writes replica rep's estimates s/w into dst.
func (p *PushSumEnsemble) CopyInto(rep int, dst []float64) { p.bs.CopyInto(rep, dst) }
