package dist_test

// This file is an external test (package dist_test) on purpose: it pulls
// in internal/check, which itself imports internal/dist, so the
// comparison across all three drivers of the protocol machine can only
// live outside the dist package proper.

import (
	"context"
	"fmt"
	"math"
	"sort"
	"testing"
	"time"

	"sparsecut/internal/check"
	"sparsecut/internal/dist"
	"sparsecut/internal/flight"
	"sparsecut/internal/graph"
)

// cleanCommitSignatures stitches a dump and collects the event-kind
// signatures of its "clean" committed spans: exactly three hops (LOCK,
// PROPOSE, COMMIT), no retransmissions, no losses — the undisturbed
// exchange shape. The signature is the span's sorted event-kind multiset.
func cleanCommitSignatures(d *flight.Dump) map[string]int {
	sigs := map[string]int{}
	for _, sp := range flight.Stitch(d).Spans {
		if sp.Outcome != flight.OutcomeCommitted || sp.Hops != 3 || sp.Resends != 0 || sp.Drops != 0 || sp.Dups != 0 {
			continue
		}
		kinds := make([]int, 0, len(sp.Events))
		for _, e := range sp.Events {
			kinds = append(kinds, int(e.Kind))
		}
		sort.Ints(kinds)
		sigs[fmt.Sprint(kinds)]++
	}
	return sigs
}

// TestFlightEquivalenceAcrossDrivers is the cross-driver flight proof the
// sharded runtime's ISSUE asks for: all three drivers of the protocol
// machine — the goroutine Cluster, the sharded runtime, and the model
// checker's trace replayer — must emit the same span structure for an
// undisturbed committed exchange. The checker side uses a handcrafted
// four-action trace (initiate, deliver LOCK, deliver PROPOSE, deliver
// COMMIT) whose ten span events are totally causally ordered, so its
// single span is the canonical committed-exchange signature; every clean
// committed span captured live from either runtime must match it exactly.
func TestFlightEquivalenceAcrossDrivers(t *testing.T) {
	// Canonical signature: the checker's deterministic virtual-time replay.
	tr := &check.Trace{
		Version: 1,
		Graph:   check.GraphSpec{Nodes: 3, EdgeU: []int{0, 1, 2}, EdgeV: []int{1, 2, 0}},
		X0:      []float64{1, 0, 0},
		Rule:    check.Vanilla(),
		Actions: []check.Action{
			{Op: check.OpInitiate, Node: 0, Edge: 0},
			{Op: check.OpDeliver, Msg: 0}, // the LOCK
			{Op: check.OpDeliver, Msg: 0}, // the PROPOSE
			{Op: check.OpDeliver, Msg: 0}, // the COMMIT
		},
	}
	recCheck := flight.New(3, 256)
	v, err := check.ReplayFlight(tr, recCheck)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		t.Fatalf("handcrafted trace violated an invariant: %v", v)
	}
	want := cleanCommitSignatures(recCheck.Snapshot())
	if len(want) != 1 {
		t.Fatalf("checker replay produced %d clean committed signatures, want exactly 1: %v", len(want), want)
	}
	var canonical string
	for s := range want {
		canonical = s
	}

	g, _, err := graph.Dumbbell(6, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	x0 := make([]float64, g.NumNodes())
	for i := range x0 {
		x0[i] = float64(i)
	}

	recCl := flight.New(g.NumNodes(), 1<<14)
	cl, err := dist.NewCluster(g, x0, dist.NewVanillaRule(), dist.ClusterConfig{
		TimeScale: 4 * time.Millisecond, Seed: 21, Flight: recCl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(context.Background(), 8); err != nil {
		t.Fatal(err)
	}

	recSh := flight.New(g.NumNodes(), 1<<14)
	rt, err := dist.NewShardRuntime(g, x0, dist.NewVanillaRule(), dist.ShardRuntimeConfig{
		ClusterConfig: dist.ClusterConfig{TimeScale: 4 * time.Millisecond, Seed: 21, Flight: recSh},
		Shards:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(context.Background(), 8); err != nil {
		t.Fatal(err)
	}

	for _, src := range []struct {
		name string
		sigs map[string]int
	}{
		{"cluster", cleanCommitSignatures(recCl.Snapshot())},
		{"shard runtime", cleanCommitSignatures(recSh.Snapshot())},
	} {
		if len(src.sigs) == 0 {
			t.Errorf("%s capture has no clean committed spans; cross-driver comparison needs traffic", src.name)
			continue
		}
		for sig, n := range src.sigs {
			if sig != canonical {
				t.Errorf("%s emitted %d clean committed spans with signature %s, want the checker's %s",
					src.name, n, sig, canonical)
			}
		}
	}

	// The runtimes' sums are as exactly conserved as the checker's replay.
	if drift := math.Abs(sumOf(cl.Values()) - sumOf(x0)); drift > 1e-9 {
		t.Errorf("cluster sum drifted by %g", drift)
	}
	if drift := math.Abs(sumOf(rt.Values()) - sumOf(x0)); drift > 1e-9 {
		t.Errorf("shard runtime sum drifted by %g", drift)
	}
}

func sumOf(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}
