package gossip

import (
	"math"
	"testing"

	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
)

// randomPicks returns a deterministic pseudo-random edge sequence.
func randomPicks(seed uint64, g *graph.Graph, n int) []graph.EdgeID {
	r := rng.New(seed)
	picks := make([]graph.EdgeID, n)
	for i := range picks {
		picks[i] = graph.EdgeID(r.Intn(g.NumEdges()))
	}
	return picks
}

// The tracked batch updates must be bit-identical to the per-event State
// sequence: same rows, same moments, same variance — for vanilla and
// convex, on a replica other than 0 (so row addressing is exercised).
func TestBatchTrackedBitIdenticalToState(t *testing.T) {
	g, part, err := graph.Dumbbell(9, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	x0 := CutIndicator(part)
	eu, ev := g.EdgeU(), g.EdgeV()
	picks := randomPicks(5, g, 4096)
	const rep = 2

	t.Run("vanilla", func(t *testing.T) {
		st := NewState(x0)
		bs := NewBatchState(x0, 3)
		level := st.Variance() * math.Exp(-2)
		for lo := 0; lo < len(picks); lo += 256 {
			bs.AverageEdgeBatchTracked(rep, picks[lo:lo+256], eu, ev, level)
		}
		for _, e := range picks {
			st.AverageEdge(int(eu[e]), int(ev[e]))
		}
		compareRowToState(t, bs, rep, st)
	})

	t.Run("convex", func(t *testing.T) {
		const alpha = 0.73
		st := NewState(x0)
		bs := NewBatchState(x0, 3)
		level := st.Variance() * math.Exp(-2)
		for lo := 0; lo < len(picks); lo += 256 {
			bs.ConvexEdgeBatchTracked(rep, picks[lo:lo+256], eu, ev, alpha, level)
		}
		for _, e := range picks {
			st.ConvexEdge(int(eu[e]), int(ev[e]), alpha)
		}
		compareRowToState(t, bs, rep, st)
	})
}

func compareRowToState(t *testing.T, bs *BatchState, rep int, st *State) {
	t.Helper()
	row := make([]float64, bs.N())
	bs.CopyInto(rep, row)
	want := st.Values()
	for i := range row {
		if math.Float64bits(row[i]) != math.Float64bits(want[i]) {
			t.Fatalf("node %d: %v batched vs %v state", i, row[i], want[i])
		}
	}
	if gotV, wantV := bs.Variance(rep), st.Variance(); math.Float64bits(gotV) != math.Float64bits(wantV) {
		t.Errorf("variance %v batched vs %v state", gotV, wantV)
	}
	if gotM, wantM := bs.Mean(rep), st.Mean(); math.Float64bits(gotM) != math.Float64bits(wantM) {
		t.Errorf("mean %v batched vs %v state", gotM, wantM)
	}
}

// The lazy batch entry points must store the same rows as the tracked
// ones; their deferred moments resync exactly on the next read.
func TestBatchLazyMatchesTracked(t *testing.T) {
	g, part, err := graph.Dumbbell(8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	x0 := CutIndicator(part)
	eu, ev := g.EdgeU(), g.EdgeV()
	picks := randomPicks(11, g, 2048)

	lazy := NewBatchState(x0, 2)
	eager := NewBatchState(x0, 2)
	for lo := 0; lo < len(picks); lo += 256 {
		lazy.AverageEdgeBatch(1, picks[lo:lo+256], eu, ev)
		eager.AverageEdgeBatchTracked(1, picks[lo:lo+256], eu, ev, 0.1)
	}
	a, b := make([]float64, lazy.N()), make([]float64, eager.N())
	lazy.CopyInto(1, a)
	eager.CopyInto(1, b)
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("node %d: %v lazy vs %v tracked", i, a[i], b[i])
		}
	}
	// The lazy read resyncs exactly; the eager moments carry float drift
	// bounded far below any threshold the estimator compares against.
	if lv, ev2 := lazy.Variance(1), eager.Variance(1); math.Abs(lv-ev2) > 1e-12 {
		t.Errorf("variance %v lazy vs %v tracked", lv, ev2)
	}
}

// The last-exceedance index returned by the tracked chunk must match a
// per-event replay against State.Variance.
func TestBatchTrackedLastIndex(t *testing.T) {
	g, part, err := graph.Dumbbell(8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	x0 := CutIndicator(part)
	eu, ev := g.EdgeU(), g.EdgeV()
	st := NewState(x0)
	level := st.Variance() * math.Exp(-2)

	bs := NewBatchState(x0, 1)
	picks := randomPicks(3, g, 8192)
	for lo := 0; lo < len(picks); lo += 256 {
		chunk := picks[lo : lo+256]
		gotIdx, _ := bs.AverageEdgeBatchTracked(0, chunk, eu, ev, level)
		wantIdx := -1
		for k, e := range chunk {
			st.AverageEdge(int(eu[e]), int(ev[e]))
			if st.Variance() > level {
				wantIdx = k
			}
		}
		if gotIdx != wantIdx {
			t.Fatalf("chunk at %d: last exceedance index %d batched vs %d replay", lo, gotIdx, wantIdx)
		}
	}
}

// The push-sum ensemble must replay the legacy PushSum bit-for-bit when
// driven by the same direction stream and edge sequence.
func TestPushSumEnsembleMatchesLegacy(t *testing.T) {
	g, part, err := graph.Dumbbell(7, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	x0 := CutIndicator(part)
	picks := randomPicks(9, g, 3000)

	legacy, err := NewPushSum(g, x0, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	ens, err := NewPushSumEnsemble(g, x0, []*rng.RNG{rng.New(41), rng.New(42)})
	if err != nil {
		t.Fatal(err)
	}
	level := legacy.Variance() * math.Exp(-2)
	for lo := 0; lo < len(picks); lo += 256 {
		hi := min(lo+256, len(picks))
		ens.TickChunkTracked(1, picks[lo:hi], level)
	}
	for _, e := range picks {
		legacy.HandleTick(e, 0)
	}
	got := make([]float64, g.NumNodes())
	ens.CopyInto(1, got)
	want := legacy.Values()
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("node %d: %v ensemble vs %v legacy", i, got[i], want[i])
		}
	}
	if gv, wv := ens.ReplicaVariance(1), legacy.Variance(); math.Abs(gv-wv) > 1e-12 {
		t.Errorf("variance %v ensemble vs %v legacy", gv, wv)
	}
}

// Replicas must be fully independent: an untouched replica keeps its
// initial row while its neighbours evolve.
func TestBatchReplicaIsolation(t *testing.T) {
	g, part, err := graph.Dumbbell(6, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	x0 := CutIndicator(part)
	ens, err := NewVanillaEnsemble(g, x0, 3)
	if err != nil {
		t.Fatal(err)
	}
	picks := randomPicks(77, g, 512)
	ens.TickChunk(0, picks[:256])
	ens.TickChunk(2, picks[256:])
	row := make([]float64, g.NumNodes())
	ens.CopyInto(1, row)
	for i, v := range row {
		if v != x0[i] {
			t.Fatalf("untouched replica drifted at node %d: %v != %v", i, v, x0[i])
		}
	}
	v0 := NewState(x0).Variance()
	if ens.ReplicaVariance(0) >= v0 || ens.ReplicaVariance(2) >= v0 {
		t.Error("ticked replicas should have reduced variance")
	}
}

// Ensemble constructors must validate their inputs.
func TestEnsembleValidation(t *testing.T) {
	g, part, err := graph.Dumbbell(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	x0 := CutIndicator(part)
	if _, err := NewVanillaEnsemble(g, x0[:3], 2); err == nil {
		t.Error("length mismatch not rejected")
	}
	if _, err := NewVanillaEnsemble(g, x0, 0); err == nil {
		t.Error("zero replicas not rejected")
	}
	if _, err := NewConvexEnsemble(g, x0, 1.5, 2); err == nil {
		t.Error("alpha > 1 not rejected")
	}
	if _, err := NewPushSumEnsemble(g, x0, nil); err == nil {
		t.Error("empty stream list not rejected")
	}
	if _, err := NewPushSumEnsemble(g, x0, []*rng.RNG{rng.New(1), nil}); err == nil {
		t.Error("nil stream not rejected")
	}
}
