package avgtime

import (
	"errors"
	"fmt"

	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
	"sparsecut/internal/sim"
	"sparsecut/internal/stats"
)

// EnsembleFactory builds a replica-batched kernel: R independent replicas
// of one algorithm over a shared graph (e.g. gossip.NewVanillaEnsemble).
// algStreams has length R, one private stream per replica for
// algorithm-internal randomness (push-sum direction coins); factories for
// deterministic algorithms may ignore it.
type EnsembleFactory func(replicas int, algStreams []*rng.RNG) (sim.BatchKernel, error)

// EstimateBatched measures the averaging time of the ensemble produced by
// factory on g through the replica-batched bridged engine
// (sim.BatchEngine): all trials advance in interleaved lockstep over the
// shared flat graph, inter-event exponential gaps collapse into per-chunk
// Gamma bridge draws, and the per-event work drops to one uniform edge
// pick plus a division-free moment update. It samples the same
// last-exceedance distribution as Estimate but is not stream-compatible
// with it (randomness is consumed in a different order); the package KS
// tests check the two paths against each other distributionally.
//
// nil rates mean the paper's rate-1 clocks. Config is interpreted as in
// Estimate, with two differences: Scheduler is ignored (the bridged
// engine is inherently a global-clock construction), and BatchWidth
// bounds how many trials are resident per batch (memory only — every
// trial's randomness comes from its own pair of child streams, derived
// from Config.Seed in trial order exactly as the legacy loop derives
// them, so the reported Result is byte-identical for any width).
//
// Algorithms whose tracked statistics need materialised per-event times
// (Algorithm A's epoch machinery) have no ensemble form; they stay on the
// per-event Estimate path.
func EstimateBatched(g *graph.Graph, rates []float64, factory EnsembleFactory, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if factory == nil {
		return Result{}, errors.New("avgtime: nil ensemble factory")
	}
	// Per-trial streams, split from the root in trial order — the same
	// derivation as the legacy loop, independent of the batch grouping.
	root := rng.New(cfg.Seed)
	algStreams := make([]*rng.RNG, cfg.Trials)
	simStreams := make([]*rng.RNG, cfg.Trials)
	for i := 0; i < cfg.Trials; i++ {
		algStreams[i] = root.Split()
		simStreams[i] = root.Split()
	}
	width := cfg.BatchWidth
	if width <= 0 || width > cfg.Trials {
		width = cfg.Trials
	}

	res := Result{PerTrial: make([]float64, 0, cfg.Trials)}
	var chunksSoFar int64
	for lo := 0; lo < cfg.Trials; lo += width {
		hi := min(lo+width, cfg.Trials)
		kern, err := factory(hi-lo, algStreams[lo:hi])
		if err != nil {
			return Result{}, fmt.Errorf("avgtime: ensemble factory: %w", err)
		}
		if kern == nil {
			return Result{}, errors.New("avgtime: ensemble factory returned a nil kernel")
		}
		if kern.Replicas() != hi-lo {
			return Result{}, fmt.Errorf("avgtime: ensemble factory returned %d replicas, want %d", kern.Replicas(), hi-lo)
		}
		// All replicas start from the same initial vector, so replica 0's
		// variance is every replica's varX(0).
		var0 := kern.ReplicaVariance(0)
		if var0 == 0 {
			for i := lo; i < hi; i++ {
				res.PerTrial = append(res.PerTrial, 0) // already averaged
			}
			continue
		}
		quiet := cfg.quietFor(kern)
		var opts []sim.BatchOption
		if rates != nil {
			opts = append(opts, sim.WithBatchRates(rates))
		}
		if cfg.Observer != nil {
			// Offset the per-engine event count by the trials already
			// finished so the observer sees one monotone meter across
			// batches; chunks likewise.
			baseEvents, baseChunks := res.Events, chunksSoFar
			opts = append(opts, sim.WithBatchObserver(func(st sim.BatchStats) {
				st.Events += baseEvents
				st.Chunks += baseChunks
				cfg.Observer(st)
			}))
		}
		eng, err := sim.NewBatchEngine(g, kern, simStreams[lo:hi], opts...)
		if err != nil {
			return Result{}, fmt.Errorf("avgtime: %w", err)
		}
		tracked := eng.RunTracked(sim.Tracked{
			ExceedLevel: cfg.Threshold * var0,
			StopLevel:   cfg.Threshold * cfg.MarginFactor * var0,
			Quiet:       quiet,
			MaxTime:     cfg.MaxTime,
		})
		for _, tr := range tracked {
			if tr.Censored {
				res.Censored++
			}
			res.PerTrial = append(res.PerTrial, tr.LastExceed)
		}
		res.Events += eng.Events()
		chunksSoFar += eng.Chunks()
	}

	q, err := stats.Quantile(res.PerTrial, cfg.Quantile)
	if err != nil {
		return Result{}, err
	}
	res.Tav = q
	res.Mean, res.CI95 = stats.MeanCI95(res.PerTrial)
	return res, nil
}
