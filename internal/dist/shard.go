package dist

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sparsecut/internal/flight"
	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
)

// ShardRuntime is the M:N runtime: N nodes multiplexed over S shard event
// loops. It drives the exact same pure Machine as the goroutine-per-node
// Cluster — the protocol, its invariants, the model checker and the flight
// recorder carry over unchanged — but replaces the per-node costs that cap
// the Cluster near 10^4 nodes:
//
//   - one goroutine per SHARD instead of per node;
//   - one hierarchical timer wheel per shard (wheel.go) instead of one
//     runtime timer per node;
//   - one batched mailbox per shard, drained a batch per loop iteration,
//     instead of one channel per node.
//
// Each shard owns the contiguous node range [lo, hi): their NodeStates,
// their clock/protocol timers, and one RNG stream. Within a shard, steps
// are sequential — single-owner state, no locks on the protocol hot path.
// Across shards, only messages move.
//
// # Delivery
//
// With no transport configured the runtime uses its internal direct path:
// Send appends to the destination shard's mailbox under a short mutex (a
// full mailbox is congestion loss, like ChanTransport). With a Transport
// configured, cross-shard messages flow through it — transport address i
// is SHARD i's mailbox, not node i's, and every message carries the
// Message.Via override so Drop/Delay/TCP fault injection and multi-process
// sharding work at 10^6 nodes without 10^6 mailboxes.
//
// # Timing model
//
// Identical to Cluster's (see node.go): node u initiates at Poisson rate
// deg(u)/2 in simulated time, scaled by TimeScale; edge {u,v} ticks at
// rate 1. Timer deadlines are quantised to the wheel tick
// (ShardRuntimeConfig.TimerTick), which is chosen (and floored) to be much
// finer than the lock timeout, so quantisation shifts deadlines by at most
// one tick without reordering the protocol's coarse time constants.
type ShardRuntime struct {
	g      *graph.Graph
	rule   Rule
	cfg    ShardRuntimeConfig
	tr     Transport // nil = direct path
	values []float64

	lockTimeout time.Duration
	resendEvery time.Duration
	timerTick   time.Duration
	shardSize   int // nodes per shard (last shard may be smaller)
	shards      []*shard

	epoch uint64
	mc    Machine
	// tap mirrors Cluster.tap: when non-nil it observes every protocol
	// event of every node (the shard lockstep-equivalence test sets it).
	// Must be safe for concurrent use.
	tap func(nodeEvent)

	exchanges atomic.Int64
	aborted   atomic.Int64
	proposed  atomic.Int64
	applied   atomic.Int64
	crashes   atomic.Int64
	crashLost atomic.Int64
	congested atomic.Int64 // direct-path mailbox overflows
	awaiting  atomic.Int64
	pending   atomic.Int64

	running atomic.Bool
	wg      sync.WaitGroup

	errMu     sync.Mutex
	sendErr   error
	runCancel context.CancelFunc

	met clusterMetrics
	rec *flight.Recorder
}

// ShardRuntimeConfig configures a ShardRuntime. The embedded ClusterConfig
// fields keep their Cluster meanings, with one deliberate difference: a
// nil Transport selects the runtime's internal direct path (shard-to-shard
// mailboxes, the fast default for single-process runs) rather than a
// ChanTransport. Configure a transport only to inject loss/delay or to
// cross sockets; its address space must cover one address per SHARD.
type ShardRuntimeConfig struct {
	ClusterConfig

	// Shards is the number of event loops. 0 = GOMAXPROCS, clamped to the
	// node count.
	Shards int
	// MailboxCap is the direct path's per-shard mailbox capacity; messages
	// beyond it are dropped as congestion loss. 0 = max(1024, 4·nodes/
	// shards). Ignored when a Transport is configured.
	MailboxCap int
	// TimerTick is the wheel granularity. 0 = TimeScale/16 clamped to
	// [50µs, 1ms]. Protocol deadlines are quantised up to the next tick.
	TimerTick time.Duration
}

// shard is one event loop: the states, timers and mailbox of nodes
// [lo, hi). All fields except the mailbox and the single-writer counters
// are owned by the loop goroutine.
type shard struct {
	rt     *ShardRuntime
	id     int
	lo, hi int

	states []NodeState
	clocks []wheelTimer // one per node, kind tkClock
	protos []wheelTimer // one per node, kind tkProto: Await XOR Pend deadline
	crash  map[int]*shardCrash
	r      *rng.RNG
	w      *wheel

	inbox mailbox        // direct path (rt.tr == nil)
	recvC <-chan Message // transport path (rt.tr != nil)
	wakeC chan struct{}
	batch []Message

	draining bool

	// committed/abortedL are single-writer (this loop), atomically read by
	// metrics snapshots: the per-shard throughput/abort breakdown.
	committed atomic.Int64
	abortedL  atomic.Int64
}

// shardCrash is the crash-schedule state of one node that has one; nodes
// without crash events (the overwhelming majority) pay no per-node cost.
type shardCrash struct {
	spec      []CrashEvent
	wins      []crashWindow
	idx       int
	crashed   bool
	recoverAt time.Time
	timer     wheelTimer // kind tkCrash
}

// mailbox is the direct path's batched MPSC queue: producers append under
// a mutex, the owning shard swaps the whole backlog out in O(1) and
// processes it as a batch. A full mailbox drops (congestion loss).
type mailbox struct {
	mu  sync.Mutex
	q   []Message
	cap int
}

func (mb *mailbox) put(m Message) bool {
	mb.mu.Lock()
	if len(mb.q) >= mb.cap {
		mb.mu.Unlock()
		return false
	}
	mb.q = append(mb.q, m)
	mb.mu.Unlock()
	return true
}

// drainSwap exchanges the queued backlog for spare (an empty buffer the
// caller owns) and returns it — no per-message copying under the lock.
func (mb *mailbox) drainSwap(spare []Message) []Message {
	mb.mu.Lock()
	q := mb.q
	if len(q) == 0 {
		mb.mu.Unlock()
		return spare[:0]
	}
	mb.q = spare[:0]
	mb.mu.Unlock()
	return q
}

func (mb *mailbox) depth() int {
	mb.mu.Lock()
	d := len(mb.q)
	mb.mu.Unlock()
	return d
}

// NewShardRuntime builds a sharded runtime for rule on g with initial
// values x0 (copied).
func NewShardRuntime(g *graph.Graph, x0 []float64, rule Rule, cfg ShardRuntimeConfig) (*ShardRuntime, error) {
	if g == nil || g.NumNodes() == 0 {
		return nil, errors.New("dist: shard runtime requires a non-empty graph")
	}
	if g.NumEdges() == 0 {
		return nil, fmt.Errorf("dist: %s has no edges to exchange over", g)
	}
	if len(x0) != g.NumNodes() {
		return nil, fmt.Errorf("dist: %d initial values for %d nodes", len(x0), g.NumNodes())
	}
	if rule == nil {
		return nil, errors.New("dist: shard runtime requires a rule")
	}
	if cfg.TimeScale < 0 || cfg.LockTimeout < 0 || cfg.ResendEvery < 0 || cfg.TimerTick < 0 {
		return nil, errors.New("dist: negative durations in config")
	}
	if cfg.Shards < 0 || cfg.MailboxCap < 0 {
		return nil, errors.New("dist: negative shard parameters in config")
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 4 * time.Millisecond
	}
	n := g.NumNodes()
	nShards := cfg.Shards
	if nShards == 0 {
		nShards = runtime.GOMAXPROCS(0)
	}
	if nShards > n {
		nShards = n
	}

	rt := &ShardRuntime{
		g:      g,
		rule:   rule,
		cfg:    cfg,
		tr:     cfg.Transport,
		values: append([]float64(nil), x0...),
	}
	rt.timerTick = cfg.TimerTick
	if rt.timerTick == 0 {
		rt.timerTick = cfg.TimeScale / 16
		if rt.timerTick < 50*time.Microsecond {
			rt.timerTick = 50 * time.Microsecond
		}
		if rt.timerTick > time.Millisecond {
			rt.timerTick = time.Millisecond
		}
	}
	rt.lockTimeout = cfg.LockTimeout
	if rt.lockTimeout == 0 {
		rt.lockTimeout = cfg.TimeScale / 4
		if rt.lockTimeout < time.Millisecond {
			rt.lockTimeout = time.Millisecond
		}
		// A deadline under a few ticks would time out exchanges that are
		// merely waiting for the next wheel advance.
		if rt.lockTimeout < 4*rt.timerTick {
			rt.lockTimeout = 4 * rt.timerTick
		}
	}
	rt.resendEvery = cfg.ResendEvery
	if rt.resendEvery == 0 {
		rt.resendEvery = rt.lockTimeout / 2
		if rt.resendEvery <= 0 {
			rt.resendEvery = rt.lockTimeout
		}
	}
	rt.mc = Machine{
		G:             g,
		Rule:          rule,
		LockTimeoutNs: rt.lockTimeout.Nanoseconds(),
		ResendEveryNs: rt.resendEvery.Nanoseconds(),
	}

	// Contiguous equal ranges (the last shard takes the remainder) so that
	// shardOf is one integer division, with no lookup table on the Send
	// path.
	rt.shardSize = (n + nShards - 1) / nShards
	nShards = (n + rt.shardSize - 1) / rt.shardSize
	mboxCap := cfg.MailboxCap
	if mboxCap == 0 {
		mboxCap = 4 * rt.shardSize
		if mboxCap < 1024 {
			mboxCap = 1024
		}
	}
	root := rng.New(cfg.Seed)
	rt.shards = make([]*shard, nShards)
	for i := range rt.shards {
		lo := i * rt.shardSize
		hi := lo + rt.shardSize
		if hi > n {
			hi = n
		}
		s := &shard{
			rt:     rt,
			id:     i,
			lo:     lo,
			hi:     hi,
			states: make([]NodeState, hi-lo),
			clocks: make([]wheelTimer, hi-lo),
			protos: make([]wheelTimer, hi-lo),
			crash:  map[int]*shardCrash{},
			r:      root.Split(),
			wakeC:  make(chan struct{}, 1),
		}
		s.inbox.cap = mboxCap
		for li := range s.states {
			s.states[li] = NodeState{ID: lo + li, X: x0[lo+li]}
		}
		if rt.tr != nil {
			recvC, err := rt.tr.Recv(i)
			if err != nil {
				return nil, fmt.Errorf("dist: mailbox for shard %d: %w", i, err)
			}
			s.recvC = recvC
		}
		rt.shards[i] = s
	}
	if err := rt.assignCrashes(cfg.Crashes); err != nil {
		return nil, err
	}
	if cfg.Metrics != nil {
		rt.instrument(cfg.Metrics)
	}
	if cfg.Flight != nil {
		rt.rec = cfg.Flight
		if rt.tr != nil {
			instrumentTransportFlight(rt.rec, rt.tr)
		}
	}
	return rt, nil
}

// shardOf returns the shard owning node abs.
func (rt *ShardRuntime) shardOf(abs int) int { return abs / rt.shardSize }

// stateOf returns node abs's state. Safe only while no shard loop runs.
func (rt *ShardRuntime) stateOf(abs int) *NodeState {
	s := rt.shards[rt.shardOf(abs)]
	return &s.states[abs-s.lo]
}

// assignCrashes validates the crash schedule (same rules as Cluster) and
// distributes each node's events to its owning shard.
func (rt *ShardRuntime) assignCrashes(events []CrashEvent) error {
	n := rt.g.NumNodes()
	for _, ev := range events {
		if ev.Node < 0 || ev.Node >= n {
			return fmt.Errorf("dist: crash schedule names node %d outside [0,%d)", ev.Node, n)
		}
		if !(ev.At >= 0) || math.IsInf(ev.At, 0) {
			return fmt.Errorf("dist: crash time %v for node %d must be non-negative and finite", ev.At, ev.Node)
		}
		if ev.Recover != 0 && (!(ev.Recover > ev.At) || math.IsInf(ev.Recover, 0)) {
			return fmt.Errorf("dist: recovery time %v for node %d must exceed crash time %v (or be 0 for down-until-drain)", ev.Recover, ev.Node, ev.At)
		}
		s := rt.shards[rt.shardOf(ev.Node)]
		cs := s.crash[ev.Node]
		if cs == nil {
			cs = &shardCrash{}
			s.crash[ev.Node] = cs
		}
		cs.spec = append(cs.spec, ev)
	}
	for _, s := range rt.shards {
		for abs, cs := range s.crash {
			sort.Slice(cs.spec, func(i, j int) bool { return cs.spec[i].At < cs.spec[j].At })
			for i := 1; i < len(cs.spec); i++ {
				prev := cs.spec[i-1]
				if prev.Recover == 0 || cs.spec[i].At < prev.Recover {
					return fmt.Errorf("dist: overlapping crash windows for node %d", abs)
				}
			}
		}
	}
	return nil
}

// Run executes the protocol for duration simulated time units, with the
// same contract as Cluster.Run: drain to quiescence after the horizon (or
// on ctx cancellation), settle stranded proposals on transport death, sum
// preserved exactly, reusable afterwards.
func (rt *ShardRuntime) Run(ctx context.Context, duration float64) error {
	if !(duration > 0) || math.IsInf(duration, 0) {
		return fmt.Errorf("dist: duration %v must be positive and finite", duration)
	}
	if duration*float64(rt.cfg.TimeScale) >= float64(math.MaxInt64) {
		return fmt.Errorf("dist: duration %v at time scale %v exceeds the representable wall time", duration, rt.cfg.TimeScale)
	}
	if !rt.running.CompareAndSwap(false, true) {
		return errors.New("dist: Run already in progress")
	}
	defer rt.running.Store(false)

	wall := time.Duration(duration * float64(rt.cfg.TimeScale))
	runCtx, cancel := context.WithTimeout(ctx, wall)
	defer cancel()
	rt.errMu.Lock()
	rt.sendErr = nil
	rt.runCancel = cancel
	rt.errMu.Unlock()

	drainC := make(chan struct{})
	stopC := make(chan struct{})
	var drainWG sync.WaitGroup
	rt.epoch++
	rt.mc.Epoch = rt.epoch
	start := time.Now()
	// Reset sequentially, launch after: a shard must never observe a
	// peer's pre-reset state through an early message.
	for _, s := range rt.shards {
		s.resetForRun(start)
	}
	for _, s := range rt.shards {
		rt.wg.Add(1)
		drainWG.Add(1)
		go func(s *shard) {
			pprof.Do(context.Background(), pprof.Labels("dist_shard", strconv.Itoa(s.id)), func(context.Context) {
				s.loop(drainC, stopC, &drainWG)
			})
		}(s)
	}

	<-runCtx.Done()

	// Drain: same stable-quiescence argument as Cluster.Run — once every
	// shard acknowledged the drain signal nothing initiates or proposes
	// again, so awaiting+pending is monotone and zero is final.
	close(drainC)
	drainWG.Wait()
	for rt.awaiting.Load() != 0 || rt.pending.Load() != 0 {
		if rt.sendFailed() {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(stopC)
	rt.wg.Wait()

	// Settle proposals stranded by a failed transport, the same way the
	// initiator already decided (see Cluster.Run). All shard loops have
	// exited, so cross-shard state reads are safe.
	for _, s := range rt.shards {
		for li := range s.states {
			st := &s.states[li]
			if st.Pend != nil {
				init := rt.stateOf(st.Pend.Msg.To)
				if init.LastApplied[st.ID] >= st.Pend.Msg.Seq {
					st.X -= st.Pend.Msg.X
					rt.exchanges.Add(1)
					s.committed.Add(1)
					rt.met.publish(st.ID, st.X)
				}
				st.Pend = nil
			}
			st.Await = nil
		}
	}
	rt.awaiting.Store(0)
	rt.pending.Store(0)

	for _, s := range rt.shards {
		for li := range s.states {
			rt.values[s.lo+li] = s.states[li].X
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	rt.errMu.Lock()
	defer rt.errMu.Unlock()
	return rt.sendErr
}

func (rt *ShardRuntime) noteSendErr(err error) {
	rt.errMu.Lock()
	if rt.sendErr == nil {
		rt.sendErr = &SendError{Err: err}
		if rt.runCancel != nil {
			rt.runCancel()
		}
	}
	rt.errMu.Unlock()
}

func (rt *ShardRuntime) sendFailed() bool {
	rt.errMu.Lock()
	defer rt.errMu.Unlock()
	return rt.sendErr != nil
}

// resetForRun reinstalls the run's initial values, rebuilds the wheel and
// re-arms every clock and crash timer. Called by Run, before the loop
// goroutines start.
func (s *shard) resetForRun(start time.Time) {
	rt := s.rt
	s.draining = false
	s.w = newWheel(rt.timerTick.Nanoseconds(), start.UnixNano())
	for li := range s.states {
		st := &s.states[li]
		st.X = rt.values[s.lo+li]
		st.Await, st.Pend = nil, nil
		s.clocks[li] = wheelTimer{node: int32(s.lo + li), kind: tkClock}
		s.protos[li] = wheelTimer{node: int32(s.lo + li), kind: tkProto}
		s.scheduleClock(li, start)
	}
	for abs, cs := range s.crash {
		cs.idx = 0
		cs.crashed = false
		cs.recoverAt = time.Time{}
		cs.wins = cs.wins[:0]
		for _, ev := range cs.spec {
			w := crashWindow{at: start.Add(time.Duration(ev.At * float64(rt.cfg.TimeScale)))}
			if ev.Recover > 0 {
				w.until = start.Add(time.Duration(ev.Recover * float64(rt.cfg.TimeScale)))
			}
			cs.wins = append(cs.wins, w)
		}
		cs.timer = wheelTimer{node: int32(abs), kind: tkCrash}
		if len(cs.wins) > 0 {
			s.w.schedule(&cs.timer, cs.wins[0].at.UnixNano())
		}
	}
}

// scheduleClock draws node lo+li's next Poisson fire, exactly as
// node.scheduleNext: an Exp(deg/2) gap in simulated time, scaled to wall
// time. (The draw comes from the shard's stream rather than a per-node
// one; the gap distribution is identical.)
func (s *shard) scheduleClock(li int, now time.Time) {
	deg := s.rt.g.Degree(graph.NodeID(s.lo + li))
	if deg == 0 {
		return
	}
	gap := s.r.ExpFloat64(float64(deg)/2) * float64(s.rt.cfg.TimeScale)
	s.w.schedule(&s.clocks[li], now.Add(time.Duration(gap)).UnixNano())
}

// loop is the shard body: drain a batch of messages, advance the wheel,
// then sleep until woken by a producer, the next tick, or shutdown.
func (s *shard) loop(drainC, stopC <-chan struct{}, drainWG *sync.WaitGroup) {
	defer s.rt.wg.Done()
	tick := time.NewTimer(s.rt.timerTick)
	defer tick.Stop()
	for {
		busy := s.drainMessages() > 0
		s.w.advance(time.Now().UnixNano(), s.fire)

		// Control signals are polled every iteration so a saturated shard
		// still acknowledges drain/stop promptly.
		select {
		case <-stopC:
			return
		case <-drainC:
			s.enterDrain(time.Now())
			drainC = nil
			drainWG.Done()
			continue
		default:
		}
		if busy {
			continue
		}

		if !tick.Stop() {
			select {
			case <-tick.C:
			default:
			}
		}
		tick.Reset(s.rt.timerTick)
		select {
		case <-stopC:
			return
		case <-drainC:
			s.enterDrain(time.Now())
			drainC = nil
			drainWG.Done()
		case m, ok := <-s.recvC: // nil (blocks forever) on the direct path
			if ok {
				s.deliver(m, time.Now())
			} else {
				s.recvC = nil // transport gone; rely on wake/tick
			}
		case <-s.wakeC:
		case <-tick.C:
		}
	}
}

// drainMessages processes one bounded batch from the shard's source and
// returns how many messages it handled.
func (s *shard) drainMessages() int {
	const maxBatch = 4096
	now := time.Now()
	if s.recvC != nil {
		n := 0
		for n < maxBatch {
			select {
			case m := <-s.recvC:
				s.deliver(m, now)
				n++
			default:
				return n
			}
		}
		return n
	}
	s.batch = s.inbox.drainSwap(s.batch)
	for _, m := range s.batch {
		s.deliver(m, now)
	}
	return len(s.batch)
}

// deliver routes one incoming message to its node.
func (s *shard) deliver(m Message, now time.Time) {
	abs := m.To
	if abs < s.lo || abs >= s.hi {
		return // misrouted (stale Via from a different configuration); drop
	}
	if cs := s.crash[abs]; cs != nil && cs.crashed {
		s.rt.crashLost.Add(1)
		recordNetDrop(s.rt.rec, m, abs, flight.ReasonDead)
		return
	}
	s.step(abs, stepDeliver, m, graph.HalfEdge{}, now)
}

// fire dispatches one expired wheel timer.
func (s *shard) fire(t *wheelTimer) {
	abs := int(t.node)
	now := time.Now()
	switch t.kind {
	case tkClock:
		s.fireClock(abs, now)
	case tkProto:
		s.fireProto(abs, now)
	case tkCrash:
		s.fireCrash(abs, now)
	}
}

func (s *shard) fireClock(abs int, now time.Time) {
	if s.draining {
		return // drain cancelled the clocks; a stray fire re-arms nothing
	}
	li := abs - s.lo
	if !s.states[li].Locked() {
		adj := s.rt.g.Neighbors(graph.NodeID(abs))
		s.step(abs, stepInitiate, Message{}, adj[s.r.Intn(len(adj))], now)
	}
	// A fire while locked is skipped but the clock keeps running, exactly
	// like node.onTimer.
	s.scheduleClock(li, now)
}

// fireProto services a node's protocol deadline. Await and Pend are
// mutually exclusive (an initiator is never simultaneously a responder
// holding a proposal — Machine refuses LOCKs while locked), so one timer
// per node covers both; armProto keeps it pointed at whichever is live.
func (s *shard) fireProto(abs int, now time.Time) {
	li := abs - s.lo
	st := &s.states[li]
	nowNs := now.UnixNano()
	if st.Await != nil && nowNs >= st.Await.DeadlineNs {
		s.step(abs, stepTimeout, Message{}, graph.HalfEdge{}, now)
	}
	if st.Pend != nil && nowNs >= st.Pend.ResendNs {
		s.step(abs, stepResend, Message{}, graph.HalfEdge{}, now)
	}
	// Quantisation can fire a slot before the deadline's sub-tick offset;
	// re-arm for the next tick in that case (armProto is idempotent).
	s.armProto(li)
}

func (s *shard) fireCrash(abs int, now time.Time) {
	cs := s.crash[abs]
	if cs == nil || s.draining {
		return
	}
	if cs.crashed {
		if cs.recoverAt.IsZero() {
			return // down until drain
		}
		if now.Before(cs.recoverAt) {
			s.w.schedule(&cs.timer, cs.recoverAt.UnixNano())
			return
		}
		s.recoverNode(abs, cs, now)
		return
	}
	if cs.idx >= len(cs.wins) {
		return
	}
	if now.Before(cs.wins[cs.idx].at) {
		s.w.schedule(&cs.timer, cs.wins[cs.idx].at.UnixNano())
		return
	}
	s.crashNode(abs, cs, now)
}

func (s *shard) crashNode(abs int, cs *shardCrash, now time.Time) {
	li := abs - s.lo
	cs.crashed = true
	cs.recoverAt = cs.wins[cs.idx].until
	cs.idx++
	s.rt.crashes.Add(1)
	s.step(abs, stepCrash, Message{}, graph.HalfEdge{}, now)
	// A dead node fires no timers; its one deadline is recovery.
	s.w.cancel(&s.clocks[li])
	s.w.cancel(&s.protos[li])
	if !cs.recoverAt.IsZero() {
		s.w.schedule(&cs.timer, cs.recoverAt.UnixNano())
	}
}

func (s *shard) recoverNode(abs int, cs *shardCrash, now time.Time) {
	li := abs - s.lo
	cs.crashed = false
	cs.recoverAt = time.Time{}
	s.step(abs, stepRecover, Message{}, graph.HalfEdge{}, now)
	if !s.draining {
		s.scheduleClock(li, now)
		if cs.idx < len(cs.wins) {
			s.w.schedule(&cs.timer, cs.wins[cs.idx].at.UnixNano())
		}
	}
}

// enterDrain mirrors the node loop's drain transition: stop initiating,
// cancel remaining crash windows, force-recover down nodes so every held
// proposal can resolve.
func (s *shard) enterDrain(now time.Time) {
	s.draining = true
	for li := range s.clocks {
		s.w.cancel(&s.clocks[li])
	}
	for abs, cs := range s.crash {
		cs.idx = len(cs.wins)
		s.w.cancel(&cs.timer)
		if cs.crashed {
			s.recoverNode(abs, cs, now)
		}
	}
}

// step feeds one protocol event to the pure machine and routes its effects
// — the same sequence as node.step, so the lockstep tap and the flight
// emitter observe identical streams from either runtime.
func (s *shard) step(abs int, kind stepKind, m Message, he graph.HalfEdge, now time.Time) {
	rt := s.rt
	li := abs - s.lo
	st := &s.states[li]
	nowNs := now.UnixNano()
	var pre FlightPre
	if rt.rec != nil {
		pre = FlightPreOf(st)
	}
	var out StepOut
	switch kind {
	case stepDeliver:
		out = rt.mc.Deliver(st, m, nowNs, s.draining)
	case stepInitiate:
		out = rt.mc.Initiate(st, he, nowNs)
	case stepTimeout:
		out = rt.mc.TimeoutAwait(st)
	case stepResend:
		out = rt.mc.Resend(st, nowNs)
	case stepCrash:
		out = rt.mc.Crash(st)
	case stepRecover:
		out = rt.mc.Recover(st, nowNs)
	}
	if tap := rt.tap; tap != nil {
		tap(nodeEvent{node: abs, kind: kind, msg: m, he: he, nowNs: nowNs, draining: s.draining, out: out})
	}
	if rt.rec != nil {
		emitStepRec(rt.rec, abs, kind, m, out, pre, nowNs)
	}
	s.applyOut(st, out, nowNs)
	s.armProto(li)
}

// armProto points the node's protocol timer at its live deadline (Await
// timeout or Pend resend), or cancels it when the node is unlocked.
func (s *shard) armProto(li int) {
	st := &s.states[li]
	t := &s.protos[li]
	var when int64
	switch {
	case st.Await != nil:
		when = st.Await.DeadlineNs
	case st.Pend != nil:
		when = st.Pend.ResendNs
	default:
		s.w.cancel(t)
		return
	}
	if !t.scheduledIn() || t.when != when {
		s.w.schedule(t, when)
	}
}

// applyOut folds a StepOut into the runtime's counters and telemetry and
// sends its messages (node.applyOut, with per-shard breakdowns added).
func (s *shard) applyOut(st *NodeState, out StepOut, nowNs int64) {
	rt := s.rt
	if out.Proposed {
		rt.awaiting.Add(1)
		rt.proposed.Add(1)
		rt.met.proposed.Inc(s.id)
	}
	if out.PendCreated {
		rt.pending.Add(1)
	}
	if out.Applied {
		rt.applied.Add(1)
	}
	if out.Applied || out.Aborted {
		rt.awaiting.Add(-1)
	}
	if out.Aborted {
		rt.aborted.Add(1)
		s.abortedL.Add(1)
	}
	if out.Committed || out.PendDropped {
		rt.pending.Add(-1)
	}
	if out.Committed {
		rt.exchanges.Add(1)
		s.committed.Add(1)
	}
	if out.Applied || out.Committed {
		rt.met.publish(st.ID, st.X)
	}
	if out.Applied && out.LatencyNs >= 0 {
		if h := rt.met.latency; h != nil {
			h.Observe(out.LatencyNs)
		}
	}
	for _, m := range out.Send {
		s.send(m, nowNs)
	}
}

// send routes one outgoing message: into the destination shard's mailbox
// on the direct path, or through the transport (Via-stamped with the
// destination shard) otherwise.
func (s *shard) send(m Message, nowNs int64) {
	rt := s.rt
	rt.met.sent[m.Kind].Inc(s.id)
	if rec := rt.rec; rec != nil {
		rec.Record(msgRecord(flight.EvSend, m, m.From, nowNs))
	}
	if rt.tr != nil {
		m.Via = rt.shardOf(m.To) + 1
		if err := rt.tr.Send(m); err != nil {
			rt.noteSendErr(err)
		}
		return
	}
	d := rt.shards[rt.shardOf(m.To)]
	if !d.inbox.put(m) {
		rt.congested.Add(1)
		recordNetDrop(rt.rec, m, m.From, flight.ReasonCongestion)
		return
	}
	select {
	case d.wakeC <- struct{}{}:
	default:
	}
}

// Graph returns the runtime's graph.
func (rt *ShardRuntime) Graph() *graph.Graph { return rt.g }

// Rule returns the exchange rule in use.
func (rt *ShardRuntime) Rule() Rule { return rt.rule }

// Shards returns the number of shard event loops.
func (rt *ShardRuntime) Shards() int { return len(rt.shards) }

// Values returns a copy of the current value vector.
func (rt *ShardRuntime) Values() []float64 {
	return append([]float64(nil), rt.values...)
}

// Mean returns the current average value (invariant up to float rounding,
// as for Cluster).
func (rt *ShardRuntime) Mean() float64 {
	if len(rt.values) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range rt.values {
		s += v
	}
	return s / float64(len(rt.values))
}

// Variance returns the paper's varX of the current values.
func (rt *ShardRuntime) Variance() float64 {
	n := float64(len(rt.values))
	if n == 0 {
		return 0
	}
	m := rt.Mean()
	s := 0.0
	for _, v := range rt.values {
		d := v - m
		s += d * d
	}
	return s / n
}

// Exchanges returns the number of committed exchanges.
func (rt *ShardRuntime) Exchanges() int64 { return rt.exchanges.Load() }

// Aborted returns the number of aborted initiation attempts.
func (rt *ShardRuntime) Aborted() int64 { return rt.aborted.Load() }

// Proposed returns the number of initiation attempts; see Cluster.Proposed
// for the ledger this anchors.
func (rt *ShardRuntime) Proposed() int64 { return rt.proposed.Load() }

// Applied returns the number of initiator-half applies; equals Exchanges()
// after a settled run.
func (rt *ShardRuntime) Applied() int64 { return rt.applied.Load() }

// Crashes returns the number of crash events fired so far.
func (rt *ShardRuntime) Crashes() int64 { return rt.crashes.Load() }

// CrashLost returns the number of messages lost to dead destinations.
func (rt *ShardRuntime) CrashLost() int64 { return rt.crashLost.Load() }

// Congested returns the number of direct-path messages dropped because the
// destination shard's mailbox was full (always 0 with a Transport, which
// does its own congestion accounting).
func (rt *ShardRuntime) Congested() int64 { return rt.congested.Load() }
