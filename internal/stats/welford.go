package stats

import "math"

// Welford is a streaming accumulator for mean, variance and range using
// Welford's numerically stable online algorithm. The zero value is an
// empty accumulator. It lets the sweep engine fold per-trial statistics
// into a cell without retaining every sample, and Merge combines
// accumulators from independent shards (Chan et al.'s parallel update).
type Welford struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge folds another accumulator into this one, as if every observation
// of o had been Added here.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.mean += d * float64(o.n) / float64(n)
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean, or NaN when empty.
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the unbiased (n-1 denominator) sample variance; 0 for
// fewer than two observations.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the square root of Variance.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation, or NaN when empty.
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.min
}

// Max returns the largest observation, or NaN when empty.
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.max
}

// CI95 returns the half-width of a 95% normal-approximation confidence
// interval for the mean (0 for fewer than two observations), matching
// MeanCI95.
func (w *Welford) CI95() float64 {
	if w.n < 2 {
		return 0
	}
	const z = 1.96
	return z * w.StdDev() / math.Sqrt(float64(w.n))
}
