// Package syncsim provides a synchronous-round simulator and the first- and
// second-order diffusion load-balancing schemes of Muthukrishnan, Ghosh and
// Schultz (1998) — the non-convex precedent the paper's introduction cites
// (reference [5]). It exists so experiment E11 can compare Algorithm A
// against the established second-order method on sparse-cut graphs.
//
// In one synchronous round every node simultaneously updates from its
// neighbours:
//
//	first order:   x(t+1) = W·x(t)
//	second order:  x(t+1) = β·W·x(t) + (1−β)·x(t−1)
//
// where W is the Metropolis-style diffusion matrix
// W = I − δ·L with δ = 1/(maxdeg+1) (doubly stochastic, so the average is
// preserved), and β ∈ [1, 2) is the second-order parameter. The optimal β
// for a known spectrum is β* = 2/(1 + √(1−ρ²)) with ρ the second-largest
// eigenvalue modulus of W.
//
// To compare round counts against the asynchronous model's time axis, note
// one synchronous round performs n simultaneous node updates while one
// asynchronous time unit performs ~2·|E|/n updates per node; the experiment
// harness reports both raw rounds and the per-node-update-normalised value.
//
// Key types: FirstOrder, SecondOrder, OptimalBeta — the reference [5] baselines experiment E11 compares against (DESIGN.md §4).
package syncsim

import (
	"errors"
	"fmt"
	"math"

	"sparsecut/internal/graph"
	"sparsecut/internal/spectral"
)

// Diffusion runs first- or second-order synchronous diffusion on a graph.
type Diffusion struct {
	g     *graph.Graph
	delta float64
	beta  float64 // 1 => first order
	cur   []float64
	prev  []float64
	round int
}

// NewFirstOrder builds the first-order scheme x(t+1) = W·x(t).
func NewFirstOrder(g *graph.Graph, x0 []float64) (*Diffusion, error) {
	return newDiffusion(g, x0, 1)
}

// NewSecondOrder builds the second-order scheme with parameter beta in
// [1, 2). beta = 1 degenerates to first order.
func NewSecondOrder(g *graph.Graph, x0 []float64, beta float64) (*Diffusion, error) {
	if beta < 1 || beta >= 2 {
		return nil, fmt.Errorf("syncsim: beta %v outside [1,2)", beta)
	}
	return newDiffusion(g, x0, beta)
}

func newDiffusion(g *graph.Graph, x0 []float64, beta float64) (*Diffusion, error) {
	if len(x0) != g.NumNodes() {
		return nil, fmt.Errorf("syncsim: %d initial values for %d nodes", len(x0), g.NumNodes())
	}
	if g.NumNodes() == 0 {
		return nil, errors.New("syncsim: empty graph")
	}
	return &Diffusion{
		g:     g,
		delta: 1 / float64(g.MaxDegree()+1),
		beta:  beta,
		cur:   append([]float64(nil), x0...),
		prev:  append([]float64(nil), x0...),
	}, nil
}

// OptimalBeta computes the asymptotically optimal second-order parameter
// β* = 2/(1+√(1−ρ²)) from the spectrum of W = I − δL (Muthukrishnan et al.,
// Theorem 3.1). It requires a connected graph.
func OptimalBeta(g *graph.Graph, opts spectral.Options) (float64, error) {
	if err := graph.RequireConnected(g); err != nil {
		return 0, err
	}
	lam2, _, err := spectral.Lambda2(g, opts)
	if err != nil {
		return 0, fmt.Errorf("syncsim: lambda2: %w", err)
	}
	lamMax, err := spectral.LambdaMax(g, opts)
	if err != nil {
		return 0, fmt.Errorf("syncsim: lambda max: %w", err)
	}
	delta := 1 / float64(g.MaxDegree()+1)
	// Eigenvalues of W are 1 - delta*lambda_i; rho is the second largest modulus.
	rho := math.Max(math.Abs(1-delta*lam2), math.Abs(1-delta*lamMax))
	if rho >= 1 {
		return 0, fmt.Errorf("syncsim: spectral radius %v >= 1 (disconnected?)", rho)
	}
	return 2 / (1 + math.Sqrt(1-rho*rho)), nil
}

// Step advances one synchronous round.
func (d *Diffusion) Step() {
	n := d.g.NumNodes()
	next := make([]float64, n)
	for u := 0; u < n; u++ {
		// (W x)_u = x_u + delta * sum_{v~u} (x_v - x_u)
		acc := d.cur[u]
		for _, he := range d.g.Neighbors(graph.NodeID(u)) {
			acc += d.delta * (d.cur[he.Peer] - d.cur[u])
		}
		next[u] = d.beta*acc + (1-d.beta)*d.prev[u]
	}
	d.prev = d.cur
	d.cur = next
	d.round++
}

// Round returns the number of completed rounds.
func (d *Diffusion) Round() int { return d.round }

// Values returns a copy of the current vector.
func (d *Diffusion) Values() []float64 { return append([]float64(nil), d.cur...) }

// Mean returns the current average (preserved by first order exactly; the
// second-order scheme preserves it because both W·x and x(t−1) do).
func (d *Diffusion) Mean() float64 { return spectral.Mean(d.cur) }

// Variance returns the paper's varX of the current vector.
func (d *Diffusion) Variance() float64 { return spectral.Variance(d.cur) }

// Name describes the scheme.
func (d *Diffusion) Name() string {
	if d.beta == 1 {
		return "diffusion-1st"
	}
	return fmt.Sprintf("diffusion-2nd(beta=%.4g)", d.beta)
}

// RoundsToRatio runs the scheme until varX(t)/varX(0) <= ratio or maxRounds
// is reached. It returns the number of rounds used and whether the target
// was reached. A zero initial variance returns (0, true).
func (d *Diffusion) RoundsToRatio(ratio float64, maxRounds int) (int, bool) {
	var0 := d.Variance()
	if var0 == 0 {
		return 0, true
	}
	for r := 0; r < maxRounds; r++ {
		if d.Variance()/var0 <= ratio {
			return d.round, true
		}
		d.Step()
	}
	return d.round, d.Variance()/var0 <= ratio
}
