// Package sweep runs grids of scenarios — (graph family × size × cut ×
// algorithm × parameter) Monte-Carlo cells — concurrently on a worker
// pool, with results that are bit-identical regardless of the worker
// count.
//
// Determinism contract: the grid expands to an ordered list of units; each
// unit's entire randomness (graph sample, initial vector, trial streams)
// derives from a seed computed by a splitmix64 hash of (root seed, unit
// index) — never from which worker runs it or when. Cells are written into
// a slice indexed by unit, so the report layout is also order-independent.
// The package test proves workers=1 and workers=4 produce byte-identical
// JSON.
//
// Key types: Grid (the axes), Cell, Report, Run. The determinism contract and aggregation semantics are DESIGN.md §7; the reproduction pipeline (§9) runs its grids through this engine.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"

	"sparsecut/internal/metrics"
	"sparsecut/internal/scenario"
	"sparsecut/internal/stats"
)

// Grid is a scenario template plus axes to sweep. Empty axes keep the
// base spec's value; non-empty axes multiply into a cartesian product in
// the field order below (families outermost, rates innermost).
type Grid struct {
	// Base supplies every field the axes do not override.
	Base scenario.Spec `json:"base"`
	// Families sweeps Graph.Family.
	Families []string `json:"families,omitempty"`
	// Ns sweeps the total node count. Setting it clears the base spec's
	// derived shape fields (n1/n2, rows/cols, dim, levels) so each size
	// re-derives its shape.
	Ns []int `json:"ns,omitempty"`
	// Cuts sweeps Graph.Cut.
	Cuts []int `json:"cuts,omitempty"`
	// Algos sweeps Algo.Name.
	Algos []string `json:"algos,omitempty"`
	// Alphas sweeps the convex mixing parameter.
	Alphas []float64 `json:"alphas,omitempty"`
	// EpochCs sweeps Algorithm A's epoch constant C.
	EpochCs []float64 `json:"epoch_cs,omitempty"`
	// Weights sweeps Algorithm A's swap-weight rule.
	Weights []string `json:"weights,omitempty"`
	// Rates sweeps the clock-rate model (uniform, nodeclock, random) —
	// the timing-model robustness axis of experiment E13.
	Rates []string `json:"rates,omitempty"`
}

// Unit is one fully-specified cell of the expanded grid.
type Unit struct {
	// Index is the unit's position in expansion order; it determines the
	// unit seed and the cell's slot in the report.
	Index int
	// Spec is the cell's scenario with the unit seed already planted.
	Spec scenario.Spec
}

// Expand turns the grid into its ordered unit list, planting the per-unit
// seeds derived from root. Axis values are validated against the scenario
// registry up front so a typo fails before any simulation runs.
func Expand(g Grid, root uint64) ([]Unit, error) {
	orOne := func(k int) int {
		if k == 0 {
			return 1
		}
		return k
	}
	total := orOne(len(g.Families)) * orOne(len(g.Ns)) * orOne(len(g.Cuts)) *
		orOne(len(g.Algos)) * orOne(len(g.Alphas)) * orOne(len(g.EpochCs)) *
		orOne(len(g.Weights)) * orOne(len(g.Rates))
	units := make([]Unit, 0, total)
	for fi := 0; fi < orOne(len(g.Families)); fi++ {
		for ni := 0; ni < orOne(len(g.Ns)); ni++ {
			for ci := 0; ci < orOne(len(g.Cuts)); ci++ {
				for ai := 0; ai < orOne(len(g.Algos)); ai++ {
					for pi := 0; pi < orOne(len(g.Alphas)); pi++ {
						for ei := 0; ei < orOne(len(g.EpochCs)); ei++ {
							for wi := 0; wi < orOne(len(g.Weights)); wi++ {
								for ri := 0; ri < orOne(len(g.Rates)); ri++ {
									s := g.Base
									if len(g.Families) > 0 {
										s.Graph.Family = g.Families[fi]
									}
									if len(g.Ns) > 0 {
										s.Graph.N = g.Ns[ni]
										s.Graph.N1, s.Graph.N2 = 0, 0
										s.Graph.Rows, s.Graph.Cols = 0, 0
										s.Graph.Dim, s.Graph.Levels = 0, 0
										s.Graph.Tail, s.Graph.Blocks = 0, 0
									}
									if len(g.Cuts) > 0 {
										s.Graph.Cut = g.Cuts[ci]
									}
									if len(g.Algos) > 0 {
										s.Algo.Name = g.Algos[ai]
									}
									if len(g.Alphas) > 0 {
										s.Algo.Alpha = g.Alphas[pi]
									}
									if len(g.EpochCs) > 0 {
										s.Algo.EpochC = g.EpochCs[ei]
									}
									if len(g.Weights) > 0 {
										s.Algo.Weight = g.Weights[wi]
									}
									if len(g.Rates) > 0 {
										s.Rates = g.Rates[ri]
									}
									index := len(units)
									s.Seed = unitSeed(root, index)
									units = append(units, Unit{Index: index, Spec: s})
								}
							}
						}
					}
				}
			}
		}
	}
	// Validate every unit's family now (cheap — no graph construction):
	// Resolve would catch a typo later, but failing at expansion keeps a
	// long sweep from dying halfway through. This covers both the
	// Families axis and the base spec's family (an empty base family is
	// resolved to the default by withDefaults, so only non-empty names
	// are checked).
	for _, u := range units {
		if f := u.Spec.Graph.Family; f != "" {
			if _, ok := scenario.Lookup(f); !ok {
				return nil, fmt.Errorf("sweep: unit %d: unknown family %q", u.Index, f)
			}
		}
	}
	return units, nil
}

// unitSeed hashes (root, index) with the splitmix64 finalizer: every unit
// gets a stable, well-separated seed independent of scheduling.
func unitSeed(root uint64, index int) uint64 {
	z := root + 0x9e3779b97f4a7c15*(uint64(index)+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 1 // Spec.Seed zero means "use the default"; keep it explicit
	}
	return z
}

// Config controls a sweep run.
type Config struct {
	// Workers is the pool size (default GOMAXPROCS). The results do not
	// depend on it.
	Workers int
	// Seed is the root seed (default: the grid base spec's seed, then 1).
	Seed uint64
	// OnCell, when set, is called once per finished cell, in completion
	// order (which is scheduling-dependent — use it for progress display
	// only, never for results).
	OnCell func(Cell)
	// Metrics, when set, receives the sweep's telemetry: cells
	// started/completed/errored counters (sharded by worker index) and a
	// per-cell wall-time histogram (sweep.cell.wall_ns). Like OnCell it is
	// observation only — the report is byte-identical with or without it.
	Metrics *metrics.Registry
}

// Run expands the grid and executes every unit on the worker pool.
// Per-cell failures (for example an unsatisfiable random family) are
// recorded in the cell's Error field rather than aborting the sweep.
func Run(grid Grid, cfg Config) (*Report, error) {
	root := cfg.Seed
	if root == 0 {
		root = grid.Base.Seed
	}
	if root == 0 {
		root = 1
	}
	units, err := Expand(grid, root)
	if err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(units) {
		workers = len(units)
	}

	// Nil-registry instruments are nil and every method on them no-ops, so
	// the disabled path needs no branches here.
	started := cfg.Metrics.Counter("sweep.cells.started")
	completed := cfg.Metrics.Counter("sweep.cells.completed")
	errored := cfg.Metrics.Counter("sweep.cells.errored")
	wall := cfg.Metrics.Histogram("sweep.cell.wall_ns")

	cells := make([]Cell, len(units))
	var mu sync.Mutex
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range work {
				u := units[i]
				started.Inc(w)
				begin := time.Now()
				// Label the unit's CPU samples by scenario so a -cpuprofile
				// of a mixed sweep attributes time per family and algorithm.
				pprof.Do(context.Background(), unitLabels(u), func(context.Context) {
					cells[i] = runUnit(u)
				})
				wall.Observe(time.Since(begin).Nanoseconds())
				completed.Inc(w)
				if cells[i].Error != "" {
					errored.Inc(w)
				}
				if cfg.OnCell != nil {
					mu.Lock()
					cfg.OnCell(cells[i])
					mu.Unlock()
				}
			}
		}(w)
	}
	for i := range units {
		work <- i
	}
	close(work)
	wg.Wait()

	return &Report{Grid: grid, Seed: root, Cells: cells}, nil
}

// unitLabels builds the pprof label set identifying a unit's scenario in
// CPU profiles. Empty fields mean "registry default", which Resolve fills
// in later; label them as such rather than resolving twice.
func unitLabels(u Unit) pprof.LabelSet {
	fam, algo := u.Spec.Graph.Family, u.Spec.Algo.Name
	if fam == "" {
		fam = "default"
	}
	if algo == "" {
		algo = "default"
	}
	return pprof.Labels("sweep_family", fam, "sweep_algo", algo)
}

// runUnit resolves and estimates one cell. All errors are folded into the
// cell so the sweep's shape is stable.
func runUnit(u Unit) Cell {
	cell := Cell{Index: u.Index, Label: u.Spec.Label(), Spec: u.Spec, Seed: u.Spec.Seed}
	r, err := u.Spec.Resolve()
	if err != nil {
		cell.Error = err.Error()
		return cell
	}
	cell.Spec = r.Spec // normalized: every default made explicit
	cell.Label = r.Spec.Label()
	if r.Implicit != nil {
		// Sharded cells never materialise the graph; describe it from the
		// implicit representation instead.
		cell.Nodes = r.Implicit.NumNodes()
		cell.Edges = int(r.Implicit.NumEdges())
		cell.CutSize = len(r.Implicit.Tiling().Boundary)
	} else {
		cell.Nodes = r.Graph.NumNodes()
		cell.Edges = r.Graph.NumEdges()
		if r.Partition != nil {
			cell.CutSize = r.Partition.CutSize()
		}
	}
	res, err := r.Estimate()
	if err != nil {
		cell.Error = err.Error()
		return cell
	}
	var w stats.Welford
	for _, l := range res.PerTrial {
		w.Add(l)
	}
	cell.Trials = len(res.PerTrial)
	cell.Censored = res.Censored
	cell.Events = res.Events
	cell.Tav = res.Tav
	cell.Mean = w.Mean()
	cell.StdDev = w.StdDev()
	cell.CI95 = w.CI95()
	cell.Min = w.Min()
	cell.Max = w.Max()
	if q, err := stats.Quantile(res.PerTrial, 0.25); err == nil {
		cell.Q25 = q
	}
	if q, err := stats.Quantile(res.PerTrial, 0.5); err == nil {
		cell.Median = q
	}
	if q, err := stats.Quantile(res.PerTrial, 0.75); err == nil {
		cell.Q75 = q
	}
	return cell
}
