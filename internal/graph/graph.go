// Package graph provides the immutable undirected-graph substrate used by
// every simulator and experiment in this repository: a compact adjacency
// representation, a validating builder, a library of generators (complete
// graphs, dumbbells, random graphs, geometric graphs, ...), vertex
// partitions with cut/conductance accounting, traversal utilities, and
// plain-text I/O.
//
// Graphs are simple (no self-loops, no parallel edges) and undirected.
// Nodes are identified by dense integer IDs in [0, NumNodes), edges by dense
// IDs in [0, NumEdges) — both are stable for the lifetime of the graph,
// which lets simulators index per-edge state with plain slices.
//
// Key types: Graph (immutable, CSR adjacency), Partition (two-way cut accounting), the generator zoo in generators.go/composites.go. See DESIGN.md §1 for the layout and §7 for the family registry built on top.
package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// NodeID identifies a vertex. IDs are dense: 0 <= id < NumNodes().
type NodeID int32

// EdgeID identifies an edge. IDs are dense: 0 <= id < NumEdges().
type EdgeID int32

// Edge is an undirected edge between two distinct nodes. The constructor
// normalises so that U < V.
type Edge struct {
	U, V NodeID
}

// NewEdge returns the normalised edge {u, v} with U < V.
func NewEdge(u, v NodeID) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v}
}

// Other returns the endpoint of e that is not x. It panics if x is not an
// endpoint of e.
func (e Edge) Other(x NodeID) NodeID {
	switch x {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %v", x, e))
}

// String renders the edge as "u-v".
func (e Edge) String() string { return fmt.Sprintf("%d-%d", e.U, e.V) }

// HalfEdge is one directed half of an undirected edge as seen from a node's
// adjacency list.
type HalfEdge struct {
	Peer NodeID // the neighbouring node
	Edge EdgeID // the undirected edge connecting them
}

// Graph is an immutable simple undirected graph. Construct with a Builder
// or one of the generators. The zero value is an empty graph with no nodes.
type Graph struct {
	name  string
	edges []Edge
	adj   [][]HalfEdge
	// pos holds optional 2-D coordinates (geometric generators); nil otherwise.
	pos []Point

	// Flat mirrors of edges/adj, built once at Build() time so simulation
	// kernels can resolve an edge's endpoints or a node's neighbourhood with
	// plain int32 array indexing instead of Edge struct loads or slice-of-
	// slice pointer chasing.
	edgeU, edgeV []int32 // endpoints of edge id, edgeU[id] < edgeV[id]
	csrOff       []int32 // CSR offsets, len NumNodes()+1
	csrPeer      []int32 // neighbour of the half-edge, len 2*NumEdges()
	csrEdge      []int32 // undirected edge id of the half-edge, len 2*NumEdges()
}

// Point is a 2-D coordinate attached to nodes of geometric graphs.
type Point struct {
	X, Y float64
}

// Name returns the human-readable graph name ("" if unset).
func (g *Graph) Name() string { return g.name }

// NumNodes returns |V|.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns |E|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edge returns the endpoints of edge id. It panics on an out-of-range id.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// Edges returns the full edge list. The caller must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// EdgeU returns the flat lower-endpoint array: EdgeU()[id] and EdgeV()[id]
// are the endpoints of edge id with EdgeU()[id] < EdgeV()[id]. Hot loops
// index it directly instead of loading Edge structs. The caller must not
// modify it.
func (g *Graph) EdgeU() []int32 { return g.edgeU }

// EdgeV returns the flat upper-endpoint array; see EdgeU. The caller must
// not modify it.
func (g *Graph) EdgeV() []int32 { return g.edgeV }

// CSR returns the compressed-sparse-row adjacency: the half-edges of node u
// are peers[offsets[u]:offsets[u+1]] (sorted by peer id, matching
// Neighbors), and edges[k] is the undirected edge id of half-edge k. The
// caller must not modify the returned slices.
func (g *Graph) CSR() (offsets, peers, edges []int32) {
	return g.csrOff, g.csrPeer, g.csrEdge
}

// Degree returns the number of neighbours of node u.
func (g *Graph) Degree(u NodeID) int { return len(g.adj[u]) }

// Neighbors returns u's adjacency list. The caller must not modify it.
func (g *Graph) Neighbors(u NodeID) []HalfEdge { return g.adj[u] }

// MaxDegree returns the largest degree in the graph (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	m := 0
	for _, a := range g.adj {
		if len(a) > m {
			m = len(a)
		}
	}
	return m
}

// HasPositions reports whether nodes carry geometric coordinates.
func (g *Graph) HasPositions() bool { return g.pos != nil }

// Position returns the coordinate of node u, or the zero Point when the
// graph carries no positions.
func (g *Graph) Position(u NodeID) Point {
	if g.pos == nil {
		return Point{}
	}
	return g.pos[u]
}

// FindEdge returns the edge id connecting u and v, if any.
func (g *Graph) FindEdge(u, v NodeID) (EdgeID, bool) {
	if int(u) >= g.NumNodes() || int(v) >= g.NumNodes() || u < 0 || v < 0 {
		return 0, false
	}
	// Scan the shorter adjacency list.
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	for _, he := range g.adj[u] {
		if he.Peer == v {
			return he.Edge, true
		}
	}
	return 0, false
}

// String renders a short description like "dumbbell(n=64): 64 nodes, 993 edges".
func (g *Graph) String() string {
	name := g.name
	if name == "" {
		name = "graph"
	}
	return fmt.Sprintf("%s: %d nodes, %d edges", name, g.NumNodes(), g.NumEdges())
}

// Builder accumulates edges and produces an immutable Graph. The zero value
// is ready to use. Builders are not safe for concurrent use.
type Builder struct {
	n     int
	edges map[Edge]struct{}
	order []Edge // insertion order, for deterministic edge IDs
	name  string
	pos   []Point
	err   error
}

// NewBuilder returns a builder for a graph with n nodes (IDs 0..n-1).
func NewBuilder(n int) *Builder {
	b := &Builder{edges: make(map[Edge]struct{})}
	if n < 0 {
		b.err = fmt.Errorf("graph: negative node count %d", n)
		return b
	}
	if err := checkIndexSpace(n, 0); err != nil {
		b.err = err
		return b
	}
	b.n = n
	return b
}

// SetName sets the graph's human-readable name.
func (b *Builder) SetName(name string) *Builder {
	b.name = name
	return b
}

// SetPositions attaches 2-D coordinates; len(pos) must equal the node count
// at Build time.
func (b *Builder) SetPositions(pos []Point) *Builder {
	b.pos = pos
	return b
}

// AddEdge inserts the undirected edge {u, v}. Self-loops and out-of-range
// endpoints are recorded as errors reported by Build; duplicate edges are
// ignored so generators may be sloppy about double insertion.
func (b *Builder) AddEdge(u, v NodeID) *Builder {
	if b.err != nil {
		return b
	}
	if u == v {
		b.err = fmt.Errorf("graph: self-loop at node %d", u)
		return b
	}
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		b.err = fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n)
		return b
	}
	e := NewEdge(u, v)
	if _, dup := b.edges[e]; dup {
		return b
	}
	b.edges[e] = struct{}{}
	b.order = append(b.order, e)
	return b
}

// HasEdge reports whether {u,v} has been added.
func (b *Builder) HasEdge(u, v NodeID) bool {
	_, ok := b.edges[NewEdge(u, v)]
	return ok
}

// NumEdges returns the number of distinct edges added so far.
func (b *Builder) NumEdges() int { return len(b.order) }

// Build validates and returns the immutable graph. The builder may be
// reused afterwards (further AddEdge calls do not affect the built graph).
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	if b.pos != nil && len(b.pos) != b.n {
		return nil, fmt.Errorf("graph: %d positions for %d nodes", len(b.pos), b.n)
	}
	if err := checkIndexSpace(b.n, len(b.order)); err != nil {
		return nil, err
	}
	g := &Graph{
		name:  b.name,
		edges: append([]Edge(nil), b.order...),
		adj:   make([][]HalfEdge, b.n),
	}
	if b.pos != nil {
		g.pos = append([]Point(nil), b.pos...)
	}
	for id, e := range g.edges {
		g.adj[e.U] = append(g.adj[e.U], HalfEdge{Peer: e.V, Edge: EdgeID(id)})
		g.adj[e.V] = append(g.adj[e.V], HalfEdge{Peer: e.U, Edge: EdgeID(id)})
	}
	// Deterministic neighbour order regardless of insertion order.
	for _, a := range g.adj {
		sort.Slice(a, func(i, j int) bool { return a[i].Peer < a[j].Peer })
	}
	// Flat endpoint arrays and CSR adjacency for simulation kernels.
	g.edgeU = make([]int32, len(g.edges))
	g.edgeV = make([]int32, len(g.edges))
	for id, e := range g.edges {
		g.edgeU[id] = int32(e.U)
		g.edgeV[id] = int32(e.V)
	}
	g.csrOff = make([]int32, b.n+1)
	g.csrPeer = make([]int32, 2*len(g.edges))
	g.csrEdge = make([]int32, 2*len(g.edges))
	k := 0
	for u, a := range g.adj {
		g.csrOff[u] = int32(k)
		for _, he := range a {
			g.csrPeer[k] = int32(he.Peer)
			g.csrEdge[k] = int32(he.Edge)
			k++
		}
	}
	g.csrOff[b.n] = int32(k)
	return g, nil
}

// MustBuild is Build for generators with no failure mode; it panics on error.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// ErrTooLarge is returned (wrapped) when a graph would overflow the int32
// id space of the materialised representation: NodeID/EdgeID are int32, and
// the CSR half-edge arrays additionally need 2·|E| (plus the offset
// sentinel) to fit an int32. Callers hitting it should switch to the
// Implicit representation, whose edge ids are int64.
var ErrTooLarge = errors.New("graph: graph exceeds int32 index space")

// maxBuildEdges bounds |E| so 2·|E| half-edges plus the CSR offset
// sentinel stay representable: csrOff[n] = 2·|E| must fit an int32.
const maxBuildEdges = (math.MaxInt32 - 1) / 2

// checkIndexSpace validates node and edge counts against the int32 id
// space before Build commits to its large allocations.
func checkIndexSpace(nodes, edges int) error {
	if int64(nodes) > math.MaxInt32 {
		return fmt.Errorf("%w: %d nodes (max %d)", ErrTooLarge, nodes, math.MaxInt32)
	}
	if int64(edges) > maxBuildEdges {
		return fmt.Errorf("%w: %d edges (max %d)", ErrTooLarge, edges, maxBuildEdges)
	}
	return nil
}

// ErrDisconnected is returned by validators that require connectivity.
var ErrDisconnected = errors.New("graph: graph is not connected")

// RequireConnected returns ErrDisconnected (wrapped with the graph name)
// unless g is connected and non-empty.
func RequireConnected(g *Graph) error {
	if g.NumNodes() == 0 || !IsConnected(g) {
		return fmt.Errorf("%s: %w", g.String(), ErrDisconnected)
	}
	return nil
}
