// Sensornet: averaging in a sensor field split by a wall.
//
// 150 sensors are scattered on the unit square; a wall at x = 0.5 blocks
// all radio links except one "door". Each sensor holds a local measurement
// and the network must agree on the global average. This is the geometric
// scenario that motivated the paper's predecessor (reference [6]): the
// sparse cut is physical, not adversarial.
//
// The example detects the cut spectrally (no planted knowledge is given to
// the algorithm), runs vanilla gossip and Algorithm A side by side, and
// reports how far each is from the true average over time.
package main

import (
	"fmt"
	"log"

	"sparsecut"
)

func main() {
	const n = 150
	g, planted, err := sparsecut.NewSensorField(42, n, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("field:", g)
	fmt.Printf("wall:  %d door(s), planted conductance %.4g\n",
		planted.CutSize(), planted.Conductance())

	// The algorithm is not told where the wall is: spectral bisection
	// finds it from the topology alone.
	detected, err := sparsecut.FindSparseCut(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("found: cut of %d edge(s), conductance %.4g\n\n",
		detected.CutSize(), detected.Conductance())

	// Measurements: each sensor reads 20.0 +/- noise, except the left
	// half sits in the sun (+5). The network-wide truth is the mean.
	x0 := make([]float64, n)
	noise := sparsecut.RandomInit(7, n)
	truth := 0.0
	for u := 0; u < n; u++ {
		x0[u] = 20 + noise[u]
		if planted.SideOf(sparsecut.NodeID(u)) == sparsecut.Side1 {
			x0[u] += 5
		}
		truth += x0[u]
	}
	truth /= n

	fmt.Printf("%8s  %22s  %22s\n", "t", "vanilla varX/varX(0)", "algorithm-A varX/varX(0)")
	for _, horizon := range []float64{10, 40, 160} {
		van, err := sparsecut.NewVanillaGossip(g, x0)
		if err != nil {
			log.Fatal(err)
		}
		algA, err := sparsecut.NewAlgorithmA(g, x0) // auto-detects the cut itself
		if err != nil {
			log.Fatal(err)
		}
		rv := sparsecut.Simulate(g, van, horizon, 3)
		ra := sparsecut.Simulate(g, algA, horizon, 3)
		fmt.Printf("%8.4g  %22.4g  %22.4g\n", horizon, rv.VarianceRatio, ra.VarianceRatio)
		if horizon == 160 {
			fmt.Printf("\ntrue average %.4f; A's network agrees on %.4f\n", truth, ra.Mean)
		}
	}
}
