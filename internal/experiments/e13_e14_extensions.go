package experiments

// E13–E14: extensions beyond the paper's exact setting.
//
// E13 validates the paper's footnote 1: the algorithm's guarantees are
// about the timing *model*, and the classical node-clock model of Boyd et
// al. reduces to the edge-clock model with degree-dependent rates — so
// Algorithm A (whose epoch counter counts ticks of ec itself) should keep
// winning unchanged, even though the designated cut edge now ticks at a
// different rate. It also stresses robustness to arbitrary rate
// heterogeneity.
//
// E14 quantifies the multi-cut-edge extension (WithAllCutEdges): using all
// of E12's tick budget for swaps shortens the expected epoch from K to
// K/|E12| time units. The paper's algorithm deliberately ignores the other
// cut edges; the extension shows what they are worth.

import (
	"fmt"
	"io"

	"sparsecut/internal/core"
	"sparsecut/internal/gossip"
	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
	"sparsecut/internal/sim"
	"sparsecut/internal/table"

	"sparsecut/internal/avgtime"
)

func init() {
	register(Experiment{
		ID:    "E13",
		Title: "extension: node-clock model (footnote 1) and heterogeneous edge rates",
		Claim: "Footnote 1: the edge-clock model simulates the node-clock model (and vice versa); Algorithm A's separation survives degree-dependent and random rate heterogeneity",
		Run:   runE13,
	})
	register(Experiment{
		ID:    "E14",
		Title: "extension: swapping over all cut edges (vs the paper's single ec)",
		Claim: "The paper ignores cut edges other than ec; rotating the swap over all of E12 shortens epochs by ~|E12| at identical per-swap semantics",
		Run:   runE14,
	})
}

// estimateWithRates is avgtime.Estimate generalised to per-edge clock rates.
func estimateWithRates(g *graph.Graph, rates []float64, factory avgtime.Factory, trials int, seed uint64, maxTime float64, monotone bool) (avgtime.Result, error) {
	cfg := avgtime.Config{Trials: trials, Seed: seed, MaxTime: maxTime}
	if monotone {
		cfg.MarginFactor = 1
	}
	return avgtime.EstimateWithRates(g, rates, factory, cfg)
}

func runE13(w io.Writer, p Params) (Outcome, error) {
	p = p.withDefaults()
	out := newOutcome()
	n := pick(p, 48, 128)
	g, part, x0, err := dumbbellCase(n, 1)
	if err != nil {
		return out, err
	}
	trials := pick(p, 3, 7)

	models := []struct {
		label string
		rates func() []float64
	}{
		{"edge-clock (paper)", func() []float64 { return nil }},
		{"node-clock (Boyd et al.)", func() []float64 { return sim.NodeClockRates(g) }},
		{"random rates U[0.5,2]", func() []float64 {
			r := rng.New(p.Seed + 17)
			rates := make([]float64, g.NumEdges())
			for i := range rates {
				rates[i] = 0.5 + 1.5*r.Float64()
			}
			return rates
		}},
	}

	tbl := table.New(fmt.Sprintf("E13: timing-model robustness, dumbbell n=%d", n),
		"clock model", "Tav(vanilla)", "Tav(A)", "speedup")
	for _, m := range models {
		rates := m.rates()
		van, err := estimateWithRates(g, rates, func(int, *rng.RNG) (gossip.Algorithm, error) {
			return gossip.NewVanilla(g, x0)
		}, trials, p.Seed, maxTimeFor(n), true)
		if err != nil {
			return out, err
		}
		algA, err := estimateWithRates(g, rates, func(int, *rng.RNG) (gossip.Algorithm, error) {
			return core.New(g, x0, core.WithPartition(part))
		}, trials, p.Seed, maxTimeFor(n), false)
		if err != nil {
			return out, err
		}
		speedup := van.Tav / algA.Tav
		tbl.AddRow(m.label, fmtCensored(van.Tav, van.Censored), fmtCensored(algA.Tav, algA.Censored), speedup)
		out.Metrics["speedup-"+m.label] = speedup
	}
	if err := render(w, p, tbl); err != nil {
		return out, err
	}
	fmt.Fprintln(w, "\nunder the node-clock model the cut edge ticks at rate 2*(2/n) instead of 1, slowing both algorithms across the cut; the separation itself survives every model")
	return out, nil
}

func runE14(w io.Writer, p Params) (Outcome, error) {
	p = p.withDefaults()
	out := newOutcome()
	n := pick(p, 48, 128)
	trials := pick(p, 3, 7)
	tbl := table.New(fmt.Sprintf("E14: single designated edge vs all cut edges, dumbbell n=%d", n),
		"|E12|", "Tav(A, paper ec)", "Tav(A, all E12, scaled K)", "gain", "Tav(A, all E12, naive K)")
	for _, cutEdges := range pick(p, []int{2, 4}, []int{2, 4, 8, 16}) {
		g, part, x0, err := dumbbellCase(n, cutEdges)
		if err != nil {
			return out, err
		}
		single, err := measureAlgorithmA(g, x0, trials, p.Seed, maxTimeFor(n),
			core.WithPartition(part))
		if err != nil {
			return out, err
		}
		all, err := measureAlgorithmA(g, x0, trials, p.Seed, maxTimeFor(n),
			core.WithPartition(part), core.WithAllCutEdges())
		if err != nil {
			return out, err
		}
		// The naive variant keeps the single-edge K on the |E12|x faster
		// shared counter, so its epochs are |E12|x shorter than the side
		// mixing time: swaps fire under-mixed and amplify the variance.
		ref, err := core.New(g, x0, core.WithPartition(part))
		if err != nil {
			return out, err
		}
		naive, err := measureAlgorithmA(g, x0, trials, p.Seed, maxTimeFor(n),
			core.WithPartition(part), core.WithAllCutEdges(), core.WithEpochTicks(ref.EpochTicks()))
		if err != nil {
			return out, err
		}
		gain := single.Tav / all.Tav
		tbl.AddRow(cutEdges, fmtCensored(single.Tav, single.Censored),
			fmtCensored(all.Tav, all.Censored), gain,
			fmtCensored(naive.Tav, naive.Censored))
		out.Metrics[fmt.Sprintf("gain@k=%d", cutEdges)] = gain
		out.Metrics[fmt.Sprintf("naive-tav@k=%d", cutEdges)] = naive.Tav
	}
	if err := render(w, p, tbl); err != nil {
		return out, err
	}
	fmt.Fprintln(w, "\nepochs are mixing-limited, not tick-limited, so the correctly scaled extension is ~neutral (gain near 1; the paper's single fixed ec is essentially optimal). The naive unscaled variant swaps before the sides re-mix and degrades sharply as |E12| grows.")
	return out, nil
}
