package dist

import (
	"errors"
	"sync"
	"testing"
	"time"

	"sparsecut/internal/leakcheck"
	"sparsecut/internal/rng"
)

// These tests pin the Transport interface's Close contract across every
// implementation: Send after Close fails with ErrClosed (directly or via
// errors.Is through decorators), Close is idempotent, a closed transport
// delivers nothing late, concurrent Close/Send never panics (mailbox
// channels are deliberately never closed — a close would race a send), and
// no implementation leaks goroutines or live timers past Close.

func testMessage(to int) Message {
	return Message{Kind: MsgLock, From: 0, To: to, Edge: 0, Seq: 1, X: 1.5, Epoch: 1}
}

// TestSendAfterCloseFailsEverywhere covers all four transports. The
// DropTransport is built with rate 0 so the decorated Send always reaches
// the closed inner layer instead of being (legitimately) absorbed as loss.
func TestSendAfterCloseFailsEverywhere(t *testing.T) {
	build := []struct {
		name string
		make func(t *testing.T) Transport
	}{
		{"chan", func(t *testing.T) Transport { return NewChanTransport(4) }},
		{"drop", func(t *testing.T) Transport {
			tr, err := NewDropTransport(NewChanTransport(4), 0, rng.New(1))
			if err != nil {
				t.Fatal(err)
			}
			return tr
		}},
		{"delay", func(t *testing.T) Transport {
			tr, err := NewDelayTransport(NewChanTransport(4), time.Millisecond, rng.New(1))
			if err != nil {
				t.Fatal(err)
			}
			return tr
		}},
		{"tcp", func(t *testing.T) Transport {
			tr, err := NewTCPTransport(2)
			if err != nil {
				t.Fatal(err)
			}
			return tr
		}},
	}
	for _, b := range build {
		b := b
		t.Run(b.name, func(t *testing.T) {
			tr := b.make(t)
			if err := tr.Send(testMessage(1)); err != nil {
				t.Fatalf("Send before Close: %v", err)
			}
			if err := tr.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if err := tr.Close(); err != nil {
				t.Fatalf("second Close not idempotent: %v", err)
			}
			if err := tr.Send(testMessage(1)); !errors.Is(err, ErrClosed) {
				t.Fatalf("Send after Close returned %v, want ErrClosed", err)
			}
		})
	}
}

// TestDelayTransportCloseCancelsDeliveries: messages in the delay layer's
// timer wheel at Close time must never reach the inner transport — Close
// semantics say "cancelling all in-flight deliveries", and a late delivery
// would resurrect protocol messages after a Cluster.Run has already
// settled its stranded proposals.
func TestDelayTransportCloseCancelsDeliveries(t *testing.T) {
	base := leakcheck.Snapshot()
	inner := NewChanTransport(64)
	tr, err := NewDelayTransport(inner, 50*time.Millisecond, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if err := tr.Send(testMessage(1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	// A near-zero delay draw may legitimately have delivered before Close
	// landed; drain those. Everything still in the timer wheel at Close
	// must be cancelled: after sleeping past the longest possible delay,
	// the inner mailbox has to stay empty.
	box, err := inner.Recv(1)
	if err != nil {
		t.Fatal(err)
	}
	for drained := false; !drained; {
		select {
		case <-box:
		default:
			drained = true
		}
	}
	time.Sleep(80 * time.Millisecond) // past every sampled delay
	select {
	case m := <-box:
		t.Fatalf("message %+v delivered after Close", m)
	default:
	}
	base.Check(t)
}

// TestDelayTransportCloseRace hammers Send from many goroutines while
// Close lands in the middle: no panic, no non-ErrClosed error, and no
// leaked timer callbacks. Run under -race this also proves the timer
// bookkeeping map is properly guarded.
func TestDelayTransportCloseRace(t *testing.T) {
	base := leakcheck.Snapshot()
	tr, err := NewDelayTransport(NewChanTransport(1024), time.Millisecond, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	const senders = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 200; i++ {
				if err := tr.Send(testMessage(1)); err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("Send during close: %v", err)
					return
				}
			}
		}()
	}
	close(start)
	time.Sleep(500 * time.Microsecond)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	base.Check(t)
}

// TestChanTransportCloseRace: same hammer on the base transport. Mailboxes
// are never closed (receivers drain them), so a Send racing Close must
// either succeed or return ErrClosed — never panic with a send on a
// closed channel.
func TestChanTransportCloseRace(t *testing.T) {
	tr := NewChanTransport(8)
	const senders = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 500; i++ {
				if err := tr.Send(testMessage(i % 4)); err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("Send during close: %v", err)
					return
				}
			}
		}()
	}
	close(start)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	// The mailbox channel stays open for draining after Close.
	box, err := tr.Recv(1)
	if err != nil {
		t.Fatal(err)
	}
	for drained := false; !drained; {
		select {
		case <-box:
		default:
			drained = true
		}
	}
}

// TestTCPTransportCloseNoLeak: the TCP transport runs an accept loop per
// address plus a serve loop per inbound connection; Close must unwind all
// of them (and the cached outbound connections) promptly.
func TestTCPTransportCloseNoLeak(t *testing.T) {
	base := leakcheck.Snapshot()
	tr, err := NewTCPTransport(3)
	if err != nil {
		t.Fatal(err)
	}
	// Exercise real connections so serve goroutines exist before Close.
	for to := 0; to < 3; to++ {
		if err := tr.Send(testMessage(to)); err != nil {
			t.Fatal(err)
		}
	}
	for to := 0; to < 3; to++ {
		box, err := tr.Recv(to)
		if err != nil {
			t.Fatal(err)
		}
		select {
		case <-box:
		case <-time.After(2 * time.Second):
			t.Fatalf("message to %d never delivered", to)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	base.Check(t)
}
