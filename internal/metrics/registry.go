package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Registry names a set of instruments and renders them into deterministic
// snapshots. Registration is idempotent per name and kind — asking twice
// for the same counter returns the same counter, so layers can instrument
// themselves without coordinating — but reusing a name across kinds is a
// programming error and panics. A nil *Registry is the disabled registry:
// it hands out nil instruments (whose methods are no-ops) and snapshots
// empty, so call sites never need their own enable flag.
//
// Func instruments (CounterFunc, GaugeFunc) are read-on-snapshot callbacks
// for state some other layer already counts (transport drop totals, rule
// tick counters): they add zero cost to the hot path because nothing is
// recorded twice.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	counterFns map[string]func() int64
	gaugeFns   map[string]func() float64
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		hists:      make(map[string]*Histogram),
		counterFns: make(map[string]func() int64),
		gaugeFns:   make(map[string]func() float64),
	}
}

// checkName panics when name is already registered under a different kind
// (r.mu must be held).
func (r *Registry) checkName(name, kind string) {
	conflict := ""
	if _, ok := r.counters[name]; ok && kind != "counter" {
		conflict = "counter"
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		conflict = "gauge"
	}
	if _, ok := r.hists[name]; ok && kind != "histogram" {
		conflict = "histogram"
	}
	if _, ok := r.counterFns[name]; ok && kind != "counterfunc" {
		conflict = "counterfunc"
	}
	if _, ok := r.gaugeFns[name]; ok && kind != "gaugefunc" {
		conflict = "gaugefunc"
	}
	if conflict != "" {
		panic(fmt.Sprintf("metrics: %q already registered as a %s, requested as a %s", name, conflict, kind))
	}
}

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "counter")
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on
// a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "gauge")
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use. Returns
// nil on a nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "histogram")
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterFunc registers fn as the named counter's snapshot-time reader
// (replacing any previous reader of the same name — re-instrumenting a
// fresh layer under an old name is the newest layer winning). No-op on a
// nil registry or a nil fn.
func (r *Registry) CounterFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "counterfunc")
	r.counterFns[name] = fn
}

// GaugeFunc registers fn as the named gauge's snapshot-time reader (same
// replacement semantics as CounterFunc). No-op on a nil registry or a nil
// fn.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "gaugefunc")
	r.gaugeFns[name] = fn
}

// Bucket is one non-empty histogram bucket: the inclusive value range
// [Lo, Hi] and its observation count.
type Bucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count int64  `json:"count"`
}

// HistogramSnapshot is a histogram's state: exact count, exact sum, and
// the non-empty buckets in ascending range order.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is an immutable point-in-time export of a registry. Maps
// marshal with sorted keys (encoding/json's contract), so the JSON
// encoding of a given snapshot is byte-deterministic: two runs recording
// identical values export identical bytes. Concurrent with writers each
// instrument is individually exact but the snapshot is not a consistent
// cut across instruments.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot exports every registered instrument. A nil registry snapshots
// empty.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters)+len(r.counterFns) > 0 {
		s.Counters = make(map[string]int64, len(r.counters)+len(r.counterFns))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
		for name, fn := range r.counterFns {
			s.Counters[name] = fn()
		}
	}
	if len(r.gauges)+len(r.gaugeFns) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges)+len(r.gaugeFns))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
		for name, fn := range r.gaugeFns {
			s.Gauges[name] = fn()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.snapshot()
		}
	}
	return s
}

// Delta returns the change from prev to s: counters and histograms
// subtract (names missing from prev count from zero), gauges keep s's
// instantaneous value. Names present only in prev are dropped — a delta
// is about what happened since, not what stopped existing.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	var d Snapshot
	if len(s.Counters) > 0 {
		d.Counters = make(map[string]int64, len(s.Counters))
		for name, v := range s.Counters {
			d.Counters[name] = v - prev.Counters[name]
		}
	}
	if len(s.Gauges) > 0 {
		d.Gauges = make(map[string]float64, len(s.Gauges))
		for name, v := range s.Gauges {
			d.Gauges[name] = v
		}
	}
	if len(s.Histograms) > 0 {
		d.Histograms = make(map[string]HistogramSnapshot, len(s.Histograms))
		for name, h := range s.Histograms {
			d.Histograms[name] = h.delta(prev.Histograms[name])
		}
	}
	return d
}

// delta subtracts prev bucketwise, dropping buckets that did not grow.
func (h HistogramSnapshot) delta(prev HistogramSnapshot) HistogramSnapshot {
	before := make(map[uint64]int64, len(prev.Buckets))
	for _, b := range prev.Buckets {
		before[b.Lo] = b.Count
	}
	d := HistogramSnapshot{Count: h.Count - prev.Count, Sum: h.Sum - prev.Sum}
	for _, b := range h.Buckets {
		if n := b.Count - before[b.Lo]; n != 0 {
			d.Buckets = append(d.Buckets, Bucket{Lo: b.Lo, Hi: b.Hi, Count: n})
		}
	}
	return d
}

// WriteJSON writes the snapshot as indented JSON plus a trailing newline.
// The byte stream is deterministic for a given snapshot (sorted map keys).
func (s Snapshot) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("metrics: encoding snapshot: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
