// Package leakcheck is a handwritten goroutine-leak detector for tests.
//
// The model is a count baseline: snapshot the goroutine count before the
// code under test starts anything, and after shutdown assert the count has
// settled back to the baseline. Counts (rather than goroutine identities)
// keep the helper dependency-free and robust to runtime-internal
// goroutines, at the cost of not naming the leaked goroutine directly —
// which the full stack dump printed on failure recovers in practice.
//
// Shutdown is asynchronous (closed connections unwind, timer callbacks
// finish), so the check polls with GC pressure for a bounded window
// instead of asserting instantaneously.
//
// Usage:
//
//	base := leakcheck.Snapshot()
//	... start and stop the system under test ...
//	base.Check(t)
//
// or, equivalently, leakcheck.Track(t) at the top of the test to run the
// check automatically from t.Cleanup.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// settleWindow is how long Check waits for goroutine counts to drain back
// to the baseline before declaring a leak.
const settleWindow = 2 * time.Second

// Base is a goroutine-count baseline captured by Snapshot.
type Base struct{ n int }

// Snapshot records the current goroutine count, after a GC cycle so
// already-dead goroutines from earlier tests are collected out of the
// baseline. Take it before constructing the system under test.
func Snapshot() Base {
	runtime.GC()
	return Base{n: runtime.NumGoroutine()}
}

// Goroutines returns the baseline count (for logging).
func (b Base) Goroutines() int { return b.n }

// Check fails t (via Errorf, so cleanup-safe) if the goroutine count has
// not returned to the baseline within the settle window, printing every
// live goroutine's stack so the leak is identifiable.
func (b Base) Check(t testing.TB) {
	t.Helper()
	b.CheckWithin(t, settleWindow)
}

// CheckWithin is Check with an explicit settle window.
func (b Base) CheckWithin(t testing.TB, window time.Duration) {
	t.Helper()
	if n, stacks, ok := settle(b.n, window); !ok {
		t.Errorf("leakcheck: %d goroutines still alive after %v (baseline %d):\n%s",
			n, window, b.n, stacks)
	}
}

// Track snapshots a baseline now and registers the check as a test
// cleanup, so the assertion runs after the test body (and any of the
// test's own Cleanups registered later, which run first).
func Track(t testing.TB) {
	base := Snapshot()
	t.Cleanup(func() { base.Check(t) })
}

// settle polls until the goroutine count is at most base (ok=true) or the
// window expires, in which case it returns the excess count and a full
// stack dump (ok=false). GC runs each iteration: a goroutine that has
// returned but whose g struct is cached can otherwise inflate the count.
func settle(base int, window time.Duration) (n int, stacks []byte, ok bool) {
	deadline := time.Now().Add(window)
	for {
		runtime.GC()
		n = runtime.NumGoroutine()
		if n <= base {
			return n, nil, true
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			return n, buf[:runtime.Stack(buf, true)], false
		}
		time.Sleep(10 * time.Millisecond)
	}
}
