// Command experiments runs entries of the repository's evaluation suite
// (experiments E1–E14, DESIGN.md §4) through the reproduction registry
// (internal/report) and prints their Markdown sections — the interactive
// counterpart of cmd/repro, which renders the whole suite into
// REPRODUCTION.md with a summary and machine-readable JSON.
//
// Usage:
//
//	experiments -list
//	experiments -run E4 [-quick] [-seed 1]
//	experiments -all  [-quick] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"sparsecut/internal/report"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments and exit")
		run   = flag.String("run", "", "run a single experiment by ID (e.g. E4)")
		all   = flag.Bool("all", false, "run the entire suite E1..E14")
		quick = flag.Bool("quick", false, "reduced sizes (CI-grade); full mode regenerates the REPRODUCTION.md numbers")
		seed  = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	params := report.Params{Quick: *quick, Seed: *seed}
	switch {
	case *list:
		for _, e := range report.Entries() {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
	case *all:
		doc, err := report.Generate(params)
		if err != nil {
			fatal(err)
		}
		if err := doc.WriteMarkdown(os.Stdout); err != nil {
			fatal(err)
		}
	case *run != "":
		e, ok := report.ByID(*run)
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (use -list)", *run))
		}
		sec, err := e.RunEntry(params)
		if err != nil {
			fatal(err)
		}
		if err := sec.WriteMarkdown(os.Stdout); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
