package spectral

import (
	"errors"
	"math"
	"testing"

	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
)

func TestVectorOps(t *testing.T) {
	x := []float64{3, 4}
	if Dot(x, x) != 25 {
		t.Error("Dot")
	}
	if Norm2(x) != 5 {
		t.Error("Norm2")
	}
	y := []float64{1, 1}
	Axpy(2, x, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("Axpy -> %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3.5 || y[1] != 4.5 {
		t.Errorf("Scale -> %v", y)
	}
}

func TestNormalize(t *testing.T) {
	x := []float64{0, 3, 4}
	n := Normalize(x)
	if n != 5 {
		t.Errorf("returned norm %v", n)
	}
	if math.Abs(Norm2(x)-1) > 1e-15 {
		t.Error("not unit norm")
	}
	z := []float64{0, 0}
	if Normalize(z) != 0 {
		t.Error("zero vector norm")
	}
}

func TestCenterMean(t *testing.T) {
	x := []float64{1, 2, 3, 6}
	m := CenterMean(x)
	if m != 3 {
		t.Errorf("mean %v", m)
	}
	if math.Abs(Mean(x)) > 1e-15 {
		t.Error("not centered")
	}
}

func TestVariance(t *testing.T) {
	if v := Variance([]float64{1, 1, 1}); v != 0 {
		t.Errorf("constant variance %v", v)
	}
	if v := Variance([]float64{1, -1}); v != 1 {
		t.Errorf("variance %v, want 1", v)
	}
	if v := Variance(nil); v != 0 {
		t.Errorf("empty variance %v", v)
	}
}

func TestLaplacianApply(t *testing.T) {
	g := graph.Path(3) // L = [[1,-1,0],[-1,2,-1],[0,-1,1]]
	l := Laplacian{G: g}
	src := []float64{1, 2, 4}
	dst := make([]float64, 3)
	l.Apply(dst, src)
	want := []float64{-1, -1, 2}
	for i := range want {
		if math.Abs(dst[i]-want[i]) > 1e-15 {
			t.Fatalf("L*x = %v, want %v", dst, want)
		}
	}
}

func TestLaplacianAnnihilatesConstants(t *testing.T) {
	g := graph.Complete(6)
	l := Laplacian{G: g}
	src := []float64{2, 2, 2, 2, 2, 2}
	dst := make([]float64, 6)
	l.Apply(dst, src)
	for _, v := range dst {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("L*1 != 0: %v", dst)
		}
	}
}

func TestAdjacencyApply(t *testing.T) {
	g := graph.Cycle(4)
	a := Adjacency{G: g}
	src := []float64{1, 2, 3, 4}
	dst := make([]float64, 4)
	a.Apply(dst, src)
	// node 0 neighbours 1 and 3 -> 6; node 1 neighbours 0,2 -> 4; etc.
	want := []float64{6, 4, 6, 4}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("A*x = %v, want %v", dst, want)
		}
	}
}

func TestShifted(t *testing.T) {
	g := graph.Path(2)
	s := Shifted{C: 3, Op: Laplacian{G: g}}
	src := []float64{1, 0}
	dst := make([]float64, 2)
	s.Apply(dst, src)
	// L*src = [1,-1]; 3*src - L*src = [2,1]
	if dst[0] != 2 || dst[1] != 1 {
		t.Fatalf("shifted = %v", dst)
	}
	if s.Dim() != 2 {
		t.Error("Dim")
	}
}

func TestLambda2KnownSpectra(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want float64
	}{
		{"K_8", graph.Complete(8), 8},
		{"K_20", graph.Complete(20), 20},
		{"P_10", graph.Path(10), 4 * sq(math.Sin(math.Pi/20))},
		{"C_12", graph.Cycle(12), 2 * (1 - math.Cos(2*math.Pi/12))},
		{"star_9", graph.Star(9), 1},
		{"Q_4", graph.Hypercube(4), 2},
		{"K_3_3", graph.CompleteBipartite(3, 3), 3},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, vec, err := Lambda2(c.g, Options{})
			if err != nil {
				t.Fatalf("Lambda2: %v (got %v)", err, got)
			}
			if math.Abs(got-c.want) > 1e-5*math.Max(1, c.want) {
				t.Errorf("lambda2 = %v, want %v", got, c.want)
			}
			// The Fiedler vector must be (near) orthogonal to ones and unit norm.
			if math.Abs(Mean(vec))*float64(len(vec)) > 1e-6 {
				t.Errorf("Fiedler vector not centered: mean*n = %v", Mean(vec)*float64(len(vec)))
			}
			if math.Abs(Norm2(vec)-1) > 1e-8 {
				t.Errorf("Fiedler vector norm %v", Norm2(vec))
			}
		})
	}
}

func sq(x float64) float64 { return x * x }

func TestLambdaMaxComplete(t *testing.T) {
	// K_n Laplacian eigenvalues: 0 and n (multiplicity n-1).
	got, err := LambdaMax(graph.Complete(10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-10) > 1e-6 {
		t.Errorf("lambda_max = %v, want 10", got)
	}
}

func TestLambda2DumbbellIsSmall(t *testing.T) {
	// A dumbbell has a sparse cut, so lambda2 must be far below the clique value.
	g, _, err := graph.Dumbbell(16, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	lam2, _, err := Lambda2(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lam2 <= 0 || lam2 > 0.5 {
		t.Errorf("dumbbell lambda2 = %v, want small positive", lam2)
	}
}

func TestFiedlerVectorSeparatesDumbbell(t *testing.T) {
	g, part, err := graph.Dumbbell(12, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	v, err := FiedlerVector(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Signs of the Fiedler vector should align with the planted sides.
	agree, disagree := 0, 0
	for u := 0; u < g.NumNodes(); u++ {
		pos := v[u] > 0
		side1 := part.SideOf(graph.NodeID(u)) == graph.Side1
		if pos == side1 {
			agree++
		} else {
			disagree++
		}
	}
	if agree != g.NumNodes() && disagree != g.NumNodes() {
		t.Errorf("Fiedler signs split %d/%d, want clean separation", agree, disagree)
	}
}

func TestLambda2Disconnected(t *testing.T) {
	// Two disjoint edges: lambda2 restricted to 1-perp is 0.
	g := graph.NewBuilder(4).AddEdge(0, 1).AddEdge(2, 3).MustBuild()
	lam2, _, err := Lambda2(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lam2) > 1e-8 {
		t.Errorf("disconnected lambda2 = %v, want 0", lam2)
	}
}

func TestLambda2TooSmall(t *testing.T) {
	g := graph.NewBuilder(1).MustBuild()
	if _, _, err := Lambda2(g, Options{}); err == nil {
		t.Error("n=1 not rejected")
	}
}

func TestLambda2Edgeless(t *testing.T) {
	g := graph.NewBuilder(3).MustBuild()
	lam2, v, err := Lambda2(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lam2 != 0 {
		t.Errorf("edgeless lambda2 = %v", lam2)
	}
	if len(v) != 3 {
		t.Error("missing witness vector")
	}
}

func TestPowerIterationErrors(t *testing.T) {
	g := graph.Path(3)
	if _, _, err := PowerIteration(Laplacian{G: g}, [][]float64{{1, 0}}, Options{}); err == nil {
		t.Error("bad deflation dim not rejected")
	}
}

func TestPowerIterationNoConvergence(t *testing.T) {
	g := graph.Path(64)
	_, _, err := PowerIteration(Laplacian{G: g}, nil, Options{MaxIter: 2, Tol: 1e-15})
	if !errors.Is(err, ErrNoConvergence) {
		t.Errorf("err = %v, want ErrNoConvergence", err)
	}
}

func TestTvanBoundComplete(t *testing.T) {
	tv, err := TvanBound(graph.Complete(16), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tv-6.0/16) > 1e-6 {
		t.Errorf("TvanBound(K_16) = %v, want %v", tv, 6.0/16)
	}
}

func TestTvanBoundShrinksWithCliqueSize(t *testing.T) {
	a, err := TvanBound(graph.Complete(8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := TvanBound(graph.Complete(32), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b >= a {
		t.Errorf("TvanBound should shrink with clique size: %v -> %v", a, b)
	}
}

func TestTvanBoundDisconnectedIsInf(t *testing.T) {
	g := graph.NewBuilder(4).AddEdge(0, 1).AddEdge(2, 3).MustBuild()
	tv, err := TvanBound(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(tv, 1) {
		t.Errorf("disconnected TvanBound = %v, want +Inf", tv)
	}
}

func TestLambda2RandomRegularHasGap(t *testing.T) {
	r := rng.New(5)
	g, err := graph.RandomRegular(r, 64, 6, 200)
	if err != nil {
		t.Fatal(err)
	}
	lam2, _, err := Lambda2(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Random 6-regular graphs are expanders: lambda2 bounded away from 0.
	if lam2 < 0.5 {
		t.Errorf("random regular lambda2 = %v, expected expander gap", lam2)
	}
}

// Property: on every connected test graph, 0 < lambda2 <= lambda_max <= 2*maxdeg.
func TestSpectralOrderingProperty(t *testing.T) {
	r := rng.New(77)
	graphs := []*graph.Graph{
		graph.Complete(9), graph.Cycle(11), graph.Path(13), graph.Star(8),
		graph.Grid(3, 4), graph.Hypercube(3), graph.Lollipop(5, 3),
	}
	if g, err := graph.GnPConnected(r, 24, 0.3, 50); err == nil {
		graphs = append(graphs, g)
	}
	for _, g := range graphs {
		lam2, _, err := Lambda2(g, Options{})
		if err != nil {
			t.Fatalf("%s: %v", g, err)
		}
		lamMax, err := LambdaMax(g, Options{})
		if err != nil {
			t.Fatalf("%s: %v", g, err)
		}
		if lam2 <= 0 {
			t.Errorf("%s: lambda2 = %v, want > 0 for connected graph", g, lam2)
		}
		if lam2 > lamMax+1e-9 {
			t.Errorf("%s: lambda2 %v > lambdaMax %v", g, lam2, lamMax)
		}
		if lamMax > 2*float64(g.MaxDegree())+1e-9 {
			t.Errorf("%s: lambdaMax %v exceeds 2*maxdeg %d", g, lamMax, 2*g.MaxDegree())
		}
	}
}
