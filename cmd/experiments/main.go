// Command experiments regenerates the repository's evaluation suite
// (experiments E1–E14, DESIGN.md §4) — every table and figure-style series
// reproduced from the paper.
//
// Usage:
//
//	experiments -list
//	experiments -run E4 [-quick] [-markdown] [-seed 1]
//	experiments -all  [-quick] [-markdown] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"sparsecut/internal/experiments"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments and exit")
		run      = flag.String("run", "", "run a single experiment by ID (e.g. E4)")
		all      = flag.Bool("all", false, "run the entire suite E1..E14")
		quick    = flag.Bool("quick", false, "reduced sizes (CI-grade); full mode regenerates EXPERIMENTS.md numbers")
		markdown = flag.Bool("markdown", false, "render tables as Markdown")
		seed     = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	params := experiments.Params{Quick: *quick, Seed: *seed, Markdown: *markdown}
	switch {
	case *list:
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
	case *all:
		if _, err := experiments.RunAll(os.Stdout, params); err != nil {
			fatal(err)
		}
	case *run != "":
		e, ok := experiments.ByID(*run)
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (use -list)", *run))
		}
		fmt.Printf("===== %s: %s =====\nclaim: %s\n\n", e.ID, e.Title, e.Claim)
		if _, err := e.Run(os.Stdout, params); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
