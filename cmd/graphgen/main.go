// Command graphgen generates any graph family in the scenario registry,
// reports its sparse-cut statistics (conductance, λ2, Theorem 1 bound)
// and optionally exports it as an edge list or Graphviz DOT.
//
// Usage:
//
//	graphgen -type dumbbell -n 64 -cut 1
//	graphgen -type sensor   -n 120 -cut 2 -dot > field.dot
//	graphgen -type hierdumbbell -n 64 -innercut 2 -edgelist > g.txt
//	graphgen -type torus    -rows 8 -cols 8
//	graphgen -families
package main

import (
	"flag"
	"fmt"
	"os"

	"sparsecut"
	"sparsecut/internal/scenario"
)

func main() {
	var (
		kind     = flag.String("type", "dumbbell", "graph family (see -families)")
		n        = flag.Int("n", 64, "total number of nodes")
		cutEdges = flag.Int("cut", 0, "cut edges / doors / bridges (0 = family default)")
		seed     = flag.Uint64("seed", 1, "random seed")
		dot      = flag.Bool("dot", false, "write Graphviz DOT to stdout")
		edgelist = flag.Bool("edgelist", false, "write edge list to stdout")
		list     = flag.Bool("families", false, "list the graph-family registry and exit")

		n1       = flag.Int("n1", 0, "side-1 size (two-sided families)")
		n2       = flag.Int("n2", 0, "side-2 size (two-sided families)")
		innerCut = flag.Int("innercut", 0, "hierdumbbell inner cut width")
		rows     = flag.Int("rows", 0, "grid/torus rows")
		cols     = flag.Int("cols", 0, "grid/torus cols")
		dim      = flag.Int("dim", 0, "hypercube dimension")
		levels   = flag.Int("levels", 0, "binary-tree levels")
		tail     = flag.Int("tail", 0, "lollipop tail length")
		blocks   = flag.Int("blocks", 0, "ring-of-cliques block count")
		degree   = flag.Int("degree", 0, "random-regular degree")
		p        = flag.Float64("p", 0, "G(n,p) edge probability")
		pIn      = flag.Float64("pin", 0, "planted within-side density")
		pOut     = flag.Float64("pout", 0, "planted cross-side density")
		radius   = flag.Float64("radius", 0, "RGG/sensor radius multiplier")
	)
	flag.Parse()

	if *list {
		fmt.Print(scenario.Usage())
		return
	}

	spec := scenario.Spec{
		Graph: scenario.GraphSpec{
			Family: *kind, N: *n, N1: *n1, N2: *n2, Cut: *cutEdges,
			InnerCut: *innerCut, Rows: *rows, Cols: *cols, Dim: *dim,
			Levels: *levels, Tail: *tail, Blocks: *blocks, Degree: *degree,
			P: *p, PIn: *pIn, POut: *pOut, Radius: *radius,
		},
		Init: "spike", // skip worst-case cut detection: only the graph is needed
		Seed: *seed,
	}
	res, err := spec.Resolve()
	if err != nil {
		fatal(err)
	}
	g, part := res.Graph, res.Partition

	switch {
	case *dot:
		if err := sparsecut.WriteDOT(os.Stdout, g, part); err != nil {
			fatal(err)
		}
	case *edgelist:
		if err := sparsecut.WriteGraph(os.Stdout, g); err != nil {
			fatal(err)
		}
	default:
		lam2, err := sparsecut.AlgebraicConnectivity(g)
		if err != nil {
			fatal(err)
		}
		detected, err := sparsecut.FindSparseCut(g)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("graph:               %s\n", g)
		if part != nil {
			fmt.Printf("planted partition:   %s\n", part)
		} else {
			fmt.Printf("planted partition:   (none)\n")
		}
		fmt.Printf("detected partition:  %s\n", detected)
		fmt.Printf("lambda2:             %.6g (Tvan bound 6/lambda2 = %.4g)\n", lam2, 6/lam2)
		if part != nil {
			fmt.Printf("theorem 1 bound:     min(n1,n2)/|E12| = %.4g\n", part.TheoremOneBound())
		} else {
			fmt.Printf("theorem 1 bound:     min(n1,n2)/|E12| = %.4g (detected cut)\n", detected.TheoremOneBound())
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
