package experiments

// E1–E4: the paper's headline scaling claims on the dumbbell graph
// (Theorem 1, Theorem 2, and the G' example of Section 1).

import (
	"fmt"
	"io"

	"sparsecut/internal/core"
	"sparsecut/internal/stats"
	"sparsecut/internal/table"
)

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "convex lower bound — Tav scaling in n on the dumbbell",
		Claim: "Theorem 1: any algorithm in C has Tav = Omega(min(|V1|,|V2|)/|E12|); on the symmetric dumbbell with one cut edge this is Omega(n)",
		Run:   runE1,
	})
	register(Experiment{
		ID:    "E2",
		Title: "convex lower bound — Tav scaling in |E12|",
		Claim: "Theorem 1: Tav = Omega(n1/|E12|) — doubling the cut halves the bound",
		Run:   runE2,
	})
	register(Experiment{
		ID:    "E3",
		Title: "Algorithm A — Tav scaling in n on the dumbbell",
		Claim: "Theorem 2 + example: Tav(A) = O(log n (Tvan(G1)+Tvan(G2))) = O(polylog n) on the dumbbell",
		Run:   runE3,
	})
	register(Experiment{
		ID:    "E4",
		Title: "headline separation — Algorithm A vs the best convex baseline",
		Claim: "Section 1 example G': convex Omega(n) vs A O(log n) — an exponential separation in n",
		Run:   runE4,
	})
}

func e1Sizes(p Params) []int   { return pick(p, []int{16, 32, 64}, []int{32, 64, 128, 256}) }
func e1Trials(p Params) int    { return pick(p, 3, 7) }
func maxTimeFor(n int) float64 { return 60 * float64(n) }

func runE1(w io.Writer, p Params) (Outcome, error) {
	p = p.withDefaults()
	out := newOutcome()
	tbl := table.New("E1: convex averaging time on symmetric dumbbell, 1 cut edge",
		"n", "algorithm", "Tav", "bound n1/|E12|", "Tav/bound", "censored")

	var ns, tavs []float64
	for _, n := range e1Sizes(p) {
		g, part, x0, err := dumbbellCase(n, 1)
		if err != nil {
			return out, err
		}
		bound := part.TheoremOneBound()
		for _, alpha := range []float64{0.5, 0.75} {
			res, err := measureConvex(g, x0, alpha, e1Trials(p), p.Seed, maxTimeFor(n))
			if err != nil {
				return out, err
			}
			name := "vanilla"
			if alpha != 0.5 {
				name = fmt.Sprintf("convex(%.2g)", alpha)
			}
			tbl.AddRow(n, name, res.Tav, bound, res.Tav/bound, res.Censored)
			if alpha == 0.5 {
				ns = append(ns, float64(n))
				tavs = append(tavs, res.Tav)
				out.Metrics[fmt.Sprintf("tav-vanilla@%d", n)] = res.Tav
				out.Metrics[fmt.Sprintf("ratio-to-bound@%d", n)] = res.Tav / bound
			}
		}
	}
	fit, err := stats.LogLogFit(ns, tavs)
	if err != nil {
		return out, err
	}
	out.Metrics["slope"] = fit.Slope
	out.Metrics["r2"] = fit.R2
	if err := render(w, p, tbl); err != nil {
		return out, err
	}
	fmt.Fprintf(w, "\nlog-log fit: Tav ~ n^%.3f (R2=%.3f); Theorem 1 predicts slope >= 1\n", fit.Slope, fit.R2)
	return out, nil
}

func runE2(w io.Writer, p Params) (Outcome, error) {
	p = p.withDefaults()
	out := newOutcome()
	n := pick(p, 48, 128)
	cuts := pick(p, []int{1, 2, 4}, []int{1, 2, 4, 8, 16})
	tbl := table.New(fmt.Sprintf("E2: vanilla averaging time vs cut size, dumbbell n=%d", n),
		"|E12|", "Tav", "bound n1/|E12|", "Tav/bound", "censored")

	var ks, tavs []float64
	for _, k := range cuts {
		g, part, x0, err := dumbbellCase(n, k)
		if err != nil {
			return out, err
		}
		res, err := measureConvex(g, x0, 0.5, e1Trials(p), p.Seed, maxTimeFor(n))
		if err != nil {
			return out, err
		}
		bound := part.TheoremOneBound()
		tbl.AddRow(k, res.Tav, bound, res.Tav/bound, res.Censored)
		ks = append(ks, float64(k))
		tavs = append(tavs, res.Tav)
		out.Metrics[fmt.Sprintf("tav@k=%d", k)] = res.Tav
	}
	fit, err := stats.LogLogFit(ks, tavs)
	if err != nil {
		return out, err
	}
	out.Metrics["slope"] = fit.Slope
	out.Metrics["r2"] = fit.R2
	if err := render(w, p, tbl); err != nil {
		return out, err
	}
	fmt.Fprintf(w, "\nlog-log fit: Tav ~ |E12|^%.3f (R2=%.3f); Theorem 1 predicts slope ~ -1\n", fit.Slope, fit.R2)
	return out, nil
}

func runE3(w io.Writer, p Params) (Outcome, error) {
	p = p.withDefaults()
	out := newOutcome()
	sizes := pick(p, []int{16, 32, 64}, []int{32, 64, 128, 256, 512})
	tbl := table.New("E3: Algorithm A averaging time on symmetric dumbbell, 1 cut edge",
		"n", "Tav(A)", "K (epoch ticks)", "weight", "censored")

	var ns, tavs []float64
	for _, n := range sizes {
		g, part, x0, err := dumbbellCase(n, 1)
		if err != nil {
			return out, err
		}
		res, err := measureAlgorithmA(g, x0, e1Trials(p), p.Seed, maxTimeFor(n),
			core.WithPartition(part))
		if err != nil {
			return out, err
		}
		// Rebuild once to report the configuration.
		alg, err := core.New(g, x0, core.WithPartition(part))
		if err != nil {
			return out, err
		}
		tbl.AddRow(n, res.Tav, alg.EpochTicks(), alg.Weight(), res.Censored)
		ns = append(ns, float64(n))
		tavs = append(tavs, res.Tav)
		out.Metrics[fmt.Sprintf("tav-A@%d", n)] = res.Tav
	}
	fit, err := stats.LogLogFit(ns, tavs)
	if err != nil {
		return out, err
	}
	out.Metrics["slope"] = fit.Slope
	if err := render(w, p, tbl); err != nil {
		return out, err
	}
	fmt.Fprintf(w, "\nlog-log fit: Tav(A) ~ n^%.3f; Theorem 2 predicts polylog growth (slope << 1)\n", fit.Slope)
	return out, nil
}

func runE4(w io.Writer, p Params) (Outcome, error) {
	p = p.withDefaults()
	out := newOutcome()
	// The separation needs n1/|E12| >> ln n * (Tvan1+Tvan2): below n ~ 32
	// the regimes have not separated yet, so quick mode starts there.
	sizes := pick(p, []int{32, 64}, []int{32, 64, 128, 256})
	tbl := table.New("E4: headline separation on the symmetric dumbbell (G' of Section 1)",
		"n", "Tav(vanilla)", "Tav(A)", "speedup")
	var ns, speedups []float64
	for _, n := range sizes {
		g, part, x0, err := dumbbellCase(n, 1)
		if err != nil {
			return out, err
		}
		van, err := measureConvex(g, x0, 0.5, e1Trials(p), p.Seed, maxTimeFor(n))
		if err != nil {
			return out, err
		}
		algA, err := measureAlgorithmA(g, x0, e1Trials(p), p.Seed, maxTimeFor(n),
			core.WithPartition(part))
		if err != nil {
			return out, err
		}
		speedup := van.Tav / algA.Tav
		tbl.AddRow(n, fmtCensored(van.Tav, van.Censored), fmtCensored(algA.Tav, algA.Censored), speedup)
		ns = append(ns, float64(n))
		speedups = append(speedups, speedup)
		out.Metrics[fmt.Sprintf("speedup@%d", n)] = speedup
	}
	if err := render(w, p, tbl); err != nil {
		return out, err
	}
	if len(speedups) >= 2 {
		out.Metrics["speedup-growth"] = speedups[len(speedups)-1] / speedups[0]
		fmt.Fprintf(w, "\nspeedup grows %0.2fx from n=%v to n=%v — the separation widens with n as the paper claims\n",
			out.Metrics["speedup-growth"], ns[0], ns[len(ns)-1])
	}
	return out, nil
}

// render writes the table in the format requested by Params.
func render(w io.Writer, p Params, tbl *table.Table) error {
	if p.Markdown {
		return tbl.RenderMarkdown(w)
	}
	return tbl.Render(w)
}
