package table

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderPlain(t *testing.T) {
	tbl := New("E1: scaling", "n", "Tav", "bound")
	tbl.AddRow(32, 12.5, 16.0)
	tbl.AddRow(64, 25.1234567, 32.0)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "E1: scaling") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "Tav") {
		t.Error("header missing")
	}
	if !strings.Contains(out, "25.12") {
		t.Errorf("float not formatted to 4 significant digits:\n%s", out)
	}
	if !strings.Contains(out, "---") {
		t.Error("separator missing")
	}
	if tbl.NumRows() != 2 {
		t.Errorf("NumRows = %d", tbl.NumRows())
	}
}

func TestRenderAlignsColumns(t *testing.T) {
	tbl := New("", "a", "bbbbbb")
	tbl.AddRow("xxxxxxxx", 1)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines", len(lines))
	}
	// Column 2 should start at the same offset in header and data rows.
	hIdx := strings.Index(lines[0], "bbbbbb")
	dIdx := strings.Index(lines[2], "1")
	if hIdx != dIdx {
		t.Errorf("column 2 misaligned: header at %d, data at %d\n%s", hIdx, dIdx, buf.String())
	}
}

func TestRenderShortAndLongRows(t *testing.T) {
	tbl := New("", "a", "b")
	tbl.AddRow(1)       // short
	tbl.AddRow(1, 2, 3) // long
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "3") {
		t.Error("extra column dropped")
	}
}

func TestRenderMarkdown(t *testing.T) {
	tbl := New("Results", "x", "y")
	tbl.AddRow(1, 2.0)
	var buf bytes.Buffer
	if err := tbl.RenderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "### Results") {
		t.Error("markdown title missing")
	}
	if !strings.Contains(out, "| x | y |") {
		t.Errorf("markdown header missing:\n%s", out)
	}
	if !strings.Contains(out, "| --- | --- |") {
		t.Error("markdown separator missing")
	}
	if !strings.Contains(out, "| 1 | 2 |") {
		t.Errorf("markdown row missing:\n%s", out)
	}
}

func TestFloat32Formatting(t *testing.T) {
	tbl := New("", "v")
	tbl.AddRow(float32(1.23456789))
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "1.235") {
		t.Errorf("float32 not formatted: %s", buf.String())
	}
}
