// Command bench runs the repository's performance suite — micro-benchmarks
// of the simulation hot paths plus the E1–E15 experiments — and emits a
// machine-readable JSON report (ns/event, events/sec, allocations,
// per-experiment wall time). It exists so every PR can record a comparable
// perf baseline: see BENCH_PR2.json for the first one.
//
// Usage:
//
//	go run ./cmd/bench -quick -out bench.json
//
// -quick runs the experiments in their CI-sized quick mode; without it the
// full-size experiment tables are timed (minutes, not seconds).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"sparsecut/internal/avgtime"
	"sparsecut/internal/dist"
	"sparsecut/internal/gossip"
	"sparsecut/internal/graph"
	"sparsecut/internal/report"
	"sparsecut/internal/rng"
	"sparsecut/internal/sim"
)

// Report is the emitted JSON document.
type Report struct {
	Schema      string       `json:"schema"`
	GeneratedAt string       `json:"generated_at"`
	GoVersion   string       `json:"go_version"`
	GOOS        string       `json:"goos"`
	GOARCH      string       `json:"goarch"`
	NumCPU      int          `json:"num_cpu"`
	GOMAXPROCS  int          `json:"gomaxprocs"`
	Quick       bool         `json:"quick"`
	Micro       []MicroBench `json:"micro"`
	Experiments []ExpTiming  `json:"experiments"`
}

// MicroBench is one testing.Benchmark result, normalised per event.
type MicroBench struct {
	Name         string  `json:"name"`
	NsPerEvent   float64 `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
	BytesPerOp   int64   `json:"bytes_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	// BytesPerNode is the retained heap of the whole run state divided by
	// the node count — the memory-footprint axis of the sharded rows,
	// gated alongside ns/event by -baseline.
	BytesPerNode float64 `json:"bytes_per_node,omitempty"`
}

// ExpTiming is one experiment's wall-clock cost.
type ExpTiming struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
	Metrics int     `json:"metrics"`
}

func mustDumbbell() (*graph.Graph, *graph.Partition, []float64) {
	g, part, err := graph.Dumbbell(64, 64, 1)
	if err != nil {
		panic(err)
	}
	return g, part, gossip.CutIndicator(part)
}

func benchResult(name string, fn func(b *testing.B)) MicroBench {
	res := testing.Benchmark(fn)
	ns := float64(res.T.Nanoseconds()) / float64(res.N)
	return MicroBench{
		Name:         name,
		NsPerEvent:   ns,
		EventsPerSec: 1e9 / ns,
		BytesPerOp:   res.AllocedBytesPerOp(),
		AllocsPerOp:  res.AllocsPerOp(),
	}
}

func microBenches() []MicroBench {
	newEngine := func(b *testing.B, alg gossip.Algorithm, opts ...sim.Option) *sim.Engine {
		g, _, _ := mustDumbbell()
		eng, err := sim.NewEngine(g, alg, opts...)
		if err != nil {
			b.Fatal(err)
		}
		return eng
	}
	vanilla := func(b *testing.B) gossip.Algorithm {
		g, _, x0 := mustDumbbell()
		alg, err := gossip.NewVanilla(g, x0)
		if err != nil {
			b.Fatal(err)
		}
		return alg
	}
	return []MicroBench{
		benchResult("simulator/vanilla-fused", func(b *testing.B) {
			b.ReportAllocs()
			eng := newEngine(b, vanilla(b))
			b.ResetTimer()
			eng.RunEvents(int64(b.N))
		}),
		benchResult("simulator/vanilla-legacy", func(b *testing.B) {
			b.ReportAllocs()
			eng := newEngine(b, vanilla(b))
			b.ResetTimer()
			eng.Run(sim.MaxEvents(int64(b.N)))
		}),
		benchResult("simulator/vanilla-tracked", func(b *testing.B) {
			b.ReportAllocs()
			g, _, x0 := mustDumbbell()
			alg, err := gossip.NewVanilla(g, x0)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := sim.NewEngine(g, alg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			if _, ok := eng.RunTracked(sim.Tracked{StopLevel: -1, MaxTime: float64(b.N) / float64(g.NumEdges())}); !ok {
				b.Fatal("tracked fast path unavailable")
			}
		}),
		benchResult("simulator/per-edge-heap", func(b *testing.B) {
			b.ReportAllocs()
			eng := newEngine(b, vanilla(b), sim.WithScheduler(sim.PerEdgeClocks))
			b.ResetTimer()
			eng.RunEvents(int64(b.N))
		}),
		benchResult("simulator/heterogeneous-alias", func(b *testing.B) {
			b.ReportAllocs()
			g, _, x0 := mustDumbbell()
			alg, err := gossip.NewVanilla(g, x0)
			if err != nil {
				b.Fatal(err)
			}
			r := rng.New(1)
			rates := make([]float64, g.NumEdges())
			for i := range rates {
				rates[i] = 0.5 + 1.5*r.Float64()
			}
			eng, err := sim.NewEngine(g, alg, sim.WithRates(rates))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			eng.RunEvents(int64(b.N))
		}),
		benchResult("simulator/vanilla-batch-bridged", func(b *testing.B) {
			// The replica-batched untracked hot path: SoA rows, one
			// uniform pick per event, one Gamma bridge draw per chunk.
			b.ReportAllocs()
			const replicas = 16
			g, _, x0 := mustDumbbell()
			ens, err := gossip.NewVanillaEnsemble(g, x0, replicas)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := sim.NewBatchEngine(g, ens, batchStreams(replicas))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			// Distribute b.N events across the replicas; the per-replica
			// rounding is at most replicas-1 events of b.N.
			eng.RunEvents((int64(b.N) + replicas - 1) / replicas)
		}),
		benchResult("simulator/vanilla-batch-tracked", func(b *testing.B) {
			// The replica-batched averaging-time loop: per-event moments
			// and exceedance compares, chunk-bridged clocks.
			b.ReportAllocs()
			const replicas = 16
			g, _, x0 := mustDumbbell()
			ens, err := gossip.NewVanillaEnsemble(g, x0, replicas)
			if err != nil {
				b.Fatal(err)
			}
			eng, err := sim.NewBatchEngine(g, ens, batchStreams(replicas))
			if err != nil {
				b.Fatal(err)
			}
			var0 := ens.ReplicaVariance(0)
			b.ResetTimer()
			eng.RunTracked(sim.Tracked{
				ExceedLevel: var0 * math.Exp(-2),
				StopLevel:   -1, // never stop on variance: run to the horizon
				MaxTime:     float64(b.N) / float64(replicas*g.NumEdges()),
			})
		}),
		benchResult("rng/gamma-int-256", func(b *testing.B) {
			r := rng.New(1)
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += r.GammaInt(256)
			}
			_ = sink
		}),
		benchResult("rng/gamma-int-mixed-shapes", func(b *testing.B) {
			// Alternating shapes defeat the per-shape d/c cache on every
			// draw — the worst case the repeated-shape rows amortise away.
			r := rng.New(1)
			var sink float64
			for i := 0; i < b.N; i++ {
				if i&1 == 0 {
					sink += r.GammaInt(64)
				} else {
					sink += r.GammaInt(256)
				}
			}
			_ = sink
		}),
		benchResult("rng/exp-unit", func(b *testing.B) {
			r := rng.New(1)
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += r.ExpUnit()
			}
			_ = sink
		}),
		benchResult("rng/fill-exp-batch", func(b *testing.B) {
			r := rng.New(1)
			dst := make([]float64, 1024)
			b.ResetTimer()
			for i := 0; i < b.N; i += len(dst) {
				r.FillExp(dst, 1)
			}
		}),
	}
}

// shardedBenches times the sharded PDES engine on graphs the materialised
// engines cannot hold. The headline row is the 10^6-node dumbbell —
// 2.5x10^11 edges, never materialised: ns_per_event covers the windowed
// tile hot path, and bytes_per_node is the retained heap of the entire
// run state (implicit graph + flat state + engine), measured with
// runtime.MemStats across construction.
func shardedBenches() ([]MicroBench, error) {
	const (
		side    = 500_000
		cut     = 8
		workers = 2 // the dumbbell tiles in 2; more workers would idle
	)
	build := func() (graph.Implicit, *sim.ShardEngine, error) {
		ig, err := graph.ImplicitDumbbell(side, side, cut)
		if err != nil {
			return nil, nil, err
		}
		til := ig.Tiling()
		x0 := gossip.CutIndicatorPrefix(ig.NumNodes(), ig.SplitPoint())
		st, err := gossip.NewFlatState(x0, til.Bounds())
		if err != nil {
			return nil, nil, err
		}
		eng := sim.NewShardEngine(til, st, rng.New(1), sim.ShardConfig{Workers: workers})
		return ig, eng, nil
	}

	// Retained footprint: GC-to-GC HeapAlloc delta around construction.
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	ig, eng, err := build()
	if err != nil {
		return nil, err
	}
	runtime.GC()
	runtime.ReadMemStats(&m1)
	var bytesPerNode float64
	if m1.HeapAlloc > m0.HeapAlloc {
		bytesPerNode = float64(m1.HeapAlloc-m0.HeapAlloc) / float64(ig.NumNodes())
	}
	runtime.KeepAlive(eng)

	rate := float64(ig.NumEdges())
	row := benchResult("sharded/dumbbell-1m", func(b *testing.B) {
		b.ReportAllocs()
		_, eng, err := build()
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		eng.RunUntil(float64(b.N) / rate)
	})
	row.BytesPerNode = bytesPerNode
	return []MicroBench{row}, nil
}

// distShardBenches times the sharded actor runtime (internal/dist) end to
// end on a 10^5-node torus dumbbell: construction footprint plus a
// saturated run. Timing is manual rather than testing.Benchmark — the
// runtime paces itself in wall-clock time, so b.N calibration would
// re-run a multi-hundred-millisecond wall-paced horizon dozens of times.
// The short TimeScale makes the offered load (2 initiations per node per
// unit across 10^5 nodes) exceed what the shard loops can serve, so
// ns_per_event measures the protocol hot path, not the pacing idle.
// Events are resolved exchange attempts plus responder commits;
// bytes_per_node is the retained heap of graph + runtime state.
func distShardBenches() ([]MicroBench, error) {
	const (
		n      = 100_000
		cut    = 8
		shards = 4
	)
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	g, part, err := graph.TorusDumbbell(n, cut)
	if err != nil {
		return nil, err
	}
	x0 := gossip.CutIndicator(part)
	rt, err := dist.NewShardRuntime(g, x0, dist.NewVanillaRule(), dist.ShardRuntimeConfig{
		ClusterConfig: dist.ClusterConfig{TimeScale: 500 * time.Millisecond, Seed: 1},
		Shards:        shards,
	})
	if err != nil {
		return nil, err
	}
	runtime.GC()
	runtime.ReadMemStats(&m1)
	var bytesPerNode float64
	if m1.HeapAlloc > m0.HeapAlloc {
		bytesPerNode = float64(m1.HeapAlloc-m0.HeapAlloc) / float64(n)
	}

	start := time.Now()
	if err := rt.Run(context.Background(), 1); err != nil {
		return nil, err
	}
	wall := time.Since(start)
	events := rt.Proposed() + rt.Exchanges()
	if events == 0 {
		return nil, fmt.Errorf("bench: shard runtime resolved no exchanges")
	}
	ns := float64(wall.Nanoseconds()) / float64(events)
	return []MicroBench{{
		Name:         "dist/shard-100k",
		NsPerEvent:   ns,
		EventsPerSec: 1e9 / ns,
		BytesPerNode: bytesPerNode,
	}}, nil
}

// batchStreams derives one independent stream per replica, the way the
// batched estimator does.
func batchStreams(replicas int) []*rng.RNG {
	root := rng.New(1)
	streams := make([]*rng.RNG, replicas)
	for i := range streams {
		streams[i] = root.Split()
	}
	return streams
}

// avgtimeBenches times whole estimator runs on the same multi-trial
// workload — the PR 2 per-replica tracked loop versus the replica-batched
// bridged engine — normalising by the actual simulated event count, so
// ns_per_event is comparable with the other rows (it includes per-trial
// setup and tracked-loop overhead). The batched/legacy pair is the
// headline comparison of BENCH_PR4.json.
func avgtimeBenches() ([]MicroBench, error) {
	g, part, err := graph.Dumbbell(64, 64, 1)
	if err != nil {
		return nil, err
	}
	x0 := gossip.CutIndicator(part)
	cfg := avgtime.Config{Trials: 15, Seed: 1, MaxTime: 1e4}

	start := time.Now()
	res, err := avgtime.Estimate(g, avgtime.VanillaFactory(g, x0), cfg)
	if err != nil {
		return nil, err
	}
	legacyNs := float64(time.Since(start).Nanoseconds()) / float64(res.Events)

	start = time.Now()
	batched, err := avgtime.EstimateBatched(g, nil, func(replicas int, _ []*rng.RNG) (sim.BatchKernel, error) {
		return gossip.NewVanillaEnsemble(g, x0, replicas)
	}, cfg)
	if err != nil {
		return nil, err
	}
	batchedNs := float64(time.Since(start).Nanoseconds()) / float64(batched.Events)

	return []MicroBench{
		{
			Name:         "avgtime/vanilla-dumbbell-per-event",
			NsPerEvent:   legacyNs,
			EventsPerSec: 1e9 / legacyNs,
		},
		{
			Name:         "avgtime/batched-trials",
			NsPerEvent:   batchedNs,
			EventsPerSec: 1e9 / batchedNs,
		},
	}, nil
}

func runExperiments(quick bool) ([]ExpTiming, error) {
	var out []ExpTiming
	for _, e := range report.Entries() {
		start := time.Now()
		sec, err := e.RunEntry(report.Params{Quick: quick, Seed: 1})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", e.ID, err)
		}
		out = append(out, ExpTiming{
			ID:      e.ID,
			Seconds: time.Since(start).Seconds(),
			Metrics: len(sec.Metrics),
		})
	}
	return out, nil
}

// regressionRows are the micro benchmarks the -baseline check gates on:
// the untracked fused simulator, the batched multi-trial estimator, and
// the sharded million-node engine — the headline hot paths of the perf
// stack. Sharded rows additionally gate bytes_per_node.
var regressionRows = []string{"simulator/vanilla-fused", "avgtime/batched-trials", "sharded/dumbbell-1m", "dist/shard-100k"}

// baselineFile accepts either a raw Report or a BENCH_PR<N>.json wrapper
// whose "current" field holds one.
type baselineFile struct {
	Micro   []MicroBench `json:"micro"`
	Current *Report      `json:"current"`
}

// loadBaseline reads the recorded baseline rows, keyed by name.
func loadBaseline(path string) (map[string]MicroBench, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	micro := bf.Micro
	if bf.Current != nil {
		micro = bf.Current.Micro
	}
	if len(micro) == 0 {
		return nil, fmt.Errorf("%s: no micro benchmark rows", path)
	}
	rows := make(map[string]MicroBench, len(micro))
	for _, m := range micro {
		rows[m.Name] = m
	}
	return rows, nil
}

// checkRegression compares the gated rows against the baseline with a
// multiplicative tolerance, reporting each verdict; it returns false when
// any row regressed past tolerance.
func checkRegression(current []MicroBench, baseline map[string]MicroBench, tolerance float64) bool {
	rows := make(map[string]MicroBench, len(current))
	for _, m := range current {
		rows[m.Name] = m
	}
	ok := true
	for _, name := range regressionRows {
		base, haveBase := baseline[name]
		cur, haveCur := rows[name]
		switch {
		case !haveBase:
			fmt.Fprintf(os.Stderr, "bench: baseline has no row %q, skipping\n", name)
		case !haveCur:
			fmt.Fprintf(os.Stderr, "bench: REGRESSION %q missing from current run\n", name)
			ok = false
		case cur.NsPerEvent > tolerance*base.NsPerEvent:
			fmt.Fprintf(os.Stderr, "bench: REGRESSION %q: %.2f ns/event vs baseline %.2f (tolerance %.1fx)\n",
				name, cur.NsPerEvent, base.NsPerEvent, tolerance)
			ok = false
		case base.BytesPerNode > 0 && cur.BytesPerNode > tolerance*base.BytesPerNode:
			fmt.Fprintf(os.Stderr, "bench: REGRESSION %q: %.1f bytes/node vs baseline %.1f (tolerance %.1fx)\n",
				name, cur.BytesPerNode, base.BytesPerNode, tolerance)
			ok = false
		default:
			fmt.Fprintf(os.Stderr, "bench: ok %q: %.2f ns/event vs baseline %.2f (tolerance %.1fx)\n",
				name, cur.NsPerEvent, base.NsPerEvent, tolerance)
		}
	}
	return ok
}

func main() {
	quick := flag.Bool("quick", false, "run experiments in CI-sized quick mode")
	outPath := flag.String("out", "", "write the JSON report to this file (default stdout)")
	skipExperiments := flag.Bool("no-experiments", false, "benchmark only the micro hot paths")
	baselinePath := flag.String("baseline", "", "compare the gated hot-path rows against this recorded report; exit 1 on regression")
	baselineTol := flag.Float64("baseline-tolerance", 2, "multiplicative ns/event tolerance for -baseline (generous: single-CPU CI noise)")
	flag.Parse()

	// Load the baseline before any output is written, so -out may safely
	// overwrite the baseline file itself.
	var baseline map[string]MicroBench
	if *baselinePath != "" {
		var err error
		if baseline, err = loadBaseline(*baselinePath); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}

	rep := Report{
		Schema:      "sparsecut-bench/v1",
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Quick:       *quick,
	}
	rep.Micro = microBenches()
	avg, err := avgtimeBenches()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	rep.Micro = append(rep.Micro, avg...)
	shd, err := shardedBenches()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	rep.Micro = append(rep.Micro, shd...)
	dsh, err := distShardBenches()
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	rep.Micro = append(rep.Micro, dsh...)
	if !*skipExperiments {
		exps, err := runExperiments(*quick)
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		rep.Experiments = exps
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *outPath == "" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d micro benchmarks, %d experiments)\n", *outPath, len(rep.Micro), len(rep.Experiments))
	}
	if baseline != nil && !checkRegression(rep.Micro, baseline, *baselineTol) {
		os.Exit(1)
	}
}
