package sweep

import (
	"encoding/json"
	"fmt"
	"io"

	"sparsecut/internal/scenario"
	"sparsecut/internal/table"
)

// Cell is one finished grid cell: the normalized scenario plus the
// censoring-aware Tav estimate and the streamed per-trial statistics.
type Cell struct {
	Index int           `json:"index"`
	Label string        `json:"label"`
	Spec  scenario.Spec `json:"spec"`
	// Seed is the unit seed (also planted in Spec.Seed); replaying the
	// spec alone reproduces the cell.
	Seed uint64 `json:"seed"`
	// Nodes, Edges and CutSize describe the built graph (CutSize is 0 for
	// families without a planted partition).
	Nodes   int `json:"nodes,omitempty"`
	Edges   int `json:"edges,omitempty"`
	CutSize int `json:"cut_size,omitempty"`
	// Trials/Censored/Events account for the Monte-Carlo budget. Censored
	// trials hit MaxTime still above threshold, so Tav is a lower bound.
	Trials   int   `json:"trials,omitempty"`
	Censored int   `json:"censored,omitempty"`
	Events   int64 `json:"events,omitempty"`
	// Tav is the Definition-1 quantile estimate; the remaining fields are
	// the Welford moments and quartiles of the per-trial last-exceedance
	// times.
	Tav    float64 `json:"tav,omitempty"`
	Mean   float64 `json:"mean,omitempty"`
	StdDev float64 `json:"stddev,omitempty"`
	CI95   float64 `json:"ci95,omitempty"`
	Min    float64 `json:"min,omitempty"`
	Q25    float64 `json:"q25,omitempty"`
	Median float64 `json:"median,omitempty"`
	Q75    float64 `json:"q75,omitempty"`
	Max    float64 `json:"max,omitempty"`
	// Error records a per-cell failure (the sweep itself keeps going).
	Error string `json:"error,omitempty"`
}

// TavString renders Tav with the censoring marker: ">=x" when any trial
// was censored (the estimate is then a lower bound).
func (c Cell) TavString() string {
	if c.Error != "" {
		return "error"
	}
	if c.Censored > 0 {
		return fmt.Sprintf(">=%.4g", c.Tav)
	}
	return fmt.Sprintf("%.4g", c.Tav)
}

// Report is a sweep's machine-readable result: the grid as requested, the
// root seed, and one cell per unit in expansion order. Marshalling is
// deterministic — same grid and seed, same bytes, whatever the worker
// count.
type Report struct {
	Grid  Grid   `json:"grid"`
	Seed  uint64 `json:"seed"`
	Cells []Cell `json:"cells"`
}

// WriteJSON writes the indented JSON encoding plus a trailing newline.
func (r *Report) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("sweep: encoding report: %w", err)
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// ParseGrid reads a Grid from JSON, rejecting unknown fields so schema
// typos fail loudly.
func ParseGrid(r io.Reader) (Grid, error) {
	var g Grid
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&g); err != nil {
		return Grid{}, fmt.Errorf("sweep: parsing grid: %w", err)
	}
	return g, nil
}

// ReadReport parses a report written by WriteJSON.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("sweep: decoding report: %w", err)
	}
	return &r, nil
}

// Table renders the report as the repository's text-table format.
func (r *Report) Table(title string) *table.Table {
	tbl := table.New(title,
		"cell", "n", "|E|", "|E12|", "algo", "Tav", "mean±95%", "median", "trials", "cens", "events")
	for _, c := range r.Cells {
		if c.Error != "" {
			tbl.AddRow(c.Label, c.Nodes, c.Edges, c.CutSize, c.Spec.Algo.Name,
				"error", c.Error, "", "", "", "")
			continue
		}
		tbl.AddRow(c.Label, c.Nodes, c.Edges, c.CutSize, c.Spec.Algo.Name,
			c.TavString(), fmt.Sprintf("%.4g±%.3g", c.Mean, c.CI95),
			c.Median, c.Trials, c.Censored, c.Events)
	}
	return tbl
}

// CellByLabel finds the first cell with the given label, for programmatic
// lookups in tests and downstream tooling.
func (r *Report) CellByLabel(label string) (Cell, bool) {
	for _, c := range r.Cells {
		if c.Label == label {
			return c, true
		}
	}
	return Cell{}, false
}
