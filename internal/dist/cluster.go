// Package dist is the decentralized counterpart of internal/sim: instead of
// an event loop mutating shared state, every graph node is a goroutine that
// owns its value, drives itself with a private exponential timer, and
// negotiates pairwise exchanges with its neighbours over an explicit,
// pluggable (and deliberately unreliable) Transport.
//
// The runtime exists to back the paper's Section 1 claim that Algorithm A
// is *decentralized*: the same local rules the simulator applies centrally
// (vanilla averaging plus the rare non-convex cut swap) run here as a
// message-passing protocol whose per-pair atomicity is enforced by a
// lock/propose-commit/ack handshake (see node.go), not by a global event
// queue. Experiment E12 compares the two executions with and without
// message loss; cmd/distrun drives the runtime from the command line.
//
// The timing model matches internal/sim exactly in distribution: node u
// initiates at Poisson rate deg(u)/2 over a uniform incident edge, which
// superposes to an independent rate-1 clock per edge — the paper's model.
// One simulated time unit is ClusterConfig.TimeScale of wall-clock time.
//
// Key types: Cluster, Rule (VanillaRule, SparseCutRule), the Transport stack (Chan/Drop/Delay/TCP). The protocol is DESIGN.md §5; the deterministic lockstep check lives in the reproduction's E12 (§9.4).
package dist

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"runtime/pprof"
	"strconv"

	"sparsecut/internal/flight"
	"sparsecut/internal/graph"
	"sparsecut/internal/metrics"
	"sparsecut/internal/rng"
)

// ClusterConfig configures NewCluster. TimeScale, Seed and Transport are
// the knobs experiments use; the remaining fields tune the protocol and
// default sensibly from TimeScale.
type ClusterConfig struct {
	// TimeScale is the wall-clock duration of one simulated time unit
	// (default 4ms). Smaller is faster but leaves less headroom between
	// the mean clock gap and transport latency.
	TimeScale time.Duration
	// Seed drives every per-node clock and edge choice.
	Seed uint64
	// Transport carries protocol messages (default: a fresh ChanTransport
	// whose mailboxes each buffer 4·NumNodes messages).
	Transport Transport
	// LockTimeout bounds how long an initiator waits for a proposal
	// before aborting (default TimeScale/4, at least 1ms). It must
	// comfortably exceed the transport's worst-case round trip — a
	// proposal arriving after the timeout is refused as stale, so with
	// LockTimeout below the typical latency (e.g. a DelayTransport's
	// range) essentially no exchange commits.
	LockTimeout time.Duration
	// ResendEvery is the proposal retransmission lease period (default
	// LockTimeout/2).
	ResendEvery time.Duration
	// Metrics, when non-nil, receives the runtime's telemetry: exchange
	// counters (proposed/committed/aborted), per-kind message counters, a
	// committed-exchange latency histogram, live convergence-progress
	// gauges, the rule's tick/swap counters and the transport stack's
	// loss/latency/byte counters (see metrics.go for the full name list).
	// nil disables telemetry at near-zero hot-path cost. Use one registry
	// per cluster.
	Metrics *metrics.Registry
	// Crashes schedules fail-stop crash/recovery fault injection; the
	// schedule is interpreted relative to the start of each Run. See
	// CrashEvent and the crash-path notes on Machine.
	Crashes []CrashEvent
	// Flight, when non-nil, receives the runtime's causal flight records:
	// every protocol step, message send/receive, transport drop, timer
	// fire and crash, ready for flight.Stitch to reconstruct per-exchange
	// span trees (see internal/flight and cmd/tracez). nil disables the
	// recorder at one pointer test per step. Like Metrics, use one
	// recorder per cluster, sized with at least NumNodes rings.
	Flight *flight.Recorder
}

// CrashEvent fail-stops one node at a simulated time. While down the node
// loses every message addressed to it and neither initiates nor answers;
// its value, seq counter, applied-watermarks and held proposal survive the
// crash (stable storage), only its outstanding initiation aborts. A node
// whose Recover time is 0 stays down until the run's drain phase, which
// force-recovers it so every exchange still resolves and the value sum is
// preserved exactly across any crash schedule.
type CrashEvent struct {
	// Node is the node to crash.
	Node int
	// At is the crash time in simulated time units from the run's start.
	At float64
	// Recover is the recovery time in simulated time units from the run's
	// start (must exceed At), or 0 to stay down until the drain phase.
	Recover float64
}

// Cluster runs a Rule as a real concurrent message-passing system on a
// graph. Construct with NewCluster, drive with Run. The observable
// accessors (Mean, Variance, Values, Exchanges, Aborted) must not be
// called while a Run is in progress.
type Cluster struct {
	g    *graph.Graph
	rule Rule
	cfg  ClusterConfig
	tr   Transport

	lockTimeout time.Duration
	resendEvery time.Duration

	nodes  []*node
	values []float64
	// epoch numbers the Runs; messages carry it so leftovers stranded in
	// mailboxes across a run boundary are recognised and dropped. Written
	// only by Run before the node goroutines start.
	epoch uint64

	// mc is the pure protocol state machine the node actors step; its
	// Epoch field is rewritten by Run before the goroutines start.
	mc Machine
	// tap, when non-nil, observes every protocol event of every node (the
	// lockstep equivalence test in machine_test.go sets it). The callback
	// must be safe for concurrent use.
	tap func(nodeEvent)

	exchanges atomic.Int64
	aborted   atomic.Int64
	// proposed and applied are the other two legs of the exchange ledger:
	// at quiescence proposed == applied + aborted (every initiation
	// resolved exactly one way) and applied == exchanges (every applied
	// initiator half has a committed responder half, the no-half-exchange
	// guarantee the settle pass enforces). cmd/distrun -assert checks
	// both.
	proposed  atomic.Int64
	applied   atomic.Int64
	crashes   atomic.Int64
	crashLost atomic.Int64
	// awaiting and pending count outstanding initiations and held
	// proposals; the drain phase of Run waits for both to hit zero, which
	// guarantees every exchange has fully committed or fully aborted.
	awaiting atomic.Int64
	pending  atomic.Int64

	running atomic.Bool
	wg      sync.WaitGroup

	errMu     sync.Mutex
	sendErr   error
	runCancel context.CancelFunc

	// met is the telemetry plane; all fields nil (every hook a no-op)
	// unless ClusterConfig.Metrics was set.
	met clusterMetrics
	// rec is the flight recorder (nil = disabled); see flight.go.
	rec *flight.Recorder
}

// NewCluster builds a runtime for rule on g with initial values x0
// (copied). Node i's mailbox is transport address i.
func NewCluster(g *graph.Graph, x0 []float64, rule Rule, cfg ClusterConfig) (*Cluster, error) {
	if g == nil || g.NumNodes() == 0 {
		return nil, errors.New("dist: cluster requires a non-empty graph")
	}
	if g.NumEdges() == 0 {
		return nil, fmt.Errorf("dist: %s has no edges to exchange over", g)
	}
	if len(x0) != g.NumNodes() {
		return nil, fmt.Errorf("dist: %d initial values for %d nodes", len(x0), g.NumNodes())
	}
	if rule == nil {
		return nil, errors.New("dist: cluster requires a rule")
	}
	if cfg.TimeScale < 0 || cfg.LockTimeout < 0 || cfg.ResendEvery < 0 {
		return nil, errors.New("dist: negative durations in config")
	}
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 4 * time.Millisecond
	}
	if cfg.Transport == nil {
		cfg.Transport = NewChanTransport(4 * g.NumNodes())
	}
	c := &Cluster{
		g:      g,
		rule:   rule,
		cfg:    cfg,
		tr:     cfg.Transport,
		values: append([]float64(nil), x0...),
	}
	c.lockTimeout = cfg.LockTimeout
	if c.lockTimeout == 0 {
		c.lockTimeout = cfg.TimeScale / 4
		if c.lockTimeout < time.Millisecond {
			c.lockTimeout = time.Millisecond
		}
	}
	c.resendEvery = cfg.ResendEvery
	if c.resendEvery == 0 {
		c.resendEvery = c.lockTimeout / 2
		if c.resendEvery <= 0 {
			c.resendEvery = c.lockTimeout
		}
	}
	c.mc = Machine{
		G:             g,
		Rule:          rule,
		LockTimeoutNs: c.lockTimeout.Nanoseconds(),
		ResendEveryNs: c.resendEvery.Nanoseconds(),
	}
	root := rng.New(cfg.Seed)
	c.nodes = make([]*node, g.NumNodes())
	for i := range c.nodes {
		inbox, err := c.tr.Recv(i)
		if err != nil {
			return nil, fmt.Errorf("dist: mailbox for node %d: %w", i, err)
		}
		c.nodes[i] = newNode(i, c, root.Split(), inbox, x0[i])
	}
	if err := c.assignCrashes(cfg.Crashes); err != nil {
		return nil, err
	}
	if cfg.Metrics != nil {
		c.instrument(cfg.Metrics)
	}
	if cfg.Flight != nil {
		c.rec = cfg.Flight
		instrumentTransportFlight(c.rec, c.tr)
	}
	return c, nil
}

// assignCrashes validates the crash schedule and distributes each node's
// events, sorted by crash time with non-overlapping windows.
func (c *Cluster) assignCrashes(events []CrashEvent) error {
	for _, ev := range events {
		if ev.Node < 0 || ev.Node >= len(c.nodes) {
			return fmt.Errorf("dist: crash schedule names node %d outside [0,%d)", ev.Node, len(c.nodes))
		}
		if !(ev.At >= 0) || math.IsInf(ev.At, 0) {
			return fmt.Errorf("dist: crash time %v for node %d must be non-negative and finite", ev.At, ev.Node)
		}
		if ev.Recover != 0 && (!(ev.Recover > ev.At) || math.IsInf(ev.Recover, 0)) {
			return fmt.Errorf("dist: recovery time %v for node %d must exceed crash time %v (or be 0 for down-until-drain)", ev.Recover, ev.Node, ev.At)
		}
		nd := c.nodes[ev.Node]
		nd.crashSpec = append(nd.crashSpec, ev)
	}
	for _, nd := range c.nodes {
		sort.Slice(nd.crashSpec, func(i, j int) bool { return nd.crashSpec[i].At < nd.crashSpec[j].At })
		for i := 1; i < len(nd.crashSpec); i++ {
			prev := nd.crashSpec[i-1]
			if prev.Recover == 0 || nd.crashSpec[i].At < prev.Recover {
				return fmt.Errorf("dist: overlapping crash windows for node %d", nd.id)
			}
		}
	}
	return nil
}

// Run executes the protocol for the given duration in simulated time units
// (wall time duration·TimeScale), or until ctx is cancelled, whichever is
// first. Shutdown is deterministic and loss-proof: after the horizon the
// nodes drain — no new initiations or proposals, but retransmission continues
// — until every in-flight exchange has resolved, so the value sum is
// preserved exactly across the run boundary. Run may be called again to
// continue from the current values.
//
// Errors are typed: a Run the caller cut short returns ctx.Err()
// (context.Canceled or context.DeadlineExceeded) after the same full
// drain, so the cluster's values remain consistent and the cluster stays
// usable; a transport that fails permanently mid-run surfaces as a
// *SendError wrapping the transport's error (errors.Is(err, ErrClosed)
// matches a transport closed underneath a running cluster). A nil return
// means the horizon was reached and every exchange resolved.
func (c *Cluster) Run(ctx context.Context, duration float64) error {
	if !(duration > 0) || math.IsInf(duration, 0) {
		return fmt.Errorf("dist: duration %v must be positive and finite", duration)
	}
	if duration*float64(c.cfg.TimeScale) >= float64(math.MaxInt64) {
		// Would overflow time.Duration and silently become an instant
		// no-op run via a negative context deadline.
		return fmt.Errorf("dist: duration %v at time scale %v exceeds the representable wall time", duration, c.cfg.TimeScale)
	}
	if !c.running.CompareAndSwap(false, true) {
		return errors.New("dist: Run already in progress")
	}
	defer c.running.Store(false)

	wall := time.Duration(duration * float64(c.cfg.TimeScale))
	runCtx, cancel := context.WithTimeout(ctx, wall)
	defer cancel()
	// A transport that fails permanently mid-run (e.g. closed underneath
	// us) would otherwise leave the horizon wait and the drain loop with
	// nothing to wait for; the first send error cuts the run short.
	c.errMu.Lock()
	c.sendErr = nil
	c.runCancel = cancel
	c.errMu.Unlock()

	drainC := make(chan struct{})
	stopC := make(chan struct{})
	var drainWG sync.WaitGroup
	c.epoch++
	c.mc.Epoch = c.epoch
	start := time.Now()
	for i, nd := range c.nodes {
		nd.resetForRun(c.values[i], start)
		c.wg.Add(1)
		drainWG.Add(1)
		// The pprof label makes -http profiles attribute work by node, the
		// same way sweep workers carry sweep_family/sweep_algo.
		go func(nd *node) {
			pprof.Do(context.Background(), pprof.Labels("dist_node", strconv.Itoa(nd.id)), func(context.Context) {
				nd.loop(drainC, stopC, &drainWG)
			})
		}(nd)
	}

	<-runCtx.Done()

	// Drain. Once every node has acknowledged the drain signal (drainWG),
	// no node will initiate or propose again, so awaiting and pending
	// are monotone non-increasing and their joint zero is a stable global
	// quiescence point: every exchange has fully resolved.
	close(drainC)
	drainWG.Wait()
	for c.awaiting.Load() != 0 || c.pending.Load() != 0 {
		if c.sendFailed() {
			break // the transport is gone; retransmission cannot succeed
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(stopC)
	c.wg.Wait()

	// Settle any proposals stranded by a failed transport. All state is
	// in-process after wg.Wait, so the cluster resolves each held
	// proposal the way its initiator already decided: if the initiator
	// applied (+delta committed but the COMMIT message was lost), land
	// the responder's half; otherwise nothing was applied anywhere and
	// the proposal is simply discarded. The sum stays exact even across
	// a transport death. On a healthy shutdown this loop finds nothing.
	for _, nd := range c.nodes {
		if nd.st.Pend != nil {
			init := c.nodes[nd.st.Pend.Msg.To]
			if init.st.LastApplied[nd.id] >= nd.st.Pend.Msg.Seq {
				nd.st.X -= nd.st.Pend.Msg.X
				c.exchanges.Add(1)
				c.met.publish(nd.id, nd.st.X)
			}
			nd.st.Pend = nil
		}
		nd.st.Await = nil
	}
	c.awaiting.Store(0)
	c.pending.Store(0)

	for i, nd := range c.nodes {
		c.values[i] = nd.st.X
	}
	if err := ctx.Err(); err != nil {
		return err // the caller cut the run short; state is still consistent
	}
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.sendErr
}

// SendError is the typed error Run returns when the transport failed
// permanently mid-run (the run is cut short, in-flight exchanges are
// settled in-process, and the value sum stays exact). It unwraps to the
// transport's own error, so errors.Is(err, ErrClosed) matches a transport
// closed underneath a running cluster.
type SendError struct {
	Err error
}

// Error implements error.
func (e *SendError) Error() string { return "dist: transport send failed: " + e.Err.Error() }

// Unwrap exposes the transport's underlying error to errors.Is/As.
func (e *SendError) Unwrap() error { return e.Err }

func (c *Cluster) noteSendErr(err error) {
	c.errMu.Lock()
	if c.sendErr == nil {
		c.sendErr = &SendError{Err: err}
		if c.runCancel != nil {
			c.runCancel()
		}
	}
	c.errMu.Unlock()
}

func (c *Cluster) sendFailed() bool {
	c.errMu.Lock()
	defer c.errMu.Unlock()
	return c.sendErr != nil
}

// Graph returns the cluster's graph.
func (c *Cluster) Graph() *graph.Graph { return c.g }

// Rule returns the exchange rule in use.
func (c *Cluster) Rule() Rule { return c.rule }

// Values returns a copy of the current value vector.
func (c *Cluster) Values() []float64 {
	return append([]float64(nil), c.values...)
}

// Mean returns the current average value. Committed exchanges apply exact
// antisymmetric deltas, so the mean is invariant up to float rounding.
func (c *Cluster) Mean() float64 {
	if len(c.values) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, v := range c.values {
		s += v
	}
	return s / float64(len(c.values))
}

// Variance returns the paper's varX of the current values.
func (c *Cluster) Variance() float64 {
	n := float64(len(c.values))
	if n == 0 {
		return 0
	}
	m := c.Mean()
	s := 0.0
	for _, v := range c.values {
		d := v - m
		s += d * d
	}
	return s / n
}

// Exchanges returns the number of committed exchanges (counted at the
// responder's commit point).
func (c *Cluster) Exchanges() int64 { return c.exchanges.Load() }

// Aborted returns the number of aborted initiation attempts: NACKed by a
// busy or draining peer, timed out waiting for a proposal (lost LOCK, or
// a proposal so late that the initiator gave up and refused it — such an
// exchange commits nowhere), or dropped by the initiator's own crash.
func (c *Cluster) Aborted() int64 { return c.aborted.Load() }

// Proposed returns the number of initiation attempts (LOCKs sent with a
// fresh seq). After a healthy run Proposed() == Applied() + Aborted() — the
// exchange ledger cmd/distrun -assert checks. A run cut short by transport
// death can leave initiations resolved as neither (their state is discarded
// by the settle pass), so the ledger only balances when Run returned nil or
// a context error.
func (c *Cluster) Proposed() int64 { return c.proposed.Load() }

// Applied returns the number of exchanges whose initiator applied its half.
// After the settle pass this equals Exchanges(): no exchange ends
// half-applied, even across a transport death.
func (c *Cluster) Applied() int64 { return c.applied.Load() }

// Crashes returns the number of crash events fired by the configured
// crash schedule so far.
func (c *Cluster) Crashes() int64 { return c.crashes.Load() }

// CrashLost returns the number of messages lost because their destination
// node was down when they were delivered.
func (c *Cluster) CrashLost() int64 { return c.crashLost.Load() }
