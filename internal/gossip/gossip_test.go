package gossip

import (
	"math"
	"testing"
	"testing/quick"

	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
	"sparsecut/internal/sim"
)

func TestStateBasics(t *testing.T) {
	s := NewState([]float64{1, 2, 3})
	if s.N() != 3 {
		t.Errorf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-2) > 1e-15 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if math.Abs(s.Sum()-6) > 1e-12 {
		t.Errorf("Sum = %v", s.Sum())
	}
	want := (1.0 + 0 + 1.0) / 3
	if math.Abs(s.Variance()-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", s.Variance(), want)
	}
	if s.Get(0) != 1 || s.Get(2) != 3 {
		t.Error("Get round trip failed")
	}
}

func TestStateSetUpdatesMoments(t *testing.T) {
	s := NewState([]float64{1, 2, 3})
	s.Set(0, 5)
	if math.Abs(s.Mean()-10.0/3) > 1e-12 {
		t.Errorf("Mean after Set = %v", s.Mean())
	}
	vals := s.Values()
	if vals[0] != 5 || vals[1] != 2 {
		t.Errorf("Values = %v", vals)
	}
	// Compare incremental variance against recomputation.
	direct := directVariance(vals)
	if math.Abs(s.Variance()-direct) > 1e-12 {
		t.Errorf("incremental variance %v vs direct %v", s.Variance(), direct)
	}
}

func directVariance(xs []float64) float64 {
	m := 0.0
	for _, v := range xs {
		m += v
	}
	m /= float64(len(xs))
	s := 0.0
	for _, v := range xs {
		s += (v - m) * (v - m)
	}
	return s / float64(len(xs))
}

func TestStateValuesIsCopy(t *testing.T) {
	s := NewState([]float64{1, 2})
	v := s.Values()
	v[0] = 99
	if s.Get(0) != 1 {
		t.Error("Values aliased internal storage")
	}
}

func TestStateEmpty(t *testing.T) {
	s := NewState(nil)
	if !math.IsNaN(s.Mean()) {
		t.Error("empty mean should be NaN")
	}
	if s.Variance() != 0 || s.Sum() != 0 {
		t.Error("empty moments should be 0")
	}
}

func TestStateNoCancellationAtLargeOffset(t *testing.T) {
	// Values clustered around 1e9: centering must keep variance accurate.
	base := 1e9
	s := NewState([]float64{base + 1, base - 1})
	if math.Abs(s.Variance()-1) > 1e-9 {
		t.Errorf("variance %v, want 1", s.Variance())
	}
	// Converge the pair: variance must go to ~0, not garbage.
	s.Set(0, base)
	s.Set(1, base)
	if s.Variance() > 1e-12 {
		t.Errorf("converged variance %v, want ~0", s.Variance())
	}
}

func TestStateResyncBoundsDrift(t *testing.T) {
	s := NewState(make([]float64, 4))
	r := rng.New(1)
	for k := 0; k < 3*resyncInterval; k++ {
		s.Set(r.Intn(4), r.Float64())
	}
	if math.Abs(s.Variance()-directVariance(s.Values())) > 1e-9 {
		t.Errorf("drifted variance %v vs direct %v", s.Variance(), directVariance(s.Values()))
	}
}

func TestStateVarianceNeverNegative(t *testing.T) {
	s := NewState([]float64{2, 2, 2})
	if s.Variance() < 0 {
		t.Error("negative variance")
	}
	s.Set(0, 2) // no-op update
	if s.Variance() < 0 {
		t.Error("negative variance after no-op")
	}
}

func TestNewVanillaValidation(t *testing.T) {
	g := graph.Path(3)
	if _, err := NewVanilla(g, []float64{1}); err == nil {
		t.Error("length mismatch not rejected")
	}
}

func TestVanillaTickAverages(t *testing.T) {
	g := graph.Path(2)
	v, err := NewVanilla(g, []float64{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	v.HandleTick(0, 0.1)
	vals := v.Values()
	if vals[0] != 2 || vals[1] != 2 {
		t.Errorf("values after tick = %v", vals)
	}
	if v.Variance() > 1e-15 {
		t.Errorf("variance after convergence = %v", v.Variance())
	}
}

func TestVanillaConvergesOnComplete(t *testing.T) {
	g := graph.Complete(16)
	r := rng.New(2)
	x0 := UniformRandom(r, 16)
	v, err := NewVanilla(g, x0)
	if err != nil {
		t.Fatal(err)
	}
	mean0 := v.Mean()
	eng, err := sim.NewEngine(g, v, sim.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(sim.Until(10))
	if v.Variance() > 1e-10*directVariance(x0) {
		t.Errorf("variance did not converge: %v", v.Variance())
	}
	if math.Abs(v.Mean()-mean0) > 1e-9 {
		t.Errorf("mean drifted: %v -> %v", mean0, v.Mean())
	}
}

func TestConvexAlphaValidation(t *testing.T) {
	g := graph.Path(2)
	for _, alpha := range []float64{-0.1, 1.1} {
		if _, err := NewConvex(g, []float64{0, 1}, alpha); err == nil {
			t.Errorf("alpha %v not rejected", alpha)
		}
	}
	if _, err := NewConvex(g, []float64{0}, 0.5); err == nil {
		t.Error("length mismatch not rejected")
	}
}

func TestConvexHalfEqualsVanilla(t *testing.T) {
	g := graph.Cycle(5)
	x0 := []float64{5, -1, 2, 0, 3}
	v, err := NewVanilla(g, x0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewConvex(g, x0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ticks := []graph.EdgeID{0, 3, 2, 2, 4, 1}
	for _, e := range ticks {
		v.HandleTick(e, 0)
		c.HandleTick(e, 0)
	}
	va, cb := v.Values(), c.Values()
	for i := range va {
		if math.Abs(va[i]-cb[i]) > 1e-12 {
			t.Fatalf("alpha=1/2 diverges from vanilla at node %d: %v vs %v", i, va[i], cb[i])
		}
	}
}

func TestConvexIdentityAlphaOne(t *testing.T) {
	g := graph.Path(2)
	c, err := NewConvex(g, []float64{1, 9}, 1)
	if err != nil {
		t.Fatal(err)
	}
	c.HandleTick(0, 0)
	vals := c.Values()
	if vals[0] != 1 || vals[1] != 9 {
		t.Errorf("alpha=1 changed values: %v", vals)
	}
}

func TestConvexSwapAlphaZero(t *testing.T) {
	g := graph.Path(2)
	c, err := NewConvex(g, []float64{1, 9}, 0)
	if err != nil {
		t.Fatal(err)
	}
	c.HandleTick(0, 0)
	vals := c.Values()
	if vals[0] != 9 || vals[1] != 1 {
		t.Errorf("alpha=0 should swap: %v", vals)
	}
}

// Property: every class-C update preserves the sum exactly and never
// increases the variance — the two facts Theorem 1 relies on.
func TestConvexInvariants(t *testing.T) {
	r := rng.New(7)
	g := graph.Complete(8)
	if err := quick.Check(func(alphaRaw uint8, seed uint16) bool {
		alpha := float64(alphaRaw) / 255
		x0 := UniformRandom(rng.New(uint64(seed)), 8)
		c, err := NewConvex(g, x0, alpha)
		if err != nil {
			return false
		}
		sum0 := c.Mean() * 8
		for k := 0; k < 50; k++ {
			before := c.Variance()
			c.HandleTick(graph.EdgeID(r.Intn(g.NumEdges())), 0)
			if c.Variance() > before+1e-12 {
				return false // variance increased
			}
		}
		return math.Abs(c.Mean()*8-sum0) < 1e-9
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPushSumValidation(t *testing.T) {
	g := graph.Path(2)
	if _, err := NewPushSum(g, []float64{1}, rng.New(1)); err == nil {
		t.Error("length mismatch not rejected")
	}
	if _, err := NewPushSum(g, []float64{1, 2}, nil); err == nil {
		t.Error("nil rng not rejected")
	}
}

func TestPushSumConservesMass(t *testing.T) {
	g := graph.Complete(10)
	r := rng.New(5)
	x0 := UniformRandom(r, 10)
	p, err := NewPushSum(g, x0, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	mass0, weight0 := p.TotalMass(), p.TotalWeight()
	tick := rng.New(6)
	for k := 0; k < 10000; k++ {
		p.HandleTick(graph.EdgeID(tick.Intn(g.NumEdges())), 0)
	}
	if math.Abs(p.TotalMass()-mass0) > 1e-9 {
		t.Errorf("mass drifted %v -> %v", mass0, p.TotalMass())
	}
	if math.Abs(p.TotalWeight()-weight0) > 1e-9 {
		t.Errorf("weight drifted %v -> %v", weight0, p.TotalWeight())
	}
}

func TestPushSumConverges(t *testing.T) {
	g := graph.Complete(12)
	r := rng.New(8)
	x0 := UniformRandom(r, 12)
	truth := 0.0
	for _, v := range x0 {
		truth += v
	}
	truth /= 12
	p, err := NewPushSum(g, x0, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := sim.NewEngine(g, p, sim.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(sim.Until(20))
	for i, est := range p.Values() {
		if math.Abs(est-truth) > 1e-6 {
			t.Fatalf("node %d estimate %v, want %v", i, est, truth)
		}
	}
}

func TestCutIndicatorMeanZero(t *testing.T) {
	for _, dims := range [][2]int{{4, 4}, {3, 9}, {1, 7}} {
		_, p, err := graph.Dumbbell(dims[0], dims[1], 1)
		if err != nil {
			t.Fatal(err)
		}
		x := CutIndicator(p)
		sum := 0.0
		for _, v := range x {
			sum += v
		}
		if math.Abs(sum) > 1e-12 {
			t.Errorf("dumbbell %v: cut indicator sum %v, want 0", dims, sum)
		}
		// +1 on side 1.
		if x[0] != 1 {
			t.Errorf("side-1 value %v", x[0])
		}
	}
}

func TestSpike(t *testing.T) {
	x, err := Spike(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if x[2] != 1 || x[0] != 0 || len(x) != 5 {
		t.Errorf("spike = %v", x)
	}
	if _, err := Spike(5, 5); err == nil {
		t.Error("out-of-range spike not rejected")
	}
}

func TestUniformRandomRange(t *testing.T) {
	x := UniformRandom(rng.New(3), 1000)
	for _, v := range x {
		if v < -1 || v >= 1 {
			t.Fatalf("value %v outside [-1,1)", v)
		}
	}
}

func TestGaussianRandomLength(t *testing.T) {
	if len(GaussianRandom(rng.New(4), 17)) != 17 {
		t.Error("wrong length")
	}
}

func TestLinear(t *testing.T) {
	x := Linear(5)
	if x[0] != 0 || x[4] != 1 || x[2] != 0.5 {
		t.Errorf("linear = %v", x)
	}
	if got := Linear(1); got[0] != 0 {
		t.Errorf("Linear(1) = %v", got)
	}
}

func TestAlgorithmInterfaceCompliance(t *testing.T) {
	g := graph.Path(2)
	x0 := []float64{0, 1}
	var algs []Algorithm
	v, err := NewVanilla(g, x0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewConvex(g, x0, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPushSum(g, x0, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	algs = append(algs, v, c, p)
	for _, a := range algs {
		if a.Name() == "" {
			t.Errorf("%T: empty name", a)
		}
		if len(a.Values()) != 2 {
			t.Errorf("%T: wrong value length", a)
		}
		var _ sim.Handler = a // compile-time-like check that Algorithm satisfies sim.Handler
	}
}
