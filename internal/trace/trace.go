// Package trace records time series produced during simulations (variance
// trajectories, epoch boundaries) and writes them as CSV — the repository's
// "figure" output format. A Series can be downsampled so that million-event
// runs produce plottable files.
//
// Key types: Series, SampledRecorder, WriteCSV — the figure-style trajectory output of E5 and cmd/gossipsim -csv (DESIGN.md §4).
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// Series is an append-only time series of (T, V) points.
type Series struct {
	Name string
	T    []float64
	V    []float64
}

// NewSeries creates an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends one point. Points should be appended in nondecreasing T
// order; Len and At do not enforce it but WriteCSV preserves order as
// appended.
func (s *Series) Add(t, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.T) }

// At returns the i-th point.
func (s *Series) At(i int) (t, v float64) { return s.T[i], s.V[i] }

// Last returns the final point; ok is false for an empty series.
func (s *Series) Last() (t, v float64, ok bool) {
	if len(s.T) == 0 {
		return 0, 0, false
	}
	return s.T[len(s.T)-1], s.V[len(s.V)-1], true
}

// Downsample returns a new series keeping at most maxPoints points, chosen
// uniformly by index, always retaining the first and last point. A series
// already within budget is copied verbatim. maxPoints must be >= 2.
func (s *Series) Downsample(maxPoints int) (*Series, error) {
	if maxPoints < 2 {
		return nil, fmt.Errorf("trace: maxPoints %d < 2", maxPoints)
	}
	out := NewSeries(s.Name)
	n := s.Len()
	if n <= maxPoints {
		out.T = append(out.T, s.T...)
		out.V = append(out.V, s.V...)
		return out, nil
	}
	stride := float64(n-1) / float64(maxPoints-1)
	prevIdx := -1
	for k := 0; k < maxPoints; k++ {
		idx := int(float64(k)*stride + 0.5)
		if idx >= n {
			idx = n - 1
		}
		if idx == prevIdx {
			continue
		}
		out.Add(s.T[idx], s.V[idx])
		prevIdx = idx
	}
	// Ensure the exact last point survived rounding.
	if lt, _, _ := out.Last(); lt != s.T[n-1] {
		out.Add(s.T[n-1], s.V[n-1])
	}
	return out, nil
}

// SampledRecorder calls Add only every stride-th invocation of Record
// (always including the first), bounding the memory of long simulations at
// the source.
type SampledRecorder struct {
	Series *Series
	Stride int64
	count  int64
}

// NewSampledRecorder records every stride-th point into a fresh series.
// It returns an error for stride < 1.
func NewSampledRecorder(name string, stride int64) (*SampledRecorder, error) {
	if stride < 1 {
		return nil, fmt.Errorf("trace: stride %d < 1", stride)
	}
	return &SampledRecorder{Series: NewSeries(name), Stride: stride}, nil
}

// Record offers a point; it is kept when the sample counter fires.
func (r *SampledRecorder) Record(t, v float64) {
	if r.count%r.Stride == 0 {
		r.Series.Add(t, v)
	}
	r.count++
}

// WriteCSV writes one or more series sharing no time base as long-format
// CSV with header "series,t,value".
func WriteCSV(w io.Writer, series ...*Series) error {
	if len(series) == 0 {
		return errors.New("trace: no series to write")
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("series,t,value\n"); err != nil {
		return err
	}
	for _, s := range series {
		name := s.Name
		if name == "" {
			name = "series"
		}
		for i := range s.T {
			bw.WriteString(name)
			bw.WriteByte(',')
			bw.WriteString(strconv.FormatFloat(s.T[i], 'g', 10, 64))
			bw.WriteByte(',')
			bw.WriteString(strconv.FormatFloat(s.V[i], 'g', 10, 64))
			bw.WriteByte('\n')
		}
	}
	return bw.Flush()
}
