package report

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sparsecut/internal/scenario"
	"sparsecut/internal/sweep"
)

var update = flag.Bool("update", false, "rewrite golden files")

func TestRegistryComplete(t *testing.T) {
	all := Entries()
	if len(all) != 15 {
		t.Fatalf("registry has %d experiments, want 15", len(all))
	}
	for i, e := range all {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %d incomplete: %+v", i, e)
		}
	}
	// Sorted numerically, not lexically (E10 after E9).
	if all[8].ID != "E9" || all[9].ID != "E10" {
		t.Errorf("ordering wrong: %s, %s", all[8].ID, all[9].ID)
	}
	if _, ok := ByID("E999"); ok {
		t.Error("bogus ID found")
	}
}

// quickSection runs one entry in quick mode and fails the test on any
// definitive FAIL — the same gate CI applies to the generated document.
func quickSection(t *testing.T, id string, seed uint64) Section {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	sec, err := e.RunEntry(Params{Quick: true, Seed: seed})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if sec.Verdicts.Fail > 0 {
		t.Errorf("%s: %d table rows FAIL", id, sec.Verdicts.Fail)
	}
	for _, name := range sec.FailedChecks() {
		t.Errorf("%s: check %q failed", id, name)
	}
	return sec
}

// TestSuitePassesQuick is the migrated claim suite: every experiment's
// bound checks and derived checks must pass in quick mode. The thresholds
// themselves live in the entries (they ARE the report's PASS/FAIL
// convention), so this single test asserts the entire E1–E15 claim set.
func TestSuitePassesQuick(t *testing.T) {
	for _, e := range Entries() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			sec := quickSection(t, e.ID, 7)
			if len(sec.Tables) == 0 && len(sec.Checks) == 0 {
				t.Fatalf("%s produced no tables and no checks", e.ID)
			}
		})
	}
}

// TestHeadlineMetrics spot-checks the strongest quantitative claims
// beyond the PASS/FAIL gates (the former experiments-package test
// assertions).
func TestHeadlineMetrics(t *testing.T) {
	e4 := quickSection(t, "E4", 7)
	if g, ok := e4.Metric("speedup-growth"); !ok || g <= 1 {
		t.Errorf("E4 speedup growth %v, want > 1", g)
	}
	e7 := quickSection(t, "E7", 7)
	if beta, _ := e7.Metric("beta"); beta < 0.25 || beta > 1 {
		t.Errorf("E7 beta %v outside [0.25, 1]", beta)
	}
	e12 := quickSection(t, "E12", 7)
	if div, _ := e12.Metric("max-divergence"); div > 1e-9 {
		t.Errorf("E12 rule/simulator divergence %v", div)
	}
}

// TestGoldenSection locks the rendered REPRODUCTION.md section format:
// the same spec + seed must produce this byte-exact section, at workers=1
// and workers=4 alike. Regenerate with -update after intentional format
// changes.
func TestGoldenSection(t *testing.T) {
	render := func(workers int) []byte {
		e, _ := ByID("E1")
		sec, err := e.RunEntry(Params{Quick: true, Seed: 7, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var buf bytes.Buffer
		if err := sec.WriteMarkdown(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	w1 := render(1)
	w4 := render(4)
	if !bytes.Equal(w1, w4) {
		t.Fatalf("E1 section differs between workers=1 and workers=4:\n--- w=1 ---\n%s\n--- w=4 ---\n%s", w1, w4)
	}

	golden := filepath.Join("testdata", "golden_e1_quick.md")
	if *update {
		if err := os.WriteFile(golden, w1, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(w1, want) {
		t.Errorf("E1 section drifted from golden file (run with -update if intentional):\n--- got ---\n%s\n--- want ---\n%s", w1, want)
	}
}

// TestDocumentDeterministic renders a three-experiment document twice (and
// across worker counts) and demands byte equality for both Markdown and
// JSON — the contract cmd/repro and the repro-smoke CI job rely on.
func TestDocumentDeterministic(t *testing.T) {
	gen := func(workers int) (string, string) {
		doc, err := GenerateSubset([]string{"E2", "E8", "E12"}, Params{Quick: true, Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var md, js bytes.Buffer
		if err := doc.WriteMarkdown(&md); err != nil {
			t.Fatal(err)
		}
		if err := doc.WriteJSON(&js); err != nil {
			t.Fatal(err)
		}
		return md.String(), js.String()
	}
	md1, js1 := gen(1)
	md2, js2 := gen(4)
	md3, js3 := gen(4)
	if md1 != md2 || md2 != md3 {
		t.Error("markdown differs across runs/worker counts")
	}
	if js1 != js2 || js2 != js3 {
		t.Error("JSON differs across runs/worker counts")
	}
	back, err := ReadDocument(strings.NewReader(js1))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Sections) != 3 || back.Sections[0].ID != "E2" {
		t.Errorf("JSON round-trip lost sections: %+v", back.Sections)
	}
}

// TestVerdictCensoring pins the censoring-aware margin logic: censored
// cells can PASS a lower bound and FAIL an upper bound definitively, but
// everything else is inconclusive.
func TestVerdictCensoring(t *testing.T) {
	base := sweep.Cell{Spec: scenario.Spec{Algo: scenario.AlgoSpec{Name: "vanilla"}}}
	cases := []struct {
		name     string
		tav      float64
		censored int
		b        cellBounds
		want     Verdict
	}{
		{"no bounds", 10, 0, cellBounds{}, None},
		{"clean pass", 10, 0, cellBounds{lower: 8, upper: 20}, Pass},
		{"lower violation", 1, 0, cellBounds{lower: 100}, Fail},
		{"lower violation censored", 1, 1, cellBounds{lower: 100}, Cens},
		{"censored above lower is definitive", 50, 1, cellBounds{lower: 100}, Pass},
		{"upper violation", 100, 0, cellBounds{upper: 20}, Fail},
		{"upper violation censored is definitive", 100, 1, cellBounds{upper: 20}, Fail},
		{"censored below upper inconclusive", 10, 1, cellBounds{upper: 20}, Cens},
	}
	for _, tc := range cases {
		c := base
		c.Tav = tc.tav
		c.Censored = tc.censored
		if got := verdictFor(c, tc.b); got != tc.want {
			t.Errorf("%s: verdict %s, want %s", tc.name, got, tc.want)
		}
	}
}

// TestFailuresSurface verifies a failing check is reported by
// Document.Failures (the hook cmd/repro -strict exits non-zero on).
func TestFailuresSurface(t *testing.T) {
	doc := &Document{Sections: []Section{{
		ID:     "EX",
		Checks: []Check{{Name: "broken", Pass: false}},
	}}}
	fails := doc.Failures()
	if len(fails) != 1 || !strings.Contains(fails[0], "broken") {
		t.Errorf("Failures() = %v", fails)
	}
	if fails := (&Document{}).Failures(); len(fails) != 0 {
		t.Errorf("empty document reported failures: %v", fails)
	}
}

// TestMarkdownEscapesPipes guards the GFM rendering of |E12|-style cells.
func TestMarkdownEscapesPipes(t *testing.T) {
	sec := Section{ID: "EX", Title: "t", Claim: "c", Tables: []Table{{
		Columns: []string{"|E12|"},
		Rows:    [][]string{{"|x|"}},
	}}}
	var buf bytes.Buffer
	if err := sec.WriteMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `\|E12\|`) || !strings.Contains(buf.String(), `\|x\|`) {
		t.Errorf("pipes not escaped:\n%s", buf.String())
	}
}
