// Package metrics is the repository's dependency-free telemetry core: the
// counters, gauges and histograms the runtime layers (internal/dist,
// internal/sim, internal/sweep) record into, and the Registry that names
// them and exports deterministic JSON snapshots.
//
// The package is engineered around one constraint: instrumentation must be
// mergeable into the hot paths without moving the bench-regression gates.
// Every instrument is therefore nil-safe — methods on a nil *Counter,
// *Gauge or *Histogram are no-ops — and a nil *Registry hands out nil
// instruments, so "disabled" call sites compile to a method call whose
// body is one predictable branch. Enabled counters are sharded across
// padded cache lines so concurrent writers (one goroutine per dist node,
// one per sweep worker) do not serialise on a single cache line.
//
// Snapshots are deterministic: Snapshot() renders sorted names and exact
// integer state, so two runs that performed the same recorded work produce
// byte-identical metrics JSON (the package tests prove it). Wall-clock
// histograms are of course only as deterministic as the clock — the
// determinism contract is about the encoding, not the timings.
//
// Key types: Counter, Gauge, Histogram, Registry, Snapshot. Telemetry
// semantics and the overhead budget are DESIGN.md §10.
package metrics

import (
	"math"
	"sync/atomic"
)

// NumShards is the fixed shard count of every Counter: enough to spread
// GOMAXPROCS-scale writer pools on the machines this repository targets,
// small enough that Value() stays a trivial sum. A power of two so the
// shard pick is a mask, not a modulo.
const NumShards = 32

const shardMask = NumShards - 1

// cell is one counter shard, padded to its own cache line (64 bytes on
// every GOARCH this repo builds for) so adjacent shards do not false-share
// under concurrent writers.
type cell struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotone sharded counter. Writers pick a shard — typically
// their node ID or worker index — so independent actors land on distinct
// cache lines; readers sum all shards. The zero value is ready to use; all
// methods are safe for concurrent use and no-ops on a nil receiver.
type Counter struct {
	cells [NumShards]cell
}

// Inc adds 1 to the given shard (reduced mod NumShards).
func (c *Counter) Inc(shard int) {
	if c == nil {
		return
	}
	c.cells[uint(shard)&shardMask].v.Add(1)
}

// Add adds delta to the given shard (reduced mod NumShards).
func (c *Counter) Add(shard int, delta int64) {
	if c == nil {
		return
	}
	c.cells[uint(shard)&shardMask].v.Add(delta)
}

// Value returns the sum over all shards. Concurrent with writers it is a
// possibly-torn but monotone-consistent total: every increment that
// happened-before the call is included.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var sum int64
	for i := range c.cells {
		sum += c.cells[i].v.Load()
	}
	return sum
}

// ShardValue returns the count recorded under one shard hint (reduced mod
// NumShards). When writers use a stable small hint space — the sharded
// dist runtime passes its shard loop index — this turns one Counter into a
// free per-shard breakdown: dist.ShardRuntime registers per-shard
// CounterFuncs over it for throughput-by-shard snapshots. With more than
// NumShards distinct hints the breakdown aliases (hints congruent mod
// NumShards share a cell) while Value() stays exact.
func (c *Counter) ShardValue(shard int) int64 {
	if c == nil {
		return 0
	}
	return c.cells[uint(shard)&shardMask].v.Load()
}

// Gauge is an instantaneous float64 value (convergence progress, occupancy
// ratios). Reads and writes are atomic; the zero value reads 0 and is
// ready to use. Methods are no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value (0 before any Set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}
