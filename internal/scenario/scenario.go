// Package scenario turns a declarative description of one simulation
// setup — graph family and parameters, algorithm and options, initial
// vector, clock-rate model, stop condition — into the concrete objects the
// engines consume (graph.Graph, gossip.Algorithm factories, avgtime
// configs). A registry names every generator the repository provides, so
// the CLIs and the sweep engine reach the whole zoo through one schema
// instead of hard-coding three families each.
//
// Specs are plain structs with JSON tags: they parse from command-line
// flags or a JSON file, and round-trip losslessly, which is what makes
// sweep reports self-describing and replayable.
//
// Key types: Spec (GraphSpec/AlgoSpec/StopSpec), Family and the registry, Resolved. Schema and seed-splitting are DESIGN.md §7.
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// GraphSpec selects and parameterises a graph family. Only the fields a
// family consumes are meaningful; Resolve fills family defaults for the
// rest (derived from N where sensible) so a spec with just Family and N is
// complete.
type GraphSpec struct {
	// Family names a registry entry (see Families for the catalogue).
	Family string `json:"family"`
	// N is the total node count. Families with structured sizes (grid,
	// hypercube, binary tree, ring of cliques) derive their shape from N
	// unless the shape fields below are set explicitly.
	N int `json:"n,omitempty"`
	// N1, N2 override the side split of two-sided families (dumbbell,
	// planted, bipartite). Default: N/2 and N-N/2.
	N1 int `json:"n1,omitempty"`
	N2 int `json:"n2,omitempty"`
	// Cut is the number of cut edges: dumbbell cut edges, sensor doors,
	// ring-of-cliques bridges per joint, hierarchical dumbbell outer cut.
	Cut int `json:"cut,omitempty"`
	// InnerCut is the hierarchical dumbbell's within-side cut width.
	InnerCut int `json:"inner_cut,omitempty"`
	// Rows, Cols shape lattice families (grid, torus).
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Dim is the hypercube dimension.
	Dim int `json:"dim,omitempty"`
	// Levels is the binary-tree depth.
	Levels int `json:"levels,omitempty"`
	// Tail is the lollipop path length.
	Tail int `json:"tail,omitempty"`
	// Blocks is the ring-of-cliques clique count.
	Blocks int `json:"blocks,omitempty"`
	// Degree is the random-regular degree.
	Degree int `json:"degree,omitempty"`
	// P is the G(n,p) edge probability.
	P float64 `json:"p,omitempty"`
	// PIn, POut are the planted-partition densities.
	PIn  float64 `json:"p_in,omitempty"`
	POut float64 `json:"p_out,omitempty"`
	// Radius scales the RGG/sensor connection radius as a multiple of the
	// standard connectivity radius sqrt(2 ln n / n). Default 2.
	Radius float64 `json:"radius,omitempty"`
}

// AlgoSpec selects and parameterises a gossip algorithm.
type AlgoSpec struct {
	// Name is one of: "vanilla", "convex", "pushsum", "A" (Algorithm A).
	Name string `json:"name"`
	// Alpha is the convex mixing parameter (default 0.5 = vanilla rule).
	Alpha float64 `json:"alpha,omitempty"`
	// Weight selects Algorithm A's swap coefficient: "exact" (default),
	// "paper", or "custom" (then W holds the value).
	Weight string  `json:"weight,omitempty"`
	W      float64 `json:"w,omitempty"`
	// EpochC sets the paper's constant C in K = ceil(C*(Tvan1+Tvan2)*ln n).
	EpochC float64 `json:"epoch_c,omitempty"`
	// EpochTicks fixes the swap period K directly (overrides EpochC).
	EpochTicks int64 `json:"epoch_ticks,omitempty"`
	// AllCutEdges enables Algorithm A's multi-cut-edge extension: the
	// swap counter and the swap itself rotate over every cut edge instead
	// of the paper's single designated ec, with K scaled by |E12| to keep
	// epochs mixing-limited (experiment E14).
	AllCutEdges bool `json:"all_cut_edges,omitempty"`
}

// StopSpec sets the Monte-Carlo estimator's budget.
type StopSpec struct {
	// Trials is the number of independent trials (default 5).
	Trials int `json:"trials,omitempty"`
	// MaxTime censors each trial (default 60*N, the experiment suite's
	// horizon — generous for Algorithm A, tight enough to censor convex
	// runs that Theorem 1 says cannot finish).
	MaxTime float64 `json:"max_time,omitempty"`
	// BatchWidth caps the trials resident per replica batch when the
	// algorithm runs on the batched engine (0 = all trials in one batch).
	// Memory only: the estimate is byte-identical for any width.
	BatchWidth int `json:"batch_width,omitempty"`
	// Shards > 0 routes the run onto the sharded PDES engine over the
	// family's implicit representation (vanilla + uniform rates only):
	// Shards is the worker-goroutine cap per trial. Wall-clock only: the
	// tiling and RNG streams are fixed by the graph, so the estimate is
	// byte-identical for any positive value.
	Shards int `json:"shards,omitempty"`
	// Window is the sharded engine's barrier spacing Δ (0 =
	// sim.DefaultWindow). Unlike Shards it affects the result: tracked
	// times resolve to within one window.
	Window float64 `json:"window,omitempty"`
}

// Spec is a complete scenario: everything needed to reproduce one
// (graph, algorithm, parameters) Monte-Carlo cell from a seed.
type Spec struct {
	Graph GraphSpec `json:"graph"`
	Algo  AlgoSpec  `json:"algo"`
	// Init selects the initial vector: "worstcase" (default; the paper's
	// cut indicator, falling back to a spectral-detected cut and then to a
	// spike on families without a planted partition), "spike", "random",
	// "gaussian", "linear".
	Init string `json:"init,omitempty"`
	// Rates selects the clock-rate model: "uniform" (default, the paper's
	// rate-1 edge clocks), "nodeclock" (Boyd et al.'s node-clock model as
	// degree-dependent edge rates), "random" (i.i.d. U[0.5,2) per edge).
	Rates string   `json:"rates,omitempty"`
	Stop  StopSpec `json:"stop,omitempty"`
	// Seed makes everything deterministic: graph sampling, initial vector
	// randomness, and the trial streams all derive from it (default 1).
	Seed uint64 `json:"seed,omitempty"`
}

// Label renders a compact human-readable cell identifier, used in sweep
// reports and progress output.
func (s Spec) Label() string {
	l := fmt.Sprintf("%s/n=%d", s.Graph.Family, s.Graph.N)
	if s.Graph.Cut > 0 {
		l += fmt.Sprintf("/cut=%d", s.Graph.Cut)
	}
	l += "/" + s.Algo.Name
	if s.Algo.Name == "convex" && s.Algo.Alpha != 0 && s.Algo.Alpha != 0.5 {
		l += fmt.Sprintf("(%.3g)", s.Algo.Alpha)
	}
	if s.Algo.EpochC != 0 {
		l += fmt.Sprintf("/C=%.3g", s.Algo.EpochC)
	}
	if s.Algo.Weight != "" && s.Algo.Weight != "exact" {
		l += "/w=" + s.Algo.Weight
	}
	if s.Algo.AllCutEdges {
		l += "/allcut"
	}
	if s.Rates != "" && s.Rates != "uniform" {
		l += "/" + s.Rates
	}
	if s.Stop.Shards > 0 {
		l += fmt.Sprintf("/shards=%d", s.Stop.Shards)
	}
	return l
}

// withDefaults fills the family-independent defaults. Family-specific
// graph defaults are applied by the registry entry during Resolve.
func (s Spec) withDefaults() Spec {
	if s.Graph.Family == "" {
		s.Graph.Family = "dumbbell"
	}
	if s.Graph.N == 0 && s.Graph.N1 == 0 && s.Graph.Rows == 0 && s.Graph.Dim == 0 &&
		s.Graph.Levels == 0 && s.Graph.Blocks == 0 {
		s.Graph.N = 64
	}
	if s.Algo.Name == "" {
		s.Algo.Name = "vanilla"
	}
	if s.Algo.Alpha == 0 {
		s.Algo.Alpha = 0.5
	}
	if s.Algo.Weight == "" {
		s.Algo.Weight = "exact"
	}
	if s.Init == "" {
		s.Init = "worstcase"
	}
	if s.Rates == "" {
		s.Rates = "uniform"
	}
	if s.Stop.Trials == 0 {
		s.Stop.Trials = 5
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// ParseSpec reads one Spec from JSON.
func ParseSpec(r io.Reader) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	return s, nil
}

// derivedSquare returns the nearest rows=cols lattice shape for n nodes.
func derivedSquare(n int) int {
	s := int(math.Round(math.Sqrt(float64(n))))
	if s < 1 {
		s = 1
	}
	return s
}

// derivedLog2 returns round(log2 n), clamped to >= 1.
func derivedLog2(n int) int {
	if n < 2 {
		return 1
	}
	return int(math.Round(math.Log2(float64(n))))
}

// connectivityP returns the G(n,p) connectivity threshold ln(n)/n.
func connectivityP(n int) float64 {
	if n < 2 {
		return 1
	}
	return math.Log(float64(n)) / float64(n)
}
