package flight

import "sort"

// Span is one reconstructed exchange attempt: every record whose causal
// key is (Init, Seq), with the protocol's phase timestamps pulled out.
// A phase timestamp is -1 when the phase was never observed — either it
// never happened (an aborted exchange has no apply) or its records were
// overwritten by ring wrap-around.
type Span struct {
	// Init and Seq are the causal key; Resp is the responder, Edge the
	// graph edge (NoNode when no record named them).
	Init int    `json:"init"`
	Seq  uint64 `json:"seq"`
	Resp int    `json:"resp"`
	Edge int    `json:"edge"`
	// Outcome is "committed", "aborted" or "unresolved" (truncated
	// capture, or an exchange still in flight at snapshot time).
	Outcome string `json:"outcome"`
	// Reason explains an abort: "nack-busy", "timeout" or "crash".
	Reason string `json:"reason,omitempty"`
	// The phase timestamps (ns; -1 unobserved):
	// LockNs    — the initiator sent its LOCK (EvInitiate);
	// HoldNs    — the responder locked itself and held the proposal;
	// ApplyNs   — the initiator applied +delta (LOCK→PROPOSE round trip);
	// EndNs     — the exchange fully resolved (commit, rollback or abort).
	LockNs  int64 `json:"lock_ns"`
	HoldNs  int64 `json:"hold_ns"`
	ApplyNs int64 `json:"apply_ns"`
	EndNs   int64 `json:"end_ns"`
	// Hops counts messages sent within the span; Drops messages lost
	// (transport loss, congestion, dead node, or a checker drop action);
	// Resends proposal retransmissions; Dups checker duplications.
	Hops    int `json:"hops"`
	Drops   int `json:"drops,omitempty"`
	Resends int `json:"resends,omitempty"`
	Dups    int `json:"dups,omitempty"`
	// Events is the span's record stream in recorder arrival order — the
	// span tree's leaves.
	Events []Record `json:"events"`
}

// Span outcomes.
const (
	OutcomeCommitted  = "committed"
	OutcomeAborted    = "aborted"
	OutcomeUnresolved = "unresolved"
)

// Latency returns the end-to-end span duration in ns, or -1 when either
// endpoint is unobserved.
func (sp *Span) Latency() int64 {
	if sp.LockNs < 0 || sp.EndNs < 0 {
		return -1
	}
	return sp.EndNs - sp.LockNs
}

// end advances the span's resolution timestamp (the exchange is only
// fully resolved once both halves have settled, so keep the latest).
func (sp *Span) end(ns int64) {
	if ns > sp.EndNs {
		sp.EndNs = ns
	}
}

// start is the earliest observed timestamp (render ordering).
func (sp *Span) start() int64 {
	if len(sp.Events) == 0 {
		return 0
	}
	t := sp.Events[0].TimeNs
	for _, e := range sp.Events[1:] {
		if e.TimeNs < t {
			t = e.TimeNs
		}
	}
	return t
}

// SpanSet is a stitched dump: the exchange spans plus the records that
// belong to no exchange (crashes, recoveries, stale-epoch noise).
type SpanSet struct {
	Spans []Span   `json:"spans"`
	Loose []Record `json:"loose,omitempty"`
	// Overwritten is carried over from the dump: nonzero means ring
	// wrap-around truncated history and some spans may be partial.
	Overwritten int64 `json:"overwritten,omitempty"`
}

// Stitch reconstructs per-exchange spans from a dump by grouping records
// on the (Init, Seq) causal key and reading the phase structure off each
// group. The result is deterministic for a given dump: spans are ordered
// by observed start time, then initiator, then seq.
func Stitch(d *Dump) *SpanSet {
	set := &SpanSet{Overwritten: d.Overwritten}
	byKey := make(map[[2]uint64]int) // (init, seq) -> index into set.Spans
	for _, rec := range d.Events {
		if rec.Init == NoNode || rec.Seq == 0 {
			set.Loose = append(set.Loose, rec)
			continue
		}
		key := [2]uint64{uint64(uint32(rec.Init)), rec.Seq}
		idx, ok := byKey[key]
		if !ok {
			idx = len(set.Spans)
			byKey[key] = idx
			set.Spans = append(set.Spans, Span{
				Init: int(rec.Init), Seq: rec.Seq, Resp: NoNode, Edge: NoNode,
				LockNs: -1, HoldNs: -1, ApplyNs: -1, EndNs: -1,
			})
		}
		sp := &set.Spans[idx]
		sp.Events = append(sp.Events, rec)
		if rec.Edge != NoNode && sp.Edge == NoNode {
			sp.Edge = int(rec.Edge)
		}
		if sp.Resp == NoNode {
			// The responder is whichever endpoint is not the initiator.
			switch {
			case int(rec.Node) != sp.Init:
				sp.Resp = int(rec.Node)
			case rec.Peer != NoNode && int(rec.Peer) != sp.Init:
				sp.Resp = int(rec.Peer)
			}
		}
		switch rec.Kind {
		case EvInitiate:
			sp.LockNs = rec.TimeNs
		case EvPendHold:
			sp.HoldNs = rec.TimeNs
		case EvApply:
			sp.ApplyNs = rec.TimeNs
			sp.end(rec.TimeNs)
		case EvCommit, EvPendDrop:
			sp.end(rec.TimeNs)
		case EvAbort:
			sp.end(rec.TimeNs)
			if sp.Reason == "" {
				sp.Reason = ReasonName(rec.Flags)
			}
		case EvSend:
			sp.Hops++
		case EvNetDrop:
			sp.Drops++
		case EvResend:
			sp.Resends++
		case EvNetDup:
			sp.Dups++
		}
	}
	for i := range set.Spans {
		sp := &set.Spans[i]
		committed, aborted := false, false
		for _, e := range sp.Events {
			switch e.Kind {
			case EvApply, EvCommit:
				committed = true
			case EvAbort:
				aborted = true
			}
		}
		switch {
		case committed:
			sp.Outcome = OutcomeCommitted
			sp.Reason = ""
		case aborted:
			sp.Outcome = OutcomeAborted
		default:
			sp.Outcome = OutcomeUnresolved
		}
	}
	sort.SliceStable(set.Spans, func(i, j int) bool {
		si, sj := &set.Spans[i], &set.Spans[j]
		if a, b := si.start(), sj.start(); a != b {
			return a < b
		}
		if si.Init != sj.Init {
			return si.Init < sj.Init
		}
		return si.Seq < sj.Seq
	})
	return set
}

// Filter selects spans for the rendering views. The zero value matches
// everything.
type Filter struct {
	// Node restricts to spans whose initiator or responder is this node
	// (NoNode/negative = any). Use the Init field to match initiators only.
	Node int
	// Init restricts to spans initiated by this node (negative = any).
	Init int
	// Seq restricts to one sequence number (0 = any).
	Seq uint64
	// Outcome restricts to "committed" / "aborted" / "unresolved" ("" = any).
	Outcome string
}

// NewFilter returns the match-everything filter.
func NewFilter() Filter { return Filter{Node: NoNode, Init: NoNode} }

// Match reports whether sp passes the filter.
func (f Filter) Match(sp *Span) bool {
	if f.Node >= 0 && sp.Init != f.Node && sp.Resp != f.Node {
		return false
	}
	if f.Init >= 0 && sp.Init != f.Init {
		return false
	}
	if f.Seq != 0 && sp.Seq != f.Seq {
		return false
	}
	if f.Outcome != "" && sp.Outcome != f.Outcome {
		return false
	}
	return true
}

// Select returns the spans passing f, in set order.
func (set *SpanSet) Select(f Filter) []*Span {
	var out []*Span
	for i := range set.Spans {
		if f.Match(&set.Spans[i]) {
			out = append(out, &set.Spans[i])
		}
	}
	return out
}
