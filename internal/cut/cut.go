// Package cut finds sparse cuts: it turns a graph into the (Partition,
// designated-cut-edge) pair that Algorithm A consumes when the user does
// not already know where the bottleneck is.
//
// The detector is classic spectral partitioning: compute the Fiedler vector
// (eigenvector of λ2 of the Laplacian), then run a sweep cut over the
// nodes sorted by Fiedler score and keep the prefix with minimum
// conductance. For the small graphs used in tests, an exhaustive
// minimum-conductance search provides a ground-truth reference.
//
// Key functions: Detect, SpectralBisection, DesignatedCutEdge. Used by Algorithm A's auto-detection (DESIGN.md §3) and the E10 discovery checks (§9).
package cut

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"sparsecut/internal/graph"
	"sparsecut/internal/spectral"
)

// ErrNoCut is returned when no valid two-sided partition exists (fewer than
// two nodes).
var ErrNoCut = errors.New("cut: graph has no two-sided partition")

// SweepCut sorts nodes by score and returns the prefix partition with the
// minimum conductance among all n-1 prefixes. Ties are broken toward the
// more balanced cut. It returns ErrNoCut for graphs with fewer than two
// nodes and an error when len(score) mismatches.
func SweepCut(g *graph.Graph, score []float64) (*graph.Partition, error) {
	n := g.NumNodes()
	if n < 2 {
		return nil, ErrNoCut
	}
	if len(score) != n {
		return nil, fmt.Errorf("cut: %d scores for %d nodes", len(score), n)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if score[order[a]] != score[order[b]] {
			return score[order[a]] < score[order[b]]
		}
		return order[a] < order[b]
	})

	// Incremental conductance over the sweep: maintain cut size and the
	// volume of the growing prefix set.
	inPrefix := make([]bool, n)
	totalVol := 2 * g.NumEdges()
	prefixVol := 0
	cutSize := 0
	bestPhi := math.Inf(1)
	bestK := -1
	bestBalance := -1
	for k := 0; k < n-1; k++ {
		u := graph.NodeID(order[k])
		inPrefix[u] = true
		prefixVol += g.Degree(u)
		for _, he := range g.Neighbors(u) {
			if inPrefix[he.Peer] {
				cutSize-- // edge no longer crosses
			} else {
				cutSize++
			}
		}
		minVol := prefixVol
		if other := totalVol - prefixVol; other < minVol {
			minVol = other
		}
		if minVol == 0 {
			continue
		}
		phi := float64(cutSize) / float64(minVol)
		balance := k + 1
		if n-k-1 < balance {
			balance = n - k - 1
		}
		if phi < bestPhi-1e-15 || (math.Abs(phi-bestPhi) <= 1e-15 && balance > bestBalance) {
			bestPhi = phi
			bestK = k
			bestBalance = balance
		}
	}
	if bestK < 0 {
		return nil, ErrNoCut
	}
	side := make([]graph.Side, n)
	for i := range side {
		side[i] = graph.Side2
	}
	for k := 0; k <= bestK; k++ {
		side[order[k]] = graph.Side1
	}
	return graph.NewPartition(g, side)
}

// SpectralBisection finds a sparse cut by sweeping the Fiedler vector.
// It requires a connected graph with at least two nodes.
func SpectralBisection(g *graph.Graph, opts spectral.Options) (*graph.Partition, error) {
	if err := graph.RequireConnected(g); err != nil {
		return nil, err
	}
	fiedler, err := spectral.FiedlerVector(g, opts)
	if err != nil {
		return nil, fmt.Errorf("cut: computing Fiedler vector: %w", err)
	}
	return SweepCut(g, fiedler)
}

// BruteForceMinConductance exhaustively searches all 2^(n-1)-1 proper
// two-sided partitions and returns one with minimum conductance. It is the
// test oracle for SpectralBisection and refuses graphs with more than
// maxNodes (default cap 22) nodes.
func BruteForceMinConductance(g *graph.Graph) (*graph.Partition, error) {
	n := g.NumNodes()
	if n < 2 {
		return nil, ErrNoCut
	}
	const maxNodes = 22
	if n > maxNodes {
		return nil, fmt.Errorf("cut: brute force limited to %d nodes, got %d", maxNodes, n)
	}
	var best *graph.Partition
	bestPhi := math.Inf(1)
	side := make([]graph.Side, n)
	// Node 0 stays on Side1 to halve the search space.
	for mask := uint32(0); mask < 1<<(n-1); mask++ {
		for u := 1; u < n; u++ {
			if mask&(1<<(u-1)) != 0 {
				side[u] = graph.Side2
			} else {
				side[u] = graph.Side1
			}
		}
		if mask == 0 {
			continue // one-sided
		}
		p, err := graph.NewPartition(g, side)
		if err != nil {
			continue
		}
		if phi := p.Conductance(); phi < bestPhi {
			bestPhi = phi
			best = p
		}
	}
	if best == nil {
		return nil, ErrNoCut
	}
	return best, nil
}

// DesignatedCutEdge returns the paper's fixed edge ec for a partition: the
// lowest-ID edge crossing the cut. It returns an error for an empty cut.
func DesignatedCutEdge(p *graph.Partition) (graph.EdgeID, error) {
	cutEdges := p.CutEdges()
	if len(cutEdges) == 0 {
		return 0, errors.New("cut: partition has no cut edges")
	}
	return cutEdges[0], nil
}

// Detect runs the full pipeline Algorithm A needs when no planted partition
// is supplied: spectral bisection, then the designated cut edge.
func Detect(g *graph.Graph, opts spectral.Options) (*graph.Partition, graph.EdgeID, error) {
	p, err := SpectralBisection(g, opts)
	if err != nil {
		return nil, 0, err
	}
	ec, err := DesignatedCutEdge(p)
	if err != nil {
		return nil, 0, err
	}
	return p, ec, nil
}
