package sweep

import (
	"bytes"
	"testing"

	"sparsecut/internal/metrics"
	"sparsecut/internal/scenario"
)

// TestDeterministicAcrossWorkers is the subsystem's core contract: the
// same grid and seed produce byte-identical JSON for workers=1 and
// workers=4, including random graph families, on any GOMAXPROCS.
func TestDeterministicAcrossWorkers(t *testing.T) {
	grid := Grid{
		Base: scenario.Spec{
			Stop: scenario.StopSpec{Trials: 2, MaxTime: 200},
		},
		Families: []string{"dumbbell", "planted"},
		Ns:       []int{12, 16},
		Algos:    []string{"vanilla", "A"},
	}
	var out1, out4 bytes.Buffer
	rep1, err := Run(grid, Config{Workers: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	rep4, err := Run(grid, Config{Workers: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep1.WriteJSON(&out1); err != nil {
		t.Fatal(err)
	}
	if err := rep4.WriteJSON(&out4); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1.Bytes(), out4.Bytes()) {
		t.Fatalf("workers=1 and workers=4 reports differ:\n--- w=1 ---\n%s\n--- w=4 ---\n%s", out1.String(), out4.String())
	}
	for _, c := range rep1.Cells {
		if c.Error != "" {
			t.Errorf("cell %s failed: %s", c.Label, c.Error)
		}
		if c.Trials != 2 {
			t.Errorf("cell %s ran %d trials, want 2", c.Label, c.Trials)
		}
	}
}

// TestDeterministicAcrossBatchWidths: the replica-batched cells must be
// byte-identical for any Stop.BatchWidth — the width only groups trials
// into ensembles, every trial's streams derive from the unit seed in
// trial order. The reports are compared after normalising the one field
// that legitimately differs (the requested width echoed in the spec).
func TestDeterministicAcrossBatchWidths(t *testing.T) {
	base := Grid{
		Base: scenario.Spec{
			Stop: scenario.StopSpec{Trials: 5, MaxTime: 200},
		},
		Families: []string{"dumbbell", "ringofcliques"},
		Ns:       []int{12, 16},
		Algos:    []string{"vanilla", "pushsum"},
	}
	var reports []*Report
	for _, width := range []int{0, 1, 2} {
		grid := base
		grid.Base.Stop.BatchWidth = width
		rep, err := Run(grid, Config{Workers: 2, Seed: 17})
		if err != nil {
			t.Fatal(err)
		}
		for i := range rep.Cells {
			rep.Cells[i].Spec.Stop.BatchWidth = 0
		}
		rep.Grid.Base.Stop.BatchWidth = 0
		reports = append(reports, rep)
	}
	var want bytes.Buffer
	if err := reports[0].WriteJSON(&want); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(reports); i++ {
		var got bytes.Buffer
		if err := reports[i].WriteJSON(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("batch widths produced different reports:\n--- width[0] ---\n%s\n--- width[%d] ---\n%s", want.String(), i, got.String())
		}
	}
	for _, c := range reports[0].Cells {
		if c.Error != "" {
			t.Errorf("cell %s failed: %s", c.Label, c.Error)
		}
	}
}

// TestExpandOrderAndSeeds pins the expansion order (families outermost,
// algos inner) and the seed-per-unit scheme.
func TestExpandOrderAndSeeds(t *testing.T) {
	grid := Grid{
		Base:     scenario.Spec{Graph: scenario.GraphSpec{Cut: 1}},
		Families: []string{"dumbbell", "ringofcliques"},
		Ns:       []int{16, 32},
		Algos:    []string{"vanilla", "A"},
	}
	units, err := Expand(grid, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 8 {
		t.Fatalf("expanded %d units, want 8", len(units))
	}
	wantOrder := []struct {
		family string
		n      int
		algo   string
	}{
		{"dumbbell", 16, "vanilla"}, {"dumbbell", 16, "A"},
		{"dumbbell", 32, "vanilla"}, {"dumbbell", 32, "A"},
		{"ringofcliques", 16, "vanilla"}, {"ringofcliques", 16, "A"},
		{"ringofcliques", 32, "vanilla"}, {"ringofcliques", 32, "A"},
	}
	seeds := map[uint64]bool{}
	for i, u := range units {
		w := wantOrder[i]
		if u.Spec.Graph.Family != w.family || u.Spec.Graph.N != w.n || u.Spec.Algo.Name != w.algo {
			t.Errorf("unit %d = %s/%d/%s, want %s/%d/%s", i,
				u.Spec.Graph.Family, u.Spec.Graph.N, u.Spec.Algo.Name, w.family, w.n, w.algo)
		}
		if u.Spec.Seed == 0 {
			t.Errorf("unit %d has zero seed", i)
		}
		if seeds[u.Spec.Seed] {
			t.Errorf("unit %d reuses seed %d", i, u.Spec.Seed)
		}
		seeds[u.Spec.Seed] = true
		if want := unitSeed(5, i); u.Spec.Seed != want {
			t.Errorf("unit %d seed %d, want unitSeed(5,%d)=%d", i, u.Spec.Seed, i, want)
		}
	}
	// Unknown axis values fail at expansion, before any simulation.
	if _, err := Expand(Grid{Families: []string{"nosuch"}}, 1); err == nil {
		t.Error("expected error for unknown family axis value")
	}
}

// TestNsAxisClearsDerivedShape: sweeping n must re-derive side splits
// rather than inheriting the base spec's.
func TestNsAxisClearsDerivedShape(t *testing.T) {
	grid := Grid{
		Base: scenario.Spec{Graph: scenario.GraphSpec{Family: "dumbbell", N1: 8, N2: 8, Cut: 1}},
		Ns:   []int{24},
	}
	units, err := Expand(grid, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := units[0].Spec.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if r.Graph.NumNodes() != 24 {
		t.Fatalf("graph has %d nodes, want 24 (stale side split?)", r.Graph.NumNodes())
	}
}

// TestE4HeadlineSeparation reproduces the paper's headline claim from a
// scenario grid: on the symmetric dumbbell, Algorithm A beats every
// convex baseline, and the gap widens with n (convex Ω(n) vs A polylog).
func TestE4HeadlineSeparation(t *testing.T) {
	grid := Grid{
		Base: scenario.Spec{
			Graph: scenario.GraphSpec{Family: "dumbbell", Cut: 1},
			Stop:  scenario.StopSpec{Trials: 3},
		},
		Ns:    []int{32, 64},
		Algos: []string{"vanilla", "A"},
	}
	rep, err := Run(grid, Config{Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tav := map[string]float64{}
	for _, c := range rep.Cells {
		if c.Error != "" {
			t.Fatalf("cell %s failed: %s", c.Label, c.Error)
		}
		tav[c.Label] = c.Tav
	}
	speedup32 := tav["dumbbell/n=32/cut=1/vanilla"] / tav["dumbbell/n=32/cut=1/A"]
	speedup64 := tav["dumbbell/n=64/cut=1/vanilla"] / tav["dumbbell/n=64/cut=1/A"]
	if speedup32 <= 1 {
		t.Errorf("n=32: A should beat vanilla, speedup = %v", speedup32)
	}
	if speedup64 <= 1 {
		t.Errorf("n=64: A should beat vanilla, speedup = %v", speedup64)
	}
	if speedup64 <= speedup32 {
		t.Errorf("separation should widen with n: speedup(32)=%v, speedup(64)=%v", speedup32, speedup64)
	}
}

// TestReportRoundTrip: WriteJSON/ReadReport is lossless.
func TestReportRoundTrip(t *testing.T) {
	grid := Grid{
		Base:  scenario.Spec{Graph: scenario.GraphSpec{Family: "complete", N: 8}, Stop: scenario.StopSpec{Trials: 2}},
		Algos: []string{"vanilla"},
	}
	rep, err := Run(grid, Config{Workers: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(rep.Cells) || back.Seed != rep.Seed {
		t.Fatal("round-trip lost cells or seed")
	}
	if back.Cells[0] != rep.Cells[0] {
		t.Fatalf("cell changed in round trip:\n got %+v\nwant %+v", back.Cells[0], rep.Cells[0])
	}
	if tbl := rep.Table("t"); tbl.NumRows() != len(rep.Cells) {
		t.Errorf("table has %d rows for %d cells", tbl.NumRows(), len(rep.Cells))
	}
	if _, ok := rep.CellByLabel(rep.Cells[0].Label); !ok {
		t.Error("CellByLabel failed to find an existing label")
	}
}

// TestCellErrorIsolated: a failing cell doesn't abort the sweep.
func TestCellErrorIsolated(t *testing.T) {
	grid := Grid{
		Base: scenario.Spec{Stop: scenario.StopSpec{Trials: 1, MaxTime: 50}},
		// hierdumbbell needs n >= 8: the n=6 cell fails, n=16 succeeds.
		Families: []string{"hierdumbbell"},
		Ns:       []int{6, 16},
	}
	rep, err := Run(grid, Config{Workers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cells[0].Error == "" {
		t.Error("n=6 cell should have failed")
	}
	if rep.Cells[1].Error != "" {
		t.Errorf("n=16 cell failed: %s", rep.Cells[1].Error)
	}
}

// TestRatesAxis covers the clock-rate-model axis (E13's sweep dimension):
// expansion order, per-unit planting, and end-to-end cells.
func TestRatesAxis(t *testing.T) {
	grid := Grid{
		Base:  scenario.Spec{Stop: scenario.StopSpec{Trials: 1, MaxTime: 100}},
		Ns:    []int{12},
		Algos: []string{"vanilla"},
		Rates: []string{"uniform", "nodeclock", "random"},
	}
	units, err := Expand(grid, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 3 {
		t.Fatalf("expanded %d units, want 3", len(units))
	}
	for i, want := range []string{"uniform", "nodeclock", "random"} {
		if got := units[i].Spec.Rates; got != want {
			t.Errorf("unit %d rates %q, want %q", i, got, want)
		}
	}
	rep, err := Run(grid, Config{Workers: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Cells {
		if c.Error != "" {
			t.Errorf("cell %s: %s", c.Label, c.Error)
		}
		if c.Tav <= 0 {
			t.Errorf("cell %s (rates=%s): Tav %v", c.Label, c.Spec.Rates, c.Tav)
		}
	}
}

// TestMetricsObservationOnly: a sweep with Config.Metrics set must (a)
// produce a byte-identical report to the uninstrumented run, and (b)
// account for every cell exactly once in the started/completed counters
// and the wall-time histogram, with errored counting only failed cells.
func TestMetricsObservationOnly(t *testing.T) {
	grid := Grid{
		Base: scenario.Spec{
			Stop: scenario.StopSpec{Trials: 2, MaxTime: 200},
		},
		Families: []string{"dumbbell", "planted"},
		Ns:       []int{12, 16},
		Algos:    []string{"vanilla", "A"},
	}
	plain, err := Run(grid, Config{Workers: 4, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	instr, err := Run(grid, Config{Workers: 4, Seed: 11, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := plain.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := instr.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("instrumented sweep report differs from uninstrumented")
	}

	snap := reg.Snapshot()
	want := int64(len(instr.Cells))
	if got := snap.Counters["sweep.cells.started"]; got != want {
		t.Errorf("started %d, want %d", got, want)
	}
	if got := snap.Counters["sweep.cells.completed"]; got != want {
		t.Errorf("completed %d, want %d", got, want)
	}
	if got := snap.Counters["sweep.cells.errored"]; got != 0 {
		t.Errorf("errored %d on an all-green sweep", got)
	}
	h := snap.Histograms["sweep.cell.wall_ns"]
	if h.Count != want {
		t.Errorf("wall histogram has %d samples, want %d", h.Count, want)
	}
	if h.Sum <= 0 {
		t.Error("wall histogram sum not positive")
	}
}

// A failing cell increments errored but still completes.
func TestMetricsCountsErroredCells(t *testing.T) {
	grid := Grid{
		Base: scenario.Spec{
			Stop: scenario.StopSpec{Trials: 1, MaxTime: 50},
		},
		// hierdumbbell needs n >= 8: the n=6 cell fails, n=16 succeeds
		// (same fixture as TestCellErrorIsolated).
		Families: []string{"hierdumbbell"},
		Ns:       []int{6, 16},
	}
	reg := metrics.NewRegistry()
	rep, err := Run(grid, Config{Workers: 2, Seed: 7, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	var failed int64
	for _, c := range rep.Cells {
		if c.Error != "" {
			failed++
		}
	}
	snap := reg.Snapshot()
	if got := snap.Counters["sweep.cells.errored"]; got != failed {
		t.Errorf("errored counter %d, want %d", got, failed)
	}
	if got := snap.Counters["sweep.cells.completed"]; got != int64(len(rep.Cells)) {
		t.Errorf("completed counter %d, want %d", got, len(rep.Cells))
	}
}
