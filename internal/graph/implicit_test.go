package graph

import (
	"errors"
	"math"
	"testing"

	"sparsecut/internal/rng"
)

// implicitCase pairs an implicit constructor with its materialised
// reference for the equivalence suite.
type implicitCase struct {
	name string
	imp  func() (Implicit, error)
	mat  func() *Graph
	n1   int // expected SplitPoint (0 = no planted cut)
}

func implicitCases() []implicitCase {
	var cases []implicitCase
	// Dumbbell across sizes (incl. asymmetric, minimal sides) and cut widths.
	for _, c := range []struct{ n1, n2, cut int }{
		{1, 1, 1}, {2, 3, 1}, {5, 5, 1}, {8, 8, 3}, {7, 12, 7}, {16, 16, 16}, {13, 9, 4},
	} {
		c := c
		cases = append(cases, implicitCase{
			name: "dumbbell",
			imp:  func() (Implicit, error) { return ImplicitDumbbell(c.n1, c.n2, c.cut) },
			mat:  func() *Graph { g, _, _ := Dumbbell(c.n1, c.n2, c.cut); return g },
			n1:   c.n1,
		})
	}
	for _, c := range []struct{ n, cut int }{{2, 1}, {7, 2}, {20, 5}} {
		c := c
		cases = append(cases, implicitCase{
			name: "symdumbbell",
			imp:  func() (Implicit, error) { return ImplicitSymmetricDumbbell(c.n, c.cut) },
			mat:  func() *Graph { g, _, _ := SymmetricDumbbell(c.n, c.cut); return g },
			n1:   c.n / 2,
		})
	}
	// Ring of cliques, including the degenerate m=1 cycle.
	for _, c := range []struct{ blocks, m, bridges int }{
		{3, 1, 1}, {3, 4, 1}, {4, 6, 2}, {5, 3, 3}, {6, 5, 1},
	} {
		c := c
		cases = append(cases, implicitCase{
			name: "ringofcliques",
			imp:  func() (Implicit, error) { return ImplicitRingOfCliques(c.blocks, c.m, c.bridges) },
			mat:  func() *Graph { g, _, _ := RingOfCliques(c.blocks, c.m, c.bridges); return g },
			n1:   (c.blocks / 2) * c.m,
		})
	}
	for _, c := range []struct{ n, inner, outer int }{
		{8, 1, 1}, {16, 2, 3}, {21, 2, 2}, {32, 4, 8},
	} {
		c := c
		cases = append(cases, implicitCase{
			name: "hierdumbbell",
			imp:  func() (Implicit, error) { return ImplicitHierarchicalDumbbell(c.n, c.inner, c.outer) },
			mat:  func() *Graph { g, _, _ := HierarchicalDumbbell(c.n, c.inner, c.outer); return g },
			n1:   c.n / 2,
		})
	}
	for _, c := range []struct{ rows, cols int }{
		{1, 1}, {1, 7}, {7, 1}, {2, 2}, {4, 5}, {6, 6}, {3, 9},
	} {
		c := c
		n1 := 0
		if c.rows >= 2 {
			n1 = (c.rows / 2) * c.cols
		}
		cases = append(cases, implicitCase{
			name: "grid",
			imp:  func() (Implicit, error) { return ImplicitGrid(c.rows, c.cols) },
			mat:  func() *Graph { return Grid(c.rows, c.cols) },
			n1:   n1,
		})
	}
	for _, c := range []struct{ rows, cols int }{{3, 3}, {3, 5}, {4, 4}, {5, 7}} {
		c := c
		cases = append(cases, implicitCase{
			name: "torus",
			imp:  func() (Implicit, error) { return ImplicitTorus(c.rows, c.cols) },
			mat:  func() *Graph { return Torus(c.rows, c.cols) },
			n1:   (c.rows / 2) * c.cols,
		})
	}
	return cases
}

// TestImplicitMatchesMaterialized is the satellite equivalence suite: for
// every implicit family, node/edge counts, the edge-id enumeration, the
// per-node degrees, and the sorted neighbourhoods (peer AND edge id) must
// be element-identical to the materialised Builder output.
func TestImplicitMatchesMaterialized(t *testing.T) {
	for _, tc := range implicitCases() {
		ig, err := tc.imp()
		if err != nil {
			t.Fatalf("%s: implicit constructor: %v", tc.name, err)
		}
		g := tc.mat()
		if g == nil {
			t.Fatalf("%s: materialised constructor failed", tc.name)
		}
		label := ig.Name()
		if ig.NumNodes() != g.NumNodes() {
			t.Fatalf("%s: NumNodes %d != %d", label, ig.NumNodes(), g.NumNodes())
		}
		if ig.NumEdges() != int64(g.NumEdges()) {
			t.Fatalf("%s: NumEdges %d != %d", label, ig.NumEdges(), g.NumEdges())
		}
		if ig.SplitPoint() != tc.n1 {
			t.Errorf("%s: SplitPoint %d != %d", label, ig.SplitPoint(), tc.n1)
		}
		for id, e := range g.Edges() {
			u, v := ig.EdgeAt(int64(id))
			if NodeID(u) != e.U || NodeID(v) != e.V {
				t.Fatalf("%s: EdgeAt(%d) = (%d,%d), want %v", label, id, u, v, e)
			}
		}
		for u := 0; u < g.NumNodes(); u++ {
			adj := g.Neighbors(NodeID(u))
			if d := ig.Degree(u); d != len(adj) {
				t.Fatalf("%s: Degree(%d) = %d, want %d", label, u, d, len(adj))
			}
			for k, he := range adj {
				peer, edge := ig.Neighbor(u, k)
				if NodeID(peer) != he.Peer || EdgeID(edge) != he.Edge {
					t.Fatalf("%s: Neighbor(%d,%d) = (%d,%d), want (%d,%d)",
						label, u, k, peer, edge, he.Peer, he.Edge)
				}
			}
		}
	}
}

// TestImplicitTilingInvariants checks the tiling contract every family
// must satisfy: tiles are contiguous ascending ranges covering [0, n),
// internal + boundary edge counts total NumEdges, every boundary edge
// crosses tiles and exists in the materialised graph, and tile Fill
// produces only valid internal edges of the owning tile.
func TestImplicitTilingInvariants(t *testing.T) {
	for _, tc := range implicitCases() {
		ig, err := tc.imp()
		if err != nil {
			t.Fatalf("%s: implicit constructor: %v", tc.name, err)
		}
		g := tc.mat()
		label := ig.Name()
		til := ig.Tiling()
		if til.N != ig.NumNodes() {
			t.Fatalf("%s: tiling N %d != %d", label, til.N, ig.NumNodes())
		}
		var next int32
		for i, tl := range til.Tiles {
			if tl.Lo != next || tl.Hi <= tl.Lo {
				t.Fatalf("%s: tile %d range [%d,%d) not contiguous after %d", label, i, tl.Lo, tl.Hi, next)
			}
			next = tl.Hi
		}
		if int(next) != til.N {
			t.Fatalf("%s: tiles cover [0,%d), want [0,%d)", label, next, til.N)
		}
		if got := til.InternalEdges() + int64(len(til.Boundary)); got != ig.NumEdges() {
			t.Fatalf("%s: internal %d + boundary %d != NumEdges %d",
				label, til.InternalEdges(), len(til.Boundary), ig.NumEdges())
		}
		tileOf := func(u NodeID) int {
			for i, tl := range til.Tiles {
				if int32(u) >= tl.Lo && int32(u) < tl.Hi {
					return i
				}
			}
			t.Fatalf("%s: node %d in no tile", label, u)
			return -1
		}
		seen := make(map[Edge]struct{})
		for _, e := range til.Boundary {
			if tileOf(e.U) == tileOf(e.V) {
				t.Fatalf("%s: boundary edge %v inside tile %d", label, e, tileOf(e.U))
			}
			if _, ok := g.FindEdge(e.U, e.V); !ok {
				t.Fatalf("%s: boundary edge %v not in graph", label, e)
			}
			if _, dup := seen[e]; dup {
				t.Fatalf("%s: boundary edge %v listed twice", label, e)
			}
			seen[e] = struct{}{}
		}
		// Fill must emit existing edges wholly inside the tile.
		r := rng.New(7)
		var us, vs [64]int32
		for i, tl := range til.Tiles {
			if tl.Edges == 0 {
				continue
			}
			tl.Fill(r, us[:], vs[:])
			for k := range us {
				u, v := us[k], vs[k]
				if u < tl.Lo || u >= tl.Hi || v < tl.Lo || v >= tl.Hi {
					t.Fatalf("%s: tile %d Fill emitted (%d,%d) outside [%d,%d)", label, i, u, v, tl.Lo, tl.Hi)
				}
				if _, ok := g.FindEdge(NodeID(u), NodeID(v)); !ok {
					t.Fatalf("%s: tile %d Fill emitted non-edge (%d,%d)", label, i, u, v)
				}
			}
		}
	}
}

// TestImplicitSampleEdgeUniform spot-checks the dense-id uniform sampler:
// on a small dumbbell every edge must be hit with near-uniform frequency.
func TestImplicitSampleEdgeUniform(t *testing.T) {
	ig, err := ImplicitDumbbell(5, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := int(ig.NumEdges())
	counts := make([]int, m)
	ids := make(map[[2]int]int, m)
	for id := 0; id < m; id++ {
		u, v := ig.EdgeAt(int64(id))
		ids[[2]int{u, v}] = id
	}
	r := rng.New(42)
	const draws = 50000
	for i := 0; i < draws; i++ {
		u, v := SampleEdge(ig, r)
		id, ok := ids[[2]int{u, v}]
		if !ok {
			t.Fatalf("sampled non-edge (%d,%d)", u, v)
		}
		counts[id]++
	}
	want := float64(draws) / float64(m)
	for id, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("edge %d drawn %d times, want ~%.0f", id, c, want)
		}
	}
}

// TestImplicitConstructorErrors mirrors the materialised validation.
func TestImplicitConstructorErrors(t *testing.T) {
	bad := []func() (Implicit, error){
		func() (Implicit, error) { return ImplicitDumbbell(0, 5, 1) },
		func() (Implicit, error) { return ImplicitDumbbell(5, 5, 0) },
		func() (Implicit, error) { return ImplicitDumbbell(5, 5, 6) },
		func() (Implicit, error) { return ImplicitSymmetricDumbbell(1, 1) },
		func() (Implicit, error) { return ImplicitRingOfCliques(2, 4, 1) },
		func() (Implicit, error) { return ImplicitRingOfCliques(4, 4, 5) },
		func() (Implicit, error) { return ImplicitHierarchicalDumbbell(7, 1, 1) },
		func() (Implicit, error) { return ImplicitHierarchicalDumbbell(16, 5, 1) },
		func() (Implicit, error) { return ImplicitGrid(0, 3) },
		func() (Implicit, error) { return ImplicitTorus(2, 5) },
	}
	for i, f := range bad {
		if _, err := f(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// TestCliqueEdgeAtRoundTrip exercises the triangular inversion across the
// full id range for several clique sizes.
func TestCliqueEdgeAtRoundTrip(t *testing.T) {
	for _, s := range []int{2, 3, 5, 17, 100} {
		for id := int64(0); id < cliqueEdges(s); id++ {
			u, v := cliqueEdgeAt(s, id)
			if u < 0 || v <= u || v >= s {
				t.Fatalf("s=%d id=%d: invalid edge (%d,%d)", s, id, u, v)
			}
			if back := cliqueEdgeIndex(s, u, v); back != id {
				t.Fatalf("s=%d: index(%d,%d) = %d, want %d", s, u, v, back, id)
			}
		}
	}
}

// TestMillionNodeImplicit is the scale smoke: a 10^6-node dumbbell's
// index arithmetic must work where materialisation is impossible
// (~2.5·10^11 edges).
func TestMillionNodeImplicit(t *testing.T) {
	ig, err := ImplicitDumbbell(500000, 500000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if ig.NumNodes() != 1000000 {
		t.Fatalf("NumNodes = %d", ig.NumNodes())
	}
	want := 2*cliqueEdges(500000) + 8
	if ig.NumEdges() != want {
		t.Fatalf("NumEdges = %d, want %d", ig.NumEdges(), want)
	}
	// Round-trip a spread of edge ids through EdgeAt/Neighbor.
	r := rng.New(3)
	for i := 0; i < 1000; i++ {
		id := int64(r.Intn(int(ig.NumEdges())))
		u, v := ig.EdgeAt(id)
		found := false
		for k := 0; k < ig.Degree(u); k++ {
			if p, e := ig.Neighbor(u, k); p == v {
				if e != id {
					t.Fatalf("edge id mismatch at (%d,%d): %d != %d", u, v, e, id)
				}
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("EdgeAt(%d) = (%d,%d) but v not a neighbor of u", id, u, v)
		}
	}
	// The cut node's degree: clique (499999) + its cross edge.
	if d := ig.Degree(499999); d != 500000 {
		t.Fatalf("Degree(499999) = %d, want 500000", d)
	}
	til := ig.Tiling()
	if len(til.Tiles) != 2 || len(til.Boundary) != 8 {
		t.Fatalf("tiling: %d tiles, %d boundary", len(til.Tiles), len(til.Boundary))
	}
}

// TestBuildIndexSpaceGuard pins the int32 guard at its exact boundaries:
// the counts just inside the id space pass, one past fails with
// ErrTooLarge, and NewBuilder rejects an impossible node count up front.
func TestBuildIndexSpaceGuard(t *testing.T) {
	if err := checkIndexSpace(math.MaxInt32, maxBuildEdges); err != nil {
		t.Errorf("at the boundary: unexpected error %v", err)
	}
	if err := checkIndexSpace(math.MaxInt32+1, 0); !errors.Is(err, ErrTooLarge) {
		t.Errorf("nodes past boundary: got %v, want ErrTooLarge", err)
	}
	if err := checkIndexSpace(0, maxBuildEdges+1); !errors.Is(err, ErrTooLarge) {
		t.Errorf("edges past boundary: got %v, want ErrTooLarge", err)
	}
	b := NewBuilder(math.MaxInt32 + 1)
	if _, err := b.Build(); !errors.Is(err, ErrTooLarge) {
		t.Errorf("NewBuilder(2^31): Build err = %v, want ErrTooLarge", err)
	}
}
