package avgtime

import (
	"math"
	"reflect"
	"testing"

	"sparsecut/internal/gossip"
	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
	"sparsecut/internal/sim"
	"sparsecut/internal/stats"
)

// vanillaEnsembleFactory adapts gossip.NewVanillaEnsemble to the batched
// estimator's factory signature.
func vanillaEnsembleFactory(g *graph.Graph, x0 []float64) EnsembleFactory {
	return func(replicas int, _ []*rng.RNG) (sim.BatchKernel, error) {
		return gossip.NewVanillaEnsemble(g, x0, replicas)
	}
}

// The batched estimator's Result must be byte-identical for any
// BatchWidth: trial streams derive from the seed in trial order, never
// from the grouping.
func TestEstimateBatchedWidthDeterminism(t *testing.T) {
	g, part, err := graph.Dumbbell(10, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	x0 := gossip.CutIndicator(part)
	var results []Result
	for _, width := range []int{0, 1, 3, 64} {
		res, err := EstimateBatched(g, nil, vanillaEnsembleFactory(g, x0), Config{
			Trials:       9,
			Seed:         11,
			MarginFactor: 1,
			BatchWidth:   width,
		})
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if !reflect.DeepEqual(results[0], results[i]) {
			t.Errorf("results diverged between widths: %+v vs %+v", results[0], results[i])
		}
	}
	if results[0].Tav <= 0 {
		t.Errorf("expected positive Tav, got %v", results[0].Tav)
	}
}

// The time-bridged batched estimator must sample the same last-exceedance
// distribution as the legacy per-event path: two-sample KS test of the
// per-trial Tav samples on a sparse-cut dumbbell and a complete graph.
// This is the distributional contract of the Gamma bridging (a chunk's
// elapsed time is the sum of its per-event exponential gaps) and of the
// Beta interpolation of within-chunk exceedance times.
func TestBatchedVsLegacyTavKS(t *testing.T) {
	const trials = 120
	// Two-sample KS critical value at alpha = 0.001 for n = m = trials.
	crit := 1.949 * math.Sqrt(2.0/trials)
	cases := []struct {
		name  string
		build func() (*graph.Graph, []float64)
	}{
		{"dumbbell", func() (*graph.Graph, []float64) {
			g, part, err := graph.Dumbbell(12, 12, 1)
			if err != nil {
				t.Fatal(err)
			}
			return g, gossip.CutIndicator(part)
		}},
		{"complete", func() (*graph.Graph, []float64) {
			g := graph.Complete(16)
			x0, err := gossip.Spike(16, 0)
			if err != nil {
				t.Fatal(err)
			}
			return g, x0
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, x0 := tc.build()
			cfg := Config{Trials: trials, Seed: 1234, MarginFactor: 1}
			legacy, err := Estimate(g, VanillaFactory(g, x0), cfg)
			if err != nil {
				t.Fatal(err)
			}
			batched, err := EstimateBatched(g, nil, vanillaEnsembleFactory(g, x0), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if legacy.Censored != 0 || batched.Censored != 0 {
				t.Fatalf("unexpected censoring: legacy %d, batched %d", legacy.Censored, batched.Censored)
			}
			d := stats.KSDistance(legacy.PerTrial, batched.PerTrial)
			if d > crit {
				t.Errorf("KS distance %.4f between legacy and batched Tav samples exceeds %.4f (legacy Tav=%.4g, batched Tav=%.4g)",
					d, crit, legacy.Tav, batched.Tav)
			}
		})
	}
}

// Same KS contract under heterogeneous rates: the superposition is still
// Poisson at the total rate, with picks through the shared alias table.
func TestBatchedVsLegacyTavKSHeterogeneous(t *testing.T) {
	const trials = 100
	crit := 1.949 * math.Sqrt(2.0/trials)
	g, part, err := graph.Dumbbell(10, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	x0 := gossip.CutIndicator(part)
	r := rng.New(5)
	rates := make([]float64, g.NumEdges())
	for i := range rates {
		rates[i] = 0.5 + 1.5*r.Float64()
	}
	cfg := Config{Trials: trials, Seed: 99, MarginFactor: 1}
	legacy, err := EstimateWithRates(g, rates, VanillaFactory(g, x0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := EstimateBatched(g, rates, vanillaEnsembleFactory(g, x0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := stats.KSDistance(legacy.PerTrial, batched.PerTrial); d > crit {
		t.Errorf("KS distance %.4f exceeds %.4f", d, crit)
	}
}

// Push-sum ensembles consume the per-trial algorithm streams; the batched
// estimator must remain width-deterministic for them too.
func TestEstimateBatchedPushSumWidthDeterminism(t *testing.T) {
	g := graph.Complete(10)
	x0, err := gossip.Spike(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	factory := func(_ int, algStreams []*rng.RNG) (sim.BatchKernel, error) {
		return gossip.NewPushSumEnsemble(g, x0, algStreams)
	}
	var results []Result
	for _, width := range []int{0, 2} {
		res, err := EstimateBatched(g, nil, factory, Config{Trials: 6, Seed: 3, BatchWidth: width})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Errorf("push-sum results diverged between widths: %+v vs %+v", results[0], results[1])
	}
}

// An already-averaged initial vector yields zero averaging time without
// simulating, as in the legacy path.
func TestEstimateBatchedAlreadyAveraged(t *testing.T) {
	g := graph.Complete(6)
	x0 := []float64{3, 3, 3, 3, 3, 3}
	res, err := EstimateBatched(g, nil, vanillaEnsembleFactory(g, x0), Config{Trials: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tav != 0 || res.Events != 0 || len(res.PerTrial) != 4 {
		t.Errorf("want all-zero result without events, got %+v", res)
	}
}

func TestEstimateBatchedValidation(t *testing.T) {
	g := graph.Complete(6)
	if _, err := EstimateBatched(g, nil, nil, Config{}); err == nil {
		t.Error("nil factory not rejected")
	}
	x0, err := gossip.Spike(6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstimateBatched(g, nil, vanillaEnsembleFactory(g, x0), Config{Trials: -1}); err == nil {
		t.Error("negative trials not rejected")
	}
	if _, err := EstimateBatched(g, []float64{1}, vanillaEnsembleFactory(g, x0), Config{}); err == nil {
		t.Error("rate length mismatch not rejected")
	}
}

// The batched estimate must agree with the legacy point estimate within
// Monte-Carlo noise on a well-conditioned graph (coarse sanity on top of
// the KS tests).
func TestEstimateBatchedCloseToLegacy(t *testing.T) {
	g := graph.Complete(24)
	x0, err := gossip.Spike(24, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Trials: 31, Seed: 2, MarginFactor: 1}
	legacy, err := Estimate(g, VanillaFactory(g, x0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := EstimateBatched(g, nil, vanillaEnsembleFactory(g, x0), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := batched.Tav / legacy.Tav; ratio < 0.5 || ratio > 2 {
		t.Errorf("batched Tav %v vs legacy %v (ratio %v)", batched.Tav, legacy.Tav, ratio)
	}
}

// Config.Observer is telemetry-only: the Result must be byte-identical
// with and without one, and the forwarded meter must stay monotone across
// batch boundaries (the estimator offsets each engine's counts by the
// trials already finished).
func TestEstimateBatchedObserverInert(t *testing.T) {
	g, part, err := graph.Dumbbell(10, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	x0 := gossip.CutIndicator(part)
	base := Config{Trials: 9, Seed: 11, MarginFactor: 1, BatchWidth: 3}

	plain, err := EstimateBatched(g, nil, vanillaEnsembleFactory(g, x0), base)
	if err != nil {
		t.Fatal(err)
	}

	var got []sim.BatchStats
	cfg := base
	cfg.Observer = func(st sim.BatchStats) { got = append(got, st) }
	observed, err := EstimateBatched(g, nil, vanillaEnsembleFactory(g, x0), cfg)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(plain, observed) {
		t.Errorf("result diverged under observation: %+v vs %+v", plain, observed)
	}
	if len(got) == 0 {
		t.Fatal("observer never called")
	}
	for i := 1; i < len(got); i++ {
		if got[i].Events <= got[i-1].Events {
			t.Errorf("meter not monotone across batches: %+v then %+v", got[i-1], got[i])
		}
	}
	if last := got[len(got)-1]; last.Events != observed.Events {
		t.Errorf("final observed events %d != Result.Events %d", last.Events, observed.Events)
	}
}
