package graph

// Implicit graphs: the structured sparse-cut families (dumbbell, ring of
// cliques, hierarchical dumbbell, lattices) need no stored edge list —
// degrees, neighbourhoods and the edge <-> id bijection are all index
// arithmetic. An implicit graph therefore costs O(1) memory per node
// (plus the handful of explicit cross-block edges), which is what lets a
// single 10^6-node dumbbell replica — ~2.5·10^11 edges, hopelessly beyond
// any CSR materialisation — run in RAM.
//
// The representation is contract-compatible with Builder.Build: edge ids
// follow the generator's insertion order, EdgeAt returns normalised
// endpoints (u < v), and Neighbor enumerates peers in ascending order,
// exactly matching the materialised CSR adjacency. The package tests
// assert element-identical enumeration against the materialised
// constructors for every family, across sizes and cut widths.
//
// Implicit graphs also carry a cut-aware Tiling — the decomposition the
// sharded PDES engine (internal/sim.ShardEngine) advances in parallel:
// tiles are contiguous node ranges aligned with the dense blocks (never
// splitting a clique), so the explicit boundary edge list stays as small
// as the planted cuts themselves.

import (
	"fmt"
	"math"
	"sort"

	"sparsecut/internal/rng"
)

// Implicit is a graph defined by index arithmetic instead of a stored
// edge list. Node ids are dense in [0, NumNodes) and edge ids dense in
// [0, NumEdges); edge ids are int64 because the clique-heavy families
// overflow int32 well below the million-node scale this representation
// exists for.
//
// The enumeration contract matches the materialised Builder output for
// the same generator: identical edge-id insertion order, normalised
// EdgeAt endpoints (u < v), and Neighbor in ascending peer order.
type Implicit interface {
	// Name returns the generator-style description, e.g.
	// "dumbbell(n1=500000,n2=500000,cut=1)".
	Name() string
	// NumNodes returns |V|.
	NumNodes() int
	// NumEdges returns |E| (int64: clique families overflow int32).
	NumEdges() int64
	// Degree returns the number of neighbours of node u.
	Degree(u int) int
	// Neighbor returns u's k-th neighbour in ascending peer order,
	// together with the undirected edge id connecting them. It panics if
	// k is outside [0, Degree(u)).
	Neighbor(u, k int) (peer int, edge int64)
	// EdgeAt returns the endpoints of edge id, normalised so u < v.
	EdgeAt(id int64) (u, v int)
	// SplitPoint returns the planted sparse cut's prefix size: nodes
	// [0, SplitPoint) form side 1 (0 when no cut is planted).
	SplitPoint() int
	// Tiling returns the canonical cut-aware tiling — a deterministic
	// function of the graph alone, independent of worker counts.
	Tiling() *Tiling
}

// SampleEdge draws one uniformly random edge of g: edge ids are dense, so
// a uniform id inverted through EdgeAt is a uniform edge — no alias table,
// no materialisation. This is the implicit-aware uniform edge sampler;
// the sharded engine uses the per-tile Fill samplers instead, which avoid
// the id inversion entirely.
func SampleEdge(g Implicit, r *rng.RNG) (u, v int) {
	return g.EdgeAt(int64(r.Intn(int(g.NumEdges()))))
}

// Tile is one contiguous node range of a Tiling plus its internal edge
// population. Internal edges are never enumerated: Edges counts them and
// Fill samples them.
type Tile struct {
	// Lo, Hi bound the tile's nodes: [Lo, Hi).
	Lo, Hi int32
	// Edges counts the edges with both endpoints inside the tile.
	Edges int64
	// Fill writes len(us) == len(vs) endpoint pairs of independent
	// uniform internal edges, consuming only r. It must not be called
	// when Edges == 0.
	Fill func(r *rng.RNG, us, vs []int32)
}

// Tiling is a cut-aware decomposition of an implicit graph: contiguous
// tiles aligned with the dense blocks, plus the explicit list of boundary
// edges crossing tiles — small by construction, because tiles never split
// a clique. Every edge is either internal to exactly one tile or on the
// boundary: Σ Tiles[i].Edges + len(Boundary) == NumEdges.
type Tiling struct {
	// N is the node count; tiles cover [0, N) contiguously.
	N int
	// Tiles are the shards, ascending by node range.
	Tiles []Tile
	// Boundary lists every cross-tile edge explicitly (normalised U < V).
	Boundary []Edge
}

// Bounds returns the tile node ranges as [lo, hi) pairs — the shape the
// sharded run state (gossip.FlatState) keys its per-tile moments on.
func (t *Tiling) Bounds() [][2]int32 {
	out := make([][2]int32, len(t.Tiles))
	for i, tl := range t.Tiles {
		out[i] = [2]int32{tl.Lo, tl.Hi}
	}
	return out
}

// InternalEdges sums the per-tile internal edge counts.
func (t *Tiling) InternalEdges() int64 {
	var sum int64
	for i := range t.Tiles {
		sum += t.Tiles[i].Edges
	}
	return sum
}

// --- clique index arithmetic -------------------------------------------

// cliqueEdges returns C(s, 2) without intermediate overflow for any s
// that fits an int32.
func cliqueEdges(s int) int64 {
	s64 := int64(s)
	return s64 * (s64 - 1) / 2
}

// cliqueRowOff returns the number of clique edges (u', v') with u' < u —
// the offset of row u in the row-major triangular enumeration the
// generators use (for u in u+1..s-1: edge (u, v)).
func cliqueRowOff(s, u int64) int64 { return u * (2*s - u - 1) / 2 }

// cliqueEdgeIndex returns the triangular index of edge (u, v) in a clique
// of size s, 0 <= u < v < s.
func cliqueEdgeIndex(s, u, v int) int64 {
	return cliqueRowOff(int64(s), int64(u)) + int64(v-u-1)
}

// cliqueEdgeAt inverts cliqueEdgeIndex: given t in [0, C(s,2)), it
// returns the edge (u, v) with u < v. The float solve lands within one
// row of the answer; the fix-up loops run at most a couple of steps.
func cliqueEdgeAt(s int, t int64) (u, v int) {
	sf := float64(s) - 0.5
	uf := sf - math.Sqrt(sf*sf-2*float64(t))
	uu := int64(uf)
	if uu < 0 {
		uu = 0
	}
	if m := int64(s) - 2; uu > m {
		uu = m
	}
	for uu > 0 && cliqueRowOff(int64(s), uu) > t {
		uu--
	}
	for cliqueRowOff(int64(s), uu+1) <= t {
		uu++
	}
	u = int(uu)
	v = u + 1 + int(t-cliqueRowOff(int64(s), uu))
	return u, v
}

// cliqueFill samples uniform unordered pairs inside [lo, lo+size): two
// bounded uniforms and a shift, no triangular inversion on the hot path.
func cliqueFill(lo int32, size int) func(r *rng.RNG, us, vs []int32) {
	return func(r *rng.RNG, us, vs []int32) {
		for k := range us {
			i := r.Intn(size)
			j := r.Intn(size - 1)
			if j >= i {
				j++
			}
			us[k] = lo + int32(i)
			vs[k] = lo + int32(j)
		}
	}
}

// --- generic block graph ------------------------------------------------

// segment is one run of consecutive edge ids: either a clique block's
// triangular enumeration or a short explicit list of cross-block edges.
type segment struct {
	off   int64 // first edge id of the segment
	count int64
	lo    int32  // clique segments: block base node
	size  int    // clique segments: block size; 0 marks an explicit segment
	edges []Edge // explicit segments: the edges, normalised, in id order
}

// blockImplicit is the shared implicit engine for the clique-composite
// families: disjoint contiguous clique blocks plus a small set of
// explicit cross-block edges, with an arbitrary interleaving of clique
// and explicit segments in the edge-id order. Dumbbell, ring-of-cliques
// and the hierarchical dumbbell are all instances.
type blockImplicit struct {
	name   string
	n      int
	split  int
	blocks [][2]int32 // ascending, covering [0, n)
	segs   []segment
	total  int64

	// blockSeg[b] is the edge-id offset of block b's clique segment.
	blockSeg []int64

	// Cross half-edges sorted by (node, peer): the per-node "extras"
	// beyond the clique neighbourhood. 2·|cross| entries — tiny, because
	// cross edges are the planted cuts.
	extraNode []int32
	extraPeer []int32
	extraEdge []int64

	boundary []Edge // the cross edges in id order, for the tiling
}

// newBlockImplicit wires the shared machinery: blocks in node order, segs
// in edge-id order (clique segments referencing blocks by [lo,size),
// explicit segments carrying their edges). It validates that explicit
// edges cross blocks and are distinct.
func newBlockImplicit(name string, n, split int, blocks [][2]int32, segs []segment) (*blockImplicit, error) {
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("%w: %d nodes", ErrTooLarge, n)
	}
	g := &blockImplicit{name: name, n: n, split: split, blocks: blocks}
	g.blockSeg = make([]int64, len(blocks))
	seen := make(map[Edge]struct{})
	var off int64
	for _, s := range segs {
		s.off = off
		if s.size > 0 {
			s.count = cliqueEdges(s.size)
			b := g.blockOf(s.lo)
			g.blockSeg[b] = off
		} else {
			s.count = int64(len(s.edges))
			for i, e := range s.edges {
				id := off + int64(i)
				if g.blockOf(int32(e.U)) == g.blockOf(int32(e.V)) {
					return nil, fmt.Errorf("graph: implicit %s: cross edge %v inside one block", name, e)
				}
				if _, dup := seen[e]; dup {
					return nil, fmt.Errorf("graph: implicit %s: duplicate cross edge %v", name, e)
				}
				seen[e] = struct{}{}
				g.extraNode = append(g.extraNode, int32(e.U), int32(e.V))
				g.extraPeer = append(g.extraPeer, int32(e.V), int32(e.U))
				g.extraEdge = append(g.extraEdge, id, id)
				g.boundary = append(g.boundary, e)
			}
		}
		off += s.count
		if s.count > 0 {
			g.segs = append(g.segs, s)
		}
	}
	g.total = off
	// Sort the half-edges by (node, peer) so each node's extras list is
	// ascending by peer.
	idx := make([]int, len(g.extraNode))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if g.extraNode[ia] != g.extraNode[ib] {
			return g.extraNode[ia] < g.extraNode[ib]
		}
		return g.extraPeer[ia] < g.extraPeer[ib]
	})
	pn := make([]int32, len(idx))
	pp := make([]int32, len(idx))
	pe := make([]int64, len(idx))
	for i, j := range idx {
		pn[i], pp[i], pe[i] = g.extraNode[j], g.extraPeer[j], g.extraEdge[j]
	}
	g.extraNode, g.extraPeer, g.extraEdge = pn, pp, pe
	return g, nil
}

func (g *blockImplicit) Name() string    { return g.name }
func (g *blockImplicit) NumNodes() int   { return g.n }
func (g *blockImplicit) NumEdges() int64 { return g.total }
func (g *blockImplicit) SplitPoint() int { return g.split }

// blockOf locates the block containing node u (blocks are contiguous and
// ascending).
func (g *blockImplicit) blockOf(u int32) int {
	return sort.Search(len(g.blocks), func(i int) bool { return g.blocks[i][1] > u })
}

// extraRange returns the [lo, hi) slice bounds of node u's cross
// half-edges.
func (g *blockImplicit) extraRange(u int32) (int, int) {
	lo := sort.Search(len(g.extraNode), func(i int) bool { return g.extraNode[i] >= u })
	hi := lo
	for hi < len(g.extraNode) && g.extraNode[hi] == u {
		hi++
	}
	return lo, hi
}

func (g *blockImplicit) Degree(u int) int {
	b := g.blockOf(int32(u))
	lo, hi := g.extraRange(int32(u))
	return int(g.blocks[b][1]-g.blocks[b][0]) - 1 + (hi - lo)
}

func (g *blockImplicit) Neighbor(u, k int) (int, int64) {
	uu := int32(u)
	b := g.blockOf(uu)
	blo, bhi := g.blocks[b][0], g.blocks[b][1]
	elo, ehi := g.extraRange(uu)
	// Cross peers live entirely outside [blo, bhi), so the ascending
	// neighbour order is: extras below the block, the clique range, then
	// extras above the block.
	pre := elo
	for pre < ehi && g.extraPeer[pre] < blo {
		pre++
	}
	nPre := pre - elo
	if k < nPre {
		return int(g.extraPeer[elo+k]), g.extraEdge[elo+k]
	}
	k -= nPre
	if m := int(bhi - blo - 1); k < m {
		peer := blo + int32(k)
		if peer >= uu {
			peer++
		}
		a, bb := uu-blo, peer-blo
		if a > bb {
			a, bb = bb, a
		}
		return int(peer), g.blockSeg[b] + cliqueEdgeIndex(int(bhi-blo), int(a), int(bb))
	} else {
		k -= m
	}
	if pre+k < ehi {
		return int(g.extraPeer[pre+k]), g.extraEdge[pre+k]
	}
	panic(fmt.Sprintf("graph: implicit %s: neighbor index out of range for node %d", g.name, u))
}

func (g *blockImplicit) EdgeAt(id int64) (int, int) {
	if id < 0 || id >= g.total {
		panic(fmt.Sprintf("graph: implicit %s: edge id %d outside [0,%d)", g.name, id, g.total))
	}
	i := sort.Search(len(g.segs), func(i int) bool { return g.segs[i].off+g.segs[i].count > id })
	s := &g.segs[i]
	t := id - s.off
	if s.size > 0 {
		u, v := cliqueEdgeAt(s.size, t)
		return int(s.lo) + u, int(s.lo) + v
	}
	e := s.edges[t]
	return int(e.U), int(e.V)
}

// Tiling maps every clique block to one tile and every cross edge to the
// boundary.
func (g *blockImplicit) Tiling() *Tiling {
	t := &Tiling{N: g.n, Boundary: g.boundary}
	for _, b := range g.blocks {
		lo, hi := b[0], b[1]
		t.Tiles = append(t.Tiles, Tile{
			Lo:    lo,
			Hi:    hi,
			Edges: cliqueEdges(int(hi - lo)),
			Fill:  cliqueFill(lo, int(hi-lo)),
		})
	}
	return t
}

// --- family constructors ------------------------------------------------

// ImplicitDumbbell is Dumbbell without materialisation: identical node
// labelling, edge-id order and validation. cutEdges must lie in
// [1, min(n1, n2)], the range of distinct endpoint pairs — the same
// domain Dumbbell accepts.
func ImplicitDumbbell(n1, n2, cutEdges int) (Implicit, error) {
	if n1 < 1 || n2 < 1 {
		return nil, fmt.Errorf("graph: dumbbell sides must be >= 1, got %d, %d", n1, n2)
	}
	maxCut := min(n1, n2)
	if cutEdges < 1 || cutEdges > maxCut {
		return nil, fmt.Errorf("graph: dumbbell cutEdges %d outside [1, %d]", cutEdges, maxCut)
	}
	cut := make([]Edge, cutEdges)
	for k := 0; k < cutEdges; k++ {
		cut[k] = NewEdge(NodeID(n1-1-k), NodeID(n1+k))
	}
	return newBlockImplicit(
		fmt.Sprintf("dumbbell(n1=%d,n2=%d,cut=%d)", n1, n2, cutEdges),
		n1+n2, n1,
		[][2]int32{{0, int32(n1)}, {int32(n1), int32(n1 + n2)}},
		[]segment{
			{lo: 0, size: n1},
			{lo: int32(n1), size: n2},
			{edges: cut},
		})
}

// ImplicitSymmetricDumbbell is SymmetricDumbbell without materialisation.
func ImplicitSymmetricDumbbell(n, cutEdges int) (Implicit, error) {
	if n < 2 {
		return nil, fmt.Errorf("graph: symmetric dumbbell needs n >= 2, got %d", n)
	}
	return ImplicitDumbbell(n/2, n-n/2, cutEdges)
}

// ImplicitRingOfCliques is RingOfCliques without materialisation:
// identical node labelling, edge-id order (per block: clique edges, then
// that block's outgoing bridges) and validation.
func ImplicitRingOfCliques(blocks, m, bridges int) (Implicit, error) {
	if blocks < 3 {
		return nil, fmt.Errorf("graph: ring of cliques needs blocks >= 3, got %d", blocks)
	}
	if m < 1 {
		return nil, fmt.Errorf("graph: ring of cliques needs clique size >= 1, got %d", m)
	}
	if bridges < 1 || bridges > m {
		return nil, fmt.Errorf("graph: ring of cliques bridges %d outside [1, %d]", bridges, m)
	}
	n := blocks * m
	bb := make([][2]int32, blocks)
	var segs []segment
	for i := 0; i < blocks; i++ {
		base := i * m
		bb[i] = [2]int32{int32(base), int32(base + m)}
		segs = append(segs, segment{lo: int32(base), size: m})
		next := ((i + 1) % blocks) * m
		br := make([]Edge, bridges)
		for k := 0; k < bridges; k++ {
			br[k] = NewEdge(NodeID(base+m-1-k), NodeID(next+k))
		}
		segs = append(segs, segment{edges: br})
	}
	return newBlockImplicit(
		fmt.Sprintf("ringofcliques(blocks=%d,m=%d,bridges=%d)", blocks, m, bridges),
		n, (blocks/2)*m, bb, segs)
}

// ImplicitHierarchicalDumbbell is HierarchicalDumbbell without
// materialisation: identical clique layout, interleaved inner-cut edge
// order, and validation.
func ImplicitHierarchicalDumbbell(n, innerCut, outerCut int) (Implicit, error) {
	if n < 8 {
		return nil, fmt.Errorf("graph: hierarchical dumbbell needs n >= 8, got %d", n)
	}
	half1, half2 := n/2, n-n/2
	q1, q3 := half1/2, half2/2
	sizeA, sizeB := q1, half1-q1
	sizeC, sizeD := q3, half2-q3
	if innerCut < 1 || innerCut > min(sizeA, sizeB) || innerCut > min(sizeC, sizeD) {
		return nil, fmt.Errorf("graph: hierarchical dumbbell innerCut %d outside [1, %d]",
			innerCut, min(sizeA, sizeB, sizeC, sizeD))
	}
	if outerCut < 1 || outerCut > min(sizeB, sizeC) {
		return nil, fmt.Errorf("graph: hierarchical dumbbell outerCut %d outside [1, %d]",
			outerCut, min(sizeB, sizeC))
	}
	// Inner cuts interleave in insertion order: A|B then C|D per k.
	inner := make([]Edge, 0, 2*innerCut)
	for k := 0; k < innerCut; k++ {
		inner = append(inner,
			NewEdge(NodeID(q1-1-k), NodeID(q1+k)),
			NewEdge(NodeID(half1+q3-1-k), NodeID(half1+q3+k)))
	}
	outer := make([]Edge, outerCut)
	for k := 0; k < outerCut; k++ {
		outer[k] = NewEdge(NodeID(half1-1-k), NodeID(half1+k))
	}
	return newBlockImplicit(
		fmt.Sprintf("hierdumbbell(n=%d,inner=%d,outer=%d)", n, innerCut, outerCut),
		n, half1,
		[][2]int32{
			{0, int32(q1)},
			{int32(q1), int32(half1)},
			{int32(half1), int32(half1 + q3)},
			{int32(half1 + q3), int32(n)},
		},
		[]segment{
			{lo: 0, size: sizeA},
			{lo: int32(q1), size: sizeB},
			{lo: int32(half1), size: sizeC},
			{lo: int32(half1 + q3), size: sizeD},
			{edges: inner},
			{edges: outer},
		})
}
