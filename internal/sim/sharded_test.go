package sim

import (
	"math"
	"testing"

	"sparsecut/internal/gossip"
	"sparsecut/internal/graph"
	"sparsecut/internal/metrics"
	"sparsecut/internal/rng"
)

// shardFixture builds an implicit graph, its tiling and a FlatState over
// a deterministic initial vector.
func shardFixture(t *testing.T, ig graph.Implicit, seed uint64) (*graph.Tiling, *gossip.FlatState) {
	t.Helper()
	til := ig.Tiling()
	r := rng.New(seed)
	x0 := make([]float64, ig.NumNodes())
	for i := range x0 {
		x0[i] = r.Float64()*4 - 1
	}
	fs, err := gossip.NewFlatState(x0, til.Bounds())
	if err != nil {
		t.Fatal(err)
	}
	return til, fs
}

// TestShardEngineWorkerDeterminism is the engine's core promise: for a
// fixed spec and seed the full value vector after a run is byte-identical
// for any worker count.
func TestShardEngineWorkerDeterminism(t *testing.T) {
	ig, err := graph.ImplicitRingOfCliques(6, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	var ref []float64
	var refEvents int64
	for _, workers := range []int{1, 2, 4, 13} {
		til, fs := shardFixture(t, ig, 21)
		e := NewShardEngine(til, fs, rng.New(77), ShardConfig{Workers: workers, Window: 0.25})
		e.RunUntil(3)
		got := make([]float64, ig.NumNodes())
		for i := range got {
			got[i] = fs.Value(i)
		}
		if ref == nil {
			ref, refEvents = got, e.Events()
			continue
		}
		if e.Events() != refEvents {
			t.Fatalf("workers=%d: %d events, want %d", workers, e.Events(), refEvents)
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("workers=%d: value %d diverged: %v vs %v", workers, i, got[i], ref[i])
			}
		}
	}
}

// TestShardEngineWindowInvariantsAndMetrics checks event accounting:
// telemetry internal + boundary counts must equal Events(), and the
// event volume must be near rate·|E|·T.
func TestShardEngineWindowInvariantsAndMetrics(t *testing.T) {
	ig, err := graph.ImplicitDumbbell(20, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	til, fs := shardFixture(t, ig, 4)
	reg := metrics.NewRegistry()
	var barriers int
	e := NewShardEngine(til, fs, rng.New(9), ShardConfig{
		Window:   0.5,
		Metrics:  reg,
		Observer: func(float64, int64) { barriers++ },
	})
	const horizon = 8.0
	e.RunUntil(horizon)
	internal := reg.Counter("sim.shard.events").Value()
	boundary := reg.Counter("sim.shard.boundary.events").Value()
	if internal+boundary != e.Events() {
		t.Fatalf("telemetry %d+%d != Events %d", internal, boundary, e.Events())
	}
	if w := reg.Counter("sim.shard.windows").Value(); int(w) != barriers || barriers != int(horizon/0.5) {
		t.Fatalf("windows counter %d, observer barriers %d, want %d", w, barriers, int(horizon/0.5))
	}
	// Poisson volume: mean |E|·T, sd sqrt of that.
	mean := float64(ig.NumEdges()) * horizon
	if d := math.Abs(float64(e.Events()) - mean); d > 6*math.Sqrt(mean) {
		t.Fatalf("event volume %d too far from %f", e.Events(), mean)
	}
	if e.Now() != horizon {
		t.Fatalf("Now() = %v, want %v", e.Now(), horizon)
	}
}

// TestShardEngineTrackedConverges runs the tracked stop rule on a
// dumbbell: variance must decay below the stop level, the last-exceedance
// must land inside the run, and the result must not be censored.
func TestShardEngineTrackedConverges(t *testing.T) {
	ig, err := graph.ImplicitDumbbell(16, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	til := ig.Tiling()
	x0 := gossip.CutIndicatorPrefix(ig.NumNodes(), ig.SplitPoint())
	fs, err := gossip.NewFlatState(x0, til.Bounds())
	if err != nil {
		t.Fatal(err)
	}
	var0 := fs.Variance()
	e := NewShardEngine(til, fs, rng.New(3), ShardConfig{Window: 0.25})
	res := e.RunTracked(Tracked{
		ExceedLevel: math.Exp(-2) * var0,
		StopLevel:   1e-8 * math.Exp(-2) * var0,
		Quiet:       2,
		MaxTime:     10000,
	})
	if res.Censored {
		t.Fatal("run censored")
	}
	if res.LastExceed <= 0 || res.LastExceed >= e.Now() {
		t.Fatalf("LastExceed %v outside (0, %v)", res.LastExceed, e.Now())
	}
	if v := fs.Variance(); v >= math.Exp(-2)*var0 {
		t.Fatalf("final variance %v did not drop below the exceed level", v)
	}
}

// TestShardEngineHotPathAllocs pins the zero-allocation contract of the
// single-worker hot path: advancing an already-running engine must not
// allocate.
func TestShardEngineHotPathAllocs(t *testing.T) {
	ig, err := graph.ImplicitDumbbell(64, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	til, fs := shardFixture(t, ig, 8)
	e := NewShardEngine(til, fs, rng.New(12), ShardConfig{Window: 0.5})
	e.RunUntil(1) // warm up: first windows, RNG buffers
	allocs := testing.AllocsPerRun(10, func() {
		e.RunUntil(e.Now() + 0.5)
	})
	if allocs != 0 {
		t.Fatalf("sharded hot path allocates %.1f per window, want 0", allocs)
	}
}
