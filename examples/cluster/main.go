// Cluster: run Algorithm A as a *real* decentralized protocol — one
// goroutine per node, each driven by its private Poisson clock,
// coordinating through explicit messages (try-lock exchanges with leases
// and grant retransmission) instead of a shared-memory simulator.
//
// By default the transport is in-memory channels; pass -tcp to carry every
// protocol message over loopback TCP sockets. Pass -drop 0.05 to inject
// 5% i.i.d. message loss and watch the protocol degrade gracefully
// (aborted exchanges are skipped ticks, not corruption).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"sparsecut"
)

func main() {
	var (
		n        = flag.Int("n", 16, "total nodes (dumbbell of two n/2-cliques)")
		duration = flag.Float64("t", 40, "simulated duration in time units")
		drop     = flag.Float64("drop", 0, "message loss probability in [0,1)")
		useTCP   = flag.Bool("tcp", false, "use loopback TCP instead of in-memory channels")
		seed     = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	g, part, err := sparsecut.NewDumbbell(*n/2, *n-*n/2, 1)
	if err != nil {
		log.Fatal(err)
	}
	x0 := sparsecut.WorstCaseInit(part)
	// Swap every 4th tick of the cut edge — roughly the paper's
	// K = C·(Tvan1+Tvan2)·ln n for dumbbells of this size.
	rule, err := sparsecut.NewSparseCutExchange(part, part.CutEdges()[0], 4, sparsecut.ExactSwapWeight(part))
	if err != nil {
		log.Fatal(err)
	}

	var tr sparsecut.Transport
	if *useTCP {
		tcp, err := sparsecut.NewTCPTransport(g.NumNodes())
		if err != nil {
			log.Fatal(err)
		}
		port, _ := tcp.Port(0)
		fmt.Printf("transport: loopback TCP (%d listeners, node 0 on port %d)\n", g.NumNodes(), port)
		tr = tcp
	} else {
		buf := 4 * g.NumNodes()
		fmt.Printf("transport: in-memory channels (buffer %d per mailbox)\n", buf)
		tr = sparsecut.NewChanTransport(buf)
	}
	if *drop > 0 {
		tr, err = sparsecut.NewDropTransport(tr, *drop, *seed+99)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fault injection: dropping %.0f%% of messages\n", *drop*100)
	}

	const scale = 8 * time.Millisecond
	cl, err := sparsecut.NewCluster(g, x0, rule, sparsecut.ClusterConfig{
		TimeScale: scale,
		Seed:      *seed,
		Transport: tr,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("graph:     %s\n", g)
	fmt.Printf("rule:      %s\n", rule.Name())
	fmt.Printf("running:   %d node goroutines (private Poisson clocks) for t=%g (~%v wall)...\n",
		g.NumNodes(), *duration, time.Duration(*duration*float64(scale)).Round(time.Millisecond))
	start := time.Now()
	if err := cl.Run(context.Background(), *duration); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %v\n\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("exchanges: %d committed, %d aborted\n", cl.Exchanges(), cl.Aborted())
	fmt.Printf("mean:      %.6g (started at 0)\n", cl.Mean())
	fmt.Printf("variance:  %.6g (started at 1)\n", cl.Variance())
}
