package gossip

import (
	"math"
	"testing"

	"sparsecut/internal/rng"
)

// TestFlatStateMatchesState drives FlatState and State through the same
// exchange sequence: the stored values must stay bit-identical (both
// replay the same fused offset arithmetic) and the moments must agree to
// float tolerance across tile layouts.
func TestFlatStateMatchesState(t *testing.T) {
	const n = 40
	r := rng.New(5)
	x0 := make([]float64, n)
	for i := range x0 {
		x0[i] = r.Float64()*10 - 3
	}
	layouts := [][][2]int32{
		{{0, n}},
		{{0, 20}, {20, n}},
		{{0, 7}, {7, 13}, {13, 29}, {29, n}},
	}
	for li, bounds := range layouts {
		ref := NewState(x0)
		fs, err := NewFlatState(x0, bounds)
		if err != nil {
			t.Fatalf("layout %d: %v", li, err)
		}
		sr := rng.New(99)
		for step := 0; step < 5000; step++ {
			i := sr.Intn(n)
			j := sr.Intn(n - 1)
			if j >= i {
				j++
			}
			ref.AverageEdge(i, j)
			u, v := int32(i), int32(j)
			ti, tj := fs.tileOf(u), fs.tileOf(v)
			if ti == tj {
				fs.TickTile(ti, []int32{u}, []int32{v})
			} else {
				fs.Exchange(u, v)
			}
			if step%97 == 0 {
				for k := 0; k < n; k++ {
					if math.Float64bits(ref.Get(k)) != math.Float64bits(fs.Value(k)) {
						t.Fatalf("layout %d step %d: value %d diverged: %v vs %v",
							li, step, k, ref.Get(k), fs.Value(k))
					}
				}
				if dv := math.Abs(ref.Variance() - fs.Variance()); dv > 1e-12 {
					t.Fatalf("layout %d step %d: variance diverged by %v", li, step, dv)
				}
				if dm := math.Abs(ref.Mean() - fs.Mean()); dm > 1e-12 {
					t.Fatalf("layout %d step %d: mean diverged by %v", li, step, dm)
				}
			}
		}
	}
}

// TestFlatStateResync pushes one tile past resyncInterval updates and
// checks the moments stay exact.
func TestFlatStateResync(t *testing.T) {
	x0 := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	fs, err := NewFlatState(x0, [][2]int32{{0, 4}, {4, 8}})
	if err != nil {
		t.Fatal(err)
	}
	us := make([]int32, 256)
	vs := make([]int32, 256)
	r := rng.New(11)
	for round := 0; round < (resyncInterval/256)+4; round++ {
		for k := range us {
			i := r.Intn(4)
			j := r.Intn(3)
			if j >= i {
				j++
			}
			us[k], vs[k] = int32(i), int32(j)
		}
		fs.TickTile(0, us, vs)
	}
	// Exact recomputation from values.
	var sum, sumSq float64
	for i := 0; i < fs.N(); i++ {
		y := fs.Value(i)
		sum += y
		sumSq += y * y
	}
	n := float64(fs.N())
	m := sum / n
	want := sumSq/n - m*m
	if want < 0 {
		want = 0
	}
	if d := math.Abs(fs.Variance() - want); d > 1e-12 {
		t.Fatalf("variance drifted by %v after resync-heavy run", d)
	}
}

// TestFlatStateValidation rejects malformed tile layouts.
func TestFlatStateValidation(t *testing.T) {
	x0 := []float64{1, 2, 3, 4}
	bad := [][][2]int32{
		{},
		{{0, 2}},                 // does not cover
		{{0, 2}, {3, 4}},         // gap
		{{0, 3}, {2, 4}},         // overlap
		{{0, 2}, {2, 2}, {2, 4}}, // empty tile
	}
	for i, bounds := range bad {
		if _, err := NewFlatState(x0, bounds); err == nil {
			t.Errorf("layout %d: expected error", i)
		}
	}
	if _, err := NewFlatState(nil, [][2]int32{{0, 1}}); err == nil {
		t.Error("empty state: expected error")
	}
}

// TestCutIndicatorPrefixMatches checks the prefix variant against the
// partition-based CutIndicator values on a prefix split.
func TestCutIndicatorPrefixMatches(t *testing.T) {
	got := CutIndicatorPrefix(10, 4)
	for u, v := range got {
		var want float64
		if u < 4 {
			want = 1
		} else {
			want = -4.0 / 6.0
		}
		if v != want {
			t.Fatalf("x[%d] = %v, want %v", u, v, want)
		}
	}
	// Mean is zero by construction.
	var sum float64
	for _, v := range got {
		sum += v
	}
	if math.Abs(sum) > 1e-12 {
		t.Fatalf("prefix indicator sum = %v, want 0", sum)
	}
}
