package graph

// This file provides the traversal utilities (BFS, connectivity, distance,
// component extraction) that generators and cut detection rely on.

// BFSDistances returns the hop distance from src to every node, with -1 for
// unreachable nodes. It panics if src is out of range. The traversal runs
// over the flat CSR adjacency with a fixed-capacity cursor queue — Diameter
// calls this once per node, so the all-pairs cost matters on the larger
// experiment graphs.
func BFSDistances(g *Graph, src NodeID) []int {
	dist := make([]int, g.NumNodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	off, peers, _ := g.CSR()
	queue := make([]int32, 1, g.NumNodes())
	queue[0] = int32(src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range peers[off[u]:off[u+1]] {
			if dist[v] == -1 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// IsConnected reports whether g has a single connected component. The empty
// graph is considered disconnected; the one-node graph connected.
func IsConnected(g *Graph) bool {
	n := g.NumNodes()
	if n == 0 {
		return false
	}
	dist := BFSDistances(g, 0)
	for _, d := range dist {
		if d == -1 {
			return false
		}
	}
	return true
}

// ConnectedComponents labels every node with a component index (0-based,
// in order of discovery from node 0 upward) and returns the labels along
// with the number of components.
func ConnectedComponents(g *Graph) (labels []int, count int) {
	n := g.NumNodes()
	labels = make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	for start := 0; start < n; start++ {
		if labels[start] != -1 {
			continue
		}
		labels[start] = count
		queue := []NodeID{NodeID(start)}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, he := range g.Neighbors(u) {
				if labels[he.Peer] == -1 {
					labels[he.Peer] = count
					queue = append(queue, he.Peer)
				}
			}
		}
		count++
	}
	return labels, count
}

// Eccentricity returns the maximum BFS distance from src to any reachable
// node, and whether the whole graph was reachable.
func Eccentricity(g *Graph, src NodeID) (ecc int, connected bool) {
	connected = true
	for _, d := range BFSDistances(g, src) {
		if d == -1 {
			connected = false
			continue
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc, connected
}

// Diameter returns the exact diameter via all-pairs BFS. It is O(V·E) and
// intended for the small graphs used in tests and experiments. It returns
// -1 for disconnected or empty graphs.
func Diameter(g *Graph) int {
	if g.NumNodes() == 0 {
		return -1
	}
	diam := 0
	for u := 0; u < g.NumNodes(); u++ {
		ecc, ok := Eccentricity(g, NodeID(u))
		if !ok {
			return -1
		}
		if ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// DegreeSum returns the sum of all degrees (2|E| on any valid graph —
// asserted by property tests, not here).
func DegreeSum(g *Graph) int {
	s := 0
	for u := 0; u < g.NumNodes(); u++ {
		s += g.Degree(NodeID(u))
	}
	return s
}
