package cut

import (
	"errors"
	"math"
	"testing"

	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
	"sparsecut/internal/spectral"
)

func TestSweepCutRecoversPlantedCut(t *testing.T) {
	g, planted, err := graph.Dumbbell(8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Score = +1 on side2, -1 on side1 makes the sweep trivially correct.
	score := make([]float64, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		if planted.SideOf(graph.NodeID(u)) == graph.Side2 {
			score[u] = 1
		} else {
			score[u] = -1
		}
	}
	p, err := SweepCut(g, score)
	if err != nil {
		t.Fatal(err)
	}
	if p.CutSize() != 1 {
		t.Errorf("cut size %d, want 1", p.CutSize())
	}
	if p.MinSide() != 8 {
		t.Errorf("min side %d, want 8", p.MinSide())
	}
}

func TestSweepCutErrors(t *testing.T) {
	g := graph.Path(3)
	if _, err := SweepCut(g, []float64{1}); err == nil {
		t.Error("score length mismatch not rejected")
	}
	single := graph.NewBuilder(1).MustBuild()
	if _, err := SweepCut(single, []float64{0}); !errors.Is(err, ErrNoCut) {
		t.Errorf("err = %v, want ErrNoCut", err)
	}
}

func TestSpectralBisectionDumbbell(t *testing.T) {
	g, planted, err := graph.Dumbbell(10, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := SpectralBisection(g, spectral.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.CutSize() != 1 {
		t.Fatalf("spectral bisection found cut of size %d, want 1", p.CutSize())
	}
	// Must match the planted partition up to side swap.
	match, swapped := 0, 0
	for u := 0; u < g.NumNodes(); u++ {
		if p.SideOf(graph.NodeID(u)) == planted.SideOf(graph.NodeID(u)) {
			match++
		} else {
			swapped++
		}
	}
	if match != g.NumNodes() && swapped != g.NumNodes() {
		t.Errorf("partition disagrees with planted cut: %d match / %d swapped", match, swapped)
	}
}

func TestSpectralBisectionAsymmetricDumbbell(t *testing.T) {
	g, _, err := graph.Dumbbell(6, 18, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := SpectralBisection(g, spectral.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.CutSize() != 1 {
		t.Errorf("cut size %d, want 1", p.CutSize())
	}
	if p.MinSide() != 6 {
		t.Errorf("min side %d, want 6", p.MinSide())
	}
}

func TestSpectralBisectionMatchesBruteForce(t *testing.T) {
	r := rng.New(21)
	for trial := 0; trial < 5; trial++ {
		g, _, err := graph.PlantedPartition(r, 6, 7, 0.9, 0.05, 100)
		if err != nil {
			t.Fatal(err)
		}
		want, err := BruteForceMinConductance(g)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SpectralBisection(g, spectral.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Spectral bisection is a heuristic; require it within 1.5x of optimal
		// on these easy planted instances.
		if got.Conductance() > 1.5*want.Conductance()+1e-12 {
			t.Errorf("trial %d: spectral phi %v vs optimal %v", trial, got.Conductance(), want.Conductance())
		}
	}
}

func TestSpectralBisectionRejectsDisconnected(t *testing.T) {
	g := graph.NewBuilder(4).AddEdge(0, 1).AddEdge(2, 3).MustBuild()
	if _, err := SpectralBisection(g, spectral.Options{}); err == nil {
		t.Error("disconnected graph not rejected")
	}
}

func TestBruteForceMinConductanceDumbbell(t *testing.T) {
	g, _, err := graph.Dumbbell(5, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := BruteForceMinConductance(g)
	if err != nil {
		t.Fatal(err)
	}
	if p.CutSize() != 1 {
		t.Errorf("optimal cut size %d, want 1", p.CutSize())
	}
	want := 1.0 / 21.0
	if math.Abs(p.Conductance()-want) > 1e-12 {
		t.Errorf("optimal conductance %v, want %v", p.Conductance(), want)
	}
}

func TestBruteForceRefusesLargeGraphs(t *testing.T) {
	if _, err := BruteForceMinConductance(graph.Complete(30)); err == nil {
		t.Error("large graph not refused")
	}
}

func TestBruteForceTinyGraphs(t *testing.T) {
	if _, err := BruteForceMinConductance(graph.NewBuilder(1).MustBuild()); !errors.Is(err, ErrNoCut) {
		t.Error("n=1 should yield ErrNoCut")
	}
	p, err := BruteForceMinConductance(graph.Path(2))
	if err != nil {
		t.Fatal(err)
	}
	if p.CutSize() != 1 {
		t.Error("P_2 optimal cut should be the single edge")
	}
}

func TestDesignatedCutEdge(t *testing.T) {
	g, p, err := graph.Dumbbell(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	ec, err := DesignatedCutEdge(p)
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsCutEdge(ec) {
		t.Error("designated edge does not cross the cut")
	}
	if ec != p.CutEdges()[0] {
		t.Error("designated edge is not the lowest-ID cut edge")
	}
	_ = g
}

func TestDetectPipeline(t *testing.T) {
	g, _, err := graph.Dumbbell(9, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, ec, err := Detect(g, spectral.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsCutEdge(ec) {
		t.Error("detected ec does not cross detected cut")
	}
	if p.CutSize() != 1 {
		t.Errorf("detected cut size %d", p.CutSize())
	}
}

func TestDetectOnWalledRGG(t *testing.T) {
	r := rng.New(31)
	g, planted, err := graph.WalledRGG(r, 60, 0.35, 1, 200)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := Detect(g, spectral.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Detection should find a cut no worse than ~2x the planted one.
	if p.Conductance() > 2*planted.Conductance()+1e-12 {
		t.Errorf("detected phi %v vs planted %v", p.Conductance(), planted.Conductance())
	}
}
