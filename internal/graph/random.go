package graph

// Random graph generators. All take an explicit *rng.RNG so experiments are
// reproducible from a single seed.

import (
	"fmt"
	"math"

	"sparsecut/internal/rng"
)

// GnP returns an Erdős–Rényi graph G(n, p): each of the C(n,2) candidate
// edges is present independently with probability p. The result may be
// disconnected; callers that need connectivity should check RequireConnected
// or use GnPConnected. It panics if n < 0 or p outside [0, 1].
func GnP(r *rng.RNG, n int, p float64) *Graph {
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("graph: GnP probability %v outside [0,1]", p))
	}
	b := NewBuilder(n).SetName(fmt.Sprintf("gnp(n=%d,p=%.3g)", n, p))
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				b.AddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	return b.MustBuild()
}

// GnPConnected retries GnP until the sample is connected, up to maxTries
// attempts. It returns an error when every attempt fails (p too small).
func GnPConnected(r *rng.RNG, n int, p float64, maxTries int) (*Graph, error) {
	for try := 0; try < maxTries; try++ {
		g := GnP(r, n, p)
		if IsConnected(g) {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: no connected G(%d, %v) sample in %d tries", n, p, maxTries)
}

// RandomRegular returns a d-regular graph on n nodes sampled with the
// configuration (pairing) model, rejecting pairings that create self-loops
// or multi-edges. It returns an error if n*d is odd, d >= n, or no simple
// pairing is found within maxTries attempts.
func RandomRegular(r *rng.RNG, n, d, maxTries int) (*Graph, error) {
	if d < 0 || n < 0 {
		return nil, fmt.Errorf("graph: RandomRegular(n=%d, d=%d): negative parameter", n, d)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: RandomRegular(n=%d, d=%d): n*d must be even", n, d)
	}
	if d >= n && !(d == 0 && n <= 1) {
		return nil, fmt.Errorf("graph: RandomRegular(n=%d, d=%d): need d < n", n, d)
	}
	// Steger–Wormald style stub matching: repeatedly pair two random
	// unmatched stubs, rejecting only the illegal pair (self-loop or
	// duplicate) rather than the whole pairing. Restart when stuck.
	for try := 0; try < maxTries; try++ {
		stubs := make([]int, 0, n*d)
		for u := 0; u < n; u++ {
			for k := 0; k < d; k++ {
				stubs = append(stubs, u)
			}
		}
		b := NewBuilder(n).SetName(fmt.Sprintf("regular(n=%d,d=%d)", n, d))
		stuck := false
		for len(stubs) > 0 && !stuck {
			// Give each pairing a bounded number of local attempts before
			// declaring the residual stub set unmatchable.
			attempts := 0
			for {
				if attempts > 100+len(stubs)*len(stubs) {
					stuck = true
					break
				}
				attempts++
				i := r.Intn(len(stubs))
				j := r.Intn(len(stubs))
				if i == j {
					continue
				}
				u, v := NodeID(stubs[i]), NodeID(stubs[j])
				if u == v || b.HasEdge(u, v) {
					continue
				}
				b.AddEdge(u, v)
				// Remove both stubs (higher index first).
				if i < j {
					i, j = j, i
				}
				stubs[i] = stubs[len(stubs)-1]
				stubs = stubs[:len(stubs)-1]
				stubs[j] = stubs[len(stubs)-1]
				stubs = stubs[:len(stubs)-1]
				break
			}
		}
		if stuck {
			continue
		}
		g, err := b.Build()
		if err != nil {
			return nil, err
		}
		return g, nil
	}
	return nil, fmt.Errorf("graph: RandomRegular(n=%d, d=%d): no simple pairing in %d tries", n, d, maxTries)
}

// RGG returns a random geometric graph: n nodes uniform on the unit square,
// an edge whenever the Euclidean distance is below radius. Positions are
// attached to the graph. It panics if n < 0 or radius < 0.
func RGG(r *rng.RNG, n int, radius float64) *Graph {
	if radius < 0 {
		panic(fmt.Sprintf("graph: RGG radius %v negative", radius))
	}
	pos := make([]Point, n)
	for i := range pos {
		pos[i] = Point{X: r.Float64(), Y: r.Float64()}
	}
	return rggFromPositions(pos, radius, fmt.Sprintf("rgg(n=%d,r=%.3g)", n, radius))
}

// ConnectivityRadius returns the standard RGG connectivity threshold
// sqrt(2 ln n / n), a convenient default radius.
func ConnectivityRadius(n int) float64 {
	if n < 2 {
		return 1
	}
	return math.Sqrt(2 * math.Log(float64(n)) / float64(n))
}

// RGGConnected retries RGG until connected, up to maxTries attempts.
func RGGConnected(r *rng.RNG, n int, radius float64, maxTries int) (*Graph, error) {
	for try := 0; try < maxTries; try++ {
		g := RGG(r, n, radius)
		if IsConnected(g) {
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: no connected RGG(%d, %v) sample in %d tries", n, radius, maxTries)
}

func rggFromPositions(pos []Point, radius float64, name string) *Graph {
	n := len(pos)
	b := NewBuilder(n).SetName(name).SetPositions(pos)
	r2 := radius * radius
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx := pos[u].X - pos[v].X
			dy := pos[u].Y - pos[v].Y
			if dx*dx+dy*dy < r2 {
				b.AddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	return b.MustBuild()
}

// WalledRGG returns a random geometric graph on the unit square bisected by
// a vertical wall at x = 0.5: edges crossing the wall are removed except for
// the `doors` crossing pairs closest to the wall. This is the sensor-network
// scenario with a geometrically forced sparse cut (motivated by the paper's
// reference [6]). The returned partition marks the two sides. The sample is
// retried until both sides are internally connected and at least one door
// exists; it returns an error after maxTries attempts.
func WalledRGG(r *rng.RNG, n int, radius float64, doors, maxTries int) (*Graph, *Partition, error) {
	if doors < 1 {
		return nil, nil, fmt.Errorf("graph: WalledRGG needs doors >= 1, got %d", doors)
	}
	for try := 0; try < maxTries; try++ {
		pos := make([]Point, n)
		for i := range pos {
			pos[i] = Point{X: r.Float64(), Y: r.Float64()}
		}
		g, part, err := buildWalledRGG(pos, radius, doors)
		if err == nil {
			return g, part, nil
		}
	}
	return nil, nil, fmt.Errorf("graph: no valid WalledRGG(n=%d, r=%v, doors=%d) in %d tries", n, radius, doors, maxTries)
}

func buildWalledRGG(pos []Point, radius float64, doors int) (*Graph, *Partition, error) {
	n := len(pos)
	side := make([]Side, n)
	for i, p := range pos {
		if p.X >= 0.5 {
			side[i] = Side2
		}
	}
	b := NewBuilder(n).SetName(fmt.Sprintf("walled-rgg(n=%d,doors=%d)", n, doors)).SetPositions(pos)
	r2 := radius * radius
	type crossing struct {
		u, v NodeID
		gap  float64 // combined distance from the wall; smaller = more door-like
	}
	var crossings []crossing
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx := pos[u].X - pos[v].X
			dy := pos[u].Y - pos[v].Y
			if dx*dx+dy*dy >= r2 {
				continue
			}
			if side[u] == side[v] {
				b.AddEdge(NodeID(u), NodeID(v))
			} else {
				gap := math.Abs(pos[u].X-0.5) + math.Abs(pos[v].X-0.5)
				crossings = append(crossings, crossing{NodeID(u), NodeID(v), gap})
			}
		}
	}
	if len(crossings) < doors {
		return nil, nil, fmt.Errorf("graph: only %d crossings available for %d doors", len(crossings), doors)
	}
	// Select the `doors` crossings nearest the wall (deterministic given positions).
	for k := 0; k < doors; k++ {
		best := k
		for j := k + 1; j < len(crossings); j++ {
			if crossings[j].gap < crossings[best].gap {
				best = j
			}
		}
		crossings[k], crossings[best] = crossings[best], crossings[k]
		b.AddEdge(crossings[k].u, crossings[k].v)
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	part, err := NewPartition(g, side)
	if err != nil {
		return nil, nil, err
	}
	if !sidesInternallyConnected(g, part) {
		return nil, nil, fmt.Errorf("graph: walled RGG sides not internally connected")
	}
	return g, part, nil
}
