// Package core implements the paper's primary contribution: Algorithm A,
// the non-convex gossip-averaging algorithm for graphs with one sparse cut.
//
// The algorithm (Section 1.0.1 of the paper) partitions the graph into two
// internally well-connected sides V1, V2 joined by cut edges E12 and fixes
// one designated cut edge ec. At a tick of:
//
//   - an internal edge (both endpoints on one side): vanilla averaging —
//     both endpoints take the arithmetic mean;
//   - a cut edge other than ec: no update;
//   - ec: nothing, except at every K-th tick of ec, where
//     K = ⌈C·(Tvan(G1)+Tvan(G2))·ln n⌉, a *non-convex* swap with
//     coefficient w ≫ 1 fires: x_a ← x_a + w(x_b − x_a),
//     x_b ← x_b − w(x_b − x_a).
//
// Between swaps each side mixes internally, so its values concentrate
// around the side mean; the swap then transfers exactly the inter-side
// imbalance across the cut in O(1) time instead of the Ω(n1/|E12|) time any
// convex algorithm needs (Theorem 1). See weight.go for the coefficient
// discussion (the library defaults to the exactly-annihilating w* rather
// than the paper's literal n1).
//
// Key types: SparseCutAveraging (gossip.Algorithm), the Option set (WithPartition, WithTvan, WithAllCutEdges, ...). The deliberate deviations from the paper's literal text are DESIGN.md §3; the claim mapping is §4.
package core

import (
	"errors"
	"fmt"
	"math"

	"sparsecut/internal/cut"
	"sparsecut/internal/gossip"
	"sparsecut/internal/graph"
	"sparsecut/internal/spectral"
)

// DefaultEpochConstant is the paper's constant C ("sufficiently large
// absolute constant") used when computing the swap period
// K = ⌈C·(Tvan1+Tvan2)·ln n⌉ from Tvan estimates.
//
// The default Tvan estimate is the spectral bound 6/λ2, which already
// embeds Definition 1's e² threshold and probability margin, so C = 1
// yields C·6·ln n ≈ 6·ln n e-folds of per-epoch side mixing — a per-epoch
// within-side variance contraction of n⁻⁶ ≪ the n⁻³ the paper's Lemma 1
// machinery needs — while keeping epochs short enough that the algorithm
// wins at practical sizes. Experiment E9 sweeps C.
const DefaultEpochConstant = 1.0

// SwapEvent describes one firing of the non-convex cut update, as reported
// to the listener installed with WithSwapListener.
type SwapEvent struct {
	// Time is the simulated time of the swap.
	Time float64
	// Index is the 1-based count of swaps so far.
	Index int64
	// VarBefore and VarAfter are the paper's varX immediately before and
	// after the swap (the values at T_k^- and T_k^+ in Section 3).
	VarBefore, VarAfter float64
}

// SparseCutAveraging is Algorithm A. It implements gossip.Algorithm (and
// therefore sim.Handler). Construct with New; the zero value is not usable.
type SparseCutAveraging struct {
	g    *graph.Graph
	part *graph.Partition
	st   *gossip.State

	ec       graph.EdgeID
	isCut    []bool  // per-edge: crosses the partition
	eu, ev   []int32 // flat endpoint arrays of g, for the fused kernel
	weight   float64
	rule     WeightRule
	epochK   int64 // swap every epochK-th tick of ec
	ecTicks  int64
	swaps    int64
	listener func(SwapEvent)

	tvan1, tvan2 float64 // the Tvan estimates used to size the epoch (0 if user-supplied K)
}

var _ gossip.Algorithm = (*SparseCutAveraging)(nil)

// Option configures New.
type Option func(*config)

type config struct {
	part         *graph.Partition
	ecSet        bool
	ec           graph.EdgeID
	rule         WeightRule
	customWeight float64
	epochK       int64
	epochC       float64
	tvanSet      bool
	tvan1, tvan2 float64
	spectralOpts spectral.Options
	listener     func(SwapEvent)
	allCutEdges  bool
}

// WithPartition supplies the sparse-cut partition (e.g. the planted one
// from graph.Dumbbell). Without it, New auto-detects a cut by spectral
// bisection.
func WithPartition(p *graph.Partition) Option {
	return func(c *config) { c.part = p }
}

// WithCutEdge overrides the designated edge ec (default: the lowest-ID cut
// edge, per cut.DesignatedCutEdge).
func WithCutEdge(e graph.EdgeID) Option {
	return func(c *config) { c.ecSet = true; c.ec = e }
}

// WithWeightRule selects the swap coefficient strategy (default WeightExact).
func WithWeightRule(rule WeightRule) Option {
	return func(c *config) { c.rule = rule }
}

// WithWeight sets an explicit swap coefficient and implies WeightCustom.
func WithWeight(w float64) Option {
	return func(c *config) { c.rule = WeightCustom; c.customWeight = w }
}

// WithEpochTicks fixes the swap period K directly, bypassing the
// C·(Tvan1+Tvan2)·ln n formula. K must be >= 1.
func WithEpochTicks(k int64) Option {
	return func(c *config) { c.epochK = k }
}

// WithEpochConstant sets the paper's constant C (default
// DefaultEpochConstant). Ignored when WithEpochTicks is used.
func WithEpochConstant(cc float64) Option {
	return func(c *config) { c.epochC = cc }
}

// WithTvan supplies the per-side vanilla averaging times used in the epoch
// formula, e.g. empirical measurements. By default they are the analytic
// spectral bounds 6/λ2 of the two induced subgraphs.
func WithTvan(tvan1, tvan2 float64) Option {
	return func(c *config) { c.tvanSet = true; c.tvan1 = tvan1; c.tvan2 = tvan2 }
}

// WithSpectralOptions tunes the eigensolver used for cut auto-detection and
// the default Tvan estimates.
func WithSpectralOptions(o spectral.Options) Option {
	return func(c *config) { c.spectralOpts = o }
}

// WithSwapListener installs a callback invoked at every swap with the
// variance just before and after — the observable driving the
// stochastic-dominance experiment (E6).
func WithSwapListener(fn func(SwapEvent)) Option {
	return func(c *config) { c.listener = fn }
}

// WithAllCutEdges enables the multi-edge extension: every cut edge
// participates in a shared tick counter and the swap fires on whichever cut
// edge's tick reaches the period. This is not in the paper (which uses a
// single fixed ec and ignores other cut edges). The derived period is
// scaled by |E12| so the epoch *duration* still satisfies the side-mixing
// requirement; the benefit is that the minimum epoch is 1/|E12| time units
// instead of 1 (the single edge's tick gap), which only matters once
// C·(Tvan1+Tvan2)·ln n < 1. Experiment E14 quantifies this — including the
// failure mode of the naive unscaled variant (WithEpochTicks bypasses the
// scaling, so E14 can reproduce it).
func WithAllCutEdges() Option {
	return func(c *config) { c.allCutEdges = true }
}

// New builds Algorithm A on g with initial values x0.
//
// Validation errors include: length mismatch, a partition for a different
// graph, a designated edge that does not cross the cut, non-positive
// custom weights, or K < 1. When no partition is supplied the graph must be
// connected so spectral bisection can find the cut.
func New(g *graph.Graph, x0 []float64, opts ...Option) (*SparseCutAveraging, error) {
	if len(x0) != g.NumNodes() {
		return nil, fmt.Errorf("core: %d initial values for %d nodes", len(x0), g.NumNodes())
	}
	cfg := config{rule: WeightExact, epochC: DefaultEpochConstant}
	for _, opt := range opts {
		opt(&cfg)
	}

	part := cfg.part
	if part == nil {
		detected, _, err := cut.Detect(g, cfg.spectralOpts)
		if err != nil {
			return nil, fmt.Errorf("core: auto-detecting sparse cut: %w", err)
		}
		part = detected
	} else if part.Graph() != g {
		return nil, errors.New("core: partition belongs to a different graph")
	}
	if part.CutSize() == 0 {
		return nil, errors.New("core: partition has no cut edges")
	}

	ec := cfg.ec
	if !cfg.ecSet {
		designated, err := cut.DesignatedCutEdge(part)
		if err != nil {
			return nil, err
		}
		ec = designated
	}
	if ec < 0 || int(ec) >= g.NumEdges() {
		return nil, fmt.Errorf("core: designated edge %d out of range", ec)
	}
	if !part.IsCutEdge(ec) {
		return nil, fmt.Errorf("core: designated edge %v does not cross the cut", g.Edge(ec))
	}

	w, err := weightFor(cfg.rule, cfg.customWeight, part)
	if err != nil {
		return nil, err
	}

	a := &SparseCutAveraging{
		g:        g,
		part:     part,
		st:       gossip.NewState(x0),
		ec:       ec,
		eu:       g.EdgeU(),
		ev:       g.EdgeV(),
		weight:   w,
		rule:     cfg.rule,
		listener: cfg.listener,
	}
	a.isCut = make([]bool, g.NumEdges())
	for _, id := range part.CutEdges() {
		a.isCut[id] = true
	}

	if cfg.epochK != 0 {
		if cfg.epochK < 1 {
			return nil, fmt.Errorf("core: epoch ticks %d must be >= 1", cfg.epochK)
		}
		a.epochK = cfg.epochK
	} else {
		tvan1, tvan2 := cfg.tvan1, cfg.tvan2
		if !cfg.tvanSet {
			tvan1, tvan2, err = SideTvanBounds(part, cfg.spectralOpts)
			if err != nil {
				return nil, fmt.Errorf("core: estimating side Tvan: %w", err)
			}
		}
		if tvan1 < 0 || tvan2 < 0 || math.IsNaN(tvan1) || math.IsNaN(tvan2) || math.IsInf(tvan1, 0) || math.IsInf(tvan2, 0) {
			return nil, fmt.Errorf("core: invalid Tvan estimates (%v, %v)", tvan1, tvan2)
		}
		if cfg.epochC <= 0 {
			return nil, fmt.Errorf("core: epoch constant %v must be positive", cfg.epochC)
		}
		a.tvan1, a.tvan2 = tvan1, tvan2
		target := cfg.epochC * (tvan1 + tvan2) * math.Log(float64(g.NumNodes()))
		if cfg.allCutEdges {
			// In all-cut-edges mode the counter ticks |E12| times faster,
			// so K must scale with the cut size to keep the epoch
			// *duration* — the side-mixing requirement — unchanged.
			target *= float64(part.CutSize())
		}
		k := math.Ceil(target)
		if k < 1 {
			k = 1
		}
		a.epochK = int64(k)
	}

	if cfg.allCutEdges {
		// Multi-edge extension: treat every cut edge as swap-capable.
		a.ec = -1
	}
	return a, nil
}

// SideTvanBounds computes the analytic vanilla averaging-time bounds 6/λ2
// for the two induced side subgraphs. A single-node side averages
// instantly, so its bound is 0. It is a thin re-export of
// spectral.SideTvanBounds, kept here because it is part of Algorithm A's
// construction contract (the default Tvan estimator behind the epoch
// formula).
func SideTvanBounds(p *graph.Partition, opts spectral.Options) (tvan1, tvan2 float64, err error) {
	return spectral.SideTvanBounds(p, opts)
}

// Name implements gossip.Algorithm.
func (a *SparseCutAveraging) Name() string {
	return fmt.Sprintf("algorithm-A(w=%s, K=%d)", a.rule, a.epochK)
}

// HandleTick implements gossip.Algorithm (and sim.Handler).
func (a *SparseCutAveraging) HandleTick(e graph.EdgeID, t float64) {
	switch {
	case e == a.ec || (a.ec < 0 && a.isCut[e]):
		a.tickCut(e, t)
	case a.isCut[e]:
		// Non-designated cut edges make no update (paper, Section 1.0.1).
	default:
		edge := a.g.Edge(e)
		i, j := int(edge.U), int(edge.V)
		avg := (a.st.Get(i) + a.st.Get(j)) / 2
		a.st.Set(i, avg)
		a.st.Set(j, avg)
	}
}

// swap applies the non-convex update at cut edge e.
func (a *SparseCutAveraging) swap(e graph.EdgeID, t float64) {
	edge := a.g.Edge(e)
	// Orient so that `u` is the Side1 endpoint, matching the paper's
	// x_{n1}/x_{n1+1} labelling (the update itself is orientation-neutral).
	u, v := int(edge.U), int(edge.V)
	if a.part.SideOf(edge.U) != graph.Side1 {
		u, v = v, u
	}
	// The before/after variance reads exist only for the listener; without
	// one, skip them (after a lazy kernel batch each read costs a full
	// moment resync).
	varBefore := 0.0
	if a.listener != nil {
		varBefore = a.st.Variance()
	}
	xu, xv := a.st.Get(u), a.st.Get(v)
	d := a.weight * (xv - xu)
	a.st.Set(u, xu+d)
	a.st.Set(v, xv-d)
	a.swaps++
	if a.listener != nil {
		a.listener(SwapEvent{
			Time:      t,
			Index:     a.swaps,
			VarBefore: varBefore,
			VarAfter:  a.st.Variance(),
		})
	}
}

// tickCut advances the designated-edge counter and fires the swap on the
// epoch boundary — the shared cut-edge body of HandleTick and the kernel.
func (a *SparseCutAveraging) tickCut(e graph.EdgeID, t float64) {
	a.ecTicks++
	if a.ecTicks%a.epochK == 0 {
		a.swap(e, t)
	}
}

// TickEdges implements sim.TickKernel: the fused batch loop, bit-identical
// in the values to HandleTick per event. Runs of internal edges — the
// overwhelming majority on a sparse-cut graph — are flushed to the lazy
// two-point average in sub-batches; cut edges take the same counter/swap
// path as HandleTick, in order.
//
// With a swap listener installed the loop uses the eager (incremental)
// moment updates instead: the listener's VarBefore/VarAfter then match the
// legacy HandleTick path bit for bit, rather than being resync-exact —
// E6-style per-epoch statistics read those fields at the float noise
// floor, where the difference is observable.
func (a *SparseCutAveraging) TickEdges(edges []graph.EdgeID, times []float64) {
	eu, ev, st, isCut := a.eu, a.ev, a.st, a.isCut
	if a.listener != nil {
		for k, e := range edges {
			if isCut[e] {
				if e == a.ec || a.ec < 0 {
					a.tickCut(e, times[k])
				}
				continue
			}
			st.AverageEdge(int(eu[e]), int(ev[e]))
		}
		return
	}
	start := 0
	for k, e := range edges {
		if !isCut[e] {
			continue
		}
		st.AverageEdgesLazy(edges[start:k], eu, ev)
		start = k + 1
		if e == a.ec || a.ec < 0 {
			a.tickCut(e, times[k])
		}
	}
	st.AverageEdgesLazy(edges[start:], eu, ev)
}

// TickEdgeVar implements sim.TickKernel: one tick, one moment read.
func (a *SparseCutAveraging) TickEdgeVar(e graph.EdgeID, t float64) float64 {
	if a.isCut[e] {
		if e == a.ec || a.ec < 0 {
			a.tickCut(e, t)
		}
	} else {
		a.st.AverageEdge(int(a.eu[e]), int(a.ev[e]))
	}
	return a.st.Variance()
}

// Values implements gossip.Algorithm.
func (a *SparseCutAveraging) Values() []float64 { return a.st.Values() }

// CopyInto implements gossip.ValueCopier.
func (a *SparseCutAveraging) CopyInto(dst []float64) { a.st.CopyInto(dst) }

// Mean implements gossip.Algorithm.
func (a *SparseCutAveraging) Mean() float64 { return a.st.Mean() }

// Variance implements gossip.Algorithm.
func (a *SparseCutAveraging) Variance() float64 { return a.st.Variance() }

// Partition returns the sparse-cut partition in use.
func (a *SparseCutAveraging) Partition() *graph.Partition { return a.part }

// CutEdge returns the designated edge ec, or -1 in all-cut-edges mode.
func (a *SparseCutAveraging) CutEdge() graph.EdgeID { return a.ec }

// Weight returns the swap coefficient in use.
func (a *SparseCutAveraging) Weight() float64 { return a.weight }

// EpochTicks returns the swap period K in ticks of ec.
func (a *SparseCutAveraging) EpochTicks() int64 { return a.epochK }

// Swaps returns the number of non-convex swaps performed so far.
func (a *SparseCutAveraging) Swaps() int64 { return a.swaps }

// TvanEstimates returns the per-side Tvan values that sized the epoch
// (zeros when the caller fixed K directly).
func (a *SparseCutAveraging) TvanEstimates() (tvan1, tvan2 float64) {
	return a.tvan1, a.tvan2
}

// EpochDuration returns the expected simulated time between swaps: K ticks
// of a rate-1 edge clock take K time units in expectation (or K/|E12| in
// all-cut-edges mode). The averaging-time estimator uses this to size its
// quiet period.
func (a *SparseCutAveraging) EpochDuration() float64 {
	if a.ec < 0 {
		return float64(a.epochK) / float64(a.part.CutSize())
	}
	return float64(a.epochK)
}

// SideMeans returns the current means µ1, µ2 of the two sides — the
// quantities whose annihilation the swap is designed for. It reads the
// state in place without copying the value vector.
func (a *SparseCutAveraging) SideMeans() (mu1, mu2 float64) {
	var s1, s2 float64
	for u := 0; u < a.st.N(); u++ {
		x := a.st.Get(u)
		if a.part.SideOf(graph.NodeID(u)) == graph.Side1 {
			s1 += x
		} else {
			s2 += x
		}
	}
	return s1 / float64(a.part.Size1()), s2 / float64(a.part.Size2())
}
