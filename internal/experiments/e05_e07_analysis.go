package experiments

// E5–E7: figure-style outputs and the probabilistic machinery of Section 3.

import (
	"fmt"
	"io"
	"math"

	"sparsecut/internal/core"
	"sparsecut/internal/gossip"
	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
	"sparsecut/internal/sim"
	"sparsecut/internal/stats"
	"sparsecut/internal/table"
	"sparsecut/internal/trace"
	"sparsecut/internal/walk"
)

func init() {
	register(Experiment{
		ID:    "E5",
		Title: "figure: variance trajectories varX(t)/varX(0), vanilla vs Algorithm A",
		Claim: "Section 1/3: A's variance decays in a few epochs (with transient non-convex spikes) while vanilla decays at rate ~1/n across the cut",
		Run:   runE5,
	})
	register(Experiment{
		ID:    "E6",
		Title: "stochastic dominance of the epoch log-variance process",
		Claim: "Section 3: per-epoch increments of half-log-variance are dominated by the walk with steps +log n (p=1/2) / -(3/2) log n; weak-contraction epochs occur with frequency <= 1/2 and no increment exceeds log n",
		Run:   runE6,
	})
	register(Experiment{
		ID:    "E7",
		Title: "Theorem 3: sub-Gaussian tail of the simple random walk",
		Claim: "Theorem 3: P[S_n >= s sqrt(n)] <= c exp(-beta s^2) for absolute constants c, beta",
		Run:   runE7,
	})
}

func runE5(w io.Writer, p Params) (Outcome, error) {
	p = p.withDefaults()
	out := newOutcome()
	n := pick(p, 32, 128)
	horizon := pick(p, 40.0, 120.0)
	g, part, x0, err := dumbbellCase(n, 1)
	if err != nil {
		return out, err
	}
	root := rng.New(p.Seed)

	// Scratch for the side-mean-gap trajectory: one buffer reused across
	// every sample point of both runs (Algorithm.CopyInto instead of the
	// allocating Values).
	buf := make([]float64, g.NumNodes())
	onSide1 := make([]bool, g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		onSide1[u] = part.SideOf(graph.NodeID(u)) == graph.Side1
	}
	sideGap := func(vals []float64) float64 {
		var s1, s2 float64
		for u, x := range vals {
			if onSide1[u] {
				s1 += x
			} else {
				s2 += x
			}
		}
		return math.Abs(s1/float64(part.Size1()) - s2/float64(part.Size2()))
	}

	series := make([]*trace.Series, 0, 4)
	for _, which := range []string{"vanilla", "algorithm-A"} {
		var alg gossip.Algorithm
		if which == "vanilla" {
			alg, err = gossip.NewVanilla(g, x0)
		} else {
			alg, err = core.New(g, x0, core.WithPartition(part))
		}
		if err != nil {
			return out, err
		}
		var0 := alg.Variance()
		stride := int64(g.NumEdges()/4 + 1)
		rec, err := trace.NewSampledRecorder(which, stride)
		if err != nil {
			return out, err
		}
		// The cross-cut imbalance |mu1 - mu2| — the quantity the swap is
		// designed to annihilate — sampled on the same stride through the
		// allocation-free CopyInto when available.
		gapSeries := trace.NewSeries(which + "-side-gap")
		snapshot := func(dst []float64) []float64 { copy(dst, alg.Values()); return dst }
		if vc, ok := alg.(gossip.ValueCopier); ok {
			snapshot = func(dst []float64) []float64 { vc.CopyInto(dst); return dst }
		}
		events := int64(0)
		eng, err := sim.NewEngine(g, alg, sim.WithRNG(root.Split()),
			sim.WithObserver(func(t float64, _ int64) {
				rec.Record(t, alg.Variance()/var0)
				if events%stride == 0 {
					gapSeries.Add(t, sideGap(snapshot(buf)))
				}
				events++
			}))
		if err != nil {
			return out, err
		}
		eng.Run(sim.Until(horizon))
		ds, err := rec.Series.Downsample(400)
		if err != nil {
			return out, err
		}
		dsGap, err := gapSeries.Downsample(400)
		if err != nil {
			return out, err
		}
		series = append(series, ds, dsGap)
		_, final, _ := ds.Last()
		out.Metrics["final-ratio-"+which] = final
		_, finalGap, _ := dsGap.Last()
		out.Metrics["final-side-gap-"+which] = finalGap
	}
	fmt.Fprintf(w, "E5: CSV series (downsampled), dumbbell n=%d, horizon t=%g\n\n", n, horizon)
	if err := trace.WriteCSV(w, series...); err != nil {
		return out, err
	}
	fmt.Fprintf(w, "\nfinal ratios: vanilla=%.3g, algorithm-A=%.3g\n",
		out.Metrics["final-ratio-vanilla"], out.Metrics["final-ratio-algorithm-A"])
	return out, nil
}

func runE6(w io.Writer, p Params) (Outcome, error) {
	p = p.withDefaults()
	out := newOutcome()
	n := pick(p, 32, 48)
	// The mean-increment statistic is censoring-biased (strong epochs fall
	// through the float noise floor and end a run's measurable prefix), so
	// quick mode still needs a few dozen runs for its sign to be stable.
	runs := pick(p, 24, 40)
	// Slow-mixing sides (cycles) keep several epochs above the float noise
	// floor, so the per-epoch contraction is actually measurable; clique
	// sides contract by ~n^-6 per epoch and hit the floor immediately.
	m := n / 2
	g, part, err := graph.Join(graph.Cycle(m), graph.Cycle(m),
		[][2]graph.NodeID{{graph.NodeID(m - 1), 0}})
	if err != nil {
		return out, err
	}
	root := rng.New(p.Seed)

	// Collect per-epoch half-log-variance ratios at swap boundaries.
	// Epochs that fall through the float noise floor are certainly
	// stronger contractions than -(3/2)log n, so they count as strong and
	// end the measurable prefix of the run.
	const floor = 1e-24
	var allIncrements []float64 // finite, measurable increments
	flooredStrong := 0
	epochsToThreshold := make([]float64, 0, runs)
	for run := 0; run < runs; run++ {
		var ratios []float64
		var var0 float64
		crossedAt := -1
		alg, err := core.New(g, gossip.CutIndicator(part),
			core.WithPartition(part), core.WithEpochConstant(1.2),
			core.WithSwapListener(func(ev core.SwapEvent) {
				if var0 == 0 {
					return
				}
				ratio := ev.VarAfter / var0
				ratios = append(ratios, ratio)
				if crossedAt < 0 && ratio < math.Exp(-2) {
					crossedAt = int(ev.Index)
				}
			}))
		if err != nil {
			return out, err
		}
		var0 = alg.Variance()
		eng, err := sim.NewEngine(g, alg, sim.WithRNG(root.Split()))
		if err != nil {
			return out, err
		}
		eng.Run(sim.Until(10 * alg.EpochDuration()))
		prev := 1.0
		for _, r := range ratios {
			if r <= floor {
				flooredStrong++
				break // deeper epochs are below measurement precision
			}
			allIncrements = append(allIncrements, 0.5*(math.Log(r)-math.Log(prev)))
			prev = r
		}
		if crossedAt > 0 {
			epochsToThreshold = append(epochsToThreshold, float64(crossedAt))
		}
	}
	if len(allIncrements) == 0 {
		return out, fmt.Errorf("E6: no epoch increments collected")
	}

	logN := math.Log(float64(n))
	weak, hard := 0, 0
	maxInc := math.Inf(-1)
	for _, inc := range allIncrements {
		if inc > -1.5*logN {
			weak++
		}
		if inc > logN*(1+1e-9) {
			hard++
		}
		if inc > maxInc {
			maxInc = inc
		}
	}
	total := len(allIncrements) + flooredStrong
	fracWeak := float64(weak) / float64(total)
	meanInc := stats.Mean(allIncrements)

	// Compare the empirical epochs-to-e^-2 against the dominating walk's
	// prediction for the same level.
	domQ, err := walk.HittingQuantile(root.Split(), n, -1 /* half-log scale */, 1-1/math.E, 2000, 400)
	if err != nil {
		return out, err
	}
	empQ := math.NaN()
	if len(epochsToThreshold) > 0 {
		empQ, err = stats.Quantile(epochsToThreshold, 1-1/math.E)
		if err != nil {
			return out, err
		}
	}

	tbl := table.New(fmt.Sprintf("E6: epoch log-variance dominance, cycle-dumbbell n=%d (%d measurable + %d floored epochs from %d runs)",
		n, len(allIncrements), flooredStrong, runs),
		"metric", "value", "dominance requirement")
	tbl.AddRow("mean measurable increment of (1/2)log var", meanInc, fmt.Sprintf("<= drift -(log n)/4 = %.3f", -logN/4))
	tbl.AddRow("max increment", maxInc, fmt.Sprintf("<= log n = %.3f (hard bound, eq. 12)", logN))
	tbl.AddRow("frac weak epochs (inc > -1.5 log n)", fracWeak, "<= 1/2 (Lemma 1)")
	tbl.AddRow("hard violations", hard, "= 0")
	tbl.AddRow("epochs to var ratio < e^-2 (empirical q)", empQ, fmt.Sprintf("~ dominating-walk q = %.1f", domQ))
	if err := render(w, p, tbl); err != nil {
		return out, err
	}
	out.Metrics["frac-weak"] = fracWeak
	out.Metrics["hard-violations"] = float64(hard)
	out.Metrics["mean-increment"] = meanInc
	out.Metrics["max-increment"] = maxInc
	out.Metrics["empirical-epochs"] = empQ
	out.Metrics["dominating-epochs"] = domQ
	return out, nil
}

func runE7(w io.Writer, p Params) (Outcome, error) {
	p = p.withDefaults()
	out := newOutcome()
	steps := pick(p, 144, 400)
	trials := pick(p, 4000, 60000)
	ss := []float64{0.5, 1, 1.5, 2, 2.5, 3}
	fit, err := walk.FitTail(rng.New(p.Seed), steps, ss, trials)
	if err != nil {
		return out, err
	}
	tbl := table.New(fmt.Sprintf("E7: P[S_n >= s sqrt(n)], n=%d, %d trials per point", steps, trials),
		"s", "empirical P", "fitted c*exp(-beta s^2)")
	for i, s := range fit.S {
		tbl.AddRow(s, fit.P[i], fit.C*math.Exp(-fit.Beta*s*s))
	}
	if err := render(w, p, tbl); err != nil {
		return out, err
	}
	fmt.Fprintf(w, "\nfit: c=%.3f beta=%.3f (R2=%.3f); Gaussian limit predicts beta=1/2\n", fit.C, fit.Beta, fit.R2)
	out.Metrics["c"] = fit.C
	out.Metrics["beta"] = fit.Beta
	out.Metrics["r2"] = fit.R2
	return out, nil
}
