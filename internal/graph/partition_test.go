package graph

import (
	"math"
	"testing"

	"sparsecut/internal/rng"
)

func mustDumbbell(t *testing.T, n1, n2, cut int) (*Graph, *Partition) {
	t.Helper()
	g, p, err := Dumbbell(n1, n2, cut)
	if err != nil {
		t.Fatal(err)
	}
	return g, p
}

func TestPartitionByPrefix(t *testing.T) {
	g := Path(6)
	p, err := PartitionByPrefix(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size1() != 3 || p.Size2() != 3 {
		t.Errorf("sizes %d/%d", p.Size1(), p.Size2())
	}
	if p.CutSize() != 1 {
		t.Errorf("cut size %d, want 1", p.CutSize())
	}
	if p.MinSide() != 3 {
		t.Errorf("MinSide %d", p.MinSide())
	}
	e := g.Edge(p.CutEdges()[0])
	if e != NewEdge(2, 3) {
		t.Errorf("cut edge %v, want 2-3", e)
	}
}

func TestPartitionByPrefixErrors(t *testing.T) {
	g := Path(4)
	for _, n1 := range []int{0, 4, -1, 7} {
		if _, err := PartitionByPrefix(g, n1); err == nil {
			t.Errorf("prefix %d not rejected", n1)
		}
	}
}

func TestNewPartitionValidation(t *testing.T) {
	g := Path(3)
	if _, err := NewPartition(g, []Side{Side1, Side1}); err == nil {
		t.Error("length mismatch not rejected")
	}
	if _, err := NewPartition(g, []Side{Side1, Side1, Side1}); err == nil {
		t.Error("one-sided partition not rejected")
	}
	if _, err := NewPartition(g, []Side{Side1, 7, Side2}); err == nil {
		t.Error("invalid side not rejected")
	}
}

func TestPartitionIsImmutableCopy(t *testing.T) {
	g := Path(3)
	side := []Side{Side1, Side2, Side2}
	p, err := NewPartition(g, side)
	if err != nil {
		t.Fatal(err)
	}
	side[0] = Side2 // mutate caller's slice
	if p.SideOf(0) != Side1 {
		t.Error("partition aliased the caller's slice")
	}
}

func TestDumbbellStructure(t *testing.T) {
	g, p := mustDumbbell(t, 4, 6, 1)
	if g.NumNodes() != 10 {
		t.Errorf("%d nodes", g.NumNodes())
	}
	want := 4*3/2 + 6*5/2 + 1
	if g.NumEdges() != want {
		t.Errorf("%d edges, want %d", g.NumEdges(), want)
	}
	if p.CutSize() != 1 {
		t.Errorf("cut %d", p.CutSize())
	}
	// The designated cut edge joins node n1-1 to node n1.
	e := g.Edge(p.CutEdges()[0])
	if e != NewEdge(3, 4) {
		t.Errorf("cut edge %v, want 3-4", e)
	}
	if !SidesInternallyConnected(p) {
		t.Error("dumbbell sides should be connected")
	}
	if !IsConnected(g) {
		t.Error("dumbbell should be connected")
	}
}

func TestDumbbellMultiCut(t *testing.T) {
	g, p := mustDumbbell(t, 8, 8, 5)
	if p.CutSize() != 5 {
		t.Errorf("cut size %d, want 5", p.CutSize())
	}
	// Cut edges must all actually cross.
	for _, id := range p.CutEdges() {
		if !p.IsCutEdge(id) {
			t.Error("non-crossing edge in cut list")
		}
		e := g.Edge(id)
		if (e.U < 8) == (e.V < 8) {
			t.Errorf("edge %v does not cross", e)
		}
	}
}

func TestDumbbellErrors(t *testing.T) {
	if _, _, err := Dumbbell(0, 5, 1); err == nil {
		t.Error("n1=0 not rejected")
	}
	if _, _, err := Dumbbell(3, 5, 0); err == nil {
		t.Error("cut=0 not rejected")
	}
	if _, _, err := Dumbbell(3, 5, 4); err == nil {
		t.Error("cut > min side not rejected")
	}
}

func TestSymmetricDumbbell(t *testing.T) {
	g, p, err := SymmetricDumbbell(9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size1() != 4 || p.Size2() != 5 {
		t.Errorf("sizes %d/%d", p.Size1(), p.Size2())
	}
	if g.NumNodes() != 9 {
		t.Errorf("%d nodes", g.NumNodes())
	}
	if _, _, err := SymmetricDumbbell(1, 1); err == nil {
		t.Error("n=1 not rejected")
	}
}

func TestConductanceDumbbell(t *testing.T) {
	_, p := mustDumbbell(t, 5, 5, 1)
	// vol(V1) = 5 nodes: 4 internal each = 20, plus 1 cut endpoint = 21.
	if p.Volume1() != 21 || p.Volume2() != 21 {
		t.Errorf("volumes %d/%d, want 21/21", p.Volume1(), p.Volume2())
	}
	want := 1.0 / 21.0
	if got := p.Conductance(); math.Abs(got-want) > 1e-12 {
		t.Errorf("conductance %v, want %v", got, want)
	}
}

func TestTheoremOneBound(t *testing.T) {
	_, p := mustDumbbell(t, 6, 10, 2)
	if got := p.TheoremOneBound(); got != 3 {
		t.Errorf("bound %v, want 6/2 = 3", got)
	}
}

func TestSubgraph(t *testing.T) {
	g, p := mustDumbbell(t, 4, 5, 1)
	sub1, map1 := p.Subgraph(Side1)
	if sub1.NumNodes() != 4 || sub1.NumEdges() != 6 {
		t.Errorf("side1 subgraph %d nodes %d edges", sub1.NumNodes(), sub1.NumEdges())
	}
	sub2, map2 := p.Subgraph(Side2)
	if sub2.NumNodes() != 5 || sub2.NumEdges() != 10 {
		t.Errorf("side2 subgraph %d nodes %d edges", sub2.NumNodes(), sub2.NumEdges())
	}
	// Mappings must point back to the right sides.
	for _, parent := range map1 {
		if p.SideOf(parent) != Side1 {
			t.Error("side1 mapping crosses sides")
		}
	}
	for _, parent := range map2 {
		if p.SideOf(parent) != Side2 {
			t.Error("side2 mapping crosses sides")
		}
	}
	_ = g
}

func TestJoin(t *testing.T) {
	g1, g2 := Cycle(4), Path(3)
	g, p, err := Join(g1, g2, [][2]NodeID{{0, 0}, {2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 7 {
		t.Errorf("%d nodes", g.NumNodes())
	}
	if g.NumEdges() != 4+2+2 {
		t.Errorf("%d edges", g.NumEdges())
	}
	if p.CutSize() != 2 {
		t.Errorf("cut %d", p.CutSize())
	}
	if !IsConnected(g) {
		t.Error("join disconnected")
	}
}

func TestJoinErrors(t *testing.T) {
	g1, g2 := Path(2), Path(2)
	if _, _, err := Join(g1, g2, nil); err == nil {
		t.Error("empty cut not rejected")
	}
	if _, _, err := Join(g1, g2, [][2]NodeID{{5, 0}}); err == nil {
		t.Error("bad g1 endpoint not rejected")
	}
	if _, _, err := Join(g1, g2, [][2]NodeID{{0, 5}}); err == nil {
		t.Error("bad g2 endpoint not rejected")
	}
}

func TestPlantedPartition(t *testing.T) {
	r := rng.New(11)
	g, p, err := PlantedPartition(r, 20, 30, 0.5, 0.02, 100)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 50 {
		t.Errorf("%d nodes", g.NumNodes())
	}
	if p.Size1() != 20 {
		t.Errorf("side1 %d", p.Size1())
	}
	if p.CutSize() < 1 {
		t.Error("empty cut")
	}
	if !SidesInternallyConnected(p) {
		t.Error("sides not internally connected")
	}
	// Sparse cut: far fewer cross edges than internal ones.
	internal := g.NumEdges() - p.CutSize()
	if p.CutSize() >= internal {
		t.Errorf("cut %d not sparse vs %d internal", p.CutSize(), internal)
	}
}

func TestPlantedPartitionErrors(t *testing.T) {
	r := rng.New(12)
	if _, _, err := PlantedPartition(r, 0, 5, 0.5, 0.1, 5); err == nil {
		t.Error("n1=0 not rejected")
	}
	if _, _, err := PlantedPartition(r, 5, 5, 1.5, 0.1, 5); err == nil {
		t.Error("pIn>1 not rejected")
	}
	if _, _, err := PlantedPartition(r, 5, 5, 0.9, 0.0, 5); err == nil {
		t.Error("pOut=0 should fail (no cut possible)")
	}
}

func TestSideString(t *testing.T) {
	if Side1.String() != "V1" || Side2.String() != "V2" {
		t.Error("side names wrong")
	}
}

func TestPartitionString(t *testing.T) {
	_, p := mustDumbbell(t, 3, 4, 1)
	if p.String() == "" {
		t.Error("empty partition string")
	}
}
