// Command repro generates the repository's reproduction report: it runs
// the E1–E14 suite as declarative scenario grids through the deterministic
// sweep engine, compares every measured averaging time against the paper's
// predicted bounds (internal/spectral), and writes REPRODUCTION.md plus a
// machine-readable REPRODUCTION.json.
//
// The output is a pure function of (mode, seed): reruns byte-match, which
// CI verifies. Exit status: 0 on success, 1 on runtime errors, 2 when the
// generated report contains FAIL rows or failed checks (disable with
// -strict=false).
//
// Output defaults depend on the invocation, so casual runs never clobber
// the committed full-mode artifacts: -full writes REPRODUCTION.md +
// REPRODUCTION.json (the committed names), quick mode writes
// REPRODUCTION-quick.md + REPRODUCTION-quick.json, and -run subsets print
// to stdout. Explicit -out/-json always win.
//
// Usage:
//
//	repro -quick                    # CI-sized budgets (the default)
//	repro -full                     # regenerate the committed numbers
//	repro -run E4,E10               # a subset, to stdout
//	repro -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sparsecut/internal/report"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "CI-sized budgets, 1-CPU friendly (default unless -full)")
		full    = flag.Bool("full", false, "full budgets; regenerates the committed REPRODUCTION.md numbers")
		seed    = flag.Uint64("seed", 1, "root seed; the whole document derives from it")
		workers = flag.Int("workers", 0, "sweep worker-pool size (0 = GOMAXPROCS); never affects results")
		run     = flag.String("run", "", "comma-separated experiment subset (e.g. E4,E10); empty = all")
		out     = flag.String("out", "", "Markdown output path ('-' = stdout; default: REPRODUCTION.md for -full, REPRODUCTION-quick.md for quick, stdout for -run subsets)")
		jsonOut = flag.String("json", "", "JSON output path ('-' = stdout; default mirrors -out, none for -run subsets; 'none' = skip)")
		strict  = flag.Bool("strict", true, "exit 2 when the report contains FAIL verdicts")
		list    = flag.Bool("list", false, "list the registered experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range report.Entries() {
			fmt.Printf("%-4s %s\n     claim: %s\n", e.ID, e.Title, e.Claim)
		}
		return
	}
	if *quick && *full {
		fatal(fmt.Errorf("-quick and -full are mutually exclusive"))
	}
	// Quick is the default mode; both `-full` and an explicit
	// `-quick=false` select full budgets.
	quickExplicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "quick" {
			quickExplicit = true
		}
	})
	isQuick := !*full && !(quickExplicit && !*quick)
	p := report.Params{Quick: isQuick, Seed: *seed, Workers: *workers}

	var ids []string
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			if id = strings.TrimSpace(id); id != "" {
				ids = append(ids, id)
			}
		}
	}

	// Mode-dependent output defaults: only -full writes the committed
	// artifact names; quick and subset runs can never clobber them by
	// accident.
	mdPath, jsonPath := *out, *jsonOut
	if mdPath == "" {
		switch {
		case len(ids) > 0:
			mdPath = "-"
		case !isQuick:
			mdPath = "REPRODUCTION.md"
		default:
			mdPath = "REPRODUCTION-quick.md"
		}
	}
	if jsonPath == "" {
		switch {
		case len(ids) > 0:
			jsonPath = "none"
		case !isQuick:
			jsonPath = "REPRODUCTION.json"
		default:
			jsonPath = "REPRODUCTION-quick.json"
		}
	}

	doc, err := report.GenerateSubset(ids, p)
	if err != nil {
		fatal(err)
	}
	if err := writeTo(mdPath, doc.WriteMarkdown); err != nil {
		fatal(err)
	}
	if jsonPath != "none" {
		if err := writeTo(jsonPath, doc.WriteJSON); err != nil {
			fatal(err)
		}
	}

	failures := doc.Failures()
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "repro: FAIL:", f)
	}
	if mdPath != "-" {
		pass, fail, cens := 0, 0, 0
		for _, s := range doc.Sections {
			pass += s.Verdicts.Pass
			fail += s.Verdicts.Fail
			cens += s.Verdicts.Cens
			for _, c := range s.Checks {
				if c.Pass {
					pass++
				} else {
					fail++
				}
			}
		}
		fmt.Fprintf(os.Stderr, "repro: %s mode, seed %d: %d experiments, %d PASS, %d FAIL, %d CENS -> %s\n",
			doc.Mode, doc.Seed, len(doc.Sections), pass, fail, cens, mdPath)
	}
	if *strict && len(failures) > 0 {
		os.Exit(2)
	}
}

// writeTo writes via render to path, atomically enough for CI use ('-'
// means stdout).
func writeTo(path string, render func(io.Writer) error) error {
	if path == "-" {
		return render(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	os.Exit(1)
}
