// Command gossipsim runs one gossip-averaging simulation and reports the
// variance trajectory and final state.
//
// Usage:
//
//	gossipsim -graph dumbbell -n 128 -cut 1 -algo A     -until 50
//	gossipsim -graph planted  -n 100 -algo vanilla      -until 200 -csv
//	gossipsim -graph sensor   -n 150 -cut 2 -algo A     -until 100
//	gossipsim -algo convex -alpha 0.8 ...
//
// With -csv the sampled trajectory is written to stdout as
// "series,t,value" rows; otherwise a short summary is printed.
package main

import (
	"flag"
	"fmt"
	"os"

	"sparsecut"
	"sparsecut/internal/sim"
	"sparsecut/internal/trace"
)

func main() {
	var (
		graphKind = flag.String("graph", "dumbbell", "graph family: dumbbell | planted | sensor")
		n         = flag.Int("n", 128, "total number of nodes")
		cutEdges  = flag.Int("cut", 1, "cut edges (dumbbell) or doors (sensor)")
		algo      = flag.String("algo", "A", "algorithm: A | vanilla | convex | pushsum")
		alpha     = flag.Float64("alpha", 0.5, "mixing parameter for -algo convex")
		until     = flag.Float64("until", 50, "simulated time horizon")
		seed      = flag.Uint64("seed", 1, "random seed")
		csv       = flag.Bool("csv", false, "emit the sampled variance trajectory as CSV")
	)
	flag.Parse()

	g, part, err := buildGraph(*graphKind, *n, *cutEdges, *seed)
	if err != nil {
		fatal(err)
	}
	x0 := sparsecut.WorstCaseInit(part)
	alg, err := buildAlgorithm(*algo, g, part, x0, *alpha, *seed)
	if err != nil {
		fatal(err)
	}

	var0 := alg.Variance()
	rec, err := trace.NewSampledRecorder(alg.Name(), int64(g.NumEdges()/4+1))
	if err != nil {
		fatal(err)
	}
	eng, err := sim.NewEngine(g, alg, sim.WithSeed(*seed),
		sim.WithObserver(func(t float64, _ int64) { rec.Record(t, alg.Variance()/var0) }))
	if err != nil {
		fatal(err)
	}
	t, events := eng.Run(sim.Until(*until))

	if *csv {
		ds, err := rec.Series.Downsample(1000)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteCSV(os.Stdout, ds); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("graph:      %s\n", g)
	fmt.Printf("partition:  %s\n", part)
	fmt.Printf("algorithm:  %s\n", alg.Name())
	fmt.Printf("simulated:  t=%.4g (%d events)\n", t, events)
	fmt.Printf("mean:       %.6g\n", alg.Mean())
	fmt.Printf("var ratio:  %.6g\n", alg.Variance()/var0)
}

func buildGraph(kind string, n, cutEdges int, seed uint64) (*sparsecut.Graph, *sparsecut.Partition, error) {
	switch kind {
	case "dumbbell":
		return sparsecut.NewDumbbell(n/2, n-n/2, cutEdges)
	case "planted":
		pOut := 3.0 / float64(n*n/4)
		return sparsecut.NewPlantedPartition(seed, n/2, n-n/2, 0.5, pOut)
	case "sensor":
		return sparsecut.NewSensorField(seed, n, cutEdges)
	default:
		return nil, nil, fmt.Errorf("unknown graph family %q", kind)
	}
}

func buildAlgorithm(name string, g *sparsecut.Graph, part *sparsecut.Partition, x0 []float64, alpha float64, seed uint64) (sparsecut.Algorithm, error) {
	switch name {
	case "A":
		return sparsecut.NewAlgorithmA(g, x0, sparsecut.WithPartition(part))
	case "vanilla":
		return sparsecut.NewVanillaGossip(g, x0)
	case "convex":
		return sparsecut.NewConvexGossip(g, x0, alpha)
	case "pushsum":
		return sparsecut.NewPushSum(g, x0, seed)
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gossipsim:", err)
	os.Exit(1)
}
