// Package flight is the runtime's causal flight recorder: an always-on,
// bounded-memory capture of the exchange protocol's per-node event stream,
// plus the causal stitcher that reconstructs per-exchange span trees from
// the merged rings after the fact.
//
// The package is deliberately dependency-free (stdlib only) and knows
// nothing about internal/dist: records carry plain integers, and the
// message-kind byte values mirror dist.MsgKind one-for-one (asserted by a
// cross-check test in internal/dist). Both drivers of the exchange
// protocol emit into the same recorder — the live goroutine runtime
// (wall-clock timestamps, scheduling-ordered) and the model checker's
// deterministic replayer (virtual-tick timestamps, fully reproducible) —
// so a production incident and a model-checker counterexample render
// through the same span-tree tooling (cmd/tracez).
//
// Memory is bounded by construction: each node owns a fixed-capacity ring
// of fixed-size records, and when the ring wraps the oldest records are
// overwritten (counted, never reallocated). A nil *Recorder is the
// disabled recorder: Record is a no-op and Snapshot returns an empty
// dump, the same contract as internal/metrics' nil registry, so call
// sites need no enable flag of their own.
//
// See DESIGN.md §12 for the record layout, ring semantics, the stitching
// algorithm and the nil contract.
package flight

import (
	"sync"
	"sync/atomic"
)

// EventKind discriminates flight records. The values are part of the dump
// format (binary and JSON) and must not be renumbered.
type EventKind uint8

const (
	// EvInitiate: the initiator started an exchange — its LOCK went out
	// and its Await state was created. Seq/Edge/X are the LOCK's.
	EvInitiate EventKind = iota + 1
	// EvSend: a protocol message was handed to the transport. Msg/Re are
	// the message's kind and lineage; Node is the sender.
	EvSend
	// EvRecv: a protocol message was delivered to the protocol machine.
	// Node is the receiver.
	EvRecv
	// EvApply: the initiator applied its half (+delta) of its current
	// exchange; X is the delta.
	EvApply
	// EvCommit: the responder applied its half (−delta); the exchange is
	// committed.
	EvCommit
	// EvAbort: an outstanding initiation resolved without applying
	// anything. Flags carries the reason (ReasonNack/Timeout/Crash).
	EvAbort
	// EvPendHold: the responder locked itself and holds a new proposal;
	// X is the held delta.
	EvPendHold
	// EvPendDrop: the held proposal was rolled back without committing.
	EvPendDrop
	// EvTimeout: the initiator's lock timeout fired.
	EvTimeout
	// EvResend: the responder's retransmission lease fired; the held
	// proposal goes out again.
	EvResend
	// EvCrash: the node fail-stopped (not tied to one exchange; the
	// volatile initiation's abort is a separate EvAbort record).
	EvCrash
	// EvRecover: the node came back from a crash.
	EvRecover
	// EvNetDrop: a message was lost in the network — Flags tells Bernoulli
	// loss (ReasonLoss), mailbox congestion (ReasonCongestion), a
	// model-checker drop action (ReasonSchedule), or delivery to a dead
	// node (ReasonDead).
	EvNetDrop
	// EvNetDup: the model checker duplicated an in-flight message.
	EvNetDup
)

// String names the event kind (used by the renderers and JSON dumps).
func (k EventKind) String() string {
	switch k {
	case EvInitiate:
		return "initiate"
	case EvSend:
		return "send"
	case EvRecv:
		return "recv"
	case EvApply:
		return "apply"
	case EvCommit:
		return "commit"
	case EvAbort:
		return "abort"
	case EvPendHold:
		return "hold"
	case EvPendDrop:
		return "rollback"
	case EvTimeout:
		return "timeout"
	case EvResend:
		return "resend"
	case EvCrash:
		return "crash"
	case EvRecover:
		return "recover"
	case EvNetDrop:
		return "net-drop"
	case EvNetDup:
		return "net-dup"
	default:
		return "ev?"
	}
}

// Message-kind byte values, wire-compatible with dist.MsgKind (asserted by
// TestFlightMsgKindsMatch in internal/dist). Zero means "no message".
const (
	MsgNone    uint8 = 0
	MsgLock    uint8 = 1
	MsgPropose uint8 = 2
	MsgNack    uint8 = 3
	MsgCommit  uint8 = 4
)

// MsgName names a message-kind byte.
func MsgName(k uint8) string {
	switch k {
	case MsgLock:
		return "LOCK"
	case MsgPropose:
		return "PROPOSE"
	case MsgNack:
		return "NACK"
	case MsgCommit:
		return "COMMIT"
	default:
		return "msg?"
	}
}

// Flags values. The low bits are a reason code; reasons are mutually
// exclusive per record.
const (
	ReasonNone       uint8 = 0
	ReasonNack       uint8 = 1 // abort: the peer refused the LOCK
	ReasonTimeout    uint8 = 2 // abort: the lock timeout fired first
	ReasonCrash      uint8 = 3 // abort: the initiator crashed
	ReasonLoss       uint8 = 4 // net-drop: Bernoulli transport loss
	ReasonCongestion uint8 = 5 // net-drop: destination mailbox full
	ReasonSchedule   uint8 = 6 // net-drop/dup: a model-checker action
	ReasonDead       uint8 = 7 // net-drop: the destination node was down
)

// ReasonName names a reason code.
func ReasonName(f uint8) string {
	switch f {
	case ReasonNone:
		return ""
	case ReasonNack:
		return "nack-busy"
	case ReasonTimeout:
		return "timeout"
	case ReasonCrash:
		return "crash"
	case ReasonLoss:
		return "loss"
	case ReasonCongestion:
		return "congestion"
	case ReasonSchedule:
		return "schedule"
	case ReasonDead:
		return "dead-node"
	default:
		return "reason?"
	}
}

// NoNode marks Init/Peer/Edge fields that do not apply to a record.
const NoNode = -1

// Record is one fixed-size flight event. Every field is plain data so the
// binary dump is a flat array of 48-byte records; the JSON rendering uses
// the short field names below. Init is the causal key: the id of the node
// that initiated the exchange this event belongs to ((Init, Seq) names one
// exchange attempt), or NoNode for events outside any exchange (crash,
// recover). Emitters derive Init from the message's Kind/Re lineage — see
// dist.Message.Initiator.
type Record struct {
	// TimeNs is the event time: wall nanoseconds in the live runtime,
	// virtual ticks in the model checker.
	TimeNs int64 `json:"t"`
	// Seq is the exchange sequence number ((Init, Seq) is the span key).
	Seq uint64 `json:"seq"`
	// X is the payload: the initiator's value on a LOCK, the delta on a
	// PROPOSE/apply/commit, 0 otherwise.
	X float64 `json:"x"`
	// Init is the exchange initiator, or NoNode.
	Init int32 `json:"init"`
	// Node is the node that recorded the event.
	Node int32 `json:"node"`
	// Peer is the other endpoint of the message or exchange, or NoNode.
	Peer int32 `json:"peer"`
	// Edge is the graph edge the exchange runs over, or NoNode.
	Edge int32 `json:"edge"`
	// Kind is the event kind.
	Kind EventKind `json:"ev"`
	// Msg and Re are the message's kind and answered-kind for message
	// events (EvSend/EvRecv/EvNetDrop/EvNetDup), MsgNone otherwise.
	Msg uint8 `json:"msg,omitempty"`
	Re  uint8 `json:"re,omitempty"`
	// Flags carries the reason code.
	Flags uint8 `json:"flags,omitempty"`

	// gseq is the recorder-global arrival index, the total order the
	// merged dump is sorted by. It is assigned by Record, never
	// serialized (position in Dump.Events preserves it).
	gseq uint64
}

// ring is one node's bounded event buffer: fixed-capacity, overwrite-
// oldest. A mutex (not atomics) keeps concurrent writers race-clean; in
// the live runtime each ring has a single writer (its node goroutine)
// plus occasional transport-layer writers, so the lock is essentially
// uncontended.
type ring struct {
	mu  sync.Mutex
	buf []Record
	n   uint64 // total records ever written (n - len(buf) were overwritten)
}

func (r *ring) put(rec Record) {
	r.mu.Lock()
	r.buf[r.n%uint64(len(r.buf))] = rec
	r.n++
	r.mu.Unlock()
}

// snapshot appends the ring's live records, oldest first, to dst.
func (r *ring) snapshot(dst []Record) ([]Record, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := uint64(len(r.buf))
	start, count := uint64(0), r.n
	if r.n > c {
		start, count = r.n-c, c
	}
	for i := uint64(0); i < count; i++ {
		dst = append(dst, r.buf[(start+i)%c])
	}
	return dst, r.n - count
}

// DefaultRingCap is the per-node ring capacity used when New is asked for
// zero or less: 4096 records (192 KiB per node) keeps minutes of protocol
// history at typical exchange rates.
const DefaultRingCap = 4096

// Recorder is the per-node flight recorder. Construct with New; a nil
// *Recorder is the disabled recorder (Record no-ops, Snapshot is empty).
type Recorder struct {
	rings []ring
	gseq  atomic.Uint64
}

// New returns a recorder with one ring of perNodeCap records for each of
// nodes nodes (perNodeCap <= 0 selects DefaultRingCap).
func New(nodes, perNodeCap int) *Recorder {
	if nodes < 1 {
		nodes = 1
	}
	if perNodeCap <= 0 {
		perNodeCap = DefaultRingCap
	}
	rc := &Recorder{rings: make([]ring, nodes)}
	for i := range rc.rings {
		rc.rings[i].buf = make([]Record, perNodeCap)
	}
	return rc
}

// Record appends rec to node rec.Node's ring (clamped into range), stamping
// the recorder-global arrival index. No-op on a nil recorder — the hot
// paths of internal/dist call it unconditionally.
func (rc *Recorder) Record(rec Record) {
	if rc == nil {
		return
	}
	rec.gseq = rc.gseq.Add(1)
	n := int(rec.Node)
	if n < 0 || n >= len(rc.rings) {
		n = 0
	}
	rc.rings[n].put(rec)
}

// Nodes returns the number of per-node rings (0 on a nil recorder).
func (rc *Recorder) Nodes() int {
	if rc == nil {
		return 0
	}
	return len(rc.rings)
}

// Snapshot merges every ring into a Dump: all live records in recorder-
// global arrival order, plus the count of records the rings overwrote.
// Safe to call while writers are active (per-ring cut consistency, like a
// metrics snapshot); quiescent snapshots are exact and — given identical
// recorded histories — byte-identical when encoded.
func (rc *Recorder) Snapshot() *Dump {
	d := &Dump{Version: DumpVersion}
	if rc == nil {
		return d
	}
	d.Nodes = len(rc.rings)
	d.RingCap = len(rc.rings[0].buf)
	for i := range rc.rings {
		var lost uint64
		d.Events, lost = rc.rings[i].snapshot(d.Events)
		d.Overwritten += int64(lost)
	}
	sortRecords(d.Events)
	return d
}
