package graph

// This file holds the deterministic graph generators. Random generators
// live in random.go; composite sparse-cut constructions in dumbbell.go.

import (
	"fmt"
	"math"
)

// Complete returns the complete graph K_n. It panics if n < 1.
func Complete(n int) *Graph {
	b := NewBuilder(n).SetName(fmt.Sprintf("complete(n=%d)", n))
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(NodeID(u), NodeID(v))
		}
	}
	return b.MustBuild()
}

// Path returns the path graph P_n (n-1 edges). It panics if n < 1.
func Path(n int) *Graph {
	b := NewBuilder(n).SetName(fmt.Sprintf("path(n=%d)", n))
	for u := 0; u+1 < n; u++ {
		b.AddEdge(NodeID(u), NodeID(u+1))
	}
	return b.MustBuild()
}

// Cycle returns the cycle C_n. It panics if n < 3.
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: cycle needs n >= 3, got %d", n))
	}
	b := NewBuilder(n).SetName(fmt.Sprintf("cycle(n=%d)", n))
	for u := 0; u < n; u++ {
		b.AddEdge(NodeID(u), NodeID((u+1)%n))
	}
	return b.MustBuild()
}

// Star returns the star K_{1,n-1} with node 0 as the hub. It panics if n < 2.
func Star(n int) *Graph {
	if n < 2 {
		panic(fmt.Sprintf("graph: star needs n >= 2, got %d", n))
	}
	b := NewBuilder(n).SetName(fmt.Sprintf("star(n=%d)", n))
	for u := 1; u < n; u++ {
		b.AddEdge(0, NodeID(u))
	}
	return b.MustBuild()
}

// Grid returns the rows x cols 2-D lattice with 4-neighbour connectivity.
// Node (r, c) has ID r*cols + c. It panics unless rows, cols >= 1.
func Grid(rows, cols int) *Graph {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("graph: grid needs positive dims, got %dx%d", rows, cols))
	}
	b := NewBuilder(rows * cols).
		SetName(fmt.Sprintf("grid(%dx%d)", rows, cols)).
		SetPositions(gridPositions(rows, cols))
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.MustBuild()
}

// Torus returns the rows x cols lattice with wraparound (each node has
// degree 4 when rows, cols >= 3). It panics unless rows, cols >= 3.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("graph: torus needs dims >= 3, got %dx%d", rows, cols))
	}
	b := NewBuilder(rows * cols).SetName(fmt.Sprintf("torus(%dx%d)", rows, cols))
	id := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddEdge(id(r, c), id(r, (c+1)%cols))
			b.AddEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return b.MustBuild()
}

// Hypercube returns the d-dimensional hypercube Q_d on 2^d nodes. It panics
// if d < 0 or d > 20 (guard against absurd sizes).
func Hypercube(d int) *Graph {
	if d < 0 || d > 20 {
		panic(fmt.Sprintf("graph: hypercube dimension %d out of [0,20]", d))
	}
	n := 1 << uint(d)
	b := NewBuilder(n).SetName(fmt.Sprintf("hypercube(d=%d)", d))
	for u := 0; u < n; u++ {
		for bit := 0; bit < d; bit++ {
			v := u ^ (1 << uint(bit))
			if u < v {
				b.AddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	return b.MustBuild()
}

// CompleteBipartite returns K_{a,b}: nodes 0..a-1 on the left, a..a+b-1 on
// the right. It panics unless a, b >= 1.
func CompleteBipartite(a, bCount int) *Graph {
	if a < 1 || bCount < 1 {
		panic(fmt.Sprintf("graph: complete bipartite needs positive sides, got %d,%d", a, bCount))
	}
	b := NewBuilder(a + bCount).SetName(fmt.Sprintf("bipartite(%d,%d)", a, bCount))
	for u := 0; u < a; u++ {
		for v := a; v < a+bCount; v++ {
			b.AddEdge(NodeID(u), NodeID(v))
		}
	}
	return b.MustBuild()
}

// BinaryTree returns the complete binary tree with the given number of
// levels (level 1 = a single root). It panics if levels < 1 or levels > 24.
func BinaryTree(levels int) *Graph {
	if levels < 1 || levels > 24 {
		panic(fmt.Sprintf("graph: binary tree levels %d out of [1,24]", levels))
	}
	n := 1<<uint(levels) - 1
	b := NewBuilder(n).SetName(fmt.Sprintf("bintree(levels=%d)", levels))
	for u := 1; u < n; u++ {
		b.AddEdge(NodeID((u-1)/2), NodeID(u))
	}
	return b.MustBuild()
}

// Lollipop returns a clique of size m attached to a path of length tail
// (the classic slow-mixing example). It panics unless m >= 1, tail >= 0.
func Lollipop(m, tail int) *Graph {
	if m < 1 || tail < 0 {
		panic(fmt.Sprintf("graph: lollipop needs m >= 1, tail >= 0, got %d, %d", m, tail))
	}
	b := NewBuilder(m + tail).SetName(fmt.Sprintf("lollipop(m=%d,tail=%d)", m, tail))
	for u := 0; u < m; u++ {
		for v := u + 1; v < m; v++ {
			b.AddEdge(NodeID(u), NodeID(v))
		}
	}
	for u := m - 1; u < m+tail-1; u++ {
		b.AddEdge(NodeID(u), NodeID(u+1))
	}
	return b.MustBuild()
}

// gridPositions lays rows x cols nodes on the unit square, used by DOT
// export of lattice graphs for nicer rendering.
func gridPositions(rows, cols int) []Point {
	pos := make([]Point, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pos[r*cols+c] = Point{
				X: float64(c) / math.Max(1, float64(cols-1)),
				Y: float64(r) / math.Max(1, float64(rows-1)),
			}
		}
	}
	return pos
}
