package dist

import (
	"testing"
	"time"

	"sparsecut/internal/rng"
)

func TestChanTransportRoundtrip(t *testing.T) {
	tr := NewChanTransport(4)
	want := Message{Kind: MsgLock, From: 1, To: 2, Seq: 7, Edge: 3, X: 0.5}
	if err := tr.Send(want); err != nil {
		t.Fatal(err)
	}
	box, err := tr.Recv(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := <-box; got != want {
		t.Errorf("got %+v, want %+v", got, want)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(want); err != ErrClosed {
		t.Errorf("Send after Close: got %v, want ErrClosed", err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

func TestChanTransportDropsOnFullMailbox(t *testing.T) {
	tr := NewChanTransport(1)
	if err := tr.Send(Message{To: 0}); err != nil {
		t.Fatal(err)
	}
	// A full mailbox must drop (congestion loss), never block: two actors
	// blocked sending to each other's full mailboxes would deadlock.
	done := make(chan error, 1)
	go func() { done <- tr.Send(Message{To: 0}) }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("Send to full mailbox returned %v, want nil (drop)", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Send to full mailbox blocked")
	}
	if got := tr.Congested(); got != 1 {
		t.Errorf("Congested() = %d, want 1", got)
	}
}

// delivered pumps n sequence-numbered messages through tr and reports which
// sequence numbers reach mailbox 0.
func delivered(t *testing.T, tr Transport, n int) []uint64 {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := tr.Send(Message{Kind: MsgLock, To: 0, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	box, err := tr.Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	for {
		select {
		case m := <-box:
			got = append(got, m.Seq)
		default:
			return got
		}
	}
}

func TestDropTransportDeterministicGivenSeed(t *testing.T) {
	const n = 500
	const rate = 0.2
	run := func(seed uint64) []uint64 {
		dt, err := NewDropTransport(NewChanTransport(n), rate, rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		return delivered(t, dt, n)
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("same seed delivered %d vs %d messages", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at position %d: %d vs %d", i, a[i], b[i])
		}
	}
	if kept := float64(len(a)) / n; kept < 0.7 || kept > 0.9 {
		t.Errorf("kept fraction %.3f far from 1-rate=%.1f", kept, 1-rate)
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical drop patterns over 500 messages")
	}
}

func TestDropTransportCountsDrops(t *testing.T) {
	dt, err := NewDropTransport(NewChanTransport(100), 0.5, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	got := delivered(t, dt, 100)
	if int(dt.Dropped())+len(got) != 100 {
		t.Errorf("dropped %d + delivered %d != 100", dt.Dropped(), len(got))
	}
}

func TestDropTransportValidation(t *testing.T) {
	inner := NewChanTransport(1)
	cases := []struct {
		name  string
		inner Transport
		rate  float64
		r     *rng.RNG
	}{
		{"nil inner", nil, 0.1, rng.New(1)},
		{"negative rate", inner, -0.1, rng.New(1)},
		{"rate one", inner, 1, rng.New(1)},
		{"nil rng", inner, 0.1, nil},
	}
	for _, c := range cases {
		if _, err := NewDropTransport(c.inner, c.rate, c.r); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestDelayTransportDeliversEverything(t *testing.T) {
	const n = 50
	dt, err := NewDelayTransport(NewChanTransport(n), 5*time.Millisecond, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := dt.Send(Message{To: 0, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	box, _ := dt.Recv(0)
	seen := make(map[uint64]bool)
	deadline := time.After(2 * time.Second)
	for len(seen) < n {
		select {
		case m := <-box:
			seen[m.Seq] = true
		case <-deadline:
			t.Fatalf("only %d/%d messages delivered within 2s", len(seen), n)
		}
	}
}

func TestDelayTransportCloseCancelsPending(t *testing.T) {
	dt, err := NewDelayTransport(NewChanTransport(8), time.Hour, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := dt.Send(Message{To: 0, Seq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := dt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dt.Send(Message{To: 0}); err != ErrClosed {
		t.Errorf("Send after Close: got %v, want ErrClosed", err)
	}
}

func TestDelayTransportValidation(t *testing.T) {
	if _, err := NewDelayTransport(nil, time.Millisecond, rng.New(1)); err == nil {
		t.Error("nil inner: no error")
	}
	if _, err := NewDelayTransport(NewChanTransport(1), -time.Millisecond, rng.New(1)); err == nil {
		t.Error("negative delay: no error")
	}
	if _, err := NewDelayTransport(NewChanTransport(1), time.Millisecond, nil); err == nil {
		t.Error("nil rng: no error")
	}
}

func TestTCPTransportRoundtrip(t *testing.T) {
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := tr.Port(0); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Port(5); err == nil {
		t.Error("out-of-range Port: no error")
	}
	box1, err := tr.Recv(1)
	if err != nil {
		t.Fatal(err)
	}
	box0, err := tr.Recv(0)
	if err != nil {
		t.Fatal(err)
	}
	// Both directions, including a second message reusing the cached
	// connection.
	for i := 0; i < 3; i++ {
		want := Message{Kind: MsgPropose, From: 0, To: 1, Seq: uint64(i), Edge: 2, X: -1.25}
		if err := tr.Send(want); err != nil {
			t.Fatal(err)
		}
		select {
		case got := <-box1:
			if got != want {
				t.Errorf("got %+v, want %+v", got, want)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("message not delivered within 2s")
		}
	}
	back := Message{Kind: MsgCommit, From: 1, To: 0, Seq: 9}
	if err := tr.Send(back); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-box0:
		if got != back {
			t.Errorf("got %+v, want %+v", got, back)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reverse message not delivered within 2s")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(back); err != ErrClosed {
		t.Errorf("Send after Close: got %v, want ErrClosed", err)
	}
}

func TestTCPTransportValidation(t *testing.T) {
	if _, err := NewTCPTransport(0); err == nil {
		t.Error("zero addresses: no error")
	}
	tr, err := NewTCPTransport(1)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.Send(Message{To: 3}); err == nil {
		t.Error("send to unknown address: no error")
	}
	if _, err := tr.Recv(-1); err == nil {
		t.Error("recv on negative address: no error")
	}
}
