package dist

import (
	"math/rand"
	"testing"
)

// mkTimers returns n detached timers with node ids 0..n-1.
func mkTimers(n int) []wheelTimer {
	ts := make([]wheelTimer, n)
	for i := range ts {
		ts[i].node = int32(i)
	}
	return ts
}

// TestWheelZeroDelay: a timer scheduled for the past or the current tick
// must not fire inside schedule, and must fire on the very next advance.
func TestWheelZeroDelay(t *testing.T) {
	const tick = 100
	w := newWheel(tick, 5000)
	ts := mkTimers(3)

	w.schedule(&ts[0], 0)       // far past
	w.schedule(&ts[1], 5000)    // current tick
	w.schedule(&ts[2], 5000+50) // sub-tick future: same slot as "now"
	if w.pending != 3 {
		t.Fatalf("pending = %d, want 3", w.pending)
	}

	var fired []int32
	w.advance(5000, func(wt *wheelTimer) { fired = append(fired, wt.node) })
	if len(fired) != 0 {
		t.Fatalf("advance(now) fired %v; zero-delay timers must wait for the next tick", fired)
	}

	w.advance(5000+tick, func(wt *wheelTimer) { fired = append(fired, wt.node) })
	if len(fired) != 3 {
		t.Fatalf("after one tick fired %v, want all 3", fired)
	}
	if w.pending != 0 {
		t.Fatalf("pending = %d after firing, want 0", w.pending)
	}
}

// TestWheelSameTickFIFO: timers due in the same tick fire in the order they
// were scheduled, regardless of sub-tick deadline ordering.
func TestWheelSameTickFIFO(t *testing.T) {
	const tick = 1000
	w := newWheel(tick, 0)
	ts := mkTimers(4)

	// All land in slot 7; scheduled in order 2, 0, 3, 1 with deliberately
	// non-monotonic sub-tick offsets.
	w.schedule(&ts[2], 7*tick+900)
	w.schedule(&ts[0], 7*tick+100)
	w.schedule(&ts[3], 7*tick+500)
	w.schedule(&ts[1], 7*tick)

	var fired []int32
	w.advance(8*tick, func(wt *wheelTimer) { fired = append(fired, wt.node) })
	want := []int32{2, 0, 3, 1}
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want FIFO order %v", fired, want)
		}
	}
}

// TestWheelCascade: timers far enough out to land in levels 1, 2 and the
// overflow list must cascade down and fire at exactly their due slot.
func TestWheelCascade(t *testing.T) {
	const tick = 10
	w := newWheel(tick, 0)

	deltas := []int64{
		1,                             // level 0
		wheelSlots - 1,                // last level-0 slot
		wheelSlots,                    // first level-1 slot
		3*wheelSlots + 17,             // level 1
		wheelSlots*wheelSlots - 1,     // last level-1 slot
		wheelSlots * wheelSlots,       // first level-2 slot
		2*wheelSlots*wheelSlots + 123, // level 2
	}
	ts := mkTimers(len(deltas))
	for i, d := range deltas {
		w.schedule(&ts[i], d*tick)
	}

	firedAt := make(map[int32]int64)
	// Advance in coarse jumps to force multi-slot catch-up work.
	var now int64
	last := deltas[len(deltas)-1] * tick
	for now < last+tick {
		now += 997 * tick
		w.advance(now, func(wt *wheelTimer) { firedAt[wt.node] = w.cur })
	}
	for i, d := range deltas {
		got, ok := firedAt[int32(i)]
		if !ok {
			t.Fatalf("timer %d (delta %d slots) never fired", i, d)
		}
		if got != d {
			t.Errorf("timer %d fired at slot %d, want %d", i, got, d)
		}
	}
	if w.pending != 0 {
		t.Fatalf("pending = %d, want 0", w.pending)
	}
}

// TestWheelOverflow: a deadline beyond level 2's span sits in the overflow
// list and still fires at its due slot after repeated rechecks.
func TestWheelOverflow(t *testing.T) {
	const tick = 1
	w := newWheel(tick, 0)
	var wt wheelTimer
	const span = int64(wheelSlots) * wheelSlots * wheelSlots
	due := span + 5*int64(wheelSlots)*wheelSlots // past level 2's span
	w.schedule(&wt, due*tick)

	var firedSlot int64 = -1
	// Jump straight past the deadline in two big advances.
	w.advance((span/2)*tick, func(*wheelTimer) { t.Fatal("fired early") })
	w.advance((due+10)*tick, func(*wheelTimer) { firedSlot = w.cur })
	if firedSlot != due {
		t.Fatalf("overflow timer fired at slot %d, want %d", firedSlot, due)
	}
}

// TestWheelWraparoundSoak: random deadlines across many wheel rotations
// fire exactly once each, at their due slot, in non-decreasing slot order.
func TestWheelWraparoundSoak(t *testing.T) {
	const tick = 10
	r := rand.New(rand.NewSource(42))
	w := newWheel(tick, 123456) // non-zero epoch: cur starts mid-rotation
	base := w.cur

	const n = 2000
	ts := mkTimers(n)
	due := make([]int64, n)
	for i := range ts {
		// Bias towards level 0/1 but include level-2 stragglers.
		d := int64(1 + r.Intn(4*wheelSlots*wheelSlots))
		if r.Intn(50) == 0 {
			d += int64(wheelSlots) * wheelSlots * 3
		}
		due[i] = base + d
		w.schedule(&ts[i], due[i]*tick)
	}

	fired := make(map[int32]int64)
	lastSlot := int64(-1)
	now := base * tick
	maxDue := int64(0)
	for _, d := range due {
		if d > maxDue {
			maxDue = d
		}
	}
	for w.cur <= maxDue {
		now += int64(1+r.Intn(3*wheelSlots)) * tick
		w.advance(now, func(wt *wheelTimer) {
			if prev, dup := fired[wt.node]; dup {
				t.Fatalf("timer %d fired twice (first at %d, again at %d)", wt.node, prev, w.cur)
			}
			fired[wt.node] = w.cur
			if w.cur < lastSlot {
				t.Fatalf("fire order went backwards: slot %d after %d", w.cur, lastSlot)
			}
			lastSlot = w.cur
		})
	}
	for i := range ts {
		got, ok := fired[int32(i)]
		if !ok {
			t.Fatalf("timer %d never fired (due slot %d, cur %d)", i, due[i], w.cur)
		}
		if got != due[i] {
			t.Errorf("timer %d fired at slot %d, want %d", i, got, due[i])
		}
	}
}

// TestWheelCancel: a cancelled timer never fires; cancelling after fire (or
// before any schedule) is a no-op; a cancelled timer can be rescheduled.
func TestWheelCancel(t *testing.T) {
	const tick = 100
	w := newWheel(tick, 0)
	ts := mkTimers(3)

	w.cancel(&ts[0]) // never scheduled: no-op
	if w.pending != 0 {
		t.Fatalf("pending = %d after no-op cancel, want 0", w.pending)
	}

	w.schedule(&ts[0], 5*tick)
	w.schedule(&ts[1], 5*tick)
	w.cancel(&ts[0])
	if w.pending != 1 {
		t.Fatalf("pending = %d after cancel, want 1", w.pending)
	}

	var fired []int32
	w.advance(10*tick, func(wt *wheelTimer) { fired = append(fired, wt.node) })
	if len(fired) != 1 || fired[0] != 1 {
		t.Fatalf("fired %v, want just timer 1", fired)
	}

	// Cancel-after-fire is a no-op and must not corrupt the pending count.
	w.cancel(&ts[1])
	if w.pending != 0 {
		t.Fatalf("pending = %d after cancel-after-fire, want 0", w.pending)
	}

	// The cancelled timer is reusable.
	w.schedule(&ts[0], 20*tick)
	w.advance(21*tick, func(wt *wheelTimer) { fired = append(fired, wt.node) })
	if len(fired) != 2 || fired[1] != 0 {
		t.Fatalf("fired %v, want rescheduled timer 0 to fire", fired)
	}
}

// TestWheelRescheduleInFire: the fire callback may reschedule the fired
// timer (periodic ticks) and cancel other pending timers mid-advance.
func TestWheelRescheduleInFire(t *testing.T) {
	const tick = 50
	w := newWheel(tick, 0)
	ts := mkTimers(2)

	w.schedule(&ts[0], 1*tick) // periodic: re-arms itself every 3 slots
	w.schedule(&ts[1], 7*tick) // victim: cancelled by the 2nd periodic fire

	var fires int
	w.advance(20*tick, func(wt *wheelTimer) {
		switch wt.node {
		case 0:
			fires++
			if fires == 2 {
				w.cancel(&ts[1])
			}
			if fires < 5 {
				w.schedule(wt, wt.when+3*tick)
			}
		case 1:
			t.Fatal("victim timer fired despite mid-advance cancel")
		}
	})
	if fires != 5 {
		t.Fatalf("periodic timer fired %d times, want 5", fires)
	}
	if w.pending != 0 {
		t.Fatalf("pending = %d, want 0", w.pending)
	}
}

// TestWheelCancelAfterFireThenReschedule pins the exact race the shard loop
// relies on under -race: the protocol timer fires, the step handler decides
// the deadline is stale, cancels (no-op), and immediately re-arms.
func TestWheelCancelAfterFireThenReschedule(t *testing.T) {
	const tick = 10
	w := newWheel(tick, 0)
	var wt wheelTimer

	w.schedule(&wt, 2*tick)
	var fired int
	w.advance(3*tick, func(x *wheelTimer) {
		fired++
		if x.scheduledIn() {
			t.Fatal("fired timer still reports scheduled")
		}
		w.cancel(x) // stale-deadline path: cancel the just-fired timer
		w.schedule(x, x.when+4*tick)
	})
	w.advance(10*tick, func(*wheelTimer) { fired++ })
	if fired != 2 {
		t.Fatalf("fired %d times, want 2 (initial + re-arm)", fired)
	}
}
