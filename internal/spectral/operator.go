package spectral

import (
	"sparsecut/internal/graph"
)

// Operator is a linear map on R^Dim applied matrix-free.
type Operator interface {
	// Dim returns the dimension of the space the operator acts on.
	Dim() int
	// Apply computes dst = Op(src). dst and src must not alias and must
	// both have length Dim.
	Apply(dst, src []float64)
}

// Laplacian is the combinatorial graph Laplacian L = D - A as an Operator.
type Laplacian struct {
	G *graph.Graph
}

// Dim implements Operator.
func (l Laplacian) Dim() int { return l.G.NumNodes() }

// Apply computes dst = L*src: dst[u] = deg(u)*src[u] - sum_{v~u} src[v].
func (l Laplacian) Apply(dst, src []float64) {
	for u := 0; u < l.G.NumNodes(); u++ {
		acc := float64(l.G.Degree(graph.NodeID(u))) * src[u]
		for _, he := range l.G.Neighbors(graph.NodeID(u)) {
			acc -= src[he.Peer]
		}
		dst[u] = acc
	}
}

// Adjacency is the graph adjacency matrix A as an Operator.
type Adjacency struct {
	G *graph.Graph
}

// Dim implements Operator.
func (a Adjacency) Dim() int { return a.G.NumNodes() }

// Apply computes dst = A*src.
func (a Adjacency) Apply(dst, src []float64) {
	for u := 0; u < a.G.NumNodes(); u++ {
		acc := 0.0
		for _, he := range a.G.Neighbors(graph.NodeID(u)) {
			acc += src[he.Peer]
		}
		dst[u] = acc
	}
}

// Shifted wraps an operator as c*I - Op. With c >= λmax(Op) this flips the
// spectrum so the smallest eigenvalues of Op become the largest of the
// shifted operator — the standard trick for extracting λ2 of a Laplacian by
// power iteration.
type Shifted struct {
	C  float64
	Op Operator
}

// Dim implements Operator.
func (s Shifted) Dim() int { return s.Op.Dim() }

// Apply computes dst = C*src - Op(src).
func (s Shifted) Apply(dst, src []float64) {
	s.Op.Apply(dst, src)
	for i := range dst {
		dst[i] = s.C*src[i] - dst[i]
	}
}
