// Dumbbell: reproduce the paper's headline separation live — measure the
// averaging time Tav (Definition 1) of vanilla gossip and of Algorithm A
// on symmetric dumbbells of growing size, and print the speedup.
//
// Theorem 1 forces every convex algorithm to Tav = Omega(n) here; Theorem 2
// gives Algorithm A O(polylog n). Expect the speedup column to grow
// roughly linearly with n.
package main

import (
	"fmt"
	"log"

	"sparsecut"
)

func main() {
	fmt.Printf("%6s  %14s  %12s  %8s\n", "n", "Tav(vanilla)", "Tav(A)", "speedup")
	for _, n := range []int{32, 64, 128} {
		g, part, err := sparsecut.NewDumbbell(n/2, n/2, 1)
		if err != nil {
			log.Fatal(err)
		}
		x0 := sparsecut.WorstCaseInit(part)

		vanilla, err := sparsecut.MeasureAveragingTime(g,
			func(int, uint64) (sparsecut.Algorithm, error) {
				return sparsecut.NewVanillaGossip(g, x0)
			},
			sparsecut.TavConfig{Trials: 5, MaxTime: 50 * float64(n), MarginFactor: 1})
		if err != nil {
			log.Fatal(err)
		}

		algA, err := sparsecut.MeasureAveragingTime(g,
			func(int, uint64) (sparsecut.Algorithm, error) {
				return sparsecut.NewAlgorithmA(g, x0, sparsecut.WithPartition(part))
			},
			sparsecut.TavConfig{Trials: 5, MaxTime: 50 * float64(n)})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%6d  %14.4g  %12.4g  %7.1fx\n",
			n, vanilla.Tav, algA.Tav, vanilla.Tav/algA.Tav)
	}
}
