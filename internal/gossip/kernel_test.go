package gossip

import (
	"math"
	"testing"

	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
	"sparsecut/internal/sim"
)

// The fused kernel path (RunEvents + TickEdges) must produce bit-identical
// value trajectories to the legacy HandleTick path through the generic Run
// loop, for the same seed.
func TestKernelBitIdenticalToHandleTick(t *testing.T) {
	g, part, err := graph.Dumbbell(24, 24, 2)
	if err != nil {
		t.Fatal(err)
	}
	x0 := CutIndicator(part)
	builders := []struct {
		name string
		make func() (Algorithm, error)
	}{
		{"vanilla", func() (Algorithm, error) { return NewVanilla(g, x0) }},
		{"convex(0.3)", func() (Algorithm, error) { return NewConvex(g, x0, 0.3) }},
		{"push-sum", func() (Algorithm, error) { return NewPushSum(g, x0, rng.New(9)) }},
	}
	const events = 20000
	for _, b := range builders {
		legacy, err := b.make()
		if err != nil {
			t.Fatal(err)
		}
		fused, err := b.make()
		if err != nil {
			t.Fatal(err)
		}
		engL, err := sim.NewEngine(g, sim.HandlerFunc(legacy.HandleTick), sim.WithSeed(42))
		if err != nil {
			t.Fatal(err)
		}
		engF, err := sim.NewEngine(g, fused, sim.WithSeed(42))
		if err != nil {
			t.Fatal(err)
		}
		tL, _ := engL.Run(sim.MaxEvents(events))
		tF, _ := engF.RunEvents(events)
		if tL != tF {
			t.Fatalf("%s: end time %v generic vs %v fused", b.name, tL, tF)
		}
		vL, vF := legacy.Values(), fused.Values()
		for i := range vL {
			if math.Float64bits(vL[i]) != math.Float64bits(vF[i]) {
				t.Fatalf("%s: value %d = %v legacy vs %v fused (not bit-identical)", b.name, i, vL[i], vF[i])
			}
		}
		// The fused path resyncs moments exactly, the legacy path maintains
		// them incrementally: they agree to float accumulation error.
		if d := relDiff(legacy.Variance(), fused.Variance()); d > 1e-9 {
			t.Errorf("%s: variance %v legacy vs %v fused (rel %g)", b.name, legacy.Variance(), fused.Variance(), d)
		}
		if d := relDiff(legacy.Mean(), fused.Mean()); d > 1e-9 {
			t.Errorf("%s: mean %v legacy vs %v fused (rel %g)", b.name, legacy.Mean(), fused.Mean(), d)
		}
	}
}

func relDiff(a, b float64) float64 {
	if a == b || math.Abs(a-b) < 1e-12 {
		return 0 // agreement to absolute float-noise level
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

// The fused two-point updates must be bit-identical to the Set sequences
// they replace, including the maintained moments.
func TestFusedStateUpdatesMatchSetPairs(t *testing.T) {
	x0 := []float64{3, -1, 4, 1.5, -9, 2.6}
	r := rng.New(5)
	a, b := NewState(x0), NewState(x0)
	for step := 0; step < 2000; step++ {
		i := r.Intn(len(x0))
		j := (i + 1 + r.Intn(len(x0)-1)) % len(x0)
		switch step % 3 {
		case 0: // vanilla average
			avg := (a.Get(i) + a.Get(j)) / 2
			a.Set(i, avg)
			a.Set(j, avg)
			b.AverageEdge(i, j)
		case 1: // convex
			// A float64 variable, not a constant: 1-alpha must round at
			// runtime exactly as the algorithm's field does.
			alpha := float64(0.7)
			xi, xj := a.Get(i), a.Get(j)
			a.Set(i, alpha*xi+(1-alpha)*xj)
			a.Set(j, alpha*xj+(1-alpha)*xi)
			b.ConvexEdge(i, j, alpha)
		default: // arbitrary two-point assignment
			vi, vj := a.Get(j)*1.25, a.Get(i)*0.75
			a.Set(i, vi)
			a.Set(j, vj)
			b.Set2(i, j, vi, vj)
		}
		for u := 0; u < a.N(); u++ {
			if math.Float64bits(a.Get(u)) != math.Float64bits(b.Get(u)) {
				t.Fatalf("step %d: value %d = %v vs %v", step, u, a.Get(u), b.Get(u))
			}
		}
		if math.Float64bits(a.Variance()) != math.Float64bits(b.Variance()) {
			t.Fatalf("step %d: variance %v vs %v", step, a.Variance(), b.Variance())
		}
	}
}

// The lazy batch updates must leave values bit-identical and the moments
// exact after the next read.
func TestLazyBatchUpdatesMatchEager(t *testing.T) {
	g, _, err := graph.Dumbbell(8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	x0 := make([]float64, g.NumNodes())
	r := rng.New(77)
	for i := range x0 {
		x0[i] = r.Float64()*10 - 5
	}
	eager, lazy := NewState(x0), NewState(x0)
	edges := make([]graph.EdgeID, 500)
	for k := range edges {
		edges[k] = graph.EdgeID(r.Intn(g.NumEdges()))
	}
	eu, ev := g.EdgeU(), g.EdgeV()
	for _, e := range edges {
		eager.AverageEdge(int(eu[e]), int(ev[e]))
	}
	lazy.AverageEdgesLazy(edges, eu, ev)
	for u := 0; u < eager.N(); u++ {
		if math.Float64bits(eager.Get(u)) != math.Float64bits(lazy.Get(u)) {
			t.Fatalf("value %d = %v eager vs %v lazy", u, eager.Get(u), lazy.Get(u))
		}
	}
	if d := relDiff(eager.Variance(), lazy.Variance()); d > 1e-12 {
		t.Errorf("variance %v eager vs %v lazy", eager.Variance(), lazy.Variance())
	}
	if d := relDiff(eager.Mean(), lazy.Mean()); d > 1e-12 {
		t.Errorf("mean %v eager vs %v lazy", eager.Mean(), lazy.Mean())
	}
	if d := relDiff(eager.Sum(), lazy.Sum()); d > 1e-12 {
		t.Errorf("sum %v eager vs %v lazy", eager.Sum(), lazy.Sum())
	}

	// Convex lazy variant.
	eagerC, lazyC := NewState(x0), NewState(x0)
	for _, e := range edges {
		eagerC.ConvexEdge(int(eu[e]), int(ev[e]), 0.8)
	}
	lazyC.ConvexEdgesLazy(edges, eu, ev, 0.8)
	for u := 0; u < eagerC.N(); u++ {
		if math.Float64bits(eagerC.Get(u)) != math.Float64bits(lazyC.Get(u)) {
			t.Fatalf("convex value %d = %v eager vs %v lazy", u, eagerC.Get(u), lazyC.Get(u))
		}
	}
	if d := relDiff(eagerC.Variance(), lazyC.Variance()); d > 1e-12 {
		t.Errorf("convex variance %v eager vs %v lazy", eagerC.Variance(), lazyC.Variance())
	}
}

func TestCopyInto(t *testing.T) {
	x0 := []float64{1, 2, 3, 4}
	s := NewState(x0)
	dst := make([]float64, 4)
	s.CopyInto(dst)
	vals := s.Values()
	for i := range vals {
		if math.Float64bits(dst[i]) != math.Float64bits(vals[i]) {
			t.Errorf("CopyInto[%d] = %v, Values = %v", i, dst[i], vals[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch not rejected")
		}
	}()
	s.CopyInto(make([]float64, 3))
}
