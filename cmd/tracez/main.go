// Command tracez renders flight-recorder dumps — the causal per-exchange
// captures written by distrun -flight, mcheck -flight, or fetched from a
// live /debug/flightz endpoint — as span trees and latency summaries.
//
// Usage:
//
//	tracez run.scfr                     # one line per exchange span
//	tracez -view timeline run.scfr      # full event tree per span
//	tracez -view phases run.scfr        # per-phase latency table (p50/p95/p99)
//	tracez -view aborts run.scfr        # abort census by reason and pair
//	tracez -view critical run.scfr      # slowest committed exchange, segment by segment
//	tracez -outcome aborted -node 3 run.scfr
//	curl -s localhost:6060/debug/flightz?format=binary | tracez -view spans -
//
// The input encoding (JSON or binary) is auto-detected. -o re-encodes the
// dump to a file instead of rendering: because both encodings are
// byte-deterministic functions of the content, re-encoding a dump twice
// yields identical bytes — CI uses this as the determinism check.
package main

import (
	"flag"
	"fmt"
	"os"

	"sparsecut/internal/flight"
)

func main() {
	var (
		view    = flag.String("view", "spans", "rendering: spans | timeline | phases | aborts | critical")
		node    = flag.Int("node", flight.NoNode, "keep only spans touching this node (responder or initiator)")
		init_   = flag.Int("init", flight.NoNode, "keep only spans initiated by this node")
		seq     = flag.Uint64("seq", 0, "keep only the span with this initiator sequence number")
		outcome = flag.String("outcome", "", "keep only spans with this outcome: committed | aborted | unresolved")
		out     = flag.String("o", "", "re-encode the dump to this file instead of rendering (.json = JSON, else binary)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tracez [flags] <dump-file | ->\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	d, err := readDump(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *out != "" {
		if err := d.WriteFile(*out); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d events to %s\n", len(d.Events), *out)
		return
	}

	f := flight.NewFilter()
	f.Node = *node
	f.Init = *init_
	f.Seq = *seq
	f.Outcome = *outcome

	set := flight.Stitch(d)
	w := os.Stdout
	switch *view {
	case "spans":
		flight.RenderSpans(w, set, f)
	case "timeline":
		flight.RenderTimeline(w, set, f)
	case "phases":
		flight.RenderPhases(w, set, f)
	case "aborts":
		flight.RenderAborts(w, set, f)
	case "critical":
		flight.RenderCritical(w, set, f)
	default:
		fatal(fmt.Errorf("unknown view %q (want spans|timeline|phases|aborts|critical)", *view))
	}
}

// readDump loads a dump from a file, or from stdin when path is "-".
func readDump(path string) (*flight.Dump, error) {
	if path == "-" {
		return flight.ReadDump(os.Stdin)
	}
	return flight.ReadFile(path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracez:", err)
	os.Exit(1)
}
