package check

import (
	"bytes"
	"testing"

	"sparsecut/internal/dist"
	"sparsecut/internal/flight"
)

// mutationTrace produces a counterexample by exhausting a seeded bug.
func mutationTrace(t *testing.T) *Trace {
	t.Helper()
	opt := faultOptions(10)
	opt.Mutation = dist.MutLaxWatermarkDedup
	res, err := Exhaustive(triangleSpec(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample == nil {
		t.Fatal("seeded mutation produced no counterexample")
	}
	return res.Counterexample
}

// TestReplayFlightMatchesReplay is the inertness proof at the checker
// level: attaching a recorder to a replay must not change its outcome —
// same violation, same step — because the emitter only observes the
// machine, never feeds it.
func TestReplayFlightMatchesReplay(t *testing.T) {
	tr := mutationTrace(t)
	plain, err := Replay(tr)
	if err != nil {
		t.Fatal(err)
	}
	rec := flight.New(tr.Graph.Nodes, 0)
	flighted, err := ReplayFlight(tr, rec)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Same(flighted) {
		t.Fatalf("recorder changed the replay outcome:\n plain: %+v\nflight: %+v", plain, flighted)
	}
	if len(rec.Snapshot().Events) == 0 {
		t.Fatal("replay recorded no flight events")
	}
}

// TestReplayFlightDeterministic pins the byte-determinism acceptance
// criterion: two flight-instrumented replays of the same trace encode to
// byte-identical dumps in both encodings (virtual ticks, single-threaded
// world — nothing scheduling-dependent leaks in).
func TestReplayFlightDeterministic(t *testing.T) {
	tr := mutationTrace(t)
	encode := func() ([]byte, []byte) {
		rec := flight.New(tr.Graph.Nodes, 0)
		if _, err := ReplayFlight(tr, rec); err != nil {
			t.Fatal(err)
		}
		d := rec.Snapshot()
		var j, b bytes.Buffer
		if err := d.WriteJSON(&j); err != nil {
			t.Fatal(err)
		}
		if err := d.WriteBinary(&b); err != nil {
			t.Fatal(err)
		}
		return j.Bytes(), b.Bytes()
	}
	j1, b1 := encode()
	j2, b2 := encode()
	if !bytes.Equal(j1, j2) {
		t.Error("two replay JSON dumps differ")
	}
	if !bytes.Equal(b1, b2) {
		t.Error("two replay binary dumps differ")
	}
	if len(b1) == 0 || len(j1) == 0 {
		t.Error("empty dump")
	}
}

// TestReplayFlightSpans stitches a counterexample capture and checks the
// span structure carries the protocol phases a human debugger needs: the
// lax-watermark-dedup bug's stale commit appears as a committed span for
// an exchange whose sibling attempt was aborted.
func TestReplayFlightSpans(t *testing.T) {
	tr := mutationTrace(t)
	rec := flight.New(tr.Graph.Nodes, 0)
	v, err := ReplayFlight(tr, rec)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		t.Fatal("violation did not reproduce")
	}
	set := flight.Stitch(rec.Snapshot())
	if len(set.Spans) == 0 {
		t.Fatal("no spans stitched from the counterexample")
	}
	// Every span's events agree on the causal key, and phase timestamps
	// are monotone where observed.
	for i := range set.Spans {
		sp := &set.Spans[i]
		for _, e := range sp.Events {
			if int(e.Init) != sp.Init || e.Seq != sp.Seq {
				t.Errorf("span %d#%d holds foreign record %+v", sp.Init, sp.Seq, e)
			}
		}
		if sp.HoldNs >= 0 && sp.LockNs >= 0 && sp.HoldNs < sp.LockNs {
			t.Errorf("span %d#%d holds before locking: lock=%d hold=%d", sp.Init, sp.Seq, sp.LockNs, sp.HoldNs)
		}
		if sp.ApplyNs >= 0 && sp.HoldNs >= 0 && sp.ApplyNs < sp.HoldNs {
			t.Errorf("span %d#%d applies before holding: hold=%d apply=%d", sp.Init, sp.Seq, sp.HoldNs, sp.ApplyNs)
		}
	}
	// The checker's virtual clock ticks once per action, so every record's
	// timestamp is bounded by the schedule length (times the tick size).
	for _, e := range rec.Snapshot().Events {
		if e.TimeNs < 0 || e.TimeNs > int64(len(tr.Actions)+1)*1000 {
			t.Errorf("record timestamp %d outside the virtual clock range", e.TimeNs)
		}
	}
}

// TestExplorationUnpolluted guards the DFS hot path: a world explored
// without a recorder must never allocate flight state, and clones made
// for invariant quiescence drains must not inherit the recorder (their
// speculative steps would pollute the capture).
func TestExplorationUnpolluted(t *testing.T) {
	w, err := newWorld(triangleSpec(), faultOptions(6))
	if err != nil {
		t.Fatal(err)
	}
	if w.rec != nil {
		t.Fatal("fresh world has a recorder")
	}
	rec := flight.New(3, 0)
	w.rec = rec
	cp := w.clone()
	if cp.rec != nil {
		t.Fatal("clone inherited the recorder; quiescence drains would record phantom events")
	}
}
