package stats

import (
	"math"
	"testing"
)

func TestWelfordMatchesBatch(t *testing.T) {
	xs := []float64{3.2, -1.5, 0.0, 7.75, 2.25, -4.5, 9.125}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != int64(len(xs)) {
		t.Fatalf("N = %d, want %d", w.N(), len(xs))
	}
	if got, want := w.Mean(), Mean(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if got, want := w.Variance(), Variance(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got, want := w.Min(), Min(xs); got != want {
		t.Errorf("Min = %v, want %v", got, want)
	}
	if got, want := w.Max(), Max(xs); got != want {
		t.Errorf("Max = %v, want %v", got, want)
	}
	_, ci := MeanCI95(xs)
	if math.Abs(w.CI95()-ci) > 1e-12 {
		t.Errorf("CI95 = %v, want %v", w.CI95(), ci)
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Min()) || !math.IsNaN(w.Max()) {
		t.Error("empty accumulator should report NaN moments")
	}
	if w.Variance() != 0 || w.CI95() != 0 {
		t.Error("empty accumulator should report zero spread")
	}
	w.Add(4.5)
	if w.Mean() != 4.5 || w.Min() != 4.5 || w.Max() != 4.5 {
		t.Error("single observation should pin mean/min/max")
	}
	if w.Variance() != 0 {
		t.Error("single observation variance should be 0")
	}
}

func TestWelfordMerge(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	for split := 0; split <= len(xs); split++ {
		var a, b Welford
		for _, x := range xs[:split] {
			a.Add(x)
		}
		for _, x := range xs[split:] {
			b.Add(x)
		}
		a.Merge(b)
		if a.N() != int64(len(xs)) {
			t.Fatalf("split %d: N = %d", split, a.N())
		}
		if math.Abs(a.Mean()-Mean(xs)) > 1e-12 {
			t.Errorf("split %d: Mean = %v, want %v", split, a.Mean(), Mean(xs))
		}
		if math.Abs(a.Variance()-Variance(xs)) > 1e-12 {
			t.Errorf("split %d: Variance = %v, want %v", split, a.Variance(), Variance(xs))
		}
		if a.Min() != 1 || a.Max() != 9 {
			t.Errorf("split %d: range [%v, %v], want [1, 9]", split, a.Min(), a.Max())
		}
	}
}
