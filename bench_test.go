package sparsecut

// Benchmark harness: one testing.B benchmark per evaluation experiment
// (E1–E15, see DESIGN.md §4) plus micro-benchmarks of the hot paths.
//
// The experiment benchmarks run the quick-mode workload once per iteration
// and report each experiment's headline metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates a compact, machine-readable version of the entire evaluation.
// The full bound-checked document is produced by `go run ./cmd/repro`.

import (
	"math"
	"strings"
	"testing"

	"sparsecut/internal/gossip"
	"sparsecut/internal/graph"
	"sparsecut/internal/report"
	"sparsecut/internal/rng"
	"sparsecut/internal/sim"
	"sparsecut/internal/spectral"
)

// benchExperiment runs one experiment per iteration and republishes its
// metrics as benchmark outputs.
func benchExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	e, ok := report.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	var last map[string]float64
	for i := 0; i < b.N; i++ {
		sec, err := e.RunEntry(report.Params{Quick: true, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		last = sec.MetricMap()
	}
	for _, m := range metrics {
		if v, ok := last[m]; ok {
			// testing.B forbids whitespace in metric units.
			unit := strings.NewReplacer(" ", "_", "(", "", ")", "", ".", "").Replace(m)
			b.ReportMetric(v, unit)
		}
	}
}

func BenchmarkE1ConvexLowerBoundScaling(b *testing.B) {
	benchExperiment(b, "E1", "slope")
}

func BenchmarkE2CutSizeScaling(b *testing.B) {
	benchExperiment(b, "E2", "slope")
}

func BenchmarkE3AlgorithmAScaling(b *testing.B) {
	benchExperiment(b, "E3", "slope")
}

func BenchmarkE4HeadlineSeparation(b *testing.B) {
	benchExperiment(b, "E4", "speedup@64", "speedup-growth")
}

func BenchmarkE5VarianceTrajectories(b *testing.B) {
	benchExperiment(b, "E5", "final-ratio-vanilla", "final-ratio-algorithm-A")
}

func BenchmarkE6StochasticDominance(b *testing.B) {
	benchExperiment(b, "E6", "frac-weak", "hard-violations")
}

func BenchmarkE7SubGaussianTail(b *testing.B) {
	benchExperiment(b, "E7", "beta", "r2")
}

func BenchmarkE8WeightAblation(b *testing.B) {
	benchExperiment(b, "E8", "contraction-symmetric-n1 (paper)")
}

func BenchmarkE9EpochConstantSweep(b *testing.B) {
	benchExperiment(b, "E9", "K-spectral")
}

func BenchmarkE10RealisticGraphs(b *testing.B) {
	benchExperiment(b, "E10", "speedup-planted", "speedup-sensor")
}

func BenchmarkE11DiffusionBaseline(b *testing.B) {
	benchExperiment(b, "E11", "rounds-first", "rounds-second", "rounds-A-equivalent")
}

func BenchmarkE12DistributedRule(b *testing.B) {
	benchExperiment(b, "E12", "ratio@sim", "max-divergence")
}

func BenchmarkE13TimingModels(b *testing.B) {
	benchExperiment(b, "E13", "speedup-uniform", "speedup-nodeclock")
}

func BenchmarkE14AllCutEdges(b *testing.B) {
	benchExperiment(b, "E14", "gain@k=4")
}

// --- micro-benchmarks of the hot paths ---

// BenchmarkSimulatorVanillaTick measures raw event throughput of the
// event-driven simulator running vanilla gossip on a dumbbell — the fused
// kernel path (RunEvents), which is what Simulate and the averaging-time
// estimator drive.
func BenchmarkSimulatorVanillaTick(b *testing.B) {
	g, part, err := graph.Dumbbell(64, 64, 1)
	if err != nil {
		b.Fatal(err)
	}
	alg, err := gossip.NewVanilla(g, gossip.CutIndicator(part))
	if err != nil {
		b.Fatal(err)
	}
	eng, err := sim.NewEngine(g, alg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	eng.RunEvents(int64(b.N))
}

// BenchmarkSimulatorVanillaTickLegacy measures the same workload through
// the generic Run loop (per-event virtual dispatch, closure stop
// condition) — the pre-kernel hot path, kept for comparison.
func BenchmarkSimulatorVanillaTickLegacy(b *testing.B) {
	g, part, err := graph.Dumbbell(64, 64, 1)
	if err != nil {
		b.Fatal(err)
	}
	alg, err := gossip.NewVanilla(g, gossip.CutIndicator(part))
	if err != nil {
		b.Fatal(err)
	}
	eng, err := sim.NewEngine(g, alg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	eng.Run(sim.MaxEvents(int64(b.N)))
}

// BenchmarkSimulatorTrackedVanilla measures the averaging-time estimator's
// per-event cost: the fused tracked loop with one moment read per event.
func BenchmarkSimulatorTrackedVanilla(b *testing.B) {
	g, part, err := graph.Dumbbell(64, 64, 1)
	if err != nil {
		b.Fatal(err)
	}
	alg, err := gossip.NewVanilla(g, gossip.CutIndicator(part))
	if err != nil {
		b.Fatal(err)
	}
	eng, err := sim.NewEngine(g, alg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	// StopLevel -1 is unreachable, so the loop runs to MaxTime; at total
	// rate |E| that horizon yields ~b.N events.
	if _, ok := eng.RunTracked(sim.Tracked{ExceedLevel: 0, StopLevel: -1, Quiet: 0, MaxTime: float64(b.N) / float64(g.NumEdges())}); !ok {
		b.Fatal("tracked fast path unavailable")
	}
	b.ReportMetric(float64(eng.Events())/float64(b.N), "events/op")
}

// BenchmarkSimulatorVanillaBatchBridged measures the replica-batched
// untracked hot path: 16 replicas in SoA lockstep, one uniform pick per
// event, one Gamma bridge draw per 256-event chunk.
func BenchmarkSimulatorVanillaBatchBridged(b *testing.B) {
	g, part, err := graph.Dumbbell(64, 64, 1)
	if err != nil {
		b.Fatal(err)
	}
	const replicas = 16
	ens, err := gossip.NewVanillaEnsemble(g, gossip.CutIndicator(part), replicas)
	if err != nil {
		b.Fatal(err)
	}
	root := rng.New(1)
	streams := make([]*rng.RNG, replicas)
	for i := range streams {
		streams[i] = root.Split()
	}
	eng, err := sim.NewBatchEngine(g, ens, streams)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	eng.RunEvents((int64(b.N) + replicas - 1) / replicas)
}

// BenchmarkSimulatorVanillaBatchTracked measures the replica-batched
// averaging-time loop: eager per-event moments and exceedance compares on
// the SoA rows, chunk-bridged clocks.
func BenchmarkSimulatorVanillaBatchTracked(b *testing.B) {
	g, part, err := graph.Dumbbell(64, 64, 1)
	if err != nil {
		b.Fatal(err)
	}
	const replicas = 16
	ens, err := gossip.NewVanillaEnsemble(g, gossip.CutIndicator(part), replicas)
	if err != nil {
		b.Fatal(err)
	}
	root := rng.New(1)
	streams := make([]*rng.RNG, replicas)
	for i := range streams {
		streams[i] = root.Split()
	}
	eng, err := sim.NewBatchEngine(g, ens, streams)
	if err != nil {
		b.Fatal(err)
	}
	var0 := ens.ReplicaVariance(0)
	b.ResetTimer()
	eng.RunTracked(sim.Tracked{
		ExceedLevel: var0 * math.Exp(-2),
		StopLevel:   -1, // unreachable: run every replica to the horizon
		MaxTime:     float64(b.N) / float64(replicas*g.NumEdges()),
	})
}

// BenchmarkSimulatorPerEdgeHeap measures the heap-based per-edge-clock
// scheduler on the same workload.
func BenchmarkSimulatorPerEdgeHeap(b *testing.B) {
	g, part, err := graph.Dumbbell(64, 64, 1)
	if err != nil {
		b.Fatal(err)
	}
	alg, err := gossip.NewVanilla(g, gossip.CutIndicator(part))
	if err != nil {
		b.Fatal(err)
	}
	eng, err := sim.NewEngine(g, alg, sim.WithScheduler(sim.PerEdgeClocks))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	eng.Run(sim.MaxEvents(int64(b.N)))
}

// BenchmarkAlgorithmATick measures Algorithm A's per-event cost including
// the O(1) variance tracking.
func BenchmarkAlgorithmATick(b *testing.B) {
	g, part, err := graph.Dumbbell(64, 64, 1)
	if err != nil {
		b.Fatal(err)
	}
	alg, err := NewAlgorithmA(g, gossip.CutIndicator(part), WithPartition(part))
	if err != nil {
		b.Fatal(err)
	}
	eng, err := sim.NewEngine(g, alg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	eng.RunEvents(int64(b.N))
}

// BenchmarkLambda2Dumbbell measures the spectral cut-analysis cost that
// Algorithm A's auto-configuration pays once per graph.
func BenchmarkLambda2Dumbbell(b *testing.B) {
	g, _, err := graph.Dumbbell(64, 64, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := spectral.Lambda2(g, spectral.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
