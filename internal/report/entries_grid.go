package report

// The grid-backed experiments: every cell is a scenario.Spec evaluated by
// the deterministic sweep engine (vanilla/convex/push-sum cells on the
// replica-batched engine, Algorithm A on the per-event tracked loop), with
// the paper's predicted bounds computed per cell from internal/spectral.

import (
	"fmt"
	"math"

	"sparsecut/internal/avgtime"
	"sparsecut/internal/core"
	"sparsecut/internal/cut"
	"sparsecut/internal/graph"
	"sparsecut/internal/scenario"
	"sparsecut/internal/spectral"
	"sparsecut/internal/sweep"
)

func init() {
	register(Entry{
		ID:    "E1",
		Title: "convex lower bound — Tav scaling in n on the dumbbell",
		Claim: "Theorem 1: any algorithm in C has Tav = Omega(min(|V1|,|V2|)/|E12|); on the symmetric dumbbell with one cut edge this is Omega(n)",
		Run:   runE1,
	})
	register(Entry{
		ID:    "E2",
		Title: "convex lower bound — Tav scaling in |E12|",
		Claim: "Theorem 1: Tav = Omega(n1/|E12|) — doubling the cut halves the bound",
		Run:   runE2,
	})
	register(Entry{
		ID:    "E3",
		Title: "Algorithm A — Tav scaling in n on the dumbbell",
		Claim: "Theorem 2 + example: Tav(A) = O(log n (Tvan(G1)+Tvan(G2))) = O(polylog n) on the dumbbell",
		Run:   runE3,
	})
	register(Entry{
		ID:    "E4",
		Title: "headline separation — Algorithm A vs the best convex baseline",
		Claim: "Section 1 example G': convex Omega(n) vs A O(log n) — an exponential separation in n",
		Run:   runE4,
	})
	register(Entry{
		ID:    "E9",
		Title: "ablation: epoch constant C and Tvan estimator",
		Claim: "Algorithm A needs C 'sufficiently large'; small C under-mixes the sides before a swap and stalls convergence",
		Run:   runE9,
	})
	register(Entry{
		ID:    "E10",
		Title: "beyond the dumbbell: planted partitions and walled geometric graphs",
		Claim: "Section 1: A outperforms convex algorithms whenever G1, G2 are internally well connected but poorly connected to each other — including when the cut must be discovered",
		Run:   runE10,
	})
	register(Entry{
		ID:    "E13",
		Title: "extension: node-clock model (footnote 1) and heterogeneous edge rates",
		Claim: "Footnote 1: the edge-clock model simulates the node-clock model (and vice versa); Algorithm A's separation survives degree-dependent and random rate heterogeneity",
		Run:   runE13,
	})
	register(Entry{
		ID:    "E14",
		Title: "extension: swapping over all cut edges (vs the paper's single ec)",
		Claim: "The paper ignores cut edges other than ec; rotating the swap over all of E12 shortens epochs by ~|E12| at identical per-swap semantics",
		Run:   runE14,
	})
}

// dumbbellBase is the shared base spec of the dumbbell experiments.
func dumbbellBase(trials int) scenario.Spec {
	return scenario.Spec{
		Graph: scenario.GraphSpec{Family: "dumbbell", Cut: 1},
		Stop:  scenario.StopSpec{Trials: trials},
	}
}

func e1Trials(p Params) int { return pick(p, 3, 7) }

func runE1(p Params) (Section, error) {
	var sec Section
	grid := sweep.Grid{
		Base:   dumbbellBase(e1Trials(p)),
		Ns:     pick(p, []int{16, 32, 64}, []int{32, 64, 128, 256}),
		Algos:  []string{"convex"},
		Alphas: []float64{0.5, 0.75},
	}
	cells, err := runGrid(&sec, gridTable{name: "convex averaging time, symmetric dumbbell, 1 cut edge", grid: grid}, p)
	if err != nil {
		return sec, err
	}
	vanilla := cellsWhere(cells, func(s scenario.Spec) bool { return s.Algo.Alpha == 0.5 })
	var ns, tavs []float64
	for _, c := range vanilla {
		ns = append(ns, float64(c.Nodes))
		tavs = append(tavs, c.Tav)
		sec.addMetric(fmt.Sprintf("tav-vanilla@%d", c.Nodes), c.Tav)
	}
	if err := slopeCheck(&sec, "log-log slope of Tav(vanilla) vs n", ns, tavs,
		"Theorem 1 predicts ~linear growth: slope >= 0.7", func(s float64) bool { return s >= 0.7 }); err != nil {
		return sec, err
	}
	return sec, nil
}

func runE2(p Params) (Section, error) {
	var sec Section
	n := pick(p, 48, 128)
	base := dumbbellBase(e1Trials(p))
	base.Graph.N = n
	grid := sweep.Grid{
		Base:  base,
		Cuts:  pick(p, []int{1, 2, 4}, []int{1, 2, 4, 8, 16}),
		Algos: []string{"vanilla"},
	}
	cells, err := runGrid(&sec, gridTable{name: fmt.Sprintf("vanilla averaging time vs cut size, dumbbell n=%d", n), grid: grid}, p)
	if err != nil {
		return sec, err
	}
	var ks, tavs []float64
	for _, c := range cells {
		ks = append(ks, float64(c.CutSize))
		tavs = append(tavs, c.Tav)
		sec.addMetric(fmt.Sprintf("tav@k=%d", c.CutSize), c.Tav)
	}
	if err := slopeCheck(&sec, "log-log slope of Tav vs |E12|", ks, tavs,
		"Theorem 1 predicts ~1/|E12| decay: slope <= -0.4", func(s float64) bool { return s <= -0.4 }); err != nil {
		return sec, err
	}
	return sec, nil
}

func runE3(p Params) (Section, error) {
	var sec Section
	grid := sweep.Grid{
		Base:  dumbbellBase(e1Trials(p)),
		Ns:    pick(p, []int{16, 32, 64}, []int{32, 64, 128, 256, 512}),
		Algos: []string{"A"},
	}
	cells, err := runGrid(&sec, gridTable{name: "Algorithm A averaging time, symmetric dumbbell, 1 cut edge", grid: grid}, p)
	if err != nil {
		return sec, err
	}
	var ns, tavs []float64
	for _, c := range cells {
		ns = append(ns, float64(c.Nodes))
		tavs = append(tavs, c.Tav)
		sec.addMetric(fmt.Sprintf("tav-A@%d", c.Nodes), c.Tav)
	}
	if err := slopeCheck(&sec, "log-log slope of Tav(A) vs n", ns, tavs,
		"Theorem 2 predicts polylog growth: slope <= 0.6", func(s float64) bool { return s <= 0.6 }); err != nil {
		return sec, err
	}
	return sec, nil
}

func runE4(p Params) (Section, error) {
	var sec Section
	// The separation needs n1/|E12| >> ln n * (Tvan1+Tvan2): below n ~ 32
	// the regimes have not separated yet, so quick mode starts there.
	grid := sweep.Grid{
		Base:  dumbbellBase(e1Trials(p)),
		Ns:    pick(p, []int{32, 64}, []int{32, 64, 128, 256}),
		Algos: []string{"vanilla", "A"},
	}
	cells, err := runGrid(&sec, gridTable{name: "headline separation on the symmetric dumbbell (G' of Section 1)", grid: grid}, p)
	if err != nil {
		return sec, err
	}
	var speedups []float64
	for i := 0; i+1 < len(cells); i += 2 {
		van, algA := cells[i], cells[i+1] // algos axis order: vanilla, A
		speedup := van.Tav / algA.Tav
		speedups = append(speedups, speedup)
		sec.addCheck(fmt.Sprintf("speedup of A over vanilla at n=%d", van.Nodes), speedup,
			"> 1 at every size", speedup > 1)
		sec.addMetric(fmt.Sprintf("speedup@%d", van.Nodes), speedup)
	}
	if len(speedups) >= 2 {
		growth := speedups[len(speedups)-1] / speedups[0]
		sec.addCheck("speedup growth from smallest to largest n", growth,
			"> 1: the separation widens with n", growth > 1)
		sec.addMetric("speedup-growth", growth)
	}
	return sec, nil
}

func runE9(p Params) (Section, error) {
	var sec Section
	n := pick(p, 32, 128)
	base := dumbbellBase(e1Trials(p))
	base.Graph.N = n
	grid := sweep.Grid{
		Base:    base,
		Algos:   []string{"A"},
		EpochCs: []float64{0.5, 1, 2, 4, 8},
	}
	// Sub-unit C deliberately under-mixes: the theorems make no claim
	// there, so those cells render informational.
	cells, err := runGrid(&sec, gridTable{
		name:          fmt.Sprintf("epoch constant sweep, dumbbell n=%d", n),
		grid:          grid,
		informational: func(s scenario.Spec) bool { return s.Algo.EpochC < 1 },
	}, p)
	if err != nil {
		return sec, err
	}
	for _, c := range cells {
		sec.addMetric(fmt.Sprintf("tav@C=%g", c.Spec.Algo.EpochC), c.Tav)
	}
	generous := cellsWhere(cells, func(s scenario.Spec) bool { return s.Algo.EpochC == 8 })
	if len(generous) == 1 {
		sec.addCheck("Tav at generous C=8", generous[0].Tav, "> 0 and uncensored (converges)",
			generous[0].Tav > 0 && generous[0].Censored == 0)
	}

	// Estimator robustness: a deliberately 3x-inflated user-supplied Tvan
	// must inflate the epoch K linearly, never shrink it.
	r, err := scenario.Spec{Graph: scenario.GraphSpec{Family: "dumbbell", N: n, Cut: 1}, Algo: scenario.AlgoSpec{Name: "A"}, Seed: p.Seed}.Resolve()
	if err != nil {
		return sec, err
	}
	tv1, tv2, err := spectral.SideTvanBounds(r.Partition, spectral.Options{})
	if err != nil {
		return sec, err
	}
	algSpec, err := core.New(r.Graph, r.X0, core.WithPartition(r.Partition))
	if err != nil {
		return sec, err
	}
	algUser, err := core.New(r.Graph, r.X0, core.WithPartition(r.Partition), core.WithTvan(3*tv1, 3*tv2))
	if err != nil {
		return sec, err
	}
	kSpec, kUser := float64(algSpec.EpochTicks()), float64(algUser.EpochTicks())
	sec.addCheck("K from 3x-inflated Tvan estimate vs spectral K", kUser/kSpec,
		">= 1 (conservative estimates only lengthen epochs)", kUser >= kSpec)
	sec.addMetric("K-spectral", kSpec)
	sec.addMetric("K-inflated", kUser)
	sec.Notes = append(sec.Notes,
		fmt.Sprintf("Tvan estimators: spectral bound (%.4g, %.4g) gives K=%d; 3x inflated gives K=%d.", tv1, tv2, algSpec.EpochTicks(), algUser.EpochTicks()))
	return sec, nil
}

func runE10(p Params) (Section, error) {
	var sec Section
	trials := pick(p, 3, 5)
	type workload struct {
		family string
		n      int
	}
	// Cut sizes are kept genuinely sparse (E[|E12|] ~ 3 and 1 door): with
	// a denser cut, Theorem 1's bound n1/|E12| shrinks and there is
	// nothing for A to win — the experiment is about the sparse-cut
	// regime (the family defaults encode exactly that).
	loads := []workload{
		{"planted", pick(p, 60, 120)},
		{"sensor", pick(p, 60, 150)},
	}
	for _, wl := range loads {
		grid := sweep.Grid{
			Base: scenario.Spec{
				Graph: scenario.GraphSpec{Family: wl.family, N: wl.n},
				Stop:  scenario.StopSpec{Trials: trials, MaxTime: 40 * float64(wl.n)},
			},
			Algos: []string{"vanilla", "A"},
		}
		cells, err := runGrid(&sec, gridTable{name: fmt.Sprintf("%s, n=%d", wl.family, wl.n), grid: grid}, p)
		if err != nil {
			return sec, err
		}
		if len(cells) != 2 {
			return sec, fmt.Errorf("E10: %s produced %d cells, want 2", wl.family, len(cells))
		}
		van, algA := cells[0], cells[1]
		speedup := van.Tav / algA.Tav
		sec.addCheck(fmt.Sprintf("speedup of A over vanilla on %s", wl.family), speedup,
			"> 1", speedup > 1)
		sec.addMetric("speedup-"+wl.family, speedup)

		// Cut discovery: spectral bisection must find a sparse cut of the
		// same order as the planted one without being told.
		r, err := van.Spec.Resolve()
		if err != nil {
			return sec, err
		}
		detected, _, err := cut.Detect(r.Graph, spectral.Options{})
		if err != nil {
			return sec, err
		}
		sec.addCheck(fmt.Sprintf("spectral cut detection on %s: |E12| detected / planted", wl.family),
			float64(detected.CutSize())/math.Max(1, float64(r.Partition.CutSize())),
			"<= 2 (detector finds a comparably sparse cut unaided)",
			detected.CutSize() > 0 && float64(detected.CutSize()) <= 2*math.Max(1, float64(r.Partition.CutSize())))
		sec.addMetric("detected-cut-"+wl.family, float64(detected.CutSize()))

		// The paper's K formula is defined in terms of the true side Tvans.
		// On irregular graphs the spectral 6/λ2 default overestimates them,
		// so the empirical estimator pathway (avgtime.MeasureTvan ->
		// core.WithTvan) exists for tighter epochs; verify the ordering the
		// deviation note in DESIGN.md §3 relies on.
		if wl.family == "planted" {
			tvS1, tvS2, err := spectral.SideTvanBounds(detected, spectral.Options{})
			if err != nil {
				return sec, err
			}
			var tvM1, tvM2 float64
			for i, s := range []graph.Side{graph.Side1, graph.Side2} {
				sub, _ := detected.Subgraph(s)
				res, err := avgtime.MeasureTvan(sub, avgtime.Config{
					Trials:       5,
					Seed:         p.Seed + uint64(i),
					MaxTime:      10 * float64(sub.NumNodes()),
					MarginFactor: 1, // vanilla is monotone
				})
				if err != nil {
					return sec, fmt.Errorf("measuring Tvan of %v side: %w", s, err)
				}
				if i == 0 {
					tvM1 = res.Tav
				} else {
					tvM2 = res.Tav
				}
			}
			sec.addCheck("measured side Tvans vs spectral bound on planted (sum ratio)",
				(tvM1+tvM2)/math.Max(tvS1+tvS2, 1e-12),
				"<= 1.5 (6/λ2 upper-bounds the true Tvan; the empirical estimator is the tighter K input)",
				tvM1+tvM2 <= 1.5*(tvS1+tvS2))
			sec.addMetric("tvan-measured-sum", tvM1+tvM2)
			sec.addMetric("tvan-spectral-sum", tvS1+tvS2)
		}
	}
	return sec, nil
}

func runE13(p Params) (Section, error) {
	var sec Section
	n := pick(p, 48, 128)
	base := dumbbellBase(e1Trials(p))
	base.Graph.N = n
	grid := sweep.Grid{
		Base:  base,
		Algos: []string{"vanilla", "A"},
		Rates: []string{"uniform", "nodeclock", "random"},
	}
	cells, err := runGrid(&sec, gridTable{name: fmt.Sprintf("timing-model robustness, dumbbell n=%d", n), grid: grid}, p)
	if err != nil {
		return sec, err
	}
	for _, model := range []string{"uniform", "nodeclock", "random"} {
		sel := cellsWhere(cells, func(s scenario.Spec) bool { return s.Rates == model })
		if len(sel) != 2 {
			return sec, fmt.Errorf("E13: %s produced %d cells, want 2", model, len(sel))
		}
		van, algA := sel[0], sel[1]
		speedup := van.Tav / algA.Tav
		sec.addCheck(fmt.Sprintf("speedup of A over vanilla, %s clocks", model), speedup,
			"> 1: the separation survives the timing model", speedup > 1)
		sec.addMetric("speedup-"+model, speedup)
	}
	sec.Notes = append(sec.Notes,
		"Under the node-clock model the cut edge ticks at rate ~4/n instead of 1, slowing both algorithms across the cut; bounds are only claimed for the paper's uniform model (heterogeneous-rate rows are informational).")
	return sec, nil
}

func runE14(p Params) (Section, error) {
	var sec Section
	n := pick(p, 48, 128)
	cuts := pick(p, []int{2, 4}, []int{2, 4, 8, 16})
	base := dumbbellBase(e1Trials(p))
	base.Graph.N = n
	single := sweep.Grid{Base: base, Cuts: cuts, Algos: []string{"A"}}
	allBase := base
	allBase.Algo = scenario.AlgoSpec{Name: "A", AllCutEdges: true}
	all := sweep.Grid{Base: allBase, Cuts: cuts}

	singleCells, err := runGrid(&sec, gridTable{name: fmt.Sprintf("paper's single designated ec, dumbbell n=%d", n), grid: single}, p)
	if err != nil {
		return sec, err
	}
	allCells, err := runGrid(&sec, gridTable{name: fmt.Sprintf("all-cut-edges extension (scaled K), dumbbell n=%d", n), grid: all}, p)
	if err != nil {
		return sec, err
	}
	if len(singleCells) != len(allCells) {
		return sec, fmt.Errorf("E14: %d single vs %d all cells", len(singleCells), len(allCells))
	}
	for i := range singleCells {
		k := singleCells[i].CutSize
		gain := singleCells[i].Tav / allCells[i].Tav
		sec.addCheck(fmt.Sprintf("gain of all-cut-edges over single ec at |E12|=%d", k), gain,
			"~1, never ~|E12| (epochs are mixing-limited, the paper's single ec is essentially optimal): 0.3 <= gain <= 4",
			gain >= 0.3 && gain <= 4)
		sec.addMetric(fmt.Sprintf("gain@k=%d", k), gain)
	}
	sec.Notes = append(sec.Notes,
		"The naive unscaled variant (single-edge K on the |E12|x faster shared counter) swaps before the sides re-mix and degrades sharply as |E12| grows — WithEpochTicks bypasses the scaling if you want to reproduce it; the scaled variant above is the sound form of the extension.")
	return sec, nil
}
