// Package stats provides the small set of descriptive statistics and
// least-squares fits the experiment harness needs: means, variances,
// quantiles, confidence intervals, histograms, and (log-log) linear fits
// used to extract empirical scaling exponents.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1 denominator) sample variance.
// It returns 0 for slices with fewer than two elements.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// PopulationVariance returns the variance with an n denominator, matching
// the paper's varX definition. It returns 0 for an empty slice.
func PopulationVariance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the square root of the unbiased sample variance.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-th sample quantile (0 <= q <= 1) using linear
// interpolation between order statistics. It returns an error for an empty
// sample or a q outside [0, 1]. The input is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 0.5 quantile, or NaN for an empty sample.
func Median(xs []float64) float64 {
	m, err := Quantile(xs, 0.5)
	if err != nil {
		return math.NaN()
	}
	return m
}

// Min returns the smallest element, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary holds the standard five-number-plus-moments description of a
// sample, as printed in experiment tables.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Median float64
	Max    float64
}

// Summarize computes a Summary of xs. An empty sample yields NaN fields.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    Min(xs),
		Median: Median(xs),
		Max:    Max(xs),
	}
}

// String renders the summary compactly, e.g. for log lines.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.3g min=%.4g med=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.Median, s.Max)
}

// MeanCI95 returns the sample mean together with the half-width of a 95%
// normal-approximation confidence interval. For n < 2 the half-width is 0.
func MeanCI95(xs []float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	const z = 1.96
	return mean, z * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Fit holds the result of an ordinary least-squares straight-line fit
// y ≈ Slope*x + Intercept.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64 // coefficient of determination in [0,1] (NaN if y is constant)
}

// LinearFit fits y = a*x + b by least squares. It returns an error when the
// slice lengths differ, fewer than two points are supplied, or all x values
// coincide.
func LinearFit(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("stats: length mismatch %d != %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return Fit{}, errors.New("stats: need at least two points to fit a line")
	}
	mx, my := Mean(xs), Mean(ys)
	sxx, sxy, syy := 0.0, 0.0, 0.0
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, errors.New("stats: all x values are identical")
	}
	slope := sxy / sxx
	f := Fit{Slope: slope, Intercept: my - slope*mx}
	if syy == 0 {
		f.R2 = math.NaN()
	} else {
		f.R2 = sxy * sxy / (sxx * syy)
	}
	return f, nil
}

// LogLogFit fits log(y) = slope*log(x) + intercept, i.e. the power law
// y ≈ e^intercept * x^slope. All inputs must be strictly positive.
func LogLogFit(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("stats: length mismatch %d != %d", len(xs), len(ys))
	}
	lx := make([]float64, len(xs))
	ly := make([]float64, len(ys))
	for i := range xs {
		if xs[i] <= 0 || ys[i] <= 0 {
			return Fit{}, fmt.Errorf("stats: log-log fit requires positive data, got (%v, %v) at %d", xs[i], ys[i], i)
		}
		lx[i] = math.Log(xs[i])
		ly[i] = math.Log(ys[i])
	}
	return LinearFit(lx, ly)
}

// SemiLogYFit fits log(y) = slope*x + intercept, i.e. y ≈ e^intercept *
// e^(slope*x): an exponential decay/growth fit. All y must be positive.
func SemiLogYFit(xs, ys []float64) (Fit, error) {
	if len(xs) != len(ys) {
		return Fit{}, fmt.Errorf("stats: length mismatch %d != %d", len(xs), len(ys))
	}
	ly := make([]float64, len(ys))
	for i := range ys {
		if ys[i] <= 0 {
			return Fit{}, fmt.Errorf("stats: semi-log fit requires positive y, got %v at %d", ys[i], i)
		}
		ly[i] = math.Log(ys[i])
	}
	return LinearFit(xs, ly)
}

// Histogram is a fixed-width binning of a sample over [Lo, Hi). Samples
// outside the range are counted in Under/Over.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int
	Over   int
}

// NewHistogram creates a histogram with the given number of bins spanning
// [lo, hi). It returns an error if bins < 1 or hi <= lo.
func NewHistogram(lo, hi float64, bins int) (*Histogram, error) {
	if bins < 1 {
		return nil, fmt.Errorf("stats: histogram needs >= 1 bin, got %d", bins)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: histogram range [%v, %v) is empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) { // guard float rounding at the top edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations recorded, including out-of-range.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// KSDistance computes the two-sample Kolmogorov–Smirnov statistic: the
// maximum absolute difference between the empirical CDFs of a and b. The
// inputs are sorted in place. It is the cross-check metric pinning the
// time-bridged simulator against the per-event reference (DESIGN.md §8);
// compare against c(α)·sqrt((n+m)/(n·m)) with c(0.001) ≈ 1.949.
func KSDistance(a, b []float64) float64 {
	sort.Float64s(a)
	sort.Float64s(b)
	d, i, j := 0.0, 0, 0
	for i < len(a) && j < len(b) {
		// Advance past every copy of the smaller value on both sides
		// before comparing CDFs, so tied observations (measure-zero for
		// the continuous samples this is used on, but cheap to handle
		// exactly) contribute no spurious transient gap.
		x := math.Min(a[i], b[j])
		for i < len(a) && a[i] == x {
			i++
		}
		for j < len(b) && b[j] == x {
			j++
		}
		if diff := math.Abs(float64(i)/float64(len(a)) - float64(j)/float64(len(b))); diff > d {
			d = diff
		}
	}
	return d
}
