package report

import (
	"fmt"
	"math"

	"sparsecut/internal/scenario"
	"sparsecut/internal/spectral"
	"sparsecut/internal/stats"
	"sparsecut/internal/sweep"
)

// Margin constants of the PASS/FAIL convention (DESIGN.md §9). Theorems 1
// and 2 are asymptotic — their absolute constants are not stated by the
// paper — so the checks demand the measured Tav lands within a documented
// constant factor of the bound's *shape*; the spectral ceiling 6/λ2 is a
// rigorous finite-n bound and gets only a Monte-Carlo noise allowance.
const (
	// Theorem1Margin: a convex-class measurement passes the Ω(n1/|E12|)
	// lower bound when Tav ≥ Theorem1Margin · min(|V1|,|V2|)/|E12|.
	Theorem1Margin = 0.2
	// SpectralMargin: a convex-class measurement passes the spectral
	// ceiling when Tav ≤ SpectralMargin · 6/λ2. The bound is rigorous
	// for the true Tav; the allowance covers empirical-quantile noise at
	// small trial counts.
	SpectralMargin = 1.25
	// Theorem2Margin: an Algorithm A measurement passes Theorem 2's
	// ceiling when Tav ≤ Theorem2Margin · max(C,1)·ln n·(1+Tvan1+Tvan2)
	// with the spectral side bounds as the Tvan estimates.
	Theorem2Margin = 6.0
)

// cellBounds carries one cell's predicted bounds: the Theorem 1 lower
// bound and the applicable upper ceiling (0 = not applicable).
type cellBounds struct {
	lower float64 // Theorem 1: min(|V1|,|V2|)/|E12|
	upper float64 // 6/λ2 (convex class) or Theorem 2 shape (Algorithm A)
}

// boundsFor re-resolves the cell's spec (deterministic: the spec embeds
// its seed) and computes the paper's predicted bounds from the spectra.
//
// Bounds only apply under the paper's timing model (uniform rate-1 edge
// clocks): heterogeneous-rate cells get no bounds and render
// informational. Families without a planted partition get no Theorem 1
// lower bound; Algorithm A cells need a partition for the side spectra.
func boundsFor(c sweep.Cell) (cellBounds, error) {
	var b cellBounds
	if c.Spec.Rates != "" && c.Spec.Rates != "uniform" {
		return b, nil
	}
	r, err := c.Spec.Resolve()
	if err != nil {
		return b, fmt.Errorf("re-resolving %s: %w", c.Label, err)
	}
	if r.Implicit != nil {
		// Sharded cells never materialise the graph, so the spectral
		// ceilings are unavailable; only the combinatorial Theorem 1 bound
		// of the prefix partition applies.
		if sp := r.Implicit.SplitPoint(); sp > 0 {
			if cut := prefixCutSize(r.Implicit); cut > 0 {
				n := r.Implicit.NumNodes()
				if sp > n-sp {
					sp = n - sp
				}
				b.lower = float64(sp) / float64(cut)
			}
		}
		return b, nil
	}
	opts := spectral.Options{}
	switch r.Spec.Algo.Name {
	case "vanilla", "convex", "pushsum":
		if r.Partition != nil {
			b.lower = r.Partition.TheoremOneBound()
		}
		up, err := spectral.TvanBound(r.Graph, opts)
		if err != nil {
			return b, fmt.Errorf("TvanBound(%s): %w", c.Label, err)
		}
		if !math.IsInf(up, 1) {
			b.upper = up
		}
	case "A":
		if r.Partition != nil {
			tv1, tv2, err := spectral.SideTvanBounds(r.Partition, opts)
			if err != nil {
				return b, fmt.Errorf("SideTvanBounds(%s): %w", c.Label, err)
			}
			b.upper = spectral.TheoremTwoBound(r.Graph.NumNodes(), tv1, tv2, r.Spec.Algo.EpochC)
		}
	}
	return b, nil
}

// verdictFor applies the margin convention, censoring-aware: censored
// cells report Tav as a lower bound on the truth, so a lower-bound check
// can still PASS definitively, an upper-bound check can still FAIL
// definitively, and everything else is CENS (inconclusive).
func verdictFor(c sweep.Cell, b cellBounds) Verdict {
	if b.lower == 0 && b.upper == 0 {
		return None
	}
	censored := c.Censored > 0
	if b.lower > 0 && c.Tav < Theorem1Margin*b.lower {
		if censored {
			return Cens // true Tav may still exceed the requirement
		}
		return Fail
	}
	if b.upper > 0 {
		limit := b.upper
		if c.Spec.Algo.Name == "A" {
			limit *= Theorem2Margin
		} else {
			limit *= SpectralMargin
		}
		if c.Tav > limit {
			return Fail // even the censored lower bound exceeds the ceiling
		}
		if censored {
			return Cens // truncated below the ceiling: cannot conclude
		}
	}
	return Pass
}

// gridTable describes one grid-backed measured-vs-bound table.
type gridTable struct {
	// name titles the table.
	name string
	// grid is the scenario grid, run through the sweep engine.
	grid sweep.Grid
	// informational marks cells whose bounds are shown but not claimed
	// (verdict "-"): the experiment sweeps outside the theorems' regime
	// on purpose (e.g. E9's deliberately-too-small epoch constants).
	informational func(s scenario.Spec) bool
}

// gridColumns is the shared layout of measured-vs-bound tables.
var gridColumns = []string{
	"cell", "n", "|E|", "|E12|", "trials", "cens",
	"Tav", "lower Ω", "upper O", "verdict",
}

// fnum renders a float like internal/table does (4 significant digits),
// with "-" for zero-valued bounds.
func fnum(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.4g", v)
}

// runGrid executes the grid on the sweep engine, computes per-cell bounds
// and verdicts, appends the rendered table to sec, and returns the cells
// for derived checks. Cell errors abort: the reproduction must be
// complete, not best-effort.
func runGrid(sec *Section, gt gridTable, p Params) ([]sweep.Cell, error) {
	rep, err := sweep.Run(gt.grid, sweep.Config{Workers: p.Workers, Seed: p.Seed})
	if err != nil {
		return nil, err
	}
	tbl := Table{Name: gt.name, Columns: gridColumns}
	for _, c := range rep.Cells {
		if c.Error != "" {
			return nil, fmt.Errorf("cell %s: %s", c.Label, c.Error)
		}
		b, err := boundsFor(c)
		if err != nil {
			return nil, err
		}
		v := verdictFor(c, b)
		if gt.informational != nil && gt.informational(c.Spec) {
			v = None
		}
		sec.countVerdict(v)
		tbl.Rows = append(tbl.Rows, []string{
			c.Label,
			fmt.Sprintf("%d", c.Nodes),
			fmt.Sprintf("%d", c.Edges),
			fmt.Sprintf("%d", c.CutSize),
			fmt.Sprintf("%d", c.Trials),
			fmt.Sprintf("%d", c.Censored),
			c.TavString(),
			fnum(b.lower),
			fnum(b.upper),
			string(v),
		})
	}
	sec.Tables = append(sec.Tables, tbl)
	return rep.Cells, nil
}

// cellsWhere filters cells by predicate, preserving order.
func cellsWhere(cells []sweep.Cell, keep func(s scenario.Spec) bool) []sweep.Cell {
	var out []sweep.Cell
	for _, c := range cells {
		if keep(c.Spec) {
			out = append(out, c)
		}
	}
	return out
}

// slopeCheck fits log Tav against log x over the cells and records the
// fitted exponent as a derived check.
func slopeCheck(sec *Section, name string, xs, tavs []float64, requirement string, pass func(slope float64) bool) error {
	fit, err := stats.LogLogFit(xs, tavs)
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}
	sec.addCheck(name, fit.Slope, requirement, pass(fit.Slope))
	sec.addMetric("slope", fit.Slope)
	sec.addMetric("r2", fit.R2)
	return nil
}
