package stats

import (
	"math"
	"testing"
	"testing/quick"

	"sparsecut/internal/rng"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"single", []float64{5}, 5},
		{"pair", []float64{2, 4}, 3},
		{"negatives", []float64{-1, 1, -3, 3}, 0},
		{"constant", []float64{7, 7, 7}, 7},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Mean(c.in); !almostEqual(got, c.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
			}
		})
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestVariance(t *testing.T) {
	if got := Variance([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEqual(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := Variance([]float64{1}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
}

func TestPopulationVariance(t *testing.T) {
	if got := PopulationVariance([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEqual(got, 4, 1e-12) {
		t.Errorf("PopulationVariance = %v, want 4", got)
	}
	if got := PopulationVariance(nil); got != 0 {
		t.Errorf("PopulationVariance(nil) = %v, want 0", got)
	}
}

func TestPopulationVarianceShiftInvariance(t *testing.T) {
	r := rng.New(1)
	if err := quick.Check(func(shiftRaw int8) bool {
		shift := float64(shiftRaw)
		xs := make([]float64, 50)
		ys := make([]float64, 50)
		for i := range xs {
			xs[i] = r.NormFloat64()
			ys[i] = xs[i] + shift
		}
		return almostEqual(PopulationVariance(xs), PopulationVariance(ys), 1e-9)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 5, 4}
	for _, c := range []struct {
		q, want float64
	}{{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}} {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatalf("Quantile(%v): %v", c.q, err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileInterpolates(t *testing.T) {
	got, err := Quantile([]float64{0, 10}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 3, 1e-12) {
		t.Errorf("Quantile interpolation = %v, want 3", got)
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("expected error for empty sample")
	}
	if _, err := Quantile([]float64{1}, 1.5); err == nil {
		t.Error("expected error for q > 1")
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Error("expected error for q < 0")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("Quantile mutated its input: %v", xs)
	}
}

func TestQuantileMonotone(t *testing.T) {
	r := rng.New(2)
	xs := make([]float64, 31)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v, err := Quantile(xs, q)
		if err != nil {
			t.Fatal(err)
		}
		if v < prev-1e-12 {
			t.Fatalf("quantiles not monotone: q=%v gives %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{4, -2, 9, 0}
	if got := Min(xs); got != -2 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 9 {
		t.Errorf("Max = %v", got)
	}
	if got := Median([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Median = %v", got)
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) || !math.IsNaN(Median(nil)) {
		t.Error("Min/Max/Median of empty should be NaN")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("unexpected summary %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestMeanCI95(t *testing.T) {
	r := rng.New(3)
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = 10 + r.NormFloat64()
	}
	mean, hw := MeanCI95(xs)
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("mean = %v", mean)
	}
	// Half width should be ~1.96/sqrt(10000) = 0.0196.
	if math.Abs(hw-0.0196) > 0.002 {
		t.Errorf("half width = %v, want ~0.0196", hw)
	}
	if _, hw := MeanCI95([]float64{1}); hw != 0 {
		t.Errorf("CI of singleton should have zero width, got %v", hw)
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	f, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.Slope, 2, 1e-12) || !almostEqual(f.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v, want slope 2 intercept 1", f)
	}
	if !almostEqual(f.R2, 1, 1e-12) {
		t.Errorf("R2 = %v, want 1", f.R2)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	r := rng.New(4)
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 3*xs[i] - 7 + r.NormFloat64()
	}
	f, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-3) > 0.01 {
		t.Errorf("slope = %v, want ~3", f.Slope)
	}
	if f.R2 < 0.99 {
		t.Errorf("R2 = %v, want > 0.99", f.R2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected length-mismatch error")
	}
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("expected too-few-points error")
	}
	if _, err := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("expected constant-x error")
	}
}

func TestLogLogFitPowerLaw(t *testing.T) {
	// y = 5 x^1.7
	xs := []float64{1, 2, 4, 8, 16, 32}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 5 * math.Pow(x, 1.7)
	}
	f, err := LogLogFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.Slope, 1.7, 1e-9) {
		t.Errorf("exponent = %v, want 1.7", f.Slope)
	}
	if !almostEqual(math.Exp(f.Intercept), 5, 1e-9) {
		t.Errorf("prefactor = %v, want 5", math.Exp(f.Intercept))
	}
}

func TestLogLogFitRejectsNonPositive(t *testing.T) {
	if _, err := LogLogFit([]float64{1, 0}, []float64{1, 1}); err == nil {
		t.Error("expected error for non-positive x")
	}
	if _, err := LogLogFit([]float64{1, 2}, []float64{1, -1}); err == nil {
		t.Error("expected error for non-positive y")
	}
}

func TestSemiLogYFitExponential(t *testing.T) {
	// y = 2 e^{-0.5 x}
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2 * math.Exp(-0.5*x)
	}
	f, err := SemiLogYFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.Slope, -0.5, 1e-9) {
		t.Errorf("rate = %v, want -0.5", f.Slope)
	}
}

func TestSemiLogYFitRejectsNonPositiveY(t *testing.T) {
	if _, err := SemiLogYFit([]float64{0, 1}, []float64{1, 0}); err == nil {
		t.Error("expected error for zero y")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under/over = %d/%d, want 1/2", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Errorf("bin 0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Errorf("bin 1 = %d, want 1", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.99
		t.Errorf("bin 4 = %d, want 1", h.Counts[4])
	}
	if h.Total() != 7 {
		t.Errorf("total = %d, want 7", h.Total())
	}
	if got := h.BinCenter(0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("expected error for zero bins")
	}
	if _, err := NewHistogram(1, 1, 4); err == nil {
		t.Error("expected error for empty range")
	}
}

func TestHistogramTotalProperty(t *testing.T) {
	r := rng.New(5)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw)
		h, err := NewHistogram(-2, 2, 8)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			h.Add(r.NormFloat64())
		}
		return h.Total() == n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKSDistance(t *testing.T) {
	// Identical samples: D = 0.
	a := []float64{3, 1, 2, 4}
	b := []float64{1, 2, 3, 4}
	if d := KSDistance(a, b); d != 0 {
		t.Errorf("identical samples: D = %v, want 0", d)
	}
	// Disjoint supports: D = 1.
	lo := []float64{1, 2, 3}
	hi := []float64{10, 11, 12}
	if d := KSDistance(lo, hi); d != 1 {
		t.Errorf("disjoint samples: D = %v, want 1", d)
	}
	// Hand-computed: a = {1, 3}, b = {2, 4} -> max CDF gap 1/2.
	if d := KSDistance([]float64{1, 3}, []float64{2, 4}); d != 0.5 {
		t.Errorf("interleaved samples: D = %v, want 0.5", d)
	}
}
