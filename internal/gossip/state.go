// Package gossip implements the distributed-averaging algorithms the paper
// compares against — vanilla pairwise gossip, the general convex class C of
// Definition 2, and a push-sum baseline — together with the shared value
// state they (and the paper's Algorithm A in internal/core) operate on.
//
// The State type maintains the running sum and sum of squares of the value
// vector incrementally, so the variance the paper's averaging-time metric
// needs is available in O(1) after every event rather than O(n).
package gossip

import (
	"fmt"
	"math"
)

// resyncInterval bounds floating-point drift of the incremental moments:
// after this many point updates the sums are recomputed exactly.
const resyncInterval = 1 << 16

// State holds the node values of an averaging process plus incrementally
// maintained first and second moments.
//
// Internally the values are stored centered by the initial mean (algorithms
// in this repository are linear and shift-invariant, so running them on
// centered values is equivalent); this avoids the catastrophic cancellation
// that computing Σx² − (Σx)²/n would suffer once the process has converged
// to a large common mean. Values() reconstructs the original frame.
type State struct {
	offset  float64 // initial mean, added back on read
	y       []float64
	sum     float64 // Σy
	sumSq   float64 // Σy²
	updates int     // point updates since the last exact resync
}

// NewState initialises state from the vector x0 (copied, not aliased).
func NewState(x0 []float64) *State {
	s := &State{y: append([]float64(nil), x0...)}
	if len(x0) > 0 {
		m := 0.0
		for _, v := range x0 {
			m += v
		}
		s.offset = m / float64(len(x0))
		for i := range s.y {
			s.y[i] -= s.offset
		}
	}
	s.resync()
	return s
}

// N returns the number of nodes.
func (s *State) N() int { return len(s.y) }

// Get returns the value at node i in the original (uncentered) frame.
func (s *State) Get(i int) float64 { return s.y[i] + s.offset }

// Set assigns node i the value v (original frame), updating the moments in
// O(1).
func (s *State) Set(i int, v float64) {
	old := s.y[i]
	c := v - s.offset
	s.y[i] = c
	s.sum += c - old
	s.sumSq += c*c - old*old
	s.updates++
	if s.updates >= resyncInterval {
		s.resync()
	}
}

// Values returns a fresh copy of the value vector in the original frame.
func (s *State) Values() []float64 {
	out := make([]float64, len(s.y))
	for i, v := range s.y {
		out[i] = v + s.offset
	}
	return out
}

// Mean returns the current average value. For the sum-preserving algorithms
// in this repository it is invariant over time up to float rounding.
func (s *State) Mean() float64 {
	if len(s.y) == 0 {
		return math.NaN()
	}
	return s.offset + s.sum/float64(len(s.y))
}

// Sum returns the current total Σx in the original frame.
func (s *State) Sum() float64 {
	return s.sum + s.offset*float64(len(s.y))
}

// Variance returns the paper's varX: the population variance of the value
// vector, maintained incrementally.
func (s *State) Variance() float64 {
	n := float64(len(s.y))
	if n == 0 {
		return 0
	}
	m := s.sum / n
	v := s.sumSq/n - m*m
	if v < 0 { // float rounding can push a converged process slightly negative
		return 0
	}
	return v
}

// resync recomputes the moments exactly.
func (s *State) resync() {
	s.sum, s.sumSq = 0, 0
	for _, v := range s.y {
		s.sum += v
		s.sumSq += v * v
	}
	s.updates = 0
}

// String describes the state compactly.
func (s *State) String() string {
	return fmt.Sprintf("state(n=%d, mean=%.6g, var=%.6g)", s.N(), s.Mean(), s.Variance())
}
