// Command gossipsim runs one gossip-averaging simulation and reports the
// variance trajectory and final state. Every graph family in the scenario
// registry is available (see -families for the catalogue).
//
// Usage:
//
//	gossipsim -graph dumbbell -n 128 -cut 1 -algo A     -until 50
//	gossipsim -graph planted  -n 100 -algo vanilla      -until 200 -csv
//	gossipsim -graph ringofcliques -n 64 -blocks 8 -algo A -until 100
//	gossipsim -graph hypercube -dim 7 -algo pushsum     -until 30
//	gossipsim -algo convex -alpha 0.8 ...
//
// With -csv the sampled trajectory is written to stdout as
// "series,t,value" rows; otherwise a short summary is printed. -progress
// adds a periodic events/sec + variance meter on stderr; stdout output
// (including -csv) is byte-identical with or without it.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sparsecut/internal/scenario"
	"sparsecut/internal/sim"
	"sparsecut/internal/trace"
)

func main() {
	var (
		graphKind = flag.String("graph", "dumbbell", "graph family (see -families)")
		n         = flag.Int("n", 128, "total number of nodes")
		cutEdges  = flag.Int("cut", 0, "cut edges / doors / bridges (0 = family default)")
		algo      = flag.String("algo", "A", "algorithm: A | vanilla | convex | pushsum")
		alpha     = flag.Float64("alpha", 0.5, "mixing parameter for -algo convex")
		until     = flag.Float64("until", 50, "simulated time horizon")
		seed      = flag.Uint64("seed", 1, "random seed")
		csv       = flag.Bool("csv", false, "emit the sampled variance trajectory as CSV")
		progress  = flag.Bool("progress", false, "print a periodic events/sec + variance meter to stderr")
		initKind  = flag.String("init", "", "initial vector: worstcase|spike|random|gaussian|linear")
		rateKind  = flag.String("rates", "", "clock-rate model: uniform|nodeclock|random")
		list      = flag.Bool("families", false, "list the graph-family registry and exit")

		// Family-specific shape parameters.
		n1       = flag.Int("n1", 0, "side-1 size (two-sided families)")
		n2       = flag.Int("n2", 0, "side-2 size (two-sided families)")
		innerCut = flag.Int("innercut", 0, "hierdumbbell inner cut width")
		rows     = flag.Int("rows", 0, "grid/torus rows")
		cols     = flag.Int("cols", 0, "grid/torus cols")
		dim      = flag.Int("dim", 0, "hypercube dimension")
		levels   = flag.Int("levels", 0, "binary-tree levels")
		tail     = flag.Int("tail", 0, "lollipop tail length")
		blocks   = flag.Int("blocks", 0, "ring-of-cliques block count")
		degree   = flag.Int("degree", 0, "random-regular degree")
		p        = flag.Float64("p", 0, "G(n,p) edge probability")
		pIn      = flag.Float64("pin", 0, "planted within-side density")
		pOut     = flag.Float64("pout", 0, "planted cross-side density")
		radius   = flag.Float64("radius", 0, "RGG/sensor radius multiplier")
	)
	flag.Parse()

	if *list {
		fmt.Print(scenario.Usage())
		return
	}

	spec := scenario.Spec{
		Graph: scenario.GraphSpec{
			Family: *graphKind, N: *n, N1: *n1, N2: *n2, Cut: *cutEdges,
			InnerCut: *innerCut, Rows: *rows, Cols: *cols, Dim: *dim,
			Levels: *levels, Tail: *tail, Blocks: *blocks, Degree: *degree,
			P: *p, PIn: *pIn, POut: *pOut, Radius: *radius,
		},
		Algo:  scenario.AlgoSpec{Name: *algo, Alpha: *alpha},
		Init:  *initKind,
		Rates: *rateKind,
		Seed:  *seed,
	}
	res, err := spec.Resolve()
	if err != nil {
		fatal(err)
	}
	alg, err := res.NewAlgorithm(res.AlgorithmRNG())
	if err != nil {
		fatal(err)
	}

	var0 := alg.Variance()
	rec, err := trace.NewSampledRecorder(alg.Name(), int64(res.Graph.NumEdges()/4+1))
	if err != nil {
		fatal(err)
	}
	observe := func(t float64, _ int64) { rec.Record(t, alg.Variance()/var0) }
	var meter *progressMeter
	if *progress {
		meter = newProgressMeter()
		record := observe
		observe = func(t float64, ev int64) {
			record(t, ev)
			meter.tick(t, ev, func() float64 { return alg.Variance() / var0 })
		}
	}
	opts := []sim.Option{sim.WithSeed(*seed), sim.WithObserver(observe)}
	if res.Rates != nil {
		opts = append(opts, sim.WithRates(res.Rates))
	}
	eng, err := sim.NewEngine(res.Graph, alg, opts...)
	if err != nil {
		fatal(err)
	}
	t, events := eng.Run(sim.Until(*until))
	if meter != nil {
		meter.finish(t, events, alg.Variance()/var0)
	}

	if *csv {
		ds, err := rec.Series.Downsample(1000)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteCSV(os.Stdout, ds); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("graph:      %s\n", res.Graph)
	if res.Partition != nil {
		fmt.Printf("partition:  %s\n", res.Partition)
	} else {
		fmt.Printf("partition:  (none planted)\n")
	}
	fmt.Printf("algorithm:  %s\n", alg.Name())
	fmt.Printf("simulated:  t=%.4g (%d events)\n", t, events)
	fmt.Printf("mean:       %.6g\n", alg.Mean())
	fmt.Printf("var ratio:  %.6g\n", alg.Variance()/var0)
}

// progressMeter prints a periodic one-line telemetry reading to stderr.
// The event-count mask keeps the common case to one AND + branch per
// event; the wall-clock gate then limits actual prints to ~5 per second.
// It writes only to stderr, so -csv stdout stays byte-identical.
type progressMeter struct {
	start      time.Time
	lastPrint  time.Time
	lastEvents int64
}

func newProgressMeter() *progressMeter {
	now := time.Now()
	return &progressMeter{start: now, lastPrint: now}
}

func (p *progressMeter) tick(t float64, events int64, varRatio func() float64) {
	if events&8191 != 0 {
		return
	}
	now := time.Now()
	gap := now.Sub(p.lastPrint)
	if gap < 200*time.Millisecond {
		return
	}
	rate := float64(events-p.lastEvents) / gap.Seconds()
	fmt.Fprintf(os.Stderr, "progress: t=%-10.4g %12d events  %10.4g ev/s  var %.4g\n",
		t, events, rate, varRatio())
	p.lastPrint = now
	p.lastEvents = events
}

func (p *progressMeter) finish(t float64, events int64, varRatio float64) {
	wall := time.Since(p.start)
	rate := float64(events) / wall.Seconds()
	fmt.Fprintf(os.Stderr, "progress: t=%-10.4g %12d events  %10.4g ev/s  var %.4g  (done in %v)\n",
		t, events, rate, varRatio, wall.Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gossipsim:", err)
	os.Exit(1)
}
