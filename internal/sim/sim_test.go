package sim

import (
	"math"
	"sort"
	"testing"

	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
	"sparsecut/internal/stats"
)

type countingHandler struct {
	perEdge []int64
	times   []float64
}

func (h *countingHandler) HandleTick(e graph.EdgeID, t float64) {
	h.perEdge[e]++
	h.times = append(h.times, t)
}

func newCounter(g *graph.Graph) *countingHandler {
	return &countingHandler{perEdge: make([]int64, g.NumEdges())}
}

func TestNewEngineValidation(t *testing.T) {
	g := graph.Path(3)
	if _, err := NewEngine(g, nil); err == nil {
		t.Error("nil handler not rejected")
	}
	edgeless := graph.NewBuilder(2).MustBuild()
	if _, err := NewEngine(edgeless, HandlerFunc(func(graph.EdgeID, float64) {})); err == nil {
		t.Error("edgeless graph not rejected")
	}
	if _, err := NewEngine(g, newCounter(g), WithRates([]float64{1})); err == nil {
		t.Error("rate length mismatch not rejected")
	}
	if _, err := NewEngine(g, newCounter(g), WithRates([]float64{1, -1})); err == nil {
		t.Error("negative rate not rejected")
	}
	if _, err := NewEngine(g, newCounter(g), WithScheduler(SchedulerKind(99))); err == nil {
		t.Error("unknown scheduler not rejected")
	}
}

func TestRunStopsAtMaxEvents(t *testing.T) {
	g := graph.Complete(4)
	h := newCounter(g)
	eng, err := NewEngine(g, h)
	if err != nil {
		t.Fatal(err)
	}
	_, events := eng.Run(MaxEvents(100))
	if events != 100 {
		t.Errorf("events = %d, want 100", events)
	}
	total := int64(0)
	for _, c := range h.perEdge {
		total += c
	}
	if total != 100 {
		t.Errorf("handler saw %d ticks", total)
	}
}

func TestRunStopsAtTime(t *testing.T) {
	g := graph.Complete(4)
	eng, err := NewEngine(g, newCounter(g))
	if err != nil {
		t.Fatal(err)
	}
	tEnd, _ := eng.Run(Until(5))
	if tEnd < 5 {
		t.Errorf("stopped at t=%v, want >= 5", tEnd)
	}
	if tEnd > 10 {
		t.Errorf("overshot wildly: t=%v", tEnd)
	}
}

func TestRunResumes(t *testing.T) {
	g := graph.Complete(4)
	eng, err := NewEngine(g, newCounter(g))
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(MaxEvents(10))
	t1 := eng.Now()
	eng.Run(MaxEvents(20))
	if eng.Events() != 20 {
		t.Errorf("cumulative events = %d, want 20", eng.Events())
	}
	if eng.Now() <= t1 {
		t.Error("time did not advance on resume")
	}
}

func TestTimesAreIncreasing(t *testing.T) {
	for _, kind := range []SchedulerKind{GlobalClock, PerEdgeClocks} {
		g := graph.Complete(5)
		h := newCounter(g)
		eng, err := NewEngine(g, h, WithScheduler(kind))
		if err != nil {
			t.Fatal(err)
		}
		eng.Run(MaxEvents(5000))
		if !sort.Float64sAreSorted(h.times) {
			t.Errorf("%v: tick times not sorted", kind)
		}
		for _, tm := range h.times {
			if tm <= 0 {
				t.Fatalf("%v: non-positive tick time %v", kind, tm)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	for _, kind := range []SchedulerKind{GlobalClock, PerEdgeClocks} {
		g := graph.Complete(5)
		run := func() []float64 {
			h := newCounter(g)
			eng, err := NewEngine(g, h, WithScheduler(kind), WithSeed(77))
			if err != nil {
				t.Fatal(err)
			}
			eng.Run(MaxEvents(1000))
			return h.times
		}
		a, b := run(), run()
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: runs diverged at event %d", kind, i)
			}
		}
	}
}

// Both schedulers must realise the same process: per-edge tick counts over
// a fixed horizon are Poisson(rate*T) for each edge.
func TestSchedulerStatisticalEquivalence(t *testing.T) {
	g := graph.Complete(6) // 15 edges
	const horizon = 2000.0
	for _, kind := range []SchedulerKind{GlobalClock, PerEdgeClocks} {
		h := newCounter(g)
		eng, err := NewEngine(g, h, WithScheduler(kind), WithSeed(5))
		if err != nil {
			t.Fatal(err)
		}
		eng.Run(Until(horizon))
		for e, c := range h.perEdge {
			// Poisson(2000): sd ~ 44.7; allow 5 sigma.
			if math.Abs(float64(c)-horizon) > 5*math.Sqrt(horizon) {
				t.Errorf("%v: edge %d ticked %d times, want ~%v", kind, e, c, horizon)
			}
		}
	}
}

// Inter-event gaps of the superposed process must be Exp(|E|).
func TestGlobalGapDistribution(t *testing.T) {
	g := graph.Complete(4) // 6 edges
	h := newCounter(g)
	eng, err := NewEngine(g, h, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(MaxEvents(200000))
	gaps := make([]float64, len(h.times)-1)
	prev := 0.0
	for i, tm := range h.times {
		if i > 0 {
			gaps[i-1] = tm - prev
		}
		prev = tm
	}
	mean := stats.Mean(gaps)
	want := 1.0 / 6.0
	if math.Abs(mean-want)/want > 0.02 {
		t.Errorf("mean gap %v, want ~%v", mean, want)
	}
	// Memorylessness check: variance of Exp is mean^2.
	if v := stats.Variance(gaps); math.Abs(v-want*want)/(want*want) > 0.05 {
		t.Errorf("gap variance %v, want ~%v", v, want*want)
	}
}

func TestWeightedRates(t *testing.T) {
	// A path with two edges: rates 1 and 4 -> tick counts ~1:4.
	g := graph.Path(3)
	for _, kind := range []SchedulerKind{GlobalClock, PerEdgeClocks} {
		h := newCounter(g)
		eng, err := NewEngine(g, h, WithScheduler(kind), WithRates([]float64{1, 4}), WithSeed(9))
		if err != nil {
			t.Fatal(err)
		}
		eng.Run(MaxEvents(100000))
		ratio := float64(h.perEdge[1]) / float64(h.perEdge[0])
		if math.Abs(ratio-4) > 0.2 {
			t.Errorf("%v: rate ratio %v, want ~4", kind, ratio)
		}
	}
}

func TestObserverInvoked(t *testing.T) {
	g := graph.Complete(3)
	calls := int64(0)
	var lastT float64
	eng, err := NewEngine(g, newCounter(g), WithObserver(func(tm float64, ev int64) {
		calls++
		lastT = tm
		if ev != calls {
			t.Fatalf("observer event count %d, want %d", ev, calls)
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(MaxEvents(50))
	if calls != 50 {
		t.Errorf("observer called %d times", calls)
	}
	if lastT != eng.Now() {
		t.Error("observer saw stale time")
	}
}

func TestWithRNGSharedStream(t *testing.T) {
	g := graph.Complete(3)
	r := rng.New(123)
	eng1, err := NewEngine(g, newCounter(g), WithRNG(r.Split()))
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := NewEngine(g, newCounter(g), WithRNG(r.Split()))
	if err != nil {
		t.Fatal(err)
	}
	eng1.Run(MaxEvents(100))
	eng2.Run(MaxEvents(100))
	if eng1.Now() == eng2.Now() {
		t.Error("split streams produced identical trajectories")
	}
}

func TestAnyOf(t *testing.T) {
	cond := AnyOf(Until(10), MaxEvents(5))
	if !cond(11, 0) || !cond(0, 5) {
		t.Error("AnyOf missed a satisfied condition")
	}
	if cond(5, 3) {
		t.Error("AnyOf fired early")
	}
}

func TestRunPanicsWithoutStop(t *testing.T) {
	g := graph.Complete(3)
	eng, err := NewEngine(g, newCounter(g))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Run(nil) did not panic")
		}
	}()
	eng.Run(nil)
}

func TestSchedulerKindString(t *testing.T) {
	if GlobalClock.String() == "" || PerEdgeClocks.String() == "" || SchedulerKind(9).String() == "" {
		t.Error("empty scheduler names")
	}
}

func TestGraphAccessor(t *testing.T) {
	g := graph.Complete(3)
	eng, err := NewEngine(g, newCounter(g))
	if err != nil {
		t.Fatal(err)
	}
	if eng.Graph() != g {
		t.Error("Graph() returned wrong graph")
	}
}

// --- alias sampler and fused kernel tests ---

// The alias table must encode the input weights exactly: the probability
// implied by the table construction equals rate/total to float precision.
func TestAliasTableImpliedProbabilities(t *testing.T) {
	rates := []float64{0.1, 2, 0.5, 1, 1, 3.7, 0.01, 5}
	total := 0.0
	for _, r := range rates {
		total += r
	}
	tab := newAliasTable(rates)
	for i, r := range rates {
		want := r / total
		got := tab.impliedProb(int32(i))
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("implied P(%d) = %v, want %v", i, got, want)
		}
	}
}

// Seeded statistical cross-check: the alias sampler and the retained
// binary-search cdfSampler must realise the same edge-frequency
// distribution on an identical heterogeneous weight vector.
func TestAliasMatchesCDFSampler(t *testing.T) {
	rates := []float64{1, 4, 0.25, 2, 2, 8, 0.5, 1, 1, 3}
	total := 0.0
	for _, r := range rates {
		total += r
	}
	const n = 400000
	tab := newAliasTable(rates)
	cdf := newCDFSampler(rates)
	countA := make([]float64, len(rates))
	countC := make([]float64, len(rates))
	ra, rc := rng.New(11), rng.New(12)
	for i := 0; i < n; i++ {
		countA[tab.pick(ra)]++
		countC[cdf.pick(rc)]++
	}
	for i, rate := range rates {
		p := rate / total
		sigma := math.Sqrt(float64(n) * p * (1 - p))
		if d := math.Abs(countA[i] - float64(n)*p); d > 5*sigma {
			t.Errorf("alias: edge %d count %v off expectation %v by %.1f sigma", i, countA[i], float64(n)*p, d/sigma)
		}
		if d := math.Abs(countC[i] - float64(n)*p); d > 5*sigma {
			t.Errorf("cdf: edge %d count %v off expectation %v by %.1f sigma", i, countC[i], float64(n)*p, d/sigma)
		}
		// Alias vs cdf directly (independent streams: combined variance).
		if d := math.Abs(countA[i] - countC[i]); d > 5*math.Sqrt2*sigma {
			t.Errorf("alias vs cdf: edge %d counts %v vs %v differ by %.1f sigma", i, countA[i], countC[i], d/(math.Sqrt2*sigma))
		}
	}
}

// GlobalClock (alias path), PerEdgeClocks and the analytic expectation must
// agree on mean per-edge tick counts under heterogeneous rates.
func TestSchedulerTickCountAgreement(t *testing.T) {
	g := graph.Complete(5) // 10 edges
	rates := make([]float64, g.NumEdges())
	for i := range rates {
		rates[i] = 0.5 + 0.4*float64(i) // heterogeneous: forces the alias path
	}
	const horizon = 3000.0
	counts := map[SchedulerKind][]int64{}
	for _, kind := range []SchedulerKind{GlobalClock, PerEdgeClocks} {
		h := newCounter(g)
		eng, err := NewEngine(g, h, WithScheduler(kind), WithRates(rates), WithSeed(21))
		if err != nil {
			t.Fatal(err)
		}
		eng.Run(Until(horizon))
		counts[kind] = h.perEdge
	}
	for e, rate := range rates {
		want := rate * horizon
		sigma := math.Sqrt(want)
		for kind, c := range counts {
			if d := math.Abs(float64(c[e]) - want); d > 5*sigma {
				t.Errorf("%v: edge %d ticked %d times, want ~%v (%.1f sigma)", kind, e, c[e], want, d/sigma)
			}
		}
	}
}

// recordingKernel implements both Handler and TickKernel, recording every
// (edge, time) it sees, so the fused loops can be compared bit-for-bit
// against the generic Run loop.
type recordingKernel struct {
	edges []graph.EdgeID
	times []float64
}

func (k *recordingKernel) HandleTick(e graph.EdgeID, t float64) {
	k.edges = append(k.edges, e)
	k.times = append(k.times, t)
}

func (k *recordingKernel) TickEdges(edges []graph.EdgeID, times []float64) {
	k.edges = append(k.edges, edges...)
	k.times = append(k.times, times...)
}

func (k *recordingKernel) TickEdgeVar(e graph.EdgeID, t float64) float64 {
	k.HandleTick(e, t)
	return 0
}

func (k *recordingKernel) Variance() float64 { return 0 }

func runPair(t *testing.T, kind SchedulerKind, seed uint64) (legacy, fused *recordingKernel, engL, engF *Engine) {
	t.Helper()
	g, _, err2 := graph.Dumbbell(12, 12, 2)
	if err2 != nil {
		t.Fatal(err2)
	}
	legacy, fused = &recordingKernel{}, &recordingKernel{}
	var err error
	engL, err = NewEngine(g, HandlerFunc(legacy.HandleTick), WithScheduler(kind), WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	engF, err = NewEngine(g, fused, WithScheduler(kind), WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	return legacy, fused, engL, engF
}

// The fused RunEvents must produce the identical event sequence (edges and
// times, bit for bit) as the generic Run loop, on both schedulers.
func TestRunEventsBitIdenticalToRun(t *testing.T) {
	for _, kind := range []SchedulerKind{GlobalClock, PerEdgeClocks} {
		legacy, fused, engL, engF := runPair(t, kind, 99)
		const n = 5000
		tL, evL := engL.Run(MaxEvents(n))
		tF, evF := engF.RunEvents(n)
		if tL != tF || evL != evF {
			t.Fatalf("%v: (t, events) = (%v, %d) generic vs (%v, %d) fused", kind, tL, evL, tF, evF)
		}
		compareRecordings(t, kind.String(), legacy, fused)
	}
}

// Same for RunUntil vs Run(Until(maxT)).
func TestRunUntilBitIdenticalToRun(t *testing.T) {
	for _, kind := range []SchedulerKind{GlobalClock, PerEdgeClocks} {
		legacy, fused, engL, engF := runPair(t, kind, 7)
		const horizon = 3.5
		tL, evL := engL.Run(Until(horizon))
		tF, evF := engF.RunUntil(horizon)
		if tL != tF || evL != evF {
			t.Fatalf("%v: (t, events) = (%v, %d) generic vs (%v, %d) fused", kind, tL, evL, tF, evF)
		}
		compareRecordings(t, kind.String(), legacy, fused)
	}
}

func compareRecordings(t *testing.T, label string, a, b *recordingKernel) {
	t.Helper()
	if len(a.edges) != len(b.edges) {
		t.Fatalf("%s: %d events generic vs %d fused", label, len(a.edges), len(b.edges))
	}
	for i := range a.edges {
		if a.edges[i] != b.edges[i] || a.times[i] != b.times[i] {
			t.Fatalf("%s: event %d diverged: (%d, %v) vs (%d, %v)",
				label, i, a.edges[i], a.times[i], b.edges[i], b.times[i])
		}
	}
}

// An engine with observers must not take the kernel fast path (observers
// would be skipped); RunEvents falls back to the generic loop.
func TestRunEventsRespectsObservers(t *testing.T) {
	g := graph.Complete(4)
	k := &recordingKernel{}
	calls := 0
	eng, err := NewEngine(g, k, WithObserver(func(float64, int64) { calls++ }))
	if err != nil {
		t.Fatal(err)
	}
	eng.RunEvents(50)
	if calls != 50 {
		t.Errorf("observer called %d times, want 50", calls)
	}
	// RunTracked has no generic fallback: with observers present it must
	// refuse rather than silently skip them.
	if _, ok := eng.RunTracked(Tracked{StopLevel: -1, MaxTime: 1}); ok {
		t.Error("RunTracked took the fast path despite observers")
	}
}

// RunTracked must replicate the estimator's stop rule: it stops once the
// variance is below StopLevel and the quiet period has passed, and censors
// at MaxTime.
func TestRunTrackedStops(t *testing.T) {
	g := graph.Complete(4)
	k := &recordingKernel{} // variance constant 0: below any positive stop level
	eng, err := NewEngine(g, k)
	if err != nil {
		t.Fatal(err)
	}
	res, ok := eng.RunTracked(Tracked{ExceedLevel: 1, StopLevel: 0.5, Quiet: 2, MaxTime: 1e6})
	if !ok {
		t.Fatal("kernel handler rejected by RunTracked")
	}
	if res.Censored {
		t.Error("censored despite variance below stop level")
	}
	if res.LastExceed != 0 {
		t.Errorf("last exceedance %v, want 0", res.LastExceed)
	}
	if eng.Now() < 2 {
		t.Errorf("stopped at t=%v before the quiet period", eng.Now())
	}
	// Censoring: unreachable stop level, tiny horizon.
	eng2, err := NewEngine(g, k, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	res2, ok := eng2.RunTracked(Tracked{ExceedLevel: -1, StopLevel: -1, Quiet: 0, MaxTime: 0.5})
	if !ok {
		t.Fatal("kernel handler rejected by RunTracked")
	}
	if !res2.Censored {
		t.Error("not censored at MaxTime with unreachable stop level")
	}
	if res2.LastExceed <= 0 {
		t.Error("exceedances (variance 0 > level -1) not recorded")
	}
}
