package check

import (
	"fmt"
	"math"
	"sort"

	"sparsecut/internal/dist"
	"sparsecut/internal/flight"
	"sparsecut/internal/graph"
)

// Invariant names as they appear in Violation.Invariant / trace JSON.
const (
	invSum         = "sum"
	invStaleCommit = "stale-commit"
	invLockState   = "lock-state"
	invQuiescence  = "quiescence"
)

// Virtual-time constants. The checker's clock advances one tick per action;
// the machine's deadlines are written in this base but never consulted —
// the checker fires TimeoutAwait/Resend as explicit explorable actions, so
// the exact values only matter for trace readability.
const (
	vTick          = 1_000
	vLockTimeoutNs = 1_000_000
	vResendNs      = 500_000
)

// exKey identifies one exchange attempt: (initiator, initiator's seq).
type exKey struct {
	init int
	seq  uint64
}

// world is one explored state of the whole system: every node's protocol
// state, the crash bitmap, the virtual network (an ordered multiset of
// in-flight messages — delivery order is the checker's choice, which is
// what models reordering), and the ghost state the invariants need.
type world struct {
	g    *graph.Graph
	opt  Options
	rule *checkRule
	mc   dist.Machine

	nodes   []*dist.NodeState
	crashed []bool
	net     []dist.Message

	// xInit is ghost provenance: the initiator's value at the moment each
	// exchange attempt's LOCK went out. The no-stale-commit invariant
	// checks every initiator apply against it — the protocol's claim is
	// precisely that a committed delta was computed from the initiator's
	// current value.
	xInit map[exKey]float64

	sum0  float64
	nowNs int64
	steps int

	// Spent schedule budgets (see Options).
	inits, dups, resends, crashes int

	// rec, when non-nil, receives a flight record for every applied
	// action (ReplayFlight sets it on the top-level replay world; the
	// emission mapping is dist.FlightEmitter, shared with the live
	// runtime). Clones drop it, so the throwaway quiescence drains the
	// invariants run record nothing.
	rec *flight.Recorder
}

func newWorld(spec Spec, opt Options) (*world, error) {
	if spec.Graph == nil {
		return nil, fmt.Errorf("check: spec has no graph")
	}
	n := spec.Graph.NumNodes()
	if len(spec.X0) != n {
		return nil, fmt.Errorf("check: %d initial values for %d nodes", len(spec.X0), n)
	}
	sum0 := 0.0
	for i, x := range spec.X0 {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("check: initial value of node %d is %v", i, x)
		}
		sum0 += x
	}
	rule, err := buildRule(spec.Rule, spec.Graph)
	if err != nil {
		return nil, err
	}
	w := &world{
		g:       spec.Graph,
		opt:     opt,
		rule:    rule,
		nodes:   make([]*dist.NodeState, n),
		crashed: make([]bool, n),
		xInit:   make(map[exKey]float64),
		sum0:    sum0,
	}
	w.mc = dist.Machine{
		G: spec.Graph, Rule: rule, Epoch: 1,
		LockTimeoutNs: vLockTimeoutNs, ResendEveryNs: vResendNs,
		Mutate: opt.Mutation,
	}
	for i := range w.nodes {
		w.nodes[i] = dist.NewNodeState(i, spec.X0[i])
	}
	return w, nil
}

// clone forks the world for one explored branch. Everything mutable is
// deep-copied, including the rule (its tick counter is protocol state the
// DFS must backtrack).
func (w *world) clone() *world {
	cp := *w
	cp.rule = w.rule.clone()
	cp.mc.Rule = cp.rule
	cp.nodes = make([]*dist.NodeState, len(w.nodes))
	for i, st := range w.nodes {
		cp.nodes[i] = st.Clone()
	}
	cp.crashed = append([]bool(nil), w.crashed...)
	cp.net = append([]dist.Message(nil), w.net...)
	cp.xInit = make(map[exKey]float64, len(w.xInit))
	for k, v := range w.xInit {
		cp.xInit[k] = v
	}
	cp.rec = nil
	return &cp
}

// enabled enumerates the actions explorable from this state, in a fixed
// deterministic order (the order defines what a schedule byte selects).
func (w *world) enabled() []Action {
	var acts []Action
	for i := range w.net {
		acts = append(acts, Action{Op: OpDeliver, Msg: i})
	}
	if w.opt.Drops {
		for i := range w.net {
			acts = append(acts, Action{Op: OpDrop, Msg: i})
		}
	}
	if w.opt.Dups && w.dups < w.opt.MaxDups {
		for i := range w.net {
			// LOCKs are excluded: the transport contract never duplicates,
			// and the protocol never retransmits LOCKs, so every duplicate
			// in the real system is a re-offered PROPOSE / re-answered
			// COMMIT or NACK. A duplicated LOCK would make the checker
			// explore behaviours outside the system's fault model (it
			// genuinely breaks the watermark argument — two live exchange
			// attempts with the same (initiator, seq) identity).
			if w.net[i].Kind != dist.MsgLock {
				acts = append(acts, Action{Op: OpDup, Msg: i})
			}
		}
	}
	for n, st := range w.nodes {
		if w.crashed[n] {
			acts = append(acts, Action{Op: OpRecover, Node: n})
			continue
		}
		if !st.Locked() && w.inits < w.opt.MaxInitiations {
			for e := range w.g.Neighbors(graph.NodeID(n)) {
				acts = append(acts, Action{Op: OpInitiate, Node: n, Edge: e})
			}
		}
		if st.Await != nil {
			acts = append(acts, Action{Op: OpTimeout, Node: n})
		}
		if st.Pend != nil && w.resends < w.opt.MaxResends {
			acts = append(acts, Action{Op: OpResend, Node: n})
		}
		if w.opt.Crashes && w.crashes < w.opt.MaxCrashes {
			acts = append(acts, Action{Op: OpCrash, Node: n})
		}
	}
	return acts
}

// apply executes one action and then checks every invariant. It returns a
// *Violation when an invariant fails, or an errInvalid-wrapped error when
// the action is not applicable (corrupt trace / fuzzed schedule); nil
// means the step is clean. apply validates applicability, not budgets —
// budget discipline lives in enabled(), so a replayed trace is not
// re-judged against its budgets.
func (w *world) apply(a Action) error {
	w.steps++
	w.nowNs += vTick
	var verr error
	switch a.Op {
	case OpDeliver:
		m, err := w.takeMsg(a.Msg)
		if err != nil {
			return err
		}
		verr = w.deliver(m, false)
	case OpDrop:
		m, err := w.takeMsg(a.Msg)
		if err != nil {
			return err
		}
		if w.rec != nil {
			dist.FlightEmitter{Rec: w.rec}.NetDrop(m, m.From, flight.ReasonSchedule, w.nowNs)
		}
	case OpDup:
		if a.Msg < 0 || a.Msg >= len(w.net) {
			return fmt.Errorf("%w: dup of message %d of %d in flight", errInvalid, a.Msg, len(w.net))
		}
		w.net = append(w.net, w.net[a.Msg])
		w.dups++
		if w.rec != nil {
			dist.FlightEmitter{Rec: w.rec}.NetDup(w.net[a.Msg], w.nowNs)
		}
	case OpInitiate:
		st, err := w.aliveNode(a.Node)
		if err != nil {
			return err
		}
		if st.Locked() {
			return fmt.Errorf("%w: initiate on locked node %d", errInvalid, a.Node)
		}
		adj := w.g.Neighbors(graph.NodeID(a.Node))
		if a.Edge < 0 || a.Edge >= len(adj) {
			return fmt.Errorf("%w: node %d has no incident edge index %d", errInvalid, a.Node, a.Edge)
		}
		out := w.mc.Initiate(st, adj[a.Edge], w.nowNs)
		w.inits++
		for _, m := range out.Send {
			if m.Kind == dist.MsgLock {
				w.xInit[exKey{st.ID, m.Seq}] = m.X
			}
		}
		if w.rec != nil {
			fe := dist.FlightEmitter{Rec: w.rec}
			fe.Initiate(a.Node, out, w.nowNs)
			w.emitSends(fe, a.Node, out.Send)
		}
		w.enqueue(out.Send)
	case OpTimeout:
		st, err := w.aliveNode(a.Node)
		if err != nil {
			return err
		}
		if st.Await == nil {
			return fmt.Errorf("%w: timeout on node %d with no outstanding initiation", errInvalid, a.Node)
		}
		var pre dist.FlightPre
		if w.rec != nil {
			pre = dist.FlightPreOf(st)
		}
		out := w.mc.TimeoutAwait(st)
		if w.rec != nil {
			dist.FlightEmitter{Rec: w.rec}.Timeout(a.Node, out, pre, w.nowNs)
		}
	case OpResend:
		st, err := w.aliveNode(a.Node)
		if err != nil {
			return err
		}
		if st.Pend == nil {
			return fmt.Errorf("%w: resend on node %d with no held proposal", errInvalid, a.Node)
		}
		var pre dist.FlightPre
		if w.rec != nil {
			pre = dist.FlightPreOf(st)
		}
		out := w.mc.Resend(st, w.nowNs)
		w.resends++
		if w.rec != nil {
			fe := dist.FlightEmitter{Rec: w.rec}
			fe.Resend(a.Node, pre, w.nowNs)
			w.emitSends(fe, a.Node, out.Send)
		}
		w.enqueue(out.Send)
	case OpCrash:
		st, err := w.aliveNode(a.Node)
		if err != nil {
			return err
		}
		w.crashed[a.Node] = true
		w.crashes++
		var pre dist.FlightPre
		if w.rec != nil {
			pre = dist.FlightPreOf(st)
		}
		out := w.mc.Crash(st)
		if w.rec != nil {
			dist.FlightEmitter{Rec: w.rec}.Crash(a.Node, out, pre, w.nowNs)
		}
	case OpRecover:
		if a.Node < 0 || a.Node >= len(w.nodes) || !w.crashed[a.Node] {
			return fmt.Errorf("%w: recover on node %d which is not crashed", errInvalid, a.Node)
		}
		w.crashed[a.Node] = false
		if w.rec != nil {
			dist.FlightEmitter{Rec: w.rec}.Recover(a.Node, w.nowNs)
		}
		w.enqueue(w.mc.Recover(w.nodes[a.Node], w.nowNs).Send)
	default:
		return fmt.Errorf("%w: unknown op %q", errInvalid, a.Op)
	}
	if verr != nil {
		return w.atStep(verr)
	}
	return w.atStep(w.invariants())
}

// atStep stamps a fresh violation with the current schedule step.
func (w *world) atStep(err error) error {
	if v, ok := err.(*Violation); ok && v.Step == 0 {
		v.Step = w.steps
	}
	return err
}

func (w *world) aliveNode(i int) (*dist.NodeState, error) {
	if i < 0 || i >= len(w.nodes) {
		return nil, fmt.Errorf("%w: node %d out of range", errInvalid, i)
	}
	if w.crashed[i] {
		return nil, fmt.Errorf("%w: node %d is crashed", errInvalid, i)
	}
	return w.nodes[i], nil
}

func (w *world) takeMsg(i int) (dist.Message, error) {
	if i < 0 || i >= len(w.net) {
		return dist.Message{}, fmt.Errorf("%w: message index %d of %d in flight", errInvalid, i, len(w.net))
	}
	m := w.net[i]
	w.net = append(w.net[:i], w.net[i+1:]...)
	return m, nil
}

func (w *world) enqueue(ms []dist.Message) {
	w.net = append(w.net, ms...)
}

// emitSends records each outgoing message of a step, mirroring the live
// runtime's send() hook.
func (w *world) emitSends(fe dist.FlightEmitter, node int, ms []dist.Message) {
	for _, m := range ms {
		fe.Send(node, m, w.nowNs)
	}
}

// deliver hands m to its destination and runs the per-delivery ghost
// checks. A message to a crashed node is lost — the runtime's fail-stop
// semantics.
func (w *world) deliver(m dist.Message, draining bool) error {
	if w.crashed[m.To] {
		if w.rec != nil {
			dist.FlightEmitter{Rec: w.rec}.NetDrop(m, m.To, flight.ReasonDead, w.nowNs)
		}
		return nil
	}
	st := w.nodes[m.To]
	xBefore := st.X
	var pendSeq uint64
	pendInit := -1
	if st.Pend != nil {
		pendSeq, pendInit = st.Pend.Msg.Seq, st.Pend.Msg.To
	}
	var pre dist.FlightPre
	if w.rec != nil {
		pre = dist.FlightPreOf(st)
	}
	out := w.mc.Deliver(st, m, w.nowNs, draining)
	if w.rec != nil {
		fe := dist.FlightEmitter{Rec: w.rec}
		fe.Deliver(m.To, m, out, pre, w.nowNs)
		w.emitSends(fe, m.To, out.Send)
	}
	w.enqueue(out.Send)
	if out.Applied {
		// Provenance: the delta the initiator just applied was computed by
		// the responder from the value the LOCK carried. If that is not the
		// initiator's value at apply time, a stale exchange committed.
		rec, ok := w.xInit[exKey{st.ID, m.Seq}]
		if !ok || rec != xBefore {
			return &Violation{Invariant: invStaleCommit, Detail: fmt.Sprintf(
				"node %d applied proposal seq %d from node %d computed against value %v, but its value at apply time is %v",
				st.ID, m.Seq, m.From, rec, xBefore)}
		}
	}
	if out.Committed && pendInit >= 0 {
		// A responder must only commit a proposal whose initiator actually
		// applied the matching half (watermark equals the pend's seq; see
		// sumInvariant for why equality is the applied test).
		if got := w.nodes[pendInit].LastApplied[st.ID]; got != pendSeq {
			return &Violation{Invariant: invStaleCommit, Detail: fmt.Sprintf(
				"node %d committed held proposal seq %d whose initiator %d has applied-watermark %d",
				st.ID, pendSeq, pendInit, got)}
		}
	}
	return nil
}

// invariants runs the per-step safety checks: lock-state sanity, the
// crash-adjusted sum, and (on its configured cadence) the quiescence
// drain on a throwaway clone.
func (w *world) invariants() error {
	if err := w.lockSanity(); err != nil {
		return err
	}
	if err := w.sumInvariant(); err != nil {
		return err
	}
	if q := w.opt.QuiescenceEvery; q < 0 || (q > 1 && w.steps%q != 0) {
		return nil
	}
	return w.clone().drain()
}

func (w *world) lockSanity() error {
	for i, st := range w.nodes {
		if st.Await != nil && st.Pend != nil {
			return &Violation{Invariant: invLockState, Detail: fmt.Sprintf(
				"node %d holds both an outstanding initiation and a held proposal", i)}
		}
		if w.crashed[i] && st.Await != nil {
			return &Violation{Invariant: invLockState, Detail: fmt.Sprintf(
				"crashed node %d still holds its (volatile) outstanding initiation", i)}
		}
		for r, seq := range st.LastApplied {
			if seq > st.Seq {
				return &Violation{Invariant: invLockState, Detail: fmt.Sprintf(
					"node %d applied-watermark for responder %d is %d, past its own seq counter %d", i, r, seq, st.Seq)}
			}
		}
	}
	return nil
}

// sumInvariant checks crash-adjusted sum conservation. Mid-exchange the
// raw sum legitimately carries each applied-but-uncommitted delta once
// (the initiator applied +d, the responder still holds d); subtracting
// exactly those held deltas must recover the initial sum at every
// reachable state — including any crash pattern, since values, watermarks
// and held proposals are stable storage.
func (w *world) sumInvariant() error {
	s := 0.0
	for _, st := range w.nodes {
		s += st.X
	}
	for _, st := range w.nodes {
		if st.Pend == nil {
			continue
		}
		// The initiator applied this held proposal iff its watermark equals
		// the pend's seq exactly: proposals to one initiator are serial, and
		// a held proposal below the watermark is a resurrected aborted
		// initiation the initiator never applied (and must refuse — that
		// refusal being exact is precisely what MutLaxWatermarkDedup breaks).
		if w.nodes[st.Pend.Msg.To].LastApplied[st.ID] == st.Pend.Msg.Seq {
			s -= st.Pend.Msg.X
		}
	}
	if d := s - w.sum0; math.Abs(d) > w.opt.Epsilon {
		return &Violation{Invariant: invSum, Detail: fmt.Sprintf(
			"crash-adjusted sum %v drifted from initial %v by %v", s, w.sum0, d)}
	}
	return nil
}

// drain runs the deterministic quiescence procedure on (a clone of) the
// world: recover everyone, then repeatedly deliver the oldest in-flight
// message, else retransmit a held proposal, else time out an outstanding
// initiation — the drain counterpart of the runtime's drain phase (new
// LOCKs are refused). From any reachable state of the correct protocol
// this terminates in a fully unlocked world whose plain sum equals the
// initial sum.
func (w *world) drain() error {
	for i := range w.crashed {
		if w.crashed[i] {
			w.crashed[i] = false
			w.enqueue(w.mc.Recover(w.nodes[i], w.nowNs).Send)
		}
	}
	limit := 100 + 30*(len(w.net)+len(w.nodes))
	for step := 0; ; step++ {
		if step > limit {
			return &Violation{Invariant: invQuiescence, Detail: fmt.Sprintf(
				"world did not quiesce within %d drain steps", limit)}
		}
		w.nowNs += vTick
		if len(w.net) > 0 {
			m := w.net[0]
			w.net = w.net[1:]
			if err := w.deliver(m, true); err != nil {
				if v, ok := err.(*Violation); ok {
					v.Detail = "during quiescence drain: " + v.Detail
				}
				return err
			}
			continue
		}
		acted := false
		for _, st := range w.nodes {
			if st.Pend != nil {
				w.enqueue(w.mc.Resend(st, w.nowNs).Send)
				acted = true
				break
			}
		}
		if !acted {
			for _, st := range w.nodes {
				if st.Await != nil {
					w.mc.TimeoutAwait(st)
					acted = true
					break
				}
			}
		}
		if !acted {
			break
		}
	}
	s := 0.0
	for _, st := range w.nodes {
		s += st.X
	}
	if d := s - w.sum0; math.Abs(d) > w.opt.Epsilon {
		return &Violation{Invariant: invQuiescence, Detail: fmt.Sprintf(
			"drained sum %v differs from initial %v by %v", s, w.sum0, d)}
	}
	return nil
}

// hash is the canonical state fingerprint for DFS deduplication. Virtual
// timestamps (deadlines, leases, the clock itself) are deliberately
// excluded — the checker fires timers by explicit action, so two states
// differing only in clock readings have identical futures. The network is
// hashed as a sorted multiset: delivery actions can pick any in-flight
// message, so worlds differing only in queue order are behaviourally
// isomorphic (a small symmetry reduction). Ghost provenance is also
// excluded: entries relevant to any in-flight or held proposal are fully
// determined by the hashed state.
func (w *world) hash() uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for i, st := range w.nodes {
		mix(math.Float64bits(st.X))
		mix(st.Seq)
		if st.Await != nil {
			mix(1)
			mix(uint64(st.Await.Peer))
			mix(st.Await.Seq)
		} else {
			mix(0)
		}
		if st.Pend != nil {
			k := msgKey(st.Pend.Msg)
			mix(2)
			mix(k[0])
			mix(k[1])
		} else {
			mix(0)
		}
		for _, he := range w.g.Neighbors(graph.NodeID(i)) {
			mix(st.LastApplied[int(he.Peer)])
		}
		if w.crashed[i] {
			mix(1)
		} else {
			mix(0)
		}
	}
	keys := make([][2]uint64, len(w.net))
	for i, m := range w.net {
		keys[i] = msgKey(m)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	mix(uint64(len(keys)))
	for _, k := range keys {
		mix(k[0])
		mix(k[1])
	}
	mix(uint64(w.rule.ticks))
	mix(uint64(w.rule.swaps))
	mix(uint64(w.inits))
	mix(uint64(w.dups))
	mix(uint64(w.resends))
	mix(uint64(w.crashes))
	if q := w.opt.QuiescenceEvery; q > 1 {
		// Which step of the quiescence cadence we are on changes what future
		// steps will check, so it is part of the state.
		mix(uint64(w.steps % q))
	}
	return h
}

// msgKey packs a message's time-independent identity for hashing.
func msgKey(m dist.Message) [2]uint64 {
	k := uint64(m.Kind)<<56 | uint64(uint8(m.From))<<48 | uint64(uint8(m.To))<<40 |
		uint64(uint16(m.Edge))<<24 | (m.Seq & 0xffffff)
	return [2]uint64{k, math.Float64bits(m.X)}
}
