package sim

import (
	"math"
	"testing"

	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
)

func TestNodeClockRatesStar(t *testing.T) {
	// Star K_{1,4}: hub degree 4, leaves degree 1.
	g := graph.Star(5)
	rates := NodeClockRates(g)
	for i, r := range rates {
		want := 1.0/4 + 1.0 // hub contributes 1/4, leaf 1/1
		if math.Abs(r-want) > 1e-15 {
			t.Errorf("edge %d rate %v, want %v", i, r, want)
		}
	}
}

func TestNodeClockRatesRegularGraph(t *testing.T) {
	// On a d-regular graph every edge has rate 2/d.
	g := graph.Cycle(8)
	for i, r := range NodeClockRates(g) {
		if math.Abs(r-1) > 1e-15 { // 1/2 + 1/2
			t.Errorf("edge %d rate %v, want 1", i, r)
		}
	}
}

func TestTotalNodeClockRateEqualsN(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Complete(7), graph.Path(9), graph.Star(6), graph.Grid(3, 4),
	} {
		if got := TotalNodeClockRate(g); math.Abs(got-float64(g.NumNodes())) > 1e-9 {
			t.Errorf("%s: total rate %v, want %d", g, got, g.NumNodes())
		}
	}
}

func TestNodeClockRatesPanicsOnIsolatedNode(t *testing.T) {
	// An isolated node never appears on an edge, so rates are fine; the
	// panic path needs a degree-0 endpoint, which cannot occur on a valid
	// graph — instead verify the edgeless graph yields an empty rate set.
	g := graph.NewBuilder(3).MustBuild()
	if len(NodeClockRates(g)) != 0 {
		t.Error("edgeless graph should have no rates")
	}
}

// The reduction must match a directly simulated node-clock process: per-
// edge tick counts over a horizon agree within Monte-Carlo noise.
func TestNodeClockReductionEquivalence(t *testing.T) {
	g := graph.Star(6) // asymmetric degrees make the test discriminating
	const horizon = 3000.0

	// Reduction: edge-clock engine with NodeClockRates.
	viaRates := make([]int64, g.NumEdges())
	eng, err := NewEngine(g, HandlerFunc(func(e graph.EdgeID, _ float64) { viaRates[e]++ }),
		WithRates(NodeClockRates(g)), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(Until(horizon))

	// Direct simulation: n node clocks, uniform neighbour choice.
	direct := make([]int64, g.NumEdges())
	r := rng.New(4)
	n := g.NumNodes()
	tNow := 0.0
	for {
		tNow += r.ExpFloat64(float64(n)) // superposed node clocks
		if tNow >= horizon {
			break
		}
		u := graph.NodeID(r.Intn(n))
		nb := g.Neighbors(u)
		he := nb[r.Intn(len(nb))]
		direct[he.Edge]++
	}

	for e := 0; e < g.NumEdges(); e++ {
		a, b := float64(viaRates[e]), float64(direct[e])
		// Each count is ~Poisson(1.25*3000); allow 6 sigma combined.
		sigma := math.Sqrt(a + b)
		if math.Abs(a-b) > 6*sigma {
			t.Errorf("edge %d: reduction %v vs direct %v", e, a, b)
		}
	}
}
