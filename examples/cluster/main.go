// Cluster: run Algorithm A as a *real* decentralized protocol — one
// goroutine per node, one per edge clock, coordinating through explicit
// messages (ordered try-lock exchanges with leases and retransmission)
// instead of a shared-memory simulator.
//
// By default the transport is in-memory channels; pass -tcp to carry every
// protocol message over loopback TCP sockets. Pass -drop 0.05 to inject
// 5% i.i.d. message loss and watch the protocol degrade gracefully
// (aborted exchanges are skipped ticks, not corruption).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"sparsecut"
	"sparsecut/internal/core"
	"sparsecut/internal/dist"
	"sparsecut/internal/rng"
)

func main() {
	var (
		n        = flag.Int("n", 16, "total nodes (dumbbell of two n/2-cliques)")
		duration = flag.Float64("t", 40, "simulated duration in time units")
		drop     = flag.Float64("drop", 0, "message loss probability in [0,1)")
		useTCP   = flag.Bool("tcp", false, "use loopback TCP instead of in-memory channels")
		seed     = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	g, part, err := sparsecut.NewDumbbell(*n/2, *n-*n/2, 1)
	if err != nil {
		log.Fatal(err)
	}
	x0 := sparsecut.WorstCaseInit(part)
	rule, err := dist.NewSparseCutRule(part, part.CutEdges()[0], 2, core.ExactWeight(part))
	if err != nil {
		log.Fatal(err)
	}

	addrs := g.NumNodes() + g.NumEdges()
	var tr dist.Transport
	if *useTCP {
		tcp, err := dist.NewTCPTransport(addrs)
		if err != nil {
			log.Fatal(err)
		}
		port, _ := tcp.Port(0)
		fmt.Printf("transport: loopback TCP (%d listeners, node 0 on port %d)\n", addrs, port)
		tr = tcp
	} else {
		fmt.Printf("transport: in-memory channels (%d mailboxes)\n", addrs)
		tr = dist.NewChanTransport(addrs)
	}
	if *drop > 0 {
		tr, err = dist.NewDropTransport(tr, *drop, rng.New(*seed+99))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("fault injection: dropping %.0f%% of messages\n", *drop*100)
	}

	cl, err := dist.NewCluster(g, x0, rule, dist.ClusterConfig{
		TimeScale: 8 * time.Millisecond,
		Seed:      *seed,
		Transport: tr,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("graph:     %s\n", g)
	fmt.Printf("rule:      %s\n", rule.Name())
	fmt.Printf("running:   %d node + %d clock goroutines for t=%g (%.1fs wall)...\n",
		g.NumNodes(), g.NumEdges(), *duration, *duration*0.008)
	start := time.Now()
	if err := cl.Run(context.Background(), *duration); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done in %v\n\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("exchanges: %d committed, %d aborted\n", cl.Exchanges(), cl.Aborted())
	fmt.Printf("mean:      %.6g (started at 0)\n", cl.Mean())
	fmt.Printf("variance:  %.6g (started at 1)\n", cl.Variance())
}
