package graph

import (
	"testing"

	"sparsecut/internal/rng"
)

func TestComplete(t *testing.T) {
	for _, n := range []int{1, 2, 5, 10} {
		g := Complete(n)
		if g.NumNodes() != n {
			t.Errorf("K_%d: %d nodes", n, g.NumNodes())
		}
		if want := n * (n - 1) / 2; g.NumEdges() != want {
			t.Errorf("K_%d: %d edges, want %d", n, g.NumEdges(), want)
		}
		for u := 0; u < n; u++ {
			if g.Degree(NodeID(u)) != n-1 {
				t.Errorf("K_%d: node %d degree %d", n, u, g.Degree(NodeID(u)))
			}
		}
	}
}

func TestPath(t *testing.T) {
	g := Path(6)
	if g.NumEdges() != 5 {
		t.Errorf("P_6 has %d edges", g.NumEdges())
	}
	if d := Diameter(g); d != 5 {
		t.Errorf("P_6 diameter %d", d)
	}
	if g.Degree(0) != 1 || g.Degree(3) != 2 {
		t.Error("wrong path degrees")
	}
	if Path(1).NumEdges() != 0 {
		t.Error("P_1 should have no edges")
	}
}

func TestCycle(t *testing.T) {
	g := Cycle(7)
	if g.NumEdges() != 7 {
		t.Errorf("C_7 has %d edges", g.NumEdges())
	}
	for u := 0; u < 7; u++ {
		if g.Degree(NodeID(u)) != 2 {
			t.Errorf("C_7 node %d degree %d", u, g.Degree(NodeID(u)))
		}
	}
	if d := Diameter(g); d != 3 {
		t.Errorf("C_7 diameter %d, want 3", d)
	}
}

func TestCyclePanicsSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Cycle(2) did not panic")
		}
	}()
	Cycle(2)
}

func TestStar(t *testing.T) {
	g := Star(9)
	if g.Degree(0) != 8 {
		t.Errorf("hub degree %d", g.Degree(0))
	}
	for u := 1; u < 9; u++ {
		if g.Degree(NodeID(u)) != 1 {
			t.Errorf("leaf %d degree %d", u, g.Degree(NodeID(u)))
		}
	}
	if d := Diameter(g); d != 2 {
		t.Errorf("star diameter %d", d)
	}
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4)
	if g.NumNodes() != 12 {
		t.Errorf("%d nodes", g.NumNodes())
	}
	// edges: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17
	if g.NumEdges() != 17 {
		t.Errorf("%d edges, want 17", g.NumEdges())
	}
	if !IsConnected(g) {
		t.Error("grid disconnected")
	}
	if !g.HasPositions() {
		t.Error("grid should carry positions")
	}
	if d := Diameter(g); d != 5 {
		t.Errorf("3x4 grid diameter %d, want 5", d)
	}
}

func TestTorus(t *testing.T) {
	g := Torus(4, 5)
	if g.NumEdges() != 2*4*5 {
		t.Errorf("%d edges, want 40", g.NumEdges())
	}
	for u := 0; u < g.NumNodes(); u++ {
		if g.Degree(NodeID(u)) != 4 {
			t.Errorf("torus node %d degree %d", u, g.Degree(NodeID(u)))
		}
	}
}

func TestHypercube(t *testing.T) {
	g := Hypercube(4)
	if g.NumNodes() != 16 || g.NumEdges() != 32 {
		t.Errorf("Q_4: %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	for u := 0; u < 16; u++ {
		if g.Degree(NodeID(u)) != 4 {
			t.Error("Q_4 not 4-regular")
		}
	}
	if d := Diameter(g); d != 4 {
		t.Errorf("Q_4 diameter %d", d)
	}
	if g0 := Hypercube(0); g0.NumNodes() != 1 || g0.NumEdges() != 0 {
		t.Error("Q_0 should be a single node")
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(3, 4)
	if g.NumEdges() != 12 {
		t.Errorf("%d edges", g.NumEdges())
	}
	if g.Degree(0) != 4 || g.Degree(5) != 3 {
		t.Error("wrong bipartite degrees")
	}
}

func TestBinaryTree(t *testing.T) {
	g := BinaryTree(4)
	if g.NumNodes() != 15 || g.NumEdges() != 14 {
		t.Errorf("%d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if !IsConnected(g) {
		t.Error("tree disconnected")
	}
	if d := Diameter(g); d != 6 {
		t.Errorf("diameter %d, want 6", d)
	}
}

func TestLollipop(t *testing.T) {
	g := Lollipop(5, 3)
	if g.NumNodes() != 8 {
		t.Errorf("%d nodes", g.NumNodes())
	}
	if want := 5*4/2 + 3; g.NumEdges() != want {
		t.Errorf("%d edges, want %d", g.NumEdges(), want)
	}
	if !IsConnected(g) {
		t.Error("lollipop disconnected")
	}
	if g.Degree(7) != 1 {
		t.Error("tail end should have degree 1")
	}
}

func TestGnPExtremes(t *testing.T) {
	r := rng.New(1)
	if g := GnP(r, 10, 0); g.NumEdges() != 0 {
		t.Error("G(10,0) has edges")
	}
	if g := GnP(r, 10, 1); g.NumEdges() != 45 {
		t.Errorf("G(10,1) has %d edges, want 45", g.NumEdges())
	}
}

func TestGnPEdgeCount(t *testing.T) {
	r := rng.New(2)
	n, p := 60, 0.25
	total := 0
	const reps = 30
	for i := 0; i < reps; i++ {
		total += GnP(r, n, p).NumEdges()
	}
	mean := float64(total) / reps
	want := p * float64(n*(n-1)/2)
	if mean < want*0.9 || mean > want*1.1 {
		t.Errorf("G(n,p) mean edge count %v, want ~%v", mean, want)
	}
}

func TestGnPConnected(t *testing.T) {
	r := rng.New(3)
	g, err := GnPConnected(r, 30, 0.3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !IsConnected(g) {
		t.Error("GnPConnected returned disconnected graph")
	}
	if _, err := GnPConnected(r, 30, 0.0, 3); err == nil {
		t.Error("expected failure for p=0")
	}
}

func TestRandomRegular(t *testing.T) {
	r := rng.New(4)
	g, err := RandomRegular(r, 20, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 20; u++ {
		if g.Degree(NodeID(u)) != 4 {
			t.Fatalf("node %d degree %d, want 4", u, g.Degree(NodeID(u)))
		}
	}
}

func TestRandomRegularErrors(t *testing.T) {
	r := rng.New(5)
	if _, err := RandomRegular(r, 5, 3, 10); err == nil {
		t.Error("odd n*d not rejected")
	}
	if _, err := RandomRegular(r, 4, 4, 10); err == nil {
		t.Error("d >= n not rejected")
	}
	if _, err := RandomRegular(r, -1, 2, 10); err == nil {
		t.Error("negative n not rejected")
	}
}

func TestRGG(t *testing.T) {
	r := rng.New(6)
	g := RGG(r, 40, 0.5)
	if !g.HasPositions() {
		t.Fatal("RGG missing positions")
	}
	// Check the geometric predicate on a few pairs.
	for id, e := range g.Edges() {
		pu, pv := g.Position(e.U), g.Position(e.V)
		dx, dy := pu.X-pv.X, pu.Y-pv.Y
		if dx*dx+dy*dy >= 0.25 {
			t.Fatalf("edge %d joins nodes at distance >= radius", id)
		}
	}
}

func TestRGGConnected(t *testing.T) {
	r := rng.New(7)
	g, err := RGGConnected(r, 50, 0.5, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !IsConnected(g) {
		t.Error("RGGConnected returned disconnected graph")
	}
}

func TestConnectivityRadius(t *testing.T) {
	if r := ConnectivityRadius(1); r != 1 {
		t.Errorf("radius for n=1: %v", r)
	}
	r100 := ConnectivityRadius(100)
	if r100 <= 0 || r100 > 1 {
		t.Errorf("radius for n=100: %v", r100)
	}
	if ConnectivityRadius(1000) >= r100 {
		t.Error("radius should shrink with n")
	}
}

func TestWalledRGG(t *testing.T) {
	r := rng.New(8)
	g, part, err := WalledRGG(r, 80, 0.35, 2, 200)
	if err != nil {
		t.Fatal(err)
	}
	if part.CutSize() != 2 {
		t.Errorf("cut size %d, want 2 (doors)", part.CutSize())
	}
	if !SidesInternallyConnected(part) {
		t.Error("walled RGG sides not internally connected")
	}
	if !IsConnected(g) {
		t.Error("walled RGG disconnected")
	}
	// All nodes on side 1 should be left of the wall.
	for u := 0; u < g.NumNodes(); u++ {
		left := g.Position(NodeID(u)).X < 0.5
		if left != (part.SideOf(NodeID(u)) == Side1) {
			t.Fatalf("node %d on wrong side", u)
		}
	}
}

func TestWalledRGGErrors(t *testing.T) {
	r := rng.New(9)
	if _, _, err := WalledRGG(r, 50, 0.3, 0, 10); err == nil {
		t.Error("doors=0 not rejected")
	}
	// Tiny radius cannot produce crossings.
	if _, _, err := WalledRGG(r, 10, 0.01, 1, 3); err == nil {
		t.Error("impossible construction did not fail")
	}
}
