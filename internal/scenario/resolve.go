package scenario

import (
	"fmt"
	"strings"

	"sparsecut/internal/avgtime"
	"sparsecut/internal/core"
	"sparsecut/internal/cut"
	"sparsecut/internal/gossip"
	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
	"sparsecut/internal/sim"
	"sparsecut/internal/spectral"
)

// Resolved is a Spec turned into concrete simulation objects. All
// randomness consumed during resolution (graph sampling, random initial
// vectors, rate draws) derives deterministically from Spec.Seed, so the
// same spec resolves to the same graph and initial condition everywhere.
type Resolved struct {
	// Spec is the input with every default filled in — the normalized form
	// that sweep reports embed.
	Spec Spec
	// Graph is the built graph; Partition its planted sparse-cut partition
	// (nil for families without one). Both are nil on the sharded path
	// (Stop.Shards > 0), where Implicit carries the graph instead.
	Graph     *graph.Graph
	Partition *graph.Partition
	// Implicit is the index-arithmetic representation, set instead of
	// Graph when Stop.Shards > 0 routes the run onto the sharded engine.
	Implicit graph.Implicit
	// X0 is the initial vector.
	X0 []float64
	// Rates holds per-edge clock rates, nil for the uniform rate-1 model.
	Rates []float64

	trialSeed uint64
	algSeed   uint64
}

// Resolve validates the spec, applies defaults, builds the graph and the
// initial condition, and returns the bundle the engines consume.
func (s Spec) Resolve() (*Resolved, error) {
	s = s.withDefaults()
	fam, ok := Lookup(s.Graph.Family)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown graph family %q (known: %s)",
			s.Graph.Family, strings.Join(FamilyNames(), ", "))
	}
	s.Graph.Family = fam.Name
	if fam.Defaults != nil {
		fam.Defaults(&s.Graph)
	}
	switch s.Algo.Name {
	case "vanilla", "convex", "pushsum", "A":
	case "a", "algorithmA", "algorithma", "sparsecut":
		s.Algo.Name = "A"
	default:
		return nil, fmt.Errorf("scenario: unknown algorithm %q (known: vanilla, convex, pushsum, A)", s.Algo.Name)
	}
	if s.Algo.Alpha < 0 || s.Algo.Alpha > 1 {
		return nil, fmt.Errorf("scenario: convex alpha %v outside [0,1]", s.Algo.Alpha)
	}
	switch s.Algo.Weight {
	case "exact", "paper", "custom":
	default:
		return nil, fmt.Errorf("scenario: unknown weight rule %q (known: exact, paper, custom)", s.Algo.Weight)
	}

	// All resolution randomness flows from one root: one child stream for
	// the graph sample, one for the initial vector, one for the rates, and
	// a derived seed for the trial streams. The order is part of the
	// determinism contract (DESIGN.md §7).
	root := rng.New(s.Seed)
	graphRNG := root.Split()
	initRNG := root.Split()
	rateRNG := root.Split()
	trialSeed := root.Uint64()
	algSeed := root.Uint64()

	if s.Stop.Shards > 0 {
		// Sharded large-run path: the implicit representation replaces the
		// materialised graph, so only index-arithmetic families, the
		// vanilla kernel (gossip.FlatState) and uniform rate-1 clocks
		// qualify. Stream derivation order above is unchanged — the same
		// seed resolves to the same init vector on either path.
		if fam.Implicit == nil {
			return nil, fmt.Errorf("scenario: family %s has no implicit representation (shards require one of: dumbbell, ringofcliques, hierdumbbell, grid, torus)", fam.Name)
		}
		if s.Algo.Name != "vanilla" {
			return nil, fmt.Errorf("scenario: sharded runs support the vanilla algorithm only, not %q", s.Algo.Name)
		}
		if s.Rates != "uniform" {
			return nil, fmt.Errorf("scenario: sharded runs support uniform rates only, not %q", s.Rates)
		}
		ig, err := fam.Implicit(s.Graph)
		if err != nil {
			return nil, fmt.Errorf("scenario: building implicit %s: %w", fam.Name, err)
		}
		s.Graph.N = ig.NumNodes()
		r := &Resolved{Spec: s, Implicit: ig, trialSeed: trialSeed, algSeed: algSeed}
		if r.X0, err = buildInitImplicit(s.Init, ig, initRNG); err != nil {
			return nil, err
		}
		return r, nil
	}

	g, part, err := fam.Build(s.Graph, graphRNG)
	if err != nil {
		return nil, fmt.Errorf("scenario: building %s: %w", fam.Name, err)
	}
	s.Graph.N = g.NumNodes()

	r := &Resolved{Spec: s, Graph: g, Partition: part, trialSeed: trialSeed, algSeed: algSeed}
	if r.X0, err = buildInit(s.Init, g, part, initRNG); err != nil {
		return nil, err
	}
	if r.Rates, err = buildRates(s.Rates, g, rateRNG); err != nil {
		return nil, err
	}
	return r, nil
}

// buildInitImplicit is buildInit for implicit graphs: "worstcase" uses
// the planted prefix split (falling back to a spike when the family
// plants none — no spectral detection without a materialised graph).
func buildInitImplicit(kind string, ig graph.Implicit, r *rng.RNG) ([]float64, error) {
	n := ig.NumNodes()
	switch kind {
	case "worstcase":
		if sp := ig.SplitPoint(); sp > 0 && sp < n {
			return gossip.CutIndicatorPrefix(n, sp), nil
		}
		return gossip.Spike(n, 0)
	case "spike":
		return gossip.Spike(n, 0)
	case "random":
		return gossip.UniformRandom(r, n), nil
	case "gaussian":
		return gossip.GaussianRandom(r, n), nil
	case "linear":
		return gossip.Linear(n), nil
	default:
		return nil, fmt.Errorf("scenario: unknown init %q (known: worstcase, spike, random, gaussian, linear)", kind)
	}
}

// buildInit constructs the initial vector. "worstcase" prefers the
// planted partition's cut indicator; without one it detects a cut by
// spectral bisection and falls back to a spike if detection fails.
func buildInit(kind string, g *graph.Graph, part *graph.Partition, r *rng.RNG) ([]float64, error) {
	switch kind {
	case "worstcase":
		if part == nil {
			detected, err := cut.SpectralBisection(g, spectral.Options{})
			if err == nil {
				return gossip.CutIndicator(detected), nil
			}
			return gossip.Spike(g.NumNodes(), 0)
		}
		return gossip.CutIndicator(part), nil
	case "spike":
		return gossip.Spike(g.NumNodes(), 0)
	case "random":
		return gossip.UniformRandom(r, g.NumNodes()), nil
	case "gaussian":
		return gossip.GaussianRandom(r, g.NumNodes()), nil
	case "linear":
		return gossip.Linear(g.NumNodes()), nil
	default:
		return nil, fmt.Errorf("scenario: unknown init %q (known: worstcase, spike, random, gaussian, linear)", kind)
	}
}

// buildRates constructs the per-edge clock rates for the named model.
func buildRates(model string, g *graph.Graph, r *rng.RNG) ([]float64, error) {
	switch model {
	case "uniform":
		return nil, nil
	case "nodeclock":
		return sim.NodeClockRates(g), nil
	case "random":
		rates := make([]float64, g.NumEdges())
		for i := range rates {
			rates[i] = 0.5 + 1.5*r.Float64()
		}
		return rates, nil
	default:
		return nil, fmt.Errorf("scenario: unknown rate model %q (known: uniform, nodeclock, random)", model)
	}
}

// NewAlgorithm builds a fresh algorithm instance for one trial. The RNG
// is consumed only by algorithms with internal randomness (push-sum).
func (r *Resolved) NewAlgorithm(rr *rng.RNG) (gossip.Algorithm, error) {
	a := r.Spec.Algo
	switch a.Name {
	case "vanilla":
		return gossip.NewVanilla(r.Graph, r.X0)
	case "convex":
		return gossip.NewConvex(r.Graph, r.X0, a.Alpha)
	case "pushsum":
		return gossip.NewPushSum(r.Graph, r.X0, rr)
	case "A":
		opts := []core.Option{}
		if r.Partition != nil {
			opts = append(opts, core.WithPartition(r.Partition))
		}
		switch a.Weight {
		case "paper":
			opts = append(opts, core.WithWeightRule(core.WeightPaper))
		case "custom":
			opts = append(opts, core.WithWeight(a.W))
		}
		if a.EpochC != 0 {
			opts = append(opts, core.WithEpochConstant(a.EpochC))
		}
		if a.EpochTicks != 0 {
			opts = append(opts, core.WithEpochTicks(a.EpochTicks))
		}
		if a.AllCutEdges {
			opts = append(opts, core.WithAllCutEdges())
		}
		return core.New(r.Graph, r.X0, opts...)
	default:
		return nil, fmt.Errorf("scenario: unknown algorithm %q", a.Name)
	}
}

// AlgorithmRNG returns a fresh stream for a single standalone algorithm
// instance (e.g. one CLI simulation run). It is derived from the
// scenario root but disjoint from the graph/init/rate streams and from
// the avgtime trial streams, so no randomness is reused across purposes.
func (r *Resolved) AlgorithmRNG() *rng.RNG {
	return rng.New(r.algSeed)
}

// NumNodes returns the resolved node count, whichever representation
// carries the graph.
func (r *Resolved) NumNodes() int {
	if r.Implicit != nil {
		return r.Implicit.NumNodes()
	}
	return r.Graph.NumNodes()
}

// Factory adapts NewAlgorithm to the avgtime trial-factory signature.
func (r *Resolved) Factory() avgtime.Factory {
	return func(_ int, rr *rng.RNG) (gossip.Algorithm, error) {
		return r.NewAlgorithm(rr)
	}
}

// Monotone reports whether the resolved algorithm's variance is
// non-increasing (class C), letting the estimator stop exactly at the
// threshold instead of waiting out the re-inflation margin.
func (r *Resolved) Monotone() bool {
	return r.Spec.Algo.Name == "vanilla" || r.Spec.Algo.Name == "convex"
}

// AvgtimeConfig derives the Definition-1 estimator configuration: the
// spec's trial budget and censoring horizon (default 60·n), with the
// trial streams seeded from the scenario root.
func (r *Resolved) AvgtimeConfig() avgtime.Config {
	cfg := avgtime.Config{
		Trials:     r.Spec.Stop.Trials,
		MaxTime:    r.Spec.Stop.MaxTime,
		Seed:       r.trialSeed,
		BatchWidth: r.Spec.Stop.BatchWidth,
	}
	if cfg.MaxTime == 0 {
		cfg.MaxTime = 60 * float64(r.NumNodes())
	}
	if r.Monotone() {
		cfg.MarginFactor = 1 // convex updates never re-inflate the variance
	}
	return cfg
}

// EnsembleFactory returns the replica-batched kernel factory for
// algorithms with an ensemble implementation — vanilla, convex and
// push-sum — and ok = false for Algorithm A, whose epoch machinery needs
// materialised per-event times and therefore stays on the per-event path.
func (r *Resolved) EnsembleFactory() (avgtime.EnsembleFactory, bool) {
	switch r.Spec.Algo.Name {
	case "vanilla":
		return func(replicas int, _ []*rng.RNG) (sim.BatchKernel, error) {
			return gossip.NewVanillaEnsemble(r.Graph, r.X0, replicas)
		}, true
	case "convex":
		alpha := r.Spec.Algo.Alpha
		return func(replicas int, _ []*rng.RNG) (sim.BatchKernel, error) {
			return gossip.NewConvexEnsemble(r.Graph, r.X0, alpha, replicas)
		}, true
	case "pushsum":
		return func(_ int, algStreams []*rng.RNG) (sim.BatchKernel, error) {
			return gossip.NewPushSumEnsemble(r.Graph, r.X0, algStreams)
		}, true
	default:
		return nil, false
	}
}

// Estimate runs the paper's Definition-1 Monte-Carlo averaging-time
// estimator for this scenario (censoring-aware, like internal/avgtime).
// Scenarios resolved onto the sharded path (Stop.Shards > 0) run the
// windowed PDES engine over the implicit graph; scenarios whose
// algorithm has a replica-batched ensemble form route through the
// bridged sim.BatchEngine — the sweep hot path; Algorithm A runs the
// per-event tracked loop. Either way the result is a deterministic
// function of the spec alone.
func (r *Resolved) Estimate() (avgtime.Result, error) {
	if r.Implicit != nil {
		return avgtime.EstimateSharded(r.Implicit, r.X0, r.AvgtimeConfig(), avgtime.ShardedOptions{
			Workers: r.Spec.Stop.Shards,
			Window:  r.Spec.Stop.Window,
		})
	}
	if factory, ok := r.EnsembleFactory(); ok {
		return avgtime.EstimateBatched(r.Graph, r.Rates, factory, r.AvgtimeConfig())
	}
	return avgtime.EstimateWithRates(r.Graph, r.Rates, r.Factory(), r.AvgtimeConfig())
}
