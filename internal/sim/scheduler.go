package sim

import (
	"sort"

	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
)

// globalScheduler superposes all edge clocks into one Poisson stream at the
// total rate; each event picks an edge with probability proportional to its
// rate. Uniform rates use a constant-time Lemire pick; heterogeneous rates
// use a Walker alias table — also O(1) per event, replacing the former
// per-event binary search (the cdfSampler below, kept as the reference
// implementation the tests cross-check against).
type globalScheduler struct {
	r         *rng.RNG
	totalRate float64
	invTotal  float64
	now       float64
	uniform   bool
	numEdges  int
	alias     *aliasTable // nil when uniform
}

func newGlobalScheduler(rates []float64, r *rng.RNG) *globalScheduler {
	s := &globalScheduler{r: r, numEdges: len(rates), uniform: true}
	for _, rate := range rates {
		if rate != rates[0] {
			s.uniform = false
			break
		}
	}
	if s.uniform {
		s.totalRate = rates[0] * float64(len(rates))
	} else {
		s.alias = newAliasTable(rates)
		for _, rate := range rates {
			s.totalRate += rate
		}
	}
	s.invTotal = 1 / s.totalRate
	return s
}

func (s *globalScheduler) next() (graph.EdgeID, float64) {
	s.now += s.r.ExpUnit() * s.invTotal
	if s.uniform {
		return graph.EdgeID(s.r.Intn(s.numEdges)), s.now
	}
	return graph.EdgeID(s.alias.pick(s.r)), s.now
}

// aliasTable is a Walker/Vose alias table over a fixed weight vector:
// construction is O(n), each pick is O(1) — one uniform slot, one coin.
type aliasTable struct {
	prob  []float64 // acceptance threshold of the home slot, in [0, 1]
	alias []int32   // donor index taken when the coin exceeds prob
}

// newAliasTable builds the table by Vose's stable two-stack method. Weights
// must be positive (the schedulers validate rates before reaching here).
func newAliasTable(weights []float64) *aliasTable {
	n := len(weights)
	t := &aliasTable{prob: make([]float64, n), alias: make([]int32, n)}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	// Scale each weight so the average bucket holds exactly 1.
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Leftovers are exactly 1 up to float rounding.
	for _, i := range large {
		t.prob[i] = 1
		t.alias[i] = i
	}
	for _, i := range small {
		t.prob[i] = 1
		t.alias[i] = i
	}
	return t
}

// pick returns an index distributed proportionally to the table's weights.
func (t *aliasTable) pick(r *rng.RNG) int32 {
	i := int32(r.Intn(len(t.prob)))
	if r.Float64() < t.prob[i] {
		return i
	}
	return t.alias[i]
}

// impliedProb returns the exact probability the table assigns to index i —
// used by tests to verify the construction against the input weights.
func (t *aliasTable) impliedProb(i int32) float64 {
	n := float64(len(t.prob))
	p := t.prob[i]
	for j, a := range t.alias {
		if a == i && int32(j) != i {
			p += 1 - t.prob[j]
		}
	}
	return p / n
}

// cdfSampler is the pre-alias prefix-sum sampler (O(log n) binary search
// per pick). It is retained as the reference implementation: the package
// tests cross-check the alias table's edge-frequency distribution against
// it on identical weight vectors.
type cdfSampler struct {
	cum   []float64
	total float64
}

func newCDFSampler(rates []float64) *cdfSampler {
	c := &cdfSampler{cum: make([]float64, len(rates))}
	acc := 0.0
	for i, rate := range rates {
		acc += rate
		c.cum[i] = acc
	}
	c.total = acc
	return c
}

func (c *cdfSampler) pick(r *rng.RNG) int32 {
	target := r.Float64() * c.total
	idx := sort.SearchFloat64s(c.cum, target)
	if idx >= len(c.cum) {
		idx = len(c.cum) - 1
	}
	return int32(idx)
}

// heapScheduler keeps one exponential timer per edge in a 4-ary min-heap —
// the paper's model verbatim. After an edge fires, its next tick is
// resampled, exploiting the memorylessness of the exponential distribution.
//
// The heap is 4-ary rather than binary: half the depth means half the
// cache lines touched per sift, and the four children of node i occupy one
// contiguous 64-byte run (heapEntry is 16 bytes), so the per-level scan is
// a single cache line. Tick times are continuous, so the minimum is unique
// with probability 1 and the popped event sequence — hence the RNG draw
// order — is identical to the binary heap's; the fused-versus-legacy
// bit-identity tests pin this.
type heapScheduler struct {
	r        *rng.RNG
	invRates []float64 // 1/rate per edge: resampling multiplies, never divides
	heap     []heapEntry
}

type heapEntry struct {
	at   float64
	edge graph.EdgeID
}

func newHeapScheduler(rates []float64, r *rng.RNG) *heapScheduler {
	s := &heapScheduler{r: r, invRates: make([]float64, len(rates)), heap: make([]heapEntry, 0, len(rates))}
	for e, rate := range rates {
		s.invRates[e] = 1 / rate
	}
	// Batched unit gaps, scaled per edge below.
	gaps := make([]float64, len(rates))
	r.FillExp(gaps, 1)
	for e := range rates {
		s.push(heapEntry{at: gaps[e] * s.invRates[e], edge: graph.EdgeID(e)})
	}
	return s
}

func (s *heapScheduler) next() (graph.EdgeID, float64) {
	top := s.heap[0]
	// Resample this edge's next tick and sift it down from the root.
	s.heap[0] = heapEntry{at: top.at + s.r.ExpUnit()*s.invRates[top.edge], edge: top.edge}
	s.siftDown(0)
	return top.edge, top.at
}

func (s *heapScheduler) push(e heapEntry) {
	s.heap = append(s.heap, e)
	i := len(s.heap) - 1
	// Hole insertion: slide parents down instead of swapping, one store
	// per level plus the final placement.
	for i > 0 {
		parent := (i - 1) / 4
		if s.heap[parent].at <= e.at {
			break
		}
		s.heap[i] = s.heap[parent]
		i = parent
	}
	s.heap[i] = e
}

// siftDown restores the 4-ary heap property from index i. The moving
// entry is held in a register and children slide up into the hole — one
// store per level instead of a three-store swap — and the four-child
// minimum scan is an unconditional four-way compare chain over one
// contiguous cache line, with the (rare) tail of the array handled by a
// separate partial scan.
func (s *heapScheduler) siftDown(i int) {
	h := s.heap
	n := len(h)
	moving := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		minIdx := first
		minAt := h[first].at
		if first+4 <= n {
			// Full fan-out: all four children exist.
			if h[first+1].at < minAt {
				minIdx, minAt = first+1, h[first+1].at
			}
			if h[first+2].at < minAt {
				minIdx, minAt = first+2, h[first+2].at
			}
			if h[first+3].at < minAt {
				minIdx, minAt = first+3, h[first+3].at
			}
		} else {
			for c := first + 1; c < n; c++ {
				if h[c].at < minAt {
					minIdx, minAt = c, h[c].at
				}
			}
		}
		if minAt >= moving.at {
			break
		}
		h[i] = h[minIdx]
		i = minIdx
	}
	h[i] = moving
}
