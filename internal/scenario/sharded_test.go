package scenario

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestResolveSharded covers the Stop.Shards routing: implicit families
// resolve onto the sharded path with the same node count, defaults and
// init vector as the materialised path, and unsupported combinations are
// rejected with a useful error.
func TestResolveSharded(t *testing.T) {
	for _, fam := range []string{"dumbbell", "ringofcliques", "hierdumbbell", "grid", "torus"} {
		spec := Spec{Graph: GraphSpec{Family: fam, N: 48}, Stop: StopSpec{Shards: 4, Trials: 2}}
		res, err := spec.Resolve()
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if res.Implicit == nil || res.Graph != nil {
			t.Fatalf("%s: sharded resolve did not populate Implicit", fam)
		}
		if res.NumNodes() != res.Implicit.NumNodes() || len(res.X0) != res.NumNodes() {
			t.Fatalf("%s: node accounting mismatch", fam)
		}
		// The materialised resolve of the same spec must agree on shape
		// and initial vector (both paths derive the same streams).
		plain := spec
		plain.Stop.Shards = 0
		pres, err := plain.Resolve()
		if err != nil {
			t.Fatalf("%s plain: %v", fam, err)
		}
		if pres.Graph.NumNodes() != res.NumNodes() {
			t.Fatalf("%s: sharded n=%d, materialised n=%d", fam, res.NumNodes(), pres.Graph.NumNodes())
		}
		if fam != "grid" && fam != "torus" {
			// Partitioned families: worst-case init identical on both paths.
			if !reflect.DeepEqual(pres.X0, res.X0) {
				t.Fatalf("%s: init vector differs between paths", fam)
			}
		}
	}

	bad := []Spec{
		{Graph: GraphSpec{Family: "complete", N: 16}, Stop: StopSpec{Shards: 2}},
		{Graph: GraphSpec{Family: "dumbbell", N: 16}, Algo: AlgoSpec{Name: "A"}, Stop: StopSpec{Shards: 2}},
		{Graph: GraphSpec{Family: "dumbbell", N: 16}, Rates: "nodeclock", Stop: StopSpec{Shards: 2}},
	}
	for i, spec := range bad {
		if _, err := spec.Resolve(); err == nil {
			t.Errorf("bad spec %d: expected error", i)
		}
	}
}

// TestShardedEstimateMatchesOracleScale runs the full scenario pipeline
// on both paths for the same spec/seed: the sharded Tav must land within
// a factor of the batched oracle's (distribution-level agreement is
// pinned by the avgtime KS tests; this is the wiring check).
func TestShardedEstimateMatchesOracleScale(t *testing.T) {
	base := Spec{
		Graph: GraphSpec{Family: "dumbbell", N: 32, Cut: 1},
		Stop:  StopSpec{Trials: 7},
		Seed:  5,
	}
	sharded := base
	sharded.Stop.Shards = 4
	sharded.Stop.Window = 0.25
	sres, err := sharded.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	sr, err := sres.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	ores, err := base.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	or, err := ores.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if sr.Censored != 0 || or.Censored != 0 {
		t.Fatalf("unexpected censoring: sharded %d, oracle %d", sr.Censored, or.Censored)
	}
	if ratio := sr.Tav / or.Tav; math.IsNaN(ratio) || ratio < 1/2.5 || ratio > 2.5 {
		t.Fatalf("sharded Tav %v vs oracle %v (ratio %.2f) outside tolerance", sr.Tav, or.Tav, sr.Tav/or.Tav)
	}
	// Shard count is wall-clock only: the estimate is byte-identical.
	again := sharded
	again.Stop.Shards = 1
	ares, err := again.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	ar, err := ares.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sr, ar) {
		t.Fatalf("shards=4 and shards=1 estimates differ:\n%+v\nvs\n%+v", sr, ar)
	}
}

// TestShardedLabel pins the shards marker in cell labels.
func TestShardedLabel(t *testing.T) {
	s := Spec{Graph: GraphSpec{Family: "dumbbell", N: 64, Cut: 2}, Algo: AlgoSpec{Name: "vanilla"},
		Stop: StopSpec{Shards: 8}}
	if l := s.Label(); !strings.Contains(l, "/shards=8") {
		t.Fatalf("label %q missing shards marker", l)
	}
}
