package dist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"sparsecut/internal/graph"
)

// wire.go: the compact binary codec for Message on the TCP transport.
//
// gob spends ~10x the bytes and far more CPU than the protocol needs: every
// gob stream re-transmits type metadata, and every Encode walks reflection.
// The binary codec instead writes one length-prefixed frame per message:
//
//	uvarint  frame length (bytes following the prefix)
//	byte     Kind
//	byte     Re
//	varint   From   (zigzag)
//	varint   To     (zigzag)
//	varint   Via    (zigzag)
//	varint   Edge   (zigzag)
//	uvarint  Epoch
//	uvarint  Seq
//	8 bytes  X      (IEEE 754 bits, little endian)
//
// Typical protocol frames are 15–25 bytes versus gob's ~90. The codec is
// structural only: it round-trips ANY Message value, including ones the
// protocol would never produce (negative addresses, unknown kinds) —
// semantic validation belongs to Machine.Deliver, and a codec that rejects
// nothing but malformed bytes is the property the fuzzer can pin down.
//
// Codec negotiation is per connection: the dialer's first byte is a version
// byte — wireVersionBinary for this codec, wireVersionGob for the legacy
// gob stream — and the accepting side switches decoders on it. See tcp.go.

// WireCodec selects the on-the-wire encoding of a TCP transport.
type WireCodec uint8

const (
	// WireBinary is the compact length-prefixed binary codec (default).
	WireBinary WireCodec = iota
	// WireGob is the legacy encoding/gob stream, kept so old and new
	// processes can interoperate during a rolling upgrade: a binary-codec
	// process accepts gob connections (and vice versa) because the
	// version byte is negotiated per accepted connection.
	WireGob
)

// String names the codec.
func (c WireCodec) String() string {
	switch c {
	case WireBinary:
		return "binary"
	case WireGob:
		return "gob"
	default:
		return fmt.Sprintf("codec(%d)", uint8(c))
	}
}

// Connection version bytes. 'S' and 'G' are printable and outside gob's
// plausible first bytes (a gob stream opens with a small type-descriptor
// length), so a stray legacy dialer that skips the version byte fails fast
// rather than decoding garbage.
const (
	wireVersionBinary = 'S'
	wireVersionGob    = 'G'
)

// maxWireFrame bounds a frame's declared payload length. The largest
// encodable Message is well under 100 bytes; anything bigger is garbage
// and is rejected before any allocation happens.
const maxWireFrame = 128

var (
	errFrameTooBig = errors.New("dist: wire frame exceeds maximum size")
	errFrameShort  = errors.New("dist: wire frame truncated")
	errFrameLong   = errors.New("dist: wire frame has trailing bytes")
)

// appendMessage appends m's frame (length prefix included) to buf and
// returns the extended slice.
func appendMessage(buf []byte, m Message) []byte {
	var body [maxWireFrame]byte
	n := 0
	body[n] = byte(m.Kind)
	n++
	body[n] = byte(m.Re)
	n++
	n += binary.PutVarint(body[n:], int64(m.From))
	n += binary.PutVarint(body[n:], int64(m.To))
	n += binary.PutVarint(body[n:], int64(m.Via))
	n += binary.PutVarint(body[n:], int64(m.Edge))
	n += binary.PutUvarint(body[n:], m.Epoch)
	n += binary.PutUvarint(body[n:], m.Seq)
	binary.LittleEndian.PutUint64(body[n:], math.Float64bits(m.X))
	n += 8
	buf = binary.AppendUvarint(buf, uint64(n))
	return append(buf, body[:n]...)
}

// decodeFrame decodes one frame body (the bytes after the length prefix).
// Every byte must be consumed: truncated or over-long bodies are rejected.
func decodeFrame(body []byte) (Message, error) {
	var m Message
	if len(body) < 2 {
		return m, errFrameShort
	}
	m.Kind = MsgKind(body[0])
	m.Re = MsgKind(body[1])
	p := body[2:]
	readVarint := func() (int64, error) {
		v, n := binary.Varint(p)
		if n <= 0 {
			return 0, errFrameShort
		}
		p = p[n:]
		return v, nil
	}
	readUvarint := func() (uint64, error) {
		v, n := binary.Uvarint(p)
		if n <= 0 {
			return 0, errFrameShort
		}
		p = p[n:]
		return v, nil
	}
	from, err := readVarint()
	if err != nil {
		return m, err
	}
	to, err := readVarint()
	if err != nil {
		return m, err
	}
	via, err := readVarint()
	if err != nil {
		return m, err
	}
	edge, err := readVarint()
	if err != nil {
		return m, err
	}
	if m.Epoch, err = readUvarint(); err != nil {
		return m, err
	}
	if m.Seq, err = readUvarint(); err != nil {
		return m, err
	}
	if len(p) < 8 {
		return m, errFrameShort
	}
	m.X = math.Float64frombits(binary.LittleEndian.Uint64(p))
	p = p[8:]
	if len(p) != 0 {
		return m, errFrameLong
	}
	m.From = int(from)
	m.To = int(to)
	m.Via = int(via)
	m.Edge = graph.EdgeID(edge)
	// int shrinks on 32-bit platforms and Edge always shrinks; reject
	// frames whose values do not survive the narrowing instead of
	// silently aliasing them.
	if int64(m.From) != from || int64(m.To) != to || int64(m.Via) != via || int64(m.Edge) != edge {
		return m, errors.New("dist: wire frame field overflows platform int")
	}
	return m, nil
}

// decodeMessage decodes the first complete frame in buf, returning the
// message and the total bytes consumed (prefix + body).
func decodeMessage(buf []byte) (Message, int, error) {
	size, n := binary.Uvarint(buf)
	if n <= 0 {
		return Message{}, 0, errFrameShort
	}
	if size > maxWireFrame {
		return Message{}, 0, errFrameTooBig
	}
	if uint64(len(buf)-n) < size {
		return Message{}, 0, errFrameShort
	}
	m, err := decodeFrame(buf[n : n+int(size)])
	if err != nil {
		return Message{}, 0, err
	}
	return m, n + int(size), nil
}

// wireReader decodes a stream of frames from r (the per-connection reader
// loop on the accepting side of a TCP transport).
type wireReader struct {
	r   io.Reader
	buf [maxWireFrame]byte
	one [1]byte
}

func newWireReader(r io.Reader) *wireReader { return &wireReader{r: r} }

// readMessage reads exactly one frame. io.EOF on a clean frame boundary is
// returned as-is; a stream that ends mid-frame yields ErrUnexpectedEOF.
func (w *wireReader) readMessage() (Message, error) {
	size, err := w.readUvarint(true)
	if err != nil {
		return Message{}, err
	}
	if size > maxWireFrame {
		return Message{}, errFrameTooBig
	}
	body := w.buf[:size]
	if _, err := io.ReadFull(w.r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Message{}, err
	}
	return decodeFrame(body)
}

// readUvarint reads a varint byte-by-byte so that no bytes of the next
// frame are buffered past it. atBoundary makes EOF on the FIRST byte clean.
func (w *wireReader) readUvarint(atBoundary bool) (uint64, error) {
	var v uint64
	for shift := 0; shift < 64; shift += 7 {
		if _, err := io.ReadFull(w.r, w.one[:]); err != nil {
			if err == io.EOF && !(atBoundary && shift == 0) {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		b := w.one[0]
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, nil
		}
	}
	return 0, errors.New("dist: wire length prefix overflows uvarint")
}
