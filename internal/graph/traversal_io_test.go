package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestBFSDistancesPath(t *testing.T) {
	g := Path(5)
	d := BFSDistances(g, 0)
	for i, want := range []int{0, 1, 2, 3, 4} {
		if d[i] != want {
			t.Errorf("dist[%d] = %d, want %d", i, d[i], want)
		}
	}
}

func TestBFSDistancesUnreachable(t *testing.T) {
	g := NewBuilder(4).AddEdge(0, 1).AddEdge(2, 3).MustBuild()
	d := BFSDistances(g, 0)
	if d[2] != -1 || d[3] != -1 {
		t.Error("unreachable nodes should have distance -1")
	}
}

func TestIsConnected(t *testing.T) {
	if !IsConnected(Complete(5)) {
		t.Error("K_5 reported disconnected")
	}
	if IsConnected(NewBuilder(3).AddEdge(0, 1).MustBuild()) {
		t.Error("disconnected graph reported connected")
	}
	var empty Graph
	if IsConnected(&empty) {
		t.Error("empty graph reported connected")
	}
	single := NewBuilder(1).MustBuild()
	if !IsConnected(single) {
		t.Error("single node reported disconnected")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := NewBuilder(6).AddEdge(0, 1).AddEdge(1, 2).AddEdge(3, 4).MustBuild()
	labels, count := ConnectedComponents(g)
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("first component mislabelled")
	}
	if labels[3] != labels[4] || labels[3] == labels[0] {
		t.Error("second component mislabelled")
	}
	if labels[5] == labels[0] || labels[5] == labels[3] {
		t.Error("isolated node shares a label with a non-trivial component")
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	g := Path(4)
	ecc, ok := Eccentricity(g, 1)
	if !ok || ecc != 2 {
		t.Errorf("ecc(1) = %d,%v, want 2,true", ecc, ok)
	}
	if d := Diameter(g); d != 3 {
		t.Errorf("diameter %d", d)
	}
	if d := Diameter(NewBuilder(2).MustBuild()); d != -1 {
		t.Errorf("disconnected diameter = %d, want -1", d)
	}
	var empty Graph
	if d := Diameter(&empty); d != -1 {
		t.Errorf("empty diameter = %d, want -1", d)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g1, _, err := Dumbbell(4, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g1); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g1.NumNodes() || g2.NumEdges() != g1.NumEdges() {
		t.Fatalf("round trip changed size: %s -> %s", g1, g2)
	}
	if g2.Name() != g1.Name() {
		t.Errorf("name %q -> %q", g1.Name(), g2.Name())
	}
	for i := 0; i < g1.NumEdges(); i++ {
		if g1.Edge(EdgeID(i)) != g2.Edge(EdgeID(i)) {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"no header":        "0 1\n",
		"empty":            "",
		"bad count":        "nodes x\n",
		"bad edge":         "nodes 2\n0 a\n",
		"short edge":       "nodes 2\n0\n",
		"duplicate header": "nodes 2\nnodes 2\n",
		"out of range":     "nodes 2\n0 5\n",
		"self loop":        "nodes 2\n1 1\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
				t.Errorf("input %q parsed without error", in)
			}
		})
	}
}

func TestReadEdgeListSkipsBlanksAndComments(t *testing.T) {
	in := "# a comment\n\nnodes 3\n# another\n0 1\n\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Errorf("parsed %s", g)
	}
}

func TestWriteDOT(t *testing.T) {
	g, p, err := Dumbbell(3, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "graph") || !strings.Contains(out, "--") {
		t.Errorf("missing DOT structure:\n%s", out)
	}
	if !strings.Contains(out, "color=red") {
		t.Error("cut edge not highlighted")
	}
	if !strings.Contains(out, "lightblue") || !strings.Contains(out, "lightsalmon") {
		t.Error("sides not coloured")
	}
}

func TestWriteDOTNoPartition(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDOT(&buf, Grid(2, 2), nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "color=red") {
		t.Error("unexpected cut highlighting without partition")
	}
	if !strings.Contains(buf.String(), "pos=") {
		t.Error("grid positions not exported")
	}
}
