package sim

import (
	"math"
	"testing"

	"sparsecut/internal/gossip"
	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
)

func batchFixture(t *testing.T) (*graph.Graph, []float64) {
	t.Helper()
	g, part, err := graph.Dumbbell(12, 12, 2)
	if err != nil {
		t.Fatal(err)
	}
	return g, gossip.CutIndicator(part)
}

// replicaSeeds derives one stream seed per replica the way the avgtime
// estimator does: a fixed per-replica value independent of the batch
// grouping.
func replicaSeeds(n int) []uint64 {
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = uint64(1000 + 7*i)
	}
	return seeds
}

func streamsFor(seeds []uint64) []*rng.RNG {
	streams := make([]*rng.RNG, len(seeds))
	for i, s := range seeds {
		streams[i] = rng.New(s)
	}
	return streams
}

// A replica's untracked trajectory must be byte-identical whether it runs
// alone (R=1) or interleaved in a wide batch (R=8) — values, clock and
// event count.
func TestBatchEngineWidthDeterminism(t *testing.T) {
	g, x0 := batchFixture(t)
	seeds := replicaSeeds(8)
	const events = 5000

	wide, err := gossip.NewVanillaEnsemble(g, x0, len(seeds))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewBatchEngine(g, wide, streamsFor(seeds))
	if err != nil {
		t.Fatal(err)
	}
	eng.RunEvents(events)

	for rep, seed := range seeds {
		solo, err := gossip.NewVanillaEnsemble(g, x0, 1)
		if err != nil {
			t.Fatal(err)
		}
		soloEng, err := NewBatchEngine(g, solo, []*rng.RNG{rng.New(seed)})
		if err != nil {
			t.Fatal(err)
		}
		soloEng.RunEvents(events)
		a, b := make([]float64, g.NumNodes()), make([]float64, g.NumNodes())
		wide.CopyInto(rep, a)
		solo.CopyInto(0, b)
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("replica %d node %d: %v wide vs %v solo", rep, i, a[i], b[i])
			}
		}
		if eng.ReplicaNow(rep) != soloEng.ReplicaNow(0) {
			t.Errorf("replica %d clock: %v wide vs %v solo", rep, eng.ReplicaNow(rep), soloEng.ReplicaNow(0))
		}
		if eng.ReplicaEvents(rep) != soloEng.ReplicaEvents(0) {
			t.Errorf("replica %d events: %d wide vs %d solo", rep, eng.ReplicaEvents(rep), soloEng.ReplicaEvents(0))
		}
	}
}

// Same for the tracked loop: the per-replica TrackedResult (last
// exceedance time, censoring) must not depend on the batch width.
func TestBatchRunTrackedWidthDeterminism(t *testing.T) {
	g, x0 := batchFixture(t)
	seeds := replicaSeeds(6)
	probe, err := gossip.NewVanillaEnsemble(g, x0, 1)
	if err != nil {
		t.Fatal(err)
	}
	var0 := probe.ReplicaVariance(0)
	cfg := Tracked{
		ExceedLevel: var0 * math.Exp(-2),
		StopLevel:   var0 * math.Exp(-2),
		Quiet:       1,
		MaxTime:     1e5,
	}

	wide, err := gossip.NewVanillaEnsemble(g, x0, len(seeds))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewBatchEngine(g, wide, streamsFor(seeds))
	if err != nil {
		t.Fatal(err)
	}
	wideRes := eng.RunTracked(cfg)

	for rep, seed := range seeds {
		solo, err := gossip.NewVanillaEnsemble(g, x0, 1)
		if err != nil {
			t.Fatal(err)
		}
		soloEng, err := NewBatchEngine(g, solo, []*rng.RNG{rng.New(seed)})
		if err != nil {
			t.Fatal(err)
		}
		soloRes := soloEng.RunTracked(cfg)[0]
		if wideRes[rep] != soloRes {
			t.Errorf("replica %d: %+v wide vs %+v solo", rep, wideRes[rep], soloRes)
		}
		if wideRes[rep].LastExceed <= 0 {
			t.Errorf("replica %d: expected a positive last exceedance, got %v", rep, wideRes[rep].LastExceed)
		}
		if wideRes[rep].Censored {
			t.Errorf("replica %d: unexpectedly censored", rep)
		}
	}
}

// A tiny MaxTime must censor every replica; the horizon is honoured at
// chunk granularity.
func TestBatchRunTrackedCensors(t *testing.T) {
	g, x0 := batchFixture(t)
	ens, err := gossip.NewVanillaEnsemble(g, x0, 3)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewBatchEngine(g, ens, streamsFor(replicaSeeds(3)))
	if err != nil {
		t.Fatal(err)
	}
	var0 := ens.ReplicaVariance(0)
	res := eng.RunTracked(Tracked{
		ExceedLevel: var0 * math.Exp(-2),
		StopLevel:   var0 * 1e-12,
		Quiet:       1,
		MaxTime:     1e-3,
	})
	for rep, r := range res {
		if !r.Censored {
			t.Errorf("replica %d: expected censoring at MaxTime=1e-3", rep)
		}
	}
}

// Bridged clocks: after n events each replica's time is a Gamma(n) draw
// scaled by the mean gap, so the cross-replica average must match n/|E|
// within Monte-Carlo tolerance.
func TestBatchBridgedClockMean(t *testing.T) {
	g, x0 := batchFixture(t)
	const replicas, events = 32, 4096
	ens, err := gossip.NewVanillaEnsemble(g, x0, replicas)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewBatchEngine(g, ens, streamsFor(replicaSeeds(replicas)))
	if err != nil {
		t.Fatal(err)
	}
	eng.RunEvents(events)
	want := float64(events) / float64(g.NumEdges())
	mean := 0.0
	for rep := 0; rep < replicas; rep++ {
		mean += eng.ReplicaNow(rep)
	}
	mean /= replicas
	// Each replica clock has sd want/sqrt(events); the mean of 32 shrinks
	// it by another sqrt(32). Allow 5 sigma.
	tol := 5 * want / math.Sqrt(float64(events)*replicas)
	if math.Abs(mean-want) > tol {
		t.Errorf("mean replica clock %v, want %v ± %v", mean, want, tol)
	}
	if eng.Events() != int64(replicas*events) {
		t.Errorf("total events %d, want %d", eng.Events(), replicas*events)
	}
}

// countingKernel tallies edge picks — for verifying the heterogeneous
// (alias) pick path against the rate vector.
type countingKernel struct {
	replicas int
	counts   []int64
}

func (k *countingKernel) Replicas() int { return k.replicas }
func (k *countingKernel) TickChunk(_ int, edges []graph.EdgeID) {
	for _, e := range edges {
		k.counts[e]++
	}
}
func (k *countingKernel) TickChunkTracked(rep int, edges []graph.EdgeID, _ float64) (int, float64) {
	k.TickChunk(rep, edges)
	return -1, 0
}
func (k *countingKernel) ReplicaVariance(int) float64 { return 0 }

// Heterogeneous rates route picks through the shared alias table: edge
// frequencies must be proportional to the rates.
func TestBatchEngineHeterogeneousRates(t *testing.T) {
	g, _ := batchFixture(t)
	rates := make([]float64, g.NumEdges())
	r := rng.New(3)
	total := 0.0
	for i := range rates {
		rates[i] = 0.5 + 1.5*r.Float64()
		total += rates[i]
	}
	kern := &countingKernel{replicas: 4, counts: make([]int64, g.NumEdges())}
	eng, err := NewBatchEngine(g, kern, streamsFor(replicaSeeds(4)), WithBatchRates(rates))
	if err != nil {
		t.Fatal(err)
	}
	const events = 200000
	eng.RunEvents(events / 4)
	for e, rate := range rates {
		want := float64(events) * rate / total
		if sigma := math.Sqrt(want); math.Abs(float64(kern.counts[e])-want) > 6*sigma {
			t.Errorf("edge %d picked %d times, want ~%.0f", e, kern.counts[e], want)
		}
	}
}

func TestBatchEngineValidation(t *testing.T) {
	g, x0 := batchFixture(t)
	ens, err := gossip.NewVanillaEnsemble(g, x0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBatchEngine(g, nil, streamsFor(replicaSeeds(2))); err == nil {
		t.Error("nil kernel not rejected")
	}
	if _, err := NewBatchEngine(g, ens, streamsFor(replicaSeeds(3))); err == nil {
		t.Error("stream/replica count mismatch not rejected")
	}
	if _, err := NewBatchEngine(g, ens, []*rng.RNG{rng.New(1), nil}); err == nil {
		t.Error("nil stream not rejected")
	}
	if _, err := NewBatchEngine(g, ens, streamsFor(replicaSeeds(2)), WithBatchRates([]float64{1})); err == nil {
		t.Error("rate length mismatch not rejected")
	}
	bad := make([]float64, g.NumEdges())
	for i := range bad {
		bad[i] = 1
	}
	bad[3] = -2
	if _, err := NewBatchEngine(g, ens, streamsFor(replicaSeeds(2)), WithBatchRates(bad)); err == nil {
		t.Error("negative rate not rejected")
	}
}

// An installed observer must be telemetry-only: replica trajectories stay
// byte-identical, the meters it sees are monotone, and the final reading
// matches the engine's own accounting.
func TestBatchObserverInert(t *testing.T) {
	g, x0 := batchFixture(t)
	seeds := replicaSeeds(4)
	const events = 3000

	run := func(opts ...BatchOption) (*gossip.VanillaEnsemble, *BatchEngine) {
		kern, err := gossip.NewVanillaEnsemble(g, x0, len(seeds))
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewBatchEngine(g, kern, streamsFor(seeds), opts...)
		if err != nil {
			t.Fatal(err)
		}
		eng.RunEvents(events)
		return kern, eng
	}

	plain, plainEng := run()
	var got []BatchStats
	observed, obsEng := run(WithBatchObserver(func(st BatchStats) {
		got = append(got, st)
	}))

	for rep := range seeds {
		a, b := make([]float64, g.NumNodes()), make([]float64, g.NumNodes())
		plain.CopyInto(rep, a)
		observed.CopyInto(rep, b)
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("replica %d node %d diverged under observation: %v vs %v", rep, i, a[i], b[i])
			}
		}
		if plainEng.ReplicaNow(rep) != obsEng.ReplicaNow(rep) {
			t.Errorf("replica %d clock diverged under observation", rep)
		}
	}
	if len(got) == 0 {
		t.Fatal("observer never called")
	}
	for i := 1; i < len(got); i++ {
		if got[i].Events <= got[i-1].Events || got[i].Chunks <= got[i-1].Chunks {
			t.Errorf("meter not monotone: %+v then %+v", got[i-1], got[i])
		}
	}
	last := got[len(got)-1]
	if last.Events != obsEng.Events() || last.Chunks != obsEng.Chunks() {
		t.Errorf("final observation %+v != engine accounting (events %d, chunks %d)",
			last, obsEng.Events(), obsEng.Chunks())
	}
	for _, st := range got {
		if st.Active < 1 || st.Active > len(seeds) {
			t.Errorf("active count %d outside [1,%d]", st.Active, len(seeds))
		}
		if !(st.Now > 0) {
			t.Errorf("non-positive trailing time %v", st.Now)
		}
	}
}

// Same contract for the tracked loop, where occupancy decays as replicas
// hit their stop rule.
func TestBatchObserverInertTracked(t *testing.T) {
	g, x0 := batchFixture(t)
	seeds := replicaSeeds(4)
	probe, err := gossip.NewVanillaEnsemble(g, x0, 1)
	if err != nil {
		t.Fatal(err)
	}
	var0 := probe.ReplicaVariance(0)
	cfg := Tracked{
		ExceedLevel: var0 * math.Exp(-2),
		StopLevel:   var0 * math.Exp(-2),
		Quiet:       1,
		MaxTime:     1e5,
	}

	run := func(opts ...BatchOption) []TrackedResult {
		kern, err := gossip.NewVanillaEnsemble(g, x0, len(seeds))
		if err != nil {
			t.Fatal(err)
		}
		eng, err := NewBatchEngine(g, kern, streamsFor(seeds), opts...)
		if err != nil {
			t.Fatal(err)
		}
		return eng.RunTracked(cfg)
	}

	plain := run()
	calls := 0
	maxActive := 0
	observed := run(WithBatchObserver(func(st BatchStats) {
		calls++
		if st.Active > maxActive {
			maxActive = st.Active
		}
	}))
	for rep := range plain {
		if plain[rep] != observed[rep] {
			t.Errorf("replica %d tracked result diverged under observation: %+v vs %+v",
				rep, plain[rep], observed[rep])
		}
	}
	if calls == 0 {
		t.Fatal("observer never called")
	}
	if maxActive != len(seeds) {
		t.Errorf("peak occupancy %d, want %d", maxActive, len(seeds))
	}
}
