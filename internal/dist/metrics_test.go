package dist

import (
	"context"
	"math"
	"testing"
	"time"

	"sparsecut/internal/metrics"
	"sparsecut/internal/rng"
)

// TestInstrumentedLossyRun is the telemetry acceptance check: a cluster on
// a lossy, delayed transport with ClusterConfig.Metrics set must export
// nonzero exchange, abort, message and transport-loss counters, a
// populated latency histogram, and convergence gauges consistent with the
// cluster's own accessors — while preserving the sum invariant exactly as
// the uninstrumented runtime does. Run under -race this also proves the
// node goroutines and the snapshot reader do not race on the telemetry
// plane.
func TestInstrumentedLossyRun(t *testing.T) {
	g, part, x0 := dumbbellCase(t)
	rule, err := NewSparseCutRule(part, part.CutEdges()[0], 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	delay, err := NewDelayTransport(NewChanTransport(8*g.NumNodes()), 2*time.Millisecond, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewDropTransport(delay, 0.2, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	cl, err := NewCluster(g, x0, rule, ClusterConfig{
		TimeScale: 8 * time.Millisecond, Seed: 1, Transport: tr,
		LockTimeout: 20 * time.Millisecond,
		Metrics:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Snapshot concurrently with the run — the live-monitoring use case.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-done:
				return
			default:
				_ = reg.Snapshot()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	// How contended the lock protocol gets is decided by wall-clock
	// scheduling, so one leg occasionally quiesces with aborts only. Run is
	// resumable: keep adding legs (bounded) until an exchange commits and
	// the transport has exercised both loss modes.
	var runErr error
	for leg := 0; leg < 10; leg++ {
		if runErr = cl.Run(context.Background(), 10); runErr != nil {
			break
		}
		if cl.Exchanges() > 0 && tr.Dropped() > 0 && delay.Delayed() > 0 {
			break
		}
	}
	done <- struct{}{}
	<-done
	if runErr != nil {
		t.Fatal(runErr)
	}

	snap := reg.Snapshot()
	for _, name := range []string{
		"dist.exchange.proposed",
		"dist.exchange.committed",
		"dist.exchange.aborted",
		"dist.msg.sent.lock",
		"dist.msg.sent.propose",
		"dist.msg.sent.commit",
		"dist.transport.dropped",
		"dist.transport.delayed",
	} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %q is zero after a lossy run (snapshot: %+v)", name, snap.Counters)
		}
	}
	if got, want := snap.Counters["dist.exchange.committed"], cl.Exchanges(); got != want {
		t.Errorf("committed counter %d != Exchanges() %d", got, want)
	}
	if got, want := snap.Counters["dist.exchange.aborted"], cl.Aborted(); got != want {
		t.Errorf("aborted counter %d != Aborted() %d", got, want)
	}
	// Initiations split exactly into commits and aborts at quiescence.
	if p, c, a := snap.Counters["dist.exchange.proposed"], snap.Counters["dist.exchange.committed"], snap.Counters["dist.exchange.aborted"]; p != c+a {
		t.Errorf("proposed %d != committed %d + aborted %d", p, c, a)
	}
	// The designated edge is one of ~30 and its LOCKs face drops, delays
	// and busy responders, so a short run may legitimately consume zero
	// epoch ticks — the telemetry contract is equality with the rule's own
	// counter, whatever the count.
	if got, want := snap.Counters["dist.rule.ticks"], rule.Ticks(); got != want {
		t.Errorf("rule tick counter %d != Ticks() %d", got, want)
	}
	lat := snap.Histograms["dist.exchange.latency_ns"]
	if lat.Count != snap.Counters["dist.exchange.committed"] {
		t.Errorf("latency histogram has %d samples, want one per committed exchange (%d)",
			lat.Count, snap.Counters["dist.exchange.committed"])
	}
	if lat.Count > 0 && lat.Sum <= 0 {
		t.Error("latency histogram sum not positive")
	}

	// The live gauges must agree with the cluster's own post-run view.
	if got, want := snap.Gauges["dist.progress.mean"], cl.Mean(); math.Abs(got-want) > 1e-12 {
		t.Errorf("live mean gauge %v != Mean() %v", got, want)
	}
	ratio := snap.Gauges["dist.progress.var_ratio"]
	if ratio < 0 || ratio != ratio {
		t.Errorf("var_ratio gauge %v invalid", ratio)
	}
	// Telemetry must not perturb the protocol's sum invariant.
	if drift := math.Abs(sum(cl.Values()) - sum(x0)); drift > 1e-9 {
		t.Errorf("sum drifted by %g with telemetry enabled", drift)
	}
}

// TestConservationUnderCrashes is the ledger check with fail-stop faults in
// the mix: with a crash schedule injected, every initiation must still be
// accounted for at quiescence — proposed == committed + aborted — because
// the drain force-recovers downed nodes and settles every in-flight
// exchange (a crashed initiator's outstanding proposal counts as an
// abort). The value sum stays exact for the same reason.
func TestConservationUnderCrashes(t *testing.T) {
	g, _, x0 := dumbbellCase(t)
	reg := metrics.NewRegistry()
	cl, err := NewCluster(g, x0, NewVanillaRule(), ClusterConfig{
		TimeScale: 4 * time.Millisecond, Seed: 11, Metrics: reg,
		Crashes: []CrashEvent{
			{Node: 0, At: 1, Recover: 3},
			{Node: 7, At: 2, Recover: 5},
			{Node: 3, At: 4}, // down until the drain force-recovers it
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(context.Background(), 8); err != nil {
		t.Fatal(err)
	}
	if cl.Crashes() != 3 {
		t.Fatalf("crash schedule fired %d times, want 3", cl.Crashes())
	}
	if cl.Exchanges() == 0 {
		t.Fatal("no exchanges committed around the crashes")
	}
	snap := reg.Snapshot()
	if snap.Counters["dist.node.crashes"] != 3 {
		t.Errorf("crash counter %d, want 3", snap.Counters["dist.node.crashes"])
	}
	p := snap.Counters["dist.exchange.proposed"]
	c := snap.Counters["dist.exchange.committed"]
	a := snap.Counters["dist.exchange.aborted"]
	if p != c+a {
		t.Errorf("ledger broken under crashes: proposed %d != committed %d + aborted %d", p, c, a)
	}
	if p == 0 {
		t.Error("no initiations proposed")
	}
	if drift := math.Abs(sum(cl.Values()) - sum(x0)); drift > 1e-9 {
		t.Errorf("sum drifted by %g across a crash-faulted run", drift)
	}
}

// TestInstrumentedTCPBytes checks the TCP transport's wire-byte counters
// flow into the registry.
func TestInstrumentedTCPBytes(t *testing.T) {
	g, _, x0 := dumbbellCase(t)
	tr, err := NewTCPTransport(g.NumNodes())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	reg := metrics.NewRegistry()
	cl, err := NewCluster(g, x0, NewVanillaRule(), ClusterConfig{
		TimeScale: 4 * time.Millisecond, Seed: 1, Transport: tr, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(context.Background(), 5); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["dist.transport.tcp_bytes_out"] == 0 {
		t.Error("no outbound TCP bytes counted")
	}
	if snap.Counters["dist.transport.tcp_bytes_in"] == 0 {
		t.Error("no inbound TCP bytes counted")
	}
	if cl.Exchanges() == 0 {
		t.Error("no exchanges committed over TCP")
	}
}

// TestDisabledMetricsIsNilSafe runs the uninstrumented path (the default)
// and asserts nothing is recorded and nothing panics — the hot-path hooks
// must degrade to no-ops.
func TestDisabledMetricsIsNilSafe(t *testing.T) {
	g, _, x0 := dumbbellCase(t)
	cl, err := NewCluster(g, x0, NewVanillaRule(), ClusterConfig{
		TimeScale: 2 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(context.Background(), 5); err != nil {
		t.Fatal(err)
	}
	if cl.Exchanges() == 0 {
		t.Error("no exchanges committed")
	}
	if cl.met.proposed != nil || cl.met.live != nil || cl.met.latency != nil {
		t.Error("telemetry plane populated without a registry")
	}
}
