package check

import (
	"encoding/json"
	"testing"

	"sparsecut/internal/dist"
	"sparsecut/internal/graph"
)

// fuzzSystem is the fixed system FuzzSchedule drives: the 3-node clique
// with the correct (unmutated) protocol and budgets looser than the
// exhaustive tests', so the fuzzer can reach schedule shapes the bounded
// DFS does not.
func fuzzSystem() (Spec, Options) {
	spec := Spec{Graph: graph.Complete(3), X0: []float64{1, 5, 0}, Rule: Vanilla()}
	opt := Options{
		MaxDepth:       64,
		MaxInitiations: 5,
		MaxDups:        3,
		MaxResends:     3,
		MaxCrashes:     3,
		Drops:          true,
		Dups:           true,
		Crashes:        true,
	}
	return spec, opt
}

// FuzzSchedule fuzzes the schedule byte-string: byte i picks among the
// actions enabled at step i. Any invariant violation is a real protocol
// bug (no mutation is seeded here — this target found nothing only after
// the two seed bugs MutNackRoleConfusion and MutLaxWatermarkDedup were
// fixed). The committed corpus under testdata/fuzz/FuzzSchedule is the
// mutation counterexamples of TestMutationsCaught re-encoded by
// EncodeSchedule — counterexample traces double as fuzz seeds.
func FuzzSchedule(f *testing.F) {
	spec, opt := fuzzSystem()
	// A plain committed exchange and a NACK/timeout path, as inline seeds.
	f.Add([]byte{0, 0, 0, 0, 0, 0})
	f.Add([]byte{0, 1, 2, 0, 1, 0, 0, 0, 1, 2})
	f.Fuzz(func(t *testing.T, schedule []byte) {
		if len(schedule) > 96 {
			schedule = schedule[:96]
		}
		actions, v, err := RunSchedule(spec, opt, schedule)
		if err != nil {
			t.Fatalf("schedule did not run: %v", err)
		}
		if v != nil {
			tr := newTrace(spec, opt, actions, v)
			b, _ := json.MarshalIndent(tr, "", "  ")
			t.Fatalf("invariant violation in the correct protocol: %v\ncounterexample trace:\n%s", v, b)
		}
	})
}

// TestFuzzSeedsFromCounterexamples regenerates the committed seed corpus'
// content in-process: every mutation counterexample, re-encoded under the
// fuzz target's own options, must drive the fuzz system cleanly (the bug
// needs its mutation) while steering it down the once-buggy path. This
// keeps the committed corpus honest without checking generated files in
// tests.
func TestFuzzSeedsFromCounterexamples(t *testing.T) {
	fspec, fopt := fuzzSystem()
	for _, mu := range []dist.Mutation{
		dist.MutNackRollbackApplies,
		dist.MutStaleProposalApply,
		dist.MutCommitIgnoresSeq,
		dist.MutNackRoleConfusion,
		dist.MutLaxWatermarkDedup,
	} {
		spec := triangleSpec()
		opt := faultOptions(12)
		opt.Mutation = mu
		res, err := Exhaustive(spec, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Counterexample == nil {
			t.Fatalf("mutation %s produced no counterexample", mu)
		}
		// Re-encode the counterexample's schedule under the fuzz target's
		// options (the seed-corpus encoding).
		sched, err := EncodeSchedule(fspec, fopt, res.Counterexample.Actions)
		if err != nil {
			t.Fatalf("%s: counterexample does not encode under fuzz options: %v", mu, err)
		}
		if _, v, err := RunSchedule(fspec, fopt, sched); err != nil || v != nil {
			t.Fatalf("%s: seed schedule must be clean on the correct protocol, got v=%v err=%v", mu, v, err)
		}
	}
}
