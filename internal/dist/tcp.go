package dist

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"sparsecut/internal/flight"
)

// TCPTransport carries protocol messages over loopback TCP: one listener
// per address, length-prefixed binary frames (wire.go) on persistent
// connections. It exists so the runtime can be exercised over a real socket
// stack (examples/cluster -tcp) rather than only over in-process channels;
// it is not a wide-area-network transport.
//
// Each outbound connection opens with a version byte, and the accepting
// side picks its decoder per connection from that byte, so binary-codec and
// legacy gob-codec processes interoperate: the codec choice only governs
// what this transport's own dials speak.
type TCPTransport struct {
	codec     WireCodec
	listeners []net.Listener
	ports     []int
	boxes     []chan Message

	mu       sync.Mutex
	outbound map[int]*tcpConn      // dial-side connections, by destination
	inbound  map[net.Conn]struct{} // accept-side connections, for Close
	closed   bool
	closedC  chan struct{}
	wg       sync.WaitGroup

	congested atomic.Int64
	bytesOut  atomic.Int64
	bytesIn   atomic.Int64
	rec       atomic.Pointer[flight.Recorder]
}

// countWriter and countReader tally wire bytes as the gob streams move
// through them, so telemetry sees real serialized volume, not Message
// struct sizes.
type countWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n.Add(int64(n))
	return n, err
}

type countReader struct {
	r io.Reader
	n *atomic.Int64
}

func (cr *countReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n.Add(int64(n))
	return n, err
}

type tcpConn struct {
	mu  sync.Mutex
	c   net.Conn
	w   io.Writer    // byte-counted connection writer
	enc *gob.Encoder // WireGob only
	buf []byte       // WireBinary frame scratch, reused under mu
}

var _ Transport = (*TCPTransport)(nil)

// NewTCPTransport opens addrs loopback listeners on ephemeral ports, one
// per address 0..addrs-1, and returns a transport routing Send(m) to the
// listener of its mailbox address over a cached connection. Outbound
// connections speak the binary codec; use NewTCPTransportCodec for gob.
func NewTCPTransport(addrs int) (*TCPTransport, error) {
	return NewTCPTransportCodec(addrs, WireBinary)
}

// NewTCPTransportCodec is NewTCPTransport with an explicit outbound wire
// codec (the accept side always auto-detects per connection).
func NewTCPTransportCodec(addrs int, codec WireCodec) (*TCPTransport, error) {
	if addrs <= 0 {
		return nil, fmt.Errorf("dist: TCP transport needs a positive address count, got %d", addrs)
	}
	if codec != WireBinary && codec != WireGob {
		return nil, fmt.Errorf("dist: unknown wire codec %v", codec)
	}
	t := &TCPTransport{
		codec:     codec,
		listeners: make([]net.Listener, addrs),
		ports:     make([]int, addrs),
		boxes:     make([]chan Message, addrs),
		outbound:  make(map[int]*tcpConn),
		inbound:   make(map[net.Conn]struct{}),
		closedC:   make(chan struct{}),
	}
	for i := 0; i < addrs; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			_ = t.Close()
			return nil, fmt.Errorf("dist: listening for address %d: %w", i, err)
		}
		t.listeners[i] = ln
		t.ports[i] = ln.Addr().(*net.TCPAddr).Port
		t.boxes[i] = make(chan Message, 256)
		t.wg.Add(1)
		go t.accept(i, ln)
	}
	return t, nil
}

func (t *TCPTransport) accept(addr int, ln net.Listener) {
	defer t.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			_ = c.Close()
			return
		}
		t.inbound[c] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.serve(addr, c)
	}
}

func (t *TCPTransport) serve(addr int, c net.Conn) {
	defer t.wg.Done()
	defer func() {
		t.mu.Lock()
		delete(t.inbound, c)
		t.mu.Unlock()
		_ = c.Close()
	}()
	cr := &countReader{r: c, n: &t.bytesIn}
	// The dialer's first byte picks this connection's decoder; an unknown
	// version byte (including a legacy peer that skips it) kills the
	// connection rather than guessing at the stream format.
	var version [1]byte
	if _, err := io.ReadFull(cr, version[:]); err != nil {
		return
	}
	var next func() (Message, error)
	switch version[0] {
	case wireVersionBinary:
		wr := newWireReader(cr)
		next = wr.readMessage
	case wireVersionGob:
		dec := gob.NewDecoder(cr)
		next = func() (Message, error) {
			var m Message
			err := dec.Decode(&m)
			return m, err
		}
	default:
		return
	}
	for {
		m, err := next()
		if err != nil {
			return
		}
		select {
		case <-t.closedC:
			return
		default:
		}
		select {
		case t.boxes[addr] <- m:
		default:
			// Full mailbox: congestion loss, like ChanTransport — the
			// reader must not stall the whole connection behind one
			// saturated destination.
			t.congested.Add(1)
			recordNetDrop(t.rec.Load(), m, addr, flight.ReasonCongestion)
		}
	}
}

// Congested returns the number of messages dropped because the
// destination mailbox was full.
func (t *TCPTransport) Congested() int64 { return t.congested.Load() }

// BytesOut returns the total wire bytes written to outbound connections.
func (t *TCPTransport) BytesOut() int64 { return t.bytesOut.Load() }

// BytesIn returns the total bytes read off accepted connections.
func (t *TCPTransport) BytesIn() int64 { return t.bytesIn.Load() }

// Port returns the loopback port the given address listens on.
func (t *TCPTransport) Port(addr int) (int, error) {
	if addr < 0 || addr >= len(t.ports) {
		return 0, fmt.Errorf("dist: address %d outside [0,%d)", addr, len(t.ports))
	}
	return t.ports[addr], nil
}

func (t *TCPTransport) conn(to int) (*tcpConn, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if to < 0 || to >= len(t.ports) {
		t.mu.Unlock()
		return nil, fmt.Errorf("dist: address %d outside [0,%d)", to, len(t.ports))
	}
	if oc, ok := t.outbound[to]; ok {
		t.mu.Unlock()
		return oc, nil
	}
	t.mu.Unlock()

	// Dial outside the lock: holding it would serialize every Send in the
	// cluster behind each connection setup.
	c, err := net.Dial("tcp", fmt.Sprintf("127.0.0.1:%d", t.ports[to]))
	if err != nil {
		return nil, fmt.Errorf("dist: dialing address %d: %w", to, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		_ = c.Close()
		return nil, ErrClosed
	}
	if oc, ok := t.outbound[to]; ok {
		// Lost the race against a concurrent dial to the same address.
		_ = c.Close()
		return oc, nil
	}
	cw := &countWriter{w: c, n: &t.bytesOut}
	oc := &tcpConn{c: c, w: cw}
	// The version byte is the first thing on the wire; writing it here,
	// before the connection is published in t.outbound, means no Send can
	// race ahead of it.
	switch t.codec {
	case WireGob:
		if _, err := cw.Write([]byte{wireVersionGob}); err != nil {
			_ = c.Close()
			return nil, fmt.Errorf("dist: handshaking address %d: %w", to, err)
		}
		oc.enc = gob.NewEncoder(cw)
	default:
		if _, err := cw.Write([]byte{wireVersionBinary}); err != nil {
			_ = c.Close()
			return nil, fmt.Errorf("dist: handshaking address %d: %w", to, err)
		}
	}
	t.outbound[to] = oc
	return oc, nil
}

// Send implements Transport.
func (t *TCPTransport) Send(m Message) error {
	addr := mailboxAddr(m)
	oc, err := t.conn(addr)
	if err != nil {
		return err
	}
	oc.mu.Lock()
	if oc.enc != nil {
		err = oc.enc.Encode(m)
	} else {
		oc.buf = appendMessage(oc.buf[:0], m)
		_, err = oc.w.Write(oc.buf)
	}
	oc.mu.Unlock()
	if err != nil {
		// Drop the broken connection so a later Send re-dials.
		t.mu.Lock()
		if t.outbound[addr] == oc {
			delete(t.outbound, addr)
		}
		t.mu.Unlock()
		_ = oc.c.Close()
		if t.isClosed() {
			return ErrClosed
		}
		return fmt.Errorf("dist: sending to address %d: %w", addr, err)
	}
	return nil
}

// Recv implements Transport.
func (t *TCPTransport) Recv(addr int) (<-chan Message, error) {
	if addr < 0 || addr >= len(t.boxes) {
		return nil, fmt.Errorf("dist: address %d outside [0,%d)", addr, len(t.boxes))
	}
	return t.boxes[addr], nil
}

func (t *TCPTransport) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// Close implements Transport: it closes all listeners and connections and
// waits for the reader goroutines to exit.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.closedC)
	for _, ln := range t.listeners {
		if ln != nil {
			_ = ln.Close()
		}
	}
	for _, oc := range t.outbound {
		_ = oc.c.Close()
	}
	for c := range t.inbound {
		_ = c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}
