package flight

import (
	"fmt"
	"net/http"
	"strconv"
)

// Handler serves the recorder's live capture over HTTP (mounted at
// /debug/flightz next to the expvar handler). With no parameters it
// returns the JSON dump; ?view=spans|timeline|phases|aborts|critical
// switches to the text renderings, and ?node=, ?init=, ?seq=, ?outcome=
// filter the spans. ?format=binary returns the binary dump (for piping
// straight into tracez).
func Handler(rc *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := rc.Snapshot()
		q := r.URL.Query()
		if q.Get("format") == "binary" {
			w.Header().Set("Content-Type", "application/octet-stream")
			d.WriteBinary(w)
			return
		}
		view := q.Get("view")
		if view == "" {
			w.Header().Set("Content-Type", "application/json")
			d.WriteJSON(w)
			return
		}
		f := NewFilter()
		if s := q.Get("node"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				f.Node = v
			}
		}
		if s := q.Get("init"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				f.Init = v
			}
		}
		if s := q.Get("seq"); s != "" {
			if v, err := strconv.ParseUint(s, 10, 64); err == nil {
				f.Seq = v
			}
		}
		f.Outcome = q.Get("outcome")
		set := Stitch(d)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		switch view {
		case "spans":
			RenderSpans(w, set, f)
		case "timeline":
			RenderTimeline(w, set, f)
		case "phases":
			RenderPhases(w, set, f)
		case "aborts":
			RenderAborts(w, set, f)
		case "critical":
			RenderCritical(w, set, f)
		default:
			w.WriteHeader(http.StatusBadRequest)
			fmt.Fprintf(w, "unknown view %q (want spans|timeline|phases|aborts|critical)\n", view)
		}
	})
}
