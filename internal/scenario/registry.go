package scenario

import (
	"fmt"
	"sort"
	"strings"

	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
)

// Family is one registry entry: a named graph generator with its
// parameter conventions.
type Family struct {
	// Name is the canonical spelling used in specs and flags.
	Name string
	// Aliases are accepted alternative spellings.
	Aliases []string
	// Brief is a one-line description for CLI usage text.
	Brief string
	// Params summarises which GraphSpec fields the family reads.
	Params string
	// Partitioned reports whether Build returns a planted sparse-cut
	// partition (nil otherwise; consumers fall back to detection).
	Partitioned bool
	// Random reports whether Build consumes randomness.
	Random bool
	// Defaults fills family-specific GraphSpec defaults in place. The
	// family-independent defaults (N etc.) are already applied.
	Defaults func(*GraphSpec)
	// Build constructs the graph (and partition when Partitioned). The RNG
	// is only consumed by Random families.
	Build func(GraphSpec, *rng.RNG) (*graph.Graph, *graph.Partition, error)
	// Implicit, when non-nil, constructs the family's implicit (index-
	// arithmetic) representation for the sharded large-run engine. Same
	// parameter conventions as Build; deterministic families only.
	Implicit func(GraphSpec) (graph.Implicit, error)
}

// registry maps every name and alias to its family.
var registry = map[string]*Family{}
var families []*Family

func register(f Family) {
	fp := &f
	families = append(families, fp)
	for _, name := range append([]string{f.Name}, f.Aliases...) {
		key := strings.ToLower(name)
		if _, dup := registry[key]; dup {
			panic("scenario: duplicate family name " + key)
		}
		registry[key] = fp
	}
}

// Lookup finds a family by name or alias (case-insensitive).
func Lookup(name string) (*Family, bool) {
	f, ok := registry[strings.ToLower(strings.TrimSpace(name))]
	return f, ok
}

// Families returns the catalogue sorted by canonical name.
func Families() []Family {
	out := make([]Family, len(families))
	for i, f := range families {
		out[i] = *f
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FamilyNames returns the sorted canonical names, for usage strings.
func FamilyNames() []string {
	fams := Families()
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = f.Name
	}
	return names
}

// Usage renders a multi-line catalogue of families for CLI help output.
func Usage() string {
	var b strings.Builder
	for _, f := range Families() {
		fmt.Fprintf(&b, "  %-15s %s", f.Name, f.Brief)
		if f.Params != "" {
			fmt.Fprintf(&b, " (params: %s)", f.Params)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// sideSplit fills N1/N2 from N (and vice versa) for two-sided families.
func sideSplit(gs *GraphSpec) {
	if gs.N1 == 0 {
		gs.N1 = gs.N / 2
	}
	if gs.N2 == 0 {
		gs.N2 = gs.N - gs.N/2
	}
	if gs.N == 0 {
		gs.N = gs.N1 + gs.N2
	}
}

func init() {
	register(Family{
		Name: "dumbbell", Brief: "two cliques joined by a sparse cut (the paper's G')",
		Params: "n (or n1,n2), cut", Partitioned: true,
		Defaults: func(gs *GraphSpec) {
			sideSplit(gs)
			if gs.Cut == 0 {
				gs.Cut = 1
			}
		},
		Build: func(gs GraphSpec, _ *rng.RNG) (*graph.Graph, *graph.Partition, error) {
			return graph.Dumbbell(gs.N1, gs.N2, gs.Cut)
		},
		Implicit: func(gs GraphSpec) (graph.Implicit, error) {
			return graph.ImplicitDumbbell(gs.N1, gs.N2, gs.Cut)
		},
	})
	register(Family{
		Name: "planted", Aliases: []string{"planted-partition", "sbm"},
		Brief:  "two-community random graph with a sparse planted cut",
		Params: "n (or n1,n2), p_in, p_out", Partitioned: true, Random: true,
		Defaults: func(gs *GraphSpec) {
			sideSplit(gs)
			if gs.PIn == 0 {
				gs.PIn = 0.5
			}
			if gs.POut == 0 {
				// ~3 expected cut edges, matching the former gossipsim default.
				gs.POut = 3.0 / float64(gs.N1*gs.N2)
			}
		},
		Build: func(gs GraphSpec, r *rng.RNG) (*graph.Graph, *graph.Partition, error) {
			return graph.PlantedPartition(r, gs.N1, gs.N2, gs.PIn, gs.POut, 500)
		},
	})
	register(Family{
		Name: "sensor", Aliases: []string{"walled-rgg", "sensorfield"},
		Brief:  "walled random geometric graph with door edges",
		Params: "n, cut (doors), radius", Partitioned: true, Random: true,
		Defaults: func(gs *GraphSpec) {
			if gs.Cut == 0 {
				gs.Cut = 1
			}
			if gs.Radius == 0 {
				gs.Radius = 2
			}
		},
		Build: func(gs GraphSpec, r *rng.RNG) (*graph.Graph, *graph.Partition, error) {
			return graph.WalledRGG(r, gs.N, gs.Radius*graph.ConnectivityRadius(gs.N), gs.Cut, 500)
		},
	})
	register(Family{
		Name: "ringofcliques", Aliases: []string{"ring-of-cliques", "roc"},
		Brief:  "cycle of cliques, adjacent pairs joined by sparse bridges",
		Params: "n (or blocks), cut (bridges)", Partitioned: true,
		Defaults: func(gs *GraphSpec) {
			if gs.Blocks == 0 {
				gs.Blocks = 4
			}
			if gs.N == 0 {
				gs.N = 4 * gs.Blocks
			}
			if gs.Cut == 0 {
				gs.Cut = 1
			}
		},
		Build: func(gs GraphSpec, _ *rng.RNG) (*graph.Graph, *graph.Partition, error) {
			m := gs.N / gs.Blocks
			if m < 1 {
				return nil, nil, fmt.Errorf("scenario: ringofcliques n=%d too small for %d blocks", gs.N, gs.Blocks)
			}
			return graph.RingOfCliques(gs.Blocks, m, gs.Cut)
		},
		Implicit: func(gs GraphSpec) (graph.Implicit, error) {
			m := gs.N / gs.Blocks
			if m < 1 {
				return nil, fmt.Errorf("scenario: ringofcliques n=%d too small for %d blocks", gs.N, gs.Blocks)
			}
			return graph.ImplicitRingOfCliques(gs.Blocks, m, gs.Cut)
		},
	})
	register(Family{
		Name: "hierdumbbell", Aliases: []string{"hierarchical-dumbbell", "doubledumbbell"},
		Brief:  "dumbbell of dumbbells: nested inner and outer sparse cuts",
		Params: "n, cut (outer), inner_cut", Partitioned: true,
		Defaults: func(gs *GraphSpec) {
			if gs.Cut == 0 {
				gs.Cut = 1
			}
			if gs.InnerCut == 0 {
				gs.InnerCut = 1
			}
		},
		Build: func(gs GraphSpec, _ *rng.RNG) (*graph.Graph, *graph.Partition, error) {
			return graph.HierarchicalDumbbell(gs.N, gs.InnerCut, gs.Cut)
		},
		Implicit: func(gs GraphSpec) (graph.Implicit, error) {
			return graph.ImplicitHierarchicalDumbbell(gs.N, gs.InnerCut, gs.Cut)
		},
	})
	register(Family{
		Name: "complete", Aliases: []string{"clique"}, Brief: "complete graph K_n", Params: "n",
		Build: func(gs GraphSpec, _ *rng.RNG) (*graph.Graph, *graph.Partition, error) {
			return graph.Complete(gs.N), nil, nil
		},
	})
	register(Family{
		Name: "path", Brief: "path graph P_n", Params: "n",
		Build: func(gs GraphSpec, _ *rng.RNG) (*graph.Graph, *graph.Partition, error) {
			return graph.Path(gs.N), nil, nil
		},
	})
	register(Family{
		Name: "cycle", Aliases: []string{"ring"}, Brief: "cycle C_n", Params: "n",
		Build: func(gs GraphSpec, _ *rng.RNG) (*graph.Graph, *graph.Partition, error) {
			return graph.Cycle(gs.N), nil, nil
		},
	})
	register(Family{
		Name: "star", Brief: "star K_{1,n-1}", Params: "n",
		Build: func(gs GraphSpec, _ *rng.RNG) (*graph.Graph, *graph.Partition, error) {
			return graph.Star(gs.N), nil, nil
		},
	})
	register(Family{
		Name: "grid", Aliases: []string{"lattice"}, Brief: "2-D lattice", Params: "rows, cols (or n)",
		Defaults: func(gs *GraphSpec) {
			if gs.Rows == 0 {
				gs.Rows = derivedSquare(gs.N)
			}
			if gs.Cols == 0 {
				gs.Cols = gs.Rows
			}
			gs.N = gs.Rows * gs.Cols
		},
		Build: func(gs GraphSpec, _ *rng.RNG) (*graph.Graph, *graph.Partition, error) {
			return graph.Grid(gs.Rows, gs.Cols), nil, nil
		},
		Implicit: func(gs GraphSpec) (graph.Implicit, error) {
			return graph.ImplicitGrid(gs.Rows, gs.Cols)
		},
	})
	register(Family{
		Name: "torus", Brief: "2-D lattice with wraparound", Params: "rows, cols (or n)",
		Defaults: func(gs *GraphSpec) {
			if gs.Rows == 0 {
				gs.Rows = derivedSquare(gs.N)
			}
			if gs.Cols == 0 {
				gs.Cols = gs.Rows
			}
			gs.N = gs.Rows * gs.Cols
		},
		Build: func(gs GraphSpec, _ *rng.RNG) (*graph.Graph, *graph.Partition, error) {
			return graph.Torus(gs.Rows, gs.Cols), nil, nil
		},
		Implicit: func(gs GraphSpec) (graph.Implicit, error) {
			return graph.ImplicitTorus(gs.Rows, gs.Cols)
		},
	})
	register(Family{
		Name: "hypercube", Brief: "d-dimensional hypercube Q_d", Params: "dim (or n)",
		Defaults: func(gs *GraphSpec) {
			if gs.Dim == 0 {
				gs.Dim = derivedLog2(gs.N)
			}
			gs.N = 1 << uint(gs.Dim)
		},
		Build: func(gs GraphSpec, _ *rng.RNG) (*graph.Graph, *graph.Partition, error) {
			return graph.Hypercube(gs.Dim), nil, nil
		},
	})
	register(Family{
		Name: "bipartite", Aliases: []string{"complete-bipartite"},
		Brief: "complete bipartite K_{n1,n2}", Params: "n1, n2 (or n)",
		Defaults: func(gs *GraphSpec) { sideSplit(gs) },
		Build: func(gs GraphSpec, _ *rng.RNG) (*graph.Graph, *graph.Partition, error) {
			return graph.CompleteBipartite(gs.N1, gs.N2), nil, nil
		},
	})
	register(Family{
		Name: "bintree", Aliases: []string{"binary-tree", "tree"},
		Brief: "complete binary tree", Params: "levels (or n)",
		Defaults: func(gs *GraphSpec) {
			if gs.Levels == 0 {
				gs.Levels = derivedLog2(gs.N + 1)
			}
			gs.N = 1<<uint(gs.Levels) - 1
		},
		Build: func(gs GraphSpec, _ *rng.RNG) (*graph.Graph, *graph.Partition, error) {
			return graph.BinaryTree(gs.Levels), nil, nil
		},
	})
	register(Family{
		Name: "lollipop", Brief: "clique with a path tail (slow mixing)", Params: "n (or n1, tail)",
		Defaults: func(gs *GraphSpec) {
			if gs.N1 == 0 {
				gs.N1 = gs.N / 2
			}
			if gs.Tail == 0 {
				gs.Tail = gs.N - gs.N1
			}
			gs.N = gs.N1 + gs.Tail
		},
		Build: func(gs GraphSpec, _ *rng.RNG) (*graph.Graph, *graph.Partition, error) {
			return graph.Lollipop(gs.N1, gs.Tail), nil, nil
		},
	})
	register(Family{
		Name: "gnp", Aliases: []string{"erdos-renyi", "er"},
		Brief: "Erdős–Rényi G(n,p), resampled until connected", Params: "n, p", Random: true,
		Defaults: func(gs *GraphSpec) {
			if gs.P == 0 {
				// 3x the connectivity threshold ln(n)/n.
				gs.P = 3 * connectivityP(gs.N)
			}
		},
		Build: func(gs GraphSpec, r *rng.RNG) (*graph.Graph, *graph.Partition, error) {
			g, err := graph.GnPConnected(r, gs.N, gs.P, 500)
			return g, nil, err
		},
	})
	register(Family{
		Name: "regular", Aliases: []string{"random-regular"},
		Brief: "random d-regular graph", Params: "n, degree", Random: true,
		Defaults: func(gs *GraphSpec) {
			if gs.Degree == 0 {
				gs.Degree = 4
			}
			if gs.N*gs.Degree%2 != 0 {
				gs.N++ // the configuration model needs n*d even
			}
		},
		Build: func(gs GraphSpec, r *rng.RNG) (*graph.Graph, *graph.Partition, error) {
			g, err := graph.RandomRegular(r, gs.N, gs.Degree, 500)
			return g, nil, err
		},
	})
	register(Family{
		Name: "rgg", Aliases: []string{"geometric"},
		Brief: "random geometric graph, resampled until connected", Params: "n, radius", Random: true,
		Defaults: func(gs *GraphSpec) {
			if gs.Radius == 0 {
				gs.Radius = 2
			}
		},
		Build: func(gs GraphSpec, r *rng.RNG) (*graph.Graph, *graph.Partition, error) {
			g, err := graph.RGGConnected(r, gs.N, gs.Radius*graph.ConnectivityRadius(gs.N), 500)
			return g, nil, err
		},
	})
}
