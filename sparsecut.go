// Package sparsecut is a Go implementation of the algorithms and evaluation
// of Hariharan Narayanan, "Distributed averaging in the presence of a
// sparse cut" (PODC 2008, arXiv:0803.3642): asynchronous gossip averaging
// on graphs whose two well-connected halves are joined by a sparse cut.
//
// The paper's contribution, implemented here as Algorithm A
// (NewAlgorithmA), combines vanilla pairwise averaging inside each half
// with a rare *non-convex* exchange across one designated cut edge. Any
// algorithm restricted to convex pairwise updates needs averaging time
// Ω(min(|V1|,|V2|)/|E12|) on such graphs (Theorem 1); Algorithm A needs
// only O(log n · (Tvan(G1)+Tvan(G2))) (Theorem 2) — an exponential
// separation in n on the two-clique dumbbell.
//
// # Quick start
//
//	g, part, _ := sparsecut.NewDumbbell(64, 64, 1)
//	x0 := sparsecut.WorstCaseInit(part)
//	alg, _ := sparsecut.NewAlgorithmA(g, x0, sparsecut.WithPartition(part))
//	res := sparsecut.Simulate(g, alg, 50, 1)
//	fmt.Printf("variance ratio after t=50: %g\n", res.VarianceRatio)
//
// The package is a facade over the implementation packages under
// internal/: graph substrate, event-driven Poisson simulator, spectral
// toolkit, cut detection, averaging-time estimation, the E1–E15 experiment
// suite, and a real message-passing runtime. Everything is stdlib-only.
package sparsecut

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"sparsecut/internal/avgtime"
	"sparsecut/internal/check"
	"sparsecut/internal/core"
	"sparsecut/internal/cut"
	"sparsecut/internal/dist"
	"sparsecut/internal/flight"
	"sparsecut/internal/gossip"
	"sparsecut/internal/graph"
	"sparsecut/internal/metrics"
	"sparsecut/internal/report"
	"sparsecut/internal/rng"
	"sparsecut/internal/scenario"
	"sparsecut/internal/sim"
	"sparsecut/internal/spectral"
	"sparsecut/internal/sweep"
)

// Re-exported graph types. External users interact with them through this
// package's constructors.
type (
	// Graph is an immutable simple undirected graph.
	Graph = graph.Graph
	// Partition is a two-way vertex partition with cut accounting.
	Partition = graph.Partition
	// NodeID identifies a vertex (dense, 0-based).
	NodeID = graph.NodeID
	// EdgeID identifies an edge (dense, 0-based).
	EdgeID = graph.EdgeID
	// Algorithm is a gossip process driven by edge clock ticks.
	Algorithm = gossip.Algorithm
	// Side labels a block of a two-way partition.
	Side = graph.Side
)

// Partition side labels.
const (
	Side1 = graph.Side1
	Side2 = graph.Side2
)

// Algorithm A configuration options, re-exported from the core package.
var (
	// WithPartition supplies a known sparse-cut partition to NewAlgorithmA
	// (otherwise the cut is auto-detected by spectral bisection).
	WithPartition = core.WithPartition
	// WithCutEdge overrides the designated cut edge ec.
	WithCutEdge = core.WithCutEdge
	// WithWeightRule selects the swap coefficient strategy.
	WithWeightRule = core.WithWeightRule
	// WithWeight fixes the swap coefficient explicitly.
	WithWeight = core.WithWeight
	// WithEpochTicks fixes the swap period K in ticks of ec.
	WithEpochTicks = core.WithEpochTicks
	// WithEpochConstant sets the paper's constant C in
	// K = ceil(C*(Tvan1+Tvan2)*ln n).
	WithEpochConstant = core.WithEpochConstant
	// WithTvan supplies per-side vanilla averaging times for the epoch
	// formula.
	WithTvan = core.WithTvan
)

// Swap-weight strategies for Algorithm A (see internal/core/weight.go for
// the derivation).
const (
	// WeightExact is w* = n1*n2/(n1+n2), the coefficient that exactly
	// annihilates both side means (the default).
	WeightExact = core.WeightExact
	// WeightPaper is the paper's literal coefficient n1.
	WeightPaper = core.WeightPaper
)

// AlgorithmAOption configures NewAlgorithmA.
type AlgorithmAOption = core.Option

// ExactSwapWeight returns w* = n1·n2/(n1+n2) for a partition — the swap
// coefficient that exactly annihilates both side means (WeightExact's
// value), for callers that need the number itself, e.g. to hand to
// NewSparseCutExchange.
func ExactSwapWeight(p *Partition) float64 { return core.ExactWeight(p) }

// PaperSwapWeight returns the paper's literal coefficient min(|V1|, |V2|).
func PaperSwapWeight(p *Partition) float64 { return core.PaperWeight(p) }

// NewDumbbell returns two cliques K_n1, K_n2 joined by cutEdges edges — the
// paper's canonical sparse-cut graph — together with the planted partition.
func NewDumbbell(n1, n2, cutEdges int) (*Graph, *Partition, error) {
	return graph.Dumbbell(n1, n2, cutEdges)
}

// NewRingOfCliques returns `blocks` cliques of size m arranged in a
// cycle, adjacent cliques joined by `bridges` edges, with the partition
// splitting the ring into two arcs (|E12| = 2*bridges).
func NewRingOfCliques(blocks, m, bridges int) (*Graph, *Partition, error) {
	return graph.RingOfCliques(blocks, m, bridges)
}

// NewHierarchicalDumbbell returns a dumbbell of dumbbells: two symmetric
// dumbbells (innerCut internal cut edges each) joined by outerCut edges —
// two nested bottleneck scales. The partition is the outer cut.
func NewHierarchicalDumbbell(n, innerCut, outerCut int) (*Graph, *Partition, error) {
	return graph.HierarchicalDumbbell(n, innerCut, outerCut)
}

// NewTorusDumbbell returns two 4-regular tori joined by cutEdges edges —
// the dumbbell's bottleneck at constant degree, materialisable at 10^6
// nodes — with the planted partition between the halves.
func NewTorusDumbbell(n, cutEdges int) (*Graph, *Partition, error) {
	return graph.TorusDumbbell(n, cutEdges)
}

// NewPlantedPartition returns a random two-community graph: within-side
// edge probability pIn, cross probability pOut, retried until both sides
// are internally connected with a non-empty cut.
func NewPlantedPartition(seed uint64, n1, n2 int, pIn, pOut float64) (*Graph, *Partition, error) {
	return graph.PlantedPartition(rng.New(seed), n1, n2, pIn, pOut, 500)
}

// NewSensorField returns a random geometric graph on the unit square whose
// halves are separated by a wall with the given number of door edges — the
// sensor-network scenario motivated by the paper's reference [6]. The
// radius is 2x the standard connectivity radius.
func NewSensorField(seed uint64, n, doors int) (*Graph, *Partition, error) {
	return graph.WalledRGG(rng.New(seed), n, 2*graph.ConnectivityRadius(n), doors, 500)
}

// ReadGraph parses a graph in the package's edge-list format.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadEdgeList(r) }

// WriteGraph serialises a graph in the package's edge-list format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.WriteEdgeList(w, g) }

// WriteDOT exports a graph (optionally with a highlighted partition) as
// Graphviz DOT.
func WriteDOT(w io.Writer, g *Graph, p *Partition) error { return graph.WriteDOT(w, g, p) }

// FindSparseCut locates a sparse cut by spectral bisection with a sweep
// cut. The graph must be connected.
func FindSparseCut(g *Graph) (*Partition, error) {
	return cut.SpectralBisection(g, spectral.Options{})
}

// AlgebraicConnectivity returns λ2 of the graph Laplacian, the spectral
// quantity controlling vanilla gossip's averaging time (Tvan <= 6/λ2).
func AlgebraicConnectivity(g *Graph) (float64, error) {
	lam2, _, err := spectral.Lambda2(g, spectral.Options{})
	return lam2, err
}

// WorstCaseInit returns the paper's worst-case initial vector for a
// partition: +1 on V1, -n1/n2 on V2 (mean zero, all variance across the
// cut).
func WorstCaseInit(p *Partition) []float64 { return gossip.CutIndicator(p) }

// RandomInit returns n i.i.d. uniform values on [-1, 1).
func RandomInit(seed uint64, n int) []float64 {
	return gossip.UniformRandom(rng.New(seed), n)
}

// NewVanillaGossip builds the baseline algorithm: a tick of an edge
// replaces both endpoint values by their mean.
func NewVanillaGossip(g *Graph, x0 []float64) (Algorithm, error) {
	return gossip.NewVanilla(g, x0)
}

// NewConvexGossip builds the general class-C algorithm with mixing
// parameter alpha in [0, 1] (alpha = 1/2 is vanilla).
func NewConvexGossip(g *Graph, x0 []float64, alpha float64) (Algorithm, error) {
	return gossip.NewConvex(g, x0, alpha)
}

// NewPushSum builds the mass-splitting push-sum baseline.
func NewPushSum(g *Graph, x0 []float64, seed uint64) (Algorithm, error) {
	return gossip.NewPushSum(g, x0, rng.New(seed))
}

// NewAlgorithmA builds the paper's Algorithm A. Without WithPartition the
// sparse cut is auto-detected. The concrete type additionally exposes
// Swaps, Weight, EpochTicks, SideMeans and EpochDuration.
func NewAlgorithmA(g *Graph, x0 []float64, opts ...AlgorithmAOption) (*core.SparseCutAveraging, error) {
	return core.New(g, x0, opts...)
}

// SimResult summarises a Simulate run.
type SimResult struct {
	// Time and Events are the simulated horizon actually reached.
	Time   float64
	Events int64
	// Mean is the final average (invariant for sum-preserving algorithms).
	Mean float64
	// Variance is the final varX; VarianceRatio is Variance/varX(0).
	Variance      float64
	VarianceRatio float64
}

// Simulate drives alg with rate-1 Poisson edge clocks on g until simulated
// time `until`, deterministically in seed. It panics only on programmer
// error (nil algorithm); graph/algorithm mismatches surface when the
// algorithm was constructed.
func Simulate(g *Graph, alg Algorithm, until float64, seed uint64) SimResult {
	var0 := alg.Variance()
	eng, err := sim.NewEngine(g, alg, sim.WithSeed(seed))
	if err != nil {
		panic(fmt.Sprintf("sparsecut: Simulate: %v", err))
	}
	// RunUntil takes the fused kernel fast path for the built-in algorithms
	// and falls back to the generic loop for custom handlers.
	t, events := eng.RunUntil(until)
	res := SimResult{
		Time:     t,
		Events:   events,
		Mean:     alg.Mean(),
		Variance: alg.Variance(),
	}
	if var0 > 0 {
		res.VarianceRatio = res.Variance / var0
	}
	return res
}

// Averaging-time estimation, re-exported from internal/avgtime.
type (
	// TavConfig configures MeasureAveragingTime (zero value = Definition 1
	// defaults: threshold e^-2, confidence 1-1/e, 9 trials).
	TavConfig = avgtime.Config
	// TavResult is the estimate with per-trial data and censoring info.
	TavResult = avgtime.Result
)

// Factory builds a fresh Algorithm for one estimation trial. The seed is a
// trial-private value for algorithms needing internal randomness
// (push-sum); deterministic algorithms may ignore it.
type Factory func(trial int, seed uint64) (Algorithm, error)

// MeasureAveragingTime estimates the paper's Tav (Definition 1) for the
// algorithm produced by factory on g, by Monte-Carlo over independent
// trials.
func MeasureAveragingTime(g *Graph, factory Factory, cfg TavConfig) (TavResult, error) {
	return avgtime.Estimate(g, func(trial int, r *rng.RNG) (gossip.Algorithm, error) {
		return factory(trial, r.Uint64())
	}, cfg)
}

// Replica-batched simulation, re-exported from internal/sim and
// internal/gossip: R independent Monte-Carlo replicas of one scenario
// advance in interleaved lockstep over the shared flat graph, with
// per-chunk Gamma time-bridging instead of per-event exponential draws.
// See DESIGN.md §8.
type (
	// BatchEngine drives a BatchKernel's replicas with bridged Poisson
	// clocks; construct with NewBatchEngine.
	BatchEngine = sim.BatchEngine
	// BatchKernel is the algorithm side of the batched engine
	// (implemented by the gossip ensembles below).
	BatchKernel = sim.BatchKernel
)

// NewVanillaEnsemble builds R replicas of vanilla gossip on g for the
// batched engine, all starting from x0.
func NewVanillaEnsemble(g *Graph, x0 []float64, replicas int) (*gossip.VanillaEnsemble, error) {
	return gossip.NewVanillaEnsemble(g, x0, replicas)
}

// NewBatchEngine builds a replica-batched engine for g driving kern, one
// replica per seed.
func NewBatchEngine(g *Graph, kern BatchKernel, seeds []uint64) (*BatchEngine, error) {
	streams := make([]*rng.RNG, len(seeds))
	for i, s := range seeds {
		streams[i] = rng.New(s)
	}
	return sim.NewBatchEngine(g, kern, streams)
}

// MeasureAveragingTimeBatched is MeasureAveragingTime through the
// replica-batched bridged engine: all trials of the ensemble advance in
// lockstep, the per-trial streams derive from cfg.Seed exactly as the
// per-event path derives them, and the result is byte-identical for any
// cfg.BatchWidth. It samples the same Definition-1 statistic as
// MeasureAveragingTime but is not stream-compatible with it; the two are
// KS-tested against each other in internal/avgtime.
func MeasureAveragingTimeBatched(g *Graph, factory func(replicas int, seeds []uint64) (BatchKernel, error), cfg TavConfig) (TavResult, error) {
	return avgtime.EstimateBatched(g, nil, func(replicas int, streams []*rng.RNG) (sim.BatchKernel, error) {
		seeds := make([]uint64, len(streams))
		for i, r := range streams {
			seeds[i] = r.Uint64()
		}
		return factory(replicas, seeds)
	}, cfg)
}

// Sharded million-node simulation, re-exported from internal/graph,
// internal/gossip, internal/sim and internal/avgtime: implicit
// index-arithmetic edge representations (no stored adjacency) tile along
// the planted cut, and a windowed PDES engine advances the tiles'
// independent Poisson streams in parallel — byte-identical for any
// worker count. See DESIGN.md §13.
type (
	// ImplicitGraph is an index-arithmetic edge representation: O(1)
	// memory for the structured families regardless of |E|, with int64
	// edge ids (a 10^6-node dumbbell has ~2.5e11 edges).
	ImplicitGraph = graph.Implicit
	// Tiling is a cut-aware partition of an implicit graph into
	// internally-dense tiles plus the boundary (cut) edge list.
	Tiling = graph.Tiling
	// FlatState is the memory-lean SoA single-replica vanilla state the
	// sharded engine drives (~8 bytes/node retained).
	FlatState = gossip.FlatState
	// ShardEngine advances a tiling's tiles in bounded windows with
	// boundary events serialized; construct with NewShardEngine.
	ShardEngine = sim.ShardEngine
	// ShardConfig configures NewShardEngine (worker cap, window Δ,
	// observer). Workers is wall-clock only — never results.
	ShardConfig = sim.ShardConfig
	// ShardedTavOptions tunes MeasureAveragingTimeSharded beyond
	// TavConfig (worker cap, window Δ).
	ShardedTavOptions = avgtime.ShardedOptions
)

// NewImplicitDumbbell builds the paper's dumbbell (two n1- and n2-node
// cliques joined by cutEdges bridge edges) as an implicit graph, without
// materialising its edge list.
func NewImplicitDumbbell(n1, n2, cutEdges int) (ImplicitGraph, error) {
	return graph.ImplicitDumbbell(n1, n2, cutEdges)
}

// NewFlatState builds the sharded engine's kernel state over x0, tiled by
// bounds (usually Tiling.Bounds()).
func NewFlatState(x0 []float64, bounds [][2]int32) (*FlatState, error) {
	return gossip.NewFlatState(x0, bounds)
}

// NewShardEngine builds a sharded windowed engine for til driving st,
// seeded deterministically: results are byte-identical for any
// cfg.Workers.
func NewShardEngine(til *Tiling, st *FlatState, seed uint64, cfg ShardConfig) *ShardEngine {
	return sim.NewShardEngine(til, st, rng.New(seed), cfg)
}

// MeasureAveragingTimeSharded is MeasureAveragingTime for vanilla gossip
// on an implicit graph through the sharded engine: same Definition-1
// statistic, resolved to within one window Δ, KS-tested against the
// per-event oracle in internal/avgtime.
func MeasureAveragingTimeSharded(g ImplicitGraph, x0 []float64, cfg TavConfig, opt ShardedTavOptions) (TavResult, error) {
	return avgtime.EstimateSharded(g, x0, cfg, opt)
}

// Decentralized message-passing runtime, re-exported from internal/dist:
// the same local rules the simulator applies centrally, run as one
// goroutine per node exchanging messages over an explicit, optionally
// lossy or slow transport.
type (
	// Cluster is the goroutine-per-node runtime; construct with NewCluster
	// and drive with Run.
	Cluster = dist.Cluster
	// ClusterConfig configures NewCluster (time scale, seed, transport,
	// telemetry registry, crash schedule).
	ClusterConfig = dist.ClusterConfig
	// CrashEvent fail-stops one node for a window of simulated time;
	// a slice of them forms ClusterConfig.Crashes, the fault-injection
	// schedule. Values, seq counters and watermarks survive a crash
	// (stable storage); in-flight messages to a downed node are lost.
	CrashEvent = dist.CrashEvent
	// Transport carries the runtime's protocol messages.
	Transport = dist.Transport
	// ExchangeRule is the local update a committed pairwise exchange
	// applies — the runtime counterpart of Algorithm.
	ExchangeRule = dist.Rule
	// TCPTransport carries protocol messages over loopback TCP sockets
	// (it additionally exposes Port).
	TCPTransport = dist.TCPTransport
	// ShardRuntime is the M:N sharded runtime: the same protocol machine
	// as Cluster driven by S shard event loops with per-shard timer
	// wheels and batched mailboxes, scaling single-box runs to 10^6
	// nodes. Construct with NewShardRuntime and drive with Run.
	ShardRuntime = dist.ShardRuntime
	// ShardRuntimeConfig configures NewShardRuntime (ClusterConfig plus
	// shard count, mailbox capacity and timer-wheel tick).
	ShardRuntimeConfig = dist.ShardRuntimeConfig
	// WireCodec selects the TCP transport's message encoding; see
	// NewTCPTransportCodec.
	WireCodec = dist.WireCodec
)

// TCP wire codecs: the compact length-prefixed binary framing (default)
// and the legacy gob stream. Peers negotiate per connection via a leading
// version byte, so the two interoperate within one cluster.
const (
	WireBinary = dist.WireBinary
	WireGob    = dist.WireGob
)

// / Telemetry, re-exported from internal/metrics: the dependency-free
// counters/gauges/histograms registry the runtime layers record into.
// Construct one with NewMetricsRegistry, hand it to ClusterConfig.Metrics
// or SweepConfig.Metrics, and export deterministic JSON via
// Snapshot().WriteJSON (cmd/distrun -http additionally serves it over
// expvar). A nil registry disables telemetry at near-zero hot-path cost.
type (
	// MetricsRegistry names a set of instruments and renders deterministic
	// snapshots; see internal/metrics and DESIGN.md §10.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a point-in-time export of a registry.
	MetricsSnapshot = metrics.Snapshot
	// MetricsHistogram is one histogram's snapshot inside a
	// MetricsSnapshot; its Quantile method estimates p50/p95/p99 from the
	// log2 buckets.
	MetricsHistogram = metrics.HistogramSnapshot
)

// NewMetricsRegistry returns an empty enabled telemetry registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// Flight recorder, re-exported from internal/flight: a per-node bounded
// ring buffer of fixed-size protocol event records (machine transitions,
// message send/recv/drop, timer fires, crashes). Hand one to
// ClusterConfig.Flight to capture a run, then Snapshot() it into a Dump
// for serialization or span stitching; cmd/tracez renders the dumps. A
// nil recorder disables capture at near-zero hot-path cost, exactly like
// a nil MetricsRegistry.
type (
	// FlightRecorder captures protocol events into per-node rings; see
	// internal/flight and DESIGN.md §12.
	FlightRecorder = flight.Recorder
	// FlightDump is a serialized flight capture (deterministic JSON or
	// binary encoding; see Dump.WriteFile).
	FlightDump = flight.Dump
)

// NewFlightRecorder returns a flight recorder with one ring of perNodeCap
// records (flight.DefaultRingCap if perNodeCap <= 0) per node.
func NewFlightRecorder(nodes, perNodeCap int) *FlightRecorder {
	return flight.New(nodes, perNodeCap)
}

// FlightHandler serves rec's live capture over HTTP: the JSON dump by
// default, ?format=binary for the binary framing, and
// ?view=spans|timeline|phases|aborts|critical for the tracez text views
// (filterable by ?node=, ?init=, ?seq=, ?outcome=). cmd/distrun mounts it
// at /debug/flightz.
func FlightHandler(rec *FlightRecorder) http.Handler { return flight.Handler(rec) }

// NewCluster builds the decentralized runtime for rule on g with initial
// values x0. One simulated time unit lasts cfg.TimeScale of wall-clock
// time, so Cluster.Run(ctx, t) is directly comparable to Simulate(g, alg,
// t, seed).
func NewCluster(g *Graph, x0 []float64, rule ExchangeRule, cfg ClusterConfig) (*Cluster, error) {
	return dist.NewCluster(g, x0, rule, cfg)
}

// NewChanTransport returns the in-memory transport (one buffered mailbox
// per node, buf messages each).
func NewChanTransport(buf int) Transport { return dist.NewChanTransport(buf) }

// NewTCPTransport returns a transport with one loopback TCP listener per
// node address in [0, addrs).
func NewTCPTransport(addrs int) (*TCPTransport, error) { return dist.NewTCPTransport(addrs) }

// NewTCPTransportCodec is NewTCPTransport with an explicit wire codec for
// outbound connections (WireBinary is the default; WireGob interoperates
// with older peers).
func NewTCPTransportCodec(addrs int, codec WireCodec) (*TCPTransport, error) {
	return dist.NewTCPTransportCodec(addrs, codec)
}

// NewShardRuntime builds the sharded decentralized runtime for rule on g
// with initial values x0: N nodes multiplexed over cfg.Shards event
// loops, cross-shard delivery through cfg.Transport (or the in-process
// direct path when nil). Same Run contract and invariants as NewCluster.
func NewShardRuntime(g *Graph, x0 []float64, rule ExchangeRule, cfg ShardRuntimeConfig) (*ShardRuntime, error) {
	return dist.NewShardRuntime(g, x0, rule, cfg)
}

// NewDropTransport wraps inner with i.i.d. Bernoulli message loss at the
// given rate in [0, 1). The drop decisions are drawn from a private
// generator seeded with seed; the same seed reproduces the same decision
// sequence, though which concrete messages that drops still depends on
// the goroutine scheduling of the Send calls.
func NewDropTransport(inner Transport, dropRate float64, seed uint64) (Transport, error) {
	return dist.NewDropTransport(inner, dropRate, rng.New(seed))
}

// NewDelayTransport wraps inner with independent uniform per-message
// latency in [0, maxDelay), sampled from a private generator seeded with
// seed (same caveat as NewDropTransport). Delayed messages may reorder;
// the exchange protocol tolerates both.
func NewDelayTransport(inner Transport, maxDelay time.Duration, seed uint64) (Transport, error) {
	return dist.NewDelayTransport(inner, maxDelay, rng.New(seed))
}

// NewAveragingExchange returns the vanilla pairwise-averaging exchange
// rule: a committed exchange moves both endpoints to their mean.
func NewAveragingExchange() ExchangeRule { return dist.NewVanillaRule() }

// NewSparseCutExchange returns Algorithm A as an exchange rule: vanilla
// averaging inside the sides, no update on non-designated cut edges, and
// the non-convex swap at every epochTicks-th exchange proposed over
// cutEdge (the epoch counter advances when a responder computes the
// update, so under message loss a proposal that later aborts has still
// consumed a tick). ExactSwapWeight(part) is the usual coefficient;
// PaperSwapWeight(part) is the paper's literal choice.
func NewSparseCutExchange(part *Partition, cutEdge EdgeID, epochTicks int64, weight float64) (ExchangeRule, error) {
	return dist.NewSparseCutRule(part, cutEdge, epochTicks, weight)
}

// Protocol verification, re-exported from internal/check: a deterministic
// model checker that drives the runtime's exchange state machine through
// systematically explored fault schedules (arbitrary delivery order,
// drops, duplicated replies, timeouts, retransmissions, crash/recovery)
// and asserts sum conservation, no stale commits, lock-state sanity and
// quiescence after every step. Counterexamples are JSON traces that
// replay deterministically; cmd/mcheck is the CLI front end and DESIGN.md
// §11 the architecture notes.
type (
	// CheckSpec names the system under check: graph, initial values and
	// exchange rule (CheckVanillaRule / CheckSparseCutRule).
	CheckSpec = check.Spec
	// CheckRuleSpec is the JSON-serializable exchange-rule description.
	CheckRuleSpec = check.RuleSpec
	// CheckOptions bounds the exploration (depth, state and fault
	// budgets) and selects the fault alphabet.
	CheckOptions = check.Options
	// CheckResult reports exploration size and, on an invariant
	// violation, the counterexample trace.
	CheckResult = check.Result
	// CheckTrace is a replayable counterexample: system spec, action
	// schedule and the violation it produces.
	CheckTrace = check.Trace
	// CheckViolation is one invariant violation (step, invariant name,
	// detail).
	CheckViolation = check.Violation
	// ProtocolMutation seeds an intentional protocol bug into the checked
	// state machine (CheckOptions.Mutation) — the checker's self-test and
	// CI mutation-gate mechanism. The zero value is the correct protocol;
	// resolve names with ParseProtocolMutation.
	ProtocolMutation = dist.Mutation
)

// ParseProtocolMutation resolves a mutation name as accepted by cmd/mcheck
// -mutation: "none", "nack-rollback-applies", "stale-proposal-apply",
// "commit-ignores-seq", "nack-ignores-role", "lax-watermark-dedup". The
// last two are real bugs the model checker found in this protocol's own
// seed (DESIGN.md §11.5), kept as mutations so the checker keeps proving
// it would catch them.
func ParseProtocolMutation(name string) (ProtocolMutation, bool) { return dist.ParseMutation(name) }

// CheckVanillaRule is the model-checker spec for the vanilla averaging
// exchange.
func CheckVanillaRule() CheckRuleSpec { return check.Vanilla() }

// CheckSparseCutRule is the model-checker spec for Algorithm A's exchange:
// sides[i] in {0,1} assigns node i to a partition side, cutEdge is the
// designated edge, epochTicks the swap period K, weight the swap
// coefficient.
func CheckSparseCutRule(sides []int, cutEdge int, epochTicks int64, weight float64) CheckRuleSpec {
	return check.SparseCut(sides, cutEdge, epochTicks, weight)
}

// CheckExchange exhaustively model-checks the exchange protocol on spec up
// to opt's bounds, returning exploration statistics and a replayable
// counterexample trace if any invariant is violated.
func CheckExchange(spec CheckSpec, opt CheckOptions) (*CheckResult, error) {
	return check.Exhaustive(spec, opt)
}

// CheckExchangeWalks runs seeded random-walk model checking: walks
// schedules of up to opt.MaxDepth uniformly random enabled actions —
// depths beyond exhaustive reach, probabilistic coverage.
func CheckExchangeWalks(spec CheckSpec, opt CheckOptions, seed uint64, walks int) (*CheckResult, error) {
	return check.RandomWalk(spec, opt, seed, walks)
}

// ReplayTrace deterministically re-executes a counterexample trace,
// returning the violation it reproduces (nil for a clean schedule).
func ReplayTrace(tr *CheckTrace) (*CheckViolation, error) { return check.Replay(tr) }

// ReadCheckTrace loads a counterexample trace written by
// CheckTrace.WriteFile or cmd/mcheck -trace.
func ReadCheckTrace(path string) (*CheckTrace, error) { return check.ReadTraceFile(path) }

// Declarative scenario specs and the deterministic parallel sweep engine,
// re-exported from internal/scenario and internal/sweep. A Scenario names
// one (graph family × parameters × algorithm × rate model) setup; a
// SweepGrid multiplies axes over a base scenario and RunSweep evaluates
// every cell's Definition-1 averaging time on a worker pool with results
// that are bit-identical for any worker count.
type (
	// Scenario is a declarative simulation setup (JSON-serializable).
	Scenario = scenario.Spec
	// ScenarioGraph parameterises the graph family of a Scenario.
	ScenarioGraph = scenario.GraphSpec
	// ScenarioAlgo parameterises the algorithm of a Scenario.
	ScenarioAlgo = scenario.AlgoSpec
	// ScenarioStop sets a Scenario's Monte-Carlo budget.
	ScenarioStop = scenario.StopSpec
	// ResolvedScenario is a Scenario turned into simulation objects.
	ResolvedScenario = scenario.Resolved
	// SweepGrid is a base Scenario plus axes to sweep.
	SweepGrid = sweep.Grid
	// SweepConfig controls a sweep run (workers, root seed, progress).
	SweepConfig = sweep.Config
	// SweepReport is the machine-readable sweep result.
	SweepReport = sweep.Report
	// SweepCell is one finished grid cell.
	SweepCell = sweep.Cell
)

// ResolveScenario validates a scenario spec and builds its graph,
// partition, initial vector and rates.
func ResolveScenario(s Scenario) (*ResolvedScenario, error) { return s.Resolve() }

// ScenarioFamilies returns the canonical names of every registered graph
// family — the full generator zoo reachable from specs and CLIs.
func ScenarioFamilies() []string { return scenario.FamilyNames() }

// RunSweep expands the grid and evaluates every cell on a worker pool.
// Results are deterministic in the root seed and independent of the
// worker count.
func RunSweep(grid SweepGrid, cfg SweepConfig) (*SweepReport, error) {
	return sweep.Run(grid, cfg)
}

// Experiment re-exports the reproduction-suite entry type (one registered
// E1–E15 experiment).
type Experiment = report.Entry

// ReproductionDocument re-exports the finished reproduction document
// (REPRODUCTION.md's object form; see DESIGN.md §9).
type ReproductionDocument = report.Document

// ReproductionParams re-exports the reproduction run configuration.
type ReproductionParams = report.Params

// Experiments returns the full E1–E15 evaluation suite (see DESIGN.md §4
// for the mapping to paper claims).
func Experiments() []Experiment { return report.Entries() }

// RunExperiment executes one experiment by ID ("E1".."E15"), writing its
// Markdown section (measured-vs-bound tables plus derived PASS/FAIL
// checks) to w and returning its headline metrics. Quick mode shrinks
// sizes for CI-grade runs.
func RunExperiment(w io.Writer, id string, quick bool, seed uint64) (map[string]float64, error) {
	e, ok := report.ByID(id)
	if !ok {
		return nil, fmt.Errorf("sparsecut: unknown experiment %q", id)
	}
	sec, err := e.RunEntry(report.Params{Quick: quick, Seed: seed})
	if err != nil {
		return nil, err
	}
	if err := sec.WriteMarkdown(w); err != nil {
		return nil, err
	}
	return sec.MetricMap(), nil
}

// GenerateReproduction runs the whole E1–E15 suite and returns the
// bound-checked document; render it with WriteMarkdown/WriteJSON (this is
// what cmd/repro does).
func GenerateReproduction(p ReproductionParams) (*ReproductionDocument, error) {
	return report.Generate(p)
}
