package metrics

import (
	"sync"
	"testing"
)

// TestCounterHammer is the sharded-counter race test: many writers on
// colliding and non-colliding shards, with concurrent readers, must end at
// the exact total. Run under -race this is also the data-race proof.
func TestCounterHammer(t *testing.T) {
	var c Counter
	const (
		writers = 64 // 2x the shard count: every shard contended
		perG    = 10000
	)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if v := c.Value(); v < 0 || v > writers*perG {
						t.Errorf("mid-run Value %d outside [0, %d]", v, writers*perG)
						return
					}
				}
			}
		}()
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if i%2 == 0 {
					c.Inc(shard)
				} else {
					c.Add(shard, 1)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if got := c.Value(); got != writers*perG {
		t.Fatalf("Value = %d, want %d", got, writers*perG)
	}
}

// TestCounterShardWrap checks out-of-range and negative shard indices are
// reduced, not crashed on — callers pass raw node IDs.
func TestCounterShardWrap(t *testing.T) {
	var c Counter
	c.Inc(NumShards)  // wraps to shard 0
	c.Inc(-1)         // wraps somewhere in range
	c.Add(1<<20+3, 5) // far out of range
	if got := c.Value(); got != 7 {
		t.Fatalf("Value = %d, want 7", got)
	}
}

// TestNilInstruments is the disabled-path contract: every method of every
// nil instrument is a no-op, never a panic — hot paths carry nil pointers
// when telemetry is off.
func TestNilInstruments(t *testing.T) {
	var c *Counter
	c.Inc(0)
	c.Add(3, 10)
	if c.Value() != 0 {
		t.Error("nil Counter Value != 0")
	}
	var g *Gauge
	g.Set(1.5)
	if g.Value() != 0 {
		t.Error("nil Gauge Value != 0")
	}
	var h *Histogram
	h.Observe(42)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil Histogram recorded")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Error("nil Registry handed out a non-nil instrument")
	}
	r.CounterFunc("x", func() int64 { return 1 })
	r.GaugeFunc("x", func() float64 { return 1 })
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil Registry snapshot not empty")
	}
}

func TestGaugeSetValue(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Fatalf("zero Gauge reads %v", g.Value())
	}
	for _, v := range []float64{1.5, -3.25, 0, 1e300} {
		g.Set(v)
		if got := g.Value(); got != v {
			t.Fatalf("Set(%v) read back %v", v, got)
		}
	}
}
