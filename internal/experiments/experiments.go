// Package experiments defines the repository's evaluation suite E1–E14: one
// runnable experiment per quantitative claim of the paper (the paper itself
// contains no numbered tables or figures, so this suite *is* the evaluation
// — see DESIGN.md §4 for the mapping). Each experiment prints a table (or
// CSV series for figure-style output) and returns named headline metrics
// that the tests, benchmarks and EXPERIMENTS.md assert on.
//
// Every experiment supports a Quick mode with reduced sizes and trial
// counts so the whole suite can run in CI; the full mode regenerates the
// numbers recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Params configures an experiment run.
type Params struct {
	// Quick selects reduced problem sizes for tests and benchmarks.
	Quick bool
	// Seed drives all randomness (default 1).
	Seed uint64
	// Markdown renders tables as Markdown instead of aligned text.
	Markdown bool
}

func (p Params) withDefaults() Params {
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Outcome carries an experiment's headline numbers, keyed by metric name
// (e.g. "slope", "speedup@128"). Tables are written to the io.Writer; the
// Outcome is for programmatic checks.
type Outcome struct {
	Metrics map[string]float64
}

func newOutcome() Outcome { return Outcome{Metrics: map[string]float64{}} }

// Experiment is one entry of the evaluation suite.
type Experiment struct {
	// ID is the experiment identifier ("E1".."E14").
	ID string
	// Title is a one-line description for listings.
	Title string
	// Claim cites the paper statement the experiment reproduces.
	Claim string
	// Run executes the experiment, writing tables/series to w.
	Run func(w io.Writer, p Params) (Outcome, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every registered experiment sorted by numeric ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		var a, b int
		fmt.Sscanf(out[i].ID, "E%d", &a)
		fmt.Sscanf(out[j].ID, "E%d", &b)
		return a < b
	})
	return out
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// RunAll executes every experiment in sequence, writing each one's output
// to w, and returns the union of metrics prefixed by experiment ID
// ("E1/slope"). The first error aborts the run.
func RunAll(w io.Writer, p Params) (map[string]float64, error) {
	merged := map[string]float64{}
	for _, e := range All() {
		fmt.Fprintf(w, "\n===== %s: %s =====\n", e.ID, e.Title)
		fmt.Fprintf(w, "claim: %s\n\n", e.Claim)
		out, err := e.Run(w, p)
		if err != nil {
			return merged, fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
		for k, v := range out.Metrics {
			merged[e.ID+"/"+k] = v
		}
	}
	return merged, nil
}
