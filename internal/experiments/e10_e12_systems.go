package experiments

// E10–E12: beyond the dumbbell (realistic sparse-cut graphs with automatic
// cut detection), the second-order-diffusion baseline from the paper's
// reference [5], and the decentralized message-passing runtime.

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"sparsecut/internal/core"
	"sparsecut/internal/cut"
	"sparsecut/internal/dist"
	"sparsecut/internal/gossip"
	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
	"sparsecut/internal/syncsim"
	"sparsecut/internal/table"
)

func init() {
	register(Experiment{
		ID:    "E10",
		Title: "beyond the dumbbell: planted partitions and walled geometric graphs, auto-detected cuts",
		Claim: "Section 1: A outperforms convex algorithms whenever G1, G2 are internally well connected but poorly connected to each other — including when the cut must be discovered",
		Run:   runE10,
	})
	register(Experiment{
		ID:    "E11",
		Title: "non-convex baseline: first/second-order diffusion (ref [5]) vs Algorithm A",
		Claim: "Introduction: second-order (non-convex) diffusion beats first-order, but both remain cut-limited on the dumbbell; A's targeted non-convexity does not",
		Run:   runE11,
	})
	register(Experiment{
		ID:    "E12",
		Title: "decentralized execution: message-passing runtime, with and without message loss",
		Claim: "Section 1: the algorithm is decentralized — a goroutine-per-node 2PL protocol over an explicit transport reproduces the simulator's behaviour and degrades gracefully under loss",
		Run:   runE12,
	})
}

func runE10(w io.Writer, p Params) (Outcome, error) {
	p = p.withDefaults()
	out := newOutcome()
	root := rng.New(p.Seed)
	trials := pick(p, 3, 5)

	type workload struct {
		label string
		g     *graph.Graph
		part  *graph.Partition // planted; detection quality is also reported
	}
	var cases []workload

	// Cut sizes are kept genuinely sparse (E[|E12|] ~ 3 and 1 door): with a
	// denser cut, Theorem 1's bound n1/|E12| shrinks and there is nothing
	// for A to win — the experiment is about the sparse-cut regime.
	nPlanted := pick(p, 60, 120)
	pOut := 3.0 / float64(nPlanted*nPlanted/4)
	gP, pP, err := graph.PlantedPartition(root.Split(), nPlanted/2, nPlanted/2, 0.6, pOut, 500)
	if err != nil {
		return out, err
	}
	cases = append(cases, workload{"planted-partition", gP, pP})

	nRGG := pick(p, 60, 150)
	gW, pW, err := graph.WalledRGG(root.Split(), nRGG, 2.0*graph.ConnectivityRadius(nRGG), 1, 500)
	if err != nil {
		return out, err
	}
	cases = append(cases, workload{"walled-rgg", gW, pW})

	tbl := table.New("E10: auto-detected sparse cuts on realistic graphs",
		"graph", "n", "|E12| planted", "|E12| detected", "phi detected", "Tav(vanilla)", "Tav(A, detected cut)", "speedup")
	for _, c := range cases {
		detected, _, err := cut.Detect(c.g, defaultSpectralOpts())
		if err != nil {
			return out, err
		}
		x0 := gossip.CutIndicator(c.part)
		maxT := 40 * float64(c.g.NumNodes())
		van, err := measureConvex(c.g, x0, 0.5, trials, p.Seed, maxT)
		if err != nil {
			return out, err
		}
		// The paper defines K from the true Tvan of the sides; the spectral
		// 6/lambda2 default overestimates it on irregular graphs, so here we
		// measure Tvan empirically on the detected side subgraphs — the
		// WithTvan estimator pathway.
		tvan1, tvan2, err := measuredSideTvans(detected, p.Seed)
		if err != nil {
			return out, err
		}
		// Algorithm A without a supplied partition: full detection pipeline.
		algA, err := measureAlgorithmA(c.g, x0, trials, p.Seed, maxT,
			core.WithTvan(tvan1, tvan2))
		if err != nil {
			return out, err
		}
		speedup := van.Tav / algA.Tav
		tbl.AddRow(c.label, c.g.NumNodes(), c.part.CutSize(), detected.CutSize(),
			detected.Conductance(), fmtCensored(van.Tav, van.Censored),
			fmtCensored(algA.Tav, algA.Censored), speedup)
		out.Metrics["speedup-"+c.label] = speedup
		out.Metrics["detected-cut-"+c.label] = float64(detected.CutSize())
	}
	return out, render(w, p, tbl)
}

func runE11(w io.Writer, p Params) (Outcome, error) {
	p = p.withDefaults()
	out := newOutcome()
	n := pick(p, 32, 64)
	g, part, x0, err := dumbbellCase(n, 1)
	if err != nil {
		return out, err
	}
	const ratio = 1.353e-1 // e^-2, matching Definition 1's threshold
	maxRounds := 2_000_000

	first, err := syncsim.NewFirstOrder(g, x0)
	if err != nil {
		return out, err
	}
	r1, ok1 := first.RoundsToRatio(ratio, maxRounds)

	beta, err := syncsim.OptimalBeta(g, defaultSpectralOpts())
	if err != nil {
		return out, err
	}
	second, err := syncsim.NewSecondOrder(g, x0, beta)
	if err != nil {
		return out, err
	}
	r2, ok2 := second.RoundsToRatio(ratio, maxRounds)

	algA, err := measureAlgorithmA(g, x0, pick(p, 3, 7), p.Seed, maxTimeFor(n), core.WithPartition(part))
	if err != nil {
		return out, err
	}
	// One asynchronous time unit fires |E| edge clocks = 2|E| node updates;
	// one synchronous round performs n node updates. Equivalent rounds:
	eqRounds := algA.Tav * 2 * float64(g.NumEdges()) / float64(n)

	tbl := table.New(fmt.Sprintf("E11: rounds to varX ratio e^-2, dumbbell n=%d", n),
		"scheme", "rounds (or equivalent)", "converged")
	tbl.AddRow("first-order diffusion", r1, ok1)
	tbl.AddRow(fmt.Sprintf("second-order diffusion (beta=%.3f)", beta), r2, ok2)
	tbl.AddRow("algorithm A (async, node-update-normalised)", eqRounds, algA.Censored == 0)
	if err := render(w, p, tbl); err != nil {
		return out, err
	}
	fmt.Fprintf(w, "\nsecond order speeds up first order by %.2fx (ref [5] predicts ~sqrt); both remain cut-limited, A is not\n",
		float64(r1)/math.Max(1, float64(r2)))
	out.Metrics["rounds-first"] = float64(r1)
	out.Metrics["rounds-second"] = float64(r2)
	out.Metrics["rounds-A-equivalent"] = eqRounds
	return out, nil
}

func runE12(w io.Writer, p Params) (Outcome, error) {
	p = p.withDefaults()
	out := newOutcome()
	n := pick(p, 12, 16)
	g, part, err := graph.Dumbbell(n/2, n/2, 1)
	if err != nil {
		return out, err
	}
	x0 := gossip.CutIndicator(part)
	var0 := 1.0 // CutIndicator on a symmetric dumbbell has variance 1

	rule, err := dist.NewSparseCutRule(part, part.CutEdges()[0], 2, core.ExactWeight(part))
	if err != nil {
		return out, err
	}
	duration := pick(p, 30.0, 60.0)
	scale := 8 * time.Millisecond

	tbl := table.New(fmt.Sprintf("E12: message-passing runtime, dumbbell n=%d, sparse-cut rule, t=%g", n, duration),
		"drop rate", "exchanges", "aborted", "final var ratio", "mean drift")
	for _, drop := range []float64{0, 0.05, 0.2} {
		var tr dist.Transport = dist.NewChanTransport(g.NumNodes() + g.NumEdges())
		if drop > 0 {
			tr, err = dist.NewDropTransport(tr, drop, rng.New(p.Seed+uint64(drop*100)))
			if err != nil {
				return out, err
			}
		}
		cl, err := dist.NewCluster(g, x0, rule, dist.ClusterConfig{
			TimeScale: scale,
			Seed:      p.Seed,
			Transport: tr,
		})
		if err != nil {
			return out, err
		}
		if err := cl.Run(context.Background(), duration); err != nil {
			return out, err
		}
		ratio := cl.Variance() / var0
		tbl.AddRow(drop, cl.Exchanges(), cl.Aborted(), ratio, math.Abs(cl.Mean()))
		out.Metrics[fmt.Sprintf("ratio@drop=%g", drop)] = ratio
		out.Metrics[fmt.Sprintf("aborted@drop=%g", drop)] = float64(cl.Aborted())
	}
	return out, render(w, p, tbl)
}
