// Package rng provides a small, deterministic, splittable pseudo-random
// number generator used throughout the simulator.
//
// The generator is xoshiro256++ seeded through splitmix64. It is not
// cryptographically secure; it is chosen for reproducibility (a simulation
// seeded with the same value produces the same event sequence on every
// platform), speed, and the ability to derive statistically independent
// child streams for parallel Monte-Carlo trials.
//
// Key types: RNG (splittable xoshiro256++ stream). Seed-splitting discipline is part of the determinism contract in DESIGN.md §7.
package rng

import (
	"math"
	"math/bits"
)

// u64BlockSize is the internal generation block: outputs are produced 256
// words at a time with the xoshiro state held in registers, which decouples
// the generator's serial state recurrence from the consumers' float math in
// simulation hot loops. The emitted sequence is identical to calling the
// raw generator once per output.
const u64BlockSize = 256

// RNG is a deterministic pseudo-random number generator.
//
// The zero value is not usable; construct with New. RNG is not safe for
// concurrent use: derive one stream per goroutine with Split.
type RNG struct {
	s [4]uint64

	// Cached second output of the polar method for NormFloat64.
	spare      float64
	spareValid bool

	// Cached Marsaglia–Tsang constants for GammaInt: valid while the
	// shape equals gammaK (0 = empty). The batched simulator draws at a
	// fixed shape (the chunk size) millions of times, so the d/c
	// recomputation — a divide and a sqrt per draw — is pure overhead.
	gammaK int
	gammaD float64
	gammaC float64

	// Block buffer of pre-generated outputs; pos == u64BlockSize means
	// empty.
	pos int
	buf [u64BlockSize]uint64
}

// splitmix64 advances a 64-bit state and returns the next output. It is the
// standard seed expander for the xoshiro family.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically seeded from seed. Distinct seeds
// yield (for all practical purposes) independent streams.
func New(seed uint64) *RNG {
	r := &RNG{pos: u64BlockSize}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// A state of all zeros is the one forbidden state of xoshiro256++;
	// splitmix64 cannot produce four consecutive zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives a new generator whose stream is independent of the parent's
// future output. The parent is advanced, so successive Split calls return
// distinct streams.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xd2b74407b1ce6e93)
}

// Uint64 returns the next 64 uniformly distributed bits, served from the
// pre-generated block — small enough to inline at every call site, with
// the xoshiro recurrence amortised into refill.
func (r *RNG) Uint64() uint64 {
	if r.pos >= u64BlockSize {
		r.refill()
	}
	v := r.buf[r.pos]
	r.pos++
	return v
}

// refill regenerates the output block, holding the state in registers for
// the whole run. The rotations are written out inline so the loop body
// compiles to straight-line integer ops.
func (r *RNG) refill() {
	s0, s1, s2, s3 := r.s[0], r.s[1], r.s[2], r.s[3]
	for i := range r.buf {
		x := s0 + s3
		r.buf[i] = (x<<23 | x>>41) + s0
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = s3<<45 | s3>>19
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
	r.pos = 0
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method: unbiased and branch-light.
	// bits.Mul64 compiles to a single widening multiply, and the expensive
	// 64-bit modulo that computes the exact rejection threshold only runs
	// when lo < n (probability n/2^64), not on every call.
	bound := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), bound)
	if lo < bound {
		hi = r.IntnSlow(hi, lo, bound)
	}
	return int(hi)
}

// IntnSlow resolves the rare rejection branch of Intn's Lemire pick. Hot
// loops that inline the fast path — hi, lo := bits.Mul64(r.Uint64(),
// bound) — call this when lo < bound, exactly as Intn does; keeping the
// threshold logic here means there is a single source of truth for the
// draw sequence.
func (r *RNG) IntnSlow(hi, lo, bound uint64) uint64 {
	thresh := (-bound) % bound
	for lo < thresh {
		hi, lo = bits.Mul64(r.Uint64(), bound)
	}
	return hi
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// openUnit returns a uniform float64 strictly inside (0, 1): the half-unit
// offset keeps the lattice off both endpoints, so -Log(openUnit) is always
// positive and finite. 52 bits are used so every k+0.5 is exactly
// representable — with 53, the top lattice point (2^53-1)+0.5 would round
// up to 2^53 and map to exactly 1.
func (r *RNG) openUnit() float64 {
	return (float64(r.Uint64()>>12) + 0.5) * (1.0 / (1 << 52))
}

// ExpFloat64 returns an exponentially distributed sample with the given
// rate (mean 1/rate), via inversion on the open interval (0, 1) — the
// sample is never exactly 0 and never +Inf. It panics if rate <= 0.
func (r *RNG) ExpFloat64(rate float64) float64 {
	if rate <= 0 {
		panic("rng: ExpFloat64 called with rate <= 0")
	}
	return -math.Log(r.openUnit()) / rate
}

// Ziggurat tables for the unit exponential (Marsaglia & Tsang, 256 layers).
// zigR is the rightmost layer boundary and zigV the common layer area; the
// remaining abscissae are generated at init from the standard recurrence
// exp(-x[i+1]) = exp(-x[i]) + v/x[i], which closes exactly at x[256] = 0
// for these two constants.
const (
	zigR = 7.69711747013104972
	zigV = 0.0039496598225815571993
)

var (
	zigX [257]float64 // layer widths, decreasing: zigX[0] = v*e^r, ..., zigX[256] = 0
	zigY [257]float64 // zigY[i] = exp(-zigX[i]) for i >= 1, increasing to zigY[256] = 1
	zigW [256]float64 // zigX[i] * 2^-53: pre-scaled so the hot path multiplies once
)

func init() {
	zigX[0] = zigV * math.Exp(zigR)
	zigX[1] = zigR
	for i := 2; i <= 255; i++ {
		zigX[i] = -math.Log(math.Exp(-zigX[i-1]) + zigV/zigX[i-1])
	}
	zigX[256] = 0
	for i := 1; i <= 256; i++ {
		zigY[i] = math.Exp(-zigX[i])
	}
	for i := 0; i < 256; i++ {
		// The power-of-two scaling is exact, so mantissa*zigW[i] rounds to
		// the same float64 as (mantissa*2^-53)*zigX[i].
		zigW[i] = zigX[i] * (1.0 / (1 << 53))
	}
}

// ZigAccept is the accept-fast case of the exponential ziggurat: given 64
// uniform bits it returns the candidate sample and whether it is accepted
// outright (strictly inside its layer, nonzero). Bits 0..7 pick the layer
// and bits 11..63 form the mantissa, so the two are independent. It is
// exported — together with ExpUnitSlow — so simulation hot loops can
// inline the common path; consume the pair exactly as ExpUnit does.
func ZigAccept(u uint64) (float64, bool) {
	i := u & 0xFF
	x := float64(u>>11) * zigW[i]
	return x, x > 0 && x < zigX[i+1]
}

// ExpUnitSlow finishes an ExpUnit draw whose first 64 bits u were not
// accepted by ZigAccept: the base-layer tail, the wedge test (and, on
// rejection or a zero mantissa, fresh draws).
func (r *RNG) ExpUnitSlow(u uint64) float64 {
	for {
		i := u & 0xFF
		x := float64(u>>11) * zigW[i]
		if x > 0 {
			if x < zigX[i+1] {
				return x // fully under the curve within this layer
			}
			if i == 0 {
				// Beyond zigR: by memorylessness the tail is zigR + Exp(1),
				// sampled by inversion on the open interval.
				return zigR - math.Log(r.openUnit())
			}
			// Wedge: the point (x, y) with y uniform over the layer's
			// vertical extent is accepted iff it lies under exp(-x).
			if zigY[i]+r.Float64()*(zigY[i+1]-zigY[i]) < math.Exp(-x) {
				return x
			}
		}
		// Zero mantissa (prob 2^-53, keeps the support open) or wedge
		// rejection: redraw.
		u = r.Uint64()
	}
}

// ExpUnit returns a unit-rate exponential sample via the ziggurat method:
// the common case costs one Uint64, one multiply and two compares — no
// Log. Like ExpFloat64 it never returns 0 or +Inf. Scale by 1/rate for
// other rates; the simulator's schedulers use it for every inter-event
// gap.
func (r *RNG) ExpUnit() float64 {
	u := r.Uint64()
	if x, ok := ZigAccept(u); ok {
		return x
	}
	return r.ExpUnitSlow(u)
}

// FillExp fills dst with independent exponential samples of the given rate
// — the batched gap sampler for simulator hot loops (one bounds-checked
// call per batch rather than per event). It panics if rate <= 0.
func (r *RNG) FillExp(dst []float64, rate float64) {
	if rate <= 0 {
		panic("rng: FillExp called with rate <= 0")
	}
	inv := 1 / rate
	for i := range dst {
		dst[i] = r.ExpUnit() * inv
	}
}

// GammaInt returns a Gamma(k, 1) sample for an integer shape k >= 1 — the
// distribution of the sum of k independent unit exponentials. It is the
// time-bridging primitive of the batched simulator: instead of drawing k
// per-event exponential gaps, a chunk of k events advances the clock by one
// GammaInt(k) draw (scaled by the mean gap), which is exactly equidistributed
// with the per-event sum. k = 1 delegates to the ziggurat ExpUnit; k >= 2
// uses the Marsaglia–Tsang squeeze method (one normal, one uniform and a few
// multiplies per acceptance; the squeeze accepts ~98% of candidates without
// a Log). It panics if k < 1.
func (r *RNG) GammaInt(k int) float64 {
	if k < 1 {
		panic("rng: GammaInt called with shape < 1")
	}
	if k == 1 {
		return r.ExpUnit()
	}
	// Marsaglia & Tsang (2000): for shape a >= 1, with d = a - 1/3 and
	// c = 1/sqrt(9d), the candidate d·(1 + c·x)³ for x ~ N(0, 1) is
	// accepted when u < 1 − 0.0331·x⁴ (fast squeeze) or
	// log u < x²/2 + d·(1 − v + log v) (exact test). d and c depend only
	// on the shape, so they are cached across same-shape draws.
	if k != r.gammaK {
		r.gammaD = float64(k) - 1.0/3.0
		r.gammaC = 1 / math.Sqrt(9*r.gammaD)
		r.gammaK = k
	}
	d, c := r.gammaD, r.gammaC
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		x2 := x * x
		if u < 1-0.0331*x2*x2 {
			return d * v
		}
		if math.Log(u) < 0.5*x2+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// NormFloat64 returns a standard normal sample using the Marsaglia polar
// method. Two samples are generated per acceptance; the second is cached.
func (r *RNG) NormFloat64() float64 {
	if r.spareValid {
		r.spareValid = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare, r.spareValid = v*f, true
		return u * f
	}
}

// Poisson returns a Poisson-distributed sample with the given mean.
// It uses Knuth's product method for small means and a normal approximation
// with continuity correction for large means (mean > 64), which is accurate
// to well under the Monte-Carlo noise of any experiment in this repository.
// It panics if mean < 0.
func (r *RNG) Poisson(mean float64) int {
	switch {
	case mean < 0:
		panic("rng: Poisson called with negative mean")
	case mean == 0:
		return 0
	case mean <= 64:
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		v := mean + math.Sqrt(mean)*r.NormFloat64() + 0.5
		if v < 0 {
			return 0
		}
		return int(v)
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle performs a Fisher-Yates shuffle over n elements using swap.
// It panics if n < 0.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("rng: Shuffle called with n < 0")
	}
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
