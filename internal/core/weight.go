package core

import (
	"fmt"

	"sparsecut/internal/graph"
)

// WeightRule selects the coefficient w of the non-convex cut-edge update
//
//	x_a ← x_a + w·(x_b − x_a)
//	x_b ← x_b − w·(x_b − x_a)
//
// performed at every K-th tick of the designated cut edge ec = (a, b).
// The update is antisymmetric in (a, b), so the orientation of ec does not
// matter. Any w preserves the sum; w > 1 makes the update non-convex.
type WeightRule int

const (
	// WeightExact uses w* = n1·n2/(n1+n2).
	//
	// Derivation: write µ1, µ2 for the side means and x̄ for the global
	// mean. When both sides are internally mixed (x_a = µ1, x_b = µ2) the
	// update transfers Δ = w·(µ2 − µ1) into side 1. Using
	// n1·µ1 + n2·µ2 = n·x̄, the choice w = n1·n2/n gives side-1 sum
	//
	//	n1·µ1 + (n1·n2/n)(µ2 − µ1) = (n1/n)(n1·µ1 + n2·µ2) = n1·x̄,
	//
	// i.e. both side means land exactly on x̄ in a single swap. This is the
	// library default.
	WeightExact WeightRule = iota

	// WeightPaper uses w = n1 = min(|V1|, |V2|), the paper's literal
	// coefficient. It equals w*·(n/n2), so it agrees with WeightExact
	// asymptotically when n1 ≪ n2 but overshoots by a factor n/n2; at
	// n1 = n2 the swap exchanges the side means instead of annihilating
	// them and the mean component of the variance never contracts —
	// experiment E8 demonstrates this failure mode.
	WeightPaper

	// WeightCustom uses a caller-supplied coefficient (see WithWeight).
	WeightCustom
)

// String names the rule.
func (w WeightRule) String() string {
	switch w {
	case WeightExact:
		return "exact(n1*n2/n)"
	case WeightPaper:
		return "paper(n1)"
	case WeightCustom:
		return "custom"
	default:
		return fmt.Sprintf("weight-rule(%d)", int(w))
	}
}

// ExactWeight returns w* = n1·n2/(n1+n2) for a partition.
func ExactWeight(p *graph.Partition) float64 {
	n1 := float64(p.Size1())
	n2 := float64(p.Size2())
	return n1 * n2 / (n1 + n2)
}

// PaperWeight returns the paper's literal coefficient min(|V1|, |V2|).
func PaperWeight(p *graph.Partition) float64 {
	return float64(p.MinSide())
}

// weightFor resolves a rule to a numeric coefficient.
func weightFor(rule WeightRule, custom float64, p *graph.Partition) (float64, error) {
	switch rule {
	case WeightExact:
		return ExactWeight(p), nil
	case WeightPaper:
		return PaperWeight(p), nil
	case WeightCustom:
		if custom <= 0 {
			return 0, fmt.Errorf("core: custom weight %v must be positive", custom)
		}
		return custom, nil
	default:
		return 0, fmt.Errorf("core: unknown weight rule %d", int(rule))
	}
}
