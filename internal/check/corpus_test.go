package check

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"sparsecut/internal/dist"
)

// TestRegenerateFuzzCorpus rewrites testdata/fuzz/FuzzSchedule from the
// current mutation counterexamples. Opt-in (it modifies the tree): run
// with CHECK_REGEN_CORPUS=1 after changing the protocol, the invariants
// or the action alphabet, and commit the result.
func TestRegenerateFuzzCorpus(t *testing.T) {
	if os.Getenv("CHECK_REGEN_CORPUS") == "" {
		t.Skip("set CHECK_REGEN_CORPUS=1 to regenerate the committed fuzz seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzSchedule")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	fspec, fopt := fuzzSystem()
	for _, mu := range []dist.Mutation{
		dist.MutNackRollbackApplies,
		dist.MutStaleProposalApply,
		dist.MutCommitIgnoresSeq,
		dist.MutNackRoleConfusion,
		dist.MutLaxWatermarkDedup,
	} {
		spec := triangleSpec()
		opt := faultOptions(12)
		opt.Mutation = mu
		res, err := Exhaustive(spec, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Counterexample == nil {
			t.Fatalf("mutation %s produced no counterexample", mu)
		}
		sched, err := EncodeSchedule(fspec, fopt, res.Counterexample.Actions)
		if err != nil {
			t.Fatalf("%s: %v", mu, err)
		}
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(sched)) + ")\n"
		path := filepath.Join(dir, "cex-"+mu.String())
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: %d schedule bytes -> %s", mu, len(sched), path)
	}
}
