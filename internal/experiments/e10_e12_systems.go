package experiments

// E10–E12: beyond the dumbbell (realistic sparse-cut graphs with automatic
// cut detection), the second-order-diffusion baseline from the paper's
// reference [5], and the decentralized message-passing runtime.

import (
	"context"
	"fmt"
	"io"
	"math"
	"time"

	"sparsecut/internal/core"
	"sparsecut/internal/cut"
	"sparsecut/internal/dist"
	"sparsecut/internal/gossip"
	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
	"sparsecut/internal/sim"
	"sparsecut/internal/syncsim"
	"sparsecut/internal/table"
)

func init() {
	register(Experiment{
		ID:    "E10",
		Title: "beyond the dumbbell: planted partitions and walled geometric graphs, auto-detected cuts",
		Claim: "Section 1: A outperforms convex algorithms whenever G1, G2 are internally well connected but poorly connected to each other — including when the cut must be discovered",
		Run:   runE10,
	})
	register(Experiment{
		ID:    "E11",
		Title: "non-convex baseline: first/second-order diffusion (ref [5]) vs Algorithm A",
		Claim: "Introduction: second-order (non-convex) diffusion beats first-order, but both remain cut-limited on the dumbbell; A's targeted non-convexity does not",
		Run:   runE11,
	})
	register(Experiment{
		ID:    "E12",
		Title: "decentralized execution: message-passing runtime, with and without message loss",
		Claim: "Section 1: the algorithm is decentralized — a goroutine-per-node lock/propose/commit protocol over an explicit transport reproduces the simulator's behaviour and degrades gracefully under loss",
		Run:   runE12,
	})
}

func runE10(w io.Writer, p Params) (Outcome, error) {
	p = p.withDefaults()
	out := newOutcome()
	root := rng.New(p.Seed)
	trials := pick(p, 3, 5)

	type workload struct {
		label string
		g     *graph.Graph
		part  *graph.Partition // planted; detection quality is also reported
	}
	var cases []workload

	// Cut sizes are kept genuinely sparse (E[|E12|] ~ 3 and 1 door): with a
	// denser cut, Theorem 1's bound n1/|E12| shrinks and there is nothing
	// for A to win — the experiment is about the sparse-cut regime.
	nPlanted := pick(p, 60, 120)
	pOut := 3.0 / float64(nPlanted*nPlanted/4)
	gP, pP, err := graph.PlantedPartition(root.Split(), nPlanted/2, nPlanted/2, 0.6, pOut, 500)
	if err != nil {
		return out, err
	}
	cases = append(cases, workload{"planted-partition", gP, pP})

	nRGG := pick(p, 60, 150)
	gW, pW, err := graph.WalledRGG(root.Split(), nRGG, 2.0*graph.ConnectivityRadius(nRGG), 1, 500)
	if err != nil {
		return out, err
	}
	cases = append(cases, workload{"walled-rgg", gW, pW})

	tbl := table.New("E10: auto-detected sparse cuts on realistic graphs",
		"graph", "n", "|E12| planted", "|E12| detected", "phi detected", "Tav(vanilla)", "Tav(A, detected cut)", "speedup")
	for _, c := range cases {
		detected, _, err := cut.Detect(c.g, defaultSpectralOpts())
		if err != nil {
			return out, err
		}
		x0 := gossip.CutIndicator(c.part)
		maxT := 40 * float64(c.g.NumNodes())
		van, err := measureConvex(c.g, x0, 0.5, trials, p.Seed, maxT)
		if err != nil {
			return out, err
		}
		// The paper defines K from the true Tvan of the sides; the spectral
		// 6/lambda2 default overestimates it on irregular graphs, so here we
		// measure Tvan empirically on the detected side subgraphs — the
		// WithTvan estimator pathway.
		tvan1, tvan2, err := measuredSideTvans(detected, p.Seed)
		if err != nil {
			return out, err
		}
		// Algorithm A without a supplied partition: full detection pipeline.
		algA, err := measureAlgorithmA(c.g, x0, trials, p.Seed, maxT,
			core.WithTvan(tvan1, tvan2))
		if err != nil {
			return out, err
		}
		speedup := van.Tav / algA.Tav
		tbl.AddRow(c.label, c.g.NumNodes(), c.part.CutSize(), detected.CutSize(),
			detected.Conductance(), fmtCensored(van.Tav, van.Censored),
			fmtCensored(algA.Tav, algA.Censored), speedup)
		out.Metrics["speedup-"+c.label] = speedup
		out.Metrics["detected-cut-"+c.label] = float64(detected.CutSize())
	}
	return out, render(w, p, tbl)
}

func runE11(w io.Writer, p Params) (Outcome, error) {
	p = p.withDefaults()
	out := newOutcome()
	n := pick(p, 32, 64)
	g, part, x0, err := dumbbellCase(n, 1)
	if err != nil {
		return out, err
	}
	const ratio = 1.353e-1 // e^-2, matching Definition 1's threshold
	maxRounds := 2_000_000

	first, err := syncsim.NewFirstOrder(g, x0)
	if err != nil {
		return out, err
	}
	r1, ok1 := first.RoundsToRatio(ratio, maxRounds)

	beta, err := syncsim.OptimalBeta(g, defaultSpectralOpts())
	if err != nil {
		return out, err
	}
	second, err := syncsim.NewSecondOrder(g, x0, beta)
	if err != nil {
		return out, err
	}
	r2, ok2 := second.RoundsToRatio(ratio, maxRounds)

	algA, err := measureAlgorithmA(g, x0, pick(p, 3, 7), p.Seed, maxTimeFor(n), core.WithPartition(part))
	if err != nil {
		return out, err
	}
	// One asynchronous time unit fires |E| edge clocks = 2|E| node updates;
	// one synchronous round performs n node updates. Equivalent rounds:
	eqRounds := algA.Tav * 2 * float64(g.NumEdges()) / float64(n)

	tbl := table.New(fmt.Sprintf("E11: rounds to varX ratio e^-2, dumbbell n=%d", n),
		"scheme", "rounds (or equivalent)", "converged")
	tbl.AddRow("first-order diffusion", r1, ok1)
	tbl.AddRow(fmt.Sprintf("second-order diffusion (beta=%.3f)", beta), r2, ok2)
	tbl.AddRow("algorithm A (async, node-update-normalised)", eqRounds, algA.Censored == 0)
	if err := render(w, p, tbl); err != nil {
		return out, err
	}
	fmt.Fprintf(w, "\nsecond order speeds up first order by %.2fx (ref [5] predicts ~sqrt); both remain cut-limited, A is not\n",
		float64(r1)/math.Max(1, float64(r2)))
	out.Metrics["rounds-first"] = float64(r1)
	out.Metrics["rounds-second"] = float64(r2)
	out.Metrics["rounds-A-equivalent"] = eqRounds
	return out, nil
}

// E12 reports the *best* variance ratio reached by the horizon, sampled at
// segment boundaries, rather than the final value: Definition 1's averaging
// time is a first-passage notion, and Algorithm A's variance at any fixed
// instant is heavy-tailed (Section 3 allows weak-contraction epochs with
// frequency up to 1/2, and every swap transiently re-inflates varX), so the
// final value fluctuates over orders of magnitude while the best-by-t
// statistic is stable. Ratios are additionally censored at e12RatioFloor —
// five orders beyond Definition 1's e^-2 threshold — below which the
// remaining variance is mixing noise with no information content.
const (
	e12RatioFloor = 1e-6
	e12Segments   = 8
)

func fmtFloored(ratio, floor float64) string {
	if ratio <= floor {
		return fmt.Sprintf("<=%.0e", floor)
	}
	return fmt.Sprintf("%.4g", ratio)
}

func runE12(w io.Writer, p Params) (Outcome, error) {
	p = p.withDefaults()
	out := newOutcome()
	n := pick(p, 12, 16)
	g, part, err := graph.Dumbbell(n/2, n/2, 1)
	if err != nil {
		return out, err
	}
	x0 := gossip.CutIndicator(part)
	var0 := 1.0 // CutIndicator on a symmetric dumbbell has variance 1

	// K sized per the paper's formula K = C·(Tvan1+Tvan2)·ln n ≈ 5 for
	// this dumbbell (C=1, spectral Tvan bounds ≈ 1 per K6 side): swaps
	// spaced a few ticks apart let the sides mix in between, so each swap
	// annihilates the side means instead of amplifying an unmixed gap —
	// with K too small (e.g. 2) early swaps transiently inflate varX by
	// orders of magnitude and the horizon-end ratio becomes heavy-tailed.
	const epochK = 4
	weight := core.ExactWeight(part)
	duration := pick(p, 30.0, 60.0)
	scale := 8 * time.Millisecond

	tbl := table.New(fmt.Sprintf("E12: message-passing runtime vs simulator, dumbbell n=%d, sparse-cut rule, t=%g", n, duration),
		"execution", "drop rate", "exchanges", "aborted", "best var ratio", "mean drift")

	// Reference: the identical rule (same partition, K, weight) driven by
	// the sequential event simulator on the same horizon and seed, sampled
	// at the same segment boundaries as the runtime below.
	alg, err := core.New(g, x0, core.WithPartition(part),
		core.WithEpochTicks(epochK), core.WithWeight(weight))
	if err != nil {
		return out, err
	}
	eng, err := sim.NewEngine(g, alg, sim.WithSeed(p.Seed))
	if err != nil {
		return out, err
	}
	simBest := math.Inf(1)
	var events int64
	for i := 1; i <= e12Segments; i++ {
		_, events = eng.Run(sim.Until(duration * float64(i) / e12Segments))
		simBest = math.Min(simBest, alg.Variance()/var0)
	}
	simRatio := math.Max(simBest, e12RatioFloor)
	tbl.AddRow("simulator", "-", events, 0, fmtFloored(simBest, e12RatioFloor), math.Abs(alg.Mean()))
	out.Metrics["ratio@sim"] = simRatio

	for _, drop := range []float64{0, 0.05, 0.2} {
		// A fresh rule per run: the epoch tick counter is runtime state.
		rule, err := dist.NewSparseCutRule(part, part.CutEdges()[0], epochK, weight)
		if err != nil {
			return out, err
		}
		var tr dist.Transport = dist.NewChanTransport(4 * g.NumNodes())
		if drop > 0 {
			tr, err = dist.NewDropTransport(tr, drop, rng.New(p.Seed+uint64(drop*100)))
			if err != nil {
				return out, err
			}
		}
		cl, err := dist.NewCluster(g, x0, rule, dist.ClusterConfig{
			TimeScale: scale,
			Seed:      p.Seed,
			Transport: tr,
		})
		if err != nil {
			return out, err
		}
		best := math.Inf(1)
		for i := 0; i < e12Segments; i++ {
			if err := cl.Run(context.Background(), duration/e12Segments); err != nil {
				return out, err
			}
			best = math.Min(best, cl.Variance()/var0)
		}
		ratio := math.Max(best, e12RatioFloor)
		tbl.AddRow("runtime", drop, cl.Exchanges(), cl.Aborted(), fmtFloored(best, e12RatioFloor), math.Abs(cl.Mean()))
		out.Metrics[fmt.Sprintf("ratio@drop=%g", drop)] = ratio
		out.Metrics[fmt.Sprintf("aborted@drop=%g", drop)] = float64(cl.Aborted())
		if drop == 0 {
			out.Metrics["runtime-vs-sim"] = ratio / simRatio
		}
	}
	if err := render(w, p, tbl); err != nil {
		return out, err
	}
	if out.Metrics["ratio@drop=0"] <= e12RatioFloor && simRatio <= e12RatioFloor {
		fmt.Fprintf(w, "\nlossless runtime and simulator both fully converged below the %.0e resolution floor by t=%g (first-passage sampling at %d segment boundaries)\n",
			e12RatioFloor, duration, e12Segments)
	} else {
		fmt.Fprintf(w, "\nlossless runtime best-by-t var ratio within %.2fx of the simulator (first-passage sampling at %d segment boundaries, censored at %.0e)\n",
			out.Metrics["runtime-vs-sim"], e12Segments, e12RatioFloor)
	}
	return out, nil
}
