package check

import (
	"fmt"

	"sparsecut/internal/rng"
)

// Exhaustive explores every schedule of length up to opt.MaxDepth by DFS
// with state-hash deduplication, stopping at the first invariant violation
// or when the opt.MaxStates budget is spent (Result.Truncated). With the
// budget untouched and no counterexample, every state reachable within the
// configured bounds satisfies every invariant.
func Exhaustive(spec Spec, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	w, err := newWorld(spec, opt)
	if err != nil {
		return nil, err
	}
	e := &explorer{spec: spec, opt: opt, res: &Result{}, visited: make(map[uint64]int)}
	e.dfs(w, 0)
	return e.res, nil
}

type explorer struct {
	spec Spec
	opt  Options
	res  *Result
	// visited maps a state hash to the largest remaining depth it has been
	// explored with: a revisit with no more depth to spend is a safe cut,
	// a revisit with more depth re-explores (deeper schedules may exist
	// below it).
	visited map[uint64]int
	path    []Action
}

// dfs explores from w; false aborts the whole search (violation found or
// state budget spent).
func (e *explorer) dfs(w *world, depth int) bool {
	rem := e.opt.MaxDepth - depth
	h := w.hash()
	if prev, ok := e.visited[h]; ok && prev >= rem {
		e.res.Deduped++
		return true
	}
	e.visited[h] = rem
	e.res.StatesExplored++
	if depth > e.res.DeepestDepth {
		e.res.DeepestDepth = depth
	}
	if e.res.StatesExplored >= e.opt.MaxStates {
		e.res.Truncated = true
		return false
	}
	if rem <= 0 {
		return true
	}
	for _, a := range w.enabled() {
		w2 := w.clone()
		e.res.Transitions++
		err := w2.apply(a)
		e.path = append(e.path, a)
		if err != nil {
			if v, ok := err.(*Violation); ok {
				e.res.Counterexample = newTrace(e.spec, e.opt, e.path, v)
				e.path = e.path[:len(e.path)-1]
				return false
			}
			// enabled() never yields inapplicable actions; tolerate anyway.
			e.path = e.path[:len(e.path)-1]
			continue
		}
		ok := e.dfs(w2, depth+1)
		e.path = e.path[:len(e.path)-1]
		if !ok {
			return false
		}
	}
	return true
}

// RandomWalk runs `walks` independent seeded random schedules of length up
// to opt.MaxDepth, stopping at the first violation. It scales to systems
// whose bounded state space is too large for Exhaustive; the price is that
// a clean result is evidence, not proof.
func RandomWalk(spec Spec, opt Options, seed uint64, walks int) (*Result, error) {
	opt = opt.withDefaults()
	if walks <= 0 {
		walks = 1
	}
	r := rng.New(seed)
	res := &Result{}
	for k := 0; k < walks; k++ {
		w, err := newWorld(spec, opt)
		if err != nil {
			return nil, err
		}
		var path []Action
		for depth := 0; depth < opt.MaxDepth; depth++ {
			acts := w.enabled()
			if len(acts) == 0 {
				break
			}
			a := acts[r.Intn(len(acts))]
			path = append(path, a)
			res.Transitions++
			res.StatesExplored++
			if depth+1 > res.DeepestDepth {
				res.DeepestDepth = depth + 1
			}
			if err := w.apply(a); err != nil {
				if v, ok := err.(*Violation); ok {
					res.Counterexample = newTrace(spec, opt, path, v)
					return res, nil
				}
				return nil, err
			}
		}
		res.Walks++
	}
	return res, nil
}

// RunSchedule drives one world by a schedule byte-string: byte i selects
// among the actions enabled at step i (index modulo their count). The
// schedule ends at its last byte or when no action is enabled. This is the
// decoder the fuzz harness uses; counterexample traces re-encode into the
// same format via EncodeSchedule to seed its corpus. Returns the actions
// taken and the violation, if any.
func RunSchedule(spec Spec, opt Options, schedule []byte) ([]Action, *Violation, error) {
	opt = opt.withDefaults()
	w, err := newWorld(spec, opt)
	if err != nil {
		return nil, nil, err
	}
	var path []Action
	for _, b := range schedule {
		acts := w.enabled()
		if len(acts) == 0 {
			break
		}
		a := acts[int(b)%len(acts)]
		path = append(path, a)
		if err := w.apply(a); err != nil {
			if v, ok := err.(*Violation); ok {
				return path, v, nil
			}
			return path, nil, err
		}
	}
	return path, nil, nil
}

// EncodeSchedule re-expresses an action sequence as a schedule byte-string
// (the inverse of RunSchedule's decoding): byte i is the index of action i
// in the enabled-action list at that step. It fails if an action is not
// enabled at its step under opt's budgets.
func EncodeSchedule(spec Spec, opt Options, actions []Action) ([]byte, error) {
	opt = opt.withDefaults()
	w, err := newWorld(spec, opt)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(actions))
	for i, a := range actions {
		idx := -1
		for j, b := range w.enabled() {
			if a.same(b) {
				idx = j
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("check: action %d (%s) is not enabled at its step", i, a.Op)
		}
		if idx > 255 {
			return nil, fmt.Errorf("check: enabled-action index %d does not fit a schedule byte", idx)
		}
		out = append(out, byte(idx))
		if err := w.apply(a); err != nil {
			if _, ok := err.(*Violation); ok && i == len(actions)-1 {
				break // the recorded violation, at the recorded last step
			}
			return nil, err
		}
	}
	return out, nil
}
