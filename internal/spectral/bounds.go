package spectral

import (
	"fmt"
	"math"

	"sparsecut/internal/graph"
)

// SideTvanBounds computes the analytic vanilla averaging-time bounds 6/λ2
// (TvanBound) for the two induced side subgraphs of a partition. A
// single-node side averages instantly, so its bound is 0. These are the
// Tvan(G1), Tvan(G2) estimates the paper's epoch formula
// K = ⌈C·(Tvan1+Tvan2)·ln n⌉ consumes, and the inputs to TheoremTwoBound.
func SideTvanBounds(p *graph.Partition, opts Options) (tvan1, tvan2 float64, err error) {
	for i, s := range []graph.Side{graph.Side1, graph.Side2} {
		sub, _ := p.Subgraph(s)
		var tv float64
		if sub.NumNodes() < 2 {
			tv = 0
		} else {
			tv, err = TvanBound(sub, opts)
			if err != nil {
				return 0, 0, fmt.Errorf("spectral: TvanBound(%v side): %w", s, err)
			}
		}
		if i == 0 {
			tvan1 = tv
		} else {
			tvan2 = tv
		}
	}
	return tvan1, tvan2, nil
}

// TheoremTwoBound returns the paper's Theorem 2 prediction shape for
// Algorithm A's averaging time, ln n · (1 + tvan1 + tvan2), scaled by the
// epoch constant C when it exceeds the default 1 (the swap period K is
// proportional to C, so a deliberately inflated C stretches the bound
// linearly).
//
// The additive 1 inside the parenthesis is the mean inter-tick time of the
// designated cut edge ec (a rate-1 Poisson clock): no epoch can complete
// faster than one ec tick, a floor Theorem 2's asymptotic form absorbs
// into its hidden constant but a finite-n ceiling must carry explicitly —
// on clique sides the spectral Tvan bounds are Θ(1/n) and would otherwise
// send the ceiling to zero while the algorithm still waits for ec.
//
// The theorem hides an absolute constant; callers multiply by a documented
// margin factor (DESIGN.md §9) before using it as a PASS/FAIL ceiling.
// n below 2 returns 0.
func TheoremTwoBound(n int, tvan1, tvan2, epochC float64) float64 {
	if n < 2 {
		return 0
	}
	c := math.Max(epochC, 1)
	// The ln n factor never helps below e: the algorithm still needs at
	// least one full epoch, so floor the factor at 1.
	logN := math.Max(math.Log(float64(n)), 1)
	return c * logN * (1 + tvan1 + tvan2)
}
