package syncsim

import (
	"math"
	"testing"

	"sparsecut/internal/gossip"
	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
	"sparsecut/internal/spectral"
)

func TestConstructorValidation(t *testing.T) {
	g := graph.Path(3)
	if _, err := NewFirstOrder(g, []float64{1}); err == nil {
		t.Error("length mismatch not rejected")
	}
	if _, err := NewSecondOrder(g, []float64{1, 2, 3}, 0.9); err == nil {
		t.Error("beta < 1 not rejected")
	}
	if _, err := NewSecondOrder(g, []float64{1, 2, 3}, 2); err == nil {
		t.Error("beta >= 2 not rejected")
	}
}

func TestFirstOrderPreservesMean(t *testing.T) {
	g := graph.Cycle(8)
	r := rng.New(1)
	x0 := gossip.UniformRandom(r, 8)
	d, err := NewFirstOrder(g, x0)
	if err != nil {
		t.Fatal(err)
	}
	m0 := d.Mean()
	for i := 0; i < 100; i++ {
		d.Step()
	}
	if math.Abs(d.Mean()-m0) > 1e-12 {
		t.Errorf("mean drifted %v -> %v", m0, d.Mean())
	}
	if d.Round() != 100 {
		t.Errorf("round = %d", d.Round())
	}
}

func TestSecondOrderPreservesMean(t *testing.T) {
	g := graph.Grid(4, 4)
	r := rng.New(2)
	x0 := gossip.UniformRandom(r, 16)
	d, err := NewSecondOrder(g, x0, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	m0 := d.Mean()
	for i := 0; i < 200; i++ {
		d.Step()
	}
	if math.Abs(d.Mean()-m0) > 1e-10 {
		t.Errorf("mean drifted %v -> %v", m0, d.Mean())
	}
}

func TestFirstOrderConverges(t *testing.T) {
	g := graph.Complete(10)
	x0, err := gossip.Spike(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewFirstOrder(g, x0)
	if err != nil {
		t.Fatal(err)
	}
	rounds, ok := d.RoundsToRatio(1e-6, 10000)
	if !ok {
		t.Fatal("did not converge")
	}
	if rounds <= 0 || rounds > 1000 {
		t.Errorf("rounds = %d", rounds)
	}
	vals := d.Values()
	for _, v := range vals {
		if math.Abs(v-0.1) > 1e-3 {
			t.Fatalf("values not averaged: %v", vals)
		}
	}
}

func TestSecondOrderBeatsFirstOrderOnPath(t *testing.T) {
	// The Muthukrishnan et al. headline: second order with near-optimal beta
	// converges in ~sqrt of the rounds of first order on slowly mixing
	// graphs.
	g := graph.Path(32)
	x0 := gossip.Linear(32)

	first, err := NewFirstOrder(g, x0)
	if err != nil {
		t.Fatal(err)
	}
	r1, ok := first.RoundsToRatio(1e-4, 200000)
	if !ok {
		t.Fatal("first order did not converge")
	}

	beta, err := OptimalBeta(g, spectral.Options{})
	if err != nil {
		t.Fatal(err)
	}
	second, err := NewSecondOrder(g, x0, beta)
	if err != nil {
		t.Fatal(err)
	}
	r2, ok := second.RoundsToRatio(1e-4, 200000)
	if !ok {
		t.Fatal("second order did not converge")
	}
	if float64(r2) > 0.5*float64(r1) {
		t.Errorf("second order %d rounds vs first order %d: expected clear speedup", r2, r1)
	}
}

func TestOptimalBetaRange(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Path(16), graph.Cycle(12), graph.Complete(8)} {
		beta, err := OptimalBeta(g, spectral.Options{})
		if err != nil {
			t.Fatalf("%s: %v", g, err)
		}
		if beta < 1 || beta >= 2 {
			t.Errorf("%s: beta = %v outside [1,2)", g, beta)
		}
	}
}

func TestOptimalBetaRejectsDisconnected(t *testing.T) {
	g := graph.NewBuilder(4).AddEdge(0, 1).AddEdge(2, 3).MustBuild()
	if _, err := OptimalBeta(g, spectral.Options{}); err == nil {
		t.Error("disconnected graph not rejected")
	}
}

func TestValuesIsCopy(t *testing.T) {
	g := graph.Path(2)
	d, err := NewFirstOrder(g, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	v := d.Values()
	v[0] = 99
	if d.Values()[0] == 99 {
		t.Error("Values aliased internal state")
	}
}

func TestNames(t *testing.T) {
	g := graph.Path(2)
	f, err := NewFirstOrder(g, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSecondOrder(g, []float64{0, 1}, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() == s.Name() || f.Name() == "" {
		t.Error("bad names")
	}
}

func TestRoundsToRatioZeroVariance(t *testing.T) {
	g := graph.Path(2)
	d, err := NewFirstOrder(g, []float64{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	rounds, ok := d.RoundsToRatio(0.1, 10)
	if !ok || rounds != 0 {
		t.Errorf("constant start: rounds=%d ok=%v", rounds, ok)
	}
}

func TestRoundsToRatioTimeout(t *testing.T) {
	g := graph.Path(64)
	d, err := NewFirstOrder(g, gossip.Linear(64))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d.RoundsToRatio(1e-12, 3); ok {
		t.Error("3 rounds cannot reach 1e-12 on P_64")
	}
}
