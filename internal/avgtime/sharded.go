package avgtime

// EstimateSharded is the large-run estimator: trials run on the sharded
// windowed PDES engine over an implicit graph (DESIGN.md §13) instead of
// a materialised edge list, so a single 10^6-node replica fits in RAM.
// It serves the vanilla (monotone) kernel only — FlatState is the only
// ShardKernel — which is exactly the regime where the windowed
// last-exceedance interpolation is sound.

import (
	"fmt"

	"sparsecut/internal/gossip"
	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
	"sparsecut/internal/sim"
	"sparsecut/internal/stats"
)

// ShardedOptions tunes EstimateSharded beyond the shared Config.
type ShardedOptions struct {
	// Workers caps the tile-advancing goroutines per trial (<= 1 runs
	// inline). Results are byte-identical for any value.
	Workers int
	// Window is the engine barrier spacing Δ (<= 0 = sim.DefaultWindow).
	// The tracked statistic resolves to within one window.
	Window float64
}

// EstimateSharded measures vanilla averaging time on an implicit graph
// with the sharded engine. Per trial it derives the same two root-stream
// splits as the per-event and batched estimators (one reserved algorithm
// stream, one simulation stream), so seed accounting lines up across
// estimators.
func EstimateSharded(g graph.Implicit, x0 []float64, cfg Config, opt ShardedOptions) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if len(x0) != g.NumNodes() {
		return Result{}, fmt.Errorf("avgtime: initial vector has %d entries for %d nodes", len(x0), g.NumNodes())
	}
	til := g.Tiling()
	bounds := til.Bounds()
	root := rng.New(cfg.Seed)
	res := Result{PerTrial: make([]float64, 0, cfg.Trials)}
	for trial := 0; trial < cfg.Trials; trial++ {
		_ = root.Split() // the algorithm stream: vanilla consumes none, but the derivation order is shared
		simRNG := root.Split()
		st, err := gossip.NewFlatState(x0, bounds)
		if err != nil {
			return Result{}, fmt.Errorf("avgtime: trial %d: %w", trial, err)
		}
		var0 := st.Variance()
		if var0 == 0 {
			res.PerTrial = append(res.PerTrial, 0)
			continue
		}
		eng := sim.NewShardEngine(til, st, simRNG, sim.ShardConfig{
			Workers: opt.Workers,
			Window:  opt.Window,
		})
		tr := eng.RunTracked(sim.Tracked{
			ExceedLevel: cfg.Threshold * var0,
			StopLevel:   cfg.Threshold * cfg.MarginFactor * var0,
			Quiet:       cfg.quietFor(st),
			MaxTime:     cfg.MaxTime,
		})
		if tr.Censored {
			res.Censored++
		}
		res.Events += eng.Events()
		res.PerTrial = append(res.PerTrial, tr.LastExceed)
	}
	q, err := stats.Quantile(res.PerTrial, cfg.Quantile)
	if err != nil {
		return Result{}, err
	}
	res.Tav = q
	res.Mean, res.CI95 = stats.MeanCI95(res.PerTrial)
	return res, nil
}
