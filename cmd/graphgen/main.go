// Command graphgen generates the repository's graph families, reports
// their sparse-cut statistics (conductance, λ2, Theorem 1 bound) and
// optionally exports them as edge lists or Graphviz DOT.
//
// Usage:
//
//	graphgen -type dumbbell -n 64 -cut 1
//	graphgen -type sensor   -n 120 -cut 2 -dot > field.dot
//	graphgen -type planted  -n 80 -edgelist > g.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"sparsecut"
)

func main() {
	var (
		kind     = flag.String("type", "dumbbell", "graph family: dumbbell | planted | sensor")
		n        = flag.Int("n", 64, "total number of nodes")
		cutEdges = flag.Int("cut", 1, "cut edges (dumbbell) or doors (sensor)")
		seed     = flag.Uint64("seed", 1, "random seed")
		dot      = flag.Bool("dot", false, "write Graphviz DOT to stdout")
		edgelist = flag.Bool("edgelist", false, "write edge list to stdout")
	)
	flag.Parse()

	var (
		g    *sparsecut.Graph
		part *sparsecut.Partition
		err  error
	)
	switch *kind {
	case "dumbbell":
		g, part, err = sparsecut.NewDumbbell(*n/2, *n-*n/2, *cutEdges)
	case "planted":
		g, part, err = sparsecut.NewPlantedPartition(*seed, *n/2, *n-*n/2, 0.5, 3.0/float64(*n**n/4))
	case "sensor":
		g, part, err = sparsecut.NewSensorField(*seed, *n, *cutEdges)
	default:
		err = fmt.Errorf("unknown graph family %q", *kind)
	}
	if err != nil {
		fatal(err)
	}

	switch {
	case *dot:
		if err := sparsecut.WriteDOT(os.Stdout, g, part); err != nil {
			fatal(err)
		}
	case *edgelist:
		if err := sparsecut.WriteGraph(os.Stdout, g); err != nil {
			fatal(err)
		}
	default:
		lam2, err := sparsecut.AlgebraicConnectivity(g)
		if err != nil {
			fatal(err)
		}
		detected, err := sparsecut.FindSparseCut(g)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("graph:               %s\n", g)
		fmt.Printf("planted partition:   %s\n", part)
		fmt.Printf("detected partition:  %s\n", detected)
		fmt.Printf("lambda2:             %.6g (Tvan bound 6/lambda2 = %.4g)\n", lam2, 6/lam2)
		fmt.Printf("theorem 1 bound:     min(n1,n2)/|E12| = %.4g\n", part.TheoremOneBound())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
