package gossip

// FlatState is the memory-lean single-replica run state for the sharded
// large-run engine: one flat float64 per node plus O(tiles) moment
// accumulators — no per-node heap objects, no per-event allocation. It is
// the single-replica analogue of BatchState, tiled instead of
// replica-major: each tile of the graph tiling owns a contiguous value
// range and its own (sum, sumSq) moments, so parallel tile workers touch
// disjoint state and the global variance combines per-tile moments in a
// fixed order — a deterministic reduction for any worker count.
//
// Like State, values are stored centred by the initial mean and each
// exchange replays the uncentred arithmetic through the offset, keeping
// the floating-point trajectory bit-identical to the uncentred per-event
// simulator. Moments are maintained incrementally with the same fused
// updates as State.AverageEdge and re-accumulated from scratch every
// resyncInterval updates per tile to stop drift.
//
// FlatState assumes vanilla (pairwise-average) exchanges: it implements
// sim.ShardKernel for the monotone hot path only.

import (
	"fmt"
	"sort"
)

// FlatState holds tiled single-replica averaging state.
type FlatState struct {
	off float64   // initial mean; stored values are x - off
	y   []float64 // centred node values

	lo, hi []int32   // tile node ranges, ascending
	sum    []float64 // per-tile Σ y, maintained incrementally
	sumSq  []float64 // per-tile Σ y², maintained incrementally
	ops    []int64   // per-tile updates since the last resync
}

// NewFlatState builds tiled state from initial values and tile bounds
// ([lo, hi) pairs ascending and contiguous over [0, len(x0))), copying x0.
func NewFlatState(x0 []float64, bounds [][2]int32) (*FlatState, error) {
	n := len(x0)
	if n == 0 {
		return nil, fmt.Errorf("gossip: FlatState needs at least one node")
	}
	if len(bounds) == 0 {
		return nil, fmt.Errorf("gossip: FlatState needs at least one tile")
	}
	var next int32
	for i, b := range bounds {
		if b[0] != next || b[1] <= b[0] {
			return nil, fmt.Errorf("gossip: tile %d bounds [%d,%d) not contiguous after %d", i, b[0], b[1], next)
		}
		next = b[1]
	}
	if int(next) != n {
		return nil, fmt.Errorf("gossip: tiles cover [0,%d) but state has %d nodes", next, n)
	}
	mean := 0.0
	for _, v := range x0 {
		mean += v
	}
	mean /= float64(n)
	s := &FlatState{
		off:   mean,
		y:     make([]float64, n),
		lo:    make([]int32, len(bounds)),
		hi:    make([]int32, len(bounds)),
		sum:   make([]float64, len(bounds)),
		sumSq: make([]float64, len(bounds)),
		ops:   make([]int64, len(bounds)),
	}
	for i := range x0 {
		s.y[i] = x0[i] - mean
	}
	for i, b := range bounds {
		s.lo[i], s.hi[i] = b[0], b[1]
		s.resyncTile(i)
	}
	return s, nil
}

// N returns the node count.
func (s *FlatState) N() int { return len(s.y) }

// Tiles returns the tile count.
func (s *FlatState) Tiles() int { return len(s.lo) }

// Value returns node u's current (uncentred) value.
func (s *FlatState) Value(u int) float64 { return s.y[u] + s.off }

// Mean returns the current global mean — conserved by averaging up to
// floating-point roundoff.
func (s *FlatState) Mean() float64 {
	var sum float64
	for i := range s.sum {
		sum += s.sum[i]
	}
	return sum/float64(len(s.y)) + s.off
}

// Variance returns the population variance, combining per-tile moments
// in tile order (deterministic for any worker count), clamped at zero.
func (s *FlatState) Variance() float64 {
	var sum, sumSq float64
	for i := range s.sum {
		sum += s.sum[i]
		sumSq += s.sumSq[i]
	}
	n := float64(len(s.y))
	m := sum / n
	v := sumSq/n - m*m
	if v < 0 {
		v = 0
	}
	return v
}

// average replays State.AverageEdge's uncentred arithmetic for the pair
// (i, j) and returns the moment deltas.
func (s *FlatState) average(i, j int32) (dSum, dSumSq float64) {
	yi, yj := s.y[i], s.y[j]
	c := ((yi + s.off) + (yj + s.off)) / 2
	c -= s.off
	s.y[i] = c
	s.y[j] = c
	cc := c * c
	return c + c - yi - yj, cc + cc - yi*yi - yj*yj
}

// TickTile applies a chunk of internal exchanges to tile t. Both
// endpoints must lie inside the tile; only tile t's state is touched, so
// distinct tiles may tick concurrently.
func (s *FlatState) TickTile(t int, us, vs []int32) {
	var dSum, dSumSq float64
	for k := range us {
		a, b := s.average(us[k], vs[k])
		dSum += a
		dSumSq += b
	}
	s.sum[t] += dSum
	s.sumSq[t] += dSumSq
	s.ops[t] += int64(len(us))
	if s.ops[t] >= resyncInterval {
		s.resyncTile(t)
	}
}

// Exchange applies one boundary exchange between nodes in (possibly)
// different tiles. It must only be called from the single-threaded
// barrier phase.
func (s *FlatState) Exchange(u, v int32) {
	yi, yj := s.y[u], s.y[v]
	c := ((yi + s.off) + (yj + s.off)) / 2
	c -= s.off
	s.y[u] = c
	s.y[v] = c
	cc := c * c
	tu, tv := s.tileOf(u), s.tileOf(v)
	s.sum[tu] += c - yi
	s.sumSq[tu] += cc - yi*yi
	s.sum[tv] += c - yj
	s.sumSq[tv] += cc - yj*yj
	s.bumpOps(tu)
	if tv != tu {
		s.bumpOps(tv)
	}
}

func (s *FlatState) bumpOps(t int) {
	s.ops[t]++
	if s.ops[t] >= resyncInterval {
		s.resyncTile(t)
	}
}

// tileOf locates the tile containing node u.
func (s *FlatState) tileOf(u int32) int {
	return sort.Search(len(s.hi), func(i int) bool { return s.hi[i] > u })
}

// resyncTile re-accumulates tile t's moments from the values, bounding
// incremental drift.
func (s *FlatState) resyncTile(t int) {
	var sum, sumSq float64
	for _, v := range s.y[s.lo[t]:s.hi[t]] {
		sum += v
		sumSq += v * v
	}
	s.sum[t] = sum
	s.sumSq[t] = sumSq
	s.ops[t] = 0
}
