package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func quickRun(t *testing.T, id string) (Outcome, string) {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	var buf bytes.Buffer
	out, err := e.Run(&buf, Params{Quick: true, Seed: 7})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if buf.Len() == 0 {
		t.Fatalf("%s produced no output", id)
	}
	return out, buf.String()
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("registry has %d experiments, want 14", len(all))
	}
	for i, e := range all {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("experiment %d incomplete: %+v", i, e)
		}
	}
	// Sorted numerically, not lexically (E10 after E9).
	if all[8].ID != "E9" || all[9].ID != "E10" {
		t.Errorf("ordering wrong: %s, %s", all[8].ID, all[9].ID)
	}
	if _, ok := ByID("E999"); ok {
		t.Error("bogus ID found")
	}
}

func TestE1ConvexScalesAtLeastLinearly(t *testing.T) {
	out, text := quickRun(t, "E1")
	slope := out.Metrics["slope"]
	if slope < 0.7 {
		t.Errorf("E1 slope %v: convex Tav should scale ~linearly in n", slope)
	}
	if !strings.Contains(text, "vanilla") {
		t.Error("table missing vanilla rows")
	}
}

func TestE2CutSizeScaling(t *testing.T) {
	out, _ := quickRun(t, "E2")
	// Tav should decrease with cut size: slope ~ -1 (loose band).
	slope := out.Metrics["slope"]
	if slope > -0.4 {
		t.Errorf("E2 slope %v: Tav should fall with |E12|", slope)
	}
}

func TestE3AlgorithmAPolylog(t *testing.T) {
	out, _ := quickRun(t, "E3")
	slope := out.Metrics["slope"]
	if slope > 0.6 {
		t.Errorf("E3 slope %v: A should scale sub-linearly (polylog)", slope)
	}
}

func TestE4SeparationGrows(t *testing.T) {
	out, _ := quickRun(t, "E4")
	if out.Metrics["speedup-growth"] <= 1 {
		t.Errorf("E4 speedup growth %v: separation should widen with n", out.Metrics["speedup-growth"])
	}
	for k, v := range out.Metrics {
		if strings.HasPrefix(k, "speedup@") && v <= 1 {
			t.Errorf("E4 %s = %v: A should beat vanilla at every size", k, v)
		}
	}
}

func TestE5TrajectoriesSeparate(t *testing.T) {
	out, text := quickRun(t, "E5")
	van := out.Metrics["final-ratio-vanilla"]
	algA := out.Metrics["final-ratio-algorithm-A"]
	if algA >= van {
		t.Errorf("E5: A final ratio %v not below vanilla %v", algA, van)
	}
	if algA > 1e-8 {
		t.Errorf("E5: A final ratio %v should be tiny", algA)
	}
	if !strings.Contains(text, "series,t,value") {
		t.Error("E5 missing CSV header")
	}
}

func TestE6DominanceHolds(t *testing.T) {
	out, _ := quickRun(t, "E6")
	if out.Metrics["hard-violations"] != 0 {
		t.Errorf("E6: %v increments exceeded the hard bound log n", out.Metrics["hard-violations"])
	}
	if out.Metrics["frac-weak"] > 0.5 {
		t.Errorf("E6: weak-contraction fraction %v exceeds Lemma 1's 1/2", out.Metrics["frac-weak"])
	}
	if out.Metrics["mean-increment"] >= 0 {
		t.Errorf("E6: mean increment %v not contracting", out.Metrics["mean-increment"])
	}
}

func TestE7SubGaussianTail(t *testing.T) {
	out, _ := quickRun(t, "E7")
	beta := out.Metrics["beta"]
	if beta < 0.25 || beta > 1 {
		t.Errorf("E7 beta %v outside plausible band around 0.5", beta)
	}
	if out.Metrics["r2"] < 0.9 {
		t.Errorf("E7 fit R2 %v", out.Metrics["r2"])
	}
}

func TestE8WeightAblation(t *testing.T) {
	out, _ := quickRun(t, "E8")
	// Exact weight annihilates the means.
	if c := out.Metrics["contraction-symmetric-w* (exact)"]; c > 1e-9 {
		t.Errorf("E8: exact weight contraction %v, want ~0", c)
	}
	// Paper weight on symmetric sides leaves the mass in place (factor 1).
	if c := out.Metrics["contraction-symmetric-n1 (paper)"]; math.Abs(c-1) > 1e-9 {
		t.Errorf("E8: paper weight on symmetric sides gave %v, want 1", c)
	}
	// On asymmetric sides the paper weight is much closer to exact.
	if c := out.Metrics["contraction-asymmetric-n1 (paper)"]; c > 0.5 {
		t.Errorf("E8: paper weight on asymmetric sides gave %v, want < 0.5", c)
	}
}

func TestE9EpochSweep(t *testing.T) {
	out, _ := quickRun(t, "E9")
	// Generous C must converge.
	if out.Metrics["tav@C=8"] <= 0 {
		t.Error("E9: C=8 did not produce a positive Tav")
	}
	// Inflated Tvan estimates must inflate K.
	if out.Metrics["K-inflated"] < out.Metrics["K-spectral"] {
		t.Errorf("E9: inflated estimator K %v below spectral %v",
			out.Metrics["K-inflated"], out.Metrics["K-spectral"])
	}
}

func TestE10RealisticGraphs(t *testing.T) {
	out, _ := quickRun(t, "E10")
	for _, label := range []string{"planted-partition", "walled-rgg"} {
		if s := out.Metrics["speedup-"+label]; s <= 1 {
			t.Errorf("E10: %s speedup %v, want > 1", label, s)
		}
		if out.Metrics["detected-cut-"+label] <= 0 {
			t.Errorf("E10: %s no cut detected", label)
		}
	}
}

func TestE11DiffusionBaseline(t *testing.T) {
	out, _ := quickRun(t, "E11")
	if out.Metrics["rounds-second"] >= out.Metrics["rounds-first"] {
		t.Errorf("E11: second order (%v) not faster than first (%v)",
			out.Metrics["rounds-second"], out.Metrics["rounds-first"])
	}
	if out.Metrics["rounds-A-equivalent"] >= out.Metrics["rounds-first"] {
		t.Errorf("E11: A equivalent rounds (%v) not below first-order (%v)",
			out.Metrics["rounds-A-equivalent"], out.Metrics["rounds-first"])
	}
}

func TestE12DistributedRuntime(t *testing.T) {
	out, _ := quickRun(t, "E12")
	if r := out.Metrics["ratio@drop=0"]; r > 1e-3 {
		t.Errorf("E12: lossless runtime ratio %v, want converged", r)
	}
	if out.Metrics["aborted@drop=0.2"] <= 0 {
		t.Error("E12: 20%% drop produced no aborts")
	}
	// Under moderate loss the protocol still makes clear progress; at 20%
	// loss progress is best-effort and only reported, not asserted.
	if r := out.Metrics["ratio@drop=0.05"]; r > 0.5 {
		t.Errorf("E12: 5%% drop ratio %v, want clear progress", r)
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite skipped in short mode")
	}
	var buf bytes.Buffer
	metrics, err := RunAll(&buf, Params{Quick: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(metrics) == 0 {
		t.Fatal("no metrics collected")
	}
	for _, id := range []string{"E1", "E12"} {
		found := false
		for k := range metrics {
			if strings.HasPrefix(k, id+"/") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("RunAll missing metrics for %s", id)
		}
	}
	if !strings.Contains(buf.String(), "===== E7") {
		t.Error("RunAll output missing experiment banner")
	}
}

func TestE13TimingModelRobustness(t *testing.T) {
	out, _ := quickRun(t, "E13")
	for _, model := range []string{"edge-clock (paper)", "node-clock (Boyd et al.)", "random rates U[0.5,2]"} {
		if s := out.Metrics["speedup-"+model]; s <= 1 {
			t.Errorf("E13: %s speedup %v, want > 1", model, s)
		}
	}
}

func TestE14AllCutEdgesExtension(t *testing.T) {
	out, _ := quickRun(t, "E14")
	// Epochs are mixing-limited: the correctly scaled extension must be
	// roughly neutral (the paper's single fixed ec is essentially optimal).
	if g := out.Metrics["gain@k=4"]; g < 0.5 || g > 3 {
		t.Errorf("E14: gain at k=4 is %v, want ~1", g)
	}
}

func TestMarkdownRendering(t *testing.T) {
	e, _ := ByID("E8")
	var buf bytes.Buffer
	if _, err := e.Run(&buf, Params{Quick: true, Markdown: true}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "| --- |") {
		t.Error("markdown mode did not render markdown")
	}
}
