package check

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"sparsecut/internal/dist"
	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
)

func triangleSpec() Spec {
	return Spec{Graph: graph.Complete(3), X0: []float64{1, 5, 0}, Rule: Vanilla()}
}

func faultOptions(depth int) Options {
	return Options{MaxDepth: depth, Drops: true, Dups: true, Crashes: true}
}

// TestExhaustiveTriangleClean is the tentpole guarantee: every state of a
// 3-node clique reachable within the default budgets — arbitrary delivery
// order, drops, duplicated replies, timeouts firing at any point, proposal
// retransmissions, and a crash/recovery — satisfies every invariant.
func TestExhaustiveTriangleClean(t *testing.T) {
	res, err := Exhaustive(triangleSpec(), faultOptions(12))
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample != nil {
		t.Fatalf("correct protocol violated an invariant:\n%+v", res.Counterexample.Violation)
	}
	if res.Truncated {
		t.Fatalf("state budget exhausted after %d states; exploration incomplete", res.StatesExplored)
	}
	// The space is explored deterministically; the exact count pins the
	// enumeration so accidental action-alphabet changes are visible.
	if res.StatesExplored < 50_000 {
		t.Fatalf("suspiciously small exploration: %d states", res.StatesExplored)
	}
	if res.DeepestDepth != 12 {
		t.Fatalf("deepest depth %d, want 12", res.DeepestDepth)
	}
	t.Logf("explored %d states, %d transitions (%d deduped)", res.StatesExplored, res.Transitions, res.Deduped)
}

// TestExhaustiveSparseCutClean runs the checker over Algorithm A's exchange
// rule on a 4-node path cut in the middle, including the designated edge's
// tick counter and swap in the explored state.
func TestExhaustiveSparseCutClean(t *testing.T) {
	g := graph.Path(4)
	cut, ok := g.FindEdge(1, 2)
	if !ok {
		t.Fatal("path(4) is missing edge 1-2")
	}
	spec := Spec{
		Graph: g,
		X0:    []float64{2, 4, -1, 3},
		Rule:  SparseCut([]int{0, 0, 1, 1}, int(cut), 2, 0.5),
	}
	opt := Options{MaxDepth: 10, Drops: true, Crashes: true}
	res, err := Exhaustive(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample != nil {
		t.Fatalf("sparse-cut rule violated an invariant:\n%+v", res.Counterexample.Violation)
	}
	if res.Truncated {
		t.Fatal("exploration truncated")
	}
}

// TestMutationsCaught proves the checker catches every seeded protocol bug
// — including the two real bugs it found in this machine's own seed
// (MutNackRoleConfusion, MutLaxWatermarkDedup) — and that each
// counterexample replays deterministically to the identical violation,
// survives a JSON round trip, and re-encodes as a schedule byte-string
// that reproduces it.
func TestMutationsCaught(t *testing.T) {
	mutations := []dist.Mutation{
		dist.MutNackRollbackApplies,
		dist.MutStaleProposalApply,
		dist.MutCommitIgnoresSeq,
		dist.MutNackRoleConfusion,
		dist.MutLaxWatermarkDedup,
	}
	for _, mu := range mutations {
		mu := mu
		t.Run(mu.String(), func(t *testing.T) {
			spec := triangleSpec()
			opt := faultOptions(12)
			opt.Mutation = mu
			res, err := Exhaustive(spec, opt)
			if err != nil {
				t.Fatal(err)
			}
			tr := res.Counterexample
			if tr == nil {
				t.Fatalf("mutation %s not caught in %d states", mu, res.StatesExplored)
			}
			if tr.Mutation != mu.String() {
				t.Fatalf("trace names mutation %q, want %q", tr.Mutation, mu)
			}
			if tr.Violation == nil || tr.Violation.Step != len(tr.Actions) {
				t.Fatalf("violation %+v does not sit at the trace's last action (%d)", tr.Violation, len(tr.Actions))
			}

			// The replayer must reproduce the identical violation...
			v, err := Replay(tr)
			if err != nil {
				t.Fatalf("replay failed: %v", err)
			}
			if !tr.Violation.Same(v) {
				t.Fatalf("replayed violation %+v differs from recorded %+v", v, tr.Violation)
			}

			// ...including after a trip through trace JSON on disk...
			path := filepath.Join(t.TempDir(), "cex.json")
			if err := tr.WriteFile(path); err != nil {
				t.Fatal(err)
			}
			loaded, err := ReadTraceFile(path)
			if err != nil {
				t.Fatal(err)
			}
			v, err = Replay(loaded)
			if err != nil {
				t.Fatalf("replay of loaded trace failed: %v", err)
			}
			if !tr.Violation.Same(v) {
				t.Fatalf("loaded-trace violation %+v differs from recorded %+v", v, tr.Violation)
			}

			// ...and re-encoded as a schedule byte-string (the fuzz format).
			sched, err := EncodeSchedule(spec, opt, tr.Actions)
			if err != nil {
				t.Fatalf("encoding schedule: %v", err)
			}
			_, v, err = RunSchedule(spec, opt, sched)
			if err != nil {
				t.Fatal(err)
			}
			if !tr.Violation.Same(v) {
				t.Fatalf("byte-schedule violation %+v differs from recorded %+v", v, tr.Violation)
			}
			t.Logf("caught at step %d (%s): %s", tr.Violation.Step, tr.Violation.Invariant, tr.Violation.Detail)
		})
	}
}

// TestRandomWalk checks walk mode: clean on the correct protocol, and it
// still finds a seeded bug (with enough walks) without exhaustive search.
func TestRandomWalk(t *testing.T) {
	spec := triangleSpec()
	res, err := RandomWalk(spec, faultOptions(20), 7, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample != nil {
		t.Fatalf("correct protocol violated an invariant on a random walk:\n%+v", res.Counterexample.Violation)
	}
	if res.Walks != 200 {
		t.Fatalf("completed %d walks, want 200", res.Walks)
	}

	opt := faultOptions(20)
	opt.Mutation = dist.MutNackRollbackApplies
	res, err = RandomWalk(spec, opt, 7, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample == nil {
		t.Fatalf("mutation %s not found in 5000 random walks", opt.Mutation)
	}
	if v, err := Replay(res.Counterexample); err != nil || !res.Counterexample.Violation.Same(v) {
		t.Fatalf("walk counterexample does not replay: v=%+v err=%v", v, err)
	}
}

// TestCheckRuleMatchesDistRules pins the checker-local rule to the dist
// package's rules: identical deltas (and identical tick/swap schedules for
// the sparse-cut rule) over the same exchange sequence.
func TestCheckRuleMatchesDistRules(t *testing.T) {
	t.Run("vanilla", func(t *testing.T) {
		g := graph.Complete(3)
		cr, err := buildRule(Vanilla(), g)
		if err != nil {
			t.Fatal(err)
		}
		dr := dist.NewVanillaRule()
		r := rng.New(3)
		for i := 0; i < 200; i++ {
			e := graph.EdgeID(r.Intn(g.NumEdges()))
			xi, xr := r.Float64()*10-5, r.Float64()*10-5
			if got, want := cr.Delta(e, 0, xi, xr), dr.Delta(e, 0, xi, xr); got != want {
				t.Fatalf("step %d: checkRule delta %v, dist delta %v", i, got, want)
			}
		}
	})
	t.Run("sparse-cut", func(t *testing.T) {
		g, part, err := graph.Dumbbell(3, 3, 1)
		if err != nil {
			t.Fatal(err)
		}
		cutEdge := part.CutEdges()[0]
		const k, w = 3, 0.25
		dr, err := dist.NewSparseCutRule(part, cutEdge, k, w)
		if err != nil {
			t.Fatal(err)
		}
		sides := make([]int, g.NumNodes())
		for i := range sides {
			if part.SideOf(graph.NodeID(i)) == graph.Side2 {
				sides[i] = 1
			}
		}
		cr, err := buildRule(SparseCut(sides, int(cutEdge), k, w), g)
		if err != nil {
			t.Fatal(err)
		}
		r := rng.New(5)
		for i := 0; i < 500; i++ {
			e := graph.EdgeID(r.Intn(g.NumEdges()))
			xi, xr := r.Float64()*10-5, r.Float64()*10-5
			if got, want := cr.Delta(e, 0, xi, xr), dr.Delta(e, 0, xi, xr); got != want {
				t.Fatalf("step %d edge %d: checkRule delta %v, dist delta %v", i, e, got, want)
			}
		}
		if cr.ticks != dr.Ticks() || cr.swaps != dr.Swaps() {
			t.Fatalf("checkRule ticks/swaps %d/%d, dist %d/%d", cr.ticks, cr.swaps, dr.Ticks(), dr.Swaps())
		}
		if cr.swaps == 0 {
			t.Fatal("sequence never exercised the swap path")
		}
	})
}

// TestSpecValidation exercises the constructor errors.
func TestSpecValidation(t *testing.T) {
	tri := graph.Complete(3)
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"nil graph", Spec{X0: []float64{1}, Rule: Vanilla()}, "no graph"},
		{"wrong x0 len", Spec{Graph: tri, X0: []float64{1, 2}, Rule: Vanilla()}, "initial values"},
		{"nan x0", Spec{Graph: tri, X0: []float64{1, math.NaN(), 2}, Rule: Vanilla()}, "NaN"},
		{"bad rule kind", Spec{Graph: tri, X0: []float64{1, 2, 3}, Rule: RuleSpec{Kind: "nope"}}, "unknown rule"},
		{"bad sides len", Spec{Graph: tri, X0: []float64{1, 2, 3}, Rule: SparseCut([]int{0, 1}, 0, 1, 0.5)}, "sides"},
		{"non-cut edge", Spec{Graph: tri, X0: []float64{1, 2, 3}, Rule: SparseCut([]int{0, 1, 1}, 2, 1, 0.5)}, "does not cross"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Exhaustive(tc.spec, Options{MaxDepth: 2})
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestEncodeScheduleRejectsForeignAction: an action that is not enabled at
// its step must not silently encode.
func TestEncodeScheduleRejectsForeignAction(t *testing.T) {
	_, err := EncodeSchedule(triangleSpec(), faultOptions(4), []Action{{Op: OpTimeout, Node: 0}})
	if err == nil || !strings.Contains(err.Error(), "not enabled") {
		t.Fatalf("error %v, want 'not enabled'", err)
	}
}
