package flight

import (
	"bytes"
	"strings"
	"testing"
)

// synthDump assembles a dump with three exchanges plus loose records:
//   - (0, 1): the full committed path 0->1 over edge 5;
//   - (2, 7): nack-refused;
//   - (1, 3): timeout abort with a lost LOCK;
//
// and a crash/recover pair that belongs to no exchange.
func synthDump() *Dump {
	rc := New(3, 32)
	// Committed exchange (0,1): initiate/send/recv/hold/propose/apply/commit.
	rc.Record(Record{TimeNs: 100, Seq: 1, X: -2, Init: 0, Node: 0, Peer: 1, Edge: 5, Kind: EvInitiate})
	rc.Record(Record{TimeNs: 100, Seq: 1, X: -2, Init: 0, Node: 0, Peer: 1, Edge: 5, Kind: EvSend, Msg: MsgLock})
	rc.Record(Record{TimeNs: 110, Seq: 1, X: -2, Init: 0, Node: 1, Peer: 0, Edge: 5, Kind: EvRecv, Msg: MsgLock})
	rc.Record(Record{TimeNs: 110, Seq: 1, X: 1.5, Init: 0, Node: 1, Peer: 0, Edge: 5, Kind: EvPendHold})
	rc.Record(Record{TimeNs: 110, Seq: 1, X: 1.5, Init: 0, Node: 1, Peer: 0, Edge: NoNode, Kind: EvSend, Msg: MsgPropose, Re: MsgLock})
	rc.Record(Record{TimeNs: 120, Seq: 1, X: 1.5, Init: 0, Node: 0, Peer: 1, Edge: NoNode, Kind: EvRecv, Msg: MsgPropose, Re: MsgLock})
	rc.Record(Record{TimeNs: 120, Seq: 1, X: 1.5, Init: 0, Node: 0, Peer: 1, Edge: NoNode, Kind: EvApply})
	rc.Record(Record{TimeNs: 120, Seq: 1, Init: 0, Node: 0, Peer: 1, Edge: NoNode, Kind: EvSend, Msg: MsgCommit})
	rc.Record(Record{TimeNs: 130, Seq: 1, Init: 0, Node: 1, Peer: 0, Edge: NoNode, Kind: EvRecv, Msg: MsgCommit})
	rc.Record(Record{TimeNs: 130, Seq: 1, X: 1.5, Init: 0, Node: 1, Peer: 0, Edge: NoNode, Kind: EvCommit})
	// Nack-refused exchange (2,7).
	rc.Record(Record{TimeNs: 105, Seq: 7, X: 3, Init: 2, Node: 2, Peer: 1, Edge: 8, Kind: EvInitiate})
	rc.Record(Record{TimeNs: 105, Seq: 7, X: 3, Init: 2, Node: 2, Peer: 1, Edge: 8, Kind: EvSend, Msg: MsgLock})
	rc.Record(Record{TimeNs: 115, Seq: 7, X: 3, Init: 2, Node: 1, Peer: 2, Edge: 8, Kind: EvRecv, Msg: MsgLock})
	rc.Record(Record{TimeNs: 115, Seq: 7, Init: 2, Node: 1, Peer: 2, Edge: NoNode, Kind: EvSend, Msg: MsgNack, Re: MsgLock})
	rc.Record(Record{TimeNs: 125, Seq: 7, Init: 2, Node: 2, Peer: 1, Edge: NoNode, Kind: EvRecv, Msg: MsgNack, Re: MsgLock})
	rc.Record(Record{TimeNs: 125, Seq: 7, Init: 2, Node: 2, Peer: NoNode, Edge: NoNode, Kind: EvAbort, Flags: ReasonNack})
	// Timeout abort (1,3): LOCK lost in transit.
	rc.Record(Record{TimeNs: 140, Seq: 3, X: 1, Init: 1, Node: 1, Peer: 2, Edge: 9, Kind: EvInitiate})
	rc.Record(Record{TimeNs: 140, Seq: 3, X: 1, Init: 1, Node: 1, Peer: 2, Edge: 9, Kind: EvSend, Msg: MsgLock})
	rc.Record(Record{TimeNs: 145, Seq: 3, X: 1, Init: 1, Node: 1, Peer: 2, Edge: 9, Kind: EvNetDrop, Msg: MsgLock, Flags: ReasonLoss})
	rc.Record(Record{TimeNs: 160, Seq: 3, Init: 1, Node: 1, Peer: NoNode, Edge: NoNode, Kind: EvTimeout})
	rc.Record(Record{TimeNs: 160, Seq: 3, Init: 1, Node: 1, Peer: NoNode, Edge: NoNode, Kind: EvAbort, Flags: ReasonTimeout})
	// Loose records: a crash/recover pair outside any exchange.
	rc.Record(Record{TimeNs: 150, Init: NoNode, Node: 2, Peer: NoNode, Edge: NoNode, Kind: EvCrash})
	rc.Record(Record{TimeNs: 170, Init: NoNode, Node: 2, Peer: NoNode, Edge: NoNode, Kind: EvRecover})
	return rc.Snapshot()
}

func findSpan(t *testing.T, set *SpanSet, init int, seq uint64) *Span {
	t.Helper()
	for i := range set.Spans {
		if set.Spans[i].Init == init && set.Spans[i].Seq == seq {
			return &set.Spans[i]
		}
	}
	t.Fatalf("no span (%d, %d) in %d spans", init, seq, len(set.Spans))
	return nil
}

func TestStitchOutcomesAndPhases(t *testing.T) {
	set := Stitch(synthDump())
	if len(set.Spans) != 3 {
		t.Fatalf("stitched %d spans, want 3", len(set.Spans))
	}
	if len(set.Loose) != 2 {
		t.Errorf("%d loose records, want 2 (crash+recover)", len(set.Loose))
	}

	com := findSpan(t, set, 0, 1)
	if com.Outcome != OutcomeCommitted || com.Reason != "" {
		t.Errorf("(0,1) outcome %q/%q, want committed", com.Outcome, com.Reason)
	}
	if com.Resp != 1 || com.Edge != 5 {
		t.Errorf("(0,1) resp=%d edge=%d, want 1/5", com.Resp, com.Edge)
	}
	if com.LockNs != 100 || com.HoldNs != 110 || com.ApplyNs != 120 || com.EndNs != 130 {
		t.Errorf("(0,1) phases lock=%d hold=%d apply=%d end=%d, want 100/110/120/130",
			com.LockNs, com.HoldNs, com.ApplyNs, com.EndNs)
	}
	if com.Latency() != 30 {
		t.Errorf("(0,1) latency %d, want 30", com.Latency())
	}
	if com.Hops != 3 {
		t.Errorf("(0,1) hops %d, want 3 (LOCK, PROPOSE, COMMIT)", com.Hops)
	}

	nack := findSpan(t, set, 2, 7)
	if nack.Outcome != OutcomeAborted || nack.Reason != "nack-busy" {
		t.Errorf("(2,7) outcome %q/%q, want aborted/nack-busy", nack.Outcome, nack.Reason)
	}
	if nack.ApplyNs != -1 || nack.HoldNs != -1 {
		t.Errorf("(2,7) observed apply=%d hold=%d, want -1/-1", nack.ApplyNs, nack.HoldNs)
	}
	if nack.EndNs != 125 {
		t.Errorf("(2,7) end %d, want 125", nack.EndNs)
	}

	to := findSpan(t, set, 1, 3)
	if to.Outcome != OutcomeAborted || to.Reason != "timeout" {
		t.Errorf("(1,3) outcome %q/%q, want aborted/timeout", to.Outcome, to.Reason)
	}
	if to.Drops != 1 {
		t.Errorf("(1,3) drops %d, want 1", to.Drops)
	}

	// Spans are ordered by start time: 100, 105, 140.
	starts := []int64{set.Spans[0].start(), set.Spans[1].start(), set.Spans[2].start()}
	if starts[0] != 100 || starts[1] != 105 || starts[2] != 140 {
		t.Errorf("span order by start = %v, want [100 105 140]", starts)
	}
}

func TestStitchUnresolved(t *testing.T) {
	rc := New(1, 8)
	rc.Record(Record{TimeNs: 5, Seq: 2, Init: 0, Node: 0, Peer: 1, Edge: 0, Kind: EvInitiate})
	rc.Record(Record{TimeNs: 5, Seq: 2, Init: 0, Node: 0, Peer: 1, Edge: 0, Kind: EvSend, Msg: MsgLock})
	set := Stitch(rc.Snapshot())
	if len(set.Spans) != 1 || set.Spans[0].Outcome != OutcomeUnresolved {
		t.Fatalf("in-flight exchange not stitched as unresolved: %+v", set.Spans)
	}
	if set.Spans[0].Latency() != -1 {
		t.Errorf("unresolved latency %d, want -1", set.Spans[0].Latency())
	}
}

func TestFilterSelect(t *testing.T) {
	set := Stitch(synthDump())
	cases := []struct {
		name string
		f    Filter
		want int
	}{
		{"all", NewFilter(), 3},
		{"committed", func() Filter { f := NewFilter(); f.Outcome = OutcomeCommitted; return f }(), 1},
		{"aborted", func() Filter { f := NewFilter(); f.Outcome = OutcomeAborted; return f }(), 2},
		{"node1-touch", func() Filter { f := NewFilter(); f.Node = 1; return f }(), 3},
		{"init2", func() Filter { f := NewFilter(); f.Init = 2; return f }(), 1},
		{"seq3", func() Filter { f := NewFilter(); f.Seq = 3; return f }(), 1},
		{"init0-aborted", func() Filter { f := NewFilter(); f.Init = 0; f.Outcome = OutcomeAborted; return f }(), 0},
	}
	for _, c := range cases {
		if got := len(set.Select(c.f)); got != c.want {
			t.Errorf("filter %s selected %d spans, want %d", c.name, got, c.want)
		}
	}
}

func TestRenderViewsSmoke(t *testing.T) {
	set := Stitch(synthDump())
	f := NewFilter()
	var buf bytes.Buffer
	RenderSpans(&buf, set, f)
	if out := buf.String(); !strings.Contains(out, "1 committed") || !strings.Contains(out, "2 aborted") {
		t.Errorf("spans view missing outcome counts:\n%s", out)
	}
	buf.Reset()
	RenderTimeline(&buf, set, f)
	out := buf.String()
	for _, want := range []string{"initiate", "LOCK", "PROPOSE", "COMMIT", "nack-busy", "timeout", "outside any exchange", "crash"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline view missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	RenderPhases(&buf, set, f)
	if out := buf.String(); !strings.Contains(out, "lock->resolve") {
		t.Errorf("phases view missing lock->resolve row:\n%s", out)
	}
	buf.Reset()
	RenderAborts(&buf, set, f)
	out = buf.String()
	if !strings.Contains(out, "nack-busy") || !strings.Contains(out, "timeout") {
		t.Errorf("aborts view missing reasons:\n%s", out)
	}
	buf.Reset()
	RenderCritical(&buf, set, f)
	if out := buf.String(); !strings.Contains(out, "critical path") {
		t.Errorf("critical view missing header:\n%s", out)
	}
}
