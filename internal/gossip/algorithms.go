package gossip

import (
	"fmt"

	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
)

// Algorithm is a distributed averaging process driven by edge clock ticks.
// It extends sim.Handler (HandleTick has the same signature) with the
// observables the averaging-time estimator needs.
type Algorithm interface {
	// Name identifies the algorithm in tables and traces.
	Name() string
	// HandleTick applies the algorithm's update for a tick of edge e at
	// simulated time t.
	HandleTick(e graph.EdgeID, t float64)
	// Values returns a copy of the current value vector.
	Values() []float64
	// Mean returns the current average (invariant for sum-preserving
	// algorithms).
	Mean() float64
	// Variance returns the paper's varX of the current values.
	Variance() float64
}

// ValueCopier is the optional allocation-free counterpart of Values: all
// algorithms in this repository implement it, and trajectory samplers
// assert for it to poll into a reused buffer. It is deliberately not part
// of Algorithm so external Algorithm implementations keep compiling.
type ValueCopier interface {
	// CopyInto writes the current value vector into dst (len must equal
	// the node count).
	CopyInto(dst []float64)
}

// Vanilla is the paper's baseline: a tick of edge (i, j) replaces both
// endpoint values with their arithmetic mean. It is the α = 1/2 member of
// class C and the algorithm whose averaging time defines Tvan.
type Vanilla struct {
	g      *graph.Graph
	st     *State
	eu, ev []int32 // flat endpoint arrays of g, for the fused kernel
}

// NewVanilla builds vanilla gossip on g with initial values x0. It returns
// an error when len(x0) differs from the node count.
func NewVanilla(g *graph.Graph, x0 []float64) (*Vanilla, error) {
	if len(x0) != g.NumNodes() {
		return nil, fmt.Errorf("gossip: %d initial values for %d nodes", len(x0), g.NumNodes())
	}
	return &Vanilla{g: g, st: NewState(x0), eu: g.EdgeU(), ev: g.EdgeV()}, nil
}

// Name implements Algorithm.
func (v *Vanilla) Name() string { return "vanilla" }

// HandleTick implements Algorithm.
func (v *Vanilla) HandleTick(e graph.EdgeID, _ float64) {
	edge := v.g.Edge(e)
	i, j := int(edge.U), int(edge.V)
	avg := (v.st.Get(i) + v.st.Get(j)) / 2
	v.st.Set(i, avg)
	v.st.Set(j, avg)
}

// TickEdges implements sim.TickKernel: the fused batch loop, bit-identical
// in the values to HandleTick per event (moments resync on the next read).
func (v *Vanilla) TickEdges(edges []graph.EdgeID, _ []float64) {
	v.st.AverageEdgesLazy(edges, v.eu, v.ev)
}

// TickEdgeVar implements sim.TickKernel: one tick, one moment read.
func (v *Vanilla) TickEdgeVar(e graph.EdgeID, _ float64) float64 {
	v.st.AverageEdge(int(v.eu[e]), int(v.ev[e]))
	return v.st.Variance()
}

// Values implements Algorithm.
func (v *Vanilla) Values() []float64 { return v.st.Values() }

// CopyInto implements ValueCopier.
func (v *Vanilla) CopyInto(dst []float64) { v.st.CopyInto(dst) }

// Mean implements Algorithm.
func (v *Vanilla) Mean() float64 { return v.st.Mean() }

// Variance implements Algorithm.
func (v *Vanilla) Variance() float64 { return v.st.Variance() }

// Convex is the general member of the paper's class C (Definition 2): a
// tick of (i, j) applies
//
//	x_i ← α·x_i + (1−α)·x_j
//	x_j ← α·x_j + (1−α)·x_i(old)
//
// with a fixed mixing parameter α ∈ [0, 1]. α = 1/2 recovers Vanilla;
// α closer to 1 is "lazier". All members preserve the sum and never
// increase the variance — the properties Theorem 1's lower bound exploits.
type Convex struct {
	g      *graph.Graph
	st     *State
	alpha  float64
	eu, ev []int32
}

// NewConvex builds α-gossip on g. It returns an error for α outside [0, 1]
// or a length mismatch.
func NewConvex(g *graph.Graph, x0 []float64, alpha float64) (*Convex, error) {
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("gossip: alpha %v outside [0,1]", alpha)
	}
	if len(x0) != g.NumNodes() {
		return nil, fmt.Errorf("gossip: %d initial values for %d nodes", len(x0), g.NumNodes())
	}
	return &Convex{g: g, st: NewState(x0), alpha: alpha, eu: g.EdgeU(), ev: g.EdgeV()}, nil
}

// Name implements Algorithm.
func (c *Convex) Name() string { return fmt.Sprintf("convex(alpha=%.3g)", c.alpha) }

// Alpha returns the mixing parameter.
func (c *Convex) Alpha() float64 { return c.alpha }

// HandleTick implements Algorithm.
func (c *Convex) HandleTick(e graph.EdgeID, _ float64) {
	edge := c.g.Edge(e)
	i, j := int(edge.U), int(edge.V)
	xi, xj := c.st.Get(i), c.st.Get(j)
	c.st.Set(i, c.alpha*xi+(1-c.alpha)*xj)
	c.st.Set(j, c.alpha*xj+(1-c.alpha)*xi)
}

// TickEdges implements sim.TickKernel: the fused batch loop, bit-identical
// in the values to HandleTick per event (moments resync on the next read).
func (c *Convex) TickEdges(edges []graph.EdgeID, _ []float64) {
	c.st.ConvexEdgesLazy(edges, c.eu, c.ev, c.alpha)
}

// TickEdgeVar implements sim.TickKernel: one tick, one moment read.
func (c *Convex) TickEdgeVar(e graph.EdgeID, _ float64) float64 {
	c.st.ConvexEdge(int(c.eu[e]), int(c.ev[e]), c.alpha)
	return c.st.Variance()
}

// Values implements Algorithm.
func (c *Convex) Values() []float64 { return c.st.Values() }

// CopyInto implements ValueCopier.
func (c *Convex) CopyInto(dst []float64) { c.st.CopyInto(dst) }

// Mean implements Algorithm.
func (c *Convex) Mean() float64 { return c.st.Mean() }

// Variance implements Algorithm.
func (c *Convex) Variance() float64 { return c.st.Variance() }

// PushSum is the mass-splitting baseline (Kempe–Dobra–Gehrke style) adapted
// to the edge-clock model: at a tick of (i, j) a uniformly random endpoint
// sends half of its mass pair (s, w) to the other. Each node's estimate is
// s/w. Push-sum is also convex in the estimates, so it obeys Theorem 1's
// lower bound; it is included to show the bound is about convexity, not
// about any particular update rule.
type PushSum struct {
	g      *graph.Graph
	s      []float64
	w      []float64
	est    *State // estimates s/w, kept in sync for O(1) variance
	r      *rng.RNG
	eu, ev []int32
}

// NewPushSum builds push-sum on g with initial values x0 and its own
// direction-choice stream r (must be non-nil).
func NewPushSum(g *graph.Graph, x0 []float64, r *rng.RNG) (*PushSum, error) {
	if len(x0) != g.NumNodes() {
		return nil, fmt.Errorf("gossip: %d initial values for %d nodes", len(x0), g.NumNodes())
	}
	if r == nil {
		return nil, fmt.Errorf("gossip: push-sum requires an RNG")
	}
	p := &PushSum{
		g:  g,
		s:  append([]float64(nil), x0...),
		w:  make([]float64, len(x0)),
		r:  r,
		eu: g.EdgeU(),
		ev: g.EdgeV(),
	}
	for i := range p.w {
		p.w[i] = 1
	}
	p.est = NewState(x0)
	return p, nil
}

// Name implements Algorithm.
func (p *PushSum) Name() string { return "push-sum" }

// HandleTick implements Algorithm.
func (p *PushSum) HandleTick(e graph.EdgeID, _ float64) {
	edge := p.g.Edge(e)
	from, to := int(edge.U), int(edge.V)
	if p.r.Float64() < 0.5 {
		from, to = to, from
	}
	halfS, halfW := p.s[from]/2, p.w[from]/2
	p.s[from] -= halfS
	p.w[from] -= halfW
	p.s[to] += halfS
	p.w[to] += halfW
	p.est.Set(from, p.s[from]/p.w[from])
	p.est.Set(to, p.s[to]/p.w[to])
}

// tickPair applies one push-sum exchange between the endpoints i, j of a
// ticked edge, bit-identical in the mass vectors and estimates to
// HandleTick's body. When lazy is set the estimate moments are deferred to
// the next moment read.
func (p *PushSum) tickPair(i, j int, lazy bool) {
	from, to := i, j
	if p.r.Float64() < 0.5 {
		from, to = to, from
	}
	halfS, halfW := p.s[from]/2, p.w[from]/2
	p.s[from] -= halfS
	p.w[from] -= halfW
	p.s[to] += halfS
	p.w[to] += halfW
	if lazy {
		p.est.Set2Lazy(from, to, p.s[from]/p.w[from], p.s[to]/p.w[to])
	} else {
		p.est.Set2(from, to, p.s[from]/p.w[from], p.s[to]/p.w[to])
	}
}

// TickEdges implements sim.TickKernel.
func (p *PushSum) TickEdges(edges []graph.EdgeID, _ []float64) {
	for _, e := range edges {
		p.tickPair(int(p.eu[e]), int(p.ev[e]), true)
	}
}

// TickEdgeVar implements sim.TickKernel.
func (p *PushSum) TickEdgeVar(e graph.EdgeID, _ float64) float64 {
	p.tickPair(int(p.eu[e]), int(p.ev[e]), false)
	return p.est.Variance()
}

// Values implements Algorithm (the per-node estimates s/w).
func (p *PushSum) Values() []float64 { return p.est.Values() }

// CopyInto implements ValueCopier.(the per-node estimates s/w).
func (p *PushSum) CopyInto(dst []float64) { p.est.CopyInto(dst) }

// Mean implements Algorithm. Note push-sum preserves total mass Σs and
// total weight Σw rather than the mean of the estimates; Mean reports the
// mean estimate.
func (p *PushSum) Mean() float64 { return p.est.Mean() }

// Variance implements Algorithm (variance of the estimates).
func (p *PushSum) Variance() float64 { return p.est.Variance() }

// TotalMass returns Σs, an exact conserved quantity of push-sum.
func (p *PushSum) TotalMass() float64 {
	t := 0.0
	for _, v := range p.s {
		t += v
	}
	return t
}

// TotalWeight returns Σw, an exact conserved quantity of push-sum (equal to
// the node count).
func (p *PushSum) TotalWeight() float64 {
	t := 0.0
	for _, v := range p.w {
		t += v
	}
	return t
}
