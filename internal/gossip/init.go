package gossip

import (
	"fmt"

	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
)

// Initial-value constructors for the experiment suite. All vectors are
// returned with length g.NumNodes() conventions of their constructors.

// CutIndicator returns the paper's worst-case initial vector for a
// partition: +1 on V1 and −n1/n2 on V2, which has mean exactly zero and
// concentrates all variance across the cut (Section 2 of the paper).
func CutIndicator(p *graph.Partition) []float64 {
	n := p.Graph().NumNodes()
	n1 := float64(p.Size1())
	n2 := float64(p.Size2())
	x := make([]float64, n)
	for u := 0; u < n; u++ {
		if p.SideOf(graph.NodeID(u)) == graph.Side1 {
			x[u] = 1
		} else {
			x[u] = -n1 / n2
		}
	}
	return x
}

// CutIndicatorPrefix is CutIndicator for prefix partitions without a
// materialised graph: nodes [0, n1) form side 1. The implicit families
// all plant their cut at a prefix split (Implicit.SplitPoint), so this
// produces element-identical worst-case initials to CutIndicator on the
// corresponding materialised partition.
func CutIndicatorPrefix(n, n1 int) []float64 {
	f1 := float64(n1)
	f2 := float64(n - n1)
	x := make([]float64, n)
	for u := 0; u < n; u++ {
		if u < n1 {
			x[u] = 1
		} else {
			x[u] = -f1 / f2
		}
	}
	return x
}

// Spike returns the vector that is 1 at node src and 0 elsewhere — the
// "single informed node" initial condition. It returns an error when src is
// out of range.
func Spike(n int, src graph.NodeID) ([]float64, error) {
	if src < 0 || int(src) >= n {
		return nil, fmt.Errorf("gossip: spike node %d outside [0,%d)", src, n)
	}
	x := make([]float64, n)
	x[src] = 1
	return x, nil
}

// UniformRandom returns n i.i.d. values uniform on [-1, 1).
func UniformRandom(r *rng.RNG, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = 2*r.Float64() - 1
	}
	return x
}

// GaussianRandom returns n i.i.d. standard normal values.
func GaussianRandom(r *rng.RNG, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	return x
}

// Linear returns the ramp x[i] = i/(n-1) (all zeros for n < 2): a smooth
// non-adversarial initial condition.
func Linear(n int) []float64 {
	x := make([]float64, n)
	if n < 2 {
		return x
	}
	for i := range x {
		x[i] = float64(i) / float64(n-1)
	}
	return x
}
