package metrics

import (
	"bytes"
	"strings"
	"testing"
)

// exerciseRegistry performs one fixed recording session — the workload the
// determinism test runs twice.
func exerciseRegistry() *Registry {
	r := NewRegistry()
	ex := r.Counter("dist.exchange.committed")
	ab := r.Counter("dist.exchange.aborted")
	for i := 0; i < 100; i++ {
		ex.Inc(i)
		if i%3 == 0 {
			ab.Add(i, 2)
		}
	}
	r.Gauge("dist.progress.var_ratio").Set(0.125)
	h := r.Histogram("sweep.cell.wall_ns")
	for _, v := range []int64{1, 5, 5, 900, 1 << 30} {
		h.Observe(v)
	}
	r.CounterFunc("dist.transport.dropped", func() int64 { return 17 })
	r.GaugeFunc("sim.occupancy", func() float64 { return 0.75 })
	return r
}

// TestSnapshotDeterminism is the export contract: two identical recording
// sessions produce byte-identical metrics JSON, regardless of map
// iteration order.
func TestSnapshotDeterminism(t *testing.T) {
	var out1, out2 bytes.Buffer
	if err := exerciseRegistry().Snapshot().WriteJSON(&out1); err != nil {
		t.Fatal(err)
	}
	if err := exerciseRegistry().Snapshot().WriteJSON(&out2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out1.Bytes(), out2.Bytes()) {
		t.Fatalf("identical sessions exported different JSON:\n--- 1 ---\n%s\n--- 2 ---\n%s", out1.String(), out2.String())
	}
	for _, want := range []string{
		`"dist.exchange.committed": 100`,
		`"dist.transport.dropped": 17`,
		`"dist.progress.var_ratio": 0.125`,
		`"sim.occupancy": 0.75`,
		`"sweep.cell.wall_ns"`,
	} {
		if !strings.Contains(out1.String(), want) {
			t.Errorf("snapshot JSON missing %s:\n%s", want, out1.String())
		}
	}
}

// TestRegistrationIdempotent: same name and kind returns the same
// instrument, so independent layers may instrument without coordinating.
func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	if r.Counter("c") != r.Counter("c") {
		t.Error("Counter not idempotent")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("Gauge not idempotent")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("Histogram not idempotent")
	}
}

// TestKindCollisionPanics: a name reused across kinds is a programming
// error caught loudly.
func TestKindCollisionPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("Gauge(\"x\") after Counter(\"x\") did not panic")
		}
	}()
	r.Gauge("x")
}

func TestSnapshotDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events")
	h := r.Histogram("lat")
	g := r.Gauge("level")
	c.Add(0, 10)
	h.Observe(4)
	g.Set(1)
	before := r.Snapshot()
	c.Add(1, 5)
	h.Observe(4)
	h.Observe(100)
	g.Set(0.5)
	d := r.Snapshot().Delta(before)
	if got := d.Counters["events"]; got != 5 {
		t.Errorf("counter delta = %d, want 5", got)
	}
	if got := d.Gauges["level"]; got != 0.5 {
		t.Errorf("gauge delta keeps current value: got %v, want 0.5", got)
	}
	hd := d.Histograms["lat"]
	if hd.Count != 2 || hd.Sum != 104 {
		t.Errorf("histogram delta count=%d sum=%d, want 2/104", hd.Count, hd.Sum)
	}
	if len(hd.Buckets) != 2 {
		t.Fatalf("histogram delta has %d buckets, want 2 (one grown, one new)", len(hd.Buckets))
	}
	for _, b := range hd.Buckets {
		if b.Count != 1 {
			t.Errorf("bucket [%d,%d] delta = %d, want 1", b.Lo, b.Hi, b.Count)
		}
	}
}

// TestDeltaMissingPrev: a name absent from the previous snapshot deltas
// from zero.
func TestDeltaMissingPrev(t *testing.T) {
	r := NewRegistry()
	before := r.Snapshot()
	r.Counter("new").Add(0, 3)
	d := r.Snapshot().Delta(before)
	if got := d.Counters["new"]; got != 3 {
		t.Errorf("delta of fresh counter = %d, want 3", got)
	}
}
