package dist

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"sparsecut/internal/flight"
	"sparsecut/internal/graph"
	"sparsecut/internal/leakcheck"
	"sparsecut/internal/rng"
)

// TestShardLockstepEquivalence is the sharded runtime's half of the
// divergence test that licenses every driver of the protocol (the
// goroutine runtime's half is TestLockstepMachineEquivalence): the shard
// loops record every protocol event they feed the pure machine via the
// runtime tap, and replaying that stream through fresh NodeStates must
// reproduce byte-identical StepOuts and exactly the runtime's final
// values. On top of the replay this test asserts two properties the
// goroutine half does not need:
//
//   - no stale commits, by provenance: at every replayed commit the
//     initiator's replayed state must already have applied that exact
//     (initiator, seq) — the tap order respects causality (a send is
//     tapped before its delivery can be), so the check is sound;
//   - flight equivalence: re-emitting the replayed stream through the
//     shared FlightEmitter must stitch into the same span set as the live
//     shard capture, span by span (the sharded loops add no records and
//     lose none relative to the canonical step→record mapping).
func TestShardLockstepEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name    string
		crashes []CrashEvent
	}{
		{"healthy", nil},
		{"with crash schedule", []CrashEvent{{Node: 0, At: 2, Recover: 5}, {Node: 7, At: 1}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, _, x0 := dumbbellCase(t)
			rec := flight.New(g.NumNodes(), 1<<14)
			rt, err := NewShardRuntime(g, x0, NewVanillaRule(), ShardRuntimeConfig{
				ClusterConfig: ClusterConfig{
					TimeScale: 4 * time.Millisecond, Seed: 11,
					Crashes: tc.crashes, Flight: rec,
				},
				Shards: 3,
			})
			if err != nil {
				t.Fatal(err)
			}
			var mu sync.Mutex
			var events []nodeEvent
			rt.tap = func(ev nodeEvent) {
				mu.Lock()
				events = append(events, ev)
				mu.Unlock()
			}
			if err := rt.Run(context.Background(), 10); err != nil {
				t.Fatal(err)
			}
			if rt.Exchanges() == 0 {
				t.Fatal("no exchanges committed; lockstep test needs traffic")
			}

			// Replay: fresh states, same machine parameters, recorded
			// inputs; re-emit flight records through the shared emitter.
			mc := Machine{
				G:             g,
				Rule:          NewVanillaRule(),
				Epoch:         rt.epoch,
				LockTimeoutNs: rt.lockTimeout.Nanoseconds(),
				ResendEveryNs: rt.resendEvery.Nanoseconds(),
			}
			rec2 := flight.New(g.NumNodes(), 1<<14)
			states := make([]*NodeState, g.NumNodes())
			for i := range states {
				states[i] = NewNodeState(i, x0[i])
			}
			for k, ev := range events {
				st := states[ev.node]
				pre := FlightPreOf(st)
				var out StepOut
				switch ev.kind {
				case stepDeliver:
					out = mc.Deliver(st, ev.msg, ev.nowNs, ev.draining)
				case stepInitiate:
					out = mc.Initiate(st, ev.he, ev.nowNs)
				case stepTimeout:
					out = mc.TimeoutAwait(st)
				case stepResend:
					out = mc.Resend(st, ev.nowNs)
				case stepCrash:
					out = mc.Crash(st)
				case stepRecover:
					out = mc.Recover(st, ev.nowNs)
				}
				if !reflect.DeepEqual(out, ev.out) {
					t.Fatalf("event %d (node %d, kind %d): replayed StepOut %+v diverged from live %+v",
						k, ev.node, ev.kind, out, ev.out)
				}
				if out.Committed {
					// Ghost provenance: the pend this commit resolved names
					// the initiator and seq; that initiator must already
					// have applied it.
					if pre.pendMsg.To < 0 || states[pre.pendMsg.To].LastApplied[ev.node] < pre.pendMsg.Seq {
						t.Fatalf("event %d: node %d committed seq %d before initiator %d applied it (stale commit)",
							k, ev.node, pre.pendMsg.Seq, pre.pendMsg.To)
					}
				}
				emitStepRec(rec2, ev.node, ev.kind, ev.msg, out, pre, ev.nowNs)
				for _, m := range out.Send {
					FlightEmitter{Rec: rec2}.Send(ev.node, m, ev.nowNs)
				}
			}
			got := rt.Values()
			for i, st := range states {
				if st.X != got[i] {
					t.Errorf("node %d: replayed value %v != runtime value %v", i, st.X, got[i])
				}
			}

			compareSpanSets(t, flight.Stitch(rec.Snapshot()), flight.Stitch(rec2.Snapshot()))
			t.Logf("replayed %d events across %d nodes on %d shards, %d exchanges",
				len(events), g.NumNodes(), rt.Shards(), rt.Exchanges())
		})
	}
}

// compareSpanSets asserts that live and replayed flight captures stitch
// into the same spans: same (Init, Seq) keys, and per span the same
// responder, edge, outcome and protocol-event multiset. Multisets, not
// sequences: concurrent records from different shards may reach the
// recorder in either order. Network-layer records (EvNetDrop/EvNetDup) are
// excluded — they are emitted by the transport/mailbox layer, which the
// protocol-step tap does not see.
func compareSpanSets(t *testing.T, live, replayed *flight.SpanSet) {
	t.Helper()
	sig := func(set *flight.SpanSet) map[string]string {
		m := make(map[string]string, len(set.Spans))
		for _, sp := range set.Spans {
			kinds := make([]int, 0, len(sp.Events))
			for _, e := range sp.Events {
				if e.Kind == flight.EvNetDrop || e.Kind == flight.EvNetDup {
					continue
				}
				kinds = append(kinds, int(e.Kind))
			}
			sort.Ints(kinds)
			m[fmt.Sprintf("%d/%d", sp.Init, sp.Seq)] =
				fmt.Sprintf("resp=%d edge=%d outcome=%s kinds=%v", sp.Resp, sp.Edge, sp.Outcome, kinds)
		}
		return m
	}
	ls, rs := sig(live), sig(replayed)
	for k, v := range ls {
		if rv, ok := rs[k]; !ok {
			t.Errorf("span %s in live capture but not in replay", k)
		} else if v != rv {
			t.Errorf("span %s diverged:\n  live:   %s\n  replay: %s", k, v, rv)
		}
	}
	for k := range rs {
		if _, ok := ls[k]; !ok {
			t.Errorf("span %s in replay but not in live capture", k)
		}
	}
	looseKinds := func(set *flight.SpanSet) map[flight.EventKind]int {
		m := map[flight.EventKind]int{}
		for _, r := range set.Loose {
			if r.Kind == flight.EvNetDrop || r.Kind == flight.EvNetDup {
				continue
			}
			m[r.Kind]++
		}
		return m
	}
	if l, r := looseKinds(live), looseKinds(replayed); !reflect.DeepEqual(l, r) {
		t.Errorf("loose records diverged: live %v, replay %v", l, r)
	}
}

// TestShardSumConservedHostileTransport drives the sharded runtime over
// the same hostile stack the goroutine runtime is proven on — 2ms random
// delays, then 25% Bernoulli loss — plus a crash schedule, and asserts
// the protocol's core promise end to end: exact sum conservation and a
// balanced exchange ledger at quiescence.
func TestShardSumConservedHostileTransport(t *testing.T) {
	g, _, x0 := dumbbellCase(t)
	delay, err := NewDelayTransport(NewChanTransport(8*g.NumNodes()), 2*time.Millisecond, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewDropTransport(delay, 0.25, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}
	crashes := []CrashEvent{
		{Node: 1, At: 2, Recover: 5},
		{Node: 8, At: 3}, // down until drain
	}
	rt, err := NewShardRuntime(g, x0, NewVanillaRule(), ShardRuntimeConfig{
		ClusterConfig: ClusterConfig{
			TimeScale: 4 * time.Millisecond, Seed: 1, Transport: tr,
			LockTimeout: 10 * time.Millisecond, Crashes: crashes,
		},
		Shards: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(context.Background(), 20); err != nil {
		t.Fatal(err)
	}
	if rt.Exchanges() == 0 {
		t.Fatal("no exchanges committed")
	}
	if rt.Aborted() == 0 {
		t.Error("25% drop with 2ms delays produced no aborts")
	}
	if got, want := rt.Crashes(), int64(len(crashes)); got != want {
		t.Errorf("Crashes() = %d, want %d", got, want)
	}
	if drift := math.Abs(sum(rt.Values()) - sum(x0)); drift > 1e-9 {
		t.Errorf("sum drifted by %g under loss, delay and crashes", drift)
	}
	assertLedger(t, rt)
}

// assertLedger checks the exchange ledger a drained healthy-transport run
// must balance: every initiation resolved exactly once (applied or
// aborted), and every applied initiator half was committed by its
// responder.
func assertLedger(t *testing.T, rt *ShardRuntime) {
	t.Helper()
	if rt.Proposed() != rt.Applied()+rt.Aborted() {
		t.Errorf("ledger: proposed %d != applied %d + aborted %d",
			rt.Proposed(), rt.Applied(), rt.Aborted())
	}
	if rt.Applied() != rt.Exchanges() {
		t.Errorf("ledger: applied %d != committed %d after settle",
			rt.Applied(), rt.Exchanges())
	}
}

// TestShardDirectPathConverges is the direct-path (no transport) sanity
// run: traffic flows shard-to-shard through the batched mailboxes, the
// ledger balances, and the exchange rule actually averages.
func TestShardDirectPathConverges(t *testing.T) {
	g := graph.Cycle(64)
	x0 := make([]float64, g.NumNodes())
	for i := range x0 {
		x0[i] = float64(i % 2 * 10)
	}
	rt, err := NewShardRuntime(g, x0, NewVanillaRule(), ShardRuntimeConfig{
		ClusterConfig: ClusterConfig{TimeScale: 2 * time.Millisecond, Seed: 5},
		Shards:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	var0 := rt.Variance()
	if err := rt.Run(context.Background(), 15); err != nil {
		t.Fatal(err)
	}
	if rt.Exchanges() == 0 {
		t.Fatal("no exchanges on the direct path")
	}
	if drift := math.Abs(sum(rt.Values()) - sum(x0)); drift > 1e-9 {
		t.Errorf("sum drifted by %g", drift)
	}
	if v := rt.Variance(); v >= var0 {
		t.Errorf("variance did not decrease: %g -> %g", var0, v)
	}
	if rt.Congested() != 0 {
		t.Errorf("unexpected mailbox congestion: %d drops", rt.Congested())
	}
	assertLedger(t, rt)
}

// TestShardRuntimeOverTCP runs the sharded runtime across real sockets on
// both wire codecs: one transport address per shard, every message routed
// by its Via shard override. This is the multi-process sharding shape — S
// mailboxes serving N >> S nodes.
func TestShardRuntimeOverTCP(t *testing.T) {
	for _, codec := range []WireCodec{WireBinary, WireGob} {
		t.Run(codec.String(), func(t *testing.T) {
			g, _, x0 := dumbbellCase(t)
			tr, err := NewTCPTransportCodec(4, codec)
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			rt, err := NewShardRuntime(g, x0, NewVanillaRule(), ShardRuntimeConfig{
				ClusterConfig: ClusterConfig{TimeScale: 8 * time.Millisecond, Seed: 2, Transport: tr},
				Shards:        4,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := rt.Run(context.Background(), 8); err != nil {
				t.Fatal(err)
			}
			if rt.Exchanges() == 0 {
				t.Fatal("no exchanges committed over TCP")
			}
			if drift := math.Abs(rt.Mean()); drift > 1e-9 {
				t.Errorf("mean drifted to %g over TCP", rt.Mean())
			}
		})
	}
}

// TestShardRuntimeShutdownNoLeak extends the repository's leak discipline
// to the sharded runtime: three consecutive runs on the same runtime (the
// reuse contract) must leave no goroutines or timers behind.
func TestShardRuntimeShutdownNoLeak(t *testing.T) {
	base := leakcheck.Snapshot()
	g, _, x0 := dumbbellCase(t)
	rt, err := NewShardRuntime(g, x0, NewVanillaRule(), ShardRuntimeConfig{
		ClusterConfig: ClusterConfig{TimeScale: 2 * time.Millisecond, Seed: 3},
		Shards:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 3; run++ {
		if err := rt.Run(context.Background(), 4); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if drift := math.Abs(sum(rt.Values()) - sum(x0)); drift > 1e-9 {
			t.Fatalf("run %d: sum drifted by %g", run, drift)
		}
	}
	base.Check(t)
}

// TestShardRuntimeContextCancel cancels mid-run: Run must drain to
// quiescence (sum still exactly conserved), report context.Canceled, and
// unwind every shard goroutine.
func TestShardRuntimeContextCancel(t *testing.T) {
	base := leakcheck.Snapshot()
	g, _, x0 := dumbbellCase(t)
	rt, err := NewShardRuntime(g, x0, NewVanillaRule(), ShardRuntimeConfig{
		ClusterConfig: ClusterConfig{TimeScale: 4 * time.Millisecond, Seed: 9},
		Shards:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	err = rt.Run(ctx, 1000) // horizon far beyond the cancellation
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if drift := math.Abs(sum(rt.Values()) - sum(x0)); drift > 1e-9 {
		t.Errorf("sum drifted by %g across a cancelled run", drift)
	}
	base.Check(t)
}

// TestShardRuntimeSendAfterTransportClose closes the transport under a
// running sharded runtime, for every transport implementation: the first
// failed send must surface as a *SendError wrapping ErrClosed, the run
// must stop draining (not hang on unresolvable exchanges), and nothing
// may leak. The DropTransport is built with rate 0 so sends always reach
// the closed inner layer rather than being absorbed as loss.
func TestShardRuntimeSendAfterTransportClose(t *testing.T) {
	build := []struct {
		name string
		make func(t *testing.T) Transport
	}{
		{"chan", func(t *testing.T) Transport { return NewChanTransport(256) }},
		{"drop", func(t *testing.T) Transport {
			tr, err := NewDropTransport(NewChanTransport(256), 0, rng.New(1))
			if err != nil {
				t.Fatal(err)
			}
			return tr
		}},
		{"delay", func(t *testing.T) Transport {
			tr, err := NewDelayTransport(NewChanTransport(256), 100*time.Microsecond, rng.New(1))
			if err != nil {
				t.Fatal(err)
			}
			return tr
		}},
		{"tcp", func(t *testing.T) Transport {
			tr, err := NewTCPTransport(3)
			if err != nil {
				t.Fatal(err)
			}
			return tr
		}},
	}
	for _, b := range build {
		b := b
		t.Run(b.name, func(t *testing.T) {
			base := leakcheck.Snapshot()
			g, _, x0 := dumbbellCase(t)
			tr := b.make(t)
			rt, err := NewShardRuntime(g, x0, NewVanillaRule(), ShardRuntimeConfig{
				ClusterConfig: ClusterConfig{TimeScale: 2 * time.Millisecond, Seed: 4, Transport: tr},
				Shards:        3,
			})
			if err != nil {
				t.Fatal(err)
			}
			go func() {
				time.Sleep(5 * time.Millisecond)
				tr.Close()
			}()
			err = rt.Run(context.Background(), 1000)
			if err == nil {
				t.Fatal("Run succeeded across a transport death")
			}
			var se *SendError
			if !errors.As(err, &se) || !errors.Is(err, ErrClosed) {
				t.Fatalf("Run returned %v, want a *SendError wrapping ErrClosed", err)
			}
			tr.Close() // idempotent; ensures full unwind before the leak check
			base.Check(t)
		})
	}
}

// TestShardRuntimeValidation pins the constructor's input checking.
func TestShardRuntimeValidation(t *testing.T) {
	g := graph.Cycle(8)
	x0 := make([]float64, 8)
	valid := func() ShardRuntimeConfig {
		return ShardRuntimeConfig{ClusterConfig: ClusterConfig{TimeScale: time.Millisecond}}
	}
	cases := []struct {
		name string
		g    *graph.Graph
		x0   []float64
		rule Rule
		cfg  ShardRuntimeConfig
	}{
		{"nil graph", nil, x0, VanillaRule{}, valid()},
		{"length mismatch", g, x0[:3], VanillaRule{}, valid()},
		{"nil rule", g, x0, nil, valid()},
		{"negative shards", g, x0, VanillaRule{}, func() ShardRuntimeConfig {
			c := valid()
			c.Shards = -1
			return c
		}()},
		{"negative tick", g, x0, VanillaRule{}, func() ShardRuntimeConfig {
			c := valid()
			c.TimerTick = -time.Millisecond
			return c
		}()},
		{"crash node out of range", g, x0, VanillaRule{}, func() ShardRuntimeConfig {
			c := valid()
			c.Crashes = []CrashEvent{{Node: 99, At: 1}}
			return c
		}()},
		{"recover before crash", g, x0, VanillaRule{}, func() ShardRuntimeConfig {
			c := valid()
			c.Crashes = []CrashEvent{{Node: 1, At: 2, Recover: 1}}
			return c
		}()},
		{"overlapping windows", g, x0, VanillaRule{}, func() ShardRuntimeConfig {
			c := valid()
			c.Crashes = []CrashEvent{{Node: 1, At: 1, Recover: 5}, {Node: 1, At: 3, Recover: 7}}
			return c
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewShardRuntime(tc.g, tc.x0, tc.rule, tc.cfg); err == nil {
				t.Error("constructor accepted an invalid configuration")
			}
		})
	}

	// Shard-count clamping: more shards than nodes must degrade to one
	// node per shard, not fail or leave empty loops.
	rt, err := NewShardRuntime(g, x0, VanillaRule{}, ShardRuntimeConfig{Shards: 64})
	if err != nil {
		t.Fatal(err)
	}
	if got := rt.Shards(); got != 8 {
		t.Errorf("Shards() = %d with 8 nodes, want 8", got)
	}
	if err := rt.Run(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
}

// TestShardRuntimeRunGuards pins Run's argument and reentrancy checking.
func TestShardRuntimeRunGuards(t *testing.T) {
	g := graph.Cycle(8)
	x0 := make([]float64, 8)
	rt, err := NewShardRuntime(g, x0, VanillaRule{}, ShardRuntimeConfig{
		ClusterConfig: ClusterConfig{TimeScale: time.Millisecond},
		Shards:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []float64{0, -1, math.Inf(1), math.NaN()} {
		if err := rt.Run(context.Background(), d); err == nil {
			t.Errorf("Run accepted duration %v", d)
		}
	}
}
