package experiments

// E8–E9: ablations over the two engineering decisions DESIGN.md documents —
// the swap-weight coefficient and the epoch constant C.

import (
	"fmt"
	"io"
	"math"

	"sparsecut/internal/core"
	"sparsecut/internal/graph"
	"sparsecut/internal/table"
)

func init() {
	register(Experiment{
		ID:    "E8",
		Title: "ablation: swap-weight coefficient (paper n1 vs exact n1*n2/n vs sweep)",
		Claim: "Section 1.0.1 writes the coefficient as n1; exact algebra gives w* = n1*n2/n. One mixed-state swap contracts the side-mean mass by |1 - w/w*| — the literal n1 on equal sides gives factor 1 (no contraction)",
		Run:   runE8,
	})
	register(Experiment{
		ID:    "E9",
		Title: "ablation: epoch constant C and Tvan estimator",
		Claim: "Algorithm A needs C 'sufficiently large'; small C under-mixes the sides before a swap and stalls convergence",
		Run:   runE9,
	})
}

// swapContraction measures the one-swap contraction of the side-mean mass
// |mu1| + |mu2| starting from a perfectly mixed worst-case state.
func swapContraction(g *graph.Graph, part *graph.Partition, weight float64) (float64, error) {
	n := g.NumNodes()
	x0 := make([]float64, n)
	n1 := float64(part.Size1())
	n2 := float64(part.Size2())
	for u := 0; u < n; u++ {
		if part.SideOf(graph.NodeID(u)) == graph.Side1 {
			x0[u] = 1
		} else {
			x0[u] = -n1 / n2
		}
	}
	alg, err := core.New(g, x0, core.WithPartition(part),
		core.WithEpochTicks(1), core.WithWeight(weight))
	if err != nil {
		return 0, err
	}
	mu1a, mu2a := alg.SideMeans()
	before := math.Abs(mu1a) + math.Abs(mu2a)
	alg.HandleTick(alg.CutEdge(), 1)
	mu1b, mu2b := alg.SideMeans()
	after := math.Abs(mu1b) + math.Abs(mu2b)
	return after / before, nil
}

func runE8(w io.Writer, p Params) (Outcome, error) {
	p = p.withDefaults()
	out := newOutcome()
	n := pick(p, 32, 128)
	cases := []struct {
		label  string
		n1, n2 int
	}{
		{"symmetric", n / 2, n / 2},
		{"asymmetric", n / 8, n - n/8},
	}
	tbl := table.New("E8: one-swap contraction of |mu1|+|mu2| from a perfectly mixed state",
		"sides", "weight", "w/w*", "measured contraction", "predicted |1 - w/w*|")
	for _, c := range cases {
		g, part, err := graph.Dumbbell(c.n1, c.n2, 1)
		if err != nil {
			return out, err
		}
		wStar := core.ExactWeight(part)
		weights := []struct {
			name string
			w    float64
		}{
			{"0.5*w*", 0.5 * wStar},
			{"w* (exact)", wStar},
			{"1.5*w*", 1.5 * wStar},
			{"n1 (paper)", core.PaperWeight(part)},
		}
		for _, wt := range weights {
			got, err := swapContraction(g, part, wt.w)
			if err != nil {
				return out, err
			}
			pred := math.Abs(1 - wt.w/wStar)
			tbl.AddRow(fmt.Sprintf("%s(%d,%d)", c.label, c.n1, c.n2), wt.name, wt.w/wStar, got, pred)
			key := fmt.Sprintf("contraction-%s-%s", c.label, wt.name)
			out.Metrics[key] = got
		}
	}
	if err := render(w, p, tbl); err != nil {
		return out, err
	}
	fmt.Fprintln(w, "\nthe paper-literal weight n1 equals 2*w* on symmetric dumbbells: contraction factor 1 = the oscillating failure mode; on very asymmetric cuts n1 ~ w* and the paper's coefficient is fine")
	return out, nil
}

func runE9(w io.Writer, p Params) (Outcome, error) {
	p = p.withDefaults()
	out := newOutcome()
	n := pick(p, 32, 128)
	g, part, x0, err := dumbbellCase(n, 1)
	if err != nil {
		return out, err
	}
	trials := pick(p, 3, 7)
	tbl := table.New(fmt.Sprintf("E9: epoch constant sweep, dumbbell n=%d", n),
		"C", "K (ticks)", "Tav(A)", "censored")
	for _, c := range []float64{0.5, 1, 2, 4, 8, 16} {
		alg, err := core.New(g, x0, core.WithPartition(part), core.WithEpochConstant(c))
		if err != nil {
			return out, err
		}
		res, err := measureAlgorithmA(g, x0, trials, p.Seed, maxTimeFor(n),
			core.WithPartition(part), core.WithEpochConstant(c))
		if err != nil {
			return out, err
		}
		tbl.AddRow(c, alg.EpochTicks(), res.Tav, res.Censored)
		out.Metrics[fmt.Sprintf("tav@C=%g", c)] = res.Tav
	}
	// Estimator comparison: the spectral bound vs a deliberately 3x larger
	// user-supplied Tvan — K scales linearly, Tav should stay in the same
	// ballpark (the algorithm is robust to conservative estimates).
	tv1, tv2, err := core.SideTvanBounds(part, defaultSpectralOpts())
	if err != nil {
		return out, err
	}
	algSpec, err := core.New(g, x0, core.WithPartition(part))
	if err != nil {
		return out, err
	}
	algUser, err := core.New(g, x0, core.WithPartition(part), core.WithTvan(3*tv1, 3*tv2))
	if err != nil {
		return out, err
	}
	fmt.Fprintf(w, "Tvan estimators: spectral bound (%.4g, %.4g) -> K=%d; 3x inflated -> K=%d\n\n",
		tv1, tv2, algSpec.EpochTicks(), algUser.EpochTicks())
	out.Metrics["K-spectral"] = float64(algSpec.EpochTicks())
	out.Metrics["K-inflated"] = float64(algUser.EpochTicks())
	if err := render(w, p, tbl); err != nil {
		return out, err
	}
	return out, nil
}
