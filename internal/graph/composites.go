package graph

// Additional sparse-cut composites beyond the dumbbell family: a ring of
// cliques (many dense blocks, every adjacent pair joined by a sparse
// bridge) and a hierarchical double-cut dumbbell (two dumbbells joined by
// an even sparser outer cut — two nested scales of bottleneck). Both
// return a planted Partition across their sparsest cut, like the
// constructions in dumbbell.go.

import "fmt"

// TorusDumbbell returns the sparse-cut family that scales to millions of
// nodes: two 4-regular tori of n/2 and n-n/2 nodes joined by cutEdges
// edges between facing rims. It is the dumbbell's bottleneck shape with
// the cliques replaced by constant-degree blocks — a clique half of 5·10^5
// nodes would need ~10^11 edges, a torus half needs 2 per node — so the
// sharded runtime can materialise the worst case at 10^6 nodes.
//
// Torus 1 occupies nodes [0, n/2), torus 2 the rest; each half is laid out
// as its most-square rows x cols factorisation with both dims >= 3 (the
// torus wraparound needs 3), and the k-th cut edge joins node n/2-1-k to
// node n/2+k. The returned partition is the planted cut between the
// halves. It returns an error unless n >= 18, cutEdges is in
// [1, min(n/2, n-n/2)], and both halves admit a rows >= 3 factorisation —
// pick halves with small prime factors (powers of 10 work) rather than
// primes.
func TorusDumbbell(n, cutEdges int) (*Graph, *Partition, error) {
	if n < 18 {
		return nil, nil, fmt.Errorf("graph: torus dumbbell needs n >= 18 (two 3x3 tori), got %d", n)
	}
	half1, half2 := n/2, n-n/2
	if cutEdges < 1 || cutEdges > half1 {
		return nil, nil, fmt.Errorf("graph: torus dumbbell cutEdges %d outside [1, %d]", cutEdges, half1)
	}
	r1, c1, ok := nearSquareDims(half1)
	if !ok {
		return nil, nil, fmt.Errorf("graph: torus half of %d nodes has no rows x cols factorisation with rows >= 3; choose a composite half size", half1)
	}
	r2, c2, ok := nearSquareDims(half2)
	if !ok {
		return nil, nil, fmt.Errorf("graph: torus half of %d nodes has no rows x cols factorisation with rows >= 3; choose a composite half size", half2)
	}
	b := NewBuilder(n).SetName(fmt.Sprintf("torusdumbbell(n=%d,cut=%d)", n, cutEdges))
	torus := func(base, rows, cols int) {
		id := func(r, c int) NodeID { return NodeID(base + r*cols + c) }
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				b.AddEdge(id(r, c), id(r, (c+1)%cols))
				b.AddEdge(id(r, c), id((r+1)%rows, c))
			}
		}
	}
	torus(0, r1, c1)
	torus(half1, r2, c2)
	for k := 0; k < cutEdges; k++ {
		b.AddEdge(NodeID(half1-1-k), NodeID(half1+k))
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	part, err := PartitionByPrefix(g, half1)
	if err != nil {
		return nil, nil, err
	}
	return g, part, nil
}

// nearSquareDims factors h as rows x cols with 3 <= rows <= cols and rows
// as large as possible (the most-square split keeps the torus diameter
// near 2*sqrt(h)).
func nearSquareDims(h int) (rows, cols int, ok bool) {
	best := 0
	for r := 3; r*r <= h; r++ {
		if h%r == 0 {
			best = r
		}
	}
	if best == 0 {
		return 0, 0, false
	}
	return best, h / best, true
}

// RingOfCliques returns `blocks` cliques of size m arranged in a cycle,
// adjacent cliques joined by `bridges` edges over distinct endpoint pairs.
// Clique i occupies nodes [i*m, (i+1)*m); the k-th bridge between cliques
// i and i+1 joins node i*m + (m-1-k) to node ((i+1) mod blocks)*m + k.
//
// The returned partition splits the ring into two contiguous arcs of
// blocks/2 and blocks-blocks/2 cliques, so its cut consists of the two
// bridge bundles where the arcs meet: |E12| = 2*bridges. It returns an
// error unless blocks >= 3, m >= 1, and bridges in [1, m].
func RingOfCliques(blocks, m, bridges int) (*Graph, *Partition, error) {
	if blocks < 3 {
		return nil, nil, fmt.Errorf("graph: ring of cliques needs blocks >= 3, got %d", blocks)
	}
	if m < 1 {
		return nil, nil, fmt.Errorf("graph: ring of cliques needs clique size >= 1, got %d", m)
	}
	if bridges < 1 || bridges > m {
		return nil, nil, fmt.Errorf("graph: ring of cliques bridges %d outside [1, %d]", bridges, m)
	}
	n := blocks * m
	b := NewBuilder(n).SetName(fmt.Sprintf("ringofcliques(blocks=%d,m=%d,bridges=%d)", blocks, m, bridges))
	for i := 0; i < blocks; i++ {
		base := i * m
		for u := 0; u < m; u++ {
			for v := u + 1; v < m; v++ {
				b.AddEdge(NodeID(base+u), NodeID(base+v))
			}
		}
		next := ((i + 1) % blocks) * m
		for k := 0; k < bridges; k++ {
			b.AddEdge(NodeID(base+m-1-k), NodeID(next+k))
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	part, err := PartitionByPrefix(g, (blocks/2)*m)
	if err != nil {
		return nil, nil, err
	}
	return g, part, nil
}

// HierarchicalDumbbell returns a dumbbell of dumbbells: two symmetric
// dumbbells on n/2 and n-n/2 nodes (each with innerCut internal cut
// edges) joined by outerCut edges between their facing cliques — a graph
// with two nested bottleneck scales. The returned partition is the outer
// (sparsest) cut, separating the two halves; the inner cuts stay inside
// the sides, so each side is itself a sparse-cut graph.
//
// It returns an error unless n >= 8 (each of the four cliques needs at
// least two nodes), innerCut fits both inner dumbbells, and outerCut is
// in [1, min facing clique size].
func HierarchicalDumbbell(n, innerCut, outerCut int) (*Graph, *Partition, error) {
	if n < 8 {
		return nil, nil, fmt.Errorf("graph: hierarchical dumbbell needs n >= 8, got %d", n)
	}
	half1, half2 := n/2, n-n/2
	// Clique boundaries: A = [0,q1), B = [q1,half1), C = [half1,half1+q3),
	// D = [half1+q3,n).
	q1, q3 := half1/2, half2/2
	sizeA, sizeB := q1, half1-q1
	sizeC, sizeD := q3, half2-q3
	if innerCut < 1 || innerCut > min(sizeA, sizeB) || innerCut > min(sizeC, sizeD) {
		return nil, nil, fmt.Errorf("graph: hierarchical dumbbell innerCut %d outside [1, %d]",
			innerCut, min(sizeA, sizeB, sizeC, sizeD))
	}
	if outerCut < 1 || outerCut > min(sizeB, sizeC) {
		return nil, nil, fmt.Errorf("graph: hierarchical dumbbell outerCut %d outside [1, %d]",
			outerCut, min(sizeB, sizeC))
	}
	b := NewBuilder(n).SetName(fmt.Sprintf("hierdumbbell(n=%d,inner=%d,outer=%d)", n, innerCut, outerCut))
	clique := func(lo, hi int) {
		for u := lo; u < hi; u++ {
			for v := u + 1; v < hi; v++ {
				b.AddEdge(NodeID(u), NodeID(v))
			}
		}
	}
	clique(0, q1)
	clique(q1, half1)
	clique(half1, half1+q3)
	clique(half1+q3, n)
	// Inner cuts, spread over distinct pairs like Dumbbell: between A|B and
	// between C|D.
	for k := 0; k < innerCut; k++ {
		b.AddEdge(NodeID(q1-1-k), NodeID(q1+k))
		b.AddEdge(NodeID(half1+q3-1-k), NodeID(half1+q3+k))
	}
	// Outer cut between the facing cliques B (ends at half1-1) and C
	// (starts at half1).
	for k := 0; k < outerCut; k++ {
		b.AddEdge(NodeID(half1-1-k), NodeID(half1+k))
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	part, err := PartitionByPrefix(g, half1)
	if err != nil {
		return nil, nil, err
	}
	return g, part, nil
}
