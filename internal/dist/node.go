package dist

import (
	"sync"
	"time"

	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
)

// node is one actor of the runtime. It owns its value outright — no other
// goroutine ever reads or writes it while the cluster runs — and
// communicates exclusively through the transport.
//
// # Exchange protocol (lock / propose / commit)
//
// A node initiates an exchange when its private Poisson clock fires while
// it is unlocked:
//
//	initiator                         responder
//	---------                         ---------
//	lock self
//	LOCK(seq, edge, x)  ───────────▶  busy or draining? ──▶ NACK(seq)
//	                                  else: lock self,
//	                                  d := rule.Delta(edge, x, y)
//	              ◀───────────────    PROPOSE(seq, d)   (held, retransmitted)
//	x += d (once), unlock
//	COMMIT(seq)         ───────────▶  y -= d, unlock
//
// Abort paths leave no state change anywhere: a busy responder NACKs the
// LOCK; a lock timeout releases the initiator; and a PROPOSE that arrives
// after its initiator already timed out is answered with a NACK, on which
// the responder rolls back its (uncommitted) proposal and unlocks. The
// initiator therefore only ever applies a delta for its *current*
// exchange, so a committed exchange always uses both endpoints' current
// values — there is no stale-value commit even under arbitrary delays.
//
// Loss paths: a lost LOCK times out into a clean abort; a lost PROPOSE or
// COMMIT is covered by the responder retransmitting the proposal on a
// lease timer until it is answered — the initiator deduplicates by a
// per-responder seq watermark and re-answers COMMIT for proposals it
// already applied. Because the initiator applies +d exactly once and the
// responder applies the exact negation exactly once (it is locked from
// proposal to resolution, so d stays valid), a committed exchange changes
// the value sum only by the two float roundings of x±d (~1 ulp each) no
// matter what the transport drops, delays or reorders; the dist tests
// bound the accumulated drift below 1e-9. The only transient is between the initiator's apply
// and the responder's: the drain phase at the end of every run resolves
// all held proposals before the run returns.
//
// An exchange whose proposal lost the race against the initiator's
// timeout is counted as aborted by the initiator and never committed by
// the responder; Exchanges counts responder-side commits.
//
// # Timing model
//
// Node u initiates at Poisson rate deg(u)/2 (in simulated time units,
// scaled to wall time by ClusterConfig.TimeScale) and picks a uniformly
// random incident edge. Edge {u,v} is then initiated at total rate
// deg(u)/2·1/deg(u) + deg(v)/2·1/deg(v) = 1 — exactly the rate-1
// independent edge clocks of internal/sim, so simulator horizons and
// runtime durations are directly comparable.
type node struct {
	id    int
	cl    *Cluster
	r     *rng.RNG
	inbox <-chan Message
	rate  float64 // initiation rate in simulated-time units: deg/2

	x   float64
	seq uint64
	// await is the outstanding initiation, if any; pend the held
	// (uncommitted) proposal awaiting its commit or abort, if any. The
	// node is locked while either is non-nil (it NACKs incoming LOCKs and
	// skips its own clock fires).
	await *awaitState
	pend  *pendState
	// lastApplied[r] is the highest seq whose proposal from responder r
	// has been applied, so retransmitted duplicates are answered with a
	// fresh COMMIT without reapplying. A per-responder watermark
	// suffices: a responder holds its lock until its proposal is
	// resolved, so it proposes to this node serially and a proposal with
	// seq at or below the watermark is always a duplicate of one already
	// applied. Memory is O(degree) per node.
	lastApplied map[int]uint64
	nextInit    time.Time
}

type awaitState struct {
	seq uint64
	// peer is the responder this initiation locked toward. Replies are
	// matched on (peer, seq), not seq alone: seq counters are per-node
	// namespaces, so a late duplicate NACK from an old exchange (carrying
	// the *other* node's seq) could otherwise collide with this node's
	// own counter and abort an unrelated healthy exchange.
	peer     int
	deadline time.Time
	// started is when the initiation's LOCK went out; the telemetry
	// latency histogram measures LOCK-sent → PROPOSE-applied from it.
	started time.Time
}

type pendState struct {
	msg    Message // the PROPOSE to retransmit; msg.X is the held delta
	resend time.Time
}

func newNode(id int, cl *Cluster, r *rng.RNG, inbox <-chan Message, x0 float64) *node {
	deg := cl.g.Degree(graph.NodeID(id))
	return &node{
		id:          id,
		cl:          cl,
		r:           r,
		inbox:       inbox,
		rate:        float64(deg) / 2,
		x:           x0,
		lastApplied: make(map[int]uint64),
	}
}

// scheduleNext draws the next clock fire: an Exp(rate) gap in simulated
// time, scaled to wall time. An isolated node has no edges to tick and its
// clock never fires (its value simply never changes, as in the simulator).
func (n *node) scheduleNext(now time.Time) {
	if n.rate == 0 {
		return
	}
	gap := n.r.ExpFloat64(n.rate) * float64(n.cl.cfg.TimeScale)
	n.nextInit = now.Add(time.Duration(gap))
}

// loop is the actor body. drainC closes when the run's horizon is reached:
// the node stops initiating and proposing but keeps serving (answering
// late proposals, re-committing duplicates, retransmitting its own held
// proposal) so every exchange resolves. stopC closes once the cluster has
// observed global quiescence; the node then exits.
func (n *node) loop(drainC, stopC <-chan struct{}, drainWG *sync.WaitGroup) {
	defer n.cl.wg.Done()
	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	draining := false
	n.scheduleNext(time.Now())
	for {
		var timerC <-chan time.Time
		if next, ok := n.nextDeadline(draining); ok {
			timer.Reset(time.Until(next))
			timerC = timer.C
		}
		select {
		case <-stopC:
			return
		case <-drainC:
			draining = true
			drainC = nil
			drainWG.Done()
		case m := <-n.inbox:
			n.handle(m, draining)
		case <-timerC:
			n.onTimer(draining)
		}
	}
}

// nextDeadline returns the earliest pending wall-clock deadline.
func (n *node) nextDeadline(draining bool) (time.Time, bool) {
	var t time.Time
	ok := false
	add := func(d time.Time) {
		if !ok || d.Before(t) {
			t, ok = d, true
		}
	}
	if !draining && n.rate > 0 {
		add(n.nextInit)
	}
	if n.await != nil {
		add(n.await.deadline)
	}
	if n.pend != nil {
		add(n.pend.resend)
	}
	return t, ok
}

// onTimer services whichever deadlines have passed.
func (n *node) onTimer(draining bool) {
	now := time.Now()
	if n.await != nil && !now.Before(n.await.deadline) {
		// The LOCK or its PROPOSE was lost (or the peer is saturated):
		// give up the initiation. A proposal that arrives after this point
		// is refused, so the responder rolls back and nothing commits.
		n.await = nil
		n.cl.awaiting.Add(-1)
		n.cl.aborted.Add(1)
	}
	if n.pend != nil && !now.Before(n.pend.resend) {
		n.send(n.pend.msg)
		n.pend.resend = now.Add(n.cl.resendEvery)
	}
	if !draining && n.rate > 0 && !now.Before(n.nextInit) {
		if n.await == nil && n.pend == nil {
			n.initiate(now)
		}
		// A fire while locked is simply skipped, like a simulator tick on
		// a busy pair; the clock always keeps running.
		n.scheduleNext(now)
	}
}

// initiate starts an exchange over a uniformly random incident edge.
func (n *node) initiate(now time.Time) {
	adj := n.cl.g.Neighbors(graph.NodeID(n.id))
	he := adj[n.r.Intn(len(adj))]
	n.seq++
	n.await = &awaitState{seq: n.seq, peer: int(he.Peer), deadline: now.Add(n.cl.lockTimeout), started: now}
	n.cl.awaiting.Add(1)
	n.cl.met.proposed.Inc(n.id)
	n.send(Message{Kind: MsgLock, From: n.id, To: int(he.Peer), Seq: n.seq, Edge: he.Edge, X: n.x})
}

// handle processes one incoming message.
func (n *node) handle(m Message, draining bool) {
	if m.Epoch != n.cl.epoch {
		// A leftover from a previous Run, stranded in the mailbox across
		// the run boundary (see Message.Epoch). Every previous-run
		// exchange is fully resolved by the time a run returns, so the
		// message is stale by construction.
		return
	}
	switch m.Kind {
	case MsgLock:
		if n.await != nil || n.pend != nil || draining {
			n.send(Message{Kind: MsgNack, From: n.id, To: m.From, Seq: m.Seq})
			return
		}
		// Propose: compute the initiator's delta and hold it, locked,
		// until the initiator commits or aborts. Nothing is applied yet,
		// so a NACK rolls back to exactly the pre-LOCK state. Note the
		// rule's tick (including the sparse-cut epoch counter) happens
		// here; a subsequently NACKed proposal has still consumed a tick,
		// like a simulator tick whose update is the identity.
		d := n.cl.rule.Delta(m.Edge, graph.NodeID(m.From), m.X, n.x)
		prop := Message{Kind: MsgPropose, From: n.id, To: m.From, Seq: m.Seq, Edge: m.Edge, X: d}
		n.pend = &pendState{msg: prop, resend: time.Now().Add(n.cl.resendEvery)}
		n.cl.pending.Add(1)
		n.send(prop)

	case MsgPropose:
		switch {
		case n.await != nil && n.await.seq == m.Seq && n.await.peer == m.From:
			// Our current exchange: apply our half and commit.
			n.lastApplied[m.From] = m.Seq
			n.x += m.X
			if h := n.cl.met.latency; h != nil {
				h.Observe(time.Since(n.await.started).Nanoseconds())
			}
			n.await = nil
			n.cl.awaiting.Add(-1)
			n.cl.met.publish(n.id, n.x)
			n.send(Message{Kind: MsgCommit, From: n.id, To: m.From, Seq: m.Seq})
		case m.Seq <= n.lastApplied[m.From]:
			// Duplicate of a proposal we already applied (our COMMIT was
			// lost): re-commit without reapplying.
			n.send(Message{Kind: MsgCommit, From: n.id, To: m.From, Seq: m.Seq})
		default:
			// A proposal for an exchange we already gave up on: refuse,
			// so the responder rolls back. This is what guarantees a
			// committed exchange never uses a stale initiator value.
			n.send(Message{Kind: MsgNack, From: n.id, To: m.From, Seq: m.Seq})
		}

	case MsgCommit:
		if n.pend != nil && n.pend.msg.Seq == m.Seq && n.pend.msg.To == m.From {
			n.x -= n.pend.msg.X
			n.pend = nil
			n.cl.pending.Add(-1)
			n.cl.exchanges.Add(1)
			n.cl.met.publish(n.id, n.x)
		}

	case MsgNack:
		if n.await != nil && n.await.seq == m.Seq && n.await.peer == m.From {
			n.await = nil
			n.cl.awaiting.Add(-1)
			n.cl.aborted.Add(1)
		}
		if n.pend != nil && n.pend.msg.Seq == m.Seq && n.pend.msg.To == m.From {
			// Our held proposal was refused: roll back (nothing was
			// applied) and unlock.
			n.pend = nil
			n.cl.pending.Add(-1)
		}
	}
}

func (n *node) send(m Message) {
	m.Epoch = n.cl.epoch
	n.cl.met.sent[m.Kind].Inc(n.id)
	if err := n.cl.tr.Send(m); err != nil {
		n.cl.noteSendErr(err)
	}
}
