package sparsecut

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	// The README quick-start, as a test.
	g, part, err := NewDumbbell(16, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	x0 := WorstCaseInit(part)
	alg, err := NewAlgorithmA(g, x0, WithPartition(part))
	if err != nil {
		t.Fatal(err)
	}
	res := Simulate(g, alg, 50, 1)
	if res.VarianceRatio > 1e-6 {
		t.Errorf("variance ratio %v after t=50", res.VarianceRatio)
	}
	if math.Abs(res.Mean) > 1e-9 {
		t.Errorf("mean drifted to %v", res.Mean)
	}
	if res.Events <= 0 || res.Time < 50 {
		t.Errorf("res = %+v", res)
	}
	if alg.Swaps() == 0 {
		t.Error("no swaps fired")
	}
}

func TestVanillaVsAlgorithmA(t *testing.T) {
	g, part, err := NewDumbbell(24, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	x0 := WorstCaseInit(part)
	van, err := NewVanillaGossip(g, x0)
	if err != nil {
		t.Fatal(err)
	}
	algA, err := NewAlgorithmA(g, x0, WithPartition(part))
	if err != nil {
		t.Fatal(err)
	}
	horizon := 15.0
	rv := Simulate(g, van, horizon, 2)
	ra := Simulate(g, algA, horizon, 2)
	if ra.VarianceRatio >= rv.VarianceRatio {
		t.Errorf("A ratio %v not below vanilla %v at t=%v", ra.VarianceRatio, rv.VarianceRatio, horizon)
	}
}

func TestConvexAndPushSumConstructors(t *testing.T) {
	g, _, err := NewDumbbell(8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	x0 := RandomInit(3, g.NumNodes())
	c, err := NewConvexGossip(g, x0, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPushSum(g, x0, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Convex algorithms cross the dumbbell's single cut edge slowly
	// (that is Theorem 1); the horizon checks convergence trend, not speed.
	for _, alg := range []Algorithm{c, p} {
		res := Simulate(g, alg, 100, 5)
		if res.VarianceRatio > 1e-4 {
			t.Errorf("%s: ratio %v", alg.Name(), res.VarianceRatio)
		}
	}
	if _, err := NewConvexGossip(g, x0, 2); err == nil {
		t.Error("alpha out of range not rejected")
	}
}

func TestFindSparseCutOnDumbbell(t *testing.T) {
	g, planted, err := NewDumbbell(10, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := FindSparseCut(g)
	if err != nil {
		t.Fatal(err)
	}
	if p.CutSize() != planted.CutSize() {
		t.Errorf("detected cut %d, planted %d", p.CutSize(), planted.CutSize())
	}
}

func TestAlgebraicConnectivity(t *testing.T) {
	g, _, err := NewDumbbell(8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	lam2, err := AlgebraicConnectivity(g)
	if err != nil {
		t.Fatal(err)
	}
	if lam2 <= 0 || lam2 > 1 {
		t.Errorf("dumbbell lambda2 = %v, want small positive", lam2)
	}
}

func TestGraphIO(t *testing.T) {
	g, part, err := NewPlantedPartition(5, 10, 12, 0.8, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Error("graph round trip changed edge count")
	}
	var dot bytes.Buffer
	if err := WriteDOT(&dot, g, part); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "graph") {
		t.Error("DOT output malformed")
	}
}

func TestNewSensorField(t *testing.T) {
	g, part, err := NewSensorField(7, 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	if part.CutSize() != 2 {
		t.Errorf("doors = %d, want 2", part.CutSize())
	}
	if !g.HasPositions() {
		t.Error("sensor field should carry positions")
	}
}

func TestMeasureAveragingTime(t *testing.T) {
	g, part, err := NewDumbbell(12, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	x0 := WorstCaseInit(part)
	res, err := MeasureAveragingTime(g, func(int, uint64) (Algorithm, error) {
		return NewVanillaGossip(g, x0)
	}, TavConfig{Trials: 3, MaxTime: 1e3, MarginFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tav <= 0 {
		t.Errorf("Tav = %v", res.Tav)
	}
	if res.Censored != 0 {
		t.Errorf("censored = %d", res.Censored)
	}
}

func TestMeasureAveragingTimeBatched(t *testing.T) {
	g, part, err := NewDumbbell(12, 12, 1)
	if err != nil {
		t.Fatal(err)
	}
	x0 := WorstCaseInit(part)
	res, err := MeasureAveragingTimeBatched(g, func(replicas int, _ []uint64) (BatchKernel, error) {
		return NewVanillaEnsemble(g, x0, replicas)
	}, TavConfig{Trials: 5, MaxTime: 1e3, MarginFactor: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tav <= 0 {
		t.Errorf("Tav = %v", res.Tav)
	}
	if res.Censored != 0 {
		t.Errorf("censored = %d", res.Censored)
	}
}

func TestBatchEngineFacade(t *testing.T) {
	g, part, err := NewDumbbell(8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	x0 := WorstCaseInit(part)
	ens, err := NewVanillaEnsemble(g, x0, 4)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewBatchEngine(g, ens, []uint64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunEvents(1000)
	if eng.Events() != 4000 {
		t.Errorf("events = %d, want 4000", eng.Events())
	}
	v0 := ens.ReplicaVariance(0)
	for rep := 1; rep < 4; rep++ {
		if v := ens.ReplicaVariance(rep); v == v0 {
			t.Errorf("replicas %d and 0 produced identical variance %v from distinct seeds", rep, v)
		}
	}
}

func TestShardEngineFacade(t *testing.T) {
	g, err := NewImplicitDumbbell(24, 24, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 48 {
		t.Fatalf("n = %d", g.NumNodes())
	}
	x0 := make([]float64, 48)
	for u := 0; u < 24; u++ {
		x0[u] = 1
	}
	run := func(workers int) (float64, int64) {
		st, err := NewFlatState(x0, g.Tiling().Bounds())
		if err != nil {
			t.Fatal(err)
		}
		eng := NewShardEngine(g.Tiling(), st, 7, ShardConfig{Workers: workers})
		eng.RunUntil(0.5)
		return st.Variance(), eng.Events()
	}
	v1, e1 := run(1)
	v4, e4 := run(4)
	if e1 == 0 {
		t.Fatal("no events simulated")
	}
	if v1 != v4 || e1 != e4 {
		t.Errorf("worker count changed results: (%v, %d) vs (%v, %d)", v1, e1, v4, e4)
	}

	res, err := MeasureAveragingTimeSharded(g, x0, TavConfig{Trials: 3, MaxTime: 1e3, MarginFactor: 1}, ShardedTavOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tav <= 0 || res.Censored != 0 {
		t.Errorf("sharded Tav = %v (censored %d)", res.Tav, res.Censored)
	}
}

func TestExperimentsRegistry(t *testing.T) {
	all := Experiments()
	if len(all) != 15 {
		t.Fatalf("%d experiments", len(all))
	}
	var buf bytes.Buffer
	metrics, err := RunExperiment(&buf, "E7", true, 2)
	if err != nil {
		t.Fatal(err)
	}
	if metrics["beta"] <= 0 {
		t.Error("E7 metrics missing")
	}
	if _, err := RunExperiment(&buf, "E99", true, 2); err == nil {
		t.Error("unknown experiment not rejected")
	}
}

func TestSimulatePanicsOnNilAlgorithm(t *testing.T) {
	g, _, err := NewDumbbell(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Simulate(nil) did not panic")
		}
	}()
	Simulate(g, nil, 1, 1)
}

func TestWeightRuleReexports(t *testing.T) {
	g, part, err := NewDumbbell(8, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAlgorithmA(g, WorstCaseInit(part), WithPartition(part), WithWeightRule(WeightPaper))
	if err != nil {
		t.Fatal(err)
	}
	if a.Weight() != 8 {
		t.Errorf("paper weight = %v, want n1 = 8", a.Weight())
	}
	b, err := NewAlgorithmA(g, WorstCaseInit(part), WithPartition(part),
		WithEpochTicks(3), WithWeight(2.5), WithCutEdge(part.CutEdges()[0]))
	if err != nil {
		t.Fatal(err)
	}
	if b.Weight() != 2.5 || b.EpochTicks() != 3 {
		t.Errorf("custom config not applied: %v, %v", b.Weight(), b.EpochTicks())
	}
}

func TestDecentralizedRuntimeFacade(t *testing.T) {
	g, part, err := NewDumbbell(6, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	x0 := WorstCaseInit(part)
	rule, err := NewSparseCutExchange(part, part.CutEdges()[0], 2, ExactSwapWeight(part))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewDropTransport(NewChanTransport(4*g.NumNodes()), 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(g, x0, rule, ClusterConfig{
		TimeScale: 4 * time.Millisecond,
		Seed:      1,
		Transport: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(context.Background(), 20); err != nil {
		t.Fatal(err)
	}
	if cl.Exchanges() == 0 {
		t.Fatal("no exchanges committed")
	}
	if math.Abs(cl.Mean()) > 1e-9 {
		t.Errorf("mean drifted to %v", cl.Mean())
	}

	// The vanilla exchange rule and the delay transport compose the same way.
	vtr, err := NewDelayTransport(NewChanTransport(4*g.NumNodes()), time.Millisecond, 8)
	if err != nil {
		t.Fatal(err)
	}
	vcl, err := NewCluster(g, x0, NewAveragingExchange(), ClusterConfig{
		TimeScale:   4 * time.Millisecond,
		Seed:        2,
		Transport:   vtr,
		LockTimeout: 8 * time.Millisecond, // must exceed the delay round trip
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := vcl.Run(context.Background(), 10); err != nil {
		t.Fatal(err)
	}
	if vcl.Exchanges() == 0 {
		t.Fatal("no exchanges committed with the averaging rule")
	}
}

func TestScenarioSweepFacade(t *testing.T) {
	// The new composites are reachable from the facade...
	g, part, err := NewRingOfCliques(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 16 || part.CutSize() != 2 {
		t.Fatalf("ring of cliques: %d nodes, cut %d", g.NumNodes(), part.CutSize())
	}
	if _, part, err = NewHierarchicalDumbbell(16, 1, 1); err != nil || part.CutSize() != 1 {
		t.Fatalf("hierarchical dumbbell: cut %d, err %v", part.CutSize(), err)
	}
	// ...and so is the whole registry.
	fams := ScenarioFamilies()
	if len(fams) < 15 {
		t.Fatalf("only %d scenario families registered", len(fams))
	}
	res, err := ResolveScenario(Scenario{
		Graph: ScenarioGraph{Family: "ringofcliques", N: 16},
		Algo:  ScenarioAlgo{Name: "A"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partition == nil {
		t.Fatal("ring of cliques should resolve with a planted partition")
	}
	// A tiny sweep through the facade stays deterministic across workers.
	grid := SweepGrid{
		Base:  Scenario{Graph: ScenarioGraph{Family: "dumbbell", Cut: 1}, Stop: ScenarioStop{Trials: 2, MaxTime: 100}},
		Ns:    []int{12},
		Algos: []string{"vanilla", "A"},
	}
	rep1, err := RunSweep(grid, SweepConfig{Workers: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := RunSweep(grid, SweepConfig{Workers: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep1.Cells) != 2 || len(rep2.Cells) != 2 {
		t.Fatalf("expected 2 cells, got %d and %d", len(rep1.Cells), len(rep2.Cells))
	}
	for i := range rep1.Cells {
		if rep1.Cells[i] != rep2.Cells[i] {
			t.Errorf("cell %d differs across worker counts", i)
		}
	}
}

func TestModelCheckerFacade(t *testing.T) {
	g, err := ReadGraph(strings.NewReader("nodes 3\n0 1\n1 2\n0 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	spec := CheckSpec{Graph: g, X0: []float64{1, 5, 0}, Rule: CheckVanillaRule()}
	opt := CheckOptions{MaxDepth: 10, Drops: true, Dups: true, Crashes: true}

	res, err := CheckExchange(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample != nil {
		t.Fatalf("correct protocol violated an invariant:\n%+v", res.Counterexample.Violation)
	}
	if res.StatesExplored == 0 {
		t.Fatal("no states explored")
	}

	// A seeded bug — one of the two real ones the checker found in the
	// protocol's own history — is caught, and its trace replays.
	mu, ok := ParseProtocolMutation("lax-watermark-dedup")
	if !ok {
		t.Fatal("mutation name not recognised")
	}
	opt.Mutation = mu
	res, err = CheckExchange(spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample == nil {
		t.Fatal("seeded mutation not caught")
	}
	v, err := ReplayTrace(res.Counterexample)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Counterexample.Violation.Same(v) {
		t.Fatalf("replayed violation %+v differs from recorded %+v", v, res.Counterexample.Violation)
	}

	// Random-walk mode through the facade stays clean on the correct
	// protocol.
	wres, err := CheckExchangeWalks(CheckSpec{Graph: g, X0: []float64{1, 5, 0}, Rule: CheckVanillaRule()},
		CheckOptions{MaxDepth: 16, Drops: true}, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	if wres.Counterexample != nil {
		t.Fatalf("random walk found a violation in the correct protocol:\n%+v", wres.Counterexample.Violation)
	}
}

func TestCrashScheduleFacade(t *testing.T) {
	g, part, err := NewDumbbell(6, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	x0 := WorstCaseInit(part)
	cl, err := NewCluster(g, x0, NewAveragingExchange(), ClusterConfig{
		TimeScale: 4 * time.Millisecond,
		Seed:      9,
		Crashes: []CrashEvent{
			{Node: 0, At: 1, Recover: 3},
			{Node: 7, At: 2}, // down until the drain force-recovers it
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(context.Background(), 8); err != nil {
		t.Fatal(err)
	}
	if cl.Crashes() != 2 {
		t.Fatalf("crash schedule fired %d times, want 2", cl.Crashes())
	}
	if cl.Exchanges() == 0 {
		t.Fatal("no exchanges committed around the crashes")
	}
	if math.Abs(cl.Mean()) > 1e-9 {
		t.Errorf("mean drifted to %v across a crash-faulted run", cl.Mean())
	}
}
