package graph

// Plain-text I/O: a minimal edge-list format for persisting generated
// graphs and a Graphviz DOT exporter for visual inspection.
//
// Edge-list format (line-oriented, '#' comments):
//
//	# name: dumbbell(n1=4,n2=4,cut=1)
//	nodes 8
//	0 1
//	0 2
//	...

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList serialises g in the package's edge-list format.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if g.Name() != "" {
		fmt.Fprintf(bw, "# name: %s\n", g.Name())
	}
	fmt.Fprintf(bw, "nodes %d\n", g.NumNodes())
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "%d %d\n", e.U, e.V)
	}
	return bw.Flush()
}

// ReadEdgeList parses the package's edge-list format. Edge IDs are assigned
// in file order. Graph names round-trip through the "# name:" comment.
func ReadEdgeList(rd io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var b *Builder
	name := ""
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "#"):
			if rest, ok := strings.CutPrefix(line, "# name:"); ok {
				name = strings.TrimSpace(rest)
			}
			continue
		case strings.HasPrefix(line, "nodes"):
			if b != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate nodes header", lineNo)
			}
			fields := strings.Fields(line)
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: malformed nodes header %q", lineNo, line)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", lineNo, fields[1])
			}
			b = NewBuilder(n).SetName(name)
		default:
			if b == nil {
				return nil, fmt.Errorf("graph: line %d: edge before nodes header", lineNo)
			}
			fields := strings.Fields(line)
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: malformed edge %q", lineNo, line)
			}
			u, err1 := strconv.Atoi(fields[0])
			v, err2 := strconv.Atoi(fields[1])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("graph: line %d: malformed edge %q", lineNo, line)
			}
			b.AddEdge(NodeID(u), NodeID(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	if b == nil {
		return nil, fmt.Errorf("graph: edge list missing nodes header")
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	g.name = name
	return g, nil
}

// WriteDOT exports g in Graphviz format. When part is non-nil, the two
// sides are coloured and cut edges drawn bold red. Positions, when present,
// are emitted as pos attributes (usable with neato -n).
func WriteDOT(w io.Writer, g *Graph, part *Partition) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "graph %q {\n", dotName(g))
	fmt.Fprintf(bw, "  node [shape=circle, fontsize=10];\n")
	for u := 0; u < g.NumNodes(); u++ {
		attrs := []string{}
		if part != nil {
			color := "lightblue"
			if part.SideOf(NodeID(u)) == Side2 {
				color = "lightsalmon"
			}
			attrs = append(attrs, "style=filled", "fillcolor="+color)
		}
		if g.HasPositions() {
			p := g.Position(NodeID(u))
			attrs = append(attrs, fmt.Sprintf("pos=\"%.4f,%.4f!\"", p.X*10, p.Y*10))
		}
		if len(attrs) > 0 {
			fmt.Fprintf(bw, "  %d [%s];\n", u, strings.Join(attrs, ", "))
		}
	}
	for id, e := range g.Edges() {
		if part != nil && part.IsCutEdge(EdgeID(id)) {
			fmt.Fprintf(bw, "  %d -- %d [color=red, penwidth=2.5];\n", e.U, e.V)
		} else {
			fmt.Fprintf(bw, "  %d -- %d;\n", e.U, e.V)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

func dotName(g *Graph) string {
	if g.Name() == "" {
		return "G"
	}
	return g.Name()
}
