// Package spectral provides the matrix-free linear algebra used to analyse
// gossip processes: graph Laplacian operators, power iteration with
// deflation, the algebraic connectivity λ2 and its Fiedler vector, and the
// analytic vanilla-averaging-time bound derived from λ2.
//
// Everything is matrix-free (operators apply to vectors through the graph's
// adjacency structure), so graphs with 10^5+ edges are handled without
// forming dense matrices, using only the standard library.
//
// Key types/functions: Operator, PowerIteration, Lambda2, TvanBound, SideTvanBounds, TheoremTwoBound — the bound formulas behind the reproduction's PASS/FAIL checks (DESIGN.md §9.2).
package spectral

import "math"

// Dot returns the inner product of x and y. The slices must have equal
// length (enforced by the callers in this package).
func Dot(x, y []float64) float64 {
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// Axpy computes y += a*x in place.
func Axpy(a float64, x, y []float64) {
	for i := range x {
		y[i] += a * x[i]
	}
}

// Scale multiplies x by a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// Normalize scales x to unit Euclidean norm and returns the original norm.
// A zero vector is left unchanged and 0 is returned.
func Normalize(x []float64) float64 {
	n := Norm2(x)
	if n == 0 {
		return 0
	}
	Scale(1/n, x)
	return n
}

// Mean returns the arithmetic mean of x (0 for empty).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// CenterMean subtracts the mean from every entry, projecting x onto the
// subspace orthogonal to the all-ones vector. It returns the removed mean.
func CenterMean(x []float64) float64 {
	m := Mean(x)
	for i := range x {
		x[i] -= m
	}
	return m
}

// Variance returns the population variance of x — the paper's varX.
func Variance(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	s := 0.0
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}
