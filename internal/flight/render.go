package flight

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// The rendering views. All of them write deterministic plain text for a
// given span set and filter (no map iteration, stable sorts), so piping
// tracez output through a byte-diff is a valid regression check.

func fmtDur(ns int64) string {
	if ns < 0 {
		return "?"
	}
	return time.Duration(ns).String()
}

// fmtAt renders an absolute timestamp relative to base.
func fmtAt(ns, base int64) string {
	if ns < 0 {
		return "?"
	}
	return "+" + time.Duration(ns-base).String()
}

func (sp *Span) label() string {
	resp := "?"
	if sp.Resp != NoNode {
		resp = fmt.Sprintf("%d", sp.Resp)
	}
	edge := ""
	if sp.Edge != NoNode {
		edge = fmt.Sprintf(" edge %d", sp.Edge)
	}
	return fmt.Sprintf("exchange %d#%d -> %s%s", sp.Init, sp.Seq, resp, edge)
}

func (sp *Span) outcomeLabel() string {
	if sp.Reason != "" {
		return sp.Outcome + "/" + sp.Reason
	}
	return sp.Outcome
}

// RenderSpans writes the one-line-per-span summary view.
func RenderSpans(w io.Writer, set *SpanSet, f Filter) {
	spans := set.Select(f)
	committed, aborted := 0, 0
	for _, sp := range spans {
		switch sp.Outcome {
		case OutcomeCommitted:
			committed++
		case OutcomeAborted:
			aborted++
		}
	}
	fmt.Fprintf(w, "spans: %d (%d committed, %d aborted, %d unresolved)",
		len(spans), committed, aborted, len(spans)-committed-aborted)
	if set.Overwritten > 0 {
		fmt.Fprintf(w, "  [ring overwrote %d records; oldest spans may be partial]", set.Overwritten)
	}
	fmt.Fprintln(w)
	for _, sp := range spans {
		fmt.Fprintf(w, "  %-28s %-18s lat=%-10s hops=%d", sp.label(), sp.outcomeLabel(), fmtDur(sp.Latency()), sp.Hops)
		if sp.Drops > 0 {
			fmt.Fprintf(w, " drops=%d", sp.Drops)
		}
		if sp.Resends > 0 {
			fmt.Fprintf(w, " resends=%d", sp.Resends)
		}
		if sp.Dups > 0 {
			fmt.Fprintf(w, " dups=%d", sp.Dups)
		}
		fmt.Fprintln(w)
	}
}

// describeRecord renders one record as a timeline leaf.
func describeRecord(e Record) string {
	switch e.Kind {
	case EvSend, EvRecv, EvNetDrop, EvNetDup:
		dir := fmt.Sprintf("%s %d->%d seq=%d", MsgName(e.Msg), e.Node, e.Peer, e.Seq)
		if e.Kind == EvRecv || (e.Kind == EvNetDrop && e.Flags == ReasonDead) {
			dir = fmt.Sprintf("%s %d->%d seq=%d", MsgName(e.Msg), e.Peer, e.Node, e.Seq)
		}
		s := fmt.Sprintf("%-8s %s", e.Kind, dir)
		if e.Msg == MsgNack {
			s += fmt.Sprintf(" re=%s", MsgName(e.Re))
		}
		if e.Kind == EvNetDrop {
			s += fmt.Sprintf(" (%s)", ReasonName(e.Flags))
		}
		return s
	case EvInitiate:
		return fmt.Sprintf("%-8s node %d locks toward %d (x=%g)", e.Kind, e.Node, e.Peer, e.X)
	case EvPendHold:
		return fmt.Sprintf("%-8s node %d holds proposal (delta=%g)", e.Kind, e.Node, e.X)
	case EvApply:
		return fmt.Sprintf("%-8s node %d applies %+g", e.Kind, e.Node, e.X)
	case EvCommit:
		return fmt.Sprintf("%-8s node %d applies %+g, exchange committed", e.Kind, e.Node, -e.X)
	case EvAbort:
		return fmt.Sprintf("%-8s node %d abandons its initiation (%s)", e.Kind, e.Node, ReasonName(e.Flags))
	case EvPendDrop:
		return fmt.Sprintf("%-8s node %d rolls the proposal back", e.Kind, e.Node)
	case EvTimeout, EvResend, EvCrash, EvRecover:
		return fmt.Sprintf("%-8s node %d", e.Kind, e.Node)
	default:
		return fmt.Sprintf("%-8s node %d", e.Kind, e.Node)
	}
}

// RenderTimeline writes the span-tree view: one tree per span, each record
// a leaf stamped with its offset from the span's first event.
func RenderTimeline(w io.Writer, set *SpanSet, f Filter) {
	spans := set.Select(f)
	for _, sp := range spans {
		base := sp.start()
		fmt.Fprintf(w, "%s  [%s]  lat=%s\n", sp.label(), sp.outcomeLabel(), fmtDur(sp.Latency()))
		for i, e := range sp.Events {
			branch := "├─"
			if i == len(sp.Events)-1 {
				branch = "└─"
			}
			fmt.Fprintf(w, "  %s %-10s %s\n", branch, fmtAt(e.TimeNs, base), describeRecord(e))
		}
	}
	if len(set.Loose) > 0 {
		fmt.Fprintf(w, "outside any exchange: %d records\n", len(set.Loose))
		base := set.Loose[0].TimeNs
		for i, e := range set.Loose {
			branch := "├─"
			if i == len(set.Loose)-1 {
				branch = "└─"
			}
			fmt.Fprintf(w, "  %s %-10s %s\n", branch, fmtAt(e.TimeNs, base), describeRecord(e))
		}
	}
}

// quantile returns the exact q-quantile of sorted (nearest-rank).
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return -1
	}
	i := int(q*float64(len(sorted)) + 0.5)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	if i < 0 {
		i = 0
	}
	return sorted[i]
}

func phaseRow(w io.Writer, name string, samples []int64) {
	if len(samples) == 0 {
		fmt.Fprintf(w, "  %-16s %6d\n", name, 0)
		return
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum int64
	for _, v := range samples {
		sum += v
	}
	fmt.Fprintf(w, "  %-16s %6d  mean=%-10s p50=%-10s p95=%-10s p99=%-10s max=%s\n",
		name, len(samples),
		fmtDur(sum/int64(len(samples))),
		fmtDur(quantile(samples, 0.50)), fmtDur(quantile(samples, 0.95)),
		fmtDur(quantile(samples, 0.99)), fmtDur(samples[len(samples)-1]))
}

// RenderPhases writes the per-phase latency breakdown over the selected
// spans: where LOCK→COMMIT time goes, leg by leg, with exact quantiles
// computed from the span timestamps.
func RenderPhases(w io.Writer, set *SpanSet, f Filter) {
	spans := set.Select(f)
	var lockHold, holdApply, applyEnd, total []int64
	for _, sp := range spans {
		if sp.LockNs >= 0 && sp.HoldNs >= 0 {
			lockHold = append(lockHold, sp.HoldNs-sp.LockNs)
		}
		if sp.HoldNs >= 0 && sp.ApplyNs >= 0 {
			holdApply = append(holdApply, sp.ApplyNs-sp.HoldNs)
		}
		if sp.ApplyNs >= 0 && sp.EndNs >= 0 {
			applyEnd = append(applyEnd, sp.EndNs-sp.ApplyNs)
		}
		if l := sp.Latency(); l >= 0 && sp.Outcome == OutcomeCommitted {
			total = append(total, l)
		}
	}
	fmt.Fprintf(w, "phase latency over %d spans (committed end-to-end: %d)\n", len(spans), len(total))
	phaseRow(w, "lock->hold", lockHold)
	phaseRow(w, "hold->apply", holdApply)
	phaseRow(w, "apply->resolve", applyEnd)
	phaseRow(w, "lock->resolve", total)
}

// RenderAborts writes the top-aborts view: abort counts by reason, then by
// (initiator, responder) pair, most frequent first.
func RenderAborts(w io.Writer, set *SpanSet, f Filter) {
	spans := set.Select(f)
	byReason := make(map[string]int)
	byPair := make(map[[2]int]int)
	aborts := 0
	for _, sp := range spans {
		if sp.Outcome != OutcomeAborted {
			continue
		}
		aborts++
		reason := sp.Reason
		if reason == "" {
			reason = "unknown"
		}
		byReason[reason]++
		byPair[[2]int{sp.Init, sp.Resp}]++
	}
	fmt.Fprintf(w, "aborts: %d of %d spans\n", aborts, len(spans))
	reasons := make([]string, 0, len(byReason))
	for r := range byReason {
		reasons = append(reasons, r)
	}
	sort.Slice(reasons, func(i, j int) bool {
		if byReason[reasons[i]] != byReason[reasons[j]] {
			return byReason[reasons[i]] > byReason[reasons[j]]
		}
		return reasons[i] < reasons[j]
	})
	for _, r := range reasons {
		fmt.Fprintf(w, "  %-12s %d\n", r, byReason[r])
	}
	pairs := make([][2]int, 0, len(byPair))
	for p := range byPair {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if byPair[pairs[i]] != byPair[pairs[j]] {
			return byPair[pairs[i]] > byPair[pairs[j]]
		}
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	if len(pairs) > 8 {
		pairs = pairs[:8]
	}
	for _, p := range pairs {
		fmt.Fprintf(w, "  pair %d->%d: %d\n", p[0], p[1], byPair[p])
	}
}

// RenderCritical writes the critical-path view: the slowest committed span
// under the filter, broken into its inter-event segments, longest first —
// where that exchange's latency actually went.
func RenderCritical(w io.Writer, set *SpanSet, f Filter) {
	spans := set.Select(f)
	var worst *Span
	for _, sp := range spans {
		if sp.Outcome != OutcomeCommitted || sp.Latency() < 0 {
			continue
		}
		if worst == nil || sp.Latency() > worst.Latency() {
			worst = sp
		}
	}
	if worst == nil {
		fmt.Fprintln(w, "critical path: no committed span with a full latency observation")
		return
	}
	fmt.Fprintf(w, "critical path: slowest committed span %s  lat=%s\n", worst.label(), fmtDur(worst.Latency()))
	type seg struct {
		dur      int64
		from, to string
	}
	evs := append([]Record(nil), worst.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].TimeNs < evs[j].TimeNs })
	var segs []seg
	for i := 1; i < len(evs); i++ {
		if d := evs[i].TimeNs - evs[i-1].TimeNs; d > 0 {
			segs = append(segs, seg{d, describeRecord(evs[i-1]), describeRecord(evs[i])})
		}
	}
	sort.SliceStable(segs, func(i, j int) bool { return segs[i].dur > segs[j].dur })
	for _, s := range segs {
		fmt.Fprintf(w, "  %-10s %s  ==>  %s\n", fmtDur(s.dur), s.from, s.to)
	}
}
