package report

// E15: the scale experiment. The sharded PDES engine (DESIGN.md §13) is a
// pure engineering claim — Poisson superposition decomposes the edge-clock
// process exactly, so the windowed tile simulation must reproduce the
// per-event oracle's averaging times while never materialising the graph.
// The entry runs the same scenario grid through both paths and compares.

import (
	"fmt"

	"sparsecut/internal/graph"
	"sparsecut/internal/scenario"
	"sparsecut/internal/sweep"
)

func init() {
	register(Entry{
		ID:    "E15",
		Title: "scale: sharded PDES engine vs the per-event oracle",
		Claim: "Engineering: Poisson superposition splits the edge-clock process into independent per-tile streams plus a boundary stream, so the windowed sharded engine matches the oracle's Tav and preserves the Theorem 1 shape at O(n) memory",
		Run:   runE15,
	})
}

// prefixCutSize counts the implicit graph's boundary edges crossing the
// prefix partition [0, SplitPoint) — the cut the worst-case init vector
// straddles, hence the one Theorem 1 bounds.
func prefixCutSize(ig graph.Implicit) int {
	sp := graph.NodeID(ig.SplitPoint())
	cut := 0
	for _, e := range ig.Tiling().Boundary {
		if (e.U < sp) != (e.V < sp) {
			cut++
		}
	}
	return cut
}

// e15Window is the sharded barrier spacing used by the comparison: well
// below every Tav scale in the tables, so window quantisation is
// negligible against Monte-Carlo noise.
const e15Window = 0.25

func runE15(p Params) (Section, error) {
	var sec Section
	trials := pick(p, 3, 7)
	cases := []struct {
		label   string
		base    scenario.GraphSpec
		ns      []int
		theorem bool // check the Theorem 1 shape on the sharded path
	}{
		{
			label:   "symmetric dumbbell, 1 cut edge",
			base:    scenario.GraphSpec{Family: "dumbbell", Cut: 1},
			ns:      pick(p, []int{32, 48}, []int{64, 96, 128}),
			theorem: true,
		},
		{
			label: "ring of 4 cliques, 1 bridge per joint",
			base:  scenario.GraphSpec{Family: "ringofcliques", Blocks: 4, Cut: 1},
			ns:    pick(p, []int{32, 48}, []int{64, 96, 128}),
		},
	}
	for _, fc := range cases {
		oracleGrid := sweep.Grid{
			Base: scenario.Spec{
				Graph: fc.base,
				Stop:  scenario.StopSpec{Trials: trials},
			},
			Ns:    fc.ns,
			Algos: []string{"vanilla"},
		}
		shardedGrid := oracleGrid
		shardedGrid.Base.Stop.Shards = 4
		shardedGrid.Base.Stop.Window = e15Window

		oracle, err := runGrid(&sec, gridTable{name: "per-event oracle, " + fc.label, grid: oracleGrid}, p)
		if err != nil {
			return sec, err
		}
		rep, err := sweep.Run(shardedGrid, sweep.Config{Workers: p.Workers, Seed: p.Seed})
		if err != nil {
			return sec, err
		}
		sharded := rep.Cells
		if len(sharded) != len(oracle) {
			return sec, fmt.Errorf("E15: %d sharded vs %d oracle cells", len(sharded), len(oracle))
		}

		tbl := Table{
			Name:    "sharded engine (4 workers, Δ=0.25), " + fc.label,
			Columns: []string{"cell", "n", "|E|", "tiles", "cens", "oracle Tav", "sharded Tav", "ratio"},
		}
		var prevTav float64
		for i, c := range sharded {
			if c.Error != "" {
				return sec, fmt.Errorf("cell %s: %s", c.Label, c.Error)
			}
			r, err := c.Spec.Resolve()
			if err != nil {
				return sec, err
			}
			til := r.Implicit.Tiling()
			ratio := c.Tav / oracle[i].Tav
			tbl.Rows = append(tbl.Rows, []string{
				c.Label,
				fmt.Sprintf("%d", c.Nodes),
				fmt.Sprintf("%d", c.Edges),
				fmt.Sprintf("%d", len(til.Tiles)),
				fmt.Sprintf("%d", c.Censored),
				oracle[i].TavString(),
				c.TavString(),
				fmt.Sprintf("%.3f", ratio),
			})
			sec.addCheck(fmt.Sprintf("sharded vs oracle Tav at %s", c.Label), ratio,
				"within 2.5x either way (same distribution; the KS unit tests pin this tighter)",
				c.Censored == 0 && ratio > 1/2.5 && ratio < 2.5)
			sec.addMetric(fmt.Sprintf("tav-sharded-%s@%d", c.Spec.Graph.Family, c.Nodes), c.Tav)
			sec.addMetric(fmt.Sprintf("ratio-%s@%d", c.Spec.Graph.Family, c.Nodes), ratio)

			if fc.theorem {
				bound := float64(c.Nodes/2) / float64(prefixCutSize(r.Implicit))
				sec.addCheck(fmt.Sprintf("Theorem 1 shape on the sharded path at n=%d", c.Nodes), c.Tav/bound,
					fmt.Sprintf(">= %.2g of min(|V1|,|V2|)/|E12|", Theorem1Margin),
					c.Tav >= Theorem1Margin*bound)
			}
			if i > 0 {
				sec.addCheck(fmt.Sprintf("sharded Tav monotone in n, %s, n=%d", c.Spec.Graph.Family, c.Nodes),
					c.Tav/prevTav, "> 1 (Tav grows with n at fixed cut)", c.Tav > prevTav)
			}
			prevTav = c.Tav
		}
		sec.Tables = append(sec.Tables, tbl)
	}
	sec.Notes = append(sec.Notes,
		"The sharded engine's output is byte-identical for any worker count (the tiling and RNG streams are fixed by the graph); the determinism and KS cross-checks live in internal/sim and internal/avgtime tests. The same engine completes a 10^6-node dumbbell (2.5x10^11 edges, never materialised) at ~30 ns/event — see cmd/bench's sharded rows.")
	return sec, nil
}
