package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the fixed bucket count of every Histogram: bucket 0 holds
// non-positive values and bucket k (1 ≤ k ≤ 64) holds the log2 range
// [2^(k−1), 2^k − 1]. Together they cover every int64 exactly once, so no
// observation is ever out of range.
const NumBuckets = 65

// Histogram is a fixed-bucket log2 histogram for latencies (nanoseconds)
// and sizes (bytes, events): 65 power-of-two buckets, an exact count and
// an exact sum. Recording is two atomic adds — no allocation, no locking,
// no floating point — so it is safe on hot paths; the zero value is ready
// to use and methods are no-ops on a nil receiver.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// bucketIndex maps a value to its bucket: 0 for v ≤ 0, otherwise
// bits.Len64(v), i.e. 1+floor(log2 v).
func bucketIndex(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketBounds returns the inclusive [lo, hi] value range of bucket i.
// Bucket 0 is reported as [0, 0] although it also absorbs negative
// observations (clamped — a latency or size below zero is a measurement
// artifact, not a range to track).
func BucketBounds(i int) (lo, hi uint64) {
	if i <= 0 {
		return 0, 0
	}
	lo = uint64(1) << (i - 1)
	if i >= 64 {
		return lo, math.MaxUint64
	}
	return lo, uint64(1)<<i - 1
}

// Observe records v. Negative values count in bucket 0 and contribute 0 to
// the sum.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed values (negatives clamped to 0).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// snapshot captures the histogram's current state. Concurrent with writers
// the buckets are each individually exact but may not form a consistent
// cut; quiescent reads are exact.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			lo, hi := BucketBounds(i)
			s.Buckets = append(s.Buckets, Bucket{Lo: lo, Hi: hi, Count: n})
		}
	}
	return s
}
