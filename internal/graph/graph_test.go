package graph

import (
	"strings"
	"testing"
	"testing/quick"

	"sparsecut/internal/rng"
)

func TestNewEdgeNormalises(t *testing.T) {
	e := NewEdge(5, 2)
	if e.U != 2 || e.V != 5 {
		t.Errorf("NewEdge(5,2) = %v, want 2-5", e)
	}
	if e.String() != "2-5" {
		t.Errorf("String = %q", e.String())
	}
}

func TestEdgeOther(t *testing.T) {
	e := NewEdge(1, 4)
	if e.Other(1) != 4 || e.Other(4) != 1 {
		t.Error("Other returned wrong endpoint")
	}
	defer func() {
		if recover() == nil {
			t.Error("Other on non-endpoint did not panic")
		}
	}()
	e.Other(2)
}

func TestBuilderBasic(t *testing.T) {
	g, err := NewBuilder(3).AddEdge(0, 1).AddEdge(1, 2).Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Degree(1) != 2 || g.Degree(0) != 1 {
		t.Error("wrong degrees")
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	if _, err := NewBuilder(2).AddEdge(1, 1).Build(); err == nil {
		t.Error("self-loop not rejected")
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	if _, err := NewBuilder(2).AddEdge(0, 2).Build(); err == nil {
		t.Error("out-of-range edge not rejected")
	}
	if _, err := NewBuilder(2).AddEdge(-1, 0).Build(); err == nil {
		t.Error("negative endpoint not rejected")
	}
}

func TestBuilderRejectsNegativeN(t *testing.T) {
	if _, err := NewBuilder(-1).Build(); err == nil {
		t.Error("negative node count not rejected")
	}
}

func TestBuilderDeduplicates(t *testing.T) {
	g, err := NewBuilder(2).AddEdge(0, 1).AddEdge(1, 0).AddEdge(0, 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("got %d edges, want 1", g.NumEdges())
	}
}

func TestBuilderPositionLengthMismatch(t *testing.T) {
	if _, err := NewBuilder(2).SetPositions([]Point{{}}).Build(); err == nil {
		t.Error("position length mismatch not rejected")
	}
}

func TestFindEdge(t *testing.T) {
	g := Path(4)
	id, ok := g.FindEdge(1, 2)
	if !ok {
		t.Fatal("edge 1-2 not found")
	}
	if e := g.Edge(id); e != NewEdge(1, 2) {
		t.Errorf("FindEdge returned edge %v", e)
	}
	if _, ok := g.FindEdge(0, 3); ok {
		t.Error("nonexistent edge reported found")
	}
	if _, ok := g.FindEdge(0, 99); ok {
		t.Error("out-of-range node reported found")
	}
	// Symmetric lookup.
	id2, ok := g.FindEdge(2, 1)
	if !ok || id2 != id {
		t.Error("FindEdge not symmetric")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := NewBuilder(4).AddEdge(0, 3).AddEdge(0, 1).AddEdge(0, 2).MustBuild()
	nb := g.Neighbors(0)
	for i := 1; i < len(nb); i++ {
		if nb[i-1].Peer >= nb[i].Peer {
			t.Fatalf("neighbours not sorted: %v", nb)
		}
	}
}

func TestZeroValueGraph(t *testing.T) {
	var g Graph
	if g.NumNodes() != 0 || g.NumEdges() != 0 || g.MaxDegree() != 0 {
		t.Error("zero-value graph not empty")
	}
	if g.HasPositions() {
		t.Error("zero-value graph claims positions")
	}
	if g.Position(0) != (Point{}) {
		t.Error("zero-value position not zero")
	}
}

func TestGraphString(t *testing.T) {
	g := Complete(4)
	s := g.String()
	if !strings.Contains(s, "4 nodes") || !strings.Contains(s, "6 edges") {
		t.Errorf("String = %q", s)
	}
}

func TestRequireConnected(t *testing.T) {
	if err := RequireConnected(Path(5)); err != nil {
		t.Errorf("path reported disconnected: %v", err)
	}
	g := NewBuilder(3).AddEdge(0, 1).MustBuild()
	if err := RequireConnected(g); err == nil {
		t.Error("disconnected graph passed RequireConnected")
	}
}

// Property: for every generator output, sum of degrees equals 2|E| and
// every edge id round-trips through the adjacency structure.
func TestDegreeSumInvariant(t *testing.T) {
	r := rng.New(99)
	graphs := []*Graph{
		Complete(7), Path(9), Cycle(6), Star(8), Grid(3, 5), Torus(3, 4),
		Hypercube(4), CompleteBipartite(3, 4), BinaryTree(4), Lollipop(5, 3),
		GnP(r, 20, 0.3), RGG(r, 25, 0.4),
	}
	for _, g := range graphs {
		if got, want := DegreeSum(g), 2*g.NumEdges(); got != want {
			t.Errorf("%s: degree sum %d != 2|E| = %d", g, got, want)
		}
		for u := 0; u < g.NumNodes(); u++ {
			for _, he := range g.Neighbors(NodeID(u)) {
				e := g.Edge(he.Edge)
				if e.Other(NodeID(u)) != he.Peer {
					t.Errorf("%s: adjacency inconsistent at node %d", g, u)
				}
			}
		}
	}
}

func TestBuilderEdgeIDsAreInsertionOrdered(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(2, 3)
	b.AddEdge(0, 1)
	g := b.MustBuild()
	if g.Edge(0) != NewEdge(2, 3) || g.Edge(1) != NewEdge(0, 1) {
		t.Error("edge IDs do not follow insertion order")
	}
}

func TestBuilderQuickProperty(t *testing.T) {
	r := rng.New(7)
	if err := quick.Check(func(nRaw, mRaw uint8) bool {
		n := int(nRaw%30) + 2
		m := int(mRaw % 60)
		b := NewBuilder(n)
		for i := 0; i < m; i++ {
			u := NodeID(r.Intn(n))
			v := NodeID(r.Intn(n))
			if u != v {
				b.AddEdge(u, v)
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		// No duplicates: every unordered pair appears at most once.
		seen := map[Edge]bool{}
		for _, e := range g.Edges() {
			if seen[e] || e.U == e.V || e.U > e.V {
				return false
			}
			seen[e] = true
		}
		return DegreeSum(g) == 2*g.NumEdges()
	}, nil); err != nil {
		t.Fatal(err)
	}
}

// The flat endpoint arrays and CSR adjacency built at Build time must
// mirror Edges() and Neighbors() exactly.
func TestFlatArraysAndCSR(t *testing.T) {
	g, _, err := Dumbbell(9, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	eu, ev := g.EdgeU(), g.EdgeV()
	if len(eu) != g.NumEdges() || len(ev) != g.NumEdges() {
		t.Fatalf("flat arrays have %d/%d entries for %d edges", len(eu), len(ev), g.NumEdges())
	}
	for id, e := range g.Edges() {
		if NodeID(eu[id]) != e.U || NodeID(ev[id]) != e.V {
			t.Errorf("edge %d: flat (%d,%d) vs struct %v", id, eu[id], ev[id], e)
		}
		if eu[id] >= ev[id] {
			t.Errorf("edge %d: endpoints not ordered: %d >= %d", id, eu[id], ev[id])
		}
	}
	off, peers, edges := g.CSR()
	if len(off) != g.NumNodes()+1 {
		t.Fatalf("CSR offsets length %d for %d nodes", len(off), g.NumNodes())
	}
	if int(off[g.NumNodes()]) != 2*g.NumEdges() || len(peers) != 2*g.NumEdges() || len(edges) != 2*g.NumEdges() {
		t.Fatalf("CSR half-edge count mismatch")
	}
	for u := 0; u < g.NumNodes(); u++ {
		adj := g.Neighbors(NodeID(u))
		lo, hi := off[u], off[u+1]
		if int(hi-lo) != len(adj) {
			t.Fatalf("node %d: CSR row %d entries vs %d neighbours", u, hi-lo, len(adj))
		}
		for k, he := range adj {
			if NodeID(peers[lo+int32(k)]) != he.Peer || EdgeID(edges[lo+int32(k)]) != he.Edge {
				t.Errorf("node %d half-edge %d: CSR (%d,%d) vs adj %+v", u, k, peers[lo+int32(k)], edges[lo+int32(k)], he)
			}
		}
	}
}

// An empty graph exposes empty (not nil-panicking) flat views.
func TestFlatArraysEmptyGraph(t *testing.T) {
	g := NewBuilder(3).MustBuild()
	if len(g.EdgeU()) != 0 || len(g.EdgeV()) != 0 {
		t.Error("edgeless graph has flat endpoints")
	}
	off, _, _ := g.CSR()
	if len(off) != 4 {
		t.Errorf("offsets length %d, want 4", len(off))
	}
}
