// Package sim implements the paper's timing model: every edge of a graph
// carries an independent Poisson clock, and an algorithm is invoked at each
// tick. The simulator is event-driven, deterministic given a seed, and
// offers two provably equivalent schedulers (per-edge clocks on a binary
// heap, and a single global clock at the total rate that picks an edge
// proportionally to its rate) — their statistical equivalence is exercised
// by the package tests.
//
// Key types: Engine (per-event loop), BatchEngine (replica-batched, Poisson time-bridging), SchedulerKind. The timing model is DESIGN.md §2; the engines are §6 and §8.
package sim

import (
	"errors"
	"fmt"
	"math"

	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
)

// Handler consumes edge clock ticks in simulated-time order.
type Handler interface {
	// HandleTick is invoked when edge e ticks at simulated time t.
	HandleTick(e graph.EdgeID, t float64)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(e graph.EdgeID, t float64)

// HandleTick implements Handler.
func (f HandlerFunc) HandleTick(e graph.EdgeID, t float64) { f(e, t) }

// Observer is called after every processed event with the current simulated
// time and the number of events processed so far.
type Observer func(t float64, events int64)

// StopCondition inspects simulation progress after each event and returns
// true to halt. It is also consulted once before the first event.
type StopCondition func(t float64, events int64) bool

// Until stops once simulated time reaches maxT.
func Until(maxT float64) StopCondition {
	return func(t float64, _ int64) bool { return t >= maxT }
}

// MaxEvents stops after n processed events.
func MaxEvents(n int64) StopCondition {
	return func(_ float64, events int64) bool { return events >= n }
}

// AnyOf stops when any of the given conditions holds.
func AnyOf(conds ...StopCondition) StopCondition {
	return func(t float64, events int64) bool {
		for _, c := range conds {
			if c(t, events) {
				return true
			}
		}
		return false
	}
}

// SchedulerKind selects the event-generation strategy.
type SchedulerKind int

const (
	// GlobalClock draws inter-event gaps from Exp(sum of rates) and picks
	// the ticking edge proportionally to its rate. This is the default: it
	// is a single heap-free stream and is the textbook construction for
	// superposing Poisson processes.
	GlobalClock SchedulerKind = iota
	// PerEdgeClocks keeps an independent exponential timer per edge on a
	// binary heap — the model exactly as the paper states it.
	PerEdgeClocks
)

// String names the scheduler kind.
func (k SchedulerKind) String() string {
	switch k {
	case GlobalClock:
		return "global-clock"
	case PerEdgeClocks:
		return "per-edge-clocks"
	default:
		return fmt.Sprintf("scheduler(%d)", int(k))
	}
}

// Engine drives a Handler with Poisson edge ticks on a fixed graph.
//
// Run is the general loop (any Handler, observers, arbitrary stop
// conditions). When the handler also implements TickKernel and no
// observers are registered, RunEvents, RunUntil and RunTracked take a
// fused batch path with identical semantics and random-stream consumption
// — see kernel.go.
type Engine struct {
	g         *graph.Graph
	handler   Handler
	scheduler scheduler
	observers []Observer
	now       float64
	events    int64

	// Scratch for the fused kernel path, allocated once on first use.
	batchE []graph.EdgeID
	batchT []float64
}

// Option configures NewEngine.
type Option func(*config)

type config struct {
	kind      SchedulerKind
	seed      uint64
	rand      *rng.RNG
	rates     []float64
	observers []Observer
}

// WithScheduler selects the event-generation strategy (default GlobalClock).
func WithScheduler(kind SchedulerKind) Option {
	return func(c *config) { c.kind = kind }
}

// WithSeed seeds the engine's private RNG (default seed 1). Ignored when
// WithRNG is also given.
func WithSeed(seed uint64) Option {
	return func(c *config) { c.seed = seed }
}

// WithRNG supplies an externally owned RNG, e.g. a Split stream of a
// trial-level generator.
func WithRNG(r *rng.RNG) Option {
	return func(c *config) { c.rand = r }
}

// WithRates sets per-edge clock rates; len must equal g.NumEdges() and all
// rates must be positive. The default is rate 1 on every edge, as in the
// paper.
func WithRates(rates []float64) Option {
	return func(c *config) { c.rates = rates }
}

// WithObserver registers an observer invoked after every event.
func WithObserver(obs Observer) Option {
	return func(c *config) { c.observers = append(c.observers, obs) }
}

// NewEngine builds an engine for g driving handler. It returns an error for
// a nil handler, an edgeless graph, or invalid rates.
func NewEngine(g *graph.Graph, handler Handler, opts ...Option) (*Engine, error) {
	if handler == nil {
		return nil, errors.New("sim: nil handler")
	}
	if g.NumEdges() == 0 {
		return nil, fmt.Errorf("sim: %s has no edges to tick", g)
	}
	cfg := config{kind: GlobalClock, seed: 1}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.rand == nil {
		cfg.rand = rng.New(cfg.seed)
	}
	rates := cfg.rates
	if rates == nil {
		rates = make([]float64, g.NumEdges())
		for i := range rates {
			rates[i] = 1
		}
	}
	if len(rates) != g.NumEdges() {
		return nil, fmt.Errorf("sim: %d rates for %d edges", len(rates), g.NumEdges())
	}
	for i, r := range rates {
		if r <= 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("sim: invalid rate %v for edge %d", r, i)
		}
	}
	var sched scheduler
	switch cfg.kind {
	case GlobalClock:
		sched = newGlobalScheduler(rates, cfg.rand)
	case PerEdgeClocks:
		sched = newHeapScheduler(rates, cfg.rand)
	default:
		return nil, fmt.Errorf("sim: unknown scheduler kind %d", cfg.kind)
	}
	return &Engine{
		g:         g,
		handler:   handler,
		scheduler: sched,
		observers: cfg.observers,
	}, nil
}

// Graph returns the simulated graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Now returns the current simulated time.
func (e *Engine) Now() float64 { return e.now }

// Events returns the number of ticks processed so far.
func (e *Engine) Events() int64 { return e.events }

// Run processes events until stop returns true and reports the final
// simulated time and cumulative event count. Run may be called repeatedly;
// simulated time continues from where the previous call stopped.
func (e *Engine) Run(stop StopCondition) (t float64, events int64) {
	if stop == nil {
		panic("sim: Run requires a stop condition")
	}
	for !stop(e.now, e.events) {
		edge, at := e.scheduler.next()
		e.now = at
		e.handler.HandleTick(edge, at)
		e.events++
		for _, obs := range e.observers {
			obs(e.now, e.events)
		}
	}
	return e.now, e.events
}

// scheduler produces the next (edge, absolute time) tick. Implementations
// advance their internal clock on each call.
type scheduler interface {
	next() (graph.EdgeID, float64)
}
