// Command gossipsim runs one gossip-averaging simulation and reports the
// variance trajectory and final state. Every graph family in the scenario
// registry is available (see -families for the catalogue).
//
// Usage:
//
//	gossipsim -graph dumbbell -n 128 -cut 1 -algo A     -until 50
//	gossipsim -graph planted  -n 100 -algo vanilla      -until 200 -csv
//	gossipsim -graph ringofcliques -n 64 -blocks 8 -algo A -until 100
//	gossipsim -graph hypercube -dim 7 -algo pushsum     -until 30
//	gossipsim -algo convex -alpha 0.8 ...
//	gossipsim -n 1e6 -algo vanilla -shards 8 -until 0.001
//
// With -csv the sampled trajectory is written to stdout as
// "series,t,value" rows; otherwise a short summary is printed. -progress
// adds a periodic events/sec + variance meter on stderr; stdout output
// (including -csv) is byte-identical with or without it.
//
// -shards N routes the run onto the sharded PDES engine over the
// family's implicit edge representation (vanilla + uniform rates only;
// see DESIGN.md §13): the graph is never materialised, so million-node
// runs fit in memory. Output is byte-identical for any shard count.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"time"

	"sparsecut/internal/gossip"
	"sparsecut/internal/scenario"
	"sparsecut/internal/sim"
	"sparsecut/internal/trace"
)

func main() {
	var (
		graphKind = flag.String("graph", "dumbbell", "graph family (see -families)")
		nFlag     = flag.String("n", "128", "total number of nodes (accepts 1e6 notation)")
		cutEdges  = flag.Int("cut", 0, "cut edges / doors / bridges (0 = family default)")
		algo      = flag.String("algo", "A", "algorithm: A | vanilla | convex | pushsum")
		alpha     = flag.Float64("alpha", 0.5, "mixing parameter for -algo convex")
		until     = flag.Float64("until", 50, "simulated time horizon")
		seed      = flag.Uint64("seed", 1, "random seed")
		csv       = flag.Bool("csv", false, "emit the sampled variance trajectory as CSV")
		progress  = flag.Bool("progress", false, "print a periodic events/sec + variance meter to stderr")
		initKind  = flag.String("init", "", "initial vector: worstcase|spike|random|gaussian|linear")
		rateKind  = flag.String("rates", "", "clock-rate model: uniform|nodeclock|random")
		shards    = flag.Int("shards", 0, "run on the sharded PDES engine with this many workers (vanilla only)")
		window    = flag.Float64("window", 0, "sharded barrier spacing Δ (0 = engine default)")
		list      = flag.Bool("families", false, "list the graph-family registry and exit")

		// Family-specific shape parameters.
		n1       = flag.Int("n1", 0, "side-1 size (two-sided families)")
		n2       = flag.Int("n2", 0, "side-2 size (two-sided families)")
		innerCut = flag.Int("innercut", 0, "hierdumbbell inner cut width")
		rows     = flag.Int("rows", 0, "grid/torus rows")
		cols     = flag.Int("cols", 0, "grid/torus cols")
		dim      = flag.Int("dim", 0, "hypercube dimension")
		levels   = flag.Int("levels", 0, "binary-tree levels")
		tail     = flag.Int("tail", 0, "lollipop tail length")
		blocks   = flag.Int("blocks", 0, "ring-of-cliques block count")
		degree   = flag.Int("degree", 0, "random-regular degree")
		p        = flag.Float64("p", 0, "G(n,p) edge probability")
		pIn      = flag.Float64("pin", 0, "planted within-side density")
		pOut     = flag.Float64("pout", 0, "planted cross-side density")
		radius   = flag.Float64("radius", 0, "RGG/sensor radius multiplier")
	)
	flag.Parse()

	if *list {
		fmt.Print(scenario.Usage())
		return
	}

	n, err := parseCount(*nFlag)
	if err != nil {
		fatal(err)
	}

	spec := scenario.Spec{
		Graph: scenario.GraphSpec{
			Family: *graphKind, N: n, N1: *n1, N2: *n2, Cut: *cutEdges,
			InnerCut: *innerCut, Rows: *rows, Cols: *cols, Dim: *dim,
			Levels: *levels, Tail: *tail, Blocks: *blocks, Degree: *degree,
			P: *p, PIn: *pIn, POut: *pOut, Radius: *radius,
		},
		Algo:  scenario.AlgoSpec{Name: *algo, Alpha: *alpha},
		Init:  *initKind,
		Rates: *rateKind,
		Stop:  scenario.StopSpec{Shards: *shards, Window: *window},
		Seed:  *seed,
	}
	if *shards > 0 {
		if *csv {
			fatal(fmt.Errorf("-csv is not available with -shards (variance is only observed at window barriers)"))
		}
		if err := runSharded(spec, *until, *progress); err != nil {
			fatal(err)
		}
		return
	}
	res, err := spec.Resolve()
	if err != nil {
		fatal(err)
	}
	alg, err := res.NewAlgorithm(res.AlgorithmRNG())
	if err != nil {
		fatal(err)
	}

	var0 := alg.Variance()
	rec, err := trace.NewSampledRecorder(alg.Name(), int64(res.Graph.NumEdges()/4+1))
	if err != nil {
		fatal(err)
	}
	observe := func(t float64, _ int64) { rec.Record(t, alg.Variance()/var0) }
	var meter *progressMeter
	if *progress {
		meter = newProgressMeter()
		record := observe
		observe = func(t float64, ev int64) {
			record(t, ev)
			meter.tick(t, ev, func() float64 { return alg.Variance() / var0 })
		}
	}
	opts := []sim.Option{sim.WithSeed(*seed), sim.WithObserver(observe)}
	if res.Rates != nil {
		opts = append(opts, sim.WithRates(res.Rates))
	}
	eng, err := sim.NewEngine(res.Graph, alg, opts...)
	if err != nil {
		fatal(err)
	}
	t, events := eng.Run(sim.Until(*until))
	if meter != nil {
		meter.finish(t, events, alg.Variance()/var0)
	}

	if *csv {
		ds, err := rec.Series.Downsample(1000)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteCSV(os.Stdout, ds); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("graph:      %s\n", res.Graph)
	if res.Partition != nil {
		fmt.Printf("partition:  %s\n", res.Partition)
	} else {
		fmt.Printf("partition:  (none planted)\n")
	}
	fmt.Printf("algorithm:  %s\n", alg.Name())
	fmt.Printf("simulated:  t=%.4g (%d events)\n", t, events)
	fmt.Printf("mean:       %.6g\n", alg.Mean())
	fmt.Printf("var ratio:  %.6g\n", alg.Variance()/var0)
}

// runSharded executes one single-replica run on the sharded PDES engine:
// implicit graph, flat state, windowed tile advancement. The summary on
// stdout is deterministic — byte-identical for any -shards value.
func runSharded(spec scenario.Spec, until float64, progress bool) error {
	res, err := spec.Resolve()
	if err != nil {
		return err
	}
	til := res.Implicit.Tiling()
	st, err := gossip.NewFlatState(res.X0, til.Bounds())
	if err != nil {
		return err
	}
	var0 := st.Variance()
	cfg := sim.ShardConfig{Workers: spec.Stop.Shards, Window: spec.Stop.Window}
	var meter *progressMeter
	if progress {
		meter = newProgressMeter()
		cfg.Observer = func(t float64, events int64) {
			meter.barrier(t, events, st.Variance()/var0)
		}
	}
	eng := sim.NewShardEngine(til, st, res.AlgorithmRNG(), cfg)
	start := time.Now()
	eng.RunUntil(until)
	if meter != nil {
		meter.finish(eng.Now(), eng.Events(), st.Variance()/var0)
	}

	fmt.Printf("graph:      %s (implicit, n=%d, %d edges)\n",
		res.Implicit.Name(), res.Implicit.NumNodes(), res.Implicit.NumEdges())
	fmt.Printf("tiling:     %d tiles, %d boundary edges\n", len(til.Tiles), len(til.Boundary))
	// The worker count stays off stdout: the summary is byte-identical
	// for any -shards value, which CI checks with a plain cmp.
	fmt.Printf("algorithm:  vanilla (sharded)\n")
	fmt.Printf("simulated:  t=%.4g (%d events)\n", eng.Now(), eng.Events())
	fmt.Printf("mean:       %.6g\n", st.Mean())
	fmt.Printf("var ratio:  %.6g\n", st.Variance()/var0)
	if progress {
		wall := time.Since(start).Seconds()
		if eng.Events() > 0 && wall > 0 {
			fmt.Fprintf(os.Stderr, "progress: %.1f ns/event\n", wall*1e9/float64(eng.Events()))
		}
	}
	return nil
}

// parseCount parses a node count, accepting plain integers and
// scientific notation ("1e6") so scale runs don't need seven-digit
// literals.
func parseCount(s string) (int, error) {
	if v, err := strconv.Atoi(s); err == nil {
		return v, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid node count %q", s)
	}
	if f < 0 || f != math.Trunc(f) || f > math.MaxInt32 {
		return 0, fmt.Errorf("node count %q is not a representable non-negative integer", s)
	}
	return int(f), nil
}

// progressMeter prints a periodic one-line telemetry reading to stderr.
// The event-count mask keeps the common case to one AND + branch per
// event; the wall-clock gate then limits actual prints to ~5 per second.
// It writes only to stderr, so -csv stdout stays byte-identical.
type progressMeter struct {
	start      time.Time
	lastPrint  time.Time
	lastEvents int64
}

func newProgressMeter() *progressMeter {
	now := time.Now()
	return &progressMeter{start: now, lastPrint: now}
}

func (p *progressMeter) tick(t float64, events int64, varRatio func() float64) {
	if events&8191 != 0 {
		return
	}
	now := time.Now()
	gap := now.Sub(p.lastPrint)
	if gap < 200*time.Millisecond {
		return
	}
	rate := float64(events-p.lastEvents) / gap.Seconds()
	fmt.Fprintf(os.Stderr, "progress: t=%-10.4g %12d events  %10.4g ev/s  var %.4g\n",
		t, events, rate, varRatio())
	p.lastPrint = now
	p.lastEvents = events
}

// barrier is tick without the event-count mask: the sharded engine
// already rate-limits observer calls to window barriers.
func (p *progressMeter) barrier(t float64, events int64, varRatio float64) {
	now := time.Now()
	gap := now.Sub(p.lastPrint)
	if gap < 200*time.Millisecond {
		return
	}
	rate := float64(events-p.lastEvents) / gap.Seconds()
	fmt.Fprintf(os.Stderr, "progress: t=%-10.4g %12d events  %10.4g ev/s  var %.4g\n",
		t, events, rate, varRatio)
	p.lastPrint = now
	p.lastEvents = events
}

func (p *progressMeter) finish(t float64, events int64, varRatio float64) {
	wall := time.Since(p.start)
	rate := float64(events) / wall.Seconds()
	fmt.Fprintf(os.Stderr, "progress: t=%-10.4g %12d events  %10.4g ev/s  var %.4g  (done in %v)\n",
		t, events, rate, varRatio, wall.Round(time.Millisecond))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gossipsim:", err)
	os.Exit(1)
}
