// Command sweep runs a deterministic parallel grid of scenarios:
// (graph family × size × cut × algorithm × parameter) Monte-Carlo cells
// of the paper's Definition-1 averaging-time estimator, on a worker pool,
// with bit-identical results for any -workers value.
//
// Usage:
//
//	sweep -family dumbbell -n 32..256..x2 -algo vanilla,A -cut 1
//	sweep -family dumbbell,ringofcliques -n 16,32 -algo vanilla,A -json grid.json
//	sweep -spec grid.json -workers 8 -json -
//	sweep -families
//
// Axis flags take comma-separated lists; integer axes also accept ranges
// "lo..hi" (step 1), "lo..hi..+s" (arithmetic) and "lo..hi..xk"
// (geometric). The E4 headline reproduction is simply:
//
//	sweep -family dumbbell -n 32..256..x2 -cut 1 -algo vanilla,A
//
// Telemetry is side-channel only — stdout stays byte-deterministic:
// -progress draws an in-place done/total + cells/s + ETA line on stderr,
// -metrics dumps the run's counters and per-cell wall-time histogram as
// JSON, and -cpuprofile samples carry pprof labels (sweep_family,
// sweep_algo) so profile time attributes per scenario family.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"sparsecut/internal/metrics"
	"sparsecut/internal/scenario"
	"sparsecut/internal/sweep"
)

func main() {
	var (
		specFile = flag.String("spec", "", "read the sweep grid from a JSON file (flags below override axes)")
		family   = flag.String("family", "dumbbell", "graph family or comma list (axis)")
		ns       = flag.String("n", "64", "node counts: list/range, e.g. 32,64 or 32..256..x2")
		cuts     = flag.String("cut", "", "cut widths: list/range (empty = family default)")
		algos    = flag.String("algo", "vanilla,A", "algorithms: comma list of vanilla|convex|pushsum|A")
		alphas   = flag.String("alpha", "", "convex mixing parameters: comma list")
		epochCs  = flag.String("epochC", "", "Algorithm A epoch constants: comma list")
		weights  = flag.String("weight", "", "Algorithm A swap-weight rules: comma list of exact|paper|custom")
		initKind = flag.String("init", "", "initial vector: worstcase|spike|random|gaussian|linear")
		rates    = flag.String("rates", "", "clock-rate models: comma list of uniform|nodeclock|random (a list becomes a sweep axis)")
		trials   = flag.Int("trials", 5, "Monte-Carlo trials per cell")
		maxTime  = flag.Float64("maxtime", 0, "censoring horizon per trial (0 = 60*n)")
		shards   = flag.Int("shards", 0, "run cells on the sharded PDES engine with this many workers per trial (vanilla + implicit families only)")
		window   = flag.Float64("window", 0, "sharded barrier spacing Δ (0 = engine default)")
		seed     = flag.Uint64("seed", 1, "root seed; every cell seed derives from it")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS); does not affect results")
		jsonOut  = flag.String("json", "", "write the JSON report to this file ('-' = stdout, replacing the table)")
		quiet    = flag.Bool("q", false, "suppress per-cell progress on stderr")
		progress = flag.Bool("progress", false, "replace per-cell lines with one in-place done/total + cells/s + ETA line on stderr")
		metOut   = flag.String("metrics", "", "write the sweep telemetry snapshot (cells started/completed/errored, wall-time histogram) as JSON to this file")
		list     = flag.Bool("families", false, "list the graph-family registry and exit")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the grid run to this file (go tool pprof)")
		memProf  = flag.String("memprofile", "", "write a post-run heap profile to this file (go tool pprof)")
	)
	flag.Parse()

	if *list {
		fmt.Print(scenario.Usage())
		return
	}

	grid := sweep.Grid{}
	if *specFile != "" {
		f, err := os.Open(*specFile)
		if err != nil {
			fatal(err)
		}
		grid, err = sweep.ParseGrid(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	set := flagsSet()
	if err := applyFlags(&grid, set, *family, *ns, *cuts, *algos, *alphas, *epochCs, *weights); err != nil {
		fatal(err)
	}
	// Scalar base-spec fields: a -spec file's values yield only to flags
	// the user actually set.
	use := func(name string) bool { return *specFile == "" || set[name] }
	if *initKind != "" && use("init") {
		grid.Base.Init = *initKind
	}
	if *rates != "" && use("rates") {
		switch vals := splitList(*rates); len(vals) {
		case 0:
			// Only separators/whitespace: leave the spec default.
		case 1:
			grid.Base.Rates = vals[0]
		default:
			grid.Rates = vals
		}
	}
	if *trials > 0 && use("trials") {
		grid.Base.Stop.Trials = *trials
	}
	if *maxTime > 0 && use("maxtime") {
		grid.Base.Stop.MaxTime = *maxTime
	}
	if *shards > 0 && use("shards") {
		grid.Base.Stop.Shards = *shards
	}
	if *window > 0 && use("window") {
		grid.Base.Stop.Window = *window
	}

	cfg := sweep.Config{Workers: *workers, Seed: *seed}
	var reg *metrics.Registry
	if *metOut != "" {
		reg = metrics.NewRegistry()
		cfg.Metrics = reg
	}
	total := 0
	if units, err := sweep.Expand(grid, *seed); err != nil {
		fatal(err)
	} else {
		total = len(units)
	}
	// All progress goes to stderr: stdout (tables, -json -) stays
	// byte-deterministic whatever display mode is chosen.
	done := 0
	switch {
	case *progress:
		start := time.Now()
		cfg.OnCell = func(c sweep.Cell) {
			done++
			elapsed := time.Since(start)
			rate := float64(done) / elapsed.Seconds()
			eta := time.Duration(float64(elapsed) / float64(done) * float64(total-done)).Round(time.Second)
			fmt.Fprintf(os.Stderr, "\rsweep: %d/%d cells  %.3g cells/s  ETA %v   ", done, total, rate, eta)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	case !*quiet:
		cfg.OnCell = func(c sweep.Cell) {
			done++
			status := c.TavString()
			if c.Error != "" {
				status = "ERROR " + c.Error
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %-40s Tav=%s\n", done, total, c.Label, status)
		}
	}
	// Profile exactly the grid run — flag parsing, expansion and report
	// rendering stay outside the window, so profiles compare across PRs.
	var cpuFile *os.File
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		cpuFile = f
	}
	rep, err := sweep.Run(grid, cfg)
	if cpuFile != nil {
		pprof.StopCPUProfile()
		if cerr := cpuFile.Close(); cerr != nil {
			fatal(cerr)
		}
	}
	if err != nil {
		fatal(err)
	}
	if reg != nil {
		f, err := os.Create(*metOut)
		if err != nil {
			fatal(err)
		}
		if err := reg.Snapshot().WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fatal(err)
		}
		runtime.GC() // report retained heap, not transient garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}

	switch *jsonOut {
	case "":
		if err := rep.Table("sweep results").Render(os.Stdout); err != nil {
			fatal(err)
		}
	case "-":
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
	default:
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		if err := rep.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		if err := rep.Table("sweep results").Render(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

// flagsSet returns the names of flags the user set explicitly, so a -spec
// file's axes are only overridden by flags actually present.
func flagsSet() map[string]bool {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	return set
}

// applyFlags merges the axis flags into the grid. When a -spec file was
// given, only explicitly-set flags override it; otherwise the defaults
// apply.
func applyFlags(grid *sweep.Grid, set map[string]bool, family, ns, cuts, algos, alphas, epochCs, weights string) error {
	fromSpec := len(set) > 0 && set["spec"]
	use := func(name string) bool { return !fromSpec || set[name] }
	if use("family") {
		fams := splitList(family)
		if len(fams) == 1 {
			grid.Base.Graph.Family = fams[0]
			grid.Families = nil
		} else {
			grid.Families = fams
		}
	}
	if use("n") {
		vals, err := parseInts(ns)
		if err != nil {
			return fmt.Errorf("-n: %w", err)
		}
		if len(vals) == 1 {
			grid.Base.Graph.N = vals[0]
			grid.Ns = nil
		} else {
			grid.Ns = vals
		}
	}
	if cuts != "" && use("cut") {
		vals, err := parseInts(cuts)
		if err != nil {
			return fmt.Errorf("-cut: %w", err)
		}
		if len(vals) == 1 {
			grid.Base.Graph.Cut = vals[0]
			grid.Cuts = nil
		} else {
			grid.Cuts = vals
		}
	}
	if use("algo") {
		names := splitList(algos)
		if len(names) == 1 {
			grid.Base.Algo.Name = names[0]
			grid.Algos = nil
		} else {
			grid.Algos = names
		}
	}
	if alphas != "" && use("alpha") {
		vals, err := parseFloats(alphas)
		if err != nil {
			return fmt.Errorf("-alpha: %w", err)
		}
		if len(vals) == 1 {
			grid.Base.Algo.Alpha = vals[0]
			grid.Alphas = nil
		} else {
			grid.Alphas = vals
		}
	}
	if epochCs != "" && use("epochC") {
		vals, err := parseFloats(epochCs)
		if err != nil {
			return fmt.Errorf("-epochC: %w", err)
		}
		if len(vals) == 1 {
			grid.Base.Algo.EpochC = vals[0]
			grid.EpochCs = nil
		} else {
			grid.EpochCs = vals
		}
	}
	if weights != "" && use("weight") {
		names := splitList(weights)
		if len(names) == 1 {
			grid.Base.Algo.Weight = names[0]
			grid.Weights = nil
		} else {
			grid.Weights = names
		}
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseInts parses a comma list whose elements are integers or ranges:
// "lo..hi" (step 1), "lo..hi..+s" (arithmetic step s), "lo..hi..xk"
// (geometric factor k).
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		if !strings.Contains(part, "..") {
			v, err := strconv.Atoi(part)
			if err != nil {
				return nil, fmt.Errorf("bad integer %q", part)
			}
			out = append(out, v)
			continue
		}
		fields := strings.Split(part, "..")
		if len(fields) != 2 && len(fields) != 3 {
			return nil, fmt.Errorf("bad range %q (want lo..hi, lo..hi..+s or lo..hi..xk)", part)
		}
		lo, err1 := strconv.Atoi(fields[0])
		hi, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil || hi < lo {
			return nil, fmt.Errorf("bad range %q", part)
		}
		step, factor := 1, 0
		if len(fields) == 3 {
			switch spec := fields[2]; {
			case strings.HasPrefix(spec, "x"):
				factor, err1 = strconv.Atoi(spec[1:])
				if err1 != nil || factor < 2 {
					return nil, fmt.Errorf("bad geometric step in %q", part)
				}
				if lo < 1 {
					return nil, fmt.Errorf("geometric range %q needs lo >= 1", part)
				}
			case strings.HasPrefix(spec, "+"):
				step, err1 = strconv.Atoi(spec[1:])
				if err1 != nil || step < 1 {
					return nil, fmt.Errorf("bad arithmetic step in %q", part)
				}
			default:
				return nil, fmt.Errorf("bad step %q (want +s or xk)", spec)
			}
		}
		for v := lo; v <= hi; {
			out = append(out, v)
			if factor > 0 {
				v *= factor
			} else {
				v += step
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range splitList(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
