package dist

import (
	"sparsecut/internal/graph"
)

// This file is the exchange protocol itself, factored out of the goroutine
// actor (node.go) into a pure, synchronously-steppable state machine so
// that two very different drivers can run the *same* code:
//
//   - the live runtime: one goroutine per node, wall-clock timers, a real
//     Transport (node.go wraps a NodeState and routes StepOut effects into
//     the cluster's counters and the transport);
//   - the model checker (internal/check): a single-threaded scheduler that
//     owns every NodeState plus a virtual network, and explores message
//     and timer interleavings systematically.
//
// The two drivers are proven equivalent by the lockstep divergence test in
// machine_test.go: the live runtime records every protocol event it feeds
// the machine, and replaying that event sequence through fresh NodeStates
// must reproduce byte-identical StepOuts and final values.
//
// # Exchange protocol (lock / propose / commit)
//
// A node initiates an exchange when its clock fires while it is unlocked:
//
//	initiator                         responder
//	---------                         ---------
//	lock self
//	LOCK(seq, edge, x)  ───────────▶  busy or draining? ──▶ NACK(seq)
//	                                  else: lock self,
//	                                  d := rule.Delta(edge, x, y)
//	              ◀───────────────    PROPOSE(seq, d)   (held, retransmitted)
//	x += d (once), unlock
//	COMMIT(seq)         ───────────▶  y -= d, unlock
//
// Abort paths leave no state change anywhere: a busy responder NACKs the
// LOCK; a lock timeout releases the initiator; and a PROPOSE that arrives
// after its initiator already timed out is answered with a NACK, on which
// the responder rolls back its (uncommitted) proposal and unlocks. The
// initiator therefore only ever applies a delta for its *current*
// exchange, so a committed exchange always uses both endpoints' current
// values — there is no stale-value commit even under arbitrary delays.
//
// Loss paths: a lost LOCK times out into a clean abort; a lost PROPOSE or
// COMMIT is covered by the responder retransmitting the proposal on a
// lease timer until it is answered — the initiator deduplicates by a
// per-responder seq watermark (exact match; a below-watermark proposal is
// a resurrected aborted initiation and is refused, see MutLaxWatermarkDedup)
// and re-answers COMMIT for proposals it already applied. Because the initiator applies +d exactly once and the
// responder applies the exact negation exactly once (it is locked from
// proposal to resolution, so d stays valid), a committed exchange changes
// the value sum only by the two float roundings of x±d (~1 ulp each) no
// matter what the transport drops, delays or reorders.
//
// Crash paths: a crash is fail-stop with stable storage for the node's
// value, seq counter, applied-watermarks and held proposal — only the
// outstanding initiation (Await) is volatile and aborts at crash time.
// Messages delivered to a crashed node are lost. A recovered responder
// resumes retransmitting its held proposal, so the exchange still resolves
// the way the initiator decided (COMMIT if the initiator's watermark shows
// it applied, NACK otherwise) and the value sum survives any crash
// schedule. internal/check explores exactly this fault model.
type Machine struct {
	// G is the cluster's graph; Rule the exchange rule.
	G    *graph.Graph
	Rule Rule
	// Epoch stamps outgoing messages and drops stale incoming ones (see
	// Message.Epoch).
	Epoch uint64
	// LockTimeoutNs and ResendEveryNs set the deadlines the machine writes
	// into Await/Pend state, in the driver's time base (wall nanoseconds
	// for the live runtime, virtual ticks for the checker). The machine
	// never compares them against now itself — firing TimeoutAwait and
	// Resend is the driver's decision.
	LockTimeoutNs int64
	ResendEveryNs int64
	// Mutate seeds an intentional protocol bug for checker self-tests
	// (does the checker actually catch a broken protocol?). Always MutNone
	// in the live runtime.
	Mutate Mutation
}

// Mutation selects an intentionally seeded protocol bug. Each one breaks a
// different invariant the checker asserts; internal/check's self-tests
// prove every mutation is caught and its counterexample replays.
type Mutation uint8

const (
	// MutNone is the correct protocol.
	MutNone Mutation = iota
	// MutNackRollbackApplies makes the responder apply -delta while
	// rolling back a NACKed proposal — state change on an abort path,
	// caught by the crash-adjusted sum invariant.
	MutNackRollbackApplies
	// MutStaleProposalApply makes the initiator apply a proposal for an
	// exchange it already gave up on — a stale commit, caught by the
	// provenance check (the delta no longer matches the initiator's
	// current value).
	MutStaleProposalApply
	// MutCommitIgnoresSeq makes the responder commit its held proposal on
	// any COMMIT from the right peer, ignoring the seq match — a stale
	// (duplicated or reordered) COMMIT from an older exchange epoch then
	// commits a proposal whose initiator never applied its half.
	MutCommitIgnoresSeq
	// MutNackRoleConfusion makes NACK handling ignore Message.Re, the
	// answered-request kind — the second real bug internal/check found in
	// this machine's seed: node u's LOCK seq=s, aborted and delayed, is
	// NACKed by a busy node v just as v runs its own exchange seq=s with u
	// as responder; without Re the NACK (from v, seq s) is
	// indistinguishable from v refusing u's held proposal, so u rolls the
	// proposal back while v still applies it. Kept as a seeded mutation so
	// the checker permanently proves it still catches it.
	MutNackRoleConfusion
	// MutLaxWatermarkDedup restores the protocol's original duplicate test
	// for incoming proposals, seq <= watermark instead of seq == watermark
	// — a real reordering bug internal/check found on its first run
	// against this machine: a LOCK from an aborted initiation, delayed
	// past a later committed exchange with the same responder, resurrects
	// as a fresh proposal carrying the old (lower) seq; the lax test
	// re-commits it without applying, and the responder then applies
	// -delta, breaking sum conservation. Kept as a seeded mutation so the
	// checker permanently proves it still catches its first catch.
	MutLaxWatermarkDedup
)

// String names the mutation (used in trace JSON).
func (mu Mutation) String() string {
	switch mu {
	case MutNone:
		return "none"
	case MutNackRollbackApplies:
		return "nack-rollback-applies"
	case MutStaleProposalApply:
		return "stale-proposal-apply"
	case MutCommitIgnoresSeq:
		return "commit-ignores-seq"
	case MutNackRoleConfusion:
		return "nack-ignores-role"
	case MutLaxWatermarkDedup:
		return "lax-watermark-dedup"
	default:
		return "unknown"
	}
}

// ParseMutation is the inverse of Mutation.String.
func ParseMutation(s string) (Mutation, bool) {
	for _, mu := range []Mutation{MutNone, MutNackRollbackApplies, MutStaleProposalApply, MutCommitIgnoresSeq, MutNackRoleConfusion, MutLaxWatermarkDedup} {
		if mu.String() == s {
			return mu, true
		}
	}
	return MutNone, false
}

// NodeState is the pure protocol state of one node — everything the
// exchange protocol reads or writes, and nothing the driver owns (clocks,
// RNGs, mailboxes, crash schedules live with the driver).
type NodeState struct {
	ID int
	X  float64
	// Seq numbers this node's initiations; (ID, Seq) identifies one
	// exchange attempt.
	Seq uint64
	// Await is the outstanding initiation, if any; Pend the held
	// (uncommitted) proposal awaiting its commit or abort, if any. The
	// node is locked while either is non-nil (it NACKs incoming LOCKs and
	// its clock fires are skipped).
	Await *AwaitState
	Pend  *PendState
	// LastApplied[r] is the highest seq whose proposal from responder r
	// has been applied, so retransmitted duplicates are answered with a
	// fresh COMMIT without reapplying. A per-responder watermark suffices:
	// a responder holds its lock until its proposal is resolved, so it
	// proposes to this node serially, and the one proposal it can be
	// retransmitting is exactly the one that set the watermark (the
	// duplicate test is seq == watermark; a lower seq is a resurrected
	// aborted initiation and is refused — see MutLaxWatermarkDedup).
	LastApplied map[int]uint64
}

// AwaitState is an outstanding initiation.
type AwaitState struct {
	Seq uint64
	// Peer is the responder this initiation locked toward. Replies are
	// matched on (peer, seq), not seq alone: seq counters are per-node
	// namespaces, so a late duplicate NACK from an old exchange (carrying
	// the *other* node's seq) could otherwise collide with this node's
	// own counter and abort an unrelated healthy exchange.
	Peer       int
	DeadlineNs int64
	// StartedNs is when the initiation's LOCK went out; StepOut.LatencyNs
	// measures LOCK-sent → PROPOSE-applied from it.
	StartedNs int64
}

// PendState is a held (uncommitted) proposal. Msg is the PROPOSE to
// retransmit; Msg.X is the held delta.
type PendState struct {
	Msg      Message
	ResendNs int64
}

// NewNodeState returns the initial protocol state of node id with value
// x0. LastApplied stays nil until the first apply: nil-map reads are valid
// and a 10^6-node sharded run would otherwise pay ~50 bytes of empty map
// header per node that most nodes never use.
func NewNodeState(id int, x0 float64) *NodeState {
	return &NodeState{ID: id, X: x0}
}

// noteApplied records the per-responder apply watermark, allocating the map
// on first use.
func (st *NodeState) noteApplied(responder int, seq uint64) {
	if st.LastApplied == nil {
		st.LastApplied = make(map[int]uint64, 1)
	}
	st.LastApplied[responder] = seq
}

// Locked reports whether the node is in the middle of an exchange (either
// role) and therefore refuses new LOCKs and skips its own clock fires.
func (st *NodeState) Locked() bool { return st.Await != nil || st.Pend != nil }

// Clone returns a deep copy (the checker forks world states per explored
// action).
func (st *NodeState) Clone() *NodeState {
	cp := *st
	if st.Await != nil {
		a := *st.Await
		cp.Await = &a
	}
	if st.Pend != nil {
		p := *st.Pend
		cp.Pend = &p
	}
	if st.LastApplied != nil {
		cp.LastApplied = make(map[int]uint64, len(st.LastApplied))
		for k, v := range st.LastApplied {
			cp.LastApplied[k] = v
		}
	}
	return &cp
}

// StepOut is the effect of one protocol step: the messages to transmit
// plus flags the driver folds into its accounting. The machine mutates
// only the NodeState it was handed; everything else is reported here.
type StepOut struct {
	// Send is the messages to hand to the transport, already
	// epoch-stamped, in order.
	Send []Message
	// Proposed: a new initiation went out (LOCK sent, Await created).
	Proposed bool
	// PendCreated: the responder locked itself and holds a new proposal.
	PendCreated bool
	// Applied: the initiator applied its half (+delta) of its current
	// exchange and unlocked.
	Applied bool
	// Committed: the responder applied its half (-delta); the exchange is
	// committed (Cluster.Exchanges counts these).
	Committed bool
	// Aborted: an outstanding initiation resolved without applying
	// anything (NACK, lock timeout, or crash).
	Aborted bool
	// PendDropped: the held proposal was rolled back without committing.
	PendDropped bool
	// LatencyNs is the LOCK-sent → PROPOSE-applied latency when Applied,
	// -1 otherwise.
	LatencyNs int64
}

func (out *StepOut) send(m Message) { out.Send = append(out.Send, m) }

// Deliver processes one incoming message against st. draining mirrors the
// runtime's drain phase: the node answers and resolves but refuses to
// start new exchanges as responder.
func (mc *Machine) Deliver(st *NodeState, m Message, nowNs int64, draining bool) StepOut {
	out := StepOut{LatencyNs: -1}
	if m.Epoch != mc.Epoch {
		// A leftover from a previous Run, stranded in the mailbox across
		// the run boundary (see Message.Epoch). Every previous-run
		// exchange is fully resolved by the time a run returns, so the
		// message is stale by construction.
		return out
	}
	switch m.Kind {
	case MsgLock:
		if st.Locked() || draining {
			out.send(Message{Kind: MsgNack, Re: MsgLock, From: st.ID, To: m.From, Seq: m.Seq, Epoch: mc.Epoch})
			return out
		}
		// Propose: compute the initiator's delta and hold it, locked,
		// until the initiator commits or aborts. Nothing is applied yet,
		// so a NACK rolls back to exactly the pre-LOCK state. Note the
		// rule's tick (including the sparse-cut epoch counter) happens
		// here; a subsequently NACKed proposal has still consumed a tick,
		// like a simulator tick whose update is the identity.
		d := mc.Rule.Delta(m.Edge, graph.NodeID(m.From), m.X, st.X)
		prop := Message{Kind: MsgPropose, Re: MsgLock, From: st.ID, To: m.From, Seq: m.Seq, Edge: m.Edge, X: d, Epoch: mc.Epoch}
		st.Pend = &PendState{Msg: prop, ResendNs: nowNs + mc.ResendEveryNs}
		out.PendCreated = true
		out.send(prop)

	case MsgPropose:
		switch {
		case st.Await != nil && st.Await.Seq == m.Seq && st.Await.Peer == m.From:
			// Our current exchange: apply our half and commit.
			st.noteApplied(m.From, m.Seq)
			st.X += m.X
			out.Applied = true
			out.LatencyNs = nowNs - st.Await.StartedNs
			st.Await = nil
			out.send(Message{Kind: MsgCommit, Re: MsgPropose, From: st.ID, To: m.From, Seq: m.Seq, Epoch: mc.Epoch})
		case m.Seq == st.LastApplied[m.From] || (mc.Mutate == MutLaxWatermarkDedup && m.Seq <= st.LastApplied[m.From]):
			// Retransmission of the proposal we already applied (our COMMIT
			// was lost): re-commit without reapplying. The match must be
			// exact: the responder proposes to us serially (it stays locked
			// until its proposal resolves), so the one proposal of ours it
			// can be retransmitting is the one that set the watermark. A
			// proposal *below* the watermark is never a retransmission — it
			// is an aborted initiation's LOCK, delayed past a later
			// committed exchange, resurrected as a fresh proposal — and
			// falls through to the refusal below. (The original `<=` test
			// here re-committed those and broke sum conservation; see
			// MutLaxWatermarkDedup.)
			out.send(Message{Kind: MsgCommit, Re: MsgPropose, From: st.ID, To: m.From, Seq: m.Seq, Epoch: mc.Epoch})
		default:
			// A proposal for an exchange we already gave up on: refuse,
			// so the responder rolls back. This is what guarantees a
			// committed exchange never uses a stale initiator value.
			if mc.Mutate == MutStaleProposalApply {
				st.noteApplied(m.From, m.Seq)
				st.X += m.X
				out.Applied = true
				out.send(Message{Kind: MsgCommit, Re: MsgPropose, From: st.ID, To: m.From, Seq: m.Seq, Epoch: mc.Epoch})
				return out
			}
			out.send(Message{Kind: MsgNack, Re: MsgPropose, From: st.ID, To: m.From, Seq: m.Seq, Epoch: mc.Epoch})
		}

	case MsgCommit:
		match := st.Pend != nil && st.Pend.Msg.Seq == m.Seq && st.Pend.Msg.To == m.From
		if mc.Mutate == MutCommitIgnoresSeq {
			match = st.Pend != nil && st.Pend.Msg.To == m.From
		}
		if match {
			st.X -= st.Pend.Msg.X
			st.Pend = nil
			out.Committed = true
		}

	case MsgNack:
		// A NACK resolves the state matching the request kind it answers,
		// not just (peer, seq): seq counters are per-node namespaces, so
		// while this node's aborted LOCK seq=s is still in flight, the peer
		// can run its own exchange seq=s with this node as responder — and
		// the peer's busy-NACK for the stale LOCK carries exactly the
		// (peer, seq) of this node's held proposal. Without Re that NACK
		// rolls back a proposal the peer is about to apply (see
		// MutNackRoleConfusion, the seed bug internal/check caught).
		answersLock := m.Re == MsgLock || mc.Mutate == MutNackRoleConfusion
		answersProp := m.Re == MsgPropose || mc.Mutate == MutNackRoleConfusion
		if answersLock && st.Await != nil && st.Await.Seq == m.Seq && st.Await.Peer == m.From {
			st.Await = nil
			out.Aborted = true
		}
		if answersProp && st.Pend != nil && st.Pend.Msg.Seq == m.Seq && st.Pend.Msg.To == m.From {
			// Our held proposal was refused: roll back (nothing was
			// applied) and unlock.
			if mc.Mutate == MutNackRollbackApplies {
				st.X -= st.Pend.Msg.X
			}
			st.Pend = nil
			out.PendDropped = true
		}
	}
	return out
}

// Initiate starts an exchange over the given incident half-edge. The
// caller guarantees st is unlocked (the runtime skips clock fires while
// locked; the checker only enables Initiate on unlocked nodes).
func (mc *Machine) Initiate(st *NodeState, he graph.HalfEdge, nowNs int64) StepOut {
	out := StepOut{LatencyNs: -1}
	if st.Locked() {
		return out
	}
	st.Seq++
	st.Await = &AwaitState{Seq: st.Seq, Peer: int(he.Peer), DeadlineNs: nowNs + mc.LockTimeoutNs, StartedNs: nowNs}
	out.Proposed = true
	out.send(Message{Kind: MsgLock, From: st.ID, To: int(he.Peer), Seq: st.Seq, Edge: he.Edge, X: st.X, Epoch: mc.Epoch})
	return out
}

// TimeoutAwait gives up the outstanding initiation: the LOCK or its
// PROPOSE was lost (or the peer is saturated). A proposal that arrives
// after this point is refused, so the responder rolls back and nothing
// commits. When the timeout fires is the driver's decision; the checker
// fires it at arbitrary points to model arbitrary timing.
func (mc *Machine) TimeoutAwait(st *NodeState) StepOut {
	out := StepOut{LatencyNs: -1}
	if st.Await != nil {
		st.Await = nil
		out.Aborted = true
	}
	return out
}

// Resend retransmits the held proposal and renews its lease.
func (mc *Machine) Resend(st *NodeState, nowNs int64) StepOut {
	out := StepOut{LatencyNs: -1}
	if st.Pend != nil {
		out.send(st.Pend.Msg)
		st.Pend.ResendNs = nowNs + mc.ResendEveryNs
	}
	return out
}

// Crash fail-stops the node: the outstanding initiation (volatile) aborts;
// value, seq counter, watermarks and the held proposal survive on stable
// storage. The driver is responsible for losing messages delivered while
// the node is down.
func (mc *Machine) Crash(st *NodeState) StepOut {
	out := StepOut{LatencyNs: -1}
	if st.Await != nil {
		st.Await = nil
		out.Aborted = true
	}
	return out
}

// Recover brings a crashed node back: its held proposal, if any, becomes
// due for immediate retransmission so the stalled exchange resolves.
func (mc *Machine) Recover(st *NodeState, nowNs int64) StepOut {
	out := StepOut{LatencyNs: -1}
	if st.Pend != nil {
		st.Pend.ResendNs = nowNs
	}
	return out
}
