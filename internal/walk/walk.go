// Package walk reproduces the probabilistic machinery of the paper's
// Section 3: the simple random walk and its sub-Gaussian tail (Theorem 3),
// the biased dominating walk W̃ whose increments are +log n with
// probability 1/2 and −(3/2)·log n otherwise, and the statistics used to
// check empirically that the per-epoch log-variance process of Algorithm A
// is dominated by W̃.
//
// Key functions: FitTail (Theorem 3's sub-Gaussian tail, E7) and HittingQuantile (the dominating walk of E6). Claim mapping in DESIGN.md §4.
package walk

import (
	"errors"
	"fmt"
	"math"

	"sparsecut/internal/rng"
	"sparsecut/internal/stats"
)

// SimpleWalk returns one trajectory of the simple ±1 random walk S_0..S_k
// (length k+1, S_0 = 0).
func SimpleWalk(r *rng.RNG, k int) []int {
	path := make([]int, k+1)
	for i := 1; i <= k; i++ {
		step := -1
		if r.Uint64()&1 == 1 {
			step = 1
		}
		path[i] = path[i-1] + step
	}
	return path
}

// TailProbability estimates P[S_n ≥ s·√n] for the simple random walk by
// Monte-Carlo over the given number of trials. It returns an error for
// non-positive steps or trials.
func TailProbability(r *rng.RNG, steps int, s float64, trials int) (float64, error) {
	if steps < 1 || trials < 1 {
		return 0, fmt.Errorf("walk: need positive steps and trials, got %d, %d", steps, trials)
	}
	threshold := s * math.Sqrt(float64(steps))
	hits := 0
	for t := 0; t < trials; t++ {
		pos := 0
		for i := 0; i < steps; i++ {
			if r.Uint64()&1 == 1 {
				pos++
			} else {
				pos--
			}
		}
		if float64(pos) >= threshold {
			hits++
		}
	}
	return float64(hits) / float64(trials), nil
}

// TailFit holds the sub-Gaussian fit of Theorem 3: probabilities p(s)
// modelled as p = c·e^{−β·s²}.
type TailFit struct {
	C, Beta float64
	// S and P are the sampled tail points used for the fit (zero-probability
	// points are dropped before fitting).
	S, P []float64
	// R2 is the goodness of the fit of log p against s².
	R2 float64
}

// FitTail estimates P[S_n ≥ s√n] for every s in ss and fits the Theorem 3
// form c·e^{−βs²}. Points with zero empirical probability are excluded from
// the fit; at least two nonzero points are required.
func FitTail(r *rng.RNG, steps int, ss []float64, trials int) (TailFit, error) {
	if len(ss) < 2 {
		return TailFit{}, errors.New("walk: need at least two s values")
	}
	fit := TailFit{}
	var s2 []float64
	for _, s := range ss {
		p, err := TailProbability(r, steps, s, trials)
		if err != nil {
			return TailFit{}, err
		}
		fit.S = append(fit.S, s)
		fit.P = append(fit.P, p)
		if p > 0 {
			s2 = append(s2, s*s)
		}
	}
	var ps []float64
	for i, p := range fit.P {
		if p > 0 {
			ps = append(ps, p)
		} else {
			_ = i
		}
	}
	if len(ps) < 2 {
		return TailFit{}, errors.New("walk: fewer than two nonzero tail points; increase trials")
	}
	lf, err := stats.SemiLogYFit(s2, ps)
	if err != nil {
		return TailFit{}, err
	}
	fit.C = math.Exp(lf.Intercept)
	fit.Beta = -lf.Slope
	fit.R2 = lf.R2
	return fit, nil
}

// Dominating is the paper's dominating walk W̃ for a graph on n nodes:
// increments are +log n with probability 1/2 and −(3/2)·log n otherwise,
// giving drift −(log n)/4 per step.
type Dominating struct {
	LogN float64
}

// NewDominating builds the dominating walk for an n-node graph. It returns
// an error if n < 2.
func NewDominating(n int) (Dominating, error) {
	if n < 2 {
		return Dominating{}, fmt.Errorf("walk: dominating walk needs n >= 2, got %d", n)
	}
	return Dominating{LogN: math.Log(float64(n))}, nil
}

// Step draws one increment.
func (d Dominating) Step(r *rng.RNG) float64 {
	if r.Uint64()&1 == 1 {
		return d.LogN
	}
	return -1.5 * d.LogN
}

// Sample returns the trajectory W̃_0..W̃_k (length k+1, W̃_0 = 0).
func (d Dominating) Sample(r *rng.RNG, k int) []float64 {
	path := make([]float64, k+1)
	for i := 1; i <= k; i++ {
		path[i] = path[i-1] + d.Step(r)
	}
	return path
}

// Drift returns the expected increment −(log n)/4.
func (d Dominating) Drift() float64 { return -d.LogN / 4 }

// LastTimeAbove returns the largest index k with path[k] > level, or -1
// when the path never exceeds level. This is the per-trajectory statistic
// behind "P[∀T > t0 : W̃_T ≤ −2] > 1 − 1/e".
func LastTimeAbove(path []float64, level float64) int {
	last := -1
	for k, v := range path {
		if v > level {
			last = k
		}
	}
	return last
}

// HittingQuantile estimates the q-quantile of the last time the dominating
// walk for an n-node graph sits above the given level, over the given
// number of trials of the given horizon. Trajectories still above
// level−margin at the horizon are conservatively scored at the horizon.
func HittingQuantile(r *rng.RNG, n int, level float64, q float64, trials, horizon int) (float64, error) {
	d, err := NewDominating(n)
	if err != nil {
		return 0, err
	}
	lasts := make([]float64, 0, trials)
	for t := 0; t < trials; t++ {
		path := d.Sample(r, horizon)
		lasts = append(lasts, float64(LastTimeAbove(path, level)+1))
	}
	return stats.Quantile(lasts, q)
}

// EpochStats summarises the per-epoch increments of ½·log varX(T_k⁺), the
// quantity the paper dominates with W̃ (½ because ‖·‖ enters varX squared).
type EpochStats struct {
	// Increments are the per-epoch changes of ½·log var.
	Increments []float64
	// MeanIncrement should be negative (net contraction) and ideally below
	// the dominating drift −(log n)/4.
	MeanIncrement float64
	// MaxIncrement must respect the hard bound log n from ‖A_k‖ ≤ n.
	MaxIncrement float64
	// FracWeak is the fraction of epochs whose contraction is weaker than
	// n^{−3/2} (i.e. increment > −(3/2)·log n). Lemma 1 + the dominance
	// construction require this to be ≤ 1/2.
	FracWeak float64
	// HardViolations counts increments exceeding log n (+ small tolerance):
	// impossible under the paper's Equation 12, so should be 0.
	HardViolations int
}

// AnalyzeEpochIncrements computes EpochStats from the sequence of
// ½·log varX(T_k⁺) values at successive epoch boundaries (k = 0, 1, ...)
// for a graph on n nodes. It returns an error with fewer than two points or
// n < 2.
func AnalyzeEpochIncrements(halfLogVar []float64, n int) (EpochStats, error) {
	if len(halfLogVar) < 2 {
		return EpochStats{}, errors.New("walk: need at least two epoch boundary values")
	}
	if n < 2 {
		return EpochStats{}, fmt.Errorf("walk: n = %d too small", n)
	}
	logN := math.Log(float64(n))
	var st EpochStats
	weak := 0
	st.MaxIncrement = math.Inf(-1)
	for k := 1; k < len(halfLogVar); k++ {
		inc := halfLogVar[k] - halfLogVar[k-1]
		st.Increments = append(st.Increments, inc)
		if inc > st.MaxIncrement {
			st.MaxIncrement = inc
		}
		if inc > -1.5*logN {
			weak++
		}
		if inc > logN*(1+1e-9)+1e-9 {
			st.HardViolations++
		}
	}
	st.MeanIncrement = stats.Mean(st.Increments)
	st.FracWeak = float64(weak) / float64(len(st.Increments))
	return st, nil
}
