package graph

// Implicit lattices: Grid and Torus have closed-form edge ids, so both
// the enumeration contract and the tiling samplers are pure index math.
// Tiles are horizontal row bands — for a lattice the cut between
// adjacent bands is one row of vertical edges, i.e. O(cols) boundary per
// seam against O(rows·cols/bands) internal edges.

import (
	"fmt"
	"math"

	"sparsecut/internal/rng"
)

// latticeBands picks the band count for an implicit lattice tiling:
// enough tiles to spread across cores, never more than the rows allow.
const latticeMaxBands = 32

func latticeBands(rows int) int {
	return min(rows, latticeMaxBands)
}

// implicitGrid mirrors Grid(rows, cols): per cell (r, c) in row-major
// order, the edge to (r, c+1) is inserted first, then the edge to
// (r+1, c). Rows above the last thus contribute a fixed-width stride of
// W = 2·cols − 1 edge ids (the last column has no right edge), and the
// last row contributes cols−1 right edges.
type implicitGrid struct {
	rows, cols int
}

// ImplicitGrid is Grid without materialisation: identical node
// labelling and edge-id insertion order.
func ImplicitGrid(rows, cols int) (Implicit, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("graph: grid needs rows, cols >= 1, got %dx%d", rows, cols)
	}
	if int64(rows)*int64(cols) > math.MaxInt32 {
		return nil, fmt.Errorf("%w: %dx%d grid", ErrTooLarge, rows, cols)
	}
	return &implicitGrid{rows: rows, cols: cols}, nil
}

func (g *implicitGrid) Name() string {
	return fmt.Sprintf("grid(%dx%d)", g.rows, g.cols)
}

func (g *implicitGrid) NumNodes() int { return g.rows * g.cols }

func (g *implicitGrid) NumEdges() int64 {
	r, c := int64(g.rows), int64(g.cols)
	return r*(c-1) + (r-1)*c
}

// SplitPoint splits the grid at the middle row boundary: the natural
// sparse(ish) cut of cols vertical edges.
func (g *implicitGrid) SplitPoint() int {
	if g.rows < 2 {
		return 0
	}
	return (g.rows / 2) * g.cols
}

// stride is the edge ids consumed per row above the last.
func (g *implicitGrid) stride() int64 { return 2*int64(g.cols) - 1 }

// rightID returns the id of the edge (r,c)-(r,c+1); requires c+1 < cols.
func (g *implicitGrid) rightID(r, c int) int64 {
	if r == g.rows-1 {
		return int64(r)*g.stride() + int64(c)
	}
	return int64(r)*g.stride() + 2*int64(c)
}

// downID returns the id of the edge (r,c)-(r+1,c); requires r+1 < rows.
func (g *implicitGrid) downID(r, c int) int64 {
	if c == g.cols-1 {
		// The last column has no right edge, so its down edge sits at
		// the even slot.
		return int64(r)*g.stride() + 2*int64(c)
	}
	return int64(r)*g.stride() + 2*int64(c) + 1
}

func (g *implicitGrid) Degree(u int) int {
	r, c := u/g.cols, u%g.cols
	d := 0
	if r > 0 {
		d++
	}
	if r+1 < g.rows {
		d++
	}
	if c > 0 {
		d++
	}
	if c+1 < g.cols {
		d++
	}
	return d
}

func (g *implicitGrid) Neighbor(u, k int) (int, int64) {
	r, c := u/g.cols, u%g.cols
	// Peers in ascending order: up (u−cols), left (u−1), right (u+1),
	// down (u+cols).
	if r > 0 {
		if k == 0 {
			return u - g.cols, g.downID(r-1, c)
		}
		k--
	}
	if c > 0 {
		if k == 0 {
			return u - 1, g.rightID(r, c-1)
		}
		k--
	}
	if c+1 < g.cols {
		if k == 0 {
			return u + 1, g.rightID(r, c)
		}
		k--
	}
	if r+1 < g.rows && k == 0 {
		return u + g.cols, g.downID(r, c)
	}
	panic(fmt.Sprintf("graph: implicit grid: neighbor index out of range for node %d", u))
}

func (g *implicitGrid) EdgeAt(id int64) (int, int) {
	if id < 0 || id >= g.NumEdges() {
		panic(fmt.Sprintf("graph: implicit grid: edge id %d outside [0,%d)", id, g.NumEdges()))
	}
	w := g.stride()
	full := int64(g.rows-1) * w
	if id >= full {
		// Last row: right edges only.
		c := int(id - full)
		u := (g.rows-1)*g.cols + c
		return u, u + 1
	}
	r := int(id / w)
	off := id % w
	u := r*g.cols + int(off/2)
	if off == w-1 || off%2 == 1 {
		// Down edge: the stride's final slot is the last column's down
		// edge; odd slots are down edges elsewhere.
		return u, u + g.cols
	}
	return u, u + 1
}

func (g *implicitGrid) Tiling() *Tiling {
	nb := latticeBands(g.rows)
	t := &Tiling{N: g.NumNodes()}
	for i := 0; i < nb; i++ {
		r0 := i * g.rows / nb
		r1 := (i + 1) * g.rows / nb
		t.Tiles = append(t.Tiles, g.bandTile(r0, r1))
		if i > 0 {
			// The seam between bands: vertical edges from row r0−1.
			for c := 0; c < g.cols; c++ {
				t.Boundary = append(t.Boundary,
					NewEdge(NodeID((r0-1)*g.cols+c), NodeID(r0*g.cols+c)))
			}
		}
	}
	return t
}

// bandTile covers rows [r0, r1): internal edges are the band's
// horizontal edges plus the vertical edges strictly inside it.
func (g *implicitGrid) bandTile(r0, r1 int) Tile {
	cols := g.cols
	h := int64(r1-r0) * int64(cols-1)
	v := int64(r1-r0-1) * int64(cols)
	return Tile{
		Lo:    int32(r0 * cols),
		Hi:    int32(r1 * cols),
		Edges: h + v,
		Fill: func(r *rng.RNG, us, vs []int32) {
			for k := range us {
				e := int64(r.Intn(int(h + v)))
				if e < h {
					rr := r0 + int(e/int64(cols-1))
					cc := int(e % int64(cols-1))
					u := int32(rr*cols + cc)
					us[k], vs[k] = u, u+1
				} else {
					e -= h
					rr := r0 + int(e/int64(cols))
					cc := int(e % int64(cols))
					u := int32(rr*cols + cc)
					us[k], vs[k] = u, u+int32(cols)
				}
			}
		},
	}
}

// implicitTorus mirrors Torus(rows, cols): per cell (r, c) in row-major
// order, the wrap-right edge to (r, (c+1)%cols) then the wrap-down edge
// to ((r+1)%rows, c) — exactly two edge ids per cell.
type implicitTorus struct {
	rows, cols int
}

// ImplicitTorus is Torus without materialisation: identical node
// labelling and edge-id insertion order. Like Torus, both dimensions
// must be >= 3 (smaller wraps create parallel edges).
func ImplicitTorus(rows, cols int) (Implicit, error) {
	if rows < 3 || cols < 3 {
		return nil, fmt.Errorf("graph: torus needs rows, cols >= 3, got %dx%d", rows, cols)
	}
	if int64(rows)*int64(cols) > math.MaxInt32 {
		return nil, fmt.Errorf("%w: %dx%d torus", ErrTooLarge, rows, cols)
	}
	return &implicitTorus{rows: rows, cols: cols}, nil
}

func (g *implicitTorus) Name() string {
	return fmt.Sprintf("torus(%dx%d)", g.rows, g.cols)
}

func (g *implicitTorus) NumNodes() int   { return g.rows * g.cols }
func (g *implicitTorus) NumEdges() int64 { return 2 * int64(g.rows) * int64(g.cols) }

func (g *implicitTorus) SplitPoint() int { return (g.rows / 2) * g.cols }

// hID is the id of cell (r,c)'s wrap-right edge, vID its wrap-down edge.
func (g *implicitTorus) hID(r, c int) int64 { return 2 * (int64(r)*int64(g.cols) + int64(c)) }
func (g *implicitTorus) vID(r, c int) int64 { return g.hID(r, c) + 1 }

func (g *implicitTorus) Degree(int) int { return 4 }

func (g *implicitTorus) Neighbor(u, k int) (int, int64) {
	if k < 0 || k >= 4 {
		panic(fmt.Sprintf("graph: implicit torus: neighbor index out of range for node %d", u))
	}
	rows, cols := g.rows, g.cols
	r, c := u/cols, u%cols
	up := (r - 1 + rows) % rows
	down := (r + 1) % rows
	left := (c - 1 + cols) % cols
	right := (c + 1) % cols
	type pe struct {
		peer int
		edge int64
	}
	nb := [4]pe{
		{up*cols + c, g.vID(up, c)},
		{down*cols + c, g.vID(r, c)},
		{r*cols + left, g.hID(r, left)},
		{r*cols + right, g.hID(r, c)},
	}
	// Insertion sort by peer: wraparound scrambles the natural order and
	// four elements cost nothing.
	for i := 1; i < 4; i++ {
		for j := i; j > 0 && nb[j].peer < nb[j-1].peer; j-- {
			nb[j], nb[j-1] = nb[j-1], nb[j]
		}
	}
	return nb[k].peer, nb[k].edge
}

func (g *implicitTorus) EdgeAt(id int64) (int, int) {
	if id < 0 || id >= g.NumEdges() {
		panic(fmt.Sprintf("graph: implicit torus: edge id %d outside [0,%d)", id, g.NumEdges()))
	}
	cell := id / 2
	r := int(cell) / g.cols
	c := int(cell) % g.cols
	u := r*g.cols + c
	var v int
	if id%2 == 0 {
		v = r*g.cols + (c+1)%g.cols
	} else {
		v = ((r+1)%g.rows)*g.cols + c
	}
	if u > v {
		u, v = v, u
	}
	return u, v
}

func (g *implicitTorus) Tiling() *Tiling {
	nb := latticeBands(g.rows)
	t := &Tiling{N: g.NumNodes()}
	if nb < 2 {
		// A single band: everything internal, sample via id inversion.
		e := g.NumEdges()
		t.Tiles = append(t.Tiles, Tile{
			Lo: 0, Hi: int32(g.NumNodes()), Edges: e,
			Fill: func(r *rng.RNG, us, vs []int32) {
				for k := range us {
					u, v := g.EdgeAt(int64(r.Intn(int(e))))
					us[k], vs[k] = int32(u), int32(v)
				}
			},
		})
		return t
	}
	for i := 0; i < nb; i++ {
		r0 := i * g.rows / nb
		r1 := (i + 1) * g.rows / nb
		t.Tiles = append(t.Tiles, g.bandTile(r0, r1))
		// Every band owns the seam above it; with nb >= 2 every vertical
		// wrap between bands is a boundary edge, including the row
		// rows−1 -> 0 wrap (the seam above band 0).
		up := (r0 - 1 + g.rows) % g.rows
		for c := 0; c < g.cols; c++ {
			t.Boundary = append(t.Boundary,
				NewEdge(NodeID(up*g.cols+c), NodeID(r0*g.cols+c)))
		}
	}
	return t
}

func (g *implicitTorus) bandTile(r0, r1 int) Tile {
	cols := g.cols
	h := int64(r1-r0) * int64(cols)
	v := int64(r1-r0-1) * int64(cols)
	return Tile{
		Lo:    int32(r0 * cols),
		Hi:    int32(r1 * cols),
		Edges: h + v,
		Fill: func(r *rng.RNG, us, vs []int32) {
			for k := range us {
				e := int64(r.Intn(int(h + v)))
				if e < h {
					rr := r0 + int(e/int64(cols))
					cc := int(e % int64(cols))
					u := int32(rr*cols + cc)
					w := int32(rr*cols + (cc+1)%cols)
					if u > w {
						u, w = w, u
					}
					us[k], vs[k] = u, w
				} else {
					e -= h
					rr := r0 + int(e/int64(cols))
					cc := int(e % int64(cols))
					u := int32(rr*cols + cc)
					us[k], vs[k] = u, u+int32(cols)
				}
			}
		},
	}
}
