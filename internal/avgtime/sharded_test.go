package avgtime

import (
	"math"
	"reflect"
	"testing"

	"sparsecut/internal/gossip"
	"sparsecut/internal/graph"
	"sparsecut/internal/stats"
)

// TestShardedVsOracleTavKS is the acceptance cross-check of the sharded
// windowed engine: its per-trial last-exceedance samples must be
// distributed like the per-event oracle's on the same family — the
// tile/boundary superposition is an exact decomposition of the edge-clock
// process and the window only quantises the observation (well below the
// Tav scale at Window = 0.25). Two-sample KS at alpha = 0.001 on the
// dumbbell and the ring of cliques, the two sparse-cut report families.
func TestShardedVsOracleTavKS(t *testing.T) {
	const trials = 120
	crit := 1.949 * math.Sqrt(2.0/trials)
	cases := []struct {
		name string
		mat  func() (*graph.Graph, []float64)
		imp  func() (graph.Implicit, []float64)
	}{
		{
			"dumbbell",
			func() (*graph.Graph, []float64) {
				g, part, err := graph.Dumbbell(12, 12, 1)
				if err != nil {
					t.Fatal(err)
				}
				return g, gossip.CutIndicator(part)
			},
			func() (graph.Implicit, []float64) {
				ig, err := graph.ImplicitDumbbell(12, 12, 1)
				if err != nil {
					t.Fatal(err)
				}
				return ig, gossip.CutIndicatorPrefix(ig.NumNodes(), ig.SplitPoint())
			},
		},
		{
			"ringofcliques",
			func() (*graph.Graph, []float64) {
				g, part, err := graph.RingOfCliques(4, 6, 1)
				if err != nil {
					t.Fatal(err)
				}
				return g, gossip.CutIndicator(part)
			},
			func() (graph.Implicit, []float64) {
				ig, err := graph.ImplicitRingOfCliques(4, 6, 1)
				if err != nil {
					t.Fatal(err)
				}
				return ig, gossip.CutIndicatorPrefix(ig.NumNodes(), ig.SplitPoint())
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, x0 := tc.mat()
			cfg := Config{Trials: trials, Seed: 1234, MarginFactor: 1}
			oracle, err := Estimate(g, VanillaFactory(g, x0), cfg)
			if err != nil {
				t.Fatal(err)
			}
			ig, ix0 := tc.imp()
			sharded, err := EstimateSharded(ig, ix0, cfg, ShardedOptions{Window: 0.25})
			if err != nil {
				t.Fatal(err)
			}
			if oracle.Censored != 0 || sharded.Censored != 0 {
				t.Fatalf("unexpected censoring: oracle %d, sharded %d", oracle.Censored, sharded.Censored)
			}
			d := stats.KSDistance(oracle.PerTrial, sharded.PerTrial)
			if d > crit {
				t.Errorf("KS distance %.4f between oracle and sharded Tav samples exceeds %.4f (oracle Tav=%.4g, sharded Tav=%.4g)",
					d, crit, oracle.Tav, sharded.Tav)
			}
		})
	}
}

// TestEstimateShardedWorkerDeterminism pins the byte-determinism
// contract at the estimator level: PerTrial is bit-identical for any
// worker count.
func TestEstimateShardedWorkerDeterminism(t *testing.T) {
	ig, err := graph.ImplicitRingOfCliques(5, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	x0 := gossip.CutIndicatorPrefix(ig.NumNodes(), ig.SplitPoint())
	cfg := Config{Trials: 6, Seed: 9, MarginFactor: 1}
	var ref Result
	for i, workers := range []int{1, 4, 32} {
		res, err := EstimateSharded(ig, x0, cfg, ShardedOptions{Workers: workers, Window: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if !reflect.DeepEqual(ref, res) {
			t.Fatalf("workers=%d result diverged:\n%+v\nvs\n%+v", workers, res, ref)
		}
	}
}

// TestEstimateShardedValidation covers the error paths.
func TestEstimateShardedValidation(t *testing.T) {
	ig, err := graph.ImplicitDumbbell(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EstimateSharded(ig, []float64{1, 2}, Config{}, ShardedOptions{}); err == nil {
		t.Error("length mismatch not rejected")
	}
	x0 := gossip.CutIndicatorPrefix(8, 4)
	if _, err := EstimateSharded(ig, x0, Config{Trials: -1}, ShardedOptions{}); err == nil {
		t.Error("bad trials not rejected")
	}
}

// TestEstimateShardedAlreadyAveraged: a constant vector yields zero
// last-exceedance times without simulating.
func TestEstimateShardedAlreadyAveraged(t *testing.T) {
	ig, err := graph.ImplicitDumbbell(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	x0 := make([]float64, 8)
	for i := range x0 {
		x0[i] = 3
	}
	res, err := EstimateSharded(ig, x0, Config{Trials: 3}, ShardedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tav != 0 || res.Events != 0 {
		t.Fatalf("constant vector: Tav=%v Events=%d, want 0/0", res.Tav, res.Events)
	}
}
