package metrics

import (
	"math"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins every log2 bucket edge: powers of two
// open a new bucket, one-below stays in the previous one, and the extremes
// (0, negatives, MaxInt64) land where documented.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      int64
		bucket int
	}{
		{math.MinInt64, 0}, // negatives clamp into bucket 0
		{-1, 0},
		{0, 0},
		{1, 1}, // [1,1]
		{2, 2}, // [2,3]
		{3, 2},
		{4, 3}, // [4,7]
		{7, 3},
		{8, 4},
		{(1 << 20) - 1, 20},
		{1 << 20, 21},
		{math.MaxInt64, 63}, // 2^63-1 has 63 bits
	}
	for _, tc := range cases {
		if got := bucketIndex(max(tc.v, 0)); got != tc.bucket {
			t.Errorf("bucketIndex(%d) = %d, want %d", tc.v, got, tc.bucket)
		}
		var h Histogram
		h.Observe(tc.v)
		s := h.snapshot()
		if len(s.Buckets) != 1 {
			t.Fatalf("Observe(%d): %d non-empty buckets, want 1", tc.v, len(s.Buckets))
		}
		lo, hi := BucketBounds(tc.bucket)
		if b := s.Buckets[0]; b.Lo != lo || b.Hi != hi || b.Count != 1 {
			t.Errorf("Observe(%d): bucket [%d,%d] x%d, want [%d,%d] x1", tc.v, b.Lo, b.Hi, b.Count, lo, hi)
		}
	}
}

// TestHistogramBucketBoundsCoverage checks the 65 buckets tile the
// non-negative int64 range with no gaps or overlaps.
func TestHistogramBucketBoundsCoverage(t *testing.T) {
	prevHi := uint64(0)
	for i := 1; i < NumBuckets; i++ {
		lo, hi := BucketBounds(i)
		if lo != prevHi+1 {
			t.Errorf("bucket %d starts at %d, want %d", i, lo, prevHi+1)
		}
		if hi < lo {
			t.Errorf("bucket %d inverted: [%d,%d]", i, lo, hi)
		}
		prevHi = hi
	}
	if prevHi != math.MaxUint64 {
		t.Errorf("last bucket ends at %d, want MaxUint64", prevHi)
	}
}

func TestHistogramCountSum(t *testing.T) {
	var h Histogram
	vals := []int64{0, 1, 1, 3, 1024, -7}
	for _, v := range vals {
		h.Observe(v)
	}
	if got := h.Count(); got != int64(len(vals)) {
		t.Errorf("Count = %d, want %d", got, len(vals))
	}
	if got := h.Sum(); got != 0+1+1+3+1024+0 {
		t.Errorf("Sum = %d, want %d (negative clamped to 0)", got, 1029)
	}
}

// TestHistogramHammer races many observers; the final count and sum must
// be exact.
func TestHistogramHammer(t *testing.T) {
	var h Histogram
	const goroutines, perG = 16, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < perG; i++ {
				h.Observe(i % 1000)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("Count = %d, want %d", got, goroutines*perG)
	}
	var wantSum int64
	for i := int64(0); i < perG; i++ {
		wantSum += i % 1000
	}
	wantSum *= goroutines
	if got := h.Sum(); got != wantSum {
		t.Fatalf("Sum = %d, want %d", got, wantSum)
	}
}
