package dist

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sparsecut/internal/flight"
	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
)

// MsgKind discriminates protocol messages. See node.go for the exchange
// protocol that produces them.
type MsgKind uint8

const (
	// MsgLock is initiator → responder: request an exchange over Edge,
	// carrying the initiator's current value in X.
	MsgLock MsgKind = iota + 1
	// MsgPropose is responder → initiator: the responder has locked
	// itself and computed the exchange; X carries the delta the initiator
	// would add to its value. Nothing is committed yet. Proposals are
	// retransmitted until answered with a COMMIT or a NACK.
	MsgPropose
	// MsgNack aborts. Responder → initiator: the responder was locked (or
	// draining). Initiator → responder: the proposal arrived for an
	// exchange the initiator already gave up on. Either way no state
	// changed anywhere.
	MsgNack
	// MsgCommit is initiator → responder: the initiator has applied its
	// half (+X); the responder applies the negation and unlocks.
	MsgCommit
)

// String names the message kind.
func (k MsgKind) String() string {
	switch k {
	case MsgLock:
		return "LOCK"
	case MsgPropose:
		return "PROPOSE"
	case MsgNack:
		return "NACK"
	case MsgCommit:
		return "COMMIT"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Message is one protocol message. All fields are exported so transports
// may serialise messages (the TCP transport uses encoding/gob).
type Message struct {
	Kind MsgKind
	// From and To are protocol endpoints; the cluster uses node IDs.
	From, To int
	// Via, when non-zero, overrides the transport mailbox the message is
	// delivered to: mailbox Via-1 instead of mailbox To. The sharded
	// runtime sets it so that S shard mailboxes can serve N >> S nodes
	// over unmodified transports — the shard that owns node To drains
	// mailbox Via-1 and dispatches on To itself. Zero (the goroutine
	// runtime, and all pre-existing traffic) keeps the one-mailbox-per-
	// node routing. The offset-by-one encoding keeps the zero value
	// meaningful and mailbox 0 addressable.
	Via int
	// Epoch is the cluster run that produced the message. Receivers drop
	// messages from older runs: a stale LOCK must not start an exchange
	// against a previous run's value snapshot, and every exchange of a
	// finished run is already resolved (runs end at quiescence, or settle
	// in-process on transport death), so dropping is safe.
	Epoch uint64
	// Seq is the initiator's exchange sequence number; (initiator, Seq)
	// uniquely identifies one exchange attempt.
	Seq uint64
	// Re is the request kind this message answers (MsgLock for PROPOSE and
	// the busy-responder NACK, MsgPropose for COMMIT and the
	// stale-proposal NACK; zero on LOCK, which answers nothing). NACK
	// handling depends on it: seq counters are per-node namespaces, so a
	// NACK refusing my LOCK and a NACK refusing my held proposal can carry
	// the same (peer, seq) — only the answered kind tells an initiator
	// abort from a responder rollback (see Machine.Deliver and
	// MutNackRoleConfusion for the collision this prevents).
	Re MsgKind
	// Edge is the graph edge the exchange ticks.
	Edge graph.EdgeID
	// X is the payload: the initiator's value in a LOCK, the initiator's
	// delta in a PROPOSE, unused otherwise.
	X float64
}

// mailboxAddr is the transport mailbox m is delivered to: the Via
// override when set, the destination node otherwise. Every transport
// routes on this so the sharded runtime's S-mailboxes-for-N-nodes scheme
// works uniformly across Chan/Drop/Delay/TCP.
func mailboxAddr(m Message) int {
	if m.Via > 0 {
		return m.Via - 1
	}
	return m.To
}

// ErrClosed is returned by Send on a transport that has been closed.
var ErrClosed = errors.New("dist: transport closed")

// Transport moves Messages between addresses. Implementations must be safe
// for concurrent use by many goroutines. Delivery is best-effort: it may be
// lossy (DropTransport, or any transport under congestion) or slow
// (DelayTransport) but never duplicating or corrupting — the exchange
// protocol tolerates loss and reordering, and generates its own duplicates
// (proposal retransmission) which receivers deduplicate.
type Transport interface {
	// Send delivers m to its mailbox (m.To, or m.Via-1 when the Via
	// routing override is set), or drops it (congestion is loss,
	// as on a real network — a blocking Send could deadlock two actors
	// with mutually full mailboxes). Send must not block indefinitely.
	Send(m Message) error
	// Recv returns the mailbox channel for addr. Repeated calls with the
	// same addr return the same channel.
	Recv(addr int) (<-chan Message, error)
	// Close releases transport resources. Subsequent Sends fail with
	// ErrClosed; mailbox channels are left open (drained by readers).
	Close() error
}

// ChanTransport is the in-memory transport: one buffered Go channel per
// address, created lazily. It is the zero-configuration default and the
// reference semantics every other transport layers on.
type ChanTransport struct {
	buf       int
	mu        sync.Mutex
	boxes     map[int]chan Message
	closed    chan struct{}
	once      sync.Once
	congested atomic.Int64
	// rec receives a flight record per congestion drop (atomic because
	// instrumentation may attach after senders are already active).
	rec atomic.Pointer[flight.Recorder]
}

var _ Transport = (*ChanTransport)(nil)

// NewChanTransport returns an in-memory transport whose mailboxes buffer
// buf messages each (minimum 1). A generous buffer — a small multiple of
// the node count — avoids backpressure stalls under bursty retransmission.
func NewChanTransport(buf int) *ChanTransport {
	if buf < 1 {
		buf = 1
	}
	return &ChanTransport{
		buf:    buf,
		boxes:  make(map[int]chan Message),
		closed: make(chan struct{}),
	}
}

func (t *ChanTransport) box(addr int) chan Message {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.boxes[addr]
	if !ok {
		b = make(chan Message, t.buf)
		t.boxes[addr] = b
	}
	return b
}

// Send implements Transport. A full destination mailbox drops the message
// (congestion loss): blocking would let two actors with mutually full
// mailboxes deadlock, whereas the exchange protocol already recovers from
// loss of any message kind.
func (t *ChanTransport) Send(m Message) error {
	box := t.box(mailboxAddr(m))
	select {
	case <-t.closed:
		return ErrClosed
	default:
	}
	select {
	case box <- m:
	default:
		t.congested.Add(1)
		recordNetDrop(t.rec.Load(), m, m.From, flight.ReasonCongestion)
	}
	return nil
}

// Congested returns the number of messages dropped because the
// destination mailbox was full.
func (t *ChanTransport) Congested() int64 { return t.congested.Load() }

// Recv implements Transport.
func (t *ChanTransport) Recv(addr int) (<-chan Message, error) {
	return t.box(addr), nil
}

// Close implements Transport.
func (t *ChanTransport) Close() error {
	t.once.Do(func() { close(t.closed) })
	return nil
}

// DropTransport decorates a Transport with i.i.d. Bernoulli message loss —
// the fault-injection layer of experiment E12. Drop decisions are drawn from
// a private RNG, so given the same seed and the same sequence of Send calls
// the same messages are dropped.
type DropTransport struct {
	inner   Transport
	rate    float64
	mu      sync.Mutex
	r       *rng.RNG
	dropped atomic.Int64
	rec     atomic.Pointer[flight.Recorder]
}

var _ Transport = (*DropTransport)(nil)

// NewDropTransport wraps inner so that each message is independently
// dropped with probability dropRate in [0, 1). The RNG is owned by the
// transport afterwards (guarded internally; do not share it).
func NewDropTransport(inner Transport, dropRate float64, r *rng.RNG) (*DropTransport, error) {
	if inner == nil {
		return nil, errors.New("dist: DropTransport requires an inner transport")
	}
	if !(dropRate >= 0 && dropRate < 1) {
		return nil, fmt.Errorf("dist: drop rate %v outside [0,1)", dropRate)
	}
	if r == nil {
		return nil, errors.New("dist: DropTransport requires an RNG")
	}
	return &DropTransport{inner: inner, rate: dropRate, r: r}, nil
}

// Send implements Transport, losing the message with the configured
// probability (a loss is a successful no-op, as on a real lossy network).
func (t *DropTransport) Send(m Message) error {
	t.mu.Lock()
	u := t.r.Float64()
	t.mu.Unlock()
	if u < t.rate {
		t.dropped.Add(1)
		recordNetDrop(t.rec.Load(), m, m.From, flight.ReasonLoss)
		return nil
	}
	return t.inner.Send(m)
}

// Recv implements Transport.
func (t *DropTransport) Recv(addr int) (<-chan Message, error) { return t.inner.Recv(addr) }

// Close implements Transport.
func (t *DropTransport) Close() error { return t.inner.Close() }

// Dropped returns the number of messages lost so far.
func (t *DropTransport) Dropped() int64 { return t.dropped.Load() }

// DelayTransport decorates a Transport with random per-message latency,
// uniform in [0, maxDelay) — the asynchronous-network scenario layer.
// Because messages are delayed independently they may be reordered, which
// the exchange protocol tolerates.
type DelayTransport struct {
	inner   Transport
	max     time.Duration
	mu      sync.Mutex
	r       *rng.RNG
	timers  map[*time.Timer]struct{}
	closed  bool
	delayed atomic.Int64
	// inflight counts timer callbacks that have passed the closed check
	// and are committed to delivering; Close waits for them, so that no
	// message reaches the inner transport after Close returns.
	inflight sync.WaitGroup
	// innerErr records the first delivery failure from the inner
	// transport. Because the real Send happens asynchronously in a timer
	// callback, its error cannot be returned to the original caller;
	// surfacing it on the *next* Send keeps a permanently failed inner
	// transport visible (Cluster.Run relies on send errors to cut a run
	// short instead of retransmitting forever).
	innerErr error
}

var _ Transport = (*DelayTransport)(nil)

// NewDelayTransport wraps inner so that each message is delivered after an
// independent uniform delay in [0, maxDelay). The RNG is owned by the
// transport afterwards.
func NewDelayTransport(inner Transport, maxDelay time.Duration, r *rng.RNG) (*DelayTransport, error) {
	if inner == nil {
		return nil, errors.New("dist: DelayTransport requires an inner transport")
	}
	if maxDelay < 0 {
		return nil, fmt.Errorf("dist: negative max delay %v", maxDelay)
	}
	if r == nil {
		return nil, errors.New("dist: DelayTransport requires an RNG")
	}
	return &DelayTransport{inner: inner, max: maxDelay, r: r, timers: make(map[*time.Timer]struct{})}, nil
}

// Send implements Transport: the message is handed to the inner transport
// after the sampled delay.
func (t *DelayTransport) Send(m Message) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	if err := t.innerErr; err != nil {
		t.mu.Unlock()
		return err
	}
	d := time.Duration(t.r.Float64() * float64(t.max))
	var tm *time.Timer
	tm = time.AfterFunc(d, func() {
		// The callback acquires the same mutex the creator holds while
		// assigning tm, so the read below is ordered after the write even
		// for a zero delay.
		t.mu.Lock()
		delete(t.timers, tm)
		closed := t.closed
		if !closed {
			// Registered under the same mutex Close takes to set the
			// flag, so Close's Wait observes this delivery.
			t.inflight.Add(1)
		}
		t.mu.Unlock()
		if closed {
			return
		}
		defer t.inflight.Done()
		if err := t.inner.Send(m); err != nil {
			t.mu.Lock()
			if t.innerErr == nil {
				t.innerErr = err
			}
			t.mu.Unlock()
		}
	})
	t.timers[tm] = struct{}{}
	t.mu.Unlock()
	t.delayed.Add(1)
	return nil
}

// Delayed returns the number of messages that have been scheduled through
// the delay layer.
func (t *DelayTransport) Delayed() int64 { return t.delayed.Load() }

// Recv implements Transport.
func (t *DelayTransport) Recv(addr int) (<-chan Message, error) { return t.inner.Recv(addr) }

// Close implements Transport: every message still in the timer wheel is
// cancelled, and Close blocks for the (at most a few) callbacks already
// committed to delivering — after Close returns, no message reaches the
// inner transport through this layer.
func (t *DelayTransport) Close() error {
	t.mu.Lock()
	t.closed = true
	for tm := range t.timers {
		tm.Stop()
		delete(t.timers, tm)
	}
	t.mu.Unlock()
	t.inflight.Wait()
	return t.inner.Close()
}
