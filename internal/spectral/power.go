package spectral

import (
	"errors"
	"fmt"
	"math"

	"sparsecut/internal/graph"
	"sparsecut/internal/rng"
)

// Options configures power iteration. The zero value selects the defaults
// documented on each field.
type Options struct {
	// MaxIter bounds the number of iterations (default 50000).
	MaxIter int
	// Tol is the relative Rayleigh-quotient convergence tolerance
	// (default 1e-10).
	Tol float64
	// Seed seeds the random starting vector (default 1).
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.MaxIter == 0 {
		o.MaxIter = 50000
	}
	if o.Tol == 0 {
		o.Tol = 1e-10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// ErrNoConvergence is returned when power iteration exhausts MaxIter
// without meeting the tolerance. The partial estimate is still returned.
var ErrNoConvergence = errors.New("spectral: power iteration did not converge")

// PowerIteration estimates the largest eigenvalue (by magnitude, assumed
// non-negative as for our PSD operators) of op and its eigenvector.
// When deflate is non-nil, the iterate is re-orthogonalised against the
// (unit-norm) deflate vectors each step, restricting the iteration to their
// orthogonal complement.
//
// The eigenvalue estimate is the final Rayleigh quotient. On
// ErrNoConvergence the best estimate so far is returned alongside the error.
func PowerIteration(op Operator, deflate [][]float64, opts Options) (float64, []float64, error) {
	o := opts.withDefaults()
	n := op.Dim()
	if n == 0 {
		return 0, nil, errors.New("spectral: zero-dimensional operator")
	}
	for _, d := range deflate {
		if len(d) != n {
			return 0, nil, fmt.Errorf("spectral: deflation vector has dim %d, want %d", len(d), n)
		}
	}
	r := rng.New(o.Seed)
	x := make([]float64, n)
	for i := range x {
		x[i] = r.NormFloat64()
	}
	orthogonalize(x, deflate)
	if Normalize(x) == 0 {
		return 0, nil, errors.New("spectral: start vector vanished under deflation")
	}
	y := make([]float64, n)
	lambda := 0.0
	for iter := 0; iter < o.MaxIter; iter++ {
		op.Apply(y, x)
		orthogonalize(y, deflate)
		newLambda := Dot(x, y) // Rayleigh quotient since x is unit norm
		norm := Normalize(y)
		if norm == 0 {
			// Operator annihilated the iterate: eigenvalue 0 on this subspace.
			return 0, x, nil
		}
		x, y = y, x
		denom := math.Max(math.Abs(newLambda), 1)
		if iter > 0 && math.Abs(newLambda-lambda)/denom < o.Tol {
			return newLambda, x, nil
		}
		lambda = newLambda
	}
	return lambda, x, ErrNoConvergence
}

// orthogonalize removes the components of x along each unit vector in basis.
func orthogonalize(x []float64, basis [][]float64) {
	for _, b := range basis {
		Axpy(-Dot(x, b), b, x)
	}
}

// LambdaMax estimates the largest Laplacian eigenvalue of g.
func LambdaMax(g *graph.Graph, opts Options) (float64, error) {
	lam, _, err := PowerIteration(Laplacian{G: g}, nil, opts)
	return lam, err
}

// Lambda2 estimates the algebraic connectivity λ2(L), the smallest nonzero
// Laplacian eigenvalue of a connected graph, together with the associated
// Fiedler vector. It runs power iteration on 2*maxdeg*I − L deflated
// against the all-ones vector. It returns an error if g has fewer than two
// nodes or the iteration fails to converge.
func Lambda2(g *graph.Graph, opts Options) (float64, []float64, error) {
	n := g.NumNodes()
	if n < 2 {
		return 0, nil, fmt.Errorf("spectral: Lambda2 needs >= 2 nodes, got %d", n)
	}
	// λmax(L) <= 2*maxdeg, so the shift keeps the spectrum non-negative.
	c := 2 * float64(g.MaxDegree())
	if c == 0 {
		// Edgeless graph: λ2 = 0 and any centered vector is a witness.
		v := make([]float64, n)
		v[0] = 1
		CenterMean(v)
		Normalize(v)
		return 0, v, nil
	}
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1 / math.Sqrt(float64(n))
	}
	lamShifted, vec, err := PowerIteration(Shifted{C: c, Op: Laplacian{G: g}}, [][]float64{ones}, opts)
	if err != nil {
		return c - lamShifted, vec, err
	}
	return c - lamShifted, vec, nil
}

// FiedlerVector returns the eigenvector associated with λ2(L); the sign
// structure of this vector is the classic spectral-bisection heuristic.
func FiedlerVector(g *graph.Graph, opts Options) ([]float64, error) {
	_, v, err := Lambda2(g, opts)
	return v, err
}

// TvanBound returns the analytic upper bound 6/λ2(L) on the vanilla
// averaging time of g in the paper's timing model (rate-1 Poisson clock per
// edge, tick ⇒ both endpoints take the arithmetic mean).
//
// Derivation: a tick of edge (i,j) changes the centered squared norm by
// −(x_i−x_j)²/2, so dE‖x‖²/dt = −½·E[xᵀLx] ≤ −(λ2/2)·E‖x‖². Grönwall gives
// E[varX(t)] ≤ e^{−λ2·t/2}·varX(0); Markov turns that into
// P[varX(t) > e⁻²·varX(0)] ≤ e²·e^{−λ2·t/2}, which is below 1/e for
// t ≥ 6/λ2. Because convex updates never increase the variance, "below the
// threshold at t" implies "below forever after", matching Definition 1.
func TvanBound(g *graph.Graph, opts Options) (float64, error) {
	lam2, _, err := Lambda2(g, opts)
	if err != nil {
		return 0, err
	}
	if lam2 <= 0 {
		return math.Inf(1), nil
	}
	return 6 / lam2, nil
}
