package dist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"sparsecut/internal/graph"
)

var wireSamples = []Message{
	{},
	{Kind: MsgLock, From: 0, To: 1, Epoch: 1, Seq: 1, Edge: 0, X: 1},
	{Kind: MsgPropose, Re: MsgLock, From: 7, To: 3, Epoch: 2, Seq: 19, Edge: 11, X: -0.4375},
	{Kind: MsgNack, Re: MsgPropose, From: 3, To: 7, Epoch: 2, Seq: 19, Edge: 11},
	{Kind: MsgCommit, Re: MsgPropose, From: 999999, To: 1000000, Via: 64, Epoch: 12, Seq: 1 << 40, Edge: 1<<31 - 1, X: math.Pi},
	// Values the protocol never produces must still round-trip: the codec
	// is structural, not semantic.
	{Kind: 200, Re: 255, From: -5, To: -9, Via: -1, Edge: -2, X: math.Inf(-1)},
	{From: math.MaxInt64, To: math.MinInt64, Epoch: math.MaxUint64, Seq: math.MaxUint64, X: math.MaxFloat64},
	{X: smallestDenormal()},
}

func smallestDenormal() float64 { return math.Float64frombits(1) }

// sameMessage compares messages with NaN-tolerant X equality.
func sameMessage(a, b Message) bool {
	if a.X != b.X && !(math.IsNaN(a.X) && math.IsNaN(b.X)) {
		return false
	}
	a.X, b.X = 0, 0
	return a == b
}

func TestWireRoundTrip(t *testing.T) {
	for i, m := range wireSamples {
		frame := appendMessage(nil, m)
		got, n, err := decodeMessage(frame)
		if err != nil {
			t.Fatalf("sample %d: decode: %v", i, err)
		}
		if n != len(frame) {
			t.Fatalf("sample %d: consumed %d of %d bytes", i, n, len(frame))
		}
		if !sameMessage(got, m) {
			t.Fatalf("sample %d: round trip %+v != %+v", i, got, m)
		}
	}
}

func TestWireCompactness(t *testing.T) {
	m := Message{Kind: MsgPropose, Re: MsgLock, From: 512, To: 513, Epoch: 3, Seq: 1000, Edge: 2048, X: 0.5}
	frame := appendMessage(nil, m)
	if len(frame) > 32 {
		t.Fatalf("typical frame is %d bytes; the point of the codec is to beat gob's ~90", len(frame))
	}
}

// TestWireTruncation: every strict prefix of a valid frame must be
// rejected, never mis-decoded.
func TestWireTruncation(t *testing.T) {
	for i, m := range wireSamples {
		frame := appendMessage(nil, m)
		for cut := 0; cut < len(frame); cut++ {
			if _, _, err := decodeMessage(frame[:cut]); err == nil {
				t.Fatalf("sample %d: decode succeeded on %d/%d-byte prefix", i, cut, len(frame))
			}
		}
	}
}

// TestWireTrailingBytes: a frame whose declared length exceeds its real
// content (padding inside the frame) is rejected — the field decoders must
// consume the body exactly.
func TestWireTrailingBytes(t *testing.T) {
	frame := appendMessage(nil, wireSamples[2])
	// Rewrite the length prefix to claim two extra bytes and supply them.
	body := frame[1:] // samples are tiny: 1-byte uvarint prefix
	padded := binary.AppendUvarint(nil, uint64(len(body)+2))
	padded = append(padded, body...)
	padded = append(padded, 0, 0)
	if _, _, err := decodeMessage(padded); err == nil {
		t.Fatal("decode accepted a frame with trailing padding")
	}
}

func TestWireOversizeFrameRejected(t *testing.T) {
	buf := binary.AppendUvarint(nil, maxWireFrame+1)
	buf = append(buf, make([]byte, maxWireFrame+1)...)
	if _, _, err := decodeMessage(buf); err != errFrameTooBig {
		t.Fatalf("oversize frame: got %v, want errFrameTooBig", err)
	}

	r := newWireReader(bytes.NewReader(buf))
	if _, err := r.readMessage(); err != errFrameTooBig {
		t.Fatalf("oversize frame (stream): got %v, want errFrameTooBig", err)
	}
}

// TestWireReaderStream: a stream of back-to-back frames decodes in order,
// ends with a clean io.EOF on a frame boundary, and a mid-frame cut yields
// ErrUnexpectedEOF.
func TestWireReaderStream(t *testing.T) {
	var stream []byte
	for _, m := range wireSamples {
		stream = appendMessage(stream, m)
	}

	r := newWireReader(bytes.NewReader(stream))
	for i, want := range wireSamples {
		got, err := r.readMessage()
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !sameMessage(got, want) {
			t.Fatalf("message %d: %+v != %+v", i, got, want)
		}
	}
	if _, err := r.readMessage(); err != io.EOF {
		t.Fatalf("stream end: got %v, want io.EOF", err)
	}

	r = newWireReader(bytes.NewReader(stream[:len(stream)-3]))
	var err error
	for err == nil {
		_, err = r.readMessage()
	}
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("mid-frame cut: got %v, want io.ErrUnexpectedEOF", err)
	}
}

// wireCorpusSeeds are the committed fuzz seeds (testdata/fuzz/FuzzWireCodec)
// and the in-process f.Add seeds — one list so they cannot drift.
func wireCorpusSeeds() [][]byte {
	var seeds [][]byte
	for _, m := range wireSamples {
		seeds = append(seeds, appendMessage(nil, m))
	}
	return append(seeds,
		[]byte{},
		[]byte{0x00},
		// 10-byte maximal uvarint length prefix with no body.
		[]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		// Maximum-length all-zero body: decodes, re-encodes shorter.
		append(binary.AppendUvarint(nil, 70), make([]byte, 70)...),
	)
}

// TestRegenWireCorpus rewrites the committed seed corpus. It is skipped
// unless REGEN_WIRE_CORPUS=1 — run it after changing the frame format.
func TestRegenWireCorpus(t *testing.T) {
	if os.Getenv("REGEN_WIRE_CORPUS") == "" {
		t.Skip("set REGEN_WIRE_CORPUS=1 to rewrite testdata/fuzz/FuzzWireCodec")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzWireCodec")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range wireCorpusSeeds() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// FuzzWireCodec fuzzes the binary codec from raw bytes, exercising both
// directions:
//
//  1. Decode-of-garbage: decodeMessage on arbitrary input must either fail
//     or yield a message that re-encodes to a decodable canonical frame
//     (one round of re-encoding is a fixed point — non-minimal varints are
//     the only way a foreign encoder can differ from ours).
//  2. Encode-decode identity: a Message built from the fuzzed bytes must
//     round-trip exactly, including through the streaming reader, and the
//     stream must reject every truncation of the frame.
func FuzzWireCodec(f *testing.F) {
	for _, s := range wireCorpusSeeds() {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Direction 1: arbitrary bytes in.
		if m, n, err := decodeMessage(data); err == nil {
			if n > len(data) {
				t.Fatalf("decode claims %d bytes of a %d-byte input", n, len(data))
			}
			re := appendMessage(nil, m)
			m2, n2, err := decodeMessage(re)
			if err != nil {
				t.Fatalf("re-encode of decoded message failed to decode: %v", err)
			}
			if n2 != len(re) || !sameMessage(m, m2) {
				t.Fatalf("re-encode not a fixed point: %+v != %+v", m2, m)
			}
		}

		// Direction 2: a message synthesized from the bytes out.
		var pad [64]byte
		b := append(data, pad[:]...)
		m := Message{
			Kind:  MsgKind(b[0]),
			Re:    MsgKind(b[1]),
			From:  int(int64(binary.LittleEndian.Uint64(b[2:]))),
			To:    int(int64(binary.LittleEndian.Uint64(b[10:]))),
			Via:   int(int64(binary.LittleEndian.Uint64(b[18:]))),
			Epoch: binary.LittleEndian.Uint64(b[26:]),
			Seq:   binary.LittleEndian.Uint64(b[34:]),
			Edge:  graph.EdgeID(binary.LittleEndian.Uint32(b[42:])),
			X:     math.Float64frombits(binary.LittleEndian.Uint64(b[46:])),
		}
		frame := appendMessage(nil, m)
		got, n, err := decodeMessage(frame)
		if err != nil {
			t.Fatalf("round trip decode: %v (message %+v)", err, m)
		}
		if n != len(frame) || !sameMessage(got, m) {
			t.Fatalf("round trip: %+v != %+v (consumed %d/%d)", got, m, n, len(frame))
		}
		for cut := 0; cut < len(frame); cut++ {
			if _, _, err := decodeMessage(frame[:cut]); err == nil {
				t.Fatalf("decode succeeded on %d/%d-byte truncation", cut, len(frame))
			}
		}
		sr := newWireReader(bytes.NewReader(frame))
		got2, err := sr.readMessage()
		if err != nil || !sameMessage(got2, m) {
			t.Fatalf("stream round trip: %+v, %v", got2, err)
		}
	})
}
