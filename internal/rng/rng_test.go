package rng

import (
	"math"
	"testing"
	"testing/quick"

	"sparsecut/internal/stats"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestNewDistinctSeeds(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams for distinct seeds collided %d/100 times", same)
	}
}

func TestNewZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child stream must differ from the parent's continuation.
	diff := false
	for i := 0; i < 64; i++ {
		if parent.Uint64() != child.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("split child reproduced parent stream")
	}
}

func TestSplitDeterministic(t *testing.T) {
	a, b := New(7).Split(), New(7).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(9)
	const buckets, draws = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d deviates from %v by more than 5 sigma", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestInt63NonNegative(t *testing.T) {
	r := New(17)
	for i := 0; i < 10000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned a negative value")
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	for _, rate := range []float64{0.5, 1, 4} {
		r := New(13)
		const n = 200000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += r.ExpFloat64(rate)
		}
		mean := sum / n
		want := 1 / rate
		if math.Abs(mean-want)/want > 0.02 {
			t.Errorf("rate %v: sample mean %v, want ~%v", rate, mean, want)
		}
	}
}

func TestExpFloat64Positive(t *testing.T) {
	r := New(19)
	for i := 0; i < 100000; i++ {
		if v := r.ExpFloat64(1); v < 0 || math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("ExpFloat64 produced invalid sample %v", v)
		}
	}
}

func TestExpFloat64PanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ExpFloat64(0) did not panic")
		}
	}()
	New(1).ExpFloat64(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(23)
	const n = 400000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPoissonMeanSmall(t *testing.T) {
	r := New(29)
	const n = 100000
	mean := 3.5
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Poisson(mean)
	}
	got := float64(sum) / n
	if math.Abs(got-mean)/mean > 0.03 {
		t.Errorf("Poisson(%v) sample mean %v", mean, got)
	}
}

func TestPoissonMeanLarge(t *testing.T) {
	r := New(31)
	const n = 50000
	mean := 500.0
	sum := 0
	for i := 0; i < n; i++ {
		sum += r.Poisson(mean)
	}
	got := float64(sum) / n
	if math.Abs(got-mean)/mean > 0.01 {
		t.Errorf("Poisson(%v) sample mean %v", mean, got)
	}
}

func TestPoissonZeroMean(t *testing.T) {
	if got := New(1).Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
}

func TestPoissonNonNegative(t *testing.T) {
	r := New(37)
	for _, mean := range []float64{0.01, 1, 64, 65, 1000} {
		for i := 0; i < 1000; i++ {
			if v := r.Poisson(mean); v < 0 {
				t.Fatalf("Poisson(%v) returned %d", mean, v)
			}
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(41)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw % 64)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(43)
	const n, draws = 5, 50000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Perm first-element %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(47)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed element sum: %d != %d", got, sum)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkExpFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.ExpFloat64(1)
	}
	_ = sink
}

// Regression for the open-interval fix: neither exponential sampler may
// ever return exactly 0 or +Inf (the old 1-Float64() inversion could
// return 0 when Float64() hit its lattice endpoint).
func TestExponentialSamplersOpenSupport(t *testing.T) {
	r := New(123)
	for i := 0; i < 2_000_000; i++ {
		x := r.ExpFloat64(2.5)
		if !(x > 0) || math.IsInf(x, 1) {
			t.Fatalf("ExpFloat64 draw %d = %v", i, x)
		}
		u := r.ExpUnit()
		if !(u > 0) || math.IsInf(u, 1) {
			t.Fatalf("ExpUnit draw %d = %v", i, u)
		}
	}
	// The inversion endpoints themselves stay strictly inside the support:
	// the extreme mantissae map to finite positive samples. (The 52-bit
	// lattice matters: with 53 bits the upper endpoint would round to 1.0
	// and map to -0.)
	if x := -math.Log(0.5 * (1.0 / (1 << 52))); math.IsInf(x, 1) || !(x > 0) {
		t.Fatalf("lower lattice endpoint maps to %v", x)
	}
	if x := -math.Log((float64(1<<52-1) + 0.5) * (1.0 / (1 << 52))); !(x > 0) {
		t.Fatalf("upper lattice endpoint maps to %v (must stay positive)", x)
	}
}

// The ziggurat sampler must realise the unit exponential: first two
// moments, tail mass beyond the base layer, and a uniform CDF transform.
func TestExpUnitDistribution(t *testing.T) {
	r := New(42)
	const n = 2_000_000
	var sum, sumSq float64
	tail := 0
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		x := r.ExpUnit()
		sum += x
		sumSq += x * x
		if x > zigR {
			tail++
		}
		q := int(10 * (1 - math.Exp(-x)))
		if q > 9 {
			q = 9
		}
		buckets[q]++
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.005 {
		t.Errorf("mean %v, want ~1", mean)
	}
	if v := sumSq/n - mean*mean; math.Abs(v-1) > 0.02 {
		t.Errorf("variance %v, want ~1", v)
	}
	wantTail := math.Exp(-zigR) // 4.54e-4
	if got := float64(tail) / n; math.Abs(got-wantTail)/wantTail > 0.15 {
		t.Errorf("tail mass %v, want ~%v", got, wantTail)
	}
	for q, c := range buckets {
		if math.Abs(float64(c)-n/10.0) > 5*math.Sqrt(n*0.1*0.9) {
			t.Errorf("CDF decile %d holds %d, want ~%d", q, c, n/10)
		}
	}
}

// ExpUnit is the composition of the exported fast path and slow finisher —
// the pair hot loops inline must reproduce it draw for draw.
func TestZigAcceptComposition(t *testing.T) {
	a, b := New(9), New(9)
	for i := 0; i < 200000; i++ {
		want := a.ExpUnit()
		u := b.Uint64()
		got, ok := ZigAccept(u)
		if !ok {
			got = b.ExpUnitSlow(u)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("draw %d: %v composed vs %v ExpUnit", i, got, want)
		}
	}
}

// FillExp must be exactly ExpUnit()/rate in sequence.
func TestFillExpMatchesExpUnit(t *testing.T) {
	a, b := New(31), New(31)
	dst := make([]float64, 1000)
	a.FillExp(dst, 4)
	inv := 1 / 4.0
	for i, v := range dst {
		want := b.ExpUnit() * inv
		if math.Float64bits(v) != math.Float64bits(want) {
			t.Fatalf("gap %d: %v FillExp vs %v ExpUnit/rate", i, v, want)
		}
		if !(v > 0) {
			t.Fatalf("gap %d not positive: %v", i, v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("rate <= 0 not rejected")
		}
	}()
	a.FillExp(dst, 0)
}

// The ziggurat tables must close: the recurrence ends at zero width with
// total mass 1.
func TestZigguratTablesClose(t *testing.T) {
	if zigX[256] != 0 {
		t.Errorf("zigX[256] = %v", zigX[256])
	}
	if zigY[256] != 1 {
		t.Errorf("zigY[256] = %v", zigY[256])
	}
	// Closure: the top layer's area matches the common layer area v.
	if top := zigX[255] * (zigY[256] - zigY[255]); math.Abs(top-zigV)/zigV > 1e-6 {
		t.Errorf("top layer area %v, want ~%v", top, zigV)
	}
	for i := 0; i < 256; i++ {
		if zigX[i+1] >= zigX[i] {
			t.Fatalf("zigX not strictly decreasing at %d: %v >= %v", i, zigX[i+1], zigX[i])
		}
	}
}

// GammaInt(k) must have mean k and variance k — checked for small and
// chunk-sized shapes with Monte-Carlo tolerances of a few sigma.
func TestGammaIntMoments(t *testing.T) {
	r := New(9)
	for _, k := range []int{1, 2, 3, 16, 256} {
		const n = 30000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			v := r.GammaInt(k)
			if !(v > 0) {
				t.Fatalf("GammaInt(%d) returned non-positive %v", k, v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		fk := float64(k)
		// Mean of n samples has sd sqrt(k/n); allow 5 sigma.
		if tol := 5 * math.Sqrt(fk/n); math.Abs(mean-fk) > tol {
			t.Errorf("GammaInt(%d): mean %v, want %v ± %v", k, mean, fk, tol)
		}
		// Var estimate sd ~ sqrt(2/n)·k·(1 + o(1)); allow a loose 8 sigma.
		if tol := 8 * fk * math.Sqrt(2.0/n); math.Abs(variance-fk) > tol {
			t.Errorf("GammaInt(%d): variance %v, want %v ± %v", k, variance, fk, tol)
		}
	}
}

// GammaInt(1) must be exactly the ExpUnit stream: the time-bridged
// simulator with chunk size 1 then consumes gap draws identical to the
// per-event path.
func TestGammaIntShapeOneIsExpUnit(t *testing.T) {
	a, b := New(17), New(17)
	for i := 0; i < 1000; i++ {
		if got, want := a.GammaInt(1), b.ExpUnit(); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("draw %d: GammaInt(1) = %v, ExpUnit = %v", i, got, want)
		}
	}
}

// A Gamma(k) sum-of-chunks must be equidistributed with the per-event sum
// of k exponentials: compare the empirical CDFs of 256-event bridge draws
// against sums of 256 ExpUnit draws by a two-sample KS test.
func TestGammaIntBridgeMatchesExpSum(t *testing.T) {
	const k, n = 256, 1500
	r := New(23)
	bridged := make([]float64, n)
	summed := make([]float64, n)
	for i := 0; i < n; i++ {
		bridged[i] = r.GammaInt(k)
		s := 0.0
		for j := 0; j < k; j++ {
			s += r.ExpUnit()
		}
		summed[i] = s
	}
	d := stats.KSDistance(bridged, summed)
	// Two-sample KS critical value at alpha = 0.001: 1.949·sqrt(2/n).
	if crit := 1.949 * math.Sqrt(2.0/n); d > crit {
		t.Errorf("KS distance %v between Gamma(256) and sum of 256 exponentials exceeds %v", d, crit)
	}
}

func TestGammaIntDeterministic(t *testing.T) {
	a, b := New(101), New(101)
	for i := 0; i < 200; i++ {
		x, y := a.GammaInt(64), b.GammaInt(64)
		if math.Float64bits(x) != math.Float64bits(y) {
			t.Fatalf("draw %d diverged: %v vs %v", i, x, y)
		}
	}
}

// gammaIntUncached is the pre-cache reference implementation: identical
// sampling loop, d/c recomputed on every call.
func gammaIntUncached(r *RNG, k int) float64 {
	if k == 1 {
		return r.ExpUnit()
	}
	d := float64(k) - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		x2 := x * x
		if u < 1-0.0331*x2*x2 {
			return d * v
		}
		if math.Log(u) < 0.5*x2+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// TestGammaIntCacheMatchesUncached drives the d/c shape cache through
// alternating and repeated shapes: every draw must be bit-identical to
// the uncached reference on the same underlying stream.
func TestGammaIntCacheMatchesUncached(t *testing.T) {
	a, b := New(77), New(77)
	shapes := []int{2, 2, 256, 2, 256, 256, 7, 1, 7, 64, 64, 64, 3}
	for round := 0; round < 50; round++ {
		for _, k := range shapes {
			x, y := a.GammaInt(k), gammaIntUncached(b, k)
			if math.Float64bits(x) != math.Float64bits(y) {
				t.Fatalf("shape %d (round %d): cached %v != uncached %v", k, round, x, y)
			}
		}
	}
}

func TestGammaIntPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("shape < 1 not rejected")
		}
	}()
	New(1).GammaInt(0)
}
