module sparsecut

go 1.24
