package dist

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"

	"sparsecut/internal/metrics"
)

// clusterMetrics is the cluster's telemetry plane, populated only when
// ClusterConfig.Metrics is set. Disabled (the zero value) every field is
// nil, so the hot-path hooks in node.go reduce to nil-receiver no-ops —
// the runtime's behaviour and random streams are identical with telemetry
// on or off; only wall-clock observation is added.
//
// The per-node/per-cluster split the instrumentation follows: counters are
// sharded by node ID (each node goroutine writes its own cache line) and
// aggregated per cluster at snapshot time; already-counted state (commit
// and abort totals, rule tick counters, transport loss counters) is
// exported through snapshot-time reader funcs at zero hot-path cost.
type clusterMetrics struct {
	// proposed counts initiations (LOCK sent), sharded by initiator.
	proposed *metrics.Counter
	// sent counts protocol messages handed to the transport, per kind,
	// sharded by sender. Indexed by MsgKind (1..4; slot 0 unused).
	sent [5]*metrics.Counter
	// latency is the committed-exchange round trip observed at the
	// initiator: LOCK sent → PROPOSE applied, in nanoseconds.
	latency *metrics.Histogram
	// live mirrors every node's current value (float64 bits), written by
	// the owning node after each applied delta, so the convergence gauges
	// can be computed while the run is in flight. It is a monitoring view:
	// reads are atomic per node but not a consistent cut across nodes.
	live []atomic.Uint64
}

// publish records node id's new value into the live mirror (no-op when
// telemetry is disabled).
func (m *clusterMetrics) publish(id int, x float64) {
	if m.live == nil {
		return
	}
	m.live[id].Store(math.Float64bits(x))
}

// instrument registers the cluster's instruments on reg. One registry per
// cluster: re-instrumenting a second cluster on the same registry
// accumulates counters and rebinds the reader funcs to the newest cluster.
func (c *Cluster) instrument(reg *metrics.Registry) {
	c.met.proposed = reg.Counter("dist.exchange.proposed")
	reg.CounterFunc("dist.exchange.committed", c.Exchanges)
	reg.CounterFunc("dist.exchange.aborted", c.Aborted)
	reg.CounterFunc("dist.node.crashes", c.Crashes)
	reg.CounterFunc("dist.node.crash_lost", c.CrashLost)
	for _, k := range []MsgKind{MsgLock, MsgPropose, MsgNack, MsgCommit} {
		c.met.sent[k] = reg.Counter("dist.msg.sent." + strings.ToLower(k.String()))
	}
	c.met.latency = reg.Histogram("dist.exchange.latency_ns")

	c.met.live = make([]atomic.Uint64, len(c.values))
	for i, v := range c.values {
		c.met.live[i].Store(math.Float64bits(v))
	}
	// The convergence-progress gauges: current variance of the live value
	// mirror, normalised by the variance at instrumentation time. The
	// ratio starts at 1 and decays toward 0 as the exchange rule averages
	// the network — the live "how converged are we" signal cmd/distrun
	// serves over -http.
	var0 := liveVariance(c.met.live)
	reg.GaugeFunc("dist.progress.var_ratio", func() float64 {
		if var0 == 0 {
			return 0
		}
		return liveVariance(c.met.live) / var0
	})
	reg.GaugeFunc("dist.progress.mean", func() float64 { return liveMean(c.met.live) })

	if r, ok := c.rule.(*SparseCutRule); ok {
		reg.CounterFunc("dist.rule.ticks", r.Ticks)
		reg.CounterFunc("dist.rule.swaps", r.Swaps)
	}
	InstrumentTransport(reg, c.tr)
}

// instrument registers the sharded runtime's instruments on reg: the same
// cluster-level series as Cluster.instrument (so dashboards work against
// either runtime unchanged), plus the per-shard plane ISSUE'd for 10^6-node
// runs — throughput and abort rate per shard loop (reading the shards'
// single-writer counters at snapshot time) and mailbox depth per shard.
func (rt *ShardRuntime) instrument(reg *metrics.Registry) {
	rt.met.proposed = reg.Counter("dist.exchange.proposed")
	reg.CounterFunc("dist.exchange.committed", rt.Exchanges)
	reg.CounterFunc("dist.exchange.aborted", rt.Aborted)
	reg.CounterFunc("dist.node.crashes", rt.Crashes)
	reg.CounterFunc("dist.node.crash_lost", rt.CrashLost)
	for _, k := range []MsgKind{MsgLock, MsgPropose, MsgNack, MsgCommit} {
		rt.met.sent[k] = reg.Counter("dist.msg.sent." + strings.ToLower(k.String()))
	}
	rt.met.latency = reg.Histogram("dist.exchange.latency_ns")

	rt.met.live = make([]atomic.Uint64, len(rt.values))
	for i, v := range rt.values {
		rt.met.live[i].Store(math.Float64bits(v))
	}
	var0 := liveVariance(rt.met.live)
	reg.GaugeFunc("dist.progress.var_ratio", func() float64 {
		if var0 == 0 {
			return 0
		}
		return liveVariance(rt.met.live) / var0
	})
	reg.GaugeFunc("dist.progress.mean", func() float64 { return liveMean(rt.met.live) })

	for _, s := range rt.shards {
		s := s
		prefix := fmt.Sprintf("dist.shard.%02d.", s.id)
		reg.CounterFunc(prefix+"committed", s.committed.Load)
		reg.CounterFunc(prefix+"aborted", s.abortedL.Load)
		if rt.tr == nil {
			reg.GaugeFunc(prefix+"mailbox_depth", func() float64 { return float64(s.inbox.depth()) })
		}
	}

	if r, ok := rt.rule.(*SparseCutRule); ok {
		reg.CounterFunc("dist.rule.ticks", r.Ticks)
		reg.CounterFunc("dist.rule.swaps", r.Swaps)
	}
	if rt.tr != nil {
		InstrumentTransport(reg, rt.tr)
	} else {
		reg.CounterFunc("dist.transport.congested", rt.Congested)
	}
}

func liveMean(live []atomic.Uint64) float64 {
	if len(live) == 0 {
		return math.NaN()
	}
	s := 0.0
	for i := range live {
		s += math.Float64frombits(live[i].Load())
	}
	return s / float64(len(live))
}

func liveVariance(live []atomic.Uint64) float64 {
	if len(live) == 0 {
		return 0
	}
	m := liveMean(live)
	s := 0.0
	for i := range live {
		d := math.Float64frombits(live[i].Load()) - m
		s += d * d
	}
	return s / float64(len(live))
}

// InstrumentTransport registers snapshot-time readers for the transport
// stack's internal counters — message loss, injected latency, congestion
// drops, TCP wire bytes — walking decorator layers down to the base
// transport. Nothing is added to the send path: the transports already
// count these atomically; the registry only learns how to read them.
func InstrumentTransport(reg *metrics.Registry, tr Transport) {
	for tr != nil {
		switch t := tr.(type) {
		case *DropTransport:
			reg.CounterFunc("dist.transport.dropped", t.Dropped)
			tr = t.inner
		case *DelayTransport:
			reg.CounterFunc("dist.transport.delayed", t.Delayed)
			tr = t.inner
		case *ChanTransport:
			reg.CounterFunc("dist.transport.congested", t.Congested)
			return
		case *TCPTransport:
			reg.CounterFunc("dist.transport.congested", t.Congested)
			reg.CounterFunc("dist.transport.tcp_bytes_out", t.BytesOut)
			reg.CounterFunc("dist.transport.tcp_bytes_in", t.BytesIn)
			return
		default:
			return // an external transport; nothing known to read
		}
	}
}
