package walk

import (
	"math"
	"testing"

	"sparsecut/internal/rng"
	"sparsecut/internal/stats"
)

func TestSimpleWalkParity(t *testing.T) {
	r := rng.New(1)
	path := SimpleWalk(r, 100)
	if len(path) != 101 {
		t.Fatalf("length %d", len(path))
	}
	if path[0] != 0 {
		t.Error("walk does not start at 0")
	}
	for k := 1; k < len(path); k++ {
		d := path[k] - path[k-1]
		if d != 1 && d != -1 {
			t.Fatalf("step %d has increment %d", k, d)
		}
	}
}

func TestSimpleWalkUnbiased(t *testing.T) {
	r := rng.New(2)
	const trials, steps = 4000, 64
	sum := 0
	for i := 0; i < trials; i++ {
		p := SimpleWalk(r, steps)
		sum += p[steps]
	}
	mean := float64(sum) / trials
	// sd of the mean ~ sqrt(64)/sqrt(4000) = 0.126; allow 5 sigma.
	if math.Abs(mean) > 0.7 {
		t.Errorf("endpoint mean %v, want ~0", mean)
	}
}

func TestTailProbabilityMatchesGaussian(t *testing.T) {
	r := rng.New(3)
	// P[S_n >= s*sqrt(n)] -> Phi-bar(s); for s=1: ~0.159, s=2: ~0.0228.
	cases := []struct{ s, want, tol float64 }{
		{0, 0.5, 0.03},
		{1, 0.159, 0.02},
		{2, 0.0228, 0.01},
	}
	for _, c := range cases {
		p, err := TailProbability(r, 400, c.s, 20000)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p-c.want) > c.tol {
			t.Errorf("s=%v: p=%v, want ~%v", c.s, p, c.want)
		}
	}
}

func TestTailProbabilityErrors(t *testing.T) {
	r := rng.New(4)
	if _, err := TailProbability(r, 0, 1, 10); err == nil {
		t.Error("steps=0 not rejected")
	}
	if _, err := TailProbability(r, 10, 1, 0); err == nil {
		t.Error("trials=0 not rejected")
	}
}

func TestFitTailTheorem3(t *testing.T) {
	// Theorem 3: P[S_n >= s sqrt(n)] <= c e^{-beta s^2}. The Gaussian limit
	// has beta = 1/2; the fit should find beta in a band around it.
	r := rng.New(5)
	fit, err := FitTail(r, 256, []float64{0.5, 1, 1.5, 2, 2.5}, 40000)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Beta < 0.3 || fit.Beta > 0.8 {
		t.Errorf("beta = %v, want ~0.5", fit.Beta)
	}
	if fit.C <= 0 || fit.C > 2 {
		t.Errorf("c = %v", fit.C)
	}
	if fit.R2 < 0.95 {
		t.Errorf("R2 = %v", fit.R2)
	}
	if len(fit.S) != 5 || len(fit.P) != 5 {
		t.Error("sample points missing")
	}
	// And the bound itself must hold with a modest constant at each point.
	for i, s := range fit.S {
		bound := 1.2 * math.Exp(-fit.Beta*s*s)
		if fit.P[i] > bound*1.5 {
			t.Errorf("s=%v: p=%v violates fitted bound %v", s, fit.P[i], bound)
		}
	}
}

func TestFitTailErrors(t *testing.T) {
	r := rng.New(6)
	if _, err := FitTail(r, 100, []float64{1}, 100); err == nil {
		t.Error("single s not rejected")
	}
	// Impossibly deep tails: all zero probabilities.
	if _, err := FitTail(r, 100, []float64{50, 60}, 10); err == nil {
		t.Error("all-zero tail points not rejected")
	}
}

func TestNewDominating(t *testing.T) {
	if _, err := NewDominating(1); err == nil {
		t.Error("n=1 not rejected")
	}
	d, err := NewDominating(8)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.LogN-math.Log(8)) > 1e-15 {
		t.Errorf("LogN = %v", d.LogN)
	}
}

func TestDominatingSteps(t *testing.T) {
	d, err := NewDominating(8)
	if err != nil {
		t.Fatal(err)
	}
	logN := math.Log(8)
	r := rng.New(7)
	plus, minus := 0, 0
	for i := 0; i < 10000; i++ {
		s := d.Step(r)
		switch {
		case math.Abs(s-logN) < 1e-12:
			plus++
		case math.Abs(s+1.5*logN) < 1e-12:
			minus++
		default:
			t.Fatalf("unexpected increment %v", s)
		}
	}
	ratio := float64(plus) / float64(plus+minus)
	if math.Abs(ratio-0.5) > 0.02 {
		t.Errorf("step ratio %v, want ~0.5", ratio)
	}
	if math.Abs(d.Drift()+logN/4) > 1e-12 {
		t.Errorf("drift %v, want %v", d.Drift(), -logN/4)
	}
}

func TestDominatingSampleDriftsDown(t *testing.T) {
	d, err := NewDominating(16)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(8)
	const k, trials = 200, 500
	ends := make([]float64, trials)
	for i := range ends {
		path := d.Sample(r, k)
		if len(path) != k+1 {
			t.Fatal("wrong path length")
		}
		ends[i] = path[k]
	}
	wantMean := float64(k) * d.Drift()
	gotMean := stats.Mean(ends)
	if math.Abs(gotMean-wantMean) > math.Abs(wantMean)*0.15 {
		t.Errorf("endpoint mean %v, want ~%v", gotMean, wantMean)
	}
}

func TestLastTimeAbove(t *testing.T) {
	path := []float64{0, 1, -3, 0.5, -4, -5}
	if got := LastTimeAbove(path, -2); got != 3 {
		t.Errorf("LastTimeAbove = %d, want 3", got)
	}
	if got := LastTimeAbove([]float64{-3, -4}, -2); got != -1 {
		t.Errorf("never-above should be -1, got %d", got)
	}
}

func TestHittingQuantileIsSmallConstant(t *testing.T) {
	// The paper's point: there is a constant t0 (independent of n) with
	// P[forall T > t0: W~_T <= -2] > 1 - 1/e. The (1-1/e)-quantile of the
	// last-time-above--2 should be a small number of epochs and should not
	// grow with n.
	r := rng.New(9)
	q16, err := HittingQuantile(r, 16, -2, 1-1/math.E, 2000, 500)
	if err != nil {
		t.Fatal(err)
	}
	q1024, err := HittingQuantile(r, 1024, -2, 1-1/math.E, 2000, 500)
	if err != nil {
		t.Fatal(err)
	}
	if q16 > 50 {
		t.Errorf("n=16 hitting quantile %v epochs: not a small constant", q16)
	}
	if q1024 > q16 {
		t.Errorf("hitting quantile grew with n: %v -> %v", q16, q1024)
	}
}

func TestHittingQuantileErrors(t *testing.T) {
	r := rng.New(10)
	if _, err := HittingQuantile(r, 1, -2, 0.5, 10, 10); err == nil {
		t.Error("n=1 not rejected")
	}
}

func TestAnalyzeEpochIncrements(t *testing.T) {
	// Synthetic trajectory on n=8: two strong contractions, one weak bump.
	logN := math.Log(8)
	halfLogVar := []float64{0, -1.5 * logN, -3 * logN, -3*logN + 0.5, -4.5 * logN}
	st, err := AnalyzeEpochIncrements(halfLogVar, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Increments) != 4 {
		t.Fatalf("%d increments", len(st.Increments))
	}
	if st.HardViolations != 0 {
		t.Errorf("hard violations %d", st.HardViolations)
	}
	// One increment (+0.5) is weaker than -1.5*logN; the -1.5logN steps are
	// boundary cases counted as weak only if strictly greater.
	if st.FracWeak < 0.25 || st.FracWeak > 0.5 {
		t.Errorf("frac weak %v", st.FracWeak)
	}
	if st.MaxIncrement != 0.5 {
		t.Errorf("max increment %v", st.MaxIncrement)
	}
	if st.MeanIncrement >= 0 {
		t.Errorf("mean increment %v, want negative", st.MeanIncrement)
	}
}

func TestAnalyzeEpochIncrementsHardViolation(t *testing.T) {
	st, err := AnalyzeEpochIncrements([]float64{0, 2 * math.Log(4)}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.HardViolations != 1 {
		t.Errorf("hard violations %d, want 1", st.HardViolations)
	}
}

func TestAnalyzeEpochIncrementsErrors(t *testing.T) {
	if _, err := AnalyzeEpochIncrements([]float64{0}, 8); err == nil {
		t.Error("short sequence not rejected")
	}
	if _, err := AnalyzeEpochIncrements([]float64{0, 1}, 1); err == nil {
		t.Error("n=1 not rejected")
	}
}
