package dist

import (
	"context"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"sparsecut/internal/graph"
)

// TestLockstepMachineEquivalence is the divergence test that licenses both
// drivers of the protocol: the goroutine runtime records every protocol
// event it feeds the pure machine (via the cluster tap), and replaying
// that event stream through fresh NodeStates must reproduce byte-identical
// StepOuts and exactly the runtime's final values. Any state the actor
// wrapper mutated outside the machine, or any hidden input the machine
// read, would diverge here.
func TestLockstepMachineEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name    string
		crashes []CrashEvent
	}{
		{"healthy", nil},
		{"with crash schedule", []CrashEvent{{Node: 0, At: 2, Recover: 5}, {Node: 7, At: 1}}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g, _, x0 := dumbbellCase(t)
			// Vanilla rule: stateless, so the replay is insensitive to the
			// order in which concurrent nodes ticked the shared rule.
			cl, err := NewCluster(g, x0, NewVanillaRule(), ClusterConfig{
				TimeScale: 4 * time.Millisecond, Seed: 11, Crashes: tc.crashes,
			})
			if err != nil {
				t.Fatal(err)
			}
			var mu sync.Mutex
			var events []nodeEvent
			cl.tap = func(ev nodeEvent) {
				mu.Lock()
				events = append(events, ev)
				mu.Unlock()
			}
			if err := cl.Run(context.Background(), 10); err != nil {
				t.Fatal(err)
			}
			if cl.Exchanges() == 0 {
				t.Fatal("no exchanges committed; lockstep test needs traffic")
			}

			// Replay: fresh states, same machine parameters, recorded inputs.
			mc := Machine{
				G:             g,
				Rule:          NewVanillaRule(),
				Epoch:         cl.epoch,
				LockTimeoutNs: cl.lockTimeout.Nanoseconds(),
				ResendEveryNs: cl.resendEvery.Nanoseconds(),
			}
			states := make([]*NodeState, g.NumNodes())
			for i := range states {
				states[i] = NewNodeState(i, x0[i])
			}
			for k, ev := range events {
				st := states[ev.node]
				var out StepOut
				switch ev.kind {
				case stepDeliver:
					out = mc.Deliver(st, ev.msg, ev.nowNs, ev.draining)
				case stepInitiate:
					out = mc.Initiate(st, ev.he, ev.nowNs)
				case stepTimeout:
					out = mc.TimeoutAwait(st)
				case stepResend:
					out = mc.Resend(st, ev.nowNs)
				case stepCrash:
					out = mc.Crash(st)
				case stepRecover:
					out = mc.Recover(st, ev.nowNs)
				}
				if !reflect.DeepEqual(out, ev.out) {
					t.Fatalf("event %d (node %d, kind %d): replayed StepOut %+v diverged from live %+v",
						k, ev.node, ev.kind, out, ev.out)
				}
			}
			// The settle loop only acts on a dead transport; on this healthy
			// run the replayed machine values must equal Values() exactly.
			got := cl.Values()
			for i, st := range states {
				if st.X != got[i] {
					t.Errorf("node %d: replayed value %v != runtime value %v", i, st.X, got[i])
				}
			}
			t.Logf("replayed %d events across %d nodes, %d exchanges", len(events), g.NumNodes(), cl.Exchanges())
		})
	}
}

// TestCrashRecoverySumConserved injects a hostile crash schedule on top of
// a lossy transport and asserts the protocol's core promise: the value sum
// survives exactly (stable storage keeps held proposals across crashes;
// the drain phase force-recovers nodes still down).
func TestCrashRecoverySumConserved(t *testing.T) {
	g, _, x0 := dumbbellCase(t)
	crashes := []CrashEvent{
		{Node: 0, At: 1, Recover: 4},
		{Node: 3, At: 2, Recover: 6},
		{Node: 6, At: 0.5, Recover: 3},
		{Node: 9, At: 3}, // down until drain
		{Node: 0, At: 7, Recover: 9},
	}
	cl, err := NewCluster(g, x0, NewVanillaRule(), ClusterConfig{
		TimeScale: 4 * time.Millisecond, Seed: 3, Crashes: crashes,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(context.Background(), 12); err != nil {
		t.Fatal(err)
	}
	if cl.Exchanges() == 0 {
		t.Fatal("no exchanges committed under the crash schedule")
	}
	if got, want := cl.Crashes(), int64(len(crashes)); got != want {
		t.Errorf("Crashes() = %d, want %d (every scheduled window fires)", got, want)
	}
	if drift := math.Abs(sum(cl.Values()) - sum(x0)); drift > 1e-9 {
		t.Errorf("sum drifted by %g across %d crashes", drift, cl.Crashes())
	}
	// The schedule is per-Run: a second run re-fires it and stays exact.
	if err := cl.Run(context.Background(), 12); err != nil {
		t.Fatal(err)
	}
	if got, want := cl.Crashes(), int64(2*len(crashes)); got != want {
		t.Errorf("Crashes() after second run = %d, want %d", got, want)
	}
	if drift := math.Abs(sum(cl.Values()) - sum(x0)); drift > 1e-9 {
		t.Errorf("sum drifted by %g after the second crashy run", drift)
	}
}

func TestCrashScheduleValidation(t *testing.T) {
	g, _, x0 := dumbbellCase(t)
	cases := []struct {
		name string
		ev   []CrashEvent
	}{
		{"node out of range", []CrashEvent{{Node: 99, At: 1}}},
		{"negative node", []CrashEvent{{Node: -1, At: 1}}},
		{"negative time", []CrashEvent{{Node: 0, At: -1}}},
		{"NaN time", []CrashEvent{{Node: 0, At: math.NaN()}}},
		{"recover before crash", []CrashEvent{{Node: 0, At: 2, Recover: 1}}},
		{"overlapping windows", []CrashEvent{{Node: 0, At: 1, Recover: 5}, {Node: 0, At: 3, Recover: 7}}},
		{"second window after down-until-drain", []CrashEvent{{Node: 0, At: 1}, {Node: 0, At: 3, Recover: 4}}},
	}
	for _, c := range cases {
		if _, err := NewCluster(g, x0, NewVanillaRule(), ClusterConfig{Crashes: c.ev}); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

// The remaining tests drive the machine directly — single-threaded, no
// transport, virtual time — exactly the way the model checker does.

func testMachine(t *testing.T) (*Machine, []*NodeState) {
	t.Helper()
	g, err := graph.NewBuilder(3).AddEdge(0, 1).AddEdge(1, 2).AddEdge(0, 2).Build()
	if err != nil {
		t.Fatal(err)
	}
	mc := &Machine{G: g, Rule: NewVanillaRule(), Epoch: 1, LockTimeoutNs: 100, ResendEveryNs: 40}
	sts := []*NodeState{NewNodeState(0, 1), NewNodeState(1, 5), NewNodeState(2, 0)}
	return mc, sts
}

func halfEdgeTo(t *testing.T, mc *Machine, from, to int) graph.HalfEdge {
	t.Helper()
	for _, he := range mc.G.Neighbors(graph.NodeID(from)) {
		if int(he.Peer) == to {
			return he
		}
	}
	t.Fatalf("no edge %d-%d", from, to)
	return graph.HalfEdge{}
}

func TestMachineCommitFlow(t *testing.T) {
	mc, sts := testMachine(t)
	a, b := sts[0], sts[1]

	out := mc.Initiate(a, halfEdgeTo(t, mc, 0, 1), 10)
	if !out.Proposed || len(out.Send) != 1 || out.Send[0].Kind != MsgLock {
		t.Fatalf("initiate: %+v", out)
	}
	lock := out.Send[0]
	if lock.Epoch != 1 || lock.X != 1 || a.Await == nil || a.Await.DeadlineNs != 110 {
		t.Fatalf("lock %+v await %+v", lock, a.Await)
	}

	out = mc.Deliver(b, lock, 20, false)
	if !out.PendCreated || len(out.Send) != 1 || out.Send[0].Kind != MsgPropose {
		t.Fatalf("lock delivery: %+v", out)
	}
	prop := out.Send[0]
	if prop.X != 2 { // vanilla delta (5-1)/2
		t.Errorf("proposed delta %g, want 2", prop.X)
	}
	if b.Pend == nil || b.Pend.ResendNs != 60 {
		t.Fatalf("pend %+v", b.Pend)
	}

	out = mc.Deliver(a, prop, 30, false)
	if !out.Applied || out.LatencyNs != 20 || len(out.Send) != 1 || out.Send[0].Kind != MsgCommit {
		t.Fatalf("propose delivery: %+v", out)
	}
	if a.X != 3 || a.Await != nil || a.LastApplied[1] != 1 {
		t.Fatalf("initiator state after apply: %+v", a)
	}

	out = mc.Deliver(b, out.Send[0], 40, false)
	if !out.Committed || b.X != 3 || b.Pend != nil {
		t.Fatalf("commit delivery: %+v, responder %+v", out, b)
	}
	if s := a.X + b.X + sts[2].X; s != 6 {
		t.Errorf("sum %g, want 6", s)
	}
}

func TestMachineAbortAndDuplicatePaths(t *testing.T) {
	mc, sts := testMachine(t)
	a, b := sts[0], sts[1]

	// Busy responder NACKs; draining responder NACKs.
	lock := mc.Initiate(a, halfEdgeTo(t, mc, 0, 1), 0).Send[0]
	mc.Deliver(b, lock, 0, false)
	lock2 := mc.Initiate(sts[2], halfEdgeTo(t, mc, 2, 1), 0).Send[0]
	if out := mc.Deliver(b, lock2, 0, false); len(out.Send) != 1 || out.Send[0].Kind != MsgNack {
		t.Fatalf("busy responder: %+v", out)
	}

	// Timeout aborts the initiation; the late proposal is then refused and
	// the responder rolls back with no value change anywhere.
	if out := mc.TimeoutAwait(a); !out.Aborted || a.Await != nil {
		t.Fatalf("timeout: %+v", out)
	}
	prop := b.Pend.Msg
	out := mc.Deliver(a, prop, 0, false)
	if out.Applied || len(out.Send) != 1 || out.Send[0].Kind != MsgNack {
		t.Fatalf("stale proposal: %+v", out)
	}
	if out := mc.Deliver(b, out.Send[0], 0, false); !out.PendDropped || b.Pend != nil || b.X != 5 {
		t.Fatalf("rollback: %+v responder %+v", out, b)
	}

	// Duplicate proposal after a successful apply is re-committed without
	// reapplying.
	lock = mc.Initiate(a, halfEdgeTo(t, mc, 0, 1), 0).Send[0]
	prop = mc.Deliver(b, lock, 0, false).Send[0]
	mc.Deliver(a, prop, 0, false)
	xa := a.X
	out = mc.Deliver(a, prop, 0, false) // retransmitted duplicate
	if a.X != xa || len(out.Send) != 1 || out.Send[0].Kind != MsgCommit || out.Applied {
		t.Fatalf("duplicate proposal: %+v", out)
	}

	// Stale-epoch messages are dropped outright.
	stale := lock
	stale.Epoch = 99
	if out := mc.Deliver(b, stale, 0, false); len(out.Send) != 0 || out.PendCreated {
		t.Fatalf("stale epoch: %+v", out)
	}
}

func TestMachineCrashRecoverSemantics(t *testing.T) {
	mc, sts := testMachine(t)
	a, b := sts[0], sts[1]

	// Crash aborts a volatile initiation.
	mc.Initiate(a, halfEdgeTo(t, mc, 0, 1), 0)
	if out := mc.Crash(a); !out.Aborted || a.Await != nil {
		t.Fatalf("crash with await: %+v", out)
	}

	// A held proposal survives a crash and retransmits on recovery.
	lock := mc.Initiate(a, halfEdgeTo(t, mc, 0, 1), 0).Send[0]
	mc.Deliver(b, lock, 0, false)
	if out := mc.Crash(b); out.Aborted || b.Pend == nil {
		t.Fatalf("crash with pend: %+v state %+v", out, b)
	}
	mc.Recover(b, 500)
	if b.Pend.ResendNs != 500 {
		t.Fatalf("recovery did not make the held proposal due: %+v", b.Pend)
	}
	if out := mc.Resend(b, 500); len(out.Send) != 1 || out.Send[0].Kind != MsgPropose {
		t.Fatalf("post-recovery resend: %+v", out)
	}
}
