// Package table renders the experiment harness's results as fixed-width
// text or Markdown tables — the repository's "table" output format.
//
// Key type: Table (Render for aligned text, RenderMarkdown with pipe escaping — the REPRODUCTION.md backend, DESIGN.md §9).
package table

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-oriented text table. Construct with New, append
// rows with AddRow, then Render or RenderMarkdown.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// New creates a table with the given title (may be empty) and headers.
func New(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row. Values are formatted with %v; float64 values are
// formatted with 4 significant digits. Rows shorter than the header are
// padded; longer rows are accepted and widen the table.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", x)
		case float32:
			row[i] = fmt.Sprintf("%.4g", x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

func (t *Table) widths() []int {
	cols := len(t.headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	w := make([]int, cols)
	for i, h := range t.headers {
		if len(h) > w[i] {
			w[i] = len(h)
		}
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if t.title != "" {
		fmt.Fprintf(bw, "%s\n", t.title)
	}
	widths := t.widths()
	writeRow := func(cells []string) {
		for i := 0; i < len(widths); i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				bw.WriteString("  ")
			}
			fmt.Fprintf(bw, "%-*s", widths[i], c)
		}
		bw.WriteString("\n")
	}
	writeRow(t.headers)
	sep := make([]string, len(widths))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return bw.Flush()
}

// RenderMarkdown writes the table as GitHub-flavoured Markdown. Pipe
// characters inside cells (|E12|, set notation, …) are escaped so they
// cannot be mistaken for column separators.
func (t *Table) RenderMarkdown(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if t.title != "" {
		fmt.Fprintf(bw, "### %s\n\n", t.title)
	}
	ncols := len(t.widths())
	cell := func(cells []string, i int) string {
		if i < len(cells) {
			return strings.ReplaceAll(cells[i], "|", "\\|")
		}
		return ""
	}
	for i := 0; i < ncols; i++ {
		fmt.Fprintf(bw, "| %s ", cell(t.headers, i))
	}
	bw.WriteString("|\n")
	for i := 0; i < ncols; i++ {
		bw.WriteString("| --- ")
	}
	bw.WriteString("|\n")
	for _, r := range t.rows {
		for i := 0; i < ncols; i++ {
			fmt.Fprintf(bw, "| %s ", cell(r, i))
		}
		bw.WriteString("|\n")
	}
	return bw.Flush()
}
