package graph

import "testing"

func TestRingOfCliques(t *testing.T) {
	g, part, err := RingOfCliques(4, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 20 {
		t.Fatalf("nodes = %d, want 20", g.NumNodes())
	}
	// 4 cliques of C(5,2)=10 edges + 4 joints of 2 bridges.
	if want := 4*10 + 4*2; g.NumEdges() != want {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), want)
	}
	if !IsConnected(g) {
		t.Fatal("ring of cliques not connected")
	}
	if part.Size1() != 10 || part.Size2() != 10 {
		t.Fatalf("partition sizes %d/%d, want 10/10", part.Size1(), part.Size2())
	}
	// The two contiguous arcs meet at two joints: cut = 2*bridges.
	if part.CutSize() != 4 {
		t.Fatalf("cut size = %d, want 4", part.CutSize())
	}
	if !SidesInternallyConnected(part) {
		t.Fatal("ring-of-cliques sides not internally connected")
	}
}

func TestRingOfCliquesSingletonBlocks(t *testing.T) {
	// m=1 degenerates to the cycle C_blocks.
	g, _, err := RingOfCliques(6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 6 || g.NumEdges() != 6 {
		t.Fatalf("got %d nodes / %d edges, want 6/6", g.NumNodes(), g.NumEdges())
	}
	for u := 0; u < 6; u++ {
		if g.Degree(NodeID(u)) != 2 {
			t.Fatalf("node %d degree %d, want 2", u, g.Degree(NodeID(u)))
		}
	}
}

func TestRingOfCliquesValidation(t *testing.T) {
	cases := [][3]int{{2, 4, 1}, {3, 0, 1}, {3, 4, 0}, {3, 4, 5}}
	for _, c := range cases {
		if _, _, err := RingOfCliques(c[0], c[1], c[2]); err == nil {
			t.Errorf("RingOfCliques(%d,%d,%d): expected error", c[0], c[1], c[2])
		}
	}
}

func TestHierarchicalDumbbell(t *testing.T) {
	g, part, err := HierarchicalDumbbell(16, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 16 {
		t.Fatalf("nodes = %d, want 16", g.NumNodes())
	}
	// Four K_4 cliques (6 edges each) + 2 inner cuts + 1 outer cut.
	if want := 4*6 + 2 + 1; g.NumEdges() != want {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), want)
	}
	if !IsConnected(g) {
		t.Fatal("hierarchical dumbbell not connected")
	}
	// The planted partition is the outer cut.
	if part.CutSize() != 1 {
		t.Fatalf("outer cut size = %d, want 1", part.CutSize())
	}
	if part.Size1() != 8 || part.Size2() != 8 {
		t.Fatalf("partition sizes %d/%d, want 8/8", part.Size1(), part.Size2())
	}
	if !SidesInternallyConnected(part) {
		t.Fatal("hierarchical dumbbell sides not internally connected")
	}
}

func TestHierarchicalDumbbellOddSizes(t *testing.T) {
	g, part, err := HierarchicalDumbbell(19, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 19 {
		t.Fatalf("nodes = %d, want 19", g.NumNodes())
	}
	if part.CutSize() != 3 {
		t.Fatalf("outer cut = %d, want 3", part.CutSize())
	}
	if !SidesInternallyConnected(part) {
		t.Fatal("sides not internally connected")
	}
}

func TestHierarchicalDumbbellValidation(t *testing.T) {
	cases := [][3]int{{7, 1, 1}, {16, 0, 1}, {16, 5, 1}, {16, 1, 0}, {16, 1, 9}}
	for _, c := range cases {
		if _, _, err := HierarchicalDumbbell(c[0], c[1], c[2]); err == nil {
			t.Errorf("HierarchicalDumbbell(%d,%d,%d): expected error", c[0], c[1], c[2])
		}
	}
}

func TestTorusDumbbell(t *testing.T) {
	g, part, err := TorusDumbbell(200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 200 {
		t.Fatalf("nodes = %d, want 200", g.NumNodes())
	}
	// Two 100-node tori at 2 edges per node, plus the cut.
	if want := 2*100 + 2*100 + 4; g.NumEdges() != want {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), want)
	}
	if !IsConnected(g) {
		t.Fatal("torus dumbbell not connected")
	}
	if part.Size1() != 100 || part.Size2() != 100 {
		t.Fatalf("partition sizes %d/%d, want 100/100", part.Size1(), part.Size2())
	}
	if part.CutSize() != 4 {
		t.Fatalf("cut size = %d, want 4", part.CutSize())
	}
	if !SidesInternallyConnected(part) {
		t.Fatal("torus-dumbbell sides not internally connected")
	}
	// Degree is bounded: 4 inside the tori, at most 5 on the rims (one cut
	// edge per rim node by construction).
	for u := 0; u < g.NumNodes(); u++ {
		if d := g.Degree(NodeID(u)); d < 4 || d > 5 {
			t.Fatalf("node %d has degree %d, want 4 or 5", u, d)
		}
	}
}

func TestTorusDumbbellOddSizes(t *testing.T) {
	// 45/45 split: factors as 5x9.
	g, part, err := TorusDumbbell(90, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !IsConnected(g) || part.CutSize() != 1 {
		t.Fatalf("connected=%v cut=%d", IsConnected(g), part.CutSize())
	}
}

func TestTorusDumbbellValidation(t *testing.T) {
	for _, tc := range []struct {
		name        string
		n, cutEdges int
	}{
		{"too small", 10, 1},
		{"zero cut", 200, 0},
		{"cut too wide", 200, 101},
		{"prime half", 2 * 101, 1}, // 101 has no rows >= 3 factorisation
	} {
		if _, _, err := TorusDumbbell(tc.n, tc.cutEdges); err == nil {
			t.Errorf("%s: TorusDumbbell(%d, %d) accepted", tc.name, tc.n, tc.cutEdges)
		}
	}
}
