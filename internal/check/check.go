// Package check is a deterministic, single-threaded model checker for the
// lock/propose/commit exchange protocol of internal/dist.
//
// The checker drives the same pure state machine (dist.Machine) the live
// runtime runs — the lockstep divergence test in internal/dist proves the
// goroutine actor adds no hidden protocol state — but replaces every source
// of runtime nondeterminism with an explicit, explorable action:
//
//   - the transport becomes an ordered multiset of in-flight messages, and
//     delivering, dropping, duplicating or (by choosing delivery order)
//     reordering any one of them is an action;
//   - wall-clock timers become actions too: a lock timeout or a proposal
//     retransmission may fire at any point while armed, which soundly
//     over-approximates every real timing;
//   - fail-stop crashes and recoveries of individual nodes are actions,
//     with the same stable/volatile state split as the live runtime's crash
//     schedule (see Machine.Crash/Recover).
//
// A schedule — a sequence of such actions — is explored either
// exhaustively (bounded-depth DFS with state-hash deduplication) or by
// seeded random walks. After every action the checker asserts the
// protocol's safety invariants:
//
//   - crash-adjusted sum conservation: the value sum, corrected for held
//     proposals whose initiator half has already been applied, never
//     drifts from the initial sum beyond float rounding;
//   - no stale commit: an initiator only applies a delta computed from its
//     current value (ghost provenance), and a responder only commits a
//     proposal its initiator actually applied;
//   - lock-state sanity: a node never holds both roles at once, crashed
//     nodes hold no volatile initiation, and watermarks never pass the
//     peer's sequence counter;
//   - quiescence: from any reachable state, deterministically draining the
//     network (deliver everything, retransmit, time out) reaches a fully
//     unlocked state whose plain sum equals the initial sum.
//
// A violated invariant yields a JSON-serializable counterexample Trace
// which Replay re-executes deterministically to the same violation; traces
// also re-encode as schedule byte-strings (EncodeSchedule) to seed the
// package's fuzz harness (FuzzSchedule).
package check

import (
	"errors"
	"fmt"
	"math"

	"sparsecut/internal/dist"
	"sparsecut/internal/graph"
)

// Spec is the system under check: a small graph, initial values, and the
// exchange rule the protocol runs.
type Spec struct {
	Graph *graph.Graph
	X0    []float64
	Rule  RuleSpec
}

// RuleSpec describes an exchange rule by value so it survives a trip
// through trace JSON and can be rebuilt as a cloneable, checker-local rule
// (the checker backtracks, so it cannot share dist.SparseCutRule's atomic
// tick counter across forked worlds).
type RuleSpec struct {
	// Kind is "vanilla" or "sparse-cut".
	Kind string `json:"kind"`
	// Sides assigns each node a partition side (0 or 1); sparse-cut only.
	Sides []int `json:"sides,omitempty"`
	// CutEdge is the designated cut edge ec; sparse-cut only.
	CutEdge int `json:"cut_edge,omitempty"`
	// EpochK is the swap period K in ticks of ec; sparse-cut only.
	EpochK int64 `json:"epoch_k,omitempty"`
	// Weight is the swap coefficient w; sparse-cut only.
	Weight float64 `json:"weight,omitempty"`
}

// Vanilla is the RuleSpec for plain pairwise averaging.
func Vanilla() RuleSpec { return RuleSpec{Kind: "vanilla"} }

// SparseCut is the RuleSpec for Algorithm A's exchange rule.
func SparseCut(sides []int, cutEdge int, epochK int64, weight float64) RuleSpec {
	return RuleSpec{Kind: "sparse-cut", Sides: sides, CutEdge: cutEdge, EpochK: epochK, Weight: weight}
}

// checkRule is the checker-local counterpart of dist.VanillaRule /
// dist.SparseCutRule: same Delta arithmetic (cross-checked against the dist
// rules in check_test.go) but with a plain tick counter so a forked world
// snapshots and restores rule state exactly.
type checkRule struct {
	spec  RuleSpec
	isCut []bool // nil for vanilla
	ticks int64
	swaps int64
}

func buildRule(spec RuleSpec, g *graph.Graph) (*checkRule, error) {
	switch spec.Kind {
	case "vanilla":
		return &checkRule{spec: spec}, nil
	case "sparse-cut":
		if len(spec.Sides) != g.NumNodes() {
			return nil, fmt.Errorf("check: rule sides has %d entries for %d nodes", len(spec.Sides), g.NumNodes())
		}
		if spec.CutEdge < 0 || spec.CutEdge >= g.NumEdges() {
			return nil, fmt.Errorf("check: designated edge %d out of range", spec.CutEdge)
		}
		if spec.EpochK < 1 {
			return nil, fmt.Errorf("check: epoch ticks %d must be >= 1", spec.EpochK)
		}
		if !(spec.Weight > 0) || math.IsInf(spec.Weight, 0) {
			return nil, fmt.Errorf("check: swap weight %v must be positive and finite", spec.Weight)
		}
		r := &checkRule{spec: spec, isCut: make([]bool, g.NumEdges())}
		for i, e := range g.Edges() {
			if spec.Sides[e.U] != spec.Sides[e.V] {
				r.isCut[i] = true
			}
		}
		if !r.isCut[spec.CutEdge] {
			return nil, fmt.Errorf("check: designated edge %v does not cross the cut", g.Edge(graph.EdgeID(spec.CutEdge)))
		}
		return r, nil
	default:
		return nil, fmt.Errorf("check: unknown rule kind %q", spec.Kind)
	}
}

// Name implements dist.Rule.
func (r *checkRule) Name() string { return "check:" + r.spec.Kind }

// Delta implements dist.Rule with the same arithmetic as the dist rules.
func (r *checkRule) Delta(e graph.EdgeID, _ graph.NodeID, xInit, xResp float64) float64 {
	switch {
	case r.isCut == nil || !r.isCut[e]:
		return (xResp - xInit) / 2
	case int(e) != r.spec.CutEdge:
		return 0
	default:
		r.ticks++
		if r.ticks%r.spec.EpochK != 0 {
			return 0
		}
		r.swaps++
		return r.spec.Weight * (xResp - xInit)
	}
}

func (r *checkRule) clone() *checkRule {
	cp := *r
	return &cp // spec and isCut are immutable after buildRule
}

// Options bounds an exploration. The zero value means "use defaults" for
// every budget; fault actions are opt-in flags.
type Options struct {
	// MaxDepth bounds schedule length (default 12).
	MaxDepth int `json:"max_depth,omitempty"`
	// MaxStates bounds distinct states explored before DFS gives up and
	// reports Truncated (default 2 million).
	MaxStates int64 `json:"max_states,omitempty"`
	// MaxInitiations bounds Initiate actions per schedule (default 2) —
	// the protocol quiesces between exchanges, so small counts already
	// cover the interesting exchange-overlap interleavings.
	MaxInitiations int `json:"max_initiations,omitempty"`
	// MaxDups bounds message duplications per schedule (default 1).
	MaxDups int `json:"max_dups,omitempty"`
	// MaxResends bounds proposal retransmissions per schedule (default 1).
	MaxResends int `json:"max_resends,omitempty"`
	// MaxCrashes bounds crash actions per schedule (default 1).
	MaxCrashes int `json:"max_crashes,omitempty"`
	// Drops enables message-drop actions.
	Drops bool `json:"drops,omitempty"`
	// Dups enables message-duplication actions.
	Dups bool `json:"dups,omitempty"`
	// Crashes enables crash/recover actions.
	Crashes bool `json:"crashes,omitempty"`
	// QuiescenceEvery runs the (cloned-world) quiescence drain check after
	// every QuiescenceEvery-th action: 0 means after every action, a
	// negative value disables the check.
	QuiescenceEvery int `json:"quiescence_every,omitempty"`
	// Epsilon is the sum-conservation tolerance (default 1e-9).
	Epsilon float64 `json:"epsilon,omitempty"`
	// Mutation seeds an intentional protocol bug (checker self-test).
	Mutation dist.Mutation `json:"mutation,omitempty"`
}

func (o Options) withDefaults() Options {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 12
	}
	if o.MaxStates <= 0 {
		o.MaxStates = 2_000_000
	}
	if o.MaxInitiations <= 0 {
		o.MaxInitiations = 2
	}
	if o.MaxDups <= 0 {
		o.MaxDups = 1
	}
	if o.MaxResends <= 0 {
		o.MaxResends = 1
	}
	if o.MaxCrashes <= 0 {
		o.MaxCrashes = 1
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 1e-9
	}
	return o
}

// Result summarises one exploration.
type Result struct {
	// StatesExplored counts distinct (post-dedup) states visited.
	StatesExplored int64
	// Transitions counts actions applied (including into deduped states).
	Transitions int64
	// Deduped counts DFS branches cut by the visited-state table.
	Deduped int64
	// DeepestDepth is the longest schedule prefix reached.
	DeepestDepth int
	// Truncated reports that the MaxStates budget stopped the search
	// before the bounded space was exhausted.
	Truncated bool
	// Walks counts completed random walks (random-walk mode only).
	Walks int
	// Counterexample is the violating schedule, nil if no invariant was
	// violated.
	Counterexample *Trace
}

// Violation is one invariant failure, recorded at a specific step of a
// schedule. It doubles as the error value the world's apply returns.
type Violation struct {
	// Step is the 1-based index of the violating action in the schedule.
	Step int `json:"step"`
	// Invariant names the failed check: "sum", "stale-commit",
	// "lock-state" or "quiescence".
	Invariant string `json:"invariant"`
	// Detail is a human-readable account of the failure.
	Detail string `json:"detail"`
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("check: step %d violates %s: %s", v.Step, v.Invariant, v.Detail)
}

// Same reports whether two violations are the same failure (used by the
// replayer to confirm a counterexample reproduces).
func (v *Violation) Same(o *Violation) bool {
	if v == nil || o == nil {
		return v == o
	}
	return v.Step == o.Step && v.Invariant == o.Invariant && v.Detail == o.Detail
}

// errInvalid marks a schedule action that is not applicable in the current
// state (replaying a corrupted trace, or a fuzzed schedule byte with no
// enabled actions). Distinct from a Violation: the schedule is broken, not
// the protocol.
var errInvalid = errors.New("check: action not applicable in current state")
