package sim

import (
	"fmt"

	"sparsecut/internal/graph"
)

// Node-clock model support (the paper's footnote 1).
//
// The classical gossip model of Boyd et al. puts a rate-1 Poisson clock on
// every *node*; when node i ticks it contacts a uniformly random neighbour
// j and the edge (i, j) fires. By superposition of Poisson processes this
// is *exactly* the edge-clock model with per-edge rate
//
//	r(i,j) = 1/deg(i) + 1/deg(j),
//
// since edge (i, j) fires when i ticks and picks j (rate 1 · 1/deg(i)) or
// j ticks and picks i (rate 1 · 1/deg(j)). The paper's footnote observes
// the reverse reduction ("allocating edges to nodes and equipping nodes
// with multiple i.i.d poisson clocks"); NodeClockRates implements the
// forward one, so any Handler written for this package runs unchanged
// under the node-clock model:
//
//	rates := sim.NodeClockRates(g)
//	eng, _ := sim.NewEngine(g, alg, sim.WithRates(rates))
//
// The statistical equivalence of this reduction to a directly simulated
// node-clock process is exercised by the package tests.

// NodeClockRates returns the per-edge rates that realise the uniform
// natural-random-walk node-clock model on g. It panics if any node is
// isolated (an isolated node has no neighbour to contact; the model is
// undefined there).
func NodeClockRates(g *graph.Graph) []float64 {
	rates := make([]float64, g.NumEdges())
	for id, e := range g.Edges() {
		du, dv := g.Degree(e.U), g.Degree(e.V)
		if du == 0 || dv == 0 {
			panic(fmt.Sprintf("sim: node-clock model undefined for isolated node on edge %v", e))
		}
		rates[id] = 1/float64(du) + 1/float64(dv)
	}
	return rates
}

// TotalNodeClockRate returns the sum of NodeClockRates, which must equal
// the number of non-isolated nodes (each node ticks at rate 1 and always
// selects exactly one incident edge). Exposed for tests and sanity checks.
func TotalNodeClockRate(g *graph.Graph) float64 {
	total := 0.0
	for _, r := range NodeClockRates(g) {
		total += r
	}
	return total
}
