package check

import (
	"sparsecut/internal/flight"
)

// ReplayFlight re-executes tr's schedule exactly like Replay, emitting
// every protocol step into rec through the same dist.FlightEmitter
// mapping the live runtime uses — so a model-checker counterexample
// renders as the same span trees as a production capture (cmd/mcheck
// -flight, cmd/tracez). Timestamps are the replay's virtual ticks and the
// replay is single-threaded, so for a given trace the recorder's dump is
// fully deterministic: two replays encode to byte-identical files.
//
// Size rec with at least as many rings as the trace's nodes (records from
// out-of-range nodes fold into ring 0). A nil rec degrades to plain
// Replay.
func ReplayFlight(tr *Trace, rec *flight.Recorder) (*Violation, error) {
	spec, opt, err := tr.specAndOptions()
	if err != nil {
		return nil, err
	}
	w, err := newWorld(spec, opt)
	if err != nil {
		return nil, err
	}
	w.rec = rec
	for _, a := range tr.Actions {
		if err := w.apply(a); err != nil {
			if v, ok := err.(*Violation); ok {
				return v, nil
			}
			return nil, err
		}
	}
	return nil, nil
}
